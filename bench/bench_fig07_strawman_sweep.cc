/**
 * @file
 * Reproduces Fig 7: slowdown of the straw-man PIM buddy allocator as
 * the heap size (32 KB .. 32 MB) and the (de)allocation size
 * (32 B .. 2 KB) vary, measured with a single-tasklet program doing
 * consecutive pimMalloc/pimFree pairs. Normalized to (heap 32 KB,
 * alloc 2 KB), exactly like the paper's heat map.
 */

#include <fstream>
#include <iostream>
#include <iterator>
#include <vector>

#include "telemetry/export.hh"
#include "trace/chrome_trace.hh"
#include "util/cli.hh"
#include "util/json.hh"
#include "util/table.hh"
#include "workloads/microbench.hh"

using namespace pim;
using namespace pim::workloads;

namespace {

double
avgLatencyUs(uint32_t heap_bytes, uint32_t alloc_size, unsigned tasklets,
             trace::Recorder *rec, telemetry::Registry *met)
{
    MicrobenchConfig cfg;
    cfg.allocator = core::AllocatorKind::StrawMan;
    cfg.tasklets = tasklets;
    cfg.allocsPerTasklet = 64;
    cfg.allocSize = alloc_size;
    cfg.freeEachAlloc = true;
    cfg.overrides.heapBytes = heap_bytes;
    cfg.recorder = rec;
    cfg.metrics = met;
    return runMicrobench(cfg).avgLatencyUs;
}

} // namespace

int
main(int argc, char **argv)
{
    util::Cli cli(argc, argv, util::benchKnobNames());
    util::BenchKnobs defs;
    defs.dpus = 1;
    defs.sample = 1;
    defs.tasklets = 1; // the paper's single-tasklet sweep
    const util::BenchKnobs knobs = util::parseBenchKnobs(cli, defs);

    const uint32_t heaps[] = {32u << 10, 128u << 10, 512u << 10,
                              2u << 20, 8u << 20, 32u << 20};
    const uint32_t sizes[] = {32, 128, 512, 1024, 2048};

    trace::RecorderSet recorders(knobs.wantsTrace());
    telemetry::MetricSet metrics(knobs.wantsMetrics());
    const double base =
        avgLatencyUs(32u << 10, 2048, knobs.tasklets,
                     recorders.add("heap 32KB / alloc 2KB base"),
                     metrics.add("heap 32KB / alloc 2KB base"));

    util::Table table("Fig 7: straw-man slowdown vs heap size x "
                      "(de)allocation size (normalized to 32KB/2KB)");
    table.setHeader({"Alloc size \\ Heap", "32KB", "128KB", "512KB", "2MB",
                     "8MB", "32MB"});
    for (auto it = std::rbegin(sizes); it != std::rend(sizes); ++it) {
        const uint32_t size = *it;
        std::vector<std::string> row{std::to_string(size) + " B"};
        for (uint32_t heap : heaps) {
            const std::string name =
                "heap " + std::to_string(heap >> 10) + "KB / alloc "
                + std::to_string(size) + "B";
            row.push_back(util::Table::num(
                avgLatencyUs(heap, size, knobs.tasklets,
                             recorders.add(name), metrics.add(name))
                    / base,
                1));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: slowdown grows toward the "
                 "bottom-right of the paper's heat map (deeper trees: "
                 "larger heap, smaller blocks); the paper reports up to "
                 "12x at 32B/32MB.\n";

    if (!trace::emitReports(std::cout, recorders, metrics,
                            knobs.occupancy, knobs.metrics,
                            knobs.tracePath))
        return 1;

    if (!knobs.jsonPath.empty()) {
        std::ofstream out(knobs.jsonPath);
        if (!out) {
            std::cerr << "cannot open " << knobs.jsonPath << "\n";
            return 1;
        }
        util::JsonWriter j(out);
        j.beginObject();
        j.key("bench").value("fig07_strawman_sweep");
        j.key("tasklets").value(knobs.tasklets);
        j.key("table");
        table.writeJson(j);
        telemetry::writeMetricsJson(j, metrics);
        j.endObject();
        out << "\n";
    }
    return 0;
}
