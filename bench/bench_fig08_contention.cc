/**
 * @file
 * Reproduces Fig 8: (a) memory allocation latency over the sequence of
 * requests when an UPMEM-style program runs the straw-man allocator
 * with 1 vs 16 tasklets (contention causes large fluctuations), and
 * (b) the latency breakdown (Run / Busy-waiting / Idle) of both runs.
 */

#include <algorithm>
#include <fstream>
#include <iostream>
#include <vector>

#include "sim/mutex.hh"
#include "telemetry/export.hh"
#include "trace/chrome_trace.hh"
#include "util/cli.hh"
#include "util/json.hh"
#include "util/table.hh"
#include "workloads/microbench.hh"

using namespace pim;
using namespace pim::workloads;

namespace {

MicrobenchResult
run(unsigned tasklets, trace::Recorder *rec, telemetry::Registry *met)
{
    MicrobenchConfig cfg;
    cfg.allocator = core::AllocatorKind::StrawMan;
    cfg.tasklets = tasklets;
    cfg.allocsPerTasklet = tasklets == 1 ? 320 : 20; // ~320 events total
    cfg.allocSize = 32;
    cfg.traceEvents = true;
    cfg.recorder = rec;
    cfg.metrics = met;
    return runMicrobench(cfg);
}

} // namespace

int
main(int argc, char **argv)
{
    // The 1-vs-16 tasklet contrast IS the figure, so --tasklets is
    // accepted (uniform knob set) but not applied to the two runs.
    util::Cli cli(argc, argv, util::benchKnobNames());
    util::BenchKnobs defs;
    defs.dpus = 1;
    defs.sample = 1;
    const util::BenchKnobs knobs = util::parseBenchKnobs(cli, defs);

    trace::RecorderSet recorders(knobs.wantsTrace());
    telemetry::MetricSet metrics(knobs.wantsMetrics());
    const auto one =
        run(1, recorders.add("1 tasklet"), metrics.add("1 tasklet"));
    const auto sixteen = run(16, recorders.add("16 tasklets"),
                             metrics.add("16 tasklets"));

    // (a) Latency over the allocation sequence, ordered by start time.
    auto series = [](const MicrobenchResult &r) {
        std::vector<alloc::AllocEvent> ev = r.allocStats.events;
        std::sort(ev.begin(), ev.end(),
                  [](const auto &a, const auto &b) {
                      return a.startCycle < b.startCycle;
                  });
        return ev;
    };
    const auto s1 = series(one);
    const auto s16 = series(sixteen);

    util::Table seq("Fig 8(a): allocation latency (us) over the request "
                    "sequence (every 20th request shown)");
    seq.setHeader({"Request #", "1 thread", "16 threads"});
    const sim::DpuConfig dcfg;
    for (size_t i = 0; i < std::min(s1.size(), s16.size()); i += 20) {
        seq.addRow({util::Table::num(uint64_t{i}),
                    util::Table::num(
                        dcfg.cyclesToMicros(s1[i].latencyCycles), 1),
                    util::Table::num(
                        dcfg.cyclesToMicros(s16[i].latencyCycles), 1)});
    }
    seq.print(std::cout);

    auto spread = [&](const std::vector<alloc::AllocEvent> &ev) {
        uint64_t lo = UINT64_MAX, hi = 0;
        for (const auto &e : ev) {
            lo = std::min(lo, e.latencyCycles);
            hi = std::max(hi, e.latencyCycles);
        }
        return std::pair{dcfg.cyclesToMicros(lo), dcfg.cyclesToMicros(hi)};
    };
    const auto [lo1, hi1] = spread(s1);
    const auto [lo16, hi16] = spread(s16);
    std::cout << "\nLatency range 1 thread:  [" << util::Table::num(lo1, 1)
              << ", " << util::Table::num(hi1, 1) << "] us (stable)\n"
              << "Latency range 16 threads: [" << util::Table::num(lo16, 1)
              << ", " << util::Table::num(hi16, 1)
              << "] us (contention-driven fluctuations)\n\n";

    // (b) Breakdown.
    util::Table bd("Fig 8(b): latency breakdown of memory allocation");
    bd.setHeader({"Threads", "Run %", "Busy-waiting %", "Idle(Memory) %",
                  "Idle(Etc) %"});
    for (const auto &[name, r] :
         {std::pair<const char *, const MicrobenchResult &>{"1", one},
          {"16", sixteen}}) {
        bd.addRow({name,
                   util::Table::num(
                       r.breakdown.fraction(sim::CycleKind::Run) * 100, 1),
                   util::Table::num(
                       r.breakdown.fraction(sim::CycleKind::BusyWait) * 100,
                       1),
                   util::Table::num(
                       r.breakdown.fraction(sim::CycleKind::IdleMemory)
                           * 100,
                       1),
                   util::Table::num(
                       r.breakdown.fraction(sim::CycleKind::IdleEtc) * 100,
                       1)});
    }
    bd.print(std::cout);
    std::cout << "\nExpected shape: the 16-thread run is dominated by "
                 "busy-waiting on the allocator mutex (paper Fig 8(b)).\n\n";

    // Allocator-mutex contention counters: what the busy-waiting above
    // is made of, and — under PIM_SIM_MUTEX=queue — how many spin
    // re-checks the parked-waiter mode elided while reproducing the
    // identical timing.
    util::Table mx(std::string("Allocator mutex statistics (mode: ")
                   + sim::SimMutex::modeName(sixteen.mutexMode) + ")");
    mx.setHeader({"Threads", "Acquisitions", "Contended", "Parked",
                  "Woken", "Elided spin events"});
    for (const auto &[name, r] :
         {std::pair<const char *, const MicrobenchResult &>{"1", one},
          {"16", sixteen}}) {
        mx.addRow({name, util::Table::num(r.mutexStats.acquisitions),
                   util::Table::num(r.mutexStats.contended),
                   util::Table::num(r.mutexStats.parked),
                   util::Table::num(r.mutexStats.woken),
                   util::Table::num(r.mutexStats.elidedSpinEvents)});
    }
    mx.print(std::cout);

    if (!trace::emitReports(std::cout, recorders, metrics,
                            knobs.occupancy, knobs.metrics,
                            knobs.tracePath))
        return 1;

    if (!knobs.jsonPath.empty()) {
        std::ofstream out(knobs.jsonPath);
        if (!out) {
            std::cerr << "cannot open " << knobs.jsonPath << "\n";
            return 1;
        }
        util::JsonWriter j(out);
        j.beginObject();
        j.key("bench").value("fig08_contention");
        j.key("latencySeries");
        seq.writeJson(j);
        j.key("breakdown");
        bd.writeJson(j);
        j.key("mutex_mode")
            .value(sim::SimMutex::modeName(sixteen.mutexMode));
        j.key("mutexStats");
        mx.writeJson(j);
        telemetry::writeMetricsJson(j, metrics);
        j.endObject();
        out << "\n";
    }
    return 0;
}
