/**
 * @file
 * Reproduces Fig 15: average memory allocation latency of the straw-man
 * PIM buddy allocator, PIM-malloc-SW, and PIM-malloc-HW/SW for 32 B,
 * 256 B, and 4 KB requests under (a) a single tasklet (no contention)
 * and (b) 16 tasklets (lock contention). Each tasklet issues 128
 * allocations. Also prints the headline speedups (paper: PIM-malloc-SW
 * 66x over the straw-man; HW/SW +31% over SW).
 *
 * --json <file> emits the cases and headline geomeans as a BENCH_*.json
 * artifact, like the other headline figure benches.
 */

#include <fstream>
#include <iostream>
#include <vector>

#include "telemetry/export.hh"
#include "util/cli.hh"
#include "util/json.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "workloads/microbench.hh"

using namespace pim;

namespace {

double
avgLatency(core::AllocatorKind kind, unsigned tasklets, uint32_t size,
           telemetry::Registry *met)
{
    workloads::MicrobenchConfig cfg;
    cfg.allocator = kind;
    cfg.tasklets = tasklets;
    cfg.allocsPerTasklet = 128;
    cfg.allocSize = size;
    cfg.freeEachAlloc = false;
    cfg.metrics = met;
    return workloads::runMicrobench(cfg).avgLatencyUs;
}

struct Case
{
    unsigned tasklets;
    uint32_t size;
    double strawUs;
    double swUs;
    double hwswUs;
};

} // namespace

int
main(int argc, char **argv)
{
    util::Cli cli(argc, argv, "json,metrics");
    const util::BenchKnobs knobs = util::parseBenchKnobs(cli);

    const uint32_t sizes[] = {32, 256, 4096};
    const unsigned thread_counts[] = {1, 16};
    telemetry::MetricSet metrics(knobs.metrics);

    std::vector<Case> cases;
    std::vector<double> sw_speedups;   // straw-man / SW
    std::vector<double> hwsw_speedups; // SW / HW-SW

    for (unsigned tasklets : thread_counts) {
        util::Table table(
            std::string("Fig 15(") + (tasklets == 1 ? "a" : "b")
            + "): average allocation latency (us), "
            + std::to_string(tasklets) + " tasklet(s) x 128 allocs");
        table.setHeader({"Alloc size", "Straw-man", "PIM-malloc-SW",
                         "PIM-malloc-HW/SW", "SW speedup", "HW/SW vs SW"});
        for (uint32_t size : sizes) {
            const std::string tag = std::to_string(tasklets) + "T/"
                + std::to_string(size) + "B ";
            const double straw =
                avgLatency(core::AllocatorKind::StrawMan, tasklets, size,
                           metrics.add(tag + "straw-man"));
            const double sw =
                avgLatency(core::AllocatorKind::PimMallocSw, tasklets,
                           size, metrics.add(tag + "SW"));
            const double hwsw = avgLatency(
                core::AllocatorKind::PimMallocHwSw, tasklets, size,
                metrics.add(tag + "HW/SW"));
            cases.push_back({tasklets, size, straw, sw, hwsw});
            sw_speedups.push_back(straw / sw);
            hwsw_speedups.push_back(sw / hwsw);
            table.addRow({std::to_string(size) + " B",
                          util::Table::num(straw, 2),
                          util::Table::num(sw, 2),
                          util::Table::num(hwsw, 2),
                          util::Table::num(straw / sw, 1) + "x",
                          util::Table::num((sw / hwsw - 1.0) * 100.0, 1)
                              + "%"});
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    const double sw_geomean = util::geomean(sw_speedups);
    const double hwsw_geomean = util::geomean(hwsw_speedups);
    util::Table headline("Headline speedups (paper: 66x and +31%)");
    headline.setHeader({"Metric", "Measured"});
    headline.addRow({"PIM-malloc-SW vs straw-man (geomean)",
                     util::Table::num(sw_geomean, 1) + "x"});
    std::string hwsw_gain = "+";
    hwsw_gain += util::Table::num((hwsw_geomean - 1.0) * 100.0, 1);
    hwsw_gain += "%";
    headline.addRow({"PIM-malloc-HW/SW vs SW (geomean)", hwsw_gain});
    headline.print(std::cout);

    telemetry::printMetrics(std::cout, metrics, knobs.metrics);

    if (!knobs.jsonPath.empty()) {
        std::ofstream out(knobs.jsonPath);
        if (!out) {
            std::cerr << "cannot open " << knobs.jsonPath << "\n";
            return 1;
        }
        util::JsonWriter j(out);
        j.beginObject();
        j.key("bench").value("fig15_microbench");
        j.key("allocs_per_tasklet").value(128);
        j.key("cases").beginArray();
        for (const Case &c : cases) {
            j.beginObject();
            j.key("tasklets").value(c.tasklets);
            j.key("alloc_size").value(c.size);
            j.key("straw_man_us").value(c.strawUs);
            j.key("pim_malloc_sw_us").value(c.swUs);
            j.key("pim_malloc_hwsw_us").value(c.hwswUs);
            j.key("sw_speedup").value(c.strawUs / c.swUs);
            j.key("hwsw_vs_sw").value(c.swUs / c.hwswUs);
            j.endObject();
        }
        j.endArray();
        j.key("sw_speedup_geomean").value(sw_geomean);
        j.key("hwsw_vs_sw_geomean").value(hwsw_geomean);
        telemetry::writeMetricsJson(j, metrics);
        j.endObject();
        std::cout << "\nJSON written to " << knobs.jsonPath << "\n";
    }
    return 0;
}
