/**
 * @file
 * Fault-tolerance study of the disaggregated LLM serving pipeline:
 * sweep the rank-failure MTBF and compare, at every point, recovery
 * (failed ranks replaced from the spare pool, affected KV re-shipped
 * over the double-buffered scatter path, in-flight requests
 * re-admitted) against a no-recovery baseline that sheds the affected
 * requests (fault::FaultPolicy::Drop).
 *
 * Every run — including the fault-free reference — serves on the same
 * numRanks - spareRanks partition (the reference uses an armed-but-
 * never-firing plan), so goodput / availability / tail-latency
 * inflation isolate the cost of the faults themselves, not of the
 * held-back spares. Reported per point:
 *
 *   - goodput (tokens actually decoded per second) and completed vs
 *     lost requests,
 *   - availability (1 - unrepaired-failure time / makespan),
 *   - p99 TTFT / TPOT inflation over the fault-free reference (lost
 *     TPOT steps count against the SLO: a recovered request's gap
 *     stays in its percentile trace),
 *   - recovery traffic (KV re-shipped to replacements) and mean
 *     time-to-repair.
 *
 * Deterministic in (--fault-seed, config) for any --threads /
 * PIM_SIM_THREADS value. `--mtbf` narrows the sweep to one point;
 * `--fault-spec` layers extra fault classes (transient transfer
 * glitches, degraded ranks, hangs) over every swept point. CI
 * smoke-runs this as BENCH_fault_tolerance.json.
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "fault/fault_plan.hh"
#include "telemetry/export.hh"
#include "trace/chrome_trace.hh"
#include "util/cli.hh"
#include "util/json.hh"
#include "util/table.hh"
#include "workloads/llm/serving_engine.hh"

using namespace pim;
using namespace pim::workloads::llm;

namespace {

/** An MTBF so far beyond the plan horizon that no failure ever fires:
 *  the fault-free reference still runs the full fault harness (same
 *  spare pool, same partition, same injector hooks). */
constexpr double kNeverMtbfSec = 1e30;

struct Point
{
    double mtbfSec;     ///< rank-failure MTBF (kNeverMtbfSec = none)
    FaultPolicy policy;
    ServingResult r;
};

ServingResult
runPoint(const ServingConfig &base, const util::BenchKnobs &knobs,
         const fault::FaultSpec &extra, double mtbf, FaultPolicy policy,
         unsigned spare_ranks, telemetry::Registry *metrics)
{
    ServingEngineConfig ecfg;
    ecfg.base = base;
    ecfg.base.metrics = metrics;
    ecfg.mode = ServingMode::Disaggregated;
    ecfg.simThreads = knobs.threads;
    ecfg.faultSpec = extra;
    ecfg.faultSpec.rankMtbfSec = mtbf;
    ecfg.faultSeed = knobs.faultSeed;
    ecfg.faultPolicy = policy;
    ecfg.spareRanks = spare_ranks;
    const ServingScheme scheme{core::AllocatorKind::PimMallocHwSw};
    return ServingEngine(scheme, ecfg).run();
}

double
inflationPct(double ref, double v)
{
    return ref > 0 ? (v - ref) / ref * 100.0 : 0.0;
}

std::string
mtbfLabel(double mtbf)
{
    return mtbf >= kNeverMtbfSec ? "none"
                                 : util::Table::num(mtbf, 1) + " s";
}

} // namespace

int
main(int argc, char **argv)
{
    util::Cli cli(argc, argv,
                  util::benchKnobNames("requests,rate,spare-ranks"));
    // Default seed chosen so the default sweep's deaths land on busy
    // decode ranks (KV re-ship, request shedding) instead of already-
    // drained prefill ranks; --fault-seed overrides.
    util::BenchKnobs defs;
    defs.faultSeed = 7;
    const util::BenchKnobs knobs = util::parseBenchKnobs(cli, defs);

    ServingConfig base;
    base.numDpus = knobs.dpus;
    base.allocTasklets = knobs.tasklets;
    base.numRequests =
        static_cast<unsigned>(cli.getInt("requests", 30));
    base.arrivalRatePerSec = cli.getDouble("rate", base.arrivalRatePerSec);
    const unsigned spare_ranks =
        static_cast<unsigned>(cli.getInt("spare-ranks", 4));

    // Extra fault classes (--fault-spec) ride along at every swept
    // point; --mtbf in the spec itself would fight the sweep, so the
    // sweep owns the rank-failure rate.
    const fault::FaultSpec extra =
        fault::FaultSpec::fromKnobs(knobs.faultSpec, 0.0);

    // Harsher left to right. --mtbf narrows the sweep to one point.
    std::vector<double> sweep{8.0, 4.0, 2.0};
    if (knobs.mtbf > 0.0)
        sweep = {knobs.mtbf};

    telemetry::MetricSet metrics(knobs.wantsMetrics());

    const ServingResult ref = runPoint(base, knobs, extra, kNeverMtbfSec,
                                       FaultPolicy::Recover, spare_ranks,
                                       metrics.add("reference"));

    std::vector<Point> points;
    for (const double mtbf : sweep) {
        for (const FaultPolicy policy :
             {FaultPolicy::Recover, FaultPolicy::Drop}) {
            const std::string name = mtbfLabel(mtbf) + "/"
                + (policy == FaultPolicy::Recover ? "Recover" : "Drop");
            points.push_back({mtbf, policy,
                              runPoint(base, knobs, extra, mtbf, policy,
                                       spare_ranks,
                                       metrics.add(name))});
        }
    }

    util::Table tbl("Fault tolerance: recovery vs request shedding "
                    "under rank failures (fault-free reference on the "
                    "same partition)");
    tbl.setHeader({"MTBF", "Policy", "Done", "Lost", "Goodput (tok/s)",
                   "Avail %", "TTFT p99 infl %", "TPOT p99 infl %",
                   "Recovery (MB)", "MTTR (ms)", "Failures"});
    auto addRow = [&](const char *policy_name, double mtbf,
                      const ServingResult &r) {
        tbl.addRow({mtbfLabel(mtbf), policy_name,
                    util::Table::num(uint64_t{r.completedRequests}),
                    util::Table::num(uint64_t{r.lostRequests}),
                    util::Table::num(r.throughputTokensPerSec, 0),
                    util::Table::num(r.availability * 100.0, 2),
                    util::Table::num(
                        inflationPct(ref.ttftP99Ms, r.ttftP99Ms), 1),
                    util::Table::num(
                        inflationPct(ref.tpotP99Ms, r.tpotP99Ms), 1),
                    util::Table::num(
                        static_cast<double>(r.recoveryBytes) / 1e6, 1),
                    util::Table::num(r.mttrMeanSec * 1e3, 1),
                    util::Table::num(uint64_t{r.rankFailures})});
    };
    addRow("reference", kNeverMtbfSec, ref);
    for (const Point &p : points)
        addRow(p.policy == FaultPolicy::Recover ? "Recover" : "Drop",
               p.mtbfSec, p.r);
    tbl.print(std::cout);
    std::cout
        << "\nExpected shape: Recover completes every request at every "
           "MTBF (goodput dips only by re-shipped KV and re-decoded "
           "steps), while Drop sheds the requests resident on each "
           "failed rank; availability and tail inflation worsen as the "
           "MTBF shrinks.\n";

    if (!knobs.jsonPath.empty()) {
        std::ofstream out(knobs.jsonPath);
        if (!out) {
            std::cerr << "cannot open " << knobs.jsonPath << "\n";
            return 1;
        }
        util::JsonWriter j(out);
        j.beginObject();
        j.key("bench").value("fault_tolerance");
        j.key("dpus").value(knobs.dpus);
        j.key("requests").value(base.numRequests);
        j.key("arrival_rate_per_sec").value(base.arrivalRatePerSec);
        j.key("fault_seed").value(knobs.faultSeed);
        j.key("spare_ranks").value(spare_ranks);
        auto emit = [&](const char *policy_name, double mtbf,
                        const ServingResult &r) {
            j.beginObject();
            j.key("mtbf_sec").value(
                mtbf >= kNeverMtbfSec ? 0.0 : mtbf);
            j.key("policy").value(policy_name);
            j.key("completed_requests").value(r.completedRequests);
            j.key("lost_requests").value(r.lostRequests);
            j.key("lost_steps").value(r.lostSteps);
            j.key("goodput_tokens_per_sec")
                .value(r.throughputTokensPerSec);
            j.key("availability").value(r.availability);
            j.key("ttft_p99_ms").value(r.ttftP99Ms);
            j.key("ttft_p99_inflation_pct")
                .value(inflationPct(ref.ttftP99Ms, r.ttftP99Ms));
            j.key("tpot_p99_ms").value(r.tpotP99Ms);
            j.key("tpot_p99_inflation_pct")
                .value(inflationPct(ref.tpotP99Ms, r.tpotP99Ms));
            j.key("recovery_bytes").value(r.recoveryBytes);
            j.key("mttr_mean_sec").value(r.mttrMeanSec);
            j.key("rank_failures").value(r.rankFailures);
            j.key("makespan_sec").value(r.makespanSec);
            j.endObject();
        };
        j.key("reference");
        emit("reference", kNeverMtbfSec, ref);
        j.key("sweep").beginArray();
        for (const Point &p : points)
            emit(p.policy == FaultPolicy::Recover ? "Recover" : "Drop",
                 p.mtbfSec, p.r);
        j.endArray();
        telemetry::writeMetricsJson(j, metrics);
        j.endObject();
        out << "\n";
        if (!out) {
            std::cerr << "write failed: " << knobs.jsonPath << "\n";
            return 1;
        }
        std::cout << "\nJSON written to " << knobs.jsonPath << "\n";
    }

    // No span recorders here; a --trace capture carries the per-point
    // counter tracks alone.
    const trace::RecorderSet no_recorders(false);
    if (!trace::emitReports(std::cout, no_recorders, metrics,
                            knobs.occupancy, knobs.metrics,
                            knobs.tracePath))
        return 1;
    return 0;
}
