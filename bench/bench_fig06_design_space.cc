/**
 * @file
 * Reproduces Fig 6: (a) PIM memory allocation latency of the four
 * Table I design strategies as the number of PIM cores grows from 1 to
 * 512 (each core issuing 128 x 32 B allocations), and (b) the
 * transfer-vs-compute latency breakdown at 512 cores.
 *
 * Shared knobs: --threads bounds the Overlapped replay's host pool;
 * --trace <file> exports the rank-pipelined replays as one Chrome/
 * Perfetto process per strategy; --occupancy prints each replay's
 * per-lane busy breakdown (which lane — host, bus, or a rank — ends
 * the makespan).
 */

#include <iostream>
#include <vector>

#include "core/design_space.hh"
#include "telemetry/export.hh"
#include "trace/chrome_trace.hh"
#include "util/cli.hh"
#include "util/table.hh"

using namespace pim;
using namespace pim::core;

int
main(int argc, char **argv)
{
    util::Cli cli(argc, argv, "threads,trace,occupancy,metrics");
    const util::BenchKnobs knobs = util::parseBenchKnobs(cli);

    util::Table scaling("Fig 6(a): allocation latency (seconds) vs number "
                        "of PIM cores");
    scaling.setHeader({"PIM cores", "Host-Meta/Host-Exec",
                       "Host-Meta/PIM-Exec", "PIM-Meta/Host-Exec",
                       "PIM-Meta/PIM-Exec"});
    for (unsigned n = 1; n <= 512; n *= 2) {
        DesignSpaceParams p;
        p.numDpus = n;
        std::vector<std::string> row{util::Table::num(uint64_t{n})};
        for (auto s : kAllStrategies)
            row.push_back(
                util::Table::num(evalStrategy(s, p).totalSeconds(), 4));
        scaling.addRow(std::move(row));
    }
    scaling.print(std::cout);
    std::cout << "\n";

    util::Table breakdown("Fig 6(b): latency breakdown at 512 PIM cores");
    breakdown.setHeader({"Design strategy", "Transfer %", "Compute %",
                         "Total (s)"});
    DesignSpaceParams p512;
    p512.numDpus = 512;
    p512.simThreads = knobs.threads;
    for (auto s : kAllStrategies) {
        const auto r = evalStrategy(s, p512);
        breakdown.addRow({designStrategyName(s),
                          util::Table::num(r.transferFraction() * 100, 1),
                          util::Table::num(
                              (1 - r.transferFraction()) * 100, 1),
                          util::Table::num(r.totalSeconds(), 3)});
    }
    breakdown.print(std::cout);
    std::cout << "\n";

    // Beyond the paper: the same four pseudo-programs replayed on the
    // async command-queue runtime at rank granularity, so host compute
    // and bus transfers overlap other ranks' execution.
    trace::RecorderSet recorders(knobs.wantsTrace());
    telemetry::MetricSet metrics(knobs.wantsMetrics());
    util::Table overlap("Rank-pipelined (async command queue) vs serial "
                        "at 512 PIM cores");
    overlap.setHeader({"Design strategy", "Serial (s)", "Overlapped (s)",
                       "Hidden (s)", "Speedup"});
    for (const auto s : kAllStrategies) {
        const auto serial = evalStrategy(s, p512);
        DesignSpaceParams p = p512;
        p.recorder = recorders.add(designStrategyName(s));
        p.metrics = metrics.add(designStrategyName(s));
        const auto async = evalStrategy(s, p, ExecutionMode::Overlapped);
        overlap.addRow(
            {designStrategyName(s),
             util::Table::num(serial.totalSeconds(), 3),
             util::Table::num(async.totalSeconds(), 3),
             util::Table::num(async.overlapSavedSeconds(), 3),
             util::Table::num(
                 serial.totalSeconds() / async.totalSeconds(), 2)
                 + "x"});
    }
    overlap.print(std::cout);
    std::cout << "\nExpected shape: only PIM-Metadata/PIM-Executed stays "
                 "flat as cores grow; metadata-moving strategies are "
                 "transfer-dominated (paper Fig 6), and rank-pipelining "
                 "only partially hides their transfers.\n";

    if (!trace::emitReports(std::cout, recorders, metrics,
                            knobs.occupancy, knobs.metrics,
                            knobs.tracePath, "Overlapped occupancy: "))
        return 1;
    return 0;
}
