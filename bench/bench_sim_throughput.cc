/**
 * @file
 * Simulator-throughput benchmark: how many simulation events (cycle
 * charges) per second of host wall time the per-DPU engine sustains.
 * This is the metric the horizon scheduler + fiber rework optimizes, and
 * it feeds the repo's perf trajectory (BENCH_*.json) via --json.
 *
 * Cases: 1-tasklet (uncontended) and 16-tasklet (mutex-contended)
 * alloc/free loops on PIM-malloc-SW, the paper's default design point,
 * plus a 16-tasklet pure lock/unlock pounding loop that isolates mutex
 * contention (the case PIM_SIM_MUTEX=queue accelerates).
 *
 * Throughput is reported in *model* events: real cycle charges plus the
 * spin re-checks the queue mutex mode elides analytically. Both mutex
 * modes simulate the identical event stream (same clocks, same
 * breakdowns), so model events/s is the honest cross-mode metric —
 * queue mode does the same simulation work per wall second, just
 * without materializing the spin charges.
 *
 * --trace/--occupancy replay each case once, untimed, with the
 * per-tasklet trace hook attached (PIM_TRACE_SIM builds), so the
 * measured loops stay undisturbed while the capture still shows how
 * the tasklets interleave.
 */

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/allocator_factory.hh"
#include "core/command_queue.hh"
#include "core/parallel_engine.hh"
#include "core/pim_system.hh"
#include "sim/dpu.hh"
#include "sim/fiber.hh"
#include "sim/mutex.hh"
#include "sim/scheduler.hh"
#include "telemetry/export.hh"
#include "trace/chrome_trace.hh"
#include "util/cli.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace pim;

namespace {

struct CaseResult
{
    std::string name;
    unsigned tasklets = 0;
    uint64_t simEvents = 0;
    /** Spin re-checks elided by the queue mutex mode (0 under spin). */
    uint64_t elidedEvents = 0;
    /** simEvents + elidedEvents == the spin model's event count. */
    uint64_t modelEvents = 0;
    uint64_t simCycles = 0;
    double wallSeconds = 0.0;
    double eventsPerSec = 0.0;
};

void
finishCase(CaseResult &res, double best)
{
    res.modelEvents = res.simEvents + res.elidedEvents;
    res.wallSeconds = best;
    res.eventsPerSec =
        best > 0.0 ? static_cast<double>(res.modelEvents) / best : 0.0;
}

CaseResult
runCase(unsigned tasklets, unsigned allocs, unsigned reps)
{
    CaseResult res;
    res.name = std::to_string(tasklets) + "-tasklet alloc/free";
    res.tasklets = tasklets;

    // Best-of-N wall time so a noisy host doesn't hide a regression.
    double best = -1.0;
    for (unsigned rep = 0; rep < reps; ++rep) {
        // Fresh one-DPU system per rep (clean heap); timing wraps only
        // the per-DPU event loop, so the bench still measures the
        // scheduler, not the runtime plumbing.
        core::PimSystem sys(core::singleDpuConfig());
        sim::Dpu &dpu = sys.dpu(0);
        core::AllocatorOverrides ov;
        ov.numTasklets = tasklets;
        auto allocator =
            core::makeAllocator(dpu, core::AllocatorKind::PimMallocSw, ov);
        dpu.run(1, [&](sim::Tasklet &t) { allocator->init(t); });

        const auto start = std::chrono::steady_clock::now();
        dpu.run(tasklets, [&](sim::Tasklet &t) {
            for (unsigned i = 0; i < allocs; ++i) {
                const sim::MramAddr addr = allocator->malloc(t, 32);
                PIM_ASSERT(addr != sim::kNullAddr, "heap exhausted");
                const bool ok = allocator->free(t, addr);
                PIM_ASSERT(ok, "double free");
            }
        });
        const std::chrono::duration<double> wall =
            std::chrono::steady_clock::now() - start;

        if (best < 0.0 || wall.count() < best) {
            best = wall.count();
            res.simEvents = dpu.lastSimEvents();
            res.simCycles = dpu.lastElapsedCycles();
            const sim::SimMutex *m = allocator->contentionMutex();
            res.elidedEvents = m != nullptr ? m->elidedSpinEvents() : 0;
        }
    }
    finishCase(res, best);
    return res;
}

/**
 * Mutex-pounding loop: 16 tasklets fighting over one lock with a
 * critical section long enough that every blocked tasklet re-checks
 * many times per hold (the backoff batch caps at 256 instructions), the
 * pathological case for the spin model — nearly all charges are
 * busy-wait re-checks. This is the scenario the parked-waiter queue
 * mode targets: it elides those charges while reproducing their timing
 * analytically, so the identical simulation costs a fraction of the
 * host work.
 */
CaseResult
runMutexCase(unsigned tasklets, unsigned iters, unsigned reps)
{
    CaseResult res;
    res.name = std::to_string(tasklets) + "-tasklet contended mutex";
    res.tasklets = tasklets;

    double best = -1.0;
    for (unsigned rep = 0; rep < reps; ++rep) {
        sim::Dpu dpu;
        sim::SimMutex mutex; // default mode: PIM_SIM_MUTEX

        const auto start = std::chrono::steady_clock::now();
        dpu.run(tasklets, [&](sim::Tasklet &t) {
            for (unsigned i = 0; i < iters; ++i) {
                mutex.lock(t);
                t.execute(3000 + 100 * (t.id() % 4));
                mutex.unlock(t);
                t.execute(60);
            }
        });
        const std::chrono::duration<double> wall =
            std::chrono::steady_clock::now() - start;

        if (best < 0.0 || wall.count() < best) {
            best = wall.count();
            res.simEvents = dpu.lastSimEvents();
            res.simCycles = dpu.lastElapsedCycles();
            res.elidedEvents = mutex.elidedSpinEvents();
        }
    }
    finishCase(res, best);
    return res;
}

/**
 * Queue-pressure result: how fast the command-queue *runtime* drains a
 * storm of tiny commands on a multi-thousand-rank system, where the
 * per-command orchestration (chain build, slot→rank folding, arenas)
 * dominates and the simulated DPU work is negligible. This is the case
 * the O(slots) partition fold and the pipelined drain accelerate.
 */
struct QueuePressureResult
{
    unsigned ranks = 0;
    unsigned waves = 0;
    uint64_t commands = 0;
    /** End-to-end wall of the command script (enqueue + drains). */
    double wallSeconds = 0.0;
    /** Cumulative drain phase walls (CommandQueue::drainStats; the
     *  phases overlap under the pipelined mode). */
    double phase1Sec = 0.0;
    double phase2Sec = 0.0;
    double commandsPerSec = 0.0;
    /** Simulated makespan — deterministic, identical across drain
     *  modes and thread counts (the fidelity cross-check). */
    double simSeconds = 0.0;
    const char *drainMode = "";
};

QueuePressureResult
runQueuePressure(unsigned ranks, unsigned waves, unsigned reps)
{
    QueuePressureResult res;
    res.ranks = ranks;
    res.waves = waves;
    res.drainMode = core::CommandQueue::drainModeName(
        core::CommandQueue::defaultDrainMode());

    double best = -1.0;
    for (unsigned rep = 0; rep < reps; ++rep) {
        core::PimSystemConfig cfg;
        cfg.numDpus = ranks * 64;
        cfg.dpusPerRank = 64;
        cfg.samplePerRank = true; // one materialized DPU per rank
        // The launch bodies never touch DPU memory; small backing
        // stores keep thousands of materialized DPUs cheap.
        cfg.dpuCfg.mramBytes = 1u << 20;
        cfg.dpuCfg.wramBytes = 4u << 10;
        core::PimSystem sys(cfg);
        core::CommandQueue queue(sys);
        const core::DpuSet all = sys.all();
        std::vector<core::DpuSet> rank_sets;
        rank_sets.reserve(ranks);
        for (unsigned r = 0; r < ranks; ++r)
            rank_sets.push_back(sys.rank(r));

        const auto start = std::chrono::steady_clock::now();
        double makespan = 0.0;
        for (unsigned w = 0; w < waves; ++w) {
            // A few full-system launches (the worst case for the old
            // O(ranks x slots) fold) ...
            for (unsigned i = 0; i < 32; ++i) {
                queue.launch(all, 1,
                             [i](sim::Tasklet &t, unsigned global) {
                                 t.execute(16 + (global + i) % 7);
                             });
            }
            // ... and a storm of single-rank tiny launches and async
            // copies, alternating, like a sharded serving step.
            for (unsigned r = 0; r < ranks; ++r) {
                if (r % 2 == 0) {
                    queue.launch(rank_sets[r], 1,
                                 [](sim::Tasklet &t, unsigned) {
                                     t.execute(24);
                                 });
                } else {
                    queue.memcpyAsync(rank_sets[r], 64,
                                      core::CopyDirection::HostToPim);
                }
            }
            makespan = queue.sync();
        }
        const std::chrono::duration<double> wall =
            std::chrono::steady_clock::now() - start;

        if (best < 0.0 || wall.count() < best) {
            best = wall.count();
            const core::CommandQueue::DrainStats &st =
                queue.drainStats();
            res.commands = st.commands;
            res.phase1Sec = st.phase1Sec;
            res.phase2Sec = st.phase2Sec;
            res.simSeconds = makespan;
        }
    }
    res.wallSeconds = best;
    res.commandsPerSec = best > 0.0
        ? static_cast<double>(res.commands) / best : 0.0;
    return res;
}

#ifdef PIM_TRACE_SIM
/** Replay one case, untimed, recording per-tasklet spans into @p rec. */
void
tracedCase(unsigned tasklets, unsigned allocs, trace::Recorder &rec)
{
    core::PimSystem sys(core::singleDpuConfig());
    sim::Dpu &dpu = sys.dpu(0);
    core::AllocatorOverrides ov;
    ov.numTasklets = tasklets;
    auto allocator =
        core::makeAllocator(dpu, core::AllocatorKind::PimMallocSw, ov);
    dpu.run(1, [&](sim::Tasklet &t) { allocator->init(t); });
    dpu.attachTraceRecorder(&rec);
    dpu.setTraceOrigin(0.0);
    dpu.run(tasklets, [&](sim::Tasklet &t) {
        for (unsigned i = 0; i < allocs; ++i) {
            const sim::MramAddr addr = allocator->malloc(t, 32);
            PIM_ASSERT(addr != sim::kNullAddr, "heap exhausted");
            const bool ok = allocator->free(t, addr);
            PIM_ASSERT(ok, "double free");
        }
    });
}
#endif

} // namespace

int
main(int argc, char **argv)
{
    util::Cli cli(argc, argv,
                  "allocs,reps,qp-ranks,qp-waves,json,trace,occupancy,"
                  "metrics");
    const util::BenchKnobs knobs = util::parseBenchKnobs(cli);
    const unsigned allocs =
        static_cast<unsigned>(cli.getInt("allocs", 2048));
    const unsigned reps = static_cast<unsigned>(cli.getInt("reps", 3));
    const unsigned qp_ranks =
        static_cast<unsigned>(cli.getInt("qp-ranks", 2048));
    const unsigned qp_waves =
        static_cast<unsigned>(cli.getInt("qp-waves", 4));
    const std::string &json_path = knobs.jsonPath;

    // Run configuration, recorded alongside every result so BENCH_*
    // trajectories from different knob settings are distinguishable.
    const char *sched_name =
        sim::TaskletScheduler::policyFromEnv(std::getenv("PIM_SIM_SCHED"))
                == sim::TaskletScheduler::Policy::Horizon
            ? "horizon" : "naive";
    const char *mutex_mode =
        sim::SimMutex::modeName(sim::SimMutex::defaultMode());
    const unsigned threads = core::resolveSimThreads(knobs.threads);
    const bool affinity = core::ParallelDpuEngine::affinityFromEnv(
        std::getenv("PIM_SIM_AFFINITY"));

    std::vector<CaseResult> results;
    for (unsigned tasklets : {1u, 16u})
        results.push_back(runCase(tasklets, allocs, reps));
    results.push_back(runMutexCase(16, allocs / 4, reps));

    util::Table table(std::string("Simulator throughput (fiber backend: ")
                      + sim::Fiber::backendName() + ", sched: "
                      + sched_name + ", mutex: " + mutex_mode
                      + ", best of " + std::to_string(reps) + ")");
    table.setHeader({"Case", "Charged", "Elided", "Model events",
                     "Sim cycles", "Wall (ms)", "Events/sec"});
    for (const auto &r : results) {
        table.addRow({r.name, std::to_string(r.simEvents),
                      std::to_string(r.elidedEvents),
                      std::to_string(r.modelEvents),
                      std::to_string(r.simCycles),
                      util::Table::num(r.wallSeconds * 1e3, 2),
                      util::Table::num(r.eventsPerSec / 1e6, 2) + "M"});
    }
    table.print(std::cout);

    // Queue pressure: the command-queue runtime itself under a storm of
    // tiny commands (drain scaling, not DPU simulation).
    const QueuePressureResult qp =
        runQueuePressure(qp_ranks, qp_waves, reps);
    util::Table qp_table(
        std::string("Queue pressure (drain: ") + qp.drainMode + ", "
        + std::to_string(qp.ranks) + " ranks, "
        + std::to_string(qp.waves) + " waves, best of "
        + std::to_string(reps) + ")");
    qp_table.setHeader({"Commands", "Wall (ms)", "Phase1 (ms)",
                        "Phase2 (ms)", "Commands/sec", "Sim (s)"});
    qp_table.addRow({std::to_string(qp.commands),
                     util::Table::num(qp.wallSeconds * 1e3, 2),
                     util::Table::num(qp.phase1Sec * 1e3, 2),
                     util::Table::num(qp.phase2Sec * 1e3, 2),
                     util::Table::num(qp.commandsPerSec / 1e3, 1) + "K",
                     util::Table::num(qp.simSeconds, 6)});
    qp_table.print(std::cout);

    // The measured loops run on bare DPUs (no CommandQueue), so the
    // registries are filled from the best-rep results afterwards: the
    // timed region stays untouched whether metrics are on or off.
    telemetry::MetricSet metrics(knobs.metrics);
    for (const auto &r : results) {
        telemetry::Registry *met = metrics.add(r.name);
        if (met == nullptr)
            continue;
        met->counter("sim.events").add(r.simEvents);
        met->counter("sim.elided_spin_events").add(r.elidedEvents);
        met->counter("sim.model_events").add(r.modelEvents);
        met->counter("sim.cycles").add(r.simCycles);
    }
    telemetry::printMetrics(std::cout, metrics, knobs.metrics);

    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out) {
            std::cerr << "cannot open " << json_path << "\n";
            return 1;
        }
        util::JsonWriter j(out);
        j.beginObject();
        j.key("bench").value("sim_throughput");
        j.key("fiber_backend").value(sim::Fiber::backendName());
        j.key("sched").value(sched_name);
        j.key("mutex_mode").value(mutex_mode);
        j.key("threads").value(threads);
        j.key("affinity").value(affinity);
        j.key("allocs_per_tasklet").value(allocs);
        j.key("reps").value(reps);
        j.key("cases").beginArray();
        for (const auto &r : results) {
            j.beginObject();
            j.key("name").value(r.name);
            j.key("tasklets").value(r.tasklets);
            j.key("sim_events").value(r.simEvents);
            j.key("elided_spin_events").value(r.elidedEvents);
            j.key("model_events").value(r.modelEvents);
            j.key("sim_cycles").value(r.simCycles);
            j.key("wall_seconds").value(r.wallSeconds);
            j.key("events_per_sec").value(r.eventsPerSec);
            j.endObject();
        }
        j.endArray();
        j.key("queue_pressure").beginObject();
        j.key("drain_mode").value(qp.drainMode);
        j.key("ranks").value(qp.ranks);
        j.key("waves").value(qp.waves);
        j.key("commands").value(qp.commands);
        j.key("wall_seconds").value(qp.wallSeconds);
        j.key("phase1_sec").value(qp.phase1Sec);
        j.key("phase2_sec").value(qp.phase2Sec);
        j.key("commands_per_sec").value(qp.commandsPerSec);
        j.key("sim_seconds").value(qp.simSeconds);
        j.endObject();
        telemetry::writeMetricsJson(j, metrics);
        j.endObject();
        std::cout << "\nJSON written to " << json_path << "\n";
    }

    if (knobs.wantsTrace()) {
#ifdef PIM_TRACE_SIM
        trace::RecorderSet recorders(true);
        for (const auto &r : results)
            tracedCase(r.tasklets, allocs, *recorders.add(r.name));
        if (!trace::emitReports(std::cout, recorders, knobs.occupancy,
                                knobs.tracePath, "Tasklet occupancy: "))
            return 1;
#else
        std::cerr << "tasklet tracing was compiled out "
                     "(rebuild with -DPIM_TRACE_SIM=ON)\n";
        return 1;
#endif
    }
    return 0;
}
