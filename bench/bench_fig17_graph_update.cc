/**
 * @file
 * Reproduces Fig 17 (dynamic graph updates on a loc-gowalla-scale
 * synthetic dataset):
 *  (a) update throughput + cycle breakdown for the static CSR baseline
 *      and both dynamic structures under all three allocators;
 *  (b) distribution of pimMalloc() latency (percentiles);
 *  (c) allocation latency over time (sampled series);
 *  (d) normalized allocator-metadata DRAM transfer size, SW vs HW/SW.
 */

#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <vector>

#include "telemetry/export.hh"
#include "trace/chrome_trace.hh"
#include "util/cli.hh"
#include "util/json.hh"
#include "util/table.hh"
#include "workloads/graph/update_driver.hh"

using namespace pim;
using namespace pim::workloads::graph;

namespace {

GraphUpdateConfig
baseConfig(StructureKind s, core::AllocatorKind a,
           const util::BenchKnobs &knobs)
{
    GraphUpdateConfig cfg;
    cfg.structure = s;
    cfg.allocator = a;
    cfg.numDpus = knobs.dpus;
    cfg.sampleDpus = knobs.sample;
    cfg.simThreads = knobs.threads;
    cfg.tasklets = knobs.tasklets;
    cfg.faultSpec = fault::FaultSpec::fromKnobs(knobs.faultSpec,
                                                knobs.mtbf);
    cfg.faultSeed = knobs.faultSeed;
    // loc-gowalla scale: 196,591 nodes / 950,327 edges.
    cfg.gen.numNodes = 196591;
    cfg.gen.numEdges = 950327;
    cfg.traceEvents = true;
    return cfg;
}

struct NamedRun
{
    std::string name;
    GraphUpdateResult result;
};

} // namespace

int
main(int argc, char **argv)
{
    util::Cli cli(argc, argv, util::benchKnobNames());
    const util::BenchKnobs knobs = util::parseBenchKnobs(cli);

    // One recorder + one metrics registry per configuration.
    trace::RecorderSet recorders(knobs.wantsTrace());
    telemetry::MetricSet metrics(knobs.wantsMetrics());
    auto tracedConfig = [&](StructureKind s, core::AllocatorKind a,
                            const std::string &name) {
        GraphUpdateConfig cfg = baseConfig(s, a, knobs);
        cfg.recorder = recorders.add(name);
        cfg.metrics = metrics.add(name);
        return cfg;
    };

    std::vector<NamedRun> runs;
    runs.push_back({"Static (CSR)",
                    runGraphUpdate(tracedConfig(
                        StructureKind::StaticCsr,
                        core::AllocatorKind::PimMallocSw,
                        "Static (CSR)"))});
    const std::pair<const char *, StructureKind> structures[] = {
        {"LinkedList", StructureKind::LinkedList},
        {"VarArray", StructureKind::VarArray}};
    for (const auto &[sname, s] : structures) {
        for (auto kind : core::kMainKinds) {
            std::string name = std::string(sname) + " + "
                + core::allocatorKindName(kind);
            runs.push_back(
                {name, runGraphUpdate(tracedConfig(s, kind, name))});
        }
    }

    util::Table thr("Fig 17(a): graph update throughput and latency "
                    "breakdown");
    thr.setHeader({"Configuration", "Medges/s", "Run %", "Busy-wait %",
                   "Idle(Mem) %", "Idle(Etc) %"});
    for (const auto &r : runs) {
        const auto &bd = r.result.breakdown;
        thr.addRow({r.name,
                    util::Table::num(r.result.millionEdgesPerSec, 2),
                    util::Table::num(
                        bd.fraction(sim::CycleKind::Run) * 100, 1),
                    util::Table::num(
                        bd.fraction(sim::CycleKind::BusyWait) * 100, 1),
                    util::Table::num(
                        bd.fraction(sim::CycleKind::IdleMemory) * 100, 1),
                    util::Table::num(
                        bd.fraction(sim::CycleKind::IdleEtc) * 100, 1)});
    }
    thr.print(std::cout);
    std::cout << "\n";

    const sim::DpuConfig dcfg;
    util::Table lat("Fig 17(b): pimMalloc() latency distribution during "
                    "updates (us)");
    lat.setHeader({"Configuration", "p50", "p95", "p99", "mean"});
    for (const auto &r : runs) {
        if (r.result.allocStats.mallocCalls == 0)
            continue;
        const auto &p = r.result.allocStats.latency;
        lat.addRow({r.name,
                    util::Table::num(dcfg.cyclesToMicros(
                        static_cast<uint64_t>(p.p50())), 2),
                    util::Table::num(dcfg.cyclesToMicros(
                        static_cast<uint64_t>(p.p95())), 2),
                    util::Table::num(dcfg.cyclesToMicros(
                        static_cast<uint64_t>(p.p99())), 2),
                    util::Table::num(dcfg.cyclesToMicros(
                        static_cast<uint64_t>(p.mean())), 2)});
    }
    lat.print(std::cout);
    std::cout << "\n";

    util::Table series("Fig 17(c): allocation latency over time "
                       "(LinkedList, every 50th event, us)");
    series.setHeader({"Event #", "Straw-man", "PIM-malloc-SW",
                      "PIM-malloc-HW/SW"});
    auto sorted_events = [](const GraphUpdateResult &r) {
        auto ev = r.allocStats.events;
        std::sort(ev.begin(), ev.end(),
                  [](const auto &a, const auto &b) {
                      return a.startCycle < b.startCycle;
                  });
        return ev;
    };
    const auto e_straw = sorted_events(runs[1].result);
    const auto e_sw = sorted_events(runs[2].result);
    const auto e_hw = sorted_events(runs[3].result);
    const size_t n = std::min({e_straw.size(), e_sw.size(), e_hw.size()});
    const size_t step = std::max<size_t>(1, n / 16);
    for (size_t i = 0; i < n; i += step) {
        series.addRow({util::Table::num(uint64_t{i}),
                       util::Table::num(dcfg.cyclesToMicros(
                           e_straw[i].latencyCycles), 1),
                       util::Table::num(dcfg.cyclesToMicros(
                           e_sw[i].latencyCycles), 1),
                       util::Table::num(dcfg.cyclesToMicros(
                           e_hw[i].latencyCycles), 1)});
    }
    series.print(std::cout);
    std::cout << "\n";

    // Fig 17(d) plots aggregate DRAM (MRAM<->WRAM) transfer size: the
    // workload's data traffic is common to both designs, so the ~30%
    // reduction comes from the metadata share the buddy cache removes.
    util::Table traffic("Fig 17(d): aggregate DRAM transfer size, "
                        "normalized to PIM-malloc-SW");
    traffic.setHeader({"Structure", "PIM-malloc-SW", "PIM-malloc-HW/SW",
                       "SW metadata share %"});
    for (size_t base : {size_t{1}, size_t{4}}) {
        const auto &sw_t = runs[base + 1].result.traffic;
        const auto &hw_t = runs[base + 2].result.traffic;
        traffic.addRow({base == 1 ? "LinkedList" : "VarArray", "1.00",
                        util::Table::num(
                            static_cast<double>(hw_t.totalBytes())
                                / static_cast<double>(sw_t.totalBytes()),
                            2),
                        util::Table::num(
                            100.0
                                * static_cast<double>(sw_t.metadataBytes())
                                / static_cast<double>(sw_t.totalBytes()),
                            1)});
    }
    traffic.print(std::cout);
    std::cout << "\nExpected shape: straw-man below static; HW/SW best "
                 "(paper: 7.1x and 32x over static for the two "
                 "structures); HW/SW moves ~30% less metadata than SW "
                 "(paper Fig 17(d)).\n";

    if (!knobs.jsonPath.empty()) {
        std::ofstream out(knobs.jsonPath);
        if (!out) {
            std::cerr << "cannot open " << knobs.jsonPath << "\n";
            return 1;
        }
        util::JsonWriter j(out);
        j.beginObject();
        j.key("bench").value("fig17_graph_update");
        j.key("dpus").value(knobs.dpus);
        j.key("sample").value(knobs.sample);
        j.key("tasklets").value(knobs.tasklets);
        j.key("configurations").beginArray();
        for (const auto &r : runs) {
            const auto &res = r.result;
            j.beginObject();
            j.key("name").value(r.name);
            j.key("medges_per_sec").value(res.millionEdgesPerSec);
            j.key("update_seconds").value(res.updateSeconds);
            j.key("update_edges").value(res.updateEdgesTotal);
            j.key("run_frac")
                .value(res.breakdown.fraction(sim::CycleKind::Run));
            j.key("busy_wait_frac")
                .value(res.breakdown.fraction(sim::CycleKind::BusyWait));
            j.key("idle_mem_frac")
                .value(res.breakdown.fraction(
                    sim::CycleKind::IdleMemory));
            j.key("malloc_calls").value(res.allocStats.mallocCalls);
            j.key("avg_alloc_latency_us").value(res.avgAllocLatencyUs);
            j.key("peak_fragmentation").value(res.fragmentation);
            j.key("total_traffic_bytes").value(res.traffic.totalBytes());
            j.key("metadata_traffic_bytes")
                .value(res.traffic.metadataBytes());
            j.endObject();
        }
        j.endArray();
        telemetry::writeMetricsJson(j, metrics);
        j.endObject();
        std::cout << "\nJSON written to " << knobs.jsonPath << "\n";
    }

    if (!trace::emitReports(std::cout, recorders, metrics,
                            knobs.occupancy, knobs.metrics,
                            knobs.tracePath))
        return 1;
    return 0;
}
