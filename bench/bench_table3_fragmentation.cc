/**
 * @file
 * Reproduces Table III: memory fragmentation (A/U — allocator-reserved
 * bytes over program-requested bytes) of PIM-malloc as-is (eager
 * pre-population) vs PIM-malloc-lazy, for the three workloads: dynamic
 * graph update with an array of linked lists, dynamic graph update with
 * variable-sized arrays, and LLM attention.
 */

#include <iostream>

#include "alloc/pim_malloc.hh"
#include "core/pim_system.hh"
#include "sim/dpu.hh"
#include "telemetry/export.hh"
#include "trace/chrome_trace.hh"
#include "util/cli.hh"
#include "util/table.hh"
#include "workloads/graph/update_driver.hh"
#include "workloads/llm/kv_cache.hh"
#include "workloads/llm/llm_config.hh"

using namespace pim;
using namespace pim::workloads;

namespace {

double
graphFragmentation(graph::StructureKind structure, core::AllocatorKind kind,
                   unsigned threads, trace::Recorder *rec,
                   telemetry::Registry *met)
{
    graph::GraphUpdateConfig cfg;
    cfg.structure = structure;
    cfg.allocator = kind;
    cfg.numDpus = 64;
    cfg.sampleDpus = 1;
    cfg.gen.numNodes = 196591;
    cfg.gen.numEdges = 950327;
    cfg.simThreads = threads;
    cfg.recorder = rec;
    cfg.metrics = met;
    return graph::runGraphUpdate(cfg).fragmentation;
}

double
attentionFragmentation(bool lazy)
{
    core::PimSystem sys(core::singleDpuConfig());
    sim::Dpu &dpu = sys.dpu(0);
    alloc::PimMallocConfig cfg;
    cfg.numTasklets = 16;
    cfg.prePopulate = !lazy;
    alloc::PimMallocAllocator a(dpu, cfg);
    llm::KvCacheManager kv(a, 512);
    const llm::LlmModelConfig model;
    const uint64_t per_token = model.kvBytesPerTokenPerDpu(512);
    dpu.run(1, [&](sim::Tasklet &t) { a.init(t); });
    dpu.run(16, [&](sim::Tasklet &t) {
        for (unsigned req = 0; req < 4; ++req) {
            for (unsigned tok = 0; tok < 384; ++tok)
                kv.appendBytes(t, t.id() * 4 + req, per_token);
        }
    });
    return a.stats().peakFragmentation;
}

} // namespace

int
main(int argc, char **argv)
{
    // Shared knobs (single representative DPU per run, so --dpus and
    // --sample stay fixed); --trace/--occupancy cover the graph runs.
    util::Cli cli(argc, argv, "threads,trace,occupancy,metrics");
    const util::BenchKnobs knobs = util::parseBenchKnobs(cli);
    const unsigned threads = knobs.threads;

    trace::RecorderSet recorders(knobs.wantsTrace());
    telemetry::MetricSet metrics(knobs.wantsMetrics());

    util::Table table("Table III: memory fragmentation (A/U), PIM-malloc "
                      "as-is vs PIM-malloc-lazy");
    table.setHeader({"Workload", "PIM-malloc (as-is)", "PIM-malloc-lazy"});

    table.addRow({"Dynamic graph update (array of linked list)",
                  util::Table::num(
                      graphFragmentation(graph::StructureKind::LinkedList,
                                         core::AllocatorKind::PimMallocSw,
                                         threads,
                                         recorders.add("LinkedList as-is"),
                                         metrics.add("LinkedList as-is")),
                      2),
                  util::Table::num(
                      graphFragmentation(
                          graph::StructureKind::LinkedList,
                          core::AllocatorKind::PimMallocSwLazy, threads,
                          recorders.add("LinkedList lazy"),
                          metrics.add("LinkedList lazy")),
                      2)});
    table.addRow({"Dynamic graph update (variable sized array)",
                  util::Table::num(
                      graphFragmentation(graph::StructureKind::VarArray,
                                         core::AllocatorKind::PimMallocSw,
                                         threads,
                                         recorders.add("VarArray as-is"),
                                         metrics.add("VarArray as-is")),
                      2),
                  util::Table::num(
                      graphFragmentation(
                          graph::StructureKind::VarArray,
                          core::AllocatorKind::PimMallocSwLazy, threads,
                          recorders.add("VarArray lazy"),
                          metrics.add("VarArray lazy")),
                      2)});
    table.addRow({"LLM attention",
                  util::Table::num(attentionFragmentation(false), 2),
                  util::Table::num(attentionFragmentation(true), 2)});
    table.print(std::cout);
    std::cout << "\nPaper's Table III: 1.95/1.21, 1.72/1.49, 1.66/1.00 — "
                 "lazy allocation reduces fragmentation everywhere, most "
                 "for single-size-class workloads.\n";

    if (!trace::emitReports(std::cout, recorders, metrics,
                            knobs.occupancy, knobs.metrics,
                            knobs.tracePath))
        return 1;
    return 0;
}
