/**
 * @file
 * Reproduces Fig 11: characterization of PIM-malloc-SW across the
 * paper's workloads — (a) the share of pimMalloc() requests serviced by
 * the frontend thread cache vs the buddy backend, and (b) the share of
 * aggregate pimMalloc() latency attributable to each level.
 */

#include <iostream>
#include <vector>

#include "alloc/pim_malloc.hh"
#include "core/pim_system.hh"

#include "sim/dpu.hh"
#include "telemetry/export.hh"
#include "trace/chrome_trace.hh"
#include "util/cli.hh"
#include "util/table.hh"
#include "workloads/graph/update_driver.hh"
#include "workloads/llm/kv_cache.hh"
#include "workloads/llm/llm_config.hh"

using namespace pim;
using namespace pim::workloads;

namespace {

struct Row
{
    std::string name;
    double frontendServiced;
    double backendServiced; // includes bypass
    double frontendCycles;
    double backendCycles;
};

Row
fromStats(std::string name, const alloc::AllocStats &st)
{
    Row r;
    r.name = std::move(name);
    r.frontendServiced =
        st.servicedFraction(alloc::ServiceLevel::Frontend);
    r.backendServiced = 1.0 - r.frontendServiced;
    r.frontendCycles = st.cyclesFraction(alloc::ServiceLevel::Frontend);
    r.backendCycles = 1.0 - r.frontendCycles;
    return r;
}

Row
graphRow(graph::StructureKind structure, const char *name,
         const pim::util::BenchKnobs &knobs, trace::Recorder *rec,
         telemetry::Registry *met)
{
    graph::GraphUpdateConfig cfg;
    cfg.structure = structure;
    cfg.allocator = core::AllocatorKind::PimMallocSw;
    cfg.numDpus = knobs.dpus;
    cfg.sampleDpus = knobs.sample;
    cfg.gen.numNodes = 24000;
    cfg.gen.numEdges = 120000;
    cfg.simThreads = knobs.threads;
    cfg.recorder = rec;
    cfg.metrics = met;
    const auto res = graph::runGraphUpdate(cfg);
    return fromStats(name, res.allocStats);
}

Row
attentionRow()
{
    // LLM decode: per-DPU KV slices grow in 512 B blocks while a batch
    // of requests decodes (Section V's attention kernel pattern).
    core::PimSystem sys(core::singleDpuConfig());
    sim::Dpu &dpu = sys.dpu(0);
    alloc::PimMallocConfig cfg;
    cfg.numTasklets = 16;
    alloc::PimMallocAllocator a(dpu, cfg);
    llm::KvCacheManager kv(a, 512);
    const llm::LlmModelConfig model;
    const uint64_t per_token = model.kvBytesPerTokenPerDpu(512);
    dpu.run(1, [&](sim::Tasklet &t) { a.init(t); });
    dpu.run(16, [&](sim::Tasklet &t) {
        // Each tasklet serves four requests decoding 64 tokens.
        for (unsigned req = 0; req < 4; ++req) {
            for (unsigned tok = 0; tok < 64; ++tok)
                kv.appendBytes(t, t.id() * 4 + req, per_token);
        }
    });
    return fromStats("Attention (LLM decode)", a.stats());
}

} // namespace

int
main(int argc, char **argv)
{
    // Shared knobs (the attention row is single-DPU, so --tasklets does
    // not apply); --trace/--occupancy cover the two graph-update runs.
    util::Cli cli(argc, argv,
                  "dpus,sample,threads,trace,occupancy,metrics");
    util::BenchKnobs defaults;
    defaults.dpus = 64;
    defaults.sample = 2;
    const util::BenchKnobs knobs = util::parseBenchKnobs(cli, defaults);

    trace::RecorderSet recorders(knobs.wantsTrace());
    telemetry::MetricSet metrics(knobs.wantsMetrics());
    const Row rows[] = {
        graphRow(graph::StructureKind::LinkedList, "Array of linked list",
                 knobs, recorders.add("Array of linked list"),
                 metrics.add("Array of linked list")),
        graphRow(graph::StructureKind::VarArray, "Variable sized array",
                 knobs, recorders.add("Variable sized array"),
                 metrics.add("Variable sized array")),
        attentionRow(),
    };

    util::Table serviced("Fig 11(a): proportion of pimMalloc() serviced "
                         "at each level");
    serviced.setHeader({"Workload", "Frontend (thread cache) %",
                        "Backend (buddy) %"});
    for (const auto &r : rows) {
        serviced.addRow({r.name,
                         util::Table::num(r.frontendServiced * 100, 1),
                         util::Table::num(r.backendServiced * 100, 1)});
    }
    serviced.print(std::cout);
    std::cout << "\n";

    util::Table cycles("Fig 11(b): total pimMalloc() latency breakdown");
    cycles.setHeader({"Workload", "Frontend (thread cache) %",
                      "Backend (buddy) %"});
    for (const auto &r : rows) {
        cycles.addRow({r.name,
                       util::Table::num(r.frontendCycles * 100, 1),
                       util::Table::num(r.backendCycles * 100, 1)});
    }
    cycles.print(std::cout);
    std::cout << "\nExpected shape: ~90%+ of requests hit the frontend "
                 "(paper: 93% average) while the backend dominates "
                 "aggregate latency (paper: 68%).\n";

    if (!trace::emitReports(std::cout, recorders, metrics,
                            knobs.occupancy, knobs.metrics,
                            knobs.tracePath))
        return 1;
    return 0;
}
