/**
 * @file
 * Reproduces Fig 3(c): graph-update slowdown of the static CSR
 * representation vs a dynamic structure (array of linked lists on
 * PIM-malloc-SW) as the pre-update graph grows from Small to Large
 * while the number of newly added edges stays constant. Values are
 * normalized to Static/Small, as in the paper.
 */

#include <iostream>

#include "util/cli.hh"
#include "util/table.hh"
#include "workloads/graph/update_driver.hh"

using namespace pim;
using namespace pim::workloads::graph;

namespace {

double
updateSeconds(StructureKind structure, unsigned scale, unsigned threads)
{
    GraphUpdateConfig cfg;
    cfg.structure = structure;
    cfg.allocator = core::AllocatorKind::PimMallocSw;
    cfg.numDpus = 32;
    cfg.sampleDpus = 32;
    cfg.tasklets = 16;
    cfg.gen.numNodes = 12000 * scale;
    cfg.gen.numEdges = 60000ull * scale;
    cfg.gen.seed = 42;
    cfg.maxUpdateEdges = 2000; // fixed #new edges across sizes
    cfg.simThreads = threads;
    return runGraphUpdate(cfg).updateSeconds;
}

} // namespace

int
main(int argc, char **argv)
{
    util::Cli cli(argc, argv, "threads");
    const unsigned threads =
        static_cast<unsigned>(cli.getInt("threads", 0));
    const std::pair<const char *, unsigned> sizes[] = {
        {"Small", 1}, {"Medium", 2}, {"Large", 4}};

    const double base = updateSeconds(StructureKind::StaticCsr, 1, threads);

    util::Table table("Fig 3(c): update slowdown vs pre-update graph size "
                      "(normalized to Static/Small)");
    table.setHeader({"Pre-update size", "Static (CSR)",
                     "Dynamic (linked list)"});
    for (const auto &[name, scale] : sizes) {
        const double stat =
            updateSeconds(StructureKind::StaticCsr, scale, threads);
        const double dyn =
            updateSeconds(StructureKind::LinkedList, scale, threads);
        table.addRow({name, util::Table::num(stat / base, 2),
                      util::Table::num(dyn / base, 2)});
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: Static grows with the pre-update "
                 "graph; Dynamic stays flat (paper: static reaches ~2-3x "
                 "while dynamic is size-independent).\n";
    return 0;
}
