/**
 * @file
 * Reproduces Fig 3(c): graph-update slowdown of the static CSR
 * representation vs a dynamic structure (array of linked lists on
 * PIM-malloc-SW) as the pre-update graph grows from Small to Large
 * while the number of newly added edges stays constant. Values are
 * normalized to Static/Small, as in the paper.
 */

#include <fstream>
#include <iostream>

#include "telemetry/export.hh"
#include "trace/chrome_trace.hh"
#include "util/cli.hh"
#include "util/json.hh"
#include "util/table.hh"
#include "workloads/graph/update_driver.hh"

using namespace pim;
using namespace pim::workloads::graph;

namespace {

double
updateSeconds(StructureKind structure, unsigned scale,
              const util::BenchKnobs &knobs, trace::Recorder *rec,
              telemetry::Registry *met)
{
    GraphUpdateConfig cfg;
    cfg.structure = structure;
    cfg.allocator = core::AllocatorKind::PimMallocSw;
    cfg.numDpus = knobs.dpus;
    cfg.sampleDpus = knobs.sample;
    cfg.tasklets = knobs.tasklets;
    cfg.gen.numNodes = 12000 * scale;
    cfg.gen.numEdges = 60000ull * scale;
    cfg.gen.seed = 42;
    cfg.maxUpdateEdges = 2000; // fixed #new edges across sizes
    cfg.simThreads = knobs.threads;
    cfg.recorder = rec;
    cfg.metrics = met;
    return runGraphUpdate(cfg).updateSeconds;
}

} // namespace

int
main(int argc, char **argv)
{
    util::Cli cli(argc, argv, util::benchKnobNames());
    util::BenchKnobs defs;
    defs.dpus = 32;
    defs.sample = 32;
    const util::BenchKnobs knobs = util::parseBenchKnobs(cli, defs);

    trace::RecorderSet recorders(knobs.wantsTrace());
    telemetry::MetricSet metrics(knobs.wantsMetrics());
    const std::pair<const char *, unsigned> sizes[] = {
        {"Small", 1}, {"Medium", 2}, {"Large", 4}};

    const double base = updateSeconds(StructureKind::StaticCsr, 1, knobs,
                                      recorders.add("Static/Small base"),
                                      metrics.add("Static/Small base"));

    util::Table table("Fig 3(c): update slowdown vs pre-update graph size "
                      "(normalized to Static/Small)");
    table.setHeader({"Pre-update size", "Static (CSR)",
                     "Dynamic (linked list)"});
    for (const auto &[name, scale] : sizes) {
        const double stat = updateSeconds(
            StructureKind::StaticCsr, scale, knobs,
            recorders.add(std::string("Static/") + name),
            metrics.add(std::string("Static/") + name));
        const double dyn = updateSeconds(
            StructureKind::LinkedList, scale, knobs,
            recorders.add(std::string("Dynamic/") + name),
            metrics.add(std::string("Dynamic/") + name));
        table.addRow({name, util::Table::num(stat / base, 2),
                      util::Table::num(dyn / base, 2)});
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: Static grows with the pre-update "
                 "graph; Dynamic stays flat (paper: static reaches ~2-3x "
                 "while dynamic is size-independent).\n";

    if (!trace::emitReports(std::cout, recorders, metrics,
                            knobs.occupancy, knobs.metrics,
                            knobs.tracePath))
        return 1;

    if (!knobs.jsonPath.empty()) {
        std::ofstream out(knobs.jsonPath);
        if (!out) {
            std::cerr << "cannot open " << knobs.jsonPath << "\n";
            return 1;
        }
        util::JsonWriter j(out);
        j.beginObject();
        j.key("bench").value("fig03_graph_motivation");
        j.key("dpus").value(knobs.dpus);
        j.key("sample").value(knobs.sample);
        j.key("tasklets").value(knobs.tasklets);
        j.key("table");
        table.writeJson(j);
        telemetry::writeMetricsJson(j, metrics);
        j.endObject();
        out << "\n";
    }
    return 0;
}
