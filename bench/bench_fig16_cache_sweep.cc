/**
 * @file
 * Reproduces Fig 16: PIM-malloc-HW/SW's speedup over PIM-malloc-SW and
 * the buddy cache hit rate as the cache capacity sweeps from 16 B to
 * 256 B (16 tasklets, 4 KB requests — the backend-bound microbenchmark).
 */

#include <iostream>

#include "util/table.hh"
#include "workloads/microbench.hh"

using namespace pim;
using namespace pim::workloads;

namespace {

MicrobenchResult
run(core::AllocatorKind kind, unsigned cache_entries)
{
    MicrobenchConfig cfg;
    cfg.allocator = kind;
    cfg.tasklets = 16;
    cfg.allocsPerTasklet = 128;
    cfg.allocSize = 4096;
    cfg.dpuCfg.buddyCache.entries = cache_entries;
    return runMicrobench(cfg);
}

} // namespace

int
main()
{
    const double sw =
        run(core::AllocatorKind::PimMallocSw, 16).avgLatencyUs;

    util::Table table("Fig 16: HW/SW speedup over SW and buddy-cache hit "
                      "rate vs cache size (16 tasklets, 4 KB requests)");
    table.setHeader({"Buddy cache size", "Speedup over SW", "Hit rate %"});
    for (unsigned bytes : {16u, 32u, 64u, 128u, 256u}) {
        const auto r =
            run(core::AllocatorKind::PimMallocHwSw, bytes / 4);
        table.addRow({std::to_string(bytes) + " B",
                      util::Table::num(sw / r.avgLatencyUs, 2) + "x",
                      util::Table::num(r.cacheStats.hitRate() * 100, 1)});
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: both speedup and hit rate saturate at "
                 "64 B — enough to hold the metadata of the frequently "
                 "traversed tree path (paper Fig 16; 99% hit rate).\n";
    return 0;
}
