/**
 * @file
 * Reproduces Fig 16: PIM-malloc-HW/SW's speedup over PIM-malloc-SW and
 * the buddy cache hit rate as the cache capacity sweeps from 16 B to
 * 256 B (16 tasklets, 4 KB requests — the backend-bound microbenchmark).
 */

#include <fstream>
#include <iostream>

#include "telemetry/export.hh"
#include "trace/chrome_trace.hh"
#include "util/cli.hh"
#include "util/json.hh"
#include "util/table.hh"
#include "workloads/microbench.hh"

using namespace pim;
using namespace pim::workloads;

namespace {

MicrobenchResult
run(core::AllocatorKind kind, unsigned cache_entries, unsigned tasklets,
    trace::Recorder *rec, telemetry::Registry *met)
{
    MicrobenchConfig cfg;
    cfg.allocator = kind;
    cfg.tasklets = tasklets;
    cfg.allocsPerTasklet = 128;
    cfg.allocSize = 4096;
    cfg.dpuCfg.buddyCache.entries = cache_entries;
    cfg.recorder = rec;
    cfg.metrics = met;
    return runMicrobench(cfg);
}

} // namespace

int
main(int argc, char **argv)
{
    util::Cli cli(argc, argv, util::benchKnobNames());
    util::BenchKnobs defs;
    defs.dpus = 1;
    defs.sample = 1;
    const util::BenchKnobs knobs = util::parseBenchKnobs(cli, defs);

    trace::RecorderSet recorders(knobs.wantsTrace());
    telemetry::MetricSet metrics(knobs.wantsMetrics());
    const double sw = run(core::AllocatorKind::PimMallocSw, 16,
                          knobs.tasklets, recorders.add("SW baseline"),
                          metrics.add("SW baseline"))
                          .avgLatencyUs;

    util::Table table("Fig 16: HW/SW speedup over SW and buddy-cache hit "
                      "rate vs cache size (16 tasklets, 4 KB requests)");
    table.setHeader({"Buddy cache size", "Speedup over SW", "Hit rate %"});
    for (unsigned bytes : {16u, 32u, 64u, 128u, 256u}) {
        const std::string name = "HW/SW " + std::to_string(bytes) + " B";
        const auto r = run(core::AllocatorKind::PimMallocHwSw, bytes / 4,
                           knobs.tasklets, recorders.add(name),
                           metrics.add(name));
        table.addRow({std::to_string(bytes) + " B",
                      util::Table::num(sw / r.avgLatencyUs, 2) + "x",
                      util::Table::num(r.cacheStats.hitRate() * 100, 1)});
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: both speedup and hit rate saturate at "
                 "64 B — enough to hold the metadata of the frequently "
                 "traversed tree path (paper Fig 16; 99% hit rate).\n";

    if (!trace::emitReports(std::cout, recorders, metrics,
                            knobs.occupancy, knobs.metrics,
                            knobs.tracePath))
        return 1;

    if (!knobs.jsonPath.empty()) {
        std::ofstream out(knobs.jsonPath);
        if (!out) {
            std::cerr << "cannot open " << knobs.jsonPath << "\n";
            return 1;
        }
        util::JsonWriter j(out);
        j.beginObject();
        j.key("bench").value("fig16_cache_sweep");
        j.key("tasklets").value(knobs.tasklets);
        j.key("table");
        table.writeJson(j);
        telemetry::writeMetricsJson(j, metrics);
        j.endObject();
        out << "\n";
    }
    return 0;
}
