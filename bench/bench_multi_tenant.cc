/**
 * @file
 * Multi-tenant rank co-scheduling: the disaggregated LLM serving
 * pipeline and the streaming graph-update driver co-resident on ONE
 * PimSystem / ONE CommandQueue, with rank ownership arbitrated by
 * core::RankScheduler. Each tenant runs on its own rank partition and
 * its own host lane; the host<->PIM bus is the shared resource, so the
 * co-run quantifies bus-induced interference against solo baselines of
 * the *same* partitions on otherwise idle systems:
 *
 *   - serving tenant: TPOT / TTFT percentile degradation (%),
 *   - graph tenant:   update-round wall-time degradation (%),
 *   - both tenants:   SLO attainment (percent of samples within the
 *     --slo-ttft-ms / --slo-tpot-ms / --slo-round-sec targets) solo vs
 *     co-resident.
 *
 * The interleaving is deterministic (advance the tenant whose pipeline
 * clock is behind; ties go to serving), and so is the runtime's
 * timeline fold, so every number here is bit-identical for any
 * PIM_SIM_THREADS / --threads value.
 *
 * With --trace/--occupancy the co-run's spans carry tenant tags and the
 * occupancy report adds per-tenant busy fractions (serving vs graph
 * attribution of rank and host lanes). --json writes the comparison
 * (plus the occupancy report when tracing is on) machine-readably;
 * CI smoke-runs this as BENCH_multi_tenant.json.
 */

#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <utility>

#include "core/command_queue.hh"
#include "core/pim_system.hh"
#include "core/rank_scheduler.hh"
#include "fault/injector.hh"
#include "telemetry/export.hh"
#include "trace/chrome_trace.hh"
#include "trace/occupancy.hh"
#include "util/cli.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "workloads/graph/update_driver.hh"
#include "workloads/llm/serving_engine.hh"

using namespace pim;

namespace {

struct TenantSetup
{
    unsigned dpus;
    unsigned threads;
    unsigned servingRanks;
    workloads::llm::ServingScheme scheme;
    workloads::llm::ServingEngineConfig serving;
    workloads::graph::GraphUpdateConfig graph;
    /** Fault injection (--mtbf/--fault-spec/--fault-seed): every run —
     *  both solos and the co-run — attaches its own injector over the
     *  SAME plan, so solo and co-tenant experience identical fault
     *  schedules. */
    fault::FaultSpec faultSpec{};
    uint64_t faultSeed = 23;
};

/** Fresh injector over the shared plan (nullptr when faults are off). */
std::unique_ptr<fault::FaultInjector>
makeInjector(const TenantSetup &s, core::CommandQueue &queue,
             unsigned num_ranks)
{
    if (!s.faultSpec.enabled())
        return nullptr;
    auto inj = std::make_unique<fault::FaultInjector>(
        fault::FaultPlan(s.faultSpec, s.faultSeed, num_ranks));
    queue.attachFaultInjector(inj.get());
    return inj;
}

core::PimSystemConfig
systemConfig(const TenantSetup &s)
{
    core::PimSystemConfig scfg;
    scfg.numDpus = s.dpus;
    // One representative DPU per rank: both tenants launch real
    // programs and need a materialized member in every owned rank.
    scfg.samplePerRank = true;
    scfg.simThreads = s.threads;
    return scfg;
}

/** Serving solo baseline: same ranks, otherwise idle system. */
workloads::llm::ServingResult
runServingSolo(const TenantSetup &s, trace::Recorder *rec,
               telemetry::Registry *met)
{
    core::PimSystem sys(systemConfig(s));
    core::CommandQueue queue(sys);
    if (rec != nullptr)
        queue.attachRecorder(rec);
    if (met != nullptr)
        queue.attachMetrics(met);
    const auto inj = makeInjector(s, queue, sys.numRanks());
    core::RankScheduler sched(sys);
    if (met != nullptr)
        sched.attachMetrics(met);
    const core::DpuSet part =
        sched.acquireRanks(s.servingRanks, "serving");
    workloads::llm::ServingEngineConfig ecfg = s.serving;
    ecfg.base.metrics = met;
    workloads::llm::DisaggServingTask task(s.scheme, ecfg, queue,
                                           part);
    const bool rank_faults =
        inj != nullptr && s.faultSpec.rankMtbfSec > 0.0;
    if (rank_faults) {
        sched.onRevoke("serving", [&](unsigned rank) {
            task.onRankFailed(rank, inj->rankFailSeconds(rank));
            sched.requestRanks(1, "serving", [&](core::DpuSet repl) {
                task.onReplacementGranted(std::move(repl));
            });
        });
    }
    while (!task.done()) {
        task.step();
        if (rank_faults) {
            for (const fault::FaultEvent &ev :
                 inj->drainFailedRanks(task.clockSeconds()))
                sched.quarantine(ev.rank);
            if (task.waitingReplacement())
                PIM_FATAL("serving solo: rank failed with no free "
                          "replacement left (", sched.freeRankCount(),
                          " free)");
        }
    }
    queue.sync();
    if (inj != nullptr && met != nullptr)
        inj->exportMetrics(*met);
    return task.result();
}

/** Graph solo baseline: same ranks (the serving grant is a
 *  placeholder so the graph tenant lands on identical rank ids). */
workloads::graph::GraphUpdateResult
runGraphSolo(const TenantSetup &s, trace::Recorder *rec,
             telemetry::Registry *met)
{
    core::PimSystem sys(systemConfig(s));
    core::CommandQueue queue(sys);
    if (rec != nullptr)
        queue.attachRecorder(rec);
    if (met != nullptr)
        queue.attachMetrics(met);
    const auto inj = makeInjector(s, queue, sys.numRanks());
    core::RankScheduler sched(sys);
    if (met != nullptr)
        sched.attachMetrics(met);
    const core::DpuSet reserved =
        sched.acquireRanks(s.servingRanks, "reserved");
    const bool rank_faults =
        inj != nullptr && s.faultSpec.rankMtbfSec > 0.0;
    // Hold one rank back as a spare when ranks can die, so a
    // replacement grant exists (matches the co-run's partitioning).
    const unsigned spare =
        rank_faults && sched.freeRankCount() > 1 ? 1u : 0u;
    const core::DpuSet part =
        sched.acquireRanks(sched.freeRankCount() - spare, "graph");
    workloads::graph::GraphUpdateConfig gcfg = s.graph;
    gcfg.metrics = met;
    workloads::graph::GraphUpdateTask task(gcfg, queue, part);
    if (rank_faults) {
        sched.onRevoke("graph", [&](unsigned rank) {
            task.onRankFailed(rank, inj->rankFailSeconds(rank));
            sched.requestRanks(1, "graph", [&](core::DpuSet repl) {
                task.onReplacementGranted(std::move(repl));
            });
        });
    }
    while (!task.done()) {
        task.step();
        if (rank_faults) {
            for (const fault::FaultEvent &ev :
                 inj->drainFailedRanks(task.clockSeconds()))
                sched.quarantine(ev.rank);
            if (task.waitingReplacement())
                PIM_FATAL("graph solo: rank failed with no free "
                          "replacement left (", sched.freeRankCount(),
                          " free)");
        }
    }
    queue.sync();
    if (inj != nullptr && met != nullptr)
        inj->exportMetrics(*met);
    sched.releaseRanks(reserved);
    return task.result();
}

struct CoRunOutcome
{
    workloads::llm::ServingResult serving;
    workloads::graph::GraphUpdateResult graph;
    double joinedMakespanSec = 0.0;
};

/** Both tenants co-resident on one system/queue. One registry holds
 *  the whole co-run: queue counters split per tenant by name suffix,
 *  the serving histograms/SLOs and the graph ones under their own
 *  metric names. */
CoRunOutcome
runCoTenant(const TenantSetup &s, trace::Recorder *rec,
            telemetry::Registry *met)
{
    core::PimSystem sys(systemConfig(s));
    core::CommandQueue queue(sys);
    if (rec != nullptr)
        queue.attachRecorder(rec);
    if (met != nullptr)
        queue.attachMetrics(met);
    const auto inj = makeInjector(s, queue, sys.numRanks());
    core::RankScheduler sched(sys);
    if (met != nullptr)
        sched.attachMetrics(met);

    const core::TenantId t_serving = queue.addTenant("serving");
    const core::TenantId t_graph = queue.addTenant("graph");
    const bool rank_faults =
        inj != nullptr && s.faultSpec.rankMtbfSec > 0.0;
    const core::DpuSet serving_part =
        sched.acquireRanks(s.servingRanks, "serving");
    // Hold one rank back as a spare when ranks can die, so the first
    // revocation's replacement grant is satisfiable.
    const unsigned spare =
        rank_faults && sched.freeRankCount() > 1 ? 1u : 0u;
    const core::DpuSet graph_part =
        sched.acquireRanks(sched.freeRankCount() - spare, "graph");

    workloads::llm::ServingEngineConfig ecfg = s.serving;
    ecfg.base.metrics = met;
    workloads::graph::GraphUpdateConfig gcfg = s.graph;
    gcfg.metrics = met;
    workloads::llm::DisaggServingTask serving(
        s.scheme, ecfg, queue, serving_part, t_serving);
    workloads::graph::GraphUpdateTask graph(gcfg, queue, graph_part,
                                            t_graph);

    if (rank_faults) {
        sched.onRevoke("serving", [&](unsigned rank) {
            serving.onRankFailed(rank, inj->rankFailSeconds(rank));
            sched.requestRanks(1, "serving", [&](core::DpuSet repl) {
                serving.onReplacementGranted(std::move(repl));
            });
        });
        sched.onRevoke("graph", [&](unsigned rank) {
            graph.onRankFailed(rank, inj->rankFailSeconds(rank));
            sched.requestRanks(1, "graph", [&](core::DpuSet repl) {
                graph.onReplacementGranted(std::move(repl));
            });
        });
    }

    // Deterministic co-scheduler: advance the tenant whose pipeline
    // clock is behind (ties go to serving), so the command interleaving
    // on the shared bus is a pure function of the configs.
    bool released_serving = false;
    bool released_graph = false;
    while (!serving.done() || !graph.done()) {
        double stepped_clock;
        if (serving.done() || (!graph.done()
                               && graph.clockSeconds()
                                   < serving.clockSeconds())) {
            graph.step();
            stepped_clock = graph.clockSeconds();
        } else {
            serving.step();
            stepped_clock = serving.clockSeconds();
        }
        if (!rank_faults)
            continue;
        // A finished tenant returns its grant: later deaths there hit
        // free ranks (no revocation), and the freed ranks can serve as
        // replacements for the surviving tenant.
        if (serving.done() && !released_serving) {
            sched.releaseAll("serving");
            released_serving = true;
        }
        if (graph.done() && !released_graph) {
            sched.releaseAll("graph");
            released_graph = true;
        }
        for (const fault::FaultEvent &ev :
             inj->drainFailedRanks(stepped_clock))
            sched.quarantine(ev.rank);
        if ((!serving.done() && serving.waitingReplacement())
            || (!graph.done() && graph.waitingReplacement()))
            PIM_FATAL("co-tenant: rank failed with no free replacement "
                      "left (", sched.freeRankCount(), " free)");
    }

    CoRunOutcome out;
    out.joinedMakespanSec = queue.sync();
    if (inj != nullptr && met != nullptr)
        inj->exportMetrics(*met);
    out.serving = serving.result();
    out.graph = graph.result();
    sched.releaseAll("serving");
    sched.releaseAll("graph");
    return out;
}

double
degradationPct(double solo, double co)
{
    if (solo <= 0)
        return 0.0;
    return (co - solo) / solo * 100.0;
}

} // namespace

int
main(int argc, char **argv)
{
    util::Cli cli(argc, argv,
                  util::benchKnobNames(
                      "serving-ranks,requests,rounds,round-interval,"
                      "update-edges,slo-ttft-ms,slo-tpot-ms,slo-round-sec"));
    util::BenchKnobs defs;
    defs.dpus = 512;
    const util::BenchKnobs knobs = util::parseBenchKnobs(cli, defs);

    TenantSetup s;
    s.dpus = knobs.dpus;
    s.threads = knobs.threads;
    s.servingRanks = static_cast<unsigned>(
        cli.getInt("serving-ranks", 4));

    s.scheme.allocator = core::AllocatorKind::PimMallocSw;
    s.serving.mode = workloads::llm::ServingMode::Disaggregated;
    s.serving.base.numRequests = static_cast<unsigned>(
        cli.getInt("requests", 60));
    s.serving.base.allocTasklets = knobs.tasklets;
    s.serving.simThreads = knobs.threads;
    // Per-tenant SLO targets, scored identically in the solos and the
    // co-run so the attainment delta isolates interference.
    s.serving.base.sloTtftSec =
        cli.getDouble("slo-ttft-ms", 500.0) / 1e3;
    s.serving.base.sloTpotSec =
        cli.getDouble("slo-tpot-ms", 50.0) / 1e3;

    s.graph.structure = workloads::graph::StructureKind::LinkedList;
    s.graph.allocator = core::AllocatorKind::PimMallocSw;
    s.graph.numDpus = knobs.dpus;
    s.graph.tasklets = knobs.tasklets;
    s.graph.simThreads = knobs.threads;
    // Streaming ingest: many small rounds interleave with serving steps
    // and ship their edges over the shared bus.
    s.graph.updateRounds = static_cast<unsigned>(
        cli.getInt("rounds", 16));
    s.graph.shipUpdates = true;
    s.graph.roundIntervalSec = cli.getDouble("round-interval", 0.25);
    s.graph.gen.numNodes = 50000;
    s.graph.gen.numEdges = 250000;
    s.graph.maxUpdateEdges = static_cast<uint64_t>(
        cli.getInt("update-edges", 0));
    s.graph.sloRoundSec = cli.getDouble("slo-round-sec", 0.5);

    // Fault injection: the same plan is replayed in the solos and the
    // co-run (each run attaches its own injector); the co-run
    // arbitrates revocation + replacement through the RankScheduler.
    s.faultSpec = fault::FaultSpec::fromKnobs(knobs.faultSpec,
                                              knobs.mtbf);
    s.faultSeed = knobs.faultSeed;

    trace::RecorderSet recorders(knobs.wantsTrace());
    // Always on: the SLO attainment comparison is part of this bench's
    // headline output, not an optional extra. --metrics additionally
    // prints the full summary tables.
    telemetry::MetricSet metrics(true);

    const workloads::llm::ServingResult solo_s = runServingSolo(
        s, recorders.add("serving solo"), metrics.add("serving solo"));
    const workloads::graph::GraphUpdateResult solo_g = runGraphSolo(
        s, recorders.add("graph solo"), metrics.add("graph solo"));
    const CoRunOutcome co = runCoTenant(
        s, recorders.add("co-tenant"), metrics.add("co-tenant"));

    const double d_tpot50 =
        degradationPct(solo_s.tpotP50Ms, co.serving.tpotP50Ms);
    const double d_tpot99 =
        degradationPct(solo_s.tpotP99Ms, co.serving.tpotP99Ms);
    const double d_ttft95 =
        degradationPct(solo_s.ttftP95Ms, co.serving.ttftP95Ms);
    const double d_wall =
        degradationPct(solo_g.wallSeconds, co.graph.wallSeconds);

    util::Table tbl("Multi-tenant co-scheduling: solo vs co-resident "
                    "(shared bus, disjoint ranks)");
    tbl.setHeader({"Metric", "Solo", "Co-tenant", "Degradation %"});
    tbl.addRow({"Serving TPOT p50 (ms)",
                util::Table::num(solo_s.tpotP50Ms, 3),
                util::Table::num(co.serving.tpotP50Ms, 3),
                util::Table::num(d_tpot50, 2)});
    tbl.addRow({"Serving TPOT p99 (ms)",
                util::Table::num(solo_s.tpotP99Ms, 3),
                util::Table::num(co.serving.tpotP99Ms, 3),
                util::Table::num(d_tpot99, 2)});
    tbl.addRow({"Serving TTFT p95 (ms)",
                util::Table::num(solo_s.ttftP95Ms, 3),
                util::Table::num(co.serving.ttftP95Ms, 3),
                util::Table::num(d_ttft95, 2)});
    tbl.addRow({"Serving makespan (s)",
                util::Table::num(solo_s.makespanSec, 4),
                util::Table::num(co.serving.makespanSec, 4),
                util::Table::num(degradationPct(solo_s.makespanSec,
                                                co.serving.makespanSec),
                                 2)});
    tbl.addRow({"Graph rounds wall time (s)",
                util::Table::num(solo_g.wallSeconds, 4),
                util::Table::num(co.graph.wallSeconds, 4),
                util::Table::num(d_wall, 2)});
    tbl.addRow({"Graph update Medges/s (cycles)",
                util::Table::num(solo_g.millionEdgesPerSec, 2),
                util::Table::num(co.graph.millionEdgesPerSec, 2),
                "0.00"});
    // Per-tenant SLO attainment (percent of samples within target) in
    // the solo baseline vs the co-run; the delta is in percentage
    // points, negative = the co-run misses more deadlines.
    const telemetry::Registry *co_reg = metrics.find("co-tenant");
    auto addSloRow = [&](const char *label, const char *solo_name,
                         const std::string &metric) {
        const telemetry::Registry *solo_reg = metrics.find(solo_name);
        if (solo_reg == nullptr || co_reg == nullptr
            || !solo_reg->slo().tracks(metric)
            || !co_reg->slo().tracks(metric))
            return;
        const double solo_att =
            solo_reg->slo().score(metric).attainmentPct();
        const double co_att = co_reg->slo().score(metric).attainmentPct();
        tbl.addRow({label, util::Table::num(solo_att, 2),
                    util::Table::num(co_att, 2),
                    util::Table::num(co_att - solo_att, 2)});
    };
    addSloRow("SLO attainment: serving TTFT (%)", "serving solo",
              "serving.ttft");
    addSloRow("SLO attainment: serving TPOT (%)", "serving solo",
              "serving.tpot");
    addSloRow("SLO attainment: graph round (%)", "graph solo",
              "graph.round");
    tbl.print(std::cout);
    const unsigned total_ranks = (s.dpus + 63) / 64;
    const unsigned graph_ranks = total_ranks - s.servingRanks
        - (s.faultSpec.rankMtbfSec > 0.0
               && total_ranks > s.servingRanks + 1
           ? 1u
           : 0u);
    std::cout << "\nPartitions: serving " << co.serving.prefillRanks
              << "+" << co.serving.decodeRanks << " ranks (prefill+"
              << "decode), graph " << graph_ranks
              << " ranks; joined co-run makespan "
              << co.joinedMakespanSec
              << " s.\nExpected shape: the DPU-cycle update throughput "
                 "is interference-free (disjoint ranks), while the "
                 "queue-timeline metrics degrade only through bus "
                 "sharing.\n";

    if (!trace::emitReports(std::cout, recorders, metrics,
                            knobs.occupancy, knobs.metrics,
                            knobs.tracePath))
        return 1;

    if (!knobs.jsonPath.empty()) {
        std::ofstream out(knobs.jsonPath);
        if (!out) {
            std::cerr << "cannot open " << knobs.jsonPath << "\n";
            return 1;
        }
        util::JsonWriter j(out);
        j.beginObject();
        j.key("bench").value("multi_tenant");
        j.key("dpus").value(knobs.dpus);
        j.key("servingRanks").value(s.servingRanks);
        j.key("requests").value(s.serving.base.numRequests);
        j.key("updateRounds").value(s.graph.updateRounds);
        j.key("roundIntervalSec").value(s.graph.roundIntervalSec);
        j.key("serving").beginObject();
        j.key("soloTpotP50Ms").value(solo_s.tpotP50Ms);
        j.key("coTpotP50Ms").value(co.serving.tpotP50Ms);
        j.key("tpotP50DegradationPct").value(d_tpot50);
        j.key("soloTpotP99Ms").value(solo_s.tpotP99Ms);
        j.key("coTpotP99Ms").value(co.serving.tpotP99Ms);
        j.key("tpotP99DegradationPct").value(d_tpot99);
        j.key("soloTtftP95Ms").value(solo_s.ttftP95Ms);
        j.key("coTtftP95Ms").value(co.serving.ttftP95Ms);
        j.key("ttftP95DegradationPct").value(d_ttft95);
        j.key("soloMakespanSec").value(solo_s.makespanSec);
        j.key("coMakespanSec").value(co.serving.makespanSec);
        j.key("prefillRanks").value(co.serving.prefillRanks);
        j.key("decodeRanks").value(co.serving.decodeRanks);
        j.endObject();
        j.key("graph").beginObject();
        j.key("soloWallSeconds").value(solo_g.wallSeconds);
        j.key("coWallSeconds").value(co.graph.wallSeconds);
        j.key("wallDegradationPct").value(d_wall);
        j.key("millionEdgesPerSec").value(co.graph.millionEdgesPerSec);
        j.key("updateEdgesTotal").value(co.graph.updateEdgesTotal);
        j.endObject();
        j.key("joinedMakespanSec").value(co.joinedMakespanSec);
        j.key("slo").beginObject();
        auto emitSlo = [&](const char *key, const char *solo_name,
                           const std::string &metric) {
            const telemetry::Registry *solo_reg =
                metrics.find(solo_name);
            if (solo_reg == nullptr || co_reg == nullptr
                || !solo_reg->slo().tracks(metric)
                || !co_reg->slo().tracks(metric))
                return;
            const telemetry::SloScore &ss = solo_reg->slo().score(metric);
            const telemetry::SloScore &cs = co_reg->slo().score(metric);
            j.key(key).beginObject();
            j.key("targetSec").value(ss.target);
            j.key("soloAttainmentPct").value(ss.attainmentPct());
            j.key("coAttainmentPct").value(cs.attainmentPct());
            j.key("soloViolations").value(ss.violations);
            j.key("coViolations").value(cs.violations);
            j.key("coWorstExcursion").value(cs.worstExcursion);
            j.endObject();
        };
        emitSlo("servingTtft", "serving solo", "serving.ttft");
        emitSlo("servingTpot", "serving solo", "serving.tpot");
        emitSlo("graphRound", "graph solo", "graph.round");
        j.endObject();
        if (s.faultSpec.enabled()) {
            j.key("faults").beginObject();
            j.key("faultSeed").value(s.faultSeed);
            j.key("servingRankFailures").value(co.serving.rankFailures);
            j.key("servingLostRequests").value(co.serving.lostRequests);
            j.key("servingRecoveryBytes")
                .value(co.serving.recoveryBytes);
            j.key("servingAvailability")
                .value(co.serving.availability);
            j.key("graphRankFailures").value(co.graph.rankFailures);
            j.key("graphReExecutedRounds")
                .value(co.graph.reExecutedRounds);
            j.key("graphRestoreBytes").value(co.graph.restoreBytes);
            j.key("graphAvailability").value(co.graph.availability);
            j.endObject();
        }
        if (recorders.enabled()) {
            // The co-run's occupancy report carries the per-tenant
            // attribution ("tenants" array) computed from span tags.
            const auto procs = recorders.processes();
            j.key("coOccupancy");
            trace::analyzeOccupancy(*procs.back().recorder).writeJson(j);
        }
        telemetry::writeMetricsJson(j, metrics);
        j.endObject();
        out << "\n";
        if (!out) {
            std::cerr << "write failed: " << knobs.jsonPath << "\n";
            return 1;
        }
    }
    return 0;
}
