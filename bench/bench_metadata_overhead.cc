/**
 * @file
 * Reproduces Section VI-E: metadata storage overhead of PIM-malloc vs
 * the straw-man design — the hierarchical structure shrinks the buddy
 * tree from 21 to 14 levels (512 KB -> 4 KB of per-bank metadata), and
 * the thread caches' bitmap records stay small across the workloads.
 */

#include <fstream>
#include <iostream>

#include "alloc/pim_malloc.hh"
#include "alloc/straw_man.hh"
#include "sim/dpu.hh"
#include "telemetry/export.hh"
#include "trace/chrome_trace.hh"
#include "util/cli.hh"
#include "util/json.hh"
#include "util/table.hh"
#include "workloads/graph/update_driver.hh"

using namespace pim;
using namespace pim::workloads;

int
main(int argc, char **argv)
{
    util::Cli cli(argc, argv, util::benchKnobNames());
    util::BenchKnobs defs;
    defs.sample = 1;
    const util::BenchKnobs knobs = util::parseBenchKnobs(cli, defs);

    util::Table fixed("Section VI-E: fixed allocator metadata per DRAM "
                      "bank");
    fixed.setHeader({"Design", "Buddy tree levels", "Buddy metadata"});
    {
        sim::Dpu d1, d2;
        alloc::StrawManAllocator straw(d1, alloc::StrawManConfig{});
        alloc::PimMallocAllocator pm(d2, alloc::PimMallocConfig{});
        fixed.addRow({"Straw-man (32 MB / 32 B)",
                      util::Table::num(uint64_t{straw.tree().levels()}),
                      util::Table::num(straw.metadataBytes() >> 10)
                          + " KB"});
        fixed.addRow({"PIM-malloc (32 MB / 4 KB backend)",
                      util::Table::num(uint64_t{pm.backend().levels()}),
                      util::Table::num(pm.backendMetadataBytes() >> 10)
                          + " KB"});
    }
    fixed.print(std::cout);
    std::cout << "\n";

    trace::RecorderSet recorders(knobs.wantsTrace());
    telemetry::MetricSet metrics(knobs.wantsMetrics());
    util::Table per_wl("Section VI-E: PIM-malloc metadata per DPU under "
                       "the paper's workloads");
    per_wl.setHeader({"Workload", "Backend (KB)", "Thread-cache records "
                      "(KB)", "Total (KB)"});
    for (const auto &[name, structure] :
         {std::pair<const char *, graph::StructureKind>{
              "Dynamic graph update (array of linked list)",
              graph::StructureKind::LinkedList},
          {"Dynamic graph update (variable sized array)",
           graph::StructureKind::VarArray}}) {
        graph::GraphUpdateConfig cfg;
        cfg.structure = structure;
        cfg.allocator = core::AllocatorKind::PimMallocSw;
        cfg.numDpus = knobs.dpus;
        cfg.sampleDpus = knobs.sample;
        cfg.gen.numNodes = 196591;
        cfg.gen.numEdges = 950327;
        cfg.simThreads = knobs.threads;
        cfg.recorder = recorders.add(name);
        cfg.metrics = metrics.add(name);
        const auto r = graph::runGraphUpdate(cfg);
        const double total_kb =
            static_cast<double>(r.metadataBytes) / 1024.0;
        per_wl.addRow({name, "4.0",
                       util::Table::num(total_kb - 4.0, 2),
                       util::Table::num(total_kb, 2)});
    }
    per_wl.print(std::cout);
    std::cout << "\nPaper: 4 KB of buddy metadata per bank; ~5.1 KB / "
                 "5 KB / 5.2 KB total for the three workloads.\n";

    if (!trace::emitReports(std::cout, recorders, metrics,
                            knobs.occupancy, knobs.metrics,
                            knobs.tracePath))
        return 1;

    if (!knobs.jsonPath.empty()) {
        std::ofstream out(knobs.jsonPath);
        if (!out) {
            std::cerr << "cannot open " << knobs.jsonPath << "\n";
            return 1;
        }
        util::JsonWriter j(out);
        j.beginObject();
        j.key("bench").value("metadata_overhead");
        j.key("dpus").value(knobs.dpus);
        j.key("sample").value(knobs.sample);
        j.key("fixedMetadata");
        fixed.writeJson(j);
        j.key("perWorkload");
        per_wl.writeJson(j);
        telemetry::writeMetricsJson(j, metrics);
        j.endObject();
        out << "\n";
    }
    return 0;
}
