/**
 * @file
 * Ablation studies for the design choices DESIGN.md calls out (beyond
 * the paper's own figures):
 *  (1) software metadata-buffer size for the straw-man allocator — the
 *      coarse flush/reload policy means a bigger window is not always
 *      better;
 *  (2) PIM-malloc span size (2/4/8/16 KB) — the paper's 4 KB balances
 *      refill frequency against pre-population waste;
 *  (3) thread-cache size-class count — fewer classes push more requests
 *      to the bypass path.
 */

#include <iostream>

#include "alloc/pim_malloc.hh"
#include "core/pim_system.hh"
#include "sim/dpu.hh"
#include "telemetry/export.hh"
#include "util/cli.hh"
#include "util/rng.hh"
#include "util/table.hh"
#include "workloads/microbench.hh"

using namespace pim;
using namespace pim::workloads;

namespace {

double
strawLatency(uint32_t buffer_bytes, telemetry::Registry *met)
{
    MicrobenchConfig cfg;
    cfg.allocator = core::AllocatorKind::StrawMan;
    cfg.tasklets = 16;
    cfg.allocsPerTasklet = 64;
    cfg.allocSize = 32;
    cfg.overrides.swBufferBytes = buffer_bytes;
    cfg.metrics = met;
    return runMicrobench(cfg).avgLatencyUs;
}

struct SpanResult
{
    double latencyUs;
    double fragmentation;
};

SpanResult
spanSweep(uint32_t span_bytes)
{
    core::PimSystem sys(core::singleDpuConfig());
    sim::Dpu &dpu = sys.dpu(0);
    alloc::PimMallocConfig cfg;
    cfg.spanBytes = span_bytes;
    // Keep class/span ratio within the bitmap: smallest class scales.
    cfg.sizeClasses.clear();
    for (uint32_t c = span_bytes / 256; c <= 2048; c *= 2)
        cfg.sizeClasses.push_back(c);
    cfg.numTasklets = 16;
    alloc::PimMallocAllocator a(dpu, cfg);
    dpu.run(1, [&](sim::Tasklet &t) { a.init(t); });
    dpu.run(16, [&](sim::Tasklet &t) {
        for (int i = 0; i < 128; ++i)
            a.malloc(t, 256);
    });
    return {dpu.config().cyclesToMicros(
                static_cast<uint64_t>(a.stats().latency.mean())),
            a.stats().peakFragmentation};
}

double
classCountLatency(size_t num_classes)
{
    core::PimSystem sys(core::singleDpuConfig());
    sim::Dpu &dpu = sys.dpu(0);
    alloc::PimMallocConfig cfg;
    cfg.sizeClasses.clear();
    // Classes shrink from 2 KB downward: fewer classes -> smaller max
    // cached size -> more bypasses for a mixed-size workload.
    uint32_t c = 2048;
    for (size_t i = 0; i < num_classes; ++i, c /= 2)
        cfg.sizeClasses.insert(cfg.sizeClasses.begin(), c);
    cfg.numTasklets = 16;
    alloc::PimMallocAllocator a(dpu, cfg);
    dpu.run(1, [&](sim::Tasklet &t) { a.init(t); });
    dpu.run(16, [&](sim::Tasklet &t) {
        util::Rng rng(t.id());
        for (int i = 0; i < 128; ++i)
            a.malloc(t, 16u << rng.uniformInt(8)); // 16 B .. 2 KB
    });
    return dpu.config().cyclesToMicros(
        static_cast<uint64_t>(a.stats().latency.mean()));
}

} // namespace

int
main(int argc, char **argv)
{
    // Only --metrics applies (ablations 2 and 3 drive bare DPUs, so
    // the registry covers the straw-man sweep's microbench runs).
    util::Cli cli(argc, argv, "metrics");
    const util::BenchKnobs knobs = util::parseBenchKnobs(cli);
    telemetry::MetricSet metrics(knobs.metrics);

    util::Table buf("Ablation 1: straw-man SW metadata buffer size "
                    "(16 tasklets, 32 B allocs)");
    buf.setHeader({"Buffer", "Avg latency (us)"});
    for (uint32_t bytes : {256u, 512u, 1024u, 2048u, 4096u, 8192u})
        buf.addRow({std::to_string(bytes) + " B",
                    util::Table::num(
                        strawLatency(bytes,
                                     metrics.add("buffer "
                                                 + std::to_string(bytes)
                                                 + " B")),
                        1)});
    buf.print(std::cout);
    std::cout << "\n";

    util::Table span("Ablation 2: PIM-malloc span size (256 B allocs, "
                     "16 tasklets)");
    span.setHeader({"Span", "Avg latency (us)", "Peak A/U"});
    for (uint32_t bytes : {2048u, 4096u, 8192u, 16384u}) {
        const auto r = spanSweep(bytes);
        span.addRow({std::to_string(bytes) + " B",
                     util::Table::num(r.latencyUs, 2),
                     util::Table::num(r.fragmentation, 2)});
    }
    span.print(std::cout);
    std::cout << "\n";

    util::Table cls("Ablation 3: thread-cache size-class count "
                    "(mixed 16 B..2 KB workload)");
    cls.setHeader({"Classes", "Avg latency (us)"});
    for (size_t n : {2u, 4u, 6u, 8u})
        cls.addRow({util::Table::num(uint64_t{n}),
                    util::Table::num(classCountLatency(n), 2)});
    cls.print(std::cout);

    telemetry::printMetrics(std::cout, metrics, knobs.metrics);
    return 0;
}
