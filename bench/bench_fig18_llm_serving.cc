/**
 * @file
 * Reproduces Fig 18: LLM serving throughput and TPOT (time per output
 * token) percentiles under four KV-cache allocation schemes — static
 * pre-allocation, the straw-man buddy allocator, PIM-malloc-SW, and
 * PIM-malloc-HW/SW. Trace: 100 requests at 10 req/s, 128-token
 * prompts, 256-token outputs (Section V).
 */

#include <fstream>
#include <iostream>
#include <optional>
#include <vector>

#include "trace/chrome_trace.hh"
#include "util/cli.hh"
#include "util/json.hh"
#include "util/table.hh"
#include "workloads/llm/serving_sim.hh"

using namespace pim;
using namespace pim::workloads::llm;

int
main(int argc, char **argv)
{
    // Serving has no sampling or sim-thread fan-out, so only the
    // applicable shared knobs are accepted (unknown flags stay fatal).
    util::Cli cli(argc, argv,
                  "dpus,tasklets,json,trace,occupancy,requests,rate");
    const util::BenchKnobs knobs = util::parseBenchKnobs(cli);

    ServingConfig cfg;
    cfg.numDpus = knobs.dpus;
    cfg.allocTasklets = knobs.tasklets;
    cfg.numRequests =
        static_cast<unsigned>(cli.getInt("requests", cfg.numRequests));
    cfg.arrivalRatePerSec =
        cli.getDouble("rate", cfg.arrivalRatePerSec);

    const ServingScheme schemes[] = {
        {std::nullopt},
        {core::AllocatorKind::StrawMan},
        {core::AllocatorKind::PimMallocSw},
        {core::AllocatorKind::PimMallocHwSw},
    };
    trace::RecorderSet recorders(knobs.wantsTrace());

    util::Table table("Fig 18: LLM serving throughput and TPOT across "
                      "allocation schemes");
    table.setHeader({"Scheme", "Throughput (tok/s)", "TPOT p50 (ms)",
                     "TPOT p95 (ms)", "TPOT p99 (ms)", "Max batch",
                     "Alloc us/block"});
    double static_throughput = 0.0;
    double best_throughput = 0.0;
    std::vector<std::pair<std::string, ServingResult>> results;
    for (const auto &scheme : schemes) {
        ServingConfig run_cfg = cfg;
        run_cfg.recorder = recorders.add(scheme.name());
        const auto r = runServing(scheme, run_cfg);
        results.emplace_back(scheme.name(), r);
        if (!scheme.allocator)
            static_throughput = r.throughputTokensPerSec;
        best_throughput =
            std::max(best_throughput, r.throughputTokensPerSec);
        table.addRow({scheme.name(),
                      util::Table::num(r.throughputTokensPerSec, 0),
                      util::Table::num(r.tpotP50Ms, 1),
                      util::Table::num(r.tpotP95Ms, 1),
                      util::Table::num(r.tpotP99Ms, 1),
                      util::Table::num(uint64_t{r.maxBatchLimit}),
                      util::Table::num(r.allocSecPerBlock * 1e6, 1)});
    }
    table.print(std::cout);
    std::cout << "\nHW/SW vs static throughput: "
              << util::Table::num(best_throughput / static_throughput, 2)
              << "x (paper: 1.7x). Expected shape: static has the lowest "
                 "TPOT but the smallest batch; the straw-man has the "
                 "highest TPOT; PIM-malloc-HW/SW has the highest "
                 "throughput.\n";

    if (!knobs.jsonPath.empty()) {
        std::ofstream out(knobs.jsonPath);
        if (!out) {
            std::cerr << "cannot open " << knobs.jsonPath << "\n";
            return 1;
        }
        util::JsonWriter j(out);
        j.beginObject();
        j.key("bench").value("fig18_llm_serving");
        j.key("dpus").value(cfg.numDpus);
        j.key("requests").value(cfg.numRequests);
        j.key("arrival_rate_per_sec").value(cfg.arrivalRatePerSec);
        j.key("schemes").beginArray();
        for (const auto &[name, r] : results) {
            j.beginObject();
            j.key("name").value(name);
            j.key("throughput_tokens_per_sec")
                .value(r.throughputTokensPerSec);
            j.key("tpot_p50_ms").value(r.tpotP50Ms);
            j.key("tpot_p95_ms").value(r.tpotP95Ms);
            j.key("tpot_p99_ms").value(r.tpotP99Ms);
            j.key("makespan_sec").value(r.makespanSec);
            j.key("max_batch").value(r.maxBatchLimit);
            j.key("peak_batch").value(r.peakBatchObserved);
            j.key("alloc_sec_per_block").value(r.allocSecPerBlock);
            j.endObject();
        }
        j.endArray();
        j.endObject();
        std::cout << "\nJSON written to " << knobs.jsonPath << "\n";
    }

    if (!trace::emitReports(std::cout, recorders, knobs.occupancy,
                            knobs.tracePath, "Serving occupancy: "))
        return 1;
    return 0;
}
