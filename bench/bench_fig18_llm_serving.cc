/**
 * @file
 * Reproduces Fig 18: LLM serving throughput and TPOT (time per output
 * token) percentiles under four KV-cache allocation schemes — static
 * pre-allocation, the straw-man buddy allocator, PIM-malloc-SW, and
 * PIM-malloc-HW/SW. Trace: 100 requests at 10 req/s, 128-token
 * prompts, 256-token outputs (Section V).
 *
 * `--disaggregate` switches the study to the ServingEngine's
 * rank-partitioned prefill/decode pipeline (`--prefill-frac` sets the
 * rank split) and appends a sweep over the split; combine with
 * `--occupancy` / `--trace` to see prefill ranks, decode ranks, and
 * the KV bus overlapping.
 */

#include <algorithm>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "telemetry/export.hh"
#include "trace/chrome_trace.hh"
#include "util/cli.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "workloads/llm/serving_engine.hh"
#include "workloads/llm/serving_sim.hh"

using namespace pim;
using namespace pim::workloads::llm;

namespace {

/** One disaggregated run. */
ServingResult
runDisaggregated(const ServingScheme &scheme, const ServingConfig &base,
                 double prefill_frac, const util::BenchKnobs &knobs,
                 trace::Recorder *recorder,
                 telemetry::Registry *metrics)
{
    ServingEngineConfig ecfg;
    ecfg.base = base;
    ecfg.base.recorder = recorder;
    ecfg.base.metrics = metrics;
    ecfg.mode = ServingMode::Disaggregated;
    ecfg.prefillRankFraction = prefill_frac;
    ecfg.simThreads = knobs.threads;
    ecfg.faultSpec =
        fault::FaultSpec::fromKnobs(knobs.faultSpec, knobs.mtbf);
    ecfg.faultSeed = knobs.faultSeed;
    return ServingEngine(scheme, ecfg).run();
}

int
runDisaggregatedStudy(const util::BenchKnobs &knobs,
                      const ServingConfig &cfg, double prefill_frac)
{
    const ServingScheme schemes[] = {
        {std::nullopt},
        {core::AllocatorKind::StrawMan},
        {core::AllocatorKind::PimMallocSw},
        {core::AllocatorKind::PimMallocHwSw},
    };
    trace::RecorderSet recorders(knobs.wantsTrace());
    telemetry::MetricSet metrics(knobs.wantsMetrics());

    util::Table table(
        "Fig 18 disaggregated: rank-partitioned prefill/decode pipeline "
        "with double-buffered KV shipping");
    table.setHeader({"Scheme", "Throughput (tok/s)", "TPOT p50 (ms)",
                     "TPOT p95 (ms)", "TPOT p99 (ms)", "Max batch",
                     "Pre/Dec ranks", "Waves", "KV ship (MB)",
                     "Overlap (s)"});
    std::vector<std::pair<std::string, ServingResult>> results;
    for (const auto &scheme : schemes) {
        const auto r =
            runDisaggregated(scheme, cfg, prefill_frac, knobs,
                             recorders.add(scheme.name()),
                             metrics.add(scheme.name()));
        results.emplace_back(scheme.name(), r);
        table.addRow({scheme.name(),
                      util::Table::num(r.throughputTokensPerSec, 0),
                      util::Table::num(r.tpotP50Ms, 1),
                      util::Table::num(r.tpotP95Ms, 1),
                      util::Table::num(r.tpotP99Ms, 1),
                      util::Table::num(uint64_t{r.maxBatchLimit}),
                      util::Table::num(uint64_t{r.prefillRanks}) + "/"
                          + util::Table::num(uint64_t{r.decodeRanks}),
                      util::Table::num(uint64_t{r.prefillWaves}),
                      util::Table::num(
                          static_cast<double>(r.kvShippedBytes) / 1e6,
                          1),
                      util::Table::num(r.overlapSeconds, 2)});
    }
    table.print(std::cout);
    std::cout << "\nOverlap is resource work (host + bus + ranks) hidden "
                 "by the pipeline; KV ship counts prompt migrations "
                 "plus per-step block appends.\n";

    // Sweep the rank split for the headline schemes: more prefill
    // ranks admit faster but shrink the decode shard (bigger per-DPU
    // KV slices -> slower attention).
    const double fracs[] = {0.125, 0.25, 0.375, 0.5};
    const ServingScheme sweep_schemes[] = {
        {std::nullopt}, {core::AllocatorKind::PimMallocHwSw}};
    util::Table sweep("Prefill/decode rank-split sweep");
    sweep.setHeader({"Scheme", "Prefill frac", "Pre/Dec ranks",
                     "Throughput (tok/s)", "TPOT p50 (ms)",
                     "TPOT p99 (ms)", "Overlap (s)"});
    std::vector<std::tuple<std::string, double, ServingResult>>
        sweep_results;
    for (const auto &scheme : sweep_schemes) {
        for (const double f : fracs) {
            // The main table already ran every scheme at prefill_frac
            // (a recorder only adds spans, never changes results).
            const auto cached = std::find_if(
                results.begin(), results.end(),
                [&](const auto &p) { return p.first == scheme.name(); });
            const ServingResult r = f == prefill_frac
                ? cached->second
                : runDisaggregated(scheme, cfg, f, knobs, nullptr,
                                   nullptr);
            sweep_results.emplace_back(scheme.name(), f, r);
            sweep.addRow(
                {scheme.name(), util::Table::num(f, 3),
                 util::Table::num(uint64_t{r.prefillRanks}) + "/"
                     + util::Table::num(uint64_t{r.decodeRanks}),
                 util::Table::num(r.throughputTokensPerSec, 0),
                 util::Table::num(r.tpotP50Ms, 1),
                 util::Table::num(r.tpotP99Ms, 1),
                 util::Table::num(r.overlapSeconds, 2)});
        }
    }
    std::cout << "\n";
    sweep.print(std::cout);

    if (!knobs.jsonPath.empty()) {
        std::ofstream out(knobs.jsonPath);
        if (!out) {
            std::cerr << "cannot open " << knobs.jsonPath << "\n";
            return 1;
        }
        util::JsonWriter j(out);
        j.beginObject();
        j.key("bench").value("fig18_llm_serving");
        j.key("mode").value("disaggregated");
        j.key("dpus").value(cfg.numDpus);
        j.key("requests").value(cfg.numRequests);
        j.key("arrival_rate_per_sec").value(cfg.arrivalRatePerSec);
        j.key("prefill_rank_fraction").value(prefill_frac);
        j.key("schemes").beginArray();
        for (const auto &[name, r] : results) {
            j.beginObject();
            j.key("name").value(name);
            j.key("throughput_tokens_per_sec")
                .value(r.throughputTokensPerSec);
            j.key("tpot_p50_ms").value(r.tpotP50Ms);
            j.key("tpot_p95_ms").value(r.tpotP95Ms);
            j.key("tpot_p99_ms").value(r.tpotP99Ms);
            j.key("makespan_sec").value(r.makespanSec);
            j.key("max_batch").value(r.maxBatchLimit);
            j.key("peak_batch").value(r.peakBatchObserved);
            j.key("alloc_sec_per_block").value(r.allocSecPerBlock);
            j.key("prefill_ranks").value(r.prefillRanks);
            j.key("decode_ranks").value(r.decodeRanks);
            j.key("prefill_waves").value(r.prefillWaves);
            j.key("kv_shipped_bytes").value(r.kvShippedBytes);
            j.key("overlap_sec").value(r.overlapSeconds);
            j.endObject();
        }
        j.endArray();
        j.key("sweep").beginArray();
        for (const auto &[name, f, r] : sweep_results) {
            j.beginObject();
            j.key("name").value(name);
            j.key("prefill_rank_fraction").value(f);
            j.key("prefill_ranks").value(r.prefillRanks);
            j.key("decode_ranks").value(r.decodeRanks);
            j.key("throughput_tokens_per_sec")
                .value(r.throughputTokensPerSec);
            j.key("tpot_p50_ms").value(r.tpotP50Ms);
            j.key("tpot_p99_ms").value(r.tpotP99Ms);
            j.key("overlap_sec").value(r.overlapSeconds);
            j.endObject();
        }
        j.endArray();
        telemetry::writeMetricsJson(j, metrics);
        j.endObject();
        std::cout << "\nJSON written to " << knobs.jsonPath << "\n";
    }

    if (!trace::emitReports(std::cout, recorders, metrics,
                            knobs.occupancy, knobs.metrics,
                            knobs.tracePath, "Serving occupancy: "))
        return 1;
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Serving has no DPU sampling knob; --threads only feeds the
    // disaggregated engine's prefill simulation (unknown flags stay
    // fatal).
    util::Cli cli(argc, argv,
                  "dpus,tasklets,threads,json,trace,occupancy,metrics,"
                  "requests,rate,disaggregate,prefill-frac,fault-seed,"
                  "mtbf,fault-spec");
    const util::BenchKnobs knobs = util::parseBenchKnobs(cli);
    if (knobs.wantsFaults() && !cli.getBool("disaggregate", false))
        PIM_FATAL("--mtbf/--fault-spec require --disaggregate: only "
                  "the rank-partitioned pipeline is fault-aware");

    ServingConfig cfg;
    cfg.numDpus = knobs.dpus;
    cfg.allocTasklets = knobs.tasklets;
    cfg.numRequests =
        static_cast<unsigned>(cli.getInt("requests", cfg.numRequests));
    cfg.arrivalRatePerSec =
        cli.getDouble("rate", cfg.arrivalRatePerSec);

    if (cli.getBool("disaggregate", false)) {
        return runDisaggregatedStudy(knobs, cfg,
                                     cli.getDouble("prefill-frac", 0.25));
    }

    const ServingScheme schemes[] = {
        {std::nullopt},
        {core::AllocatorKind::StrawMan},
        {core::AllocatorKind::PimMallocSw},
        {core::AllocatorKind::PimMallocHwSw},
    };
    trace::RecorderSet recorders(knobs.wantsTrace());
    telemetry::MetricSet metrics(knobs.wantsMetrics());

    util::Table table("Fig 18: LLM serving throughput and TPOT across "
                      "allocation schemes");
    table.setHeader({"Scheme", "Throughput (tok/s)", "TPOT p50 (ms)",
                     "TPOT p95 (ms)", "TPOT p99 (ms)", "Max batch",
                     "Alloc us/block"});
    double static_throughput = 0.0;
    double best_throughput = 0.0;
    std::vector<std::pair<std::string, ServingResult>> results;
    for (const auto &scheme : schemes) {
        ServingConfig run_cfg = cfg;
        run_cfg.recorder = recorders.add(scheme.name());
        run_cfg.metrics = metrics.add(scheme.name());
        const auto r = runServing(scheme, run_cfg);
        results.emplace_back(scheme.name(), r);
        if (!scheme.allocator)
            static_throughput = r.throughputTokensPerSec;
        best_throughput =
            std::max(best_throughput, r.throughputTokensPerSec);
        table.addRow({scheme.name(),
                      util::Table::num(r.throughputTokensPerSec, 0),
                      util::Table::num(r.tpotP50Ms, 1),
                      util::Table::num(r.tpotP95Ms, 1),
                      util::Table::num(r.tpotP99Ms, 1),
                      util::Table::num(uint64_t{r.maxBatchLimit}),
                      util::Table::num(r.allocSecPerBlock * 1e6, 1)});
    }
    table.print(std::cout);
    std::cout << "\nHW/SW vs static throughput: "
              << util::Table::num(best_throughput / static_throughput, 2)
              << "x (paper: 1.7x). Expected shape: static has the lowest "
                 "TPOT but the smallest batch; the straw-man has the "
                 "highest TPOT; PIM-malloc-HW/SW has the highest "
                 "throughput.\n";

    if (!knobs.jsonPath.empty()) {
        std::ofstream out(knobs.jsonPath);
        if (!out) {
            std::cerr << "cannot open " << knobs.jsonPath << "\n";
            return 1;
        }
        util::JsonWriter j(out);
        j.beginObject();
        j.key("bench").value("fig18_llm_serving");
        j.key("dpus").value(cfg.numDpus);
        j.key("requests").value(cfg.numRequests);
        j.key("arrival_rate_per_sec").value(cfg.arrivalRatePerSec);
        j.key("schemes").beginArray();
        for (const auto &[name, r] : results) {
            j.beginObject();
            j.key("name").value(name);
            j.key("throughput_tokens_per_sec")
                .value(r.throughputTokensPerSec);
            j.key("tpot_p50_ms").value(r.tpotP50Ms);
            j.key("tpot_p95_ms").value(r.tpotP95Ms);
            j.key("tpot_p99_ms").value(r.tpotP99Ms);
            j.key("makespan_sec").value(r.makespanSec);
            j.key("max_batch").value(r.maxBatchLimit);
            j.key("peak_batch").value(r.peakBatchObserved);
            j.key("alloc_sec_per_block").value(r.allocSecPerBlock);
            j.endObject();
        }
        j.endArray();
        telemetry::writeMetricsJson(j, metrics);
        j.endObject();
        std::cout << "\nJSON written to " << knobs.jsonPath << "\n";
    }

    if (!trace::emitReports(std::cout, recorders, metrics,
                            knobs.occupancy, knobs.metrics,
                            knobs.tracePath, "Serving occupancy: "))
        return 1;
    return 0;
}
