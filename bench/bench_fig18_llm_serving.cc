/**
 * @file
 * Reproduces Fig 18: LLM serving throughput and TPOT (time per output
 * token) percentiles under four KV-cache allocation schemes — static
 * pre-allocation, the straw-man buddy allocator, PIM-malloc-SW, and
 * PIM-malloc-HW/SW. Trace: 100 requests at 10 req/s, 128-token
 * prompts, 256-token outputs (Section V).
 */

#include <iostream>
#include <optional>

#include "util/table.hh"
#include "workloads/llm/serving_sim.hh"

using namespace pim;
using namespace pim::workloads::llm;

int
main()
{
    const ServingConfig cfg;
    const ServingScheme schemes[] = {
        {std::nullopt},
        {core::AllocatorKind::StrawMan},
        {core::AllocatorKind::PimMallocSw},
        {core::AllocatorKind::PimMallocHwSw},
    };

    util::Table table("Fig 18: LLM serving throughput and TPOT across "
                      "allocation schemes");
    table.setHeader({"Scheme", "Throughput (tok/s)", "TPOT p50 (ms)",
                     "TPOT p95 (ms)", "TPOT p99 (ms)", "Max batch",
                     "Alloc us/block"});
    double static_throughput = 0.0;
    double best_throughput = 0.0;
    for (const auto &scheme : schemes) {
        const auto r = runServing(scheme, cfg);
        if (!scheme.allocator)
            static_throughput = r.throughputTokensPerSec;
        best_throughput =
            std::max(best_throughput, r.throughputTokensPerSec);
        table.addRow({scheme.name(),
                      util::Table::num(r.throughputTokensPerSec, 0),
                      util::Table::num(r.tpotP50Ms, 1),
                      util::Table::num(r.tpotP95Ms, 1),
                      util::Table::num(r.tpotP99Ms, 1),
                      util::Table::num(uint64_t{r.maxBatchLimit}),
                      util::Table::num(r.allocSecPerBlock * 1e6, 1)});
    }
    table.print(std::cout);
    std::cout << "\nHW/SW vs static throughput: "
              << util::Table::num(best_throughput / static_throughput, 2)
              << "x (paper: 1.7x). Expected shape: static has the lowest "
                 "TPOT but the smallest batch; the straw-man has the "
                 "highest TPOT; PIM-malloc-HW/SW has the highest "
                 "throughput.\n";
    return 0;
}
