/**
 * @file
 * Reproduces Section VI-F: area, power, and timing overheads of the
 * hardware buddy cache (CACTI-calibrated CAM model at a 32 nm logic
 * node, scaled 10x denser->DRAM area and 3x slower delay), plus a
 * capacity sweep matching the Fig 16 design points.
 */

#include <iostream>

#include "sim/area_model.hh"
#include "util/table.hh"

using namespace pim;
using namespace pim::sim;

int
main()
{
    AreaModel model;

    util::Table table("Section VI-F: buddy cache hardware overheads "
                      "(DRAM-process scaled)");
    table.setHeader({"Cache size", "Entries", "Area (mm^2)", "Power (mW)",
                     "Access (ns)", "PIM cycles"});
    for (unsigned bytes : {16u, 32u, 64u, 128u, 256u}) {
        BuddyCacheConfig cfg;
        cfg.entries = bytes / 4;
        const auto o = model.estimate(cfg);
        table.addRow({std::to_string(bytes) + " B",
                      util::Table::num(uint64_t{cfg.entries}),
                      util::Table::num(o.areaMm2, 4),
                      util::Table::num(o.powerMw, 2),
                      util::Table::num(o.accessNs, 2),
                      util::Table::num(o.cyclesAt350Mhz, 2)});
    }
    table.print(std::cout);
    std::cout << "\nPaper (64 B default): 0.019 mm^2, 5 mW, < 1 PIM core "
                 "cycle.\n";
    return 0;
}
