/**
 * @file
 * Reproduces Section VI-F: area, power, and timing overheads of the
 * hardware buddy cache (CACTI-calibrated CAM model at a 32 nm logic
 * node, scaled 10x denser->DRAM area and 3x slower delay), plus a
 * capacity sweep matching the Fig 16 design points.
 */

#include <fstream>
#include <iostream>

#include "sim/area_model.hh"
#include "util/cli.hh"
#include "util/json.hh"
#include "util/table.hh"

using namespace pim;
using namespace pim::sim;

int
main(int argc, char **argv)
{
    // Analytic model: no system knobs apply, but the shared flag set is
    // accepted so scripted sweeps can drive every bench identically.
    util::Cli cli(argc, argv, util::benchKnobNames());
    const util::BenchKnobs knobs = util::parseBenchKnobs(cli);

    AreaModel model;

    util::Table table("Section VI-F: buddy cache hardware overheads "
                      "(DRAM-process scaled)");
    table.setHeader({"Cache size", "Entries", "Area (mm^2)", "Power (mW)",
                     "Access (ns)", "PIM cycles"});
    for (unsigned bytes : {16u, 32u, 64u, 128u, 256u}) {
        BuddyCacheConfig cfg;
        cfg.entries = bytes / 4;
        const auto o = model.estimate(cfg);
        table.addRow({std::to_string(bytes) + " B",
                      util::Table::num(uint64_t{cfg.entries}),
                      util::Table::num(o.areaMm2, 4),
                      util::Table::num(o.powerMw, 2),
                      util::Table::num(o.accessNs, 2),
                      util::Table::num(o.cyclesAt350Mhz, 2)});
    }
    table.print(std::cout);
    std::cout << "\nPaper (64 B default): 0.019 mm^2, 5 mW, < 1 PIM core "
                 "cycle.\n";

    if (!knobs.jsonPath.empty()) {
        std::ofstream out(knobs.jsonPath);
        if (!out) {
            std::cerr << "cannot open " << knobs.jsonPath << "\n";
            return 1;
        }
        util::JsonWriter j(out);
        j.beginObject();
        j.key("bench").value("hw_overhead");
        j.key("table");
        table.writeJson(j);
        j.endObject();
        out << "\n";
    }
    return 0;
}
