/**
 * @file
 * Reproduces Fig 4(b): maximum LLM batch size achievable under static
 * (PAISE-style worst-case reservation) vs dynamic (PIM-malloc) KV-cache
 * allocation, on a 512-DPU system with Llama-2 7B and ShareGPT-like
 * request lengths. This capacity study is what feeds the serving
 * simulator's `maxBatchLimit` bound (Fig 18).
 */

#include <fstream>
#include <iostream>

#include "util/cli.hh"
#include "util/json.hh"
#include "util/table.hh"
#include "workloads/llm/kv_cache.hh"
#include "workloads/llm/llm_config.hh"

using namespace pim;
using namespace pim::workloads::llm;

int
main(int argc, char **argv)
{
    // The capacity probe runs one simulated DPU; of the shared knobs
    // only --dpus (KV shard width) and --json apply (unknown flags
    // stay fatal). --metrics is accepted for knob uniformity but the
    // probe never touches a CommandQueue, so there is nothing to meter.
    util::Cli cli(argc, argv, "dpus,json,seed,metrics");
    const util::BenchKnobs knobs = util::parseBenchKnobs(cli);
    const auto seed = static_cast<uint64_t>(cli.getInt("seed", 3));

    const auto r = measureBatchCapacity(LlmModelConfig{},
                                        RequestLengthConfig{},
                                        knobs.dpus, seed);
    const double ratio = static_cast<double>(r.dynamicMaxBatch)
        / static_cast<double>(r.staticMaxBatch);

    util::Table table("Fig 4(b): maximum batch size, static vs dynamic "
                      "KV-cache allocation (" + std::to_string(knobs.dpus)
                      + " DPUs, Llama-2 7B)");
    table.setHeader({"Allocation", "Max batch size", "Bytes/request"});
    table.addRow({"Static", util::Table::num(uint64_t{r.staticMaxBatch}),
                  util::Table::num(r.staticReserveBytesPerRequest)});
    table.addRow({"Dynamic", util::Table::num(uint64_t{r.dynamicMaxBatch}),
                  util::Table::num(r.meanActualBytesPerRequest, 0)});
    table.print(std::cout);

    std::cout << "\nDynamic/static batch ratio: "
              << util::Table::num(ratio, 2)
              << "x (paper's figure shows ~3-4x)\n";

    if (!knobs.jsonPath.empty()) {
        std::ofstream out(knobs.jsonPath);
        if (!out) {
            std::cerr << "cannot open " << knobs.jsonPath << "\n";
            return 1;
        }
        util::JsonWriter j(out);
        j.beginObject();
        j.key("bench").value("fig04_batch_size");
        j.key("dpus").value(knobs.dpus);
        j.key("seed").value(seed);
        j.key("heap_bytes").value(r.heapBytes);
        j.key("static_max_batch").value(r.staticMaxBatch);
        j.key("dynamic_max_batch").value(r.dynamicMaxBatch);
        j.key("static_reserve_bytes_per_request")
            .value(r.staticReserveBytesPerRequest);
        j.key("mean_actual_bytes_per_request")
            .value(r.meanActualBytesPerRequest);
        j.key("dynamic_static_ratio").value(ratio);
        j.endObject();
        std::cout << "\nJSON written to " << knobs.jsonPath << "\n";
    }
    return 0;
}
