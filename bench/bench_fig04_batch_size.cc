/**
 * @file
 * Reproduces Fig 4(b): maximum LLM batch size achievable under static
 * (PAISE-style worst-case reservation) vs dynamic (PIM-malloc) KV-cache
 * allocation, on a 512-DPU system with Llama-2 7B and ShareGPT-like
 * request lengths.
 */

#include <iostream>

#include "util/table.hh"
#include "workloads/llm/kv_cache.hh"
#include "workloads/llm/llm_config.hh"

using namespace pim;
using namespace pim::workloads::llm;

int
main()
{
    const auto r = measureBatchCapacity(LlmModelConfig{},
                                        RequestLengthConfig{}, 512, 3);

    util::Table table("Fig 4(b): maximum batch size, static vs dynamic "
                      "KV-cache allocation (512 DPUs, Llama-2 7B)");
    table.setHeader({"Allocation", "Max batch size", "Bytes/request"});
    table.addRow({"Static", util::Table::num(uint64_t{r.staticMaxBatch}),
                  util::Table::num(r.staticReserveBytesPerRequest)});
    table.addRow({"Dynamic", util::Table::num(uint64_t{r.dynamicMaxBatch}),
                  util::Table::num(r.meanActualBytesPerRequest, 0)});
    table.print(std::cout);

    std::cout << "\nDynamic/static batch ratio: "
              << util::Table::num(
                     static_cast<double>(r.dynamicMaxBatch)
                         / static_cast<double>(r.staticMaxBatch),
                     2)
              << "x (paper's figure shows ~3-4x)\n";
    return 0;
}
