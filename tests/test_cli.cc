/**
 * @file
 * Unit tests for the CLI flag parser.
 */

#include <gtest/gtest.h>

#include <vector>

#include "util/cli.hh"

using pim::util::Cli;

namespace {

Cli
parse(std::vector<const char *> args, const std::string &known = "")
{
    args.insert(args.begin(), "prog");
    return Cli(static_cast<int>(args.size()),
               const_cast<char **>(args.data()), known);
}

} // namespace

TEST(Cli, EqualsForm)
{
    auto c = parse({"--name=value"});
    EXPECT_TRUE(c.has("name"));
    EXPECT_EQ(c.get("name", ""), "value");
}

TEST(Cli, SpaceForm)
{
    auto c = parse({"--n", "42"});
    EXPECT_EQ(c.getInt("n", 0), 42);
}

TEST(Cli, BooleanFlag)
{
    auto c = parse({"--verbose"});
    EXPECT_TRUE(c.getBool("verbose", false));
    EXPECT_FALSE(c.getBool("quiet", false));
}

TEST(Cli, BooleanFalseValue)
{
    auto c = parse({"--verbose=false", "--x=0"});
    EXPECT_FALSE(c.getBool("verbose", true));
    EXPECT_FALSE(c.getBool("x", true));
}

TEST(Cli, Defaults)
{
    auto c = parse({});
    EXPECT_EQ(c.get("missing", "def"), "def");
    EXPECT_EQ(c.getInt("missing", 7), 7);
    EXPECT_DOUBLE_EQ(c.getDouble("missing", 2.5), 2.5);
}

TEST(Cli, DoubleParsing)
{
    auto c = parse({"--rate=0.25"});
    EXPECT_DOUBLE_EQ(c.getDouble("rate", 0), 0.25);
}

TEST(Cli, KnownListAccepts)
{
    auto c = parse({"--a=1", "--b=2"}, "a,b,c");
    EXPECT_EQ(c.getInt("a", 0), 1);
}

TEST(CliDeath, UnknownFlagIsFatal)
{
    EXPECT_DEATH(parse({"--oops=1"}, "a,b"), "unknown flag");
}

TEST(CliDeath, PositionalIsFatal)
{
    EXPECT_DEATH(parse({"positional"}), "positional");
}

TEST(Cli, BenchKnobNamesComposeWithExtras)
{
    EXPECT_EQ(pim::util::benchKnobNames(),
              "dpus,sample,tasklets,threads,json,trace,occupancy,"
              "metrics,fault-seed,mtbf,fault-spec");
    EXPECT_EQ(pim::util::benchKnobNames("requests,rate"),
              "dpus,sample,tasklets,threads,json,trace,occupancy,"
              "metrics,fault-seed,mtbf,fault-spec,requests,rate");
}

TEST(Cli, ParseBenchKnobsReadsSharedFlags)
{
    auto c = parse({"--dpus=64", "--sample=0", "--threads=3",
                    "--json=out.json", "--trace=t.json", "--occupancy"},
                   pim::util::benchKnobNames());
    pim::util::BenchKnobs defaults;
    defaults.tasklets = 8;
    const auto k = pim::util::parseBenchKnobs(c, defaults);
    EXPECT_EQ(k.dpus, 64u);
    EXPECT_EQ(k.sample, 0u);
    EXPECT_EQ(k.tasklets, 8u); // per-bench default survives
    EXPECT_EQ(k.threads, 3u);
    EXPECT_EQ(k.jsonPath, "out.json");
    EXPECT_EQ(k.tracePath, "t.json");
    EXPECT_TRUE(k.occupancy);
    EXPECT_TRUE(k.wantsTrace());
}

TEST(Cli, ParseBenchKnobsDefaults)
{
    auto c = parse({}, pim::util::benchKnobNames());
    const auto k = pim::util::parseBenchKnobs(c);
    EXPECT_EQ(k.dpus, 512u);
    EXPECT_EQ(k.sample, 2u);
    EXPECT_EQ(k.tasklets, 16u);
    EXPECT_EQ(k.threads, 0u);
    EXPECT_TRUE(k.jsonPath.empty());
    EXPECT_TRUE(k.tracePath.empty());
    EXPECT_FALSE(k.occupancy);
    EXPECT_FALSE(k.wantsTrace());
}

TEST(CliDeath, GarbageIntegerIsFatal)
{
    auto c = parse({"--dpus=abc"});
    EXPECT_DEATH(c.getInt("dpus", 0), "expects an integer");
}

TEST(CliDeath, TrailingJunkIntegerIsFatal)
{
    auto c = parse({"--dpus=12moo"});
    EXPECT_DEATH(c.getInt("dpus", 0), "expects an integer");
}

TEST(CliDeath, GarbageDoubleIsFatal)
{
    auto c = parse({"--rate=fast"});
    EXPECT_DEATH(c.getDouble("rate", 0.0), "expects a number");
}

TEST(CliDeath, ExplicitZeroThreadsIsFatal)
{
    auto c = parse({"--threads=0"}, pim::util::benchKnobNames());
    EXPECT_DEATH(pim::util::parseBenchKnobs(c),
                 "--threads must be a positive integer");
}

TEST(CliDeath, NegativeThreadsIsFatal)
{
    auto c = parse({"--threads=-4"}, pim::util::benchKnobNames());
    EXPECT_DEATH(pim::util::parseBenchKnobs(c),
                 "--threads must be a positive integer");
}

TEST(CliDeath, GarbageThreadsIsFatal)
{
    auto c = parse({"--threads=many"}, pim::util::benchKnobNames());
    EXPECT_DEATH(pim::util::parseBenchKnobs(c), "expects an integer");
}

TEST(CliDeath, ZeroDpusIsFatal)
{
    auto c = parse({"--dpus=0"}, pim::util::benchKnobNames());
    EXPECT_DEATH(pim::util::parseBenchKnobs(c), "--dpus must be >= 1");
}

TEST(Cli, ThreadsFlagAcceptsPositive)
{
    auto c = parse({"--threads=7"}, pim::util::benchKnobNames());
    EXPECT_EQ(pim::util::parseBenchKnobs(c).threads, 7u);
}
