/**
 * @file
 * Tests for the LLM serving engine: lockstep-mode equivalence with the
 * historical runServing() facade (the Fig 18 reproduction path),
 * memoized allocator-latency calibration, disaggregated-pipeline
 * determinism across simulation thread counts, and genuine
 * prefill/decode/bus overlap in the disaggregated traces.
 */

#include <gtest/gtest.h>

#include "trace/occupancy.hh"
#include "trace/trace.hh"
#include "workloads/llm/serving_engine.hh"
#include "workloads/llm/serving_sim.hh"

using namespace pim;
using namespace pim::workloads::llm;

namespace {

ServingConfig
quickServing()
{
    ServingConfig cfg;
    cfg.numRequests = 16;
    cfg.outputTokens = 24;
    cfg.promptTokens = 16;
    return cfg;
}

ServingEngineConfig
quickDisagg(unsigned sim_threads = 1, double frac = 0.25)
{
    ServingEngineConfig ecfg;
    ecfg.base = quickServing();
    // Dense arrivals: the pipeline stays busy instead of idling
    // between requests, so overlap accounting has work to hide.
    ecfg.base.arrivalRatePerSec = 400.0;
    ecfg.base.promptTokens = 64;
    ecfg.mode = ServingMode::Disaggregated;
    ecfg.prefillRankFraction = frac;
    ecfg.simThreads = sim_threads;
    return ecfg;
}

/** Field-by-field exact comparison (determinism is bit-identical). */
void
expectIdentical(const ServingResult &a, const ServingResult &b)
{
    EXPECT_EQ(a.throughputTokensPerSec, b.throughputTokensPerSec);
    EXPECT_EQ(a.tpotP50Ms, b.tpotP50Ms);
    EXPECT_EQ(a.tpotP95Ms, b.tpotP95Ms);
    EXPECT_EQ(a.tpotP99Ms, b.tpotP99Ms);
    EXPECT_EQ(a.makespanSec, b.makespanSec);
    EXPECT_EQ(a.maxBatchLimit, b.maxBatchLimit);
    EXPECT_EQ(a.peakBatchObserved, b.peakBatchObserved);
    EXPECT_EQ(a.allocSecPerBlock, b.allocSecPerBlock);
    EXPECT_EQ(a.prefillRanks, b.prefillRanks);
    EXPECT_EQ(a.decodeRanks, b.decodeRanks);
    EXPECT_EQ(a.prefillWaves, b.prefillWaves);
    EXPECT_EQ(a.kvShippedBytes, b.kvShippedBytes);
    EXPECT_EQ(a.overlapSeconds, b.overlapSeconds);
}

} // namespace

TEST(ServingEngine, LockstepModeMatchesRunServingFacade)
{
    const ServingScheme scheme{core::AllocatorKind::PimMallocSw};
    const ServingConfig cfg = quickServing();

    ServingEngineConfig ecfg;
    ecfg.base = cfg;
    ecfg.mode = ServingMode::Lockstep;
    const ServingResult engine = ServingEngine(scheme, ecfg).run();
    const ServingResult facade = runServing(scheme, cfg);
    expectIdentical(engine, facade);
    EXPECT_EQ(engine.prefillRanks, 0u); // lockstep: no partition
    EXPECT_EQ(engine.kvShippedBytes, 0u);
}

TEST(ServingEngine, LockstepMatchesPreRefactorFig18Static)
{
    // Golden values captured from the pre-refactor runServing() on the
    // default Fig 18 config (static scheme; no calibration, so the
    // full 100-request trace is cheap). Guards the "thin lockstep
    // mode" promise: the engine must reproduce the historical numbers.
    const ServingResult r = runServing(ServingScheme{std::nullopt}, {});
    EXPECT_EQ(r.maxBatchLimit, 8u);
    EXPECT_EQ(r.peakBatchObserved, 8u);
    // Loose 1e-9 relative band: bitwise on x86-64, tolerant of FP
    // contraction differences on other targets.
    EXPECT_NEAR(r.throughputTokensPerSec, 1302.0354665495715, 2e-6);
    EXPECT_NEAR(r.makespanSec, 19.66152279080437, 2e-8);
    EXPECT_NEAR(r.tpotP50Ms, 6.006171428571428, 1e-8);
    EXPECT_NEAR(r.tpotP95Ms, 6.848777142857143, 1e-8);
    EXPECT_NEAR(r.tpotP99Ms, 6.977508571428571, 1e-8);
}

TEST(ServingEngine, CalibrationIsMemoizedAndStable)
{
    const double a = calibratedAllocLatency(
        core::AllocatorKind::PimMallocSw, 16, 512);
    const double b = calibratedAllocLatency(
        core::AllocatorKind::PimMallocSw, 16, 512);
    EXPECT_GT(a, 0.0);
    EXPECT_EQ(a, b); // cache hit returns the identical value
    // A different key really recalibrates (different tasklet count
    // changes contention, hence latency).
    const double c = calibratedAllocLatency(
        core::AllocatorKind::PimMallocSw, 1, 512);
    EXPECT_NE(a, c);
}

TEST(ServingEngine, DisaggregatedCompletesAllRequests)
{
    const ServingScheme scheme{core::AllocatorKind::PimMallocHwSw};
    const ServingResult r = ServingEngine(scheme, quickDisagg()).run();
    EXPECT_GT(r.throughputTokensPerSec, 0.0);
    EXPECT_GT(r.makespanSec, 0.0);
    EXPECT_GT(r.tpotP50Ms, 0.0);
    EXPECT_LE(r.tpotP50Ms, r.tpotP99Ms);
    EXPECT_GT(r.peakBatchObserved, 0u);
    EXPECT_LE(r.peakBatchObserved, r.maxBatchLimit);
    // The partition covers the whole 8-rank system.
    EXPECT_EQ(r.prefillRanks, 2u);
    EXPECT_EQ(r.decodeRanks, 6u);
    EXPECT_GT(r.prefillWaves, 0u);
    // KV really ships: every prompt migrates (gather + scatter) and
    // every decode step appends.
    EXPECT_GT(r.kvShippedBytes, 0u);
    // The pipeline hides work: overlap is strictly positive.
    EXPECT_GT(r.overlapSeconds, 0.0);
}

TEST(ServingEngine, DisaggregatedRespectsPrefillFraction)
{
    const ServingScheme scheme{std::nullopt};
    const ServingResult half =
        ServingEngine(scheme, quickDisagg(1, 0.5)).run();
    EXPECT_EQ(half.prefillRanks, 4u);
    EXPECT_EQ(half.decodeRanks, 4u);
    // Clamped so both sides stay non-empty.
    const ServingResult lo =
        ServingEngine(scheme, quickDisagg(1, 0.0)).run();
    EXPECT_EQ(lo.prefillRanks, 1u);
    EXPECT_EQ(lo.decodeRanks, 7u);
}

TEST(ServingEngine, DisaggregatedBitIdenticalAcrossSimThreads)
{
    // The command-queue fold is sequential in enqueue order, so the
    // whole pipeline — prefill launches included — must be
    // bit-identical for any worker-thread count.
    const ServingScheme scheme{core::AllocatorKind::PimMallocSw};
    const ServingResult one =
        ServingEngine(scheme, quickDisagg(1)).run();
    const ServingResult three =
        ServingEngine(scheme, quickDisagg(3)).run();
    expectIdentical(one, three);
}

TEST(ServingEngine, DisaggregatedTraceShowsConcurrentLanes)
{
    trace::Recorder rec;
    ServingEngineConfig ecfg = quickDisagg();
    ecfg.base.recorder = &rec;
    const ServingScheme scheme{core::AllocatorKind::PimMallocHwSw};
    const ServingResult r = ServingEngine(scheme, ecfg).run();

    const trace::OccupancyReport rep = trace::analyzeOccupancy(rec);
    EXPECT_GT(rep.makespanSeconds, 0.0);
    // Prefill ranks (0..1), decode ranks (2..7), and the KV bus all
    // carry real busy time, and their sum exceeds the makespan: the
    // lanes genuinely overlap instead of serializing.
    double prefill_busy = 0.0, decode_busy = 0.0, bus_busy = 0.0;
    for (const auto &lane : rep.lanes) {
        if (lane.lane == trace::kBusLane)
            bus_busy = lane.busySeconds;
        else if (trace::isRankLane(lane.lane)) {
            if (trace::rankOfLane(lane.lane) < r.prefillRanks)
                prefill_busy += lane.busySeconds;
            else
                decode_busy += lane.busySeconds;
        }
    }
    EXPECT_GT(prefill_busy, 0.0);
    EXPECT_GT(decode_busy, 0.0);
    EXPECT_GT(bus_busy, 0.0);
    EXPECT_GT(rep.overlapSeconds, 0.0);
    // The engine's own overlap metric agrees that work was hidden.
    EXPECT_GT(r.overlapSeconds, 0.0);
    // Bus spans carry the shipped payload.
    uint64_t bus_bytes = 0;
    for (const auto &s : rec.spans()) {
        if (s.lane == trace::kBusLane)
            bus_bytes += s.bytes;
    }
    EXPECT_EQ(bus_bytes, r.kvShippedBytes);
}

TEST(ServingEngine, DisaggregatedStrawManSlowerThanHwSw)
{
    // The allocator still matters under disaggregation: straw-man
    // prefill (real allocator on the prefill ranks) and its decode
    // alloc latency throttle the pipeline.
    const ServingResult straw =
        ServingEngine(ServingScheme{core::AllocatorKind::StrawMan},
                      quickDisagg())
            .run();
    const ServingResult hwsw =
        ServingEngine(ServingScheme{core::AllocatorKind::PimMallocHwSw},
                      quickDisagg())
            .run();
    EXPECT_GT(hwsw.throughputTokensPerSec,
              straw.throughputTokensPerSec);
}
