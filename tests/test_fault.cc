/**
 * @file
 * Tests for deterministic fault injection and fault-tolerant execution:
 * FaultSpec parsing (and its fail-fast fatals), FaultPlan determinism
 * and named-stream isolation, util::Rng named sub-streams, the
 * CommandQueue's fault-aware fold (dead ranks, poisoned dependents,
 * transfer retries, timeouts, hangs, degraded ranks, onError dispatch),
 * dependency-handle validation, RankScheduler quarantine / revocation /
 * waiting-queue / teardown, and end-to-end workload recovery (serving
 * and graph-update) including thread-count invariance under injected
 * faults and per-tenant occupancy accounting of KV re-ship traffic.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/command_queue.hh"
#include "core/pim_system.hh"
#include "core/rank_scheduler.hh"
#include "fault/fault_plan.hh"
#include "fault/injector.hh"
#include "trace/occupancy.hh"
#include "trace/trace.hh"
#include "util/rng.hh"
#include "workloads/graph/update_driver.hh"
#include "workloads/llm/serving_engine.hh"

using namespace pim;
using namespace pim::core;

namespace {

/** Small-MRAM DPU so tests don't pay 64 MB of backing store per DPU. */
sim::DpuConfig
smallDpuCfg()
{
    sim::DpuConfig cfg;
    cfg.mramBytes = 1u << 20;
    return cfg;
}

PimSystemConfig
smallSystem(unsigned dpus, unsigned per_rank, unsigned sample = 0)
{
    PimSystemConfig cfg;
    cfg.numDpus = dpus;
    cfg.dpusPerRank = per_rank;
    cfg.sampleDpus = sample;
    cfg.dpuCfg = smallDpuCfg();
    return cfg;
}

fault::FaultEvent
rankFail(double at, unsigned rank)
{
    fault::FaultEvent e;
    e.kind = fault::FaultKind::RankFail;
    e.atSec = at;
    e.rank = rank;
    return e;
}

/** Injector over an explicit event list (spec defaults otherwise). */
std::unique_ptr<fault::FaultInjector>
injectorOf(std::vector<fault::FaultEvent> events, unsigned num_ranks,
           fault::FaultSpec spec = {})
{
    return std::make_unique<fault::FaultInjector>(
        fault::FaultPlan(spec, std::move(events), num_ranks));
}

} // namespace

// ---------------------------------------------------------------------
// FaultSpec parsing
// ---------------------------------------------------------------------

TEST(FaultSpec, ParsesEveryKey)
{
    const fault::FaultSpec s = fault::FaultSpec::parse(
        "mtbf=5,xfer-mtbf=0.5,degrade-mtbf=10,degrade-mult=3,"
        "degrade-dur=0.25,hang-mtbf=9,timeout=0.2,horizon=60,"
        "backoff=1e-4,backoff-cap=2e-3,max-attempts=4");
    EXPECT_EQ(s.rankMtbfSec, 5.0);
    EXPECT_EQ(s.transferMtbfSec, 0.5);
    EXPECT_EQ(s.degradeMtbfSec, 10.0);
    EXPECT_EQ(s.degradeMultiplier, 3.0);
    EXPECT_EQ(s.degradeDurationSec, 0.25);
    EXPECT_EQ(s.hangMtbfSec, 9.0);
    EXPECT_EQ(s.launchTimeoutSec, 0.2);
    EXPECT_EQ(s.horizonSec, 60.0);
    EXPECT_EQ(s.retryBackoffSec, 1e-4);
    EXPECT_EQ(s.retryBackoffCapSec, 2e-3);
    EXPECT_EQ(s.maxTransferAttempts, 4u);
    EXPECT_TRUE(s.enabled());
}

TEST(FaultSpec, EmptySpecDisablesEverything)
{
    EXPECT_FALSE(fault::FaultSpec::parse("").enabled());
    EXPECT_FALSE(fault::FaultSpec::fromKnobs("", 0.0).enabled());
}

TEST(FaultSpec, MtbfKnobOverridesSpec)
{
    const fault::FaultSpec s =
        fault::FaultSpec::fromKnobs("mtbf=3,xfer-mtbf=1", 5.0);
    EXPECT_EQ(s.rankMtbfSec, 5.0);
    EXPECT_EQ(s.transferMtbfSec, 1.0);
    // Zero override keeps the spec's own rate.
    EXPECT_EQ(fault::FaultSpec::fromKnobs("mtbf=3", 0.0).rankMtbfSec,
              3.0);
}

TEST(FaultSpecDeathTest, InvalidSpecsAreFatal)
{
    EXPECT_DEATH(fault::FaultSpec::parse("mtbff=3"), "unknown key");
    EXPECT_DEATH(fault::FaultSpec::parse("mtbf=abc"), "is not a number");
    EXPECT_DEATH(fault::FaultSpec::parse("mtbf=-1"), "must be >= 0");
    EXPECT_DEATH(fault::FaultSpec::parse("mtbf"), "expected key=value");
    EXPECT_DEATH(fault::FaultSpec::parse("degrade-mult=0.5"),
                 "degrade-mult must be >= 1");
    EXPECT_DEATH(fault::FaultSpec::parse("horizon=0"),
                 "horizon must be > 0");
    EXPECT_DEATH(fault::FaultSpec::parse("max-attempts=2.5"),
                 "max-attempts must be a positive");
    // A hang with no timeout would stall the timeline forever.
    EXPECT_DEATH(fault::FaultSpec::parse("hang-mtbf=5"),
                 "hang-mtbf requires a launch timeout");
}

// ---------------------------------------------------------------------
// FaultPlan generation
// ---------------------------------------------------------------------

TEST(FaultPlan, DeterministicInSeedAndSorted)
{
    fault::FaultSpec spec;
    spec.rankMtbfSec = 2.0;
    spec.transferMtbfSec = 1.0;
    spec.degradeMtbfSec = 5.0;
    const fault::FaultPlan a(spec, 23, 8);
    const fault::FaultPlan b(spec, 23, 8);
    ASSERT_FALSE(a.events().empty());
    ASSERT_EQ(a.events().size(), b.events().size());
    for (size_t i = 0; i < a.events().size(); ++i) {
        EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
        EXPECT_EQ(a.events()[i].atSec, b.events()[i].atSec);
        EXPECT_EQ(a.events()[i].rank, b.events()[i].rank);
    }
    for (size_t i = 1; i < a.events().size(); ++i)
        EXPECT_LE(a.events()[i - 1].atSec, a.events()[i].atSec);

    const fault::FaultPlan c(spec, 24, 8);
    ASSERT_FALSE(c.events().empty());
    EXPECT_NE(a.events().front().atSec, c.events().front().atSec);
}

TEST(FaultPlan, ClassStreamsDoNotInterfere)
{
    // Adding a second fault class must not shift the rank-failure
    // schedule: each class draws from its own named sub-stream.
    fault::FaultSpec only_ranks;
    only_ranks.rankMtbfSec = 2.0;
    fault::FaultSpec both = only_ranks;
    both.transferMtbfSec = 0.5;

    const auto a = fault::FaultPlan(only_ranks, 23, 8)
                       .eventsOfKind(fault::FaultKind::RankFail);
    const auto b = fault::FaultPlan(both, 23, 8)
                       .eventsOfKind(fault::FaultKind::RankFail);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_FALSE(a.empty());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].atSec, b[i].atSec);
        EXPECT_EQ(a[i].rank, b[i].rank);
    }
}

TEST(FaultPlan, EventTimesScaleWithMtbf)
{
    // Inverse-transform exponentials: for a fixed seed the first event
    // time is linear in the MTBF (same uniform draw), so tests can dial
    // a death onto any target instant.
    fault::FaultSpec one;
    one.rankMtbfSec = 1.0;
    fault::FaultSpec two;
    two.rankMtbfSec = 2.0;
    const auto a = fault::FaultPlan(one, 23, 8)
                       .eventsOfKind(fault::FaultKind::RankFail);
    const auto b = fault::FaultPlan(two, 23, 8)
                       .eventsOfKind(fault::FaultKind::RankFail);
    ASSERT_FALSE(a.empty());
    ASSERT_FALSE(b.empty());
    EXPECT_DOUBLE_EQ(b.front().atSec, 2.0 * a.front().atSec);
    EXPECT_EQ(a.front().rank, b.front().rank);
}

TEST(FaultPlan, ProgrammaticPlanSortsEvents)
{
    const fault::FaultPlan plan(
        {}, {rankFail(3.0, 1), rankFail(1.0, 0), rankFail(2.0, 2)}, 4);
    ASSERT_EQ(plan.events().size(), 3u);
    EXPECT_EQ(plan.events()[0].atSec, 1.0);
    EXPECT_EQ(plan.events()[1].atSec, 2.0);
    EXPECT_EQ(plan.events()[2].atSec, 3.0);
}

TEST(FaultPlanDeathTest, ProgrammaticPlanRejectsOutOfRangeRank)
{
    EXPECT_DEATH(fault::FaultPlan({}, {rankFail(1.0, 7)}, 4),
                 "outside the");
}

// ---------------------------------------------------------------------
// util::Rng named sub-streams
// ---------------------------------------------------------------------

TEST(RngStream, SameNameYieldsSameStream)
{
    const util::Rng root(42);
    util::Rng a = root.stream("fault/rank3");
    util::Rng b = root.stream("fault/rank3");
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngStream, DifferentNamesAreIndependent)
{
    const util::Rng root(42);
    util::Rng a = root.stream("fault/rank3");
    util::Rng b = root.stream("fault/rank4");
    // Identical 16-draw prefixes would mean the name is ignored.
    bool any_diff = false;
    for (int i = 0; i < 16; ++i)
        any_diff |= a.next() != b.next();
    EXPECT_TRUE(any_diff);
}

TEST(RngStream, DoesNotAdvanceParent)
{
    util::Rng derived(42);
    util::Rng plain(42);
    (void)derived.stream("a");
    (void)derived.stream("b");
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(derived.next(), plain.next());
}

TEST(RngStream, StableRegardlessOfOtherStreamUsage)
{
    // Drawing from one stream (or deriving extra streams) never shifts
    // the values another stream produces — the property fork() chains
    // cannot give.
    const util::Rng r1(7);
    const util::Rng r2(7);
    util::Rng noisy = r1.stream("noise");
    for (int i = 0; i < 100; ++i)
        (void)noisy.next();
    (void)r1.stream("other");
    util::Rng a = r1.stream("target");
    util::Rng b = r2.stream("target");
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.next(), b.next());
}

// ---------------------------------------------------------------------
// FaultInjector data plane
// ---------------------------------------------------------------------

TEST(FaultInjector, RankFailQueries)
{
    const auto inj = injectorOf({rankFail(2.5, 1)}, 2);
    EXPECT_EQ(inj->rankFailSeconds(1), 2.5);
    EXPECT_TRUE(std::isinf(inj->rankFailSeconds(0)));
    EXPECT_FALSE(inj->rankFailedBy(1, 2.4));
    EXPECT_TRUE(inj->rankFailedBy(1, 2.5));
    EXPECT_FALSE(inj->rankFailedBy(0, 1e9));
}

TEST(FaultInjector, DrainReportsFirstFailurePerRankInOrder)
{
    // Rank 1 dies twice: only the first death is reported. Draining in
    // two steps honors the now cursor.
    const auto inj = injectorOf(
        {rankFail(1.0, 1), rankFail(2.0, 0), rankFail(3.0, 1)}, 2);
    auto due = inj->drainFailedRanks(0.5);
    EXPECT_TRUE(due.empty());
    due = inj->drainFailedRanks(1.5);
    ASSERT_EQ(due.size(), 1u);
    EXPECT_EQ(due[0].rank, 1u);
    due = inj->drainFailedRanks(10.0);
    ASSERT_EQ(due.size(), 1u);
    EXPECT_EQ(due[0].rank, 0u);
    EXPECT_TRUE(inj->drainFailedRanks(1e9).empty());
}

// ---------------------------------------------------------------------
// CommandQueue fault semantics
// ---------------------------------------------------------------------

TEST(QueueFaults, RankDeathTruncatesAndThenFailsImmediately)
{
    // Clean dry run to learn the exact completion times of the first
    // two launches, so the death can be dialed mid-second-launch.
    double end1_clean = 0.0, end2_clean = 0.0;
    {
        PimSystem sys(smallSystem(128, 64));
        CommandQueue q(sys);
        const Event e1 = q.launchTimed(sys.rank(0), 2e-3);
        const Event e2 = q.launchTimed(sys.rank(0), 10e-3);
        end1_clean = q.eventSeconds(e1);
        end2_clean = q.eventSeconds(e2);
    }
    const double fail_at = end1_clean + 5e-3;
    ASSERT_LT(fail_at, end2_clean);

    PimSystem sys(smallSystem(128, 64));
    CommandQueue q(sys);
    const auto inj = injectorOf({rankFail(fail_at, 0)}, sys.numRanks());
    q.attachFaultInjector(inj.get());

    const Event e1 = q.launchTimed(sys.rank(0), 2e-3);
    const Event e2 = q.launchTimed(sys.rank(0), 10e-3);
    const Event e3 = q.launchTimed(sys.rank(0), 1e-3);
    const Event ok = q.launchTimed(sys.rank(1), 1e-3);

    // Before the death the rank runs normally.
    EXPECT_FALSE(q.eventFailed(e1));
    EXPECT_EQ(q.eventSeconds(e1), end1_clean);
    // Mid-launch death: busy until the death, then the command fails.
    EXPECT_TRUE(q.eventFailed(e2));
    EXPECT_DOUBLE_EQ(q.eventSeconds(e2), fail_at);
    // Launches touching a dead rank fail immediately, and the rank's
    // timeline stays frozen at the death.
    EXPECT_TRUE(q.eventFailed(e3));
    EXPECT_EQ(q.rankReadySeconds(0), fail_at);
    // The other rank is untouched.
    EXPECT_FALSE(q.eventFailed(ok));
    EXPECT_EQ(inj->stats().rankFailures, 0u); // data plane only
}

TEST(QueueFaults, FailedDependencyPoisonsOnlyDependents)
{
    PimSystem sys(smallSystem(128, 64));
    CommandQueue q(sys);
    const auto inj = injectorOf({rankFail(0.0, 0)}, sys.numRanks());
    q.attachFaultInjector(inj.get());

    const Event doomed = q.launchTimed(sys.rank(0), 1e-3);
    const Event poisoned =
        q.launchTimed(sys.rank(1), 5e-3, {.after = doomed});
    const Event chained =
        q.launchTimed(sys.rank(1), 5e-3, {.after = poisoned});
    const Event independent = q.launchTimed(sys.rank(1), 1e-3);

    EXPECT_TRUE(q.eventFailed(doomed));
    EXPECT_TRUE(q.eventFailed(poisoned));
    EXPECT_TRUE(q.eventFailed(chained));
    EXPECT_FALSE(q.eventFailed(independent));
    // Poisoned commands charge nothing: rank 1 carries only the one
    // independent launch, not the two 5 ms poisoned ones.
    EXPECT_LT(q.rankReadySeconds(1), 5e-3);
    EXPECT_EQ(inj->stats().poisonedCommands, 2u);
}

TEST(QueueFaults, ErrorCallbacksFireInTimelineOrder)
{
    PimSystem sys(smallSystem(128, 64));
    CommandQueue q(sys);
    const auto inj = injectorOf({rankFail(0.0, 0)}, sys.numRanks());
    q.attachFaultInjector(inj.get());

    // Two failing commands and one succeeding, interleaved; onError
    // fires only on failure, onComplete only on success, both in
    // (completion time, event id) order.
    const Event f1 = q.launchTimed(sys.rank(0), 1e-3);
    const Event s1 = q.launchTimed(sys.rank(1), 2e-3);
    const Event f2 = q.launchTimed(sys.rank(0), 1e-3);
    std::vector<Event> errs;
    std::vector<Event> dones;
    q.onError(f1, [&](Event e, double) { errs.push_back(e); });
    q.onError(f2, [&](Event e, double) { errs.push_back(e); });
    q.onError(s1, [&](Event e, double) { errs.push_back(e); });
    q.onComplete(s1, [&](Event e, double) { dones.push_back(e); });
    q.onComplete(f1, [&](Event e, double) { dones.push_back(e); });
    q.sync();

    ASSERT_EQ(errs.size(), 2u);
    EXPECT_EQ(errs[0], f1); // both fail at t=0: event-id order
    EXPECT_EQ(errs[1], f2);
    ASSERT_EQ(dones.size(), 1u);
    EXPECT_EQ(dones[0], s1);
}

TEST(QueueFaults, TransientTransferRetriesWithBackoffOnBus)
{
    const uint64_t kBytes = 1u << 16;
    double clean_end = 0.0;
    {
        PimSystem sys(smallSystem(128, 64));
        CommandQueue q(sys);
        clean_end = q.eventSeconds(q.memcpyAsync(
            sys.rank(0), kBytes, CopyDirection::HostToPim));
    }

    fault::FaultSpec spec;
    spec.retryBackoffSec = 1e-4;
    fault::FaultEvent glitch;
    glitch.kind = fault::FaultKind::TransientTransfer;
    glitch.atSec = 0.0;
    glitch.attempts = 1;

    PimSystem sys(smallSystem(128, 64));
    CommandQueue q(sys);
    const auto inj = injectorOf({glitch}, sys.numRanks(), spec);
    q.attachFaultInjector(inj.get());
    const Event e = q.memcpyAsync(sys.rank(0), kBytes,
                                  CopyDirection::HostToPim);
    // One corrupted attempt: the bus is held for exactly two copies
    // plus the first backoff, and the payload still lands (once).
    EXPECT_FALSE(q.eventFailed(e));
    EXPECT_DOUBLE_EQ(q.eventSeconds(e), 2.0 * clean_end + 1e-4);
    EXPECT_EQ(q.transferredBytes(), kBytes * sys.rank(0).size());
    EXPECT_EQ(inj->stats().transientTransferFaults, 1u);
    EXPECT_EQ(inj->stats().transferRetries, 1u);
    EXPECT_EQ(inj->stats().transferPermanentFailures, 0u);
}

TEST(QueueFaults, TransferFailsPermanentlyPastAttemptBudget)
{
    fault::FaultSpec spec;
    spec.maxTransferAttempts = 2;
    fault::FaultEvent burst;
    burst.kind = fault::FaultKind::TransientTransfer;
    burst.atSec = 0.0;
    burst.attempts = 5;

    PimSystem sys(smallSystem(128, 64));
    CommandQueue q(sys);
    const auto inj = injectorOf({burst}, sys.numRanks(), spec);
    q.attachFaultInjector(inj.get());
    const Event e = q.memcpyAsync(sys.rank(0), 1u << 16,
                                  CopyDirection::HostToPim);
    EXPECT_TRUE(q.eventFailed(e));
    // A failed transfer moved wire traffic but delivered no payload.
    EXPECT_EQ(q.transferredBytes(), 0u);
    EXPECT_EQ(inj->stats().transferPermanentFailures, 1u);
}

TEST(QueueFaults, CopyToDeadRankFailsWithoutDelivering)
{
    PimSystem sys(smallSystem(128, 64));
    CommandQueue q(sys);
    const auto inj = injectorOf({rankFail(0.0, 0)}, sys.numRanks());
    q.attachFaultInjector(inj.get());
    const Event e = q.memcpyAsync(sys.rank(0), 1u << 16,
                                  CopyDirection::HostToPim);
    EXPECT_TRUE(q.eventFailed(e));
    EXPECT_EQ(q.transferredBytes(), 0u);
    // The erroring attempt still held the bus.
    EXPECT_GT(q.busReadySeconds(), 0.0);
}

TEST(QueueFaults, LaunchTimeoutReapsLongLaunch)
{
    fault::FaultSpec spec;
    spec.launchTimeoutSec = 2e-3;
    PimSystem sys(smallSystem(128, 64));
    CommandQueue q(sys);
    const auto inj = injectorOf({}, sys.numRanks(), spec);
    q.attachFaultInjector(inj.get());

    const Event ok = q.launchTimed(sys.rank(0), 1e-3);
    const Event reaped = q.launchTimed(sys.rank(0), 50e-3);
    EXPECT_FALSE(q.eventFailed(ok));
    EXPECT_TRUE(q.eventFailed(reaped));
    // Reaped at start + timeout, nowhere near the natural duration.
    EXPECT_LT(q.eventSeconds(reaped), 10e-3);
    EXPECT_EQ(inj->stats().launchTimeouts, 1u);
}

TEST(QueueFaults, HangIsReapedByTimeout)
{
    fault::FaultSpec spec;
    spec.launchTimeoutSec = 2e-3;
    fault::FaultEvent hang;
    hang.kind = fault::FaultKind::LaunchHang;
    hang.atSec = 0.0;
    hang.rank = 0;

    PimSystem sys(smallSystem(128, 64));
    CommandQueue q(sys);
    const auto inj = injectorOf({hang}, sys.numRanks(), spec);
    q.attachFaultInjector(inj.get());
    // The victim launch would finish in 0.1 ms; the hang holds it until
    // the 2 ms timeout reaps it. The next launch proceeds normally.
    const Event hung = q.launchTimed(sys.rank(0), 1e-4);
    const Event next = q.launchTimed(sys.rank(0), 1e-4);
    EXPECT_TRUE(q.eventFailed(hung));
    EXPECT_GT(q.eventSeconds(hung), 2e-3);
    EXPECT_FALSE(q.eventFailed(next));
    EXPECT_EQ(inj->stats().launchHangs, 1u);
}

TEST(QueueFaultsDeathTest, HangWithoutTimeoutIsFatal)
{
    // Spec parsing forbids this combination; a programmatic plan that
    // sneaks one in must die loudly, not stall the timeline.
    fault::FaultEvent hang;
    hang.kind = fault::FaultKind::LaunchHang;
    hang.atSec = 0.0;
    hang.rank = 0;
    PimSystem sys(smallSystem(128, 64));
    CommandQueue q(sys);
    const auto inj = injectorOf({hang}, sys.numRanks());
    q.attachFaultInjector(inj.get());
    q.launchTimed(sys.rank(0), 1e-3);
    EXPECT_DEATH(q.sync(), "no launch timeout is configured");
}

TEST(QueueFaults, DegradedRankRunsSlower)
{
    fault::FaultEvent slow;
    slow.kind = fault::FaultKind::RankDegrade;
    slow.atSec = 0.0;
    slow.rank = 0;
    slow.multiplier = 3.0;
    slow.durationSec = 1.0;

    // Clean twin: the identical two-launch sequence with no injector,
    // so the issue-order overheads cancel exactly in the comparison.
    double clean_first = 0.0, clean_second = 0.0;
    {
        PimSystem sys(smallSystem(128, 64));
        CommandQueue q(sys);
        clean_first = q.eventSeconds(q.launchTimed(sys.rank(0), 2e-3));
        clean_second = q.eventSeconds(q.launchTimed(sys.rank(1), 2e-3));
    }

    PimSystem sys(smallSystem(128, 64));
    CommandQueue q(sys);
    const auto inj = injectorOf({slow}, sys.numRanks());
    q.attachFaultInjector(inj.get());
    const Event degraded = q.launchTimed(sys.rank(0), 2e-3);
    const Event normal = q.launchTimed(sys.rank(1), 2e-3);
    EXPECT_FALSE(q.eventFailed(degraded));
    // 3x multiplier: the degraded launch carries exactly 4 ms of extra
    // busy time over its clean twin; the healthy rank is untouched.
    EXPECT_EQ(q.eventSeconds(degraded), clean_first + 4e-3);
    EXPECT_EQ(q.eventSeconds(normal), clean_second);
    EXPECT_EQ(inj->stats().degradedLaunches, 1u);
}

TEST(QueueFaults, FaultFreeSpecLeavesOutcomesClean)
{
    // An armed injector whose schedule is empty must not perturb the
    // timeline: same completion times as a fault-free queue.
    double clean = 0.0;
    {
        PimSystem sys(smallSystem(128, 64));
        CommandQueue q(sys);
        q.launchTimed(sys.rank(0), 2e-3);
        q.memcpyAsync(sys.rank(1), 1u << 16, CopyDirection::HostToPim);
        clean = q.sync();
    }
    PimSystem sys(smallSystem(128, 64));
    CommandQueue q(sys);
    const auto inj = injectorOf({}, sys.numRanks());
    q.attachFaultInjector(inj.get());
    const Event l = q.launchTimed(sys.rank(0), 2e-3);
    const Event c =
        q.memcpyAsync(sys.rank(1), 1u << 16, CopyDirection::HostToPim);
    EXPECT_FALSE(q.eventFailed(l));
    EXPECT_FALSE(q.eventFailed(c));
    EXPECT_EQ(q.sync(), clean);
}

// ---------------------------------------------------------------------
// Dependency-handle validation (fail fast at enqueue)
// ---------------------------------------------------------------------

TEST(QueueAfterDeathTest, GarbageSelfAndForwardReferencesAreFatal)
{
    PimSystem sys(smallSystem(128, 64));
    CommandQueue q(sys);
    const Event e0 = q.launchTimed(sys.rank(0), 1e-3);
    ASSERT_EQ(e0, 0);
    // Garbage negative handle (uninitialized struct member).
    EXPECT_DEATH(q.launchTimed(sys.rank(0), 1e-3, {.after = -3}),
                 "is not an Event handle");
    // The next command would get id 1: naming it is a self-dependency.
    EXPECT_DEATH(q.launchTimed(sys.rank(0), 1e-3, {.after = 1}),
                 "depends on itself");
    // Forward reference to a not-yet-enqueued command.
    EXPECT_DEATH(q.launchTimed(sys.rank(0), 1e-3, {.after = 7}),
                 "names the future event");
}

// ---------------------------------------------------------------------
// RankScheduler: quarantine, waiting queue, teardown
// ---------------------------------------------------------------------

TEST(RankSchedulerFaults, QuarantineRevokesOwnedRankAndNotifies)
{
    PimSystem sys(smallSystem(256, 64)); // 4 ranks
    RankScheduler sched(sys);
    const DpuSet grant = sched.acquireRanks(2, "serving");
    std::vector<unsigned> revoked;
    sched.onRevoke("serving",
                   [&](unsigned r) { revoked.push_back(r); });

    const unsigned victim = grant.ranks().front();
    EXPECT_EQ(sched.quarantine(victim), "serving");
    ASSERT_EQ(revoked.size(), 1u);
    EXPECT_EQ(revoked[0], victim);
    EXPECT_TRUE(sched.quarantined(victim));
    EXPECT_EQ(sched.ownerOf(victim), "");
    // The quarantined rank is out of circulation: the free pool lost
    // nothing (it was owned), and a full re-acquire skips it.
    EXPECT_EQ(sched.freeRankCount(), 2u);
    const DpuSet rest = sched.acquireRanks(2, "other");
    for (const unsigned r : rest.ranks())
        EXPECT_NE(r, victim);
}

TEST(RankSchedulerFaults, QuarantineFreeRankHasNoOwnerToNotify)
{
    PimSystem sys(smallSystem(256, 64));
    RankScheduler sched(sys);
    bool fired = false;
    sched.onRevoke("serving", [&](unsigned) { fired = true; });
    EXPECT_EQ(sched.quarantine(3), "");
    EXPECT_FALSE(fired);
    EXPECT_EQ(sched.freeRankCount(), 3u);
}

TEST(RankSchedulerFaultsDeathTest, DoubleQuarantineIsFatal)
{
    PimSystem sys(smallSystem(256, 64));
    RankScheduler sched(sys);
    sched.quarantine(1);
    EXPECT_DEATH(sched.quarantine(1), "already quarantined");
}

TEST(RankSchedulerFaults, WaitingQueueIsStrictFifo)
{
    PimSystem sys(smallSystem(256, 64)); // 4 ranks
    RankScheduler sched(sys);
    const DpuSet all = sched.acquireRanks(4, "hog");

    std::vector<std::pair<std::string, unsigned>> grants;
    // big (2 ranks) queues ahead of small (1 rank): strict FIFO makes
    // the small request wait even when one free rank could serve it.
    sched.requestRanks(2, "big", [&](DpuSet s) {
        grants.emplace_back("big", s.ranks().size());
    });
    sched.requestRanks(1, "small", [&](DpuSet s) {
        grants.emplace_back("small", s.ranks().size());
    });
    EXPECT_EQ(sched.pendingRequests(), 2u);

    sched.releaseRanks(sys.rank(all.ranks()[0]));
    EXPECT_TRUE(grants.empty()); // big still short, small must wait
    sched.releaseRanks(sys.rank(all.ranks()[1]));
    ASSERT_EQ(grants.size(), 1u);
    EXPECT_EQ(grants[0].first, "big");
    sched.releaseRanks(sys.rank(all.ranks()[2]));
    ASSERT_EQ(grants.size(), 2u);
    EXPECT_EQ(grants[1].first, "small");
    EXPECT_EQ(sched.pendingRequests(), 0u);
}

TEST(RankSchedulerFaults, ImmediateGrantWhenPoolSuffices)
{
    PimSystem sys(smallSystem(256, 64));
    RankScheduler sched(sys);
    bool granted = false;
    sched.requestRanks(2, "eager", [&](DpuSet s) {
        granted = true;
        EXPECT_EQ(s.ranks().size(), 2u);
    });
    EXPECT_TRUE(granted); // callback ran before requestRanks returned
    EXPECT_EQ(sched.pendingRequests(), 0u);
}

TEST(RankSchedulerFaults, ReleaseAllIsIdempotent)
{
    PimSystem sys(smallSystem(256, 64));
    RankScheduler sched(sys);
    sched.acquireRanks(3, "serving");
    EXPECT_EQ(sched.releaseAll("serving"), 3u);
    EXPECT_EQ(sched.releaseAll("serving"), 0u);
    EXPECT_EQ(sched.releaseAll("never-acquired"), 0u);
    EXPECT_EQ(sched.freeRankCount(), 4u);
}

TEST(RankSchedulerFaults, RemoveTenantDropsCallbacksAndRequests)
{
    PimSystem sys(smallSystem(256, 64));
    RankScheduler sched(sys);
    const DpuSet hog = sched.acquireRanks(4, "hog");
    bool fired = false;
    sched.requestRanks(1, "doomed", [&](DpuSet) { fired = true; });
    sched.onRevoke("doomed", [&](unsigned) { fired = true; });
    EXPECT_EQ(sched.pendingRequests(), 1u);

    sched.removeTenant("doomed");
    EXPECT_EQ(sched.pendingRequests(), 0u);
    sched.releaseRanks(hog); // would have served the dropped request
    EXPECT_FALSE(fired);
}

TEST(RankSchedulerFaultsDeathTest, CrossTenantReleaseIsFatal)
{
    PimSystem sys(smallSystem(256, 64));
    RankScheduler sched(sys);
    sched.acquireRanks(2, "serving");
    const DpuSet graph = sched.acquireRanks(2, "graph");
    // Owner-checked release catches a tenant tearing down another
    // tenant's grant before any rank changes hands.
    EXPECT_DEATH(sched.releaseRanks(graph, "serving"),
                 "may only release its own grant");
    EXPECT_EQ(sched.ownerOf(graph.ranks().front()), "graph");
}

// ---------------------------------------------------------------------
// End-to-end workload recovery
// ---------------------------------------------------------------------

namespace {

using namespace pim::workloads::llm;

ServingEngineConfig
faultDisagg(unsigned sim_threads = 1)
{
    ServingEngineConfig ecfg;
    ecfg.base.numRequests = 16;
    ecfg.base.outputTokens = 24;
    ecfg.base.promptTokens = 64;
    ecfg.base.arrivalRatePerSec = 400.0;
    ecfg.mode = ServingMode::Disaggregated;
    ecfg.simThreads = sim_threads;
    ecfg.spareRanks = 4; // 8-rank system: 4 serving (1 prefill), 4 spare
    return ecfg;
}

struct Scenario
{
    uint64_t seed = 0;
    double mtbf = 0.0;
    unsigned victim = 0;
};

/**
 * Dial one rank death onto @p target_sec: exponential inter-arrivals
 * scale linearly with the MTBF for a fixed seed, so search seeds for a
 * first failure on a victim in [victim_lo, victim_hi] whose follow-up
 * failures land past @p quiet_until_sec once the MTBF is scaled.
 */
Scenario
singleDeathScenario(double target_sec, double quiet_until_sec,
                    unsigned num_ranks, unsigned victim_lo,
                    unsigned victim_hi)
{
    fault::FaultSpec probe;
    probe.rankMtbfSec = 1.0;
    for (uint64_t seed = 1; seed < 500; ++seed) {
        const auto fails = fault::FaultPlan(probe, seed, num_ranks)
                               .eventsOfKind(fault::FaultKind::RankFail);
        if (fails.empty())
            continue;
        const fault::FaultEvent &first = fails.front();
        if (first.rank < victim_lo || first.rank > victim_hi)
            continue;
        const double mtbf = target_sec / first.atSec;
        const double second =
            fails.size() > 1 ? fails[1].atSec * mtbf : 1e30;
        if (second < quiet_until_sec)
            continue;
        return {seed, mtbf, first.rank};
    }
    ADD_FAILURE() << "no single-death fault scenario found";
    return {};
}

/** Fault-free reference on the same partition: the harness is armed
 *  (same spare pool held back) but the schedule never fires. */
constexpr double kNeverMtbfSec = 1e30;

ServingResult
runFaultyServing(double mtbf, uint64_t seed, FaultPolicy policy,
                 unsigned sim_threads = 1)
{
    ServingEngineConfig ecfg = faultDisagg(sim_threads);
    ecfg.faultSpec.rankMtbfSec = mtbf;
    ecfg.faultSeed = seed;
    ecfg.faultPolicy = policy;
    return ServingEngine(ServingScheme{core::AllocatorKind::PimMallocHwSw},
                         ecfg)
        .run();
}

void
expectIdenticalWithFaults(const ServingResult &a, const ServingResult &b)
{
    EXPECT_EQ(a.throughputTokensPerSec, b.throughputTokensPerSec);
    EXPECT_EQ(a.tpotP50Ms, b.tpotP50Ms);
    EXPECT_EQ(a.tpotP99Ms, b.tpotP99Ms);
    EXPECT_EQ(a.ttftP50Ms, b.ttftP50Ms);
    EXPECT_EQ(a.ttftP99Ms, b.ttftP99Ms);
    EXPECT_EQ(a.makespanSec, b.makespanSec);
    EXPECT_EQ(a.kvShippedBytes, b.kvShippedBytes);
    EXPECT_EQ(a.completedRequests, b.completedRequests);
    EXPECT_EQ(a.lostRequests, b.lostRequests);
    EXPECT_EQ(a.lostSteps, b.lostSteps);
    EXPECT_EQ(a.rankFailures, b.rankFailures);
    EXPECT_EQ(a.recoveryBytes, b.recoveryBytes);
    EXPECT_EQ(a.mttrMeanSec, b.mttrMeanSec);
    EXPECT_EQ(a.availability, b.availability);
}

} // namespace

TEST(ServingFaults, RecoverCompletesEverythingDropShedsRequests)
{
    // Reference run on the same 4-rank partition, no failures.
    const ServingResult ref =
        runFaultyServing(kNeverMtbfSec, 7, FaultPolicy::Recover);
    ASSERT_GT(ref.makespanSec, 0.0);
    EXPECT_EQ(ref.completedRequests, 16u);
    EXPECT_EQ(ref.rankFailures, 0u);
    EXPECT_EQ(ref.availability, 1.0);

    // One decode-rank death mid-run (serving owns ranks 0..3, rank 0
    // prefills, 1..3 decode).
    const Scenario scn = singleDeathScenario(
        0.5 * ref.makespanSec, 3.0 * ref.makespanSec, 8, 1, 3);
    ASSERT_GT(scn.mtbf, 0.0);

    const ServingResult rec =
        runFaultyServing(scn.mtbf, scn.seed, FaultPolicy::Recover);
    EXPECT_EQ(rec.rankFailures, 1u);
    EXPECT_EQ(rec.completedRequests, 16u);
    EXPECT_EQ(rec.lostRequests, 0u);
    EXPECT_GT(rec.recoveryBytes, 0u); // KV re-shipped to the spare
    EXPECT_GT(rec.mttrMeanSec, 0.0);
    EXPECT_LT(rec.availability, 1.0);
    EXPECT_GE(rec.makespanSec, ref.makespanSec); // recovery is not free

    const ServingResult drop =
        runFaultyServing(scn.mtbf, scn.seed, FaultPolicy::Drop);
    EXPECT_EQ(drop.rankFailures, 1u);
    EXPECT_GT(drop.lostRequests, 0u);
    EXPECT_EQ(drop.completedRequests + drop.lostRequests, 16u);
    EXPECT_EQ(drop.recoveryBytes, 0u);
    EXPECT_LT(drop.availability, 1.0);
}

TEST(ServingFaults, InjectedFaultsBitIdenticalAcrossSimThreads)
{
    const ServingResult ref =
        runFaultyServing(kNeverMtbfSec, 7, FaultPolicy::Recover);
    const Scenario scn = singleDeathScenario(
        0.5 * ref.makespanSec, 3.0 * ref.makespanSec, 8, 1, 3);
    ASSERT_GT(scn.mtbf, 0.0);

    const ServingResult t1 =
        runFaultyServing(scn.mtbf, scn.seed, FaultPolicy::Recover, 1);
    const ServingResult t4 =
        runFaultyServing(scn.mtbf, scn.seed, FaultPolicy::Recover, 4);
    const ServingResult t7 =
        runFaultyServing(scn.mtbf, scn.seed, FaultPolicy::Recover, 7);
    ASSERT_EQ(t1.rankFailures, 1u); // the scenario actually fired
    expectIdenticalWithFaults(t1, t4);
    expectIdenticalWithFaults(t1, t7);
}

TEST(ServingFaults, KvReshipBytesVisibleInTenantOccupancy)
{
    // Co-tenant-style wiring (registered tenant, external scheduler)
    // so trace::analyzeOccupancy attributes the task's bus traffic —
    // including the recovery re-ship — to the "serving" tenant.
    const auto runOnce = [&](double mtbf, uint64_t seed,
                             ServingResult &res,
                             trace::OccupancyReport &rep) {
        ServingEngineConfig ecfg = faultDisagg();
        ecfg.faultPolicy = FaultPolicy::Recover;
        PimSystemConfig scfg;
        scfg.numDpus = ecfg.base.numDpus;
        PimSystem sys(scfg);
        trace::Recorder rec;
        CommandQueue queue(sys);
        queue.attachRecorder(&rec);
        fault::FaultSpec fspec;
        fspec.rankMtbfSec = mtbf;
        fault::FaultInjector inj(
            fault::FaultPlan(fspec, seed, sys.numRanks()));
        queue.attachFaultInjector(&inj);
        const TenantId tenant = queue.addTenant("serving");
        RankScheduler sched(sys);
        const DpuSet part = sched.acquireRanks(4, "serving");
        DisaggServingTask task(
            ServingScheme{core::AllocatorKind::PimMallocHwSw}, ecfg,
            queue, part, tenant);
        sched.onRevoke("serving", [&](unsigned rank) {
            task.onRankFailed(rank, inj.rankFailSeconds(rank));
            sched.requestRanks(1, "serving", [&](DpuSet repl) {
                task.onReplacementGranted(std::move(repl));
            });
        });
        while (!task.done()) {
            task.step();
            for (const fault::FaultEvent &ev :
                 inj.drainFailedRanks(task.clockSeconds()))
                sched.quarantine(ev.rank);
            ASSERT_FALSE(task.waitingReplacement());
        }
        queue.sync();
        res = task.result();
        rep = trace::analyzeOccupancy(rec);
    };

    ServingResult ref;
    trace::OccupancyReport ref_rep;
    runOnce(kNeverMtbfSec, 7, ref, ref_rep);
    const Scenario scn = singleDeathScenario(
        0.5 * ref.makespanSec, 3.0 * ref.makespanSec, 8, 1, 3);
    ASSERT_GT(scn.mtbf, 0.0);
    ServingResult faulty;
    trace::OccupancyReport faulty_rep;
    runOnce(scn.mtbf, scn.seed, faulty, faulty_rep);
    ASSERT_EQ(faulty.rankFailures, 1u);
    ASSERT_GT(faulty.recoveryBytes, 0u);

    const auto tenantBytes = [](const trace::OccupancyReport &rep) {
        for (const trace::TenantOccupancy &t : rep.tenants)
            if (t.name == "serving")
                return t.bytes;
        return uint64_t{0};
    };
    const uint64_t ref_bytes = tenantBytes(ref_rep);
    const uint64_t faulty_bytes = tenantBytes(faulty_rep);
    ASSERT_GT(ref_bytes, 0u);
    // Recovery traffic (KV re-ship + re-decoded appends) shows up in
    // the tenant's accounted bus payload, on top of the fault-free
    // shipping volume.
    EXPECT_GT(faulty_bytes, ref_bytes);
    EXPECT_GE(faulty_bytes, faulty.recoveryBytes);
    EXPECT_GE(faulty_bytes, faulty.kvShippedBytes);
}

namespace {

using workloads::graph::GraphUpdateConfig;
using workloads::graph::GraphUpdateResult;
using workloads::graph::StructureKind;

GraphUpdateConfig
faultGraphCfg(unsigned sim_threads = 1)
{
    GraphUpdateConfig cfg;
    cfg.structure = StructureKind::LinkedList;
    cfg.allocator = core::AllocatorKind::PimMallocSw;
    cfg.numDpus = 256; // 4 ranks
    cfg.sampleDpus = 2;
    cfg.tasklets = 8;
    cfg.gen.numNodes = 2000;
    cfg.gen.numEdges = 9000;
    cfg.gen.seed = 5;
    cfg.updateRounds = 6;
    cfg.shipUpdates = true;
    cfg.simThreads = sim_threads;
    cfg.spareRanks = 1; // graph owns 3 ranks, 1 replacement held back
    return cfg;
}

GraphUpdateResult
runFaultyGraph(double mtbf, uint64_t seed, fault::FaultPolicy policy,
               unsigned sim_threads = 1)
{
    GraphUpdateConfig cfg = faultGraphCfg(sim_threads);
    cfg.faultSpec.rankMtbfSec = mtbf;
    cfg.faultSeed = seed;
    cfg.faultPolicy = policy;
    return runGraphUpdate(cfg);
}

} // namespace

TEST(GraphFaults, RecoverReExecutesDropLosesEdges)
{
    const GraphUpdateResult ref = runFaultyGraph(
        kNeverMtbfSec, 29, fault::FaultPolicy::Recover);
    ASSERT_GT(ref.wallSeconds, 0.0);
    EXPECT_EQ(ref.rankFailures, 0u);
    EXPECT_EQ(ref.lostEdges, 0u);

    // Death mid-rounds on one of the graph's 3 owned ranks (the build
    // launch is untimed, so the rounds window starts near t=0).
    const Scenario scn = singleDeathScenario(
        0.5 * ref.wallSeconds, 4.0 * ref.wallSeconds, 4, 0, 2);
    ASSERT_GT(scn.mtbf, 0.0);

    const GraphUpdateResult rec =
        runFaultyGraph(scn.mtbf, scn.seed, fault::FaultPolicy::Recover);
    EXPECT_EQ(rec.rankFailures, 1u);
    EXPECT_EQ(rec.lostRounds, 0u);
    EXPECT_EQ(rec.lostEdges, 0u);
    EXPECT_EQ(rec.updateEdgesTotal, ref.updateEdgesTotal);
    EXPECT_GE(rec.reExecutedRounds, 1u);
    EXPECT_GT(rec.restoreBytes, 0u);
    EXPECT_GT(rec.mttrMeanSec, 0.0);
    EXPECT_LT(rec.availability, 1.0);

    const GraphUpdateResult drop =
        runFaultyGraph(scn.mtbf, scn.seed, fault::FaultPolicy::Drop);
    EXPECT_EQ(drop.rankFailures, 1u);
    EXPECT_EQ(drop.restoreBytes, 0u);
    EXPECT_GT(drop.lostEdges, 0u);
    EXPECT_LT(drop.availability, 1.0);
}

TEST(GraphFaults, InjectedFaultsBitIdenticalAcrossSimThreads)
{
    const GraphUpdateResult ref = runFaultyGraph(
        kNeverMtbfSec, 29, fault::FaultPolicy::Recover);
    const Scenario scn = singleDeathScenario(
        0.5 * ref.wallSeconds, 4.0 * ref.wallSeconds, 4, 0, 2);
    ASSERT_GT(scn.mtbf, 0.0);

    const GraphUpdateResult a =
        runFaultyGraph(scn.mtbf, scn.seed, fault::FaultPolicy::Recover, 1);
    const GraphUpdateResult b =
        runFaultyGraph(scn.mtbf, scn.seed, fault::FaultPolicy::Recover, 4);
    ASSERT_EQ(a.rankFailures, 1u);
    EXPECT_EQ(a.updateSeconds, b.updateSeconds);
    EXPECT_EQ(a.millionEdgesPerSec, b.millionEdgesPerSec);
    EXPECT_EQ(a.updateEdgesTotal, b.updateEdgesTotal);
    EXPECT_EQ(a.wallSeconds, b.wallSeconds);
    EXPECT_EQ(a.rankFailures, b.rankFailures);
    EXPECT_EQ(a.reExecutedRounds, b.reExecutedRounds);
    EXPECT_EQ(a.restoreBytes, b.restoreBytes);
    EXPECT_EQ(a.mttrMeanSec, b.mttrMeanSec);
    EXPECT_EQ(a.availability, b.availability);
}
