/**
 * @file
 * Tests for the host-side co-processor runtime (pimMemcpy / pimLaunch /
 * hostCompute), including composing it with an allocator the way the
 * Fig 5(d) PIM-Metadata/PIM-Executed pseudo-program does.
 */

#include <gtest/gtest.h>

#include <array>
#include <atomic>

#include "core/allocator_factory.hh"
#include "core/host_runtime.hh"

using namespace pim;
using namespace pim::core;

namespace {

HostRuntimeConfig
smallCfg()
{
    HostRuntimeConfig cfg;
    cfg.numDpus = 64;
    cfg.sampleDpus = 2;
    return cfg;
}

} // namespace

TEST(HostRuntime, MaterializesOnlyTheSample)
{
    HostRuntime rt(smallCfg());
    EXPECT_EQ(rt.sampleCount(), 2u);
    EXPECT_EQ(rt.numDpus(), 64u);
    EXPECT_EQ(rt.globalIndex(0), 0u);
    EXPECT_EQ(rt.globalIndex(1), 32u);
}

TEST(HostRuntime, GlobalIndexSpreadsNonDivisibleSample)
{
    // 10 DPUs sampled by 4: the old stride mapping (10/4 = 2) yielded
    // {0,2,4,6} and never represented the tail; the shared even-spread
    // mapping reaches it.
    HostRuntimeConfig cfg = smallCfg();
    cfg.numDpus = 10;
    cfg.sampleDpus = 4;
    HostRuntime rt(cfg);
    EXPECT_EQ(rt.globalIndex(0), 0u);
    EXPECT_EQ(rt.globalIndex(1), 2u);
    EXPECT_EQ(rt.globalIndex(2), 5u);
    EXPECT_EQ(rt.globalIndex(3), 7u);
}

TEST(HostRuntime, FacadeMatchesDirectQueueUse)
{
    // The synchronous facade must be behavior-identical to driving the
    // underlying PimSystem + CommandQueue by hand, one sync per call.
    auto body = [](sim::Tasklet &t, unsigned idx) {
        t.execute(100 + idx);
    };

    HostRuntime rt(smallCfg());
    rt.pimMemcpy(4096, CopyDirection::HostToPim);
    rt.pimLaunch(2, body);
    rt.hostCompute(8, 5000);

    PimSystemConfig scfg;
    scfg.numDpus = 64;
    scfg.sampleDpus = 2;
    PimSystem sys(scfg);
    CommandQueue q(sys);
    q.memcpy(sys.all(), 4096, CopyDirection::HostToPim);
    q.sync();
    q.launch(sys.all(), 2, body);
    q.sync();
    q.hostCompute(8, 5000);
    q.sync();

    EXPECT_EQ(rt.elapsedSeconds(), q.elapsedSeconds());
    EXPECT_EQ(rt.transferredBytes(), q.transferredBytes());
    EXPECT_EQ(rt.dpu(1).lastElapsedCycles(),
              sys.dpu(1).lastElapsedCycles());
}

TEST(HostRuntime, MemcpyAdvancesTimelineAndCountsBytes)
{
    HostRuntime rt(smallCfg());
    const double sec = rt.pimMemcpy(1 << 20, CopyDirection::HostToPim);
    EXPECT_GT(sec, 0.0);
    EXPECT_DOUBLE_EQ(rt.elapsedSeconds(), sec);
    EXPECT_EQ(rt.transferredBytes(), uint64_t{64} << 20);
}

TEST(HostRuntime, MemcpyScalesWithSystemSizeBeyondSaturation)
{
    HostRuntimeConfig small = smallCfg();
    HostRuntimeConfig big = smallCfg();
    big.numDpus = 512;
    HostRuntime rt_small(small), rt_big(big);
    const double a = rt_small.pimMemcpy(1 << 20, CopyDirection::PimToHost);
    const double b = rt_big.pimMemcpy(1 << 20, CopyDirection::PimToHost);
    EXPECT_GT(b, a); // more total bytes over a saturated bus
}

TEST(HostRuntime, LaunchRunsEverySampledDpu)
{
    HostRuntime rt(smallCfg());
    // DPU bodies run concurrently across host workers, so record each
    // DPU's global index into its own slot instead of sharing state.
    std::array<std::atomic<unsigned>, 2> seen{{{UINT32_MAX}, {UINT32_MAX}}};
    std::atomic<size_t> next{0};
    const double sec = rt.pimLaunch(2, [&](sim::Tasklet &t, unsigned idx) {
        if (t.id() == 0)
            seen[next.fetch_add(1) % seen.size()] = idx;
        t.execute(10);
    });
    EXPECT_GT(sec, 0.0);
    const unsigned a = seen[0].load(), b = seen[1].load();
    EXPECT_EQ(std::min(a, b), 0u);
    EXPECT_EQ(std::max(a, b), 32u);
}

TEST(HostRuntime, LaunchTimeIsSlowestDpuPlusOverhead)
{
    HostRuntime rt(smallCfg());
    rt.pimLaunch(1, [&](sim::Tasklet &t, unsigned idx) {
        t.execute(idx == 0 ? 10 : 10000); // DPU 32 is the straggler
    });
    const double expected = rt.dpu(1).lastElapsedSeconds()
        + HostRuntimeConfig{}.xferCfg.launchLatencySec;
    EXPECT_NEAR(rt.elapsedSeconds(), expected, 1e-12);
}

TEST(HostRuntime, HostComputeUsesHostModel)
{
    HostRuntimeConfig cfg = smallCfg();
    cfg.hostCfg.threads = 4;
    HostRuntime rt(cfg);
    const double one_wave = rt.hostCompute(4, 1000);
    const double two_waves = rt.hostCompute(8, 1000);
    EXPECT_NEAR(two_waves, 2 * one_wave, 1e-12);
}

TEST(HostRuntime, TimelineComposesAndResets)
{
    HostRuntime rt(smallCfg());
    rt.pimMemcpy(4096, CopyDirection::HostToPim);
    rt.pimLaunch(1, [](sim::Tasklet &t, unsigned) { t.execute(5); });
    rt.hostCompute(10, 100);
    EXPECT_GT(rt.elapsedSeconds(), 0.0);
    rt.resetTimeline();
    EXPECT_DOUBLE_EQ(rt.elapsedSeconds(), 0.0);
    EXPECT_EQ(rt.transferredBytes(), 0u);
}

TEST(HostRuntime, Fig5dStyleProgramWithAllocator)
{
    // The PIM-Metadata/PIM-Executed pseudo-program: one launch runs
    // initAllocator, a second launch allocates on-device; the only
    // host<->PIM traffic is the launches themselves.
    HostRuntime rt(smallCfg());
    std::vector<std::unique_ptr<alloc::Allocator>> allocators;
    for (unsigned i = 0; i < rt.sampleCount(); ++i) {
        AllocatorOverrides ov;
        ov.numTasklets = 4;
        ov.heapBytes = 1u << 20;
        allocators.push_back(makeAllocator(
            rt.dpu(i), AllocatorKind::PimMallocSw, ov));
    }
    rt.pimLaunch(1, [&](sim::Tasklet &t, unsigned idx) {
        allocators[idx == 0 ? 0 : 1]->init(t);
    });
    rt.pimLaunch(4, [&](sim::Tasklet &t, unsigned idx) {
        auto &a = *allocators[idx == 0 ? 0 : 1];
        for (int i = 0; i < 16; ++i)
            ASSERT_NE(a.malloc(t, 64), sim::kNullAddr);
    });
    EXPECT_EQ(rt.transferredBytes(), 0u);
    for (auto &a : allocators)
        EXPECT_EQ(a->stats().mallocCalls, 4u * 16u);
}
