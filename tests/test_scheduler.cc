/**
 * @file
 * Tests for the deterministic tasklet scheduler and the pipeline cost
 * model: min-clock scheduling, issue-interval scaling, and cycle
 * breakdown accounting.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/dpu.hh"
#include "sim/scheduler.hh"

using namespace pim::sim;

TEST(Scheduler, SingleTaskletCost)
{
    Dpu dpu;
    // One active tasklet: each instruction takes the 11-cycle issue
    // interval.
    dpu.run(1, [](Tasklet &t) { t.execute(10); });
    EXPECT_EQ(dpu.lastElapsedCycles(), 10u * 11u);
}

TEST(Scheduler, PipelineSharingScalesCost)
{
    Dpu dpu;
    // 16 active tasklets > issue interval 11: each instruction costs 16
    // cycles while all 16 are active.
    dpu.run(16, [](Tasklet &t) { t.execute(10); });
    EXPECT_EQ(dpu.lastElapsedCycles(), 10u * 16u);
}

TEST(Scheduler, FewTaskletsBoundedByIssueInterval)
{
    Dpu dpu;
    // 4 active tasklets < 11: still the 11-cycle interval.
    dpu.run(4, [](Tasklet &t) { t.execute(10); });
    EXPECT_EQ(dpu.lastElapsedCycles(), 10u * 11u);
}

TEST(Scheduler, DeterministicInterleaving)
{
    auto run_once = [] {
        Dpu dpu;
        std::vector<unsigned> order;
        dpu.run(4, [&](Tasklet &t) {
            for (int i = 0; i < 3; ++i) {
                order.push_back(t.id());
                t.execute(1 + t.id());
            }
        });
        return order;
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(Scheduler, MinClockFirst)
{
    Dpu dpu;
    std::vector<unsigned> order;
    dpu.run(2, [&](Tasklet &t) {
        if (t.id() == 0) {
            t.execute(100); // big first charge
            order.push_back(0);
        } else {
            t.execute(1); // small charges keep tasklet 1 behind
            order.push_back(1);
            t.execute(1);
            order.push_back(1);
        }
    });
    // Tasklet 1's cheap steps complete before tasklet 0's expensive one.
    EXPECT_EQ(order, (std::vector<unsigned>{1, 1, 0}));
}

TEST(Scheduler, StallChargesRawCycles)
{
    Dpu dpu;
    dpu.run(16, [](Tasklet &t) { t.stall(100, CycleKind::IdleEtc); });
    // No pipeline scaling for stalls.
    EXPECT_EQ(dpu.lastElapsedCycles(), 100u);
}

TEST(Scheduler, BreakdownAttribution)
{
    Dpu dpu;
    dpu.run(1, [](Tasklet &t) {
        t.execute(10, CycleKind::Run);
        t.execute(5, CycleKind::BusyWait);
        t.stall(33, CycleKind::IdleMemory);
    });
    const auto &bd = dpu.lastBreakdown();
    EXPECT_EQ(bd.of(CycleKind::Run), 110u);
    EXPECT_EQ(bd.of(CycleKind::BusyWait), 55u);
    EXPECT_EQ(bd.of(CycleKind::IdleMemory), 33u);
    EXPECT_EQ(bd.total(), 110u + 55u + 33u);
}

TEST(Scheduler, IdlePaddingForEarlyFinishers)
{
    Dpu dpu;
    dpu.run(2, [](Tasklet &t) {
        t.execute(t.id() == 0 ? 1 : 100);
    });
    const auto &bd = dpu.lastBreakdown();
    // Tasklet 0 finished early; the gap shows up as Idle(Etc).
    EXPECT_GT(bd.of(CycleKind::IdleEtc), 0u);
    // Total accounting covers tasklets x makespan.
    EXPECT_EQ(bd.total(), 2 * dpu.lastElapsedCycles());
}

TEST(Scheduler, DistinctBodies)
{
    Dpu dpu;
    int a = 0, b = 0;
    std::vector<std::function<void(Tasklet &)>> bodies;
    bodies.emplace_back([&](Tasklet &t) { a = 1; t.execute(1); });
    bodies.emplace_back([&](Tasklet &t) { b = 2; t.execute(2); });
    dpu.runBodies(std::move(bodies));
    EXPECT_EQ(a, 1);
    EXPECT_EQ(b, 2);
}

TEST(Scheduler, ActiveCountDropsAsTaskletsFinish)
{
    // The pipeline cost model sees fewer active tasklets once some
    // finish: a tasklet running alone at the end pays only the issue
    // interval.
    Dpu dpu;
    std::vector<uint64_t> clocks;
    dpu.run(16, [&](Tasklet &t) {
        t.execute(1);
        if (t.id() == 0) {
            // Keep running after everyone else is done.
            for (int i = 0; i < 100; ++i)
                t.execute(1);
            clocks.push_back(t.clock());
        }
    });
    ASSERT_EQ(clocks.size(), 1u);
    // If all 100 instructions had been charged at 16 cycles each the
    // clock would be >= 1616; running mostly alone it is far less.
    EXPECT_LT(clocks[0], 16 + 100 * 16);
    EXPECT_GE(clocks[0], 16 + 100 * 11);
}

TEST(Scheduler, SimEventsCountCharges)
{
    Dpu dpu;
    dpu.run(1, [](Tasklet &t) {
        t.execute(10);
        t.stall(5, CycleKind::IdleEtc);
        t.dmaRead(0, 64);
        t.execute(0); // zero charges are elided, not events
    });
    EXPECT_EQ(dpu.lastSimEvents(), 3u);
}

TEST(Scheduler, HorizonRunAheadSkipsSwitchesNotEvents)
{
    // Same program under both policies: identical clocks and event
    // counts (the determinism suite checks this exhaustively; this is
    // the smoke version guarding the Dpu plumbing).
    auto run = [](TaskletScheduler::Policy policy) {
        Dpu dpu;
        TaskletScheduler sched(dpu, policy);
        for (int k = 0; k < 4; ++k)
            sched.spawn([](Tasklet &t) {
                for (int i = 0; i < 10; ++i)
                    t.execute(1 + t.id());
            });
        sched.runToCompletion();
        std::vector<uint64_t> out;
        for (size_t i = 0; i < sched.numTasklets(); ++i) {
            out.push_back(sched.tasklet(i).clock());
            out.push_back(sched.tasklet(i).simEvents());
        }
        return out;
    };
    EXPECT_EQ(run(TaskletScheduler::Policy::Horizon),
              run(TaskletScheduler::Policy::NaiveReference));
}

TEST(SchedulerDeath, TooManyTaskletsPanics)
{
    Dpu dpu;
    EXPECT_DEATH(dpu.run(25, [](Tasklet &t) { t.execute(1); }),
                 "at most");
}
