/**
 * @file
 * Tests for the hardware buddy cache model: lookup/read/write semantics,
 * LRU eviction, write-back of dirty victims, statistics, and capacity
 * parameterization (the Fig 16 sweep axis).
 */

#include <gtest/gtest.h>

#include "sim/buddy_cache.hh"

using namespace pim::sim;

TEST(BuddyCache, MissThenHit)
{
    BuddyCache c;
    EXPECT_FALSE(c.lookup(0x100));
    c.insert(0x100, 42, false);
    EXPECT_TRUE(c.lookup(0x100));
    EXPECT_EQ(c.read(0x100), 42u);
    EXPECT_EQ(c.stats().hits, 1u);
    EXPECT_EQ(c.stats().misses, 1u);
}

TEST(BuddyCache, WriteUpdatesInPlace)
{
    BuddyCache c;
    c.insert(0x10, 1, false);
    c.write(0x10, 99);
    EXPECT_EQ(c.read(0x10), 99u);
}

TEST(BuddyCache, LruEvictsOldest)
{
    BuddyCacheConfig cfg;
    cfg.entries = 4;
    BuddyCache c(cfg);
    for (uint32_t i = 0; i < 4; ++i)
        c.insert(i * 4, i, false);
    // Touch entries 0..2, leaving 3 as LRU.
    c.lookup(0);
    c.read(0);
    c.lookup(4);
    c.read(4);
    c.lookup(8);
    c.read(8);
    c.insert(0x1000, 7, false);
    EXPECT_FALSE(c.contains(12)); // victim was the un-touched word
    EXPECT_TRUE(c.contains(0));
    EXPECT_TRUE(c.contains(0x1000));
    EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(BuddyCache, DirtyEvictionReturnsWriteback)
{
    BuddyCacheConfig cfg;
    cfg.entries = 2;
    BuddyCache c(cfg);
    c.insert(0, 11, false);
    c.insert(4, 22, true); // dirty
    c.lookup(4);
    c.read(4); // make addr 0 the LRU
    auto wb = c.insert(8, 33, false);
    EXPECT_FALSE(wb.has_value()); // victim (addr 0) was clean
    auto wb2 = c.insert(12, 44, false);
    ASSERT_TRUE(wb2.has_value()); // victim (addr 4) was dirty
    EXPECT_EQ(wb2->first, 4u);
    EXPECT_EQ(wb2->second, 22u);
    EXPECT_EQ(c.stats().dirtyEvictions, 1u);
}

TEST(BuddyCache, WriteMarksDirty)
{
    BuddyCacheConfig cfg;
    cfg.entries = 1;
    BuddyCache c(cfg);
    c.insert(0, 5, false);
    c.write(0, 6);
    auto wb = c.insert(4, 7, false);
    ASSERT_TRUE(wb.has_value());
    EXPECT_EQ(wb->second, 6u);
}

TEST(BuddyCache, InitInvalidatesAll)
{
    BuddyCache c;
    c.insert(0, 1, true);
    c.init();
    EXPECT_FALSE(c.contains(0));
    EXPECT_TRUE(c.flushDirty().empty());
}

TEST(BuddyCache, FlushDirtyReturnsAllDirtyOnce)
{
    BuddyCache c;
    c.insert(0, 1, true);
    c.insert(4, 2, false);
    c.insert(8, 3, true);
    auto dirty = c.flushDirty();
    EXPECT_EQ(dirty.size(), 2u);
    EXPECT_TRUE(c.flushDirty().empty()); // second flush: nothing left
}

TEST(BuddyCache, HitRate)
{
    BuddyCache c;
    c.insert(0, 1, false);
    c.lookup(0);
    c.lookup(0);
    c.lookup(4); // miss
    EXPECT_NEAR(c.stats().hitRate(), 2.0 / 3.0, 1e-9);
}

TEST(BuddyCache, ResetStatsKeepsContents)
{
    BuddyCache c;
    c.insert(0, 1, false);
    c.lookup(0);
    c.resetStats();
    EXPECT_EQ(c.stats().lookups, 0u);
    EXPECT_TRUE(c.contains(0));
}

/** Capacity sweep: larger caches never evict earlier than smaller. */
class BuddyCacheCapacity : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(BuddyCacheCapacity, HoldsExactlyCapacityEntries)
{
    BuddyCacheConfig cfg;
    cfg.entries = GetParam();
    BuddyCache c(cfg);
    for (uint32_t i = 0; i < cfg.entries; ++i)
        c.insert(i * 4, i, false);
    for (uint32_t i = 0; i < cfg.entries; ++i)
        EXPECT_TRUE(c.contains(i * 4));
    c.insert(cfg.entries * 4, 0, false);
    unsigned resident = 0;
    for (uint32_t i = 0; i <= cfg.entries; ++i)
        resident += c.contains(i * 4);
    EXPECT_EQ(resident, cfg.entries);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BuddyCacheCapacity,
                         ::testing::Values(1, 4, 8, 16, 32, 64));

TEST(BuddyCacheDeath, ReadNonResidentPanics)
{
    BuddyCache c;
    EXPECT_DEATH(c.read(0x123), "non-resident");
}

TEST(BuddyCacheDeath, DoubleInsertPanics)
{
    BuddyCache c;
    c.insert(0, 1, false);
    EXPECT_DEATH(c.insert(0, 2, false), "already-resident");
}
