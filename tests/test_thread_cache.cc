/**
 * @file
 * Tests for the per-tasklet thread cache: size-class mapping, bitmap
 * allocation, span install/release, free-path validation, and the WRAM
 * record budget.
 */

#include <gtest/gtest.h>

#include <set>

#include "alloc/thread_cache.hh"
#include "sim/dpu.hh"

using namespace pim;
using namespace pim::alloc;

namespace {

class ThreadCacheTest : public ::testing::Test
{
  protected:
    ThreadCacheTest() : cache(0, ThreadCacheConfig{}) {}

    void
    run(const std::function<void(sim::Tasklet &)> &fn)
    {
        dpu.run(1, [&](sim::Tasklet &t) {
            t.execute(1);
            fn(t);
        });
    }

    sim::Dpu dpu;
    ThreadCache cache;
};

} // namespace

TEST_F(ThreadCacheTest, PaperSizeClasses)
{
    // 8 classes, 16 B .. 2 KB (Section IV-A).
    EXPECT_EQ(cache.numClasses(), 8u);
    EXPECT_EQ(cache.classSize(0), 16u);
    EXPECT_EQ(cache.classSize(7), 2048u);
}

TEST_F(ThreadCacheTest, ClassForMapsToSmallestFit)
{
    EXPECT_EQ(cache.classFor(1), 0);
    EXPECT_EQ(cache.classFor(16), 0);
    EXPECT_EQ(cache.classFor(17), 1);
    EXPECT_EQ(cache.classFor(2048), 7);
    EXPECT_EQ(cache.classFor(2049), -1); // bypass
    EXPECT_EQ(cache.classFor(8192), -1);
}

TEST_F(ThreadCacheTest, EmptyCacheMisses)
{
    run([&](sim::Tasklet &t) {
        EXPECT_EQ(cache.tryAlloc(t, 0), sim::kNullAddr);
    });
}

TEST_F(ThreadCacheTest, SpanSubdivision)
{
    run([&](sim::Tasklet &t) {
        ASSERT_TRUE(cache.installSpan(t, 7, 0x10000)); // 2 KB class
        EXPECT_EQ(cache.freeBlocks(7), 2u); // 4 KB span -> 2 sub-blocks
        const auto a = cache.tryAlloc(t, 7);
        const auto b = cache.tryAlloc(t, 7);
        EXPECT_EQ(a, 0x10000u);
        EXPECT_EQ(b, 0x10000u + 2048u);
        EXPECT_EQ(cache.tryAlloc(t, 7), sim::kNullAddr); // exhausted
    });
}

TEST_F(ThreadCacheTest, SmallestClassHas256Blocks)
{
    run([&](sim::Tasklet &t) {
        ASSERT_TRUE(cache.installSpan(t, 0, 0x20000)); // 16 B class
        EXPECT_EQ(cache.freeBlocks(0), 256u);
        std::set<sim::MramAddr> seen;
        for (int i = 0; i < 256; ++i) {
            const auto a = cache.tryAlloc(t, 0);
            ASSERT_NE(a, sim::kNullAddr);
            ASSERT_TRUE(seen.insert(a).second);
            ASSERT_GE(a, 0x20000u);
            ASSERT_LT(a, 0x20000u + 4096u);
        }
        EXPECT_EQ(cache.tryAlloc(t, 0), sim::kNullAddr);
    });
}

TEST_F(ThreadCacheTest, FreeThenReallocateSameBlock)
{
    run([&](sim::Tasklet &t) {
        cache.installSpan(t, 3, 0x30000); // 128 B class
        const auto a = cache.tryAlloc(t, 3);
        const auto res = cache.free(t, 3, 0x30000, a);
        EXPECT_TRUE(res.ok);
        EXPECT_FALSE(res.spanReleased); // last span stays cached
        EXPECT_EQ(cache.tryAlloc(t, 3), a); // lowest free bit again
    });
}

TEST_F(ThreadCacheTest, DoubleFreeRejected)
{
    run([&](sim::Tasklet &t) {
        cache.installSpan(t, 2, 0x40000);
        const auto a = cache.tryAlloc(t, 2);
        EXPECT_TRUE(cache.free(t, 2, 0x40000, a).ok);
        EXPECT_FALSE(cache.free(t, 2, 0x40000, a).ok);
    });
}

TEST_F(ThreadCacheTest, ForeignAndMisalignedFreesRejected)
{
    run([&](sim::Tasklet &t) {
        cache.installSpan(t, 2, 0x40000); // 64 B class
        cache.tryAlloc(t, 2);
        // Unknown span base.
        EXPECT_FALSE(cache.free(t, 2, 0x50000, 0x50000).ok);
        // Misaligned address inside the span.
        EXPECT_FALSE(cache.free(t, 2, 0x40000, 0x40000 + 13).ok);
        // Beyond the span's sub-blocks.
        EXPECT_FALSE(cache.free(t, 2, 0x40000, 0x40000 + 8192).ok);
    });
}

TEST_F(ThreadCacheTest, EmptyNonLastSpanIsReleased)
{
    run([&](sim::Tasklet &t) {
        cache.installSpan(t, 7, 0x10000);
        cache.installSpan(t, 7, 0x20000);
        EXPECT_EQ(cache.spanCount(7), 2u);
        const auto a = cache.tryAlloc(t, 7);
        const sim::MramAddr span = a & ~uint32_t{4095};
        const auto res = cache.free(t, 7, span, a);
        EXPECT_TRUE(res.ok);
        EXPECT_TRUE(res.spanReleased);
        EXPECT_EQ(res.spanBase, span);
        EXPECT_EQ(cache.spanCount(7), 1u);
    });
}

TEST_F(ThreadCacheTest, SecondSpanServicesOverflow)
{
    run([&](sim::Tasklet &t) {
        cache.installSpan(t, 7, 0x10000);
        cache.tryAlloc(t, 7);
        cache.tryAlloc(t, 7); // first span now full
        cache.installSpan(t, 7, 0x20000);
        EXPECT_EQ(cache.tryAlloc(t, 7), 0x20000u);
    });
}

TEST_F(ThreadCacheTest, MaxSpansBudgetEnforced)
{
    ThreadCacheConfig cfg;
    cfg.maxSpans = 3;
    ThreadCache tc(0, cfg);
    run([&](sim::Tasklet &t) {
        EXPECT_TRUE(tc.installSpan(t, 0, 0x1000));
        EXPECT_TRUE(tc.installSpan(t, 1, 0x2000));
        EXPECT_TRUE(tc.installSpan(t, 2, 0x3000));
        EXPECT_FALSE(tc.installSpan(t, 3, 0x4000)); // over budget
        EXPECT_EQ(tc.peakSpans(), 3u);
    });
}

TEST_F(ThreadCacheTest, FreeBlocksCountsAcrossSpans)
{
    run([&](sim::Tasklet &t) {
        cache.installSpan(t, 6, 0x10000); // 1 KB: 4 per span
        cache.installSpan(t, 6, 0x20000);
        EXPECT_EQ(cache.freeBlocks(6), 8u);
        cache.tryAlloc(t, 6);
        EXPECT_EQ(cache.freeBlocks(6), 7u);
    });
}

TEST(ThreadCacheConfigDeath, RejectsBadClasses)
{
    ThreadCacheConfig bad;
    bad.sizeClasses = {16, 48}; // 48 not a power of two
    EXPECT_DEATH(ThreadCache(0, bad), "powers of two");
    ThreadCacheConfig bad2;
    bad2.sizeClasses = {16, 16};
    EXPECT_DEATH(ThreadCache(0, bad2), "ascending");
    ThreadCacheConfig bad3;
    bad3.sizeClasses = {8}; // 4096/8 = 512 > 256-bit bitmap
    EXPECT_DEATH(ThreadCache(0, bad3), "bitmap");
}
