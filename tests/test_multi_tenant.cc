/**
 * @file
 * Tests for the multi-tenant scheduler layer of the command-queue
 * runtime: completion callbacks (timeline-order dispatch, thread-count
 * determinism, follow-up enqueues, misuse fatals), eventSeconds
 * fail-fast on never-enqueued handles, RankScheduler acquire/release/
 * contention, per-tenant host lanes, CommandOptions equivalence with
 * the deprecated positional overloads, DpuSet partition helpers, and
 * per-tenant occupancy attribution of a co-tenant run.
 */

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "core/command_queue.hh"
#include "core/pim_system.hh"
#include "core/rank_scheduler.hh"
#include "sim/dpu.hh"
#include "trace/occupancy.hh"
#include "trace/trace.hh"

using namespace pim;
using namespace pim::core;

namespace {

/** Small-MRAM DPU so tests don't pay 64 MB of backing store per DPU. */
sim::DpuConfig
smallDpuCfg()
{
    sim::DpuConfig cfg;
    cfg.mramBytes = 1u << 20;
    return cfg;
}

PimSystemConfig
smallSystem(unsigned dpus, unsigned per_rank, unsigned sample = 0)
{
    PimSystemConfig cfg;
    cfg.numDpus = dpus;
    cfg.dpusPerRank = per_rank;
    cfg.sampleDpus = sample;
    cfg.dpuCfg = smallDpuCfg();
    return cfg;
}

} // namespace

// ---------------------------------------------------------------------
// Completion callbacks
// ---------------------------------------------------------------------

TEST(Callbacks, DispatchInTimelineOrderNotRegistrationOrder)
{
    PimSystem sys(smallSystem(128, 64));
    CommandQueue q(sys);

    // The slow launch is enqueued (and its callback registered) first,
    // but the fast launch on the other rank completes earlier.
    const Event slow = q.launchTimed(sys.rank(0), 10e-3,
                                     {.label = "slow"});
    const Event fast = q.launchTimed(sys.rank(1), 1e-3,
                                     {.label = "fast"});
    std::vector<std::pair<Event, double>> fired;
    q.onComplete(slow, [&](Event e, double t) {
        fired.emplace_back(e, t);
    });
    q.onComplete(fast, [&](Event e, double t) {
        fired.emplace_back(e, t);
    });

    // eventSeconds drains (dispatching callbacks) without compacting
    // the history, so the fired timestamps stay cross-checkable.
    const double slow_end = q.eventSeconds(slow);
    const double fast_end = q.eventSeconds(fast);

    ASSERT_EQ(fired.size(), 2u);
    EXPECT_EQ(fired[0].first, fast);
    EXPECT_EQ(fired[1].first, slow);
    EXPECT_DOUBLE_EQ(fired[0].second, fast_end);
    EXPECT_DOUBLE_EQ(fired[1].second, slow_end);
    EXPECT_LT(fast_end, slow_end);
}

TEST(Callbacks, SameEventTiesKeepRegistrationOrder)
{
    PimSystem sys(smallSystem(64, 64));
    CommandQueue q(sys);
    const Event e = q.launchTimed(sys.rank(0), 1e-3);
    std::vector<int> order;
    q.onComplete(e, [&](Event, double) { order.push_back(1); });
    q.onComplete(e, [&](Event, double) { order.push_back(2); });
    q.sync();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Callbacks, MayEnqueueFollowUpCommands)
{
    PimSystem sys(smallSystem(128, 64));
    CommandQueue q(sys);

    const Event first = q.launchTimed(sys.rank(0), 1e-3,
                                      {.label = "first"});
    double follow_done = -1.0;
    q.onComplete(first, [&](Event, double) {
        const Event f = q.launchTimed(q.system().rank(1), 2e-3,
                                      {.label = "follow"});
        q.onComplete(f, [&](Event, double t) { follow_done = t; });
    });

    // The first sync dispatches the callback; the follow-up it enqueued
    // belongs to the next drain.
    const double m1 = q.sync();
    EXPECT_LT(follow_done, 0.0);
    EXPECT_EQ(q.pendingCommands(), 1u);

    const double m2 = q.sync();
    EXPECT_GT(follow_done, 0.0);
    EXPECT_DOUBLE_EQ(follow_done, m2);
    EXPECT_GE(m2, m1 + 2e-3);
}

TEST(CallbacksDeathTest, FatalOnNonPendingEvents)
{
    PimSystem sys(smallSystem(64, 64));
    CommandQueue q(sys);
    EXPECT_DEATH(q.onComplete(kNoEvent, [](Event, double) {}),
                 "never enqueued");
    const Event e = q.launchTimed(sys.rank(0), 1e-3);
    q.sync();
    // Already resolved (and compacted): no longer pending.
    EXPECT_DEATH(q.onComplete(e, [](Event, double) {}),
                 "register callbacks right after enqueuing");
}

TEST(CallbacksDeathTest, CallbacksMustNotForceADrain)
{
    PimSystem sys(smallSystem(64, 64));
    CommandQueue q(sys);
    const Event e = q.launchTimed(sys.rank(0), 1e-3);
    q.onComplete(e, [&](Event, double) {
        q.launchTimed(q.system().rank(0), 1e-3);
        q.sync(); // fatal: drain re-entry from a callback
    });
    EXPECT_DEATH(q.sync(), "force a drain");
}

// ---------------------------------------------------------------------
// eventSeconds fail-fast
// ---------------------------------------------------------------------

TEST(EventSecondsDeathTest, FatalOnDefaultAndNeverEnqueuedHandles)
{
    PimSystem sys(smallSystem(64, 64));
    CommandQueue q(sys);
    EXPECT_DEATH(q.eventSeconds(kNoEvent), "default Event handle");
    // A default-constructed struct member initialized to 0 is the other
    // classic stale handle: nothing was ever enqueued here.
    EXPECT_DEATH(q.eventSeconds(0), "never enqueued");
    EXPECT_DEATH(q.eventSeconds(42), "never enqueued");
}

// ---------------------------------------------------------------------
// RankScheduler
// ---------------------------------------------------------------------

TEST(RankScheduler, GrantsLowestFreeRanksDeterministically)
{
    PimSystem sys(smallSystem(256, 64)); // 4 ranks
    RankScheduler sched(sys);
    EXPECT_EQ(sched.numRanks(), 4u);
    EXPECT_EQ(sched.freeRankCount(), 4u);

    const DpuSet serving = sched.acquireRanks(2, "serving");
    EXPECT_EQ(serving.ranks(), (std::vector<unsigned>{0, 1}));
    EXPECT_EQ(serving.size(), 128u);
    EXPECT_EQ(sched.ownerOf(0), "serving");
    EXPECT_EQ(sched.ownerOf(1), "serving");
    EXPECT_EQ(sched.freeRankCount(), 2u);

    // No partial grants: 3 free ranks needed, only 2 left.
    EXPECT_FALSE(sched.tryAcquireRanks(3, "graph").has_value());
    EXPECT_EQ(sched.freeRankCount(), 2u);

    const DpuSet graph = sched.acquireRanks(2, "graph");
    EXPECT_EQ(graph.ranks(), (std::vector<unsigned>{2, 3}));
    EXPECT_EQ(sched.freeRankCount(), 0u);

    // Releasing returns the ranks to the pool; the next grant reuses
    // the lowest-numbered free ranks.
    sched.releaseRanks(serving);
    EXPECT_EQ(sched.freeRankCount(), 2u);
    EXPECT_EQ(sched.ownerOf(0), "");
    const DpuSet third = sched.acquireRanks(1, "third");
    EXPECT_EQ(third.ranks(), (std::vector<unsigned>{0}));
    EXPECT_EQ(sched.ownerOf(0), "third");
}

TEST(RankSchedulerDeathTest, ContentionAndMisuseAreFatal)
{
    PimSystem sys(smallSystem(256, 64));
    RankScheduler sched(sys);
    const DpuSet serving = sched.acquireRanks(3, "serving");
    EXPECT_DEATH(sched.acquireRanks(2, "greedy"), "asked for");

    // A partial-rank set must not release its whole rank.
    EXPECT_DEATH(sched.releaseRanks(sys.subset({0})), "rank-granular");

    sched.releaseRanks(serving);
    EXPECT_DEATH(sched.releaseRanks(serving), "double release");
}

// ---------------------------------------------------------------------
// Tenant host lanes
// ---------------------------------------------------------------------

TEST(Tenants, IndependentHostIssueTimelines)
{
    PimSystem sys(smallSystem(128, 64));
    CommandQueue q(sys);
    const TenantId serving = q.addTenant("serving");
    const TenantId graph = q.addTenant("graph");
    EXPECT_EQ(q.tenantCount(), 3u);

    q.hostBusy(2e-3, {.label = "serving work", .tenant = serving});
    q.hostBusy(5e-3, {.label = "graph work", .tenant = graph});
    const Event probe = q.launchTimed(sys.rank(0), 1e-6); // tenant 0

    // Force a drain without joining the timelines: each tenant's host
    // lane advanced only by its own commands.
    q.eventSeconds(probe);
    EXPECT_DOUBLE_EQ(q.hostSeconds(serving), 2e-3);
    EXPECT_DOUBLE_EQ(q.hostSeconds(graph), 5e-3);
    EXPECT_GT(q.hostSeconds(kDefaultTenant), 0.0); // launch issue
    EXPECT_LT(q.hostSeconds(kDefaultTenant), 2e-3);

    // sync() joins every lane to the makespan.
    const double m = q.sync();
    EXPECT_DOUBLE_EQ(q.hostSeconds(serving), m);
    EXPECT_DOUBLE_EQ(q.hostSeconds(graph), m);
}

// ---------------------------------------------------------------------
// CommandOptions vs the deprecated positional tails
// ---------------------------------------------------------------------

TEST(CommandOptions, EquivalentToLegacyOverloads)
{
    const auto scenario = [](bool legacy) {
        PimSystem sys(smallSystem(128, 64));
        CommandQueue q(sys);
        Event a, b;
        if (legacy) {
            a = q.launchTimed(sys.rank(0), 3e-3, kNoEvent, "a");
            b = q.memcpyAsync(sys.rank(1), 1u << 16,
                              CopyDirection::HostToPim, a, "b");
            q.hostCompute(8, 1000, b, "c");
            q.memcpy(sys.rank(0), 1u << 12, CopyDirection::PimToHost,
                     std::string("d"));
        } else {
            a = q.launchTimed(sys.rank(0), 3e-3, {.label = "a"});
            b = q.memcpyAsync(sys.rank(1), 1u << 16,
                              CopyDirection::HostToPim,
                              {.after = a, .label = "b"});
            q.hostCompute(8, 1000, {.after = b, .label = "c"});
            q.memcpy(sys.rank(0), 1u << 12, CopyDirection::PimToHost,
                     CommandOptions{.label = "d"});
        }
        return std::pair{q.sync(), q.transferredBytes()};
    };
    const auto v1 = scenario(true);
    const auto v2 = scenario(false);
    EXPECT_DOUBLE_EQ(v1.first, v2.first);
    EXPECT_EQ(v1.second, v2.second);
}

// ---------------------------------------------------------------------
// DpuSet partition helpers
// ---------------------------------------------------------------------

TEST(DpuSet, IndexOfAndMemberAtRoundTrip)
{
    PimSystem sys(smallSystem(256, 64));
    const DpuSet all = sys.all();
    EXPECT_EQ(all.indexOf(70), 70u);
    EXPECT_EQ(all.memberAt(70), 70u);

    const DpuSet r1 = sys.rank(1);
    EXPECT_EQ(r1.indexOf(64), 0u);
    EXPECT_EQ(r1.indexOf(127), 63u);
    EXPECT_EQ(r1.memberAt(5), 69u);

    const DpuSet rs = sys.ranks({1, 3});
    EXPECT_EQ(rs.size(), 128u);
    EXPECT_EQ(rs.indexOf(64), 0u);
    EXPECT_EQ(rs.indexOf(192), 64u);
    EXPECT_EQ(rs.memberAt(64), 192u);
}

TEST(DpuSet, PartitionRanksMatchesSystemPartition)
{
    PimSystem sys(smallSystem(256, 64));
    const DpuSet all = sys.all();

    const auto [pre, dec] = all.partitionRanks(0.5);
    EXPECT_EQ(pre.ranks(), (std::vector<unsigned>{0, 1}));
    EXPECT_EQ(dec.ranks(), (std::vector<unsigned>{2, 3}));

    // Clamped to [1, n-1]: both partitions always non-empty.
    EXPECT_EQ(all.partitionRanks(0.0).first.ranks().size(), 1u);
    EXPECT_EQ(all.partitionRanks(1.0).second.ranks().size(), 1u);

    const auto sys_part = sys.partitionRanks(0.5);
    EXPECT_EQ(sys_part.first.ranks(), pre.ranks());
    EXPECT_EQ(sys_part.second.ranks(), dec.ranks());

    // Partitioning a non-contiguous grant splits its own rank list.
    const auto [g1, g2] = sys.ranks({1, 3}).partitionRanks(0.5);
    EXPECT_EQ(g1.ranks(), (std::vector<unsigned>{1}));
    EXPECT_EQ(g2.ranks(), (std::vector<unsigned>{3}));
}

// ---------------------------------------------------------------------
// Co-tenant occupancy attribution and determinism
// ---------------------------------------------------------------------

TEST(Tenants, CoTenantOccupancyAttribution)
{
    PimSystem sys(smallSystem(256, 64));
    CommandQueue q(sys);
    trace::Recorder rec;
    q.attachRecorder(&rec);

    const TenantId serving = q.addTenant("serving");
    const TenantId graph = q.addTenant("graph");
    RankScheduler sched(sys);
    const DpuSet sset = sched.acquireRanks(2, "serving");
    const DpuSet gset = sched.acquireRanks(2, "graph");

    q.launchTimed(sset, 4e-3, {.label = "decode", .tenant = serving});
    const Event up = q.memcpyAsync(gset, 1u << 16,
                                   CopyDirection::HostToPim,
                                   {.label = "updates",
                                    .tenant = graph});
    q.launchTimed(gset, 2e-3,
                  {.after = up, .label = "update", .tenant = graph});
    q.sync();

    const auto rep = trace::analyzeOccupancy(rec);
    ASSERT_GE(rep.tenants.size(), 2u);
    const auto find = [&](const std::string &name)
        -> const trace::TenantOccupancy * {
        for (const auto &t : rep.tenants)
            if (t.name == name)
                return &t;
        return nullptr;
    };
    const auto *socc = find("serving");
    const auto *gocc = find("graph");
    ASSERT_NE(socc, nullptr);
    ASSERT_NE(gocc, nullptr);
    // Each tenant held its own ranks: 2 rank lanes for ~the full
    // makespan on the serving side, the update launch on the graph
    // side.
    EXPECT_GT(socc->rankBusySeconds, 2 * 4e-3 * 0.99);
    EXPECT_GT(gocc->rankBusySeconds, 2 * 2e-3 * 0.99);
    EXPECT_GT(socc->busyFraction, 0.0);
    EXPECT_GT(gocc->busyFraction, 0.0);
}

TEST(Tenants, CoTenantRunIsThreadCountInvariant)
{
    const auto run = [](unsigned threads) {
        PimSystemConfig cfg = smallSystem(256, 64, 8);
        cfg.simThreads = threads;
        PimSystem sys(cfg);
        CommandQueue q(sys);
        const TenantId serving = q.addTenant("serving");
        const TenantId graph = q.addTenant("graph");
        RankScheduler sched(sys);
        const DpuSet sset = sched.acquireRanks(2, "serving");
        const DpuSet gset = sched.acquireRanks(2, "graph");

        std::vector<double> out;
        std::vector<std::pair<Event, double>> fired;
        Event last_s = kNoEvent, last_g = kNoEvent;
        for (int i = 0; i < 3; ++i) {
            last_s = q.launchProgram(
                sset,
                [](sim::Dpu &dpu, unsigned idx) {
                    dpu.run(4, [idx](sim::Tasklet &t) {
                        t.execute(50 + (idx + t.id()) % 7);
                    });
                },
                {.after = last_s, .label = "serve", .tenant = serving});
            const Event up = q.memcpyScatterAsync(
                gset, std::vector<uint64_t>(gset.size(), 4096),
                CopyDirection::HostToPim,
                {.after = last_g, .label = "ship", .tenant = graph});
            last_g = q.launchProgram(
                gset,
                [](sim::Dpu &dpu, unsigned) {
                    dpu.run(8, [](sim::Tasklet &t) { t.execute(40); });
                },
                {.after = up, .label = "update", .tenant = graph});
            q.onComplete(last_s, [&](Event e, double t) {
                fired.emplace_back(e, t);
            });
            q.onComplete(last_g, [&](Event e, double t) {
                fired.emplace_back(e, t);
            });
        }
        out.push_back(q.eventSeconds(last_s));
        out.push_back(q.eventSeconds(last_g));
        out.push_back(q.hostSeconds(serving));
        out.push_back(q.hostSeconds(graph));
        out.push_back(q.busReadySeconds());
        out.push_back(q.sync());
        for (const auto &[e, t] : fired) {
            out.push_back(static_cast<double>(e));
            out.push_back(t);
        }
        return out;
    };
    const auto one = run(1);
    EXPECT_EQ(one, run(3));
    EXPECT_EQ(one, run(7));
}
