/**
 * @file
 * Tests for the microbenchmark driver: result plumbing, determinism,
 * trace recording, and free-each-alloc mode.
 */

#include <gtest/gtest.h>

#include "workloads/microbench.hh"

using namespace pim;
using namespace pim::workloads;

namespace {

MicrobenchConfig
quick(core::AllocatorKind kind, unsigned tasklets = 4, uint32_t size = 64)
{
    MicrobenchConfig cfg;
    cfg.allocator = kind;
    cfg.tasklets = tasklets;
    cfg.allocsPerTasklet = 32;
    cfg.allocSize = size;
    cfg.overrides.heapBytes = 4u << 20;
    return cfg;
}

} // namespace

TEST(Microbench, CountsAndLatency)
{
    const auto r = runMicrobench(quick(core::AllocatorKind::PimMallocSw));
    EXPECT_EQ(r.allocStats.mallocCalls, 4u * 32u);
    EXPECT_GT(r.avgLatencyUs, 0.0);
    EXPECT_GT(r.elapsedCycles, 0u);
    EXPECT_EQ(r.allocStats.failures, 0u);
    EXPECT_GT(r.metadataBytes, 0u);
}

TEST(Microbench, Deterministic)
{
    const auto cfg = quick(core::AllocatorKind::StrawMan, 8, 32);
    const auto a = runMicrobench(cfg);
    const auto b = runMicrobench(cfg);
    EXPECT_EQ(a.elapsedCycles, b.elapsedCycles);
    EXPECT_DOUBLE_EQ(a.avgLatencyUs, b.avgLatencyUs);
    EXPECT_EQ(a.traffic.totalBytes(), b.traffic.totalBytes());
}

TEST(Microbench, FreeEachAllocKeepsHeapEmpty)
{
    auto cfg = quick(core::AllocatorKind::PimMallocSwLazy);
    cfg.freeEachAlloc = true;
    const auto r = runMicrobench(cfg);
    EXPECT_EQ(r.allocStats.freeCalls, r.allocStats.mallocCalls);
    EXPECT_EQ(r.allocStats.requestedBytes, 0u);
}

TEST(Microbench, TraceEventsHaveMonotoneStartsPerTasklet)
{
    auto cfg = quick(core::AllocatorKind::PimMallocSw, 2);
    cfg.traceEvents = true;
    const auto r = runMicrobench(cfg);
    ASSERT_EQ(r.allocStats.events.size(), 64u);
    uint64_t last[2] = {0, 0};
    for (const auto &e : r.allocStats.events) {
        ASSERT_LT(e.taskletId, 2u);
        EXPECT_GE(e.startCycle, last[e.taskletId]);
        last[e.taskletId] = e.startCycle;
    }
}

TEST(Microbench, HwVariantReportsCacheStats)
{
    const auto r = runMicrobench(
        quick(core::AllocatorKind::PimMallocHwSw, 4, 4096));
    EXPECT_GT(r.cacheStats.lookups, 0u);
    EXPECT_GT(r.cacheStats.hitRate(), 0.0);
}

TEST(Microbench, BuddyCacheSizeConfigurable)
{
    auto cfg = quick(core::AllocatorKind::PimMallocHwSw, 4, 4096);
    cfg.dpuCfg.buddyCache.entries = 4;
    const auto small = runMicrobench(cfg);
    cfg.dpuCfg.buddyCache.entries = 64;
    const auto large = runMicrobench(cfg);
    // Fig 16: a larger buddy cache raises the hit rate.
    EXPECT_GE(large.cacheStats.hitRate(), small.cacheStats.hitRate());
}

TEST(Microbench, MoreTaskletsMoreContention)
{
    const auto t1 = runMicrobench(quick(core::AllocatorKind::StrawMan, 1));
    const auto t16 =
        runMicrobench(quick(core::AllocatorKind::StrawMan, 16));
    EXPECT_GT(t16.avgLatencyUs, t1.avgLatencyUs);
    EXPECT_GT(t16.breakdown.of(sim::CycleKind::BusyWait),
              t1.breakdown.of(sim::CycleKind::BusyWait));
}
