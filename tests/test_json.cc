/**
 * @file
 * Tests for the minimal streaming JSON writer used by benchmark
 * artifacts (--json flags).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "util/json.hh"

using pim::util::JsonWriter;

TEST(Json, FlatObject)
{
    std::ostringstream os;
    JsonWriter j(os);
    j.beginObject();
    j.key("name").value("bench");
    j.key("count").value(uint64_t{42});
    j.key("ratio").value(0.5);
    j.key("ok").value(true);
    j.endObject();
    EXPECT_TRUE(j.complete());
    EXPECT_EQ(os.str(), "{\n"
                        "  \"name\": \"bench\",\n"
                        "  \"count\": 42,\n"
                        "  \"ratio\": 0.5,\n"
                        "  \"ok\": true\n"
                        "}\n");
}

TEST(Json, NestedArraysAndObjects)
{
    std::ostringstream os;
    JsonWriter j(os);
    j.beginObject();
    j.key("cases").beginArray();
    j.beginObject();
    j.key("id").value(1);
    j.endObject();
    j.beginObject();
    j.key("id").value(2);
    j.endObject();
    j.endArray();
    j.key("empty").beginArray().endArray();
    j.endObject();
    EXPECT_TRUE(j.complete());
    EXPECT_EQ(os.str(), "{\n"
                        "  \"cases\": [\n"
                        "    {\n"
                        "      \"id\": 1\n"
                        "    },\n"
                        "    {\n"
                        "      \"id\": 2\n"
                        "    }\n"
                        "  ],\n"
                        "  \"empty\": []\n"
                        "}\n");
}

TEST(Json, StringEscaping)
{
    EXPECT_EQ(JsonWriter::escape("plain"), "plain");
    EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
    EXPECT_EQ(JsonWriter::escape("back\\slash"), "back\\\\slash");
    EXPECT_EQ(JsonWriter::escape("tab\there"), "tab\\there");
    EXPECT_EQ(JsonWriter::escape("line\nbreak"), "line\\nbreak");
    EXPECT_EQ(JsonWriter::escape(std::string("ctl\x01") + "x"),
              "ctl\\u0001x");
}

TEST(Json, StringEscapingEdgeCases)
{
    // Empty string and strings consisting only of escapes.
    EXPECT_EQ(JsonWriter::escape(""), "");
    EXPECT_EQ(JsonWriter::escape("\"\""), "\\\"\\\"");
    EXPECT_EQ(JsonWriter::escape("\\"), "\\\\");
    // Carriage return and every sub-0x20 control without a shorthand.
    EXPECT_EQ(JsonWriter::escape("a\rb"), "a\\rb");
    EXPECT_EQ(JsonWriter::escape(std::string(1, '\x1f')), "\\u001f");
    EXPECT_EQ(JsonWriter::escape(std::string(1, '\x0b')), "\\u000b");
    // NUL embedded in a std::string is a control character too.
    EXPECT_EQ(JsonWriter::escape(std::string("a\0b", 3)), "a\\u0000b");
    // Printable ASCII and multi-byte UTF-8 pass through untouched
    // (JSON allows raw UTF-8; only controls need escaping).
    EXPECT_EQ(JsonWriter::escape("sol/idus"), "sol/idus");
    EXPECT_EQ(JsonWriter::escape("\xc3\xa9t\xc3\xa9"), "\xc3\xa9t\xc3\xa9");
    // Adjacent escapes keep their order.
    EXPECT_EQ(JsonWriter::escape("\n\t\""), "\\n\\t\\\"");
}

TEST(Json, EscapedKeysAndValuesRoundTripThroughWriter)
{
    std::ostringstream os;
    JsonWriter j(os);
    j.beginObject();
    j.key("we\"ird\nkey").value("va\\lue\t");
    j.endObject();
    EXPECT_EQ(os.str(), "{\n"
                        "  \"we\\\"ird\\nkey\": \"va\\\\lue\\t\"\n"
                        "}\n");
}

TEST(Json, DeepNestingMixedArraysAndObjects)
{
    std::ostringstream os;
    JsonWriter j(os);
    j.beginArray();
    j.beginArray();
    j.beginArray();
    j.value(1);
    j.endArray();
    j.beginObject();
    j.key("deep").beginObject();
    j.key("empty_obj").beginObject().endObject();
    j.key("empty_arr").beginArray().endArray();
    j.endObject();
    j.endObject();
    j.endArray();
    j.endArray();
    EXPECT_TRUE(j.complete());
    EXPECT_EQ(os.str(), "[\n"
                        "  [\n"
                        "    [\n"
                        "      1\n"
                        "    ],\n"
                        "    {\n"
                        "      \"deep\": {\n"
                        "        \"empty_obj\": {},\n"
                        "        \"empty_arr\": []\n"
                        "      }\n"
                        "    }\n"
                        "  ]\n"
                        "]\n");
}

TEST(Json, EmptyRootContainers)
{
    {
        std::ostringstream os;
        JsonWriter j(os);
        j.beginObject().endObject();
        EXPECT_TRUE(j.complete());
        EXPECT_EQ(os.str(), "{}\n");
    }
    {
        std::ostringstream os;
        JsonWriter j(os);
        j.beginArray().endArray();
        EXPECT_TRUE(j.complete());
        EXPECT_EQ(os.str(), "[]\n");
    }
}

TEST(Json, CompleteIsFalseUntilBalanced)
{
    std::ostringstream os;
    JsonWriter j(os);
    EXPECT_FALSE(j.complete());
    j.beginObject();
    j.key("a").beginArray();
    EXPECT_FALSE(j.complete());
    j.endArray();
    EXPECT_FALSE(j.complete());
    j.endObject();
    EXPECT_TRUE(j.complete());
}

TEST(JsonDeath, MismatchedEndPanics)
{
    std::ostringstream os;
    JsonWriter j(os);
    j.beginObject();
    EXPECT_DEATH(j.endArray(), "endArray");
}

TEST(Json, NonFiniteDoublesBecomeNull)
{
    std::ostringstream os;
    JsonWriter j(os);
    j.beginArray();
    j.value(std::numeric_limits<double>::infinity());
    j.value(std::nan(""));
    j.endArray();
    EXPECT_EQ(os.str(), "[\n  null,\n  null\n]\n");
}

TEST(Json, ScalarRoot)
{
    std::ostringstream os;
    JsonWriter j(os);
    j.value(int64_t{-7});
    EXPECT_TRUE(j.complete());
    EXPECT_EQ(os.str(), "-7");
}

TEST(JsonDeath, KeyOutsideObjectPanics)
{
    std::ostringstream os;
    JsonWriter j(os);
    EXPECT_DEATH(j.key("oops"), "outside");
}

TEST(JsonDeath, ValueInObjectWithoutKeyPanics)
{
    std::ostringstream os;
    JsonWriter j(os);
    j.beginObject();
    EXPECT_DEATH(j.value(1), "key");
}
