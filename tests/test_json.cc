/**
 * @file
 * Tests for the minimal streaming JSON writer used by benchmark
 * artifacts (--json flags).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "util/json.hh"

using pim::util::JsonWriter;

TEST(Json, FlatObject)
{
    std::ostringstream os;
    JsonWriter j(os);
    j.beginObject();
    j.key("name").value("bench");
    j.key("count").value(uint64_t{42});
    j.key("ratio").value(0.5);
    j.key("ok").value(true);
    j.endObject();
    EXPECT_TRUE(j.complete());
    EXPECT_EQ(os.str(), "{\n"
                        "  \"name\": \"bench\",\n"
                        "  \"count\": 42,\n"
                        "  \"ratio\": 0.5,\n"
                        "  \"ok\": true\n"
                        "}\n");
}

TEST(Json, NestedArraysAndObjects)
{
    std::ostringstream os;
    JsonWriter j(os);
    j.beginObject();
    j.key("cases").beginArray();
    j.beginObject();
    j.key("id").value(1);
    j.endObject();
    j.beginObject();
    j.key("id").value(2);
    j.endObject();
    j.endArray();
    j.key("empty").beginArray().endArray();
    j.endObject();
    EXPECT_TRUE(j.complete());
    EXPECT_EQ(os.str(), "{\n"
                        "  \"cases\": [\n"
                        "    {\n"
                        "      \"id\": 1\n"
                        "    },\n"
                        "    {\n"
                        "      \"id\": 2\n"
                        "    }\n"
                        "  ],\n"
                        "  \"empty\": []\n"
                        "}\n");
}

TEST(Json, StringEscaping)
{
    EXPECT_EQ(JsonWriter::escape("plain"), "plain");
    EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
    EXPECT_EQ(JsonWriter::escape("back\\slash"), "back\\\\slash");
    EXPECT_EQ(JsonWriter::escape("tab\there"), "tab\\there");
    EXPECT_EQ(JsonWriter::escape("line\nbreak"), "line\\nbreak");
    EXPECT_EQ(JsonWriter::escape(std::string("ctl\x01") + "x"),
              "ctl\\u0001x");
}

TEST(Json, NonFiniteDoublesBecomeNull)
{
    std::ostringstream os;
    JsonWriter j(os);
    j.beginArray();
    j.value(std::numeric_limits<double>::infinity());
    j.value(std::nan(""));
    j.endArray();
    EXPECT_EQ(os.str(), "[\n  null,\n  null\n]\n");
}

TEST(Json, ScalarRoot)
{
    std::ostringstream os;
    JsonWriter j(os);
    j.value(int64_t{-7});
    EXPECT_TRUE(j.complete());
    EXPECT_EQ(os.str(), "-7");
}

TEST(JsonDeath, KeyOutsideObjectPanics)
{
    std::ostringstream os;
    JsonWriter j(os);
    EXPECT_DEATH(j.key("oops"), "outside");
}

TEST(JsonDeath, ValueInObjectWithoutKeyPanics)
{
    std::ostringstream os;
    JsonWriter j(os);
    j.beginObject();
    EXPECT_DEATH(j.value(1), "key");
}
