/**
 * @file
 * Tests for the timeline-tracing subsystem: the span recorder, the
 * occupancy analyzer, the CommandQueue instrumentation points (span
 * times must reproduce the queue's interval arithmetic exactly, and
 * resetTimeline must rebase the trace origin so epochs never overlap),
 * and the Chrome trace-event exporter — whose output is parsed back by
 * a minimal JSON reader to prove a capture from the serving workload
 * stays valid trace-event JSON.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/command_queue.hh"
#include "core/design_space.hh"
#include "core/pim_system.hh"
#include "trace/chrome_trace.hh"
#include "trace/occupancy.hh"
#include "trace/trace.hh"
#include "workloads/llm/serving_sim.hh"

using namespace pim;
using namespace pim::trace;

namespace {

Span
mkSpan(int lane, const char *name, double t0, double t1,
       bool idle = false)
{
    Span s;
    s.lane = lane;
    s.name = name;
    s.t0 = t0;
    s.t1 = t1;
    s.idle = idle;
    return s;
}

} // namespace

TEST(Recorder, RecordsAndOrdersLanes)
{
    Recorder rec;
    rec.setRankCount(3);
    const int custom = rec.customLane("dpu0/t0");
    rec.record(mkSpan(rankLane(2), "b", 0.0, 1.0));
    rec.record(mkSpan(kHostLane, "a", 0.0, 0.5));
    rec.record(mkSpan(custom, "t", 0.2, 0.4));
    rec.record(mkSpan(kBusLane, "c", 0.5, 2.0));
    rec.record(mkSpan(rankLane(0), "d", 0.0, 0.25));

    EXPECT_EQ(rec.spanCount(), 5u);
    EXPECT_DOUBLE_EQ(rec.endSeconds(), 2.0);

    // Display order: host, bus, ranks ascending, customs.
    const std::vector<int> lanes = rec.lanes();
    ASSERT_EQ(lanes.size(), 5u);
    EXPECT_EQ(lanes[0], kHostLane);
    EXPECT_EQ(lanes[1], kBusLane);
    EXPECT_EQ(lanes[2], rankLane(0));
    EXPECT_EQ(lanes[3], rankLane(2));
    EXPECT_EQ(lanes[4], custom);

    EXPECT_EQ(rec.laneName(kHostLane), "host");
    EXPECT_EQ(rec.laneName(kBusLane), "bus");
    EXPECT_EQ(rec.laneName(rankLane(2)), "rank2");
    EXPECT_EQ(rec.laneName(custom), "dpu0/t0");

    rec.clear();
    EXPECT_EQ(rec.spanCount(), 0u);
    EXPECT_DOUBLE_EQ(rec.endSeconds(), 0.0);
    // Custom lane names survive a clear.
    EXPECT_EQ(rec.customLane("dpu0/t0"), custom);
}

TEST(Recorder, CustomLaneDedupsByName)
{
    Recorder rec;
    const int a = rec.customLane("x");
    const int b = rec.customLane("y");
    EXPECT_NE(a, b);
    EXPECT_EQ(rec.customLane("x"), a);
    EXPECT_EQ(rec.customLane("y"), b);
    EXPECT_TRUE(isCustomLane(a));
    EXPECT_FALSE(isCustomLane(kHostLane));
    EXPECT_FALSE(isCustomLane(rankLane(0)));
}

TEST(RecorderDeath, BackwardsSpanPanics)
{
    Recorder rec;
    EXPECT_DEATH(rec.record(mkSpan(kHostLane, "bad", 2.0, 1.0)),
                 "ends before it starts");
}

TEST(Occupancy, MergesOverlappingSpansPerLane)
{
    Recorder rec;
    // Overlapping + duplicated busy intervals must union, not sum.
    rec.record(mkSpan(kHostLane, "a", 0.0, 2.0));
    rec.record(mkSpan(kHostLane, "b", 1.0, 3.0));
    rec.record(mkSpan(kHostLane, "c", 1.0, 3.0));
    rec.record(mkSpan(kHostLane, "gap", 5.0, 6.0));
    // Idle spans extend the lane end but never its busy time.
    rec.record(mkSpan(kHostLane, "wait", 6.0, 10.0, /*idle=*/true));

    const OccupancyReport rep = analyzeOccupancy(rec);
    ASSERT_EQ(rep.lanes.size(), 1u);
    EXPECT_DOUBLE_EQ(rep.lanes[0].busySeconds, 4.0); // [0,3] + [5,6]
    EXPECT_DOUBLE_EQ(rep.lanes[0].endSeconds, 10.0);
    EXPECT_DOUBLE_EQ(rep.makespanSeconds, 10.0);
    EXPECT_DOUBLE_EQ(rep.lanes[0].busyFraction, 0.4);
    EXPECT_EQ(rep.lanes[0].spans, 5u);
    EXPECT_EQ(rep.criticalLane, kHostLane);
}

TEST(Occupancy, OverlapAndCriticalLaneAccounting)
{
    Recorder rec;
    rec.record(mkSpan(kHostLane, "h", 0.0, 4.0));
    rec.record(mkSpan(kBusLane, "x", 0.0, 3.0));
    rec.record(mkSpan(rankLane(0), "l", 1.0, 5.0));

    const OccupancyReport rep = analyzeOccupancy(rec);
    EXPECT_DOUBLE_EQ(rep.makespanSeconds, 5.0);
    EXPECT_DOUBLE_EQ(rep.busySumSeconds, 11.0);
    EXPECT_DOUBLE_EQ(rep.overlapSeconds, 6.0);
    EXPECT_EQ(rep.criticalLane, rankLane(0));
    EXPECT_EQ(rep.criticalLaneName, "rank0");

    // The max lane end always equals the makespan, by construction.
    double max_end = 0.0;
    for (const auto &lo : rep.lanes)
        max_end = std::max(max_end, lo.endSeconds);
    EXPECT_DOUBLE_EQ(max_end, rep.makespanSeconds);
}

TEST(Occupancy, StragglerRankDetection)
{
    Recorder rec;
    rec.record(mkSpan(rankLane(0), "l", 0.0, 1.0));
    rec.record(mkSpan(rankLane(1), "l", 0.0, 1.1));
    rec.record(mkSpan(rankLane(2), "l", 0.0, 0.9));
    rec.record(mkSpan(rankLane(3), "straggler", 0.0, 2.5));

    const OccupancyReport rep = analyzeOccupancy(rec);
    EXPECT_NEAR(rep.rankBusyMedianSeconds, 1.05, 1e-12);
    std::map<int, bool> straggler;
    for (const auto &lo : rep.lanes)
        straggler[lo.lane] = lo.straggler;
    EXPECT_FALSE(straggler[rankLane(0)]);
    EXPECT_FALSE(straggler[rankLane(1)]);
    EXPECT_FALSE(straggler[rankLane(2)]);
    EXPECT_TRUE(straggler[rankLane(3)]);
    EXPECT_EQ(rep.criticalLane, rankLane(3));
}

TEST(Occupancy, CustomLanesExcludedFromWorkSum)
{
    Recorder rec;
    // One rank busy the whole time, and 4 tasklet lanes mirroring the
    // same physical work: the work sum must count the rank only, so
    // the overlap figure cannot claim the tasklets ran concurrently
    // with themselves.
    rec.record(mkSpan(rankLane(0), "launch", 0.0, 2.0));
    for (int t = 0; t < 4; ++t)
        rec.record(mkSpan(rec.customLane("dpu0/t" + std::to_string(t)),
                          "tasklet", 0.0, 2.0));

    const OccupancyReport rep = analyzeOccupancy(rec);
    EXPECT_DOUBLE_EQ(rep.makespanSeconds, 2.0);
    EXPECT_DOUBLE_EQ(rep.busySumSeconds, 2.0);
    EXPECT_DOUBLE_EQ(rep.overlapSeconds, 0.0);
    // Per-lane busy stats still cover the custom lanes.
    ASSERT_EQ(rep.lanes.size(), 5u);
    EXPECT_DOUBLE_EQ(rep.lanes.back().busySeconds, 2.0);
}

TEST(Occupancy, IdleOnlyTraceFallsBackToLatestLane)
{
    Recorder rec;
    rec.record(mkSpan(kHostLane, "wait", 0.0, 3.0, /*idle=*/true));
    const OccupancyReport rep = analyzeOccupancy(rec);
    EXPECT_EQ(rep.criticalLane, kHostLane);
    EXPECT_DOUBLE_EQ(rep.makespanSeconds, 3.0);
    EXPECT_DOUBLE_EQ(rep.busySumSeconds, 0.0);
}

TEST(Recorder, RecorderSetAddsAndDisables)
{
    RecorderSet on(true);
    Recorder *a = on.add("first");
    Recorder *b = on.add("second");
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_NE(a, b);
    a->record(mkSpan(kHostLane, "x", 0.0, 1.0));
    const auto procs = on.processes();
    ASSERT_EQ(procs.size(), 2u);
    EXPECT_EQ(procs[0].name, "first");
    EXPECT_EQ(procs[0].recorder, a);
    EXPECT_EQ(procs[1].name, "second");

    RecorderSet off(false);
    EXPECT_EQ(off.add("ignored"), nullptr);
    EXPECT_TRUE(off.processes().empty());
    // A disabled set is a successful emit no-op.
    std::ostringstream os;
    EXPECT_TRUE(emitReports(os, off, true, ""));
    EXPECT_TRUE(os.str().empty());
}

TEST(Occupancy, EmptyRecorder)
{
    Recorder rec;
    const OccupancyReport rep = analyzeOccupancy(rec);
    EXPECT_TRUE(rep.lanes.empty());
    EXPECT_DOUBLE_EQ(rep.makespanSeconds, 0.0);
    EXPECT_DOUBLE_EQ(rep.overlapSeconds, 0.0);
}

namespace {

core::PimSystemConfig
smallSystem(unsigned dpus = 128, unsigned sample = 4)
{
    core::PimSystemConfig cfg;
    cfg.numDpus = dpus;       // 2 ranks of 64
    cfg.sampleDpus = sample;
    cfg.simThreads = 2;
    return cfg;
}

} // namespace

TEST(QueueTracing, CommandsEmitSpansOnTheirLanes)
{
    core::PimSystem sys(smallSystem());
    core::CommandQueue q(sys);
    Recorder rec;
    q.attachRecorder(&rec);
    EXPECT_EQ(q.recorder(), &rec);
    EXPECT_EQ(rec.rankCount(), sys.numRanks());

    q.memcpyAsync(sys.all(), 1 << 20, core::CopyDirection::HostToPim,
                  core::kNoEvent, "feed");
    q.launch(sys.all(), 2,
             [](sim::Tasklet &t, unsigned) { t.execute(500); },
             core::kNoEvent, "kernel");
    q.hostCompute(64, 10000, core::kNoEvent, "reduce");
    const double makespan = q.sync();

    // Copy: one bus span + one span per touched rank, bytes on the bus.
    // Launch: a host issue span + per-rank spans with cycles.
    // HostCompute: one host span.
    const auto &spans = rec.spans();
    size_t bus_spans = 0, rank_spans = 0, host_spans = 0;
    uint64_t bus_bytes = 0;
    uint64_t launch_cycles = 0;
    double max_end = 0.0;
    for (const Span &s : spans) {
        max_end = std::max(max_end, s.t1);
        EXPECT_GE(s.t1, s.t0);
        if (s.lane == kBusLane) {
            ++bus_spans;
            bus_bytes += s.bytes;
        } else if (isRankLane(s.lane)) {
            ++rank_spans;
            if (s.name == "kernel")
                launch_cycles += s.cycles;
        } else if (s.lane == kHostLane) {
            ++host_spans;
        }
    }
    EXPECT_EQ(bus_spans, 1u);
    EXPECT_EQ(rank_spans, 2u * sys.numRanks()); // copy + launch per rank
    EXPECT_EQ(host_spans, 2u); // launch issue + hostCompute
    EXPECT_EQ(bus_bytes, uint64_t{1 << 20} * sys.numDpus());
    EXPECT_GT(launch_cycles, 0u);
    // The trace ends exactly at the queue's makespan.
    EXPECT_DOUBLE_EQ(max_end, makespan);

    // Span intervals reproduce the queue's timelines: each rank's last
    // span ends at that rank's ready time.
    for (unsigned r = 0; r < sys.numRanks(); ++r) {
        double rank_end = 0.0;
        for (const Span &s : spans) {
            if (s.lane == rankLane(r))
                rank_end = std::max(rank_end, s.t1);
        }
        EXPECT_DOUBLE_EQ(rank_end, q.rankReadySeconds(r));
    }

    // Detaching stops recording.
    q.attachRecorder(nullptr);
    EXPECT_EQ(q.recorder(), nullptr);
    const size_t before = rec.spanCount();
    q.hostBusy(1e-3);
    q.sync();
    EXPECT_EQ(rec.spanCount(), before);
}

TEST(QueueTracing, BlockingCopyEmitsHostWaitSpan)
{
    core::PimSystem sys(smallSystem());
    core::CommandQueue q(sys);
    Recorder rec;
    q.attachRecorder(&rec);

    q.memcpy(sys.all(), 4096, core::CopyDirection::PimToHost);

    bool saw_wait = false;
    for (const Span &s : rec.spans()) {
        if (s.lane == kHostLane) {
            EXPECT_TRUE(s.idle);
            EXPECT_EQ(s.name, "memcpy:p2h (wait)");
            saw_wait = true;
        }
    }
    EXPECT_TRUE(saw_wait);

    // Occupancy must not count the wait as host busy time, and the
    // never-busy host must not be attributed the makespan even though
    // its idle wait ends exactly at it — the bus (equal busy to each
    // rank, earlier display order) is the constraining resource.
    const OccupancyReport rep = analyzeOccupancy(rec);
    for (const auto &lo : rep.lanes) {
        if (lo.lane == kHostLane) {
            EXPECT_DOUBLE_EQ(lo.busySeconds, 0.0);
            EXPECT_DOUBLE_EQ(lo.endSeconds, rep.makespanSeconds);
        }
    }
    EXPECT_EQ(rep.criticalLane, kBusLane);
}

TEST(QueueTracing, DependencyEventsAreRecordedOnSpans)
{
    core::PimSystem sys(smallSystem());
    core::CommandQueue q(sys);
    Recorder rec;
    q.attachRecorder(&rec);

    const core::Event e = q.memcpyAsync(
        sys.rank(0), 1024, core::CopyDirection::HostToPim);
    q.launch(sys.rank(0), 1,
             [](sim::Tasklet &t, unsigned) { t.execute(100); }, e,
             "dependent");
    q.sync();

    bool found = false;
    for (const Span &s : rec.spans()) {
        if (s.name == "dependent" && isRankLane(s.lane)) {
            EXPECT_EQ(s.after, e);
            EXPECT_GT(s.event, e);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(QueueTracing, ResetTimelineRebasesTraceEpoch)
{
    core::PimSystem sys(smallSystem());
    core::CommandQueue q(sys);
    Recorder rec;
    q.attachRecorder(&rec);

    // Epoch 1: a launch and a sync.
    const core::Event old_event = q.launch(
        sys.all(), 1, [](sim::Tasklet &t, unsigned) { t.execute(1000); },
        core::kNoEvent, "epoch1");
    const double epoch1 = q.sync();
    const double end1 = rec.endSeconds();
    EXPECT_DOUBLE_EQ(end1, epoch1);

    q.resetTimeline();
    EXPECT_DOUBLE_EQ(q.elapsedSeconds(), 0.0);

    // Epoch 2: depends on a pre-reset Event, which rebased to the new
    // epoch's origin — the host span must start at trace time end1
    // (origin of epoch 2), not at end1 + epoch1.
    q.hostBusy(0.5e-3, old_event, "epoch2");
    const double epoch2 = q.sync();

    double epoch2_t0 = -1.0, epoch2_t1 = -1.0;
    for (const Span &s : rec.spans()) {
        if (s.name == "epoch2") {
            epoch2_t0 = s.t0;
            epoch2_t1 = s.t1;
        }
    }
    ASSERT_GE(epoch2_t0, 0.0);
    // Spans of the new epoch start exactly where the old epoch ended:
    // monotonic, gap-free, no overlap with pre-reset spans.
    EXPECT_DOUBLE_EQ(epoch2_t0, end1);
    EXPECT_DOUBLE_EQ(epoch2_t1, end1 + 0.5e-3);
    EXPECT_DOUBLE_EQ(rec.endSeconds(), end1 + epoch2);

    // A second reset stacks another epoch on top.
    q.resetTimeline();
    q.hostBusy(0.25e-3, core::kNoEvent, "epoch3");
    q.sync();
    double epoch3_t0 = -1.0;
    for (const Span &s : rec.spans()) {
        if (s.name == "epoch3")
            epoch3_t0 = s.t0;
    }
    EXPECT_DOUBLE_EQ(epoch3_t0, end1 + epoch2);
}

// The ISSUE's acceptance check: in bench_fig06's Overlapped mode the
// per-lane occupancy must attribute the queue makespan to a lane whose
// timeline ends exactly at it.
TEST(DesignSpaceTracing, OverlappedOccupancyMatchesMakespan)
{
    for (const auto strategy :
         {core::DesignStrategy::HostMetaPimExec,
          core::DesignStrategy::PimMetaPimExec,
          core::DesignStrategy::PimMetaHostExec,
          core::DesignStrategy::HostMetaHostExec}) {
        Recorder rec;
        core::DesignSpaceParams p;
        p.numDpus = 128; // 2 ranks
        p.allocsPerDpu = 4;
        p.recorder = &rec;
        const auto r = core::evalStrategy(
            strategy, p, core::ExecutionMode::Overlapped);
        ASSERT_GT(rec.spanCount(), 0u)
            << core::designStrategyName(strategy);

        const OccupancyReport rep = analyzeOccupancy(rec);
        // The traced makespan equals the experiment's makespan...
        EXPECT_NEAR(rep.makespanSeconds, r.makespanSeconds,
                    1e-12 + 1e-9 * r.makespanSeconds)
            << core::designStrategyName(strategy);
        // ...and the max lane end equals the queue makespan, with the
        // critical lane attributed to it.
        double max_end = 0.0;
        double critical_end = 0.0;
        for (const auto &lo : rep.lanes) {
            max_end = std::max(max_end, lo.endSeconds);
            EXPECT_LE(lo.busyFraction, 1.0 + 1e-9);
            if (lo.lane == rep.criticalLane)
                critical_end = lo.endSeconds;
        }
        EXPECT_DOUBLE_EQ(max_end, rep.makespanSeconds);
        EXPECT_DOUBLE_EQ(critical_end, rep.makespanSeconds);
    }
}

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON reader (tests only): just enough to
// prove an exported capture parses as strict JSON and has the
// trace-event structure Perfetto expects.
// ---------------------------------------------------------------------------

namespace {

struct JsonValue
{
    enum class Type { Null, Bool, Number, String, Array, Object };
    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    const JsonValue &
    at(const std::string &key) const
    {
        static const JsonValue null_value;
        auto it = object.find(key);
        return it == object.end() ? null_value : it->second;
    }
    bool has(const std::string &key) const { return object.count(key); }
};

class JsonParser
{
  public:
    explicit JsonParser(std::string text) : s_(std::move(text)) {}

    /** Parse the full document; fails the test on any syntax error. */
    JsonValue
    parse()
    {
        JsonValue v = value();
        ws();
        EXPECT_EQ(pos_, s_.size()) << "trailing JSON content";
        return v;
    }

  private:
    void
    ws()
    {
        while (pos_ < s_.size()
               && std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        EXPECT_LT(pos_, s_.size()) << "unexpected end of JSON";
        return pos_ < s_.size() ? s_[pos_] : '\0';
    }

    void
    expect(char c)
    {
        ASSERT_EQ(peek(), c) << "at offset " << pos_;
        ++pos_;
    }

    JsonValue
    value()
    {
        ws();
        switch (peek()) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': case 'f': return boolean();
          case 'n': return null();
          default: return number();
        }
    }

    JsonValue
    object()
    {
        JsonValue v;
        v.type = JsonValue::Type::Object;
        expect('{');
        ws();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            ws();
            JsonValue key = string();
            ws();
            expect(':');
            v.object[key.string] = value();
            ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue
    array()
    {
        JsonValue v;
        v.type = JsonValue::Type::Array;
        expect('[');
        ws();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.array.push_back(value());
            ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    JsonValue
    string()
    {
        JsonValue v;
        v.type = JsonValue::Type::String;
        expect('"');
        while (pos_ < s_.size() && peek() != '"') {
            char c = s_[pos_++];
            if (c == '\\') {
                const char esc = s_[pos_++];
                switch (esc) {
                  case '"': v.string += '"'; break;
                  case '\\': v.string += '\\'; break;
                  case '/': v.string += '/'; break;
                  case 'n': v.string += '\n'; break;
                  case 'r': v.string += '\r'; break;
                  case 't': v.string += '\t'; break;
                  case 'b': v.string += '\b'; break;
                  case 'f': v.string += '\f'; break;
                  case 'u': {
                    if (pos_ + 4 > s_.size()) {
                        ADD_FAILURE() << "truncated \\u escape";
                        return v;
                    }
                    const unsigned cp = static_cast<unsigned>(
                        std::stoul(s_.substr(pos_, 4), nullptr, 16));
                    pos_ += 4;
                    // Test captures only use ASCII escapes.
                    v.string += static_cast<char>(cp);
                    break;
                  }
                  default:
                    ADD_FAILURE() << "bad escape \\" << esc;
                }
            } else {
                // Raw control characters are invalid inside strings.
                EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
                v.string += c;
            }
        }
        ++pos_;
        return v;
    }

    JsonValue
    number()
    {
        JsonValue v;
        v.type = JsonValue::Type::Number;
        const size_t start = pos_;
        while (pos_ < s_.size()
               && (std::isdigit(static_cast<unsigned char>(s_[pos_]))
                   || s_[pos_] == '-' || s_[pos_] == '+'
                   || s_[pos_] == '.' || s_[pos_] == 'e'
                   || s_[pos_] == 'E'))
            ++pos_;
        EXPECT_GT(pos_, start) << "expected a number";
        v.number = std::stod(s_.substr(start, pos_ - start));
        return v;
    }

    JsonValue
    boolean()
    {
        JsonValue v;
        v.type = JsonValue::Type::Bool;
        if (s_.compare(pos_, 4, "true") == 0) {
            v.boolean = true;
            pos_ += 4;
        } else if (s_.compare(pos_, 5, "false") == 0) {
            pos_ += 5;
        } else {
            ADD_FAILURE() << "bad boolean literal at offset " << pos_;
            pos_ = s_.size();
        }
        return v;
    }

    JsonValue
    null()
    {
        if (s_.compare(pos_, 4, "null") == 0) {
            pos_ += 4;
        } else {
            ADD_FAILURE() << "bad null literal at offset " << pos_;
            pos_ = s_.size();
        }
        return JsonValue{};
    }

    const std::string s_;
    size_t pos_ = 0;
};

} // namespace

// The ISSUE's exporter acceptance check: a capture from the Fig 18
// serving workload must be valid trace-event JSON with the structure
// Perfetto/chrome://tracing loads.
TEST(ChromeTrace, ServingCaptureParsesAsValidTraceEventJson)
{
    Recorder rec;
    workloads::llm::ServingConfig cfg;
    cfg.numRequests = 5;
    cfg.recorder = &rec;
    workloads::llm::ServingScheme scheme{
        core::AllocatorKind::PimMallocSw};
    const auto result = workloads::llm::runServing(scheme, cfg);
    ASSERT_GT(rec.spanCount(), 0u);

    std::ostringstream os;
    writeChromeTrace(os, rec, "fig18");
    const std::string text = os.str();

    JsonParser parser(text);
    const JsonValue root = parser.parse();
    ASSERT_EQ(root.type, JsonValue::Type::Object);
    EXPECT_EQ(root.at("displayTimeUnit").string, "ms");

    const JsonValue &events = root.at("traceEvents");
    ASSERT_EQ(events.type, JsonValue::Type::Array);
    ASSERT_FALSE(events.array.empty());

    size_t complete_events = 0;
    bool saw_process_name = false;
    bool saw_thread_name = false;
    double last_end_us = 0.0;
    for (const JsonValue &ev : events.array) {
        ASSERT_EQ(ev.type, JsonValue::Type::Object);
        // Every event needs name/ph/pid/tid.
        ASSERT_TRUE(ev.has("name"));
        ASSERT_TRUE(ev.has("ph"));
        ASSERT_TRUE(ev.has("pid"));
        ASSERT_TRUE(ev.has("tid"));
        const std::string &ph = ev.at("ph").string;
        if (ph == "M") {
            saw_process_name |= ev.at("name").string == "process_name";
            saw_thread_name |= ev.at("name").string == "thread_name";
            continue;
        }
        ASSERT_EQ(ph, "X"); // complete events only
        ++complete_events;
        EXPECT_GE(ev.at("ts").number, 0.0);
        EXPECT_GE(ev.at("dur").number, 0.0);
        last_end_us = std::max(
            last_end_us, ev.at("ts").number + ev.at("dur").number);
    }
    EXPECT_TRUE(saw_process_name);
    EXPECT_TRUE(saw_thread_name);
    EXPECT_EQ(complete_events, rec.spanCount());
    // Timestamps are microseconds: the capture ends at the serving
    // makespan.
    EXPECT_NEAR(last_end_us, result.makespanSec * 1e6,
                1e-6 * result.makespanSec * 1e6 + 1e-6);
}

TEST(Occupancy, ReportEmitsValidJson)
{
    Recorder rec;
    rec.setRankCount(2);
    rec.record(mkSpan(kHostLane, "h", 0.0, 1.0));
    rec.record(mkSpan(rankLane(0), "l", 0.5, 3.0));
    rec.record(mkSpan(rankLane(1), "l", 0.5, 1.5));

    std::ostringstream os;
    util::JsonWriter j(os);
    analyzeOccupancy(rec).writeJson(j);
    ASSERT_TRUE(j.complete());

    JsonParser parser(os.str());
    const JsonValue root = parser.parse();
    ASSERT_EQ(root.type, JsonValue::Type::Object);
    EXPECT_DOUBLE_EQ(root.at("makespan_seconds").number, 3.0);
    EXPECT_DOUBLE_EQ(root.at("busy_sum_seconds").number, 4.5);
    EXPECT_DOUBLE_EQ(root.at("overlap_seconds").number, 1.5);
    EXPECT_EQ(root.at("critical_lane").string, "rank0");
    const JsonValue &lanes = root.at("lanes");
    ASSERT_EQ(lanes.type, JsonValue::Type::Array);
    ASSERT_EQ(lanes.array.size(), 3u);
    EXPECT_EQ(lanes.array[0].at("name").string, "host");
    EXPECT_DOUBLE_EQ(lanes.array[1].at("busy_seconds").number, 2.5);
    EXPECT_EQ(lanes.array[1].at("straggler").type,
              JsonValue::Type::Bool);
}

TEST(ChromeTrace, MultiProcessCaptureAndEscaping)
{
    Recorder a;
    a.record(mkSpan(kHostLane, "with \"quotes\"\nand newline", 0.0, 1.0));
    Recorder b;
    b.record(mkSpan(kBusLane, "plain", 0.5, 1.5));

    std::ostringstream os;
    writeChromeTrace(os, {{"proc \"A\"", &a}, {"proc-B", &b}});

    JsonParser parser(os.str());
    const JsonValue root = parser.parse();
    const JsonValue &events = root.at("traceEvents");
    ASSERT_EQ(events.type, JsonValue::Type::Array);

    std::vector<double> pids;
    bool saw_escaped_name = false;
    for (const JsonValue &ev : events.array) {
        pids.push_back(ev.at("pid").number);
        if (ev.at("ph").string == "X"
            && ev.at("name").string == "with \"quotes\"\nand newline")
            saw_escaped_name = true;
    }
    EXPECT_TRUE(saw_escaped_name);
    EXPECT_NE(std::count(pids.begin(), pids.end(), 1.0), 0);
    EXPECT_NE(std::count(pids.begin(), pids.end(), 2.0), 0);
}

#ifdef PIM_TRACE_SIM
TEST(SimTracing, DpuRecordsPerTaskletSpans)
{
    core::PimSystem sys(core::singleDpuConfig());
    sim::Dpu &dpu = sys.dpu(0);
    Recorder rec;
    dpu.attachTraceRecorder(&rec, /*global_index=*/3);

    dpu.run(4, [](sim::Tasklet &t) { t.execute(100 + 50 * t.id()); });
    EXPECT_EQ(rec.spanCount(), 4u);

    const double makespan1 = dpu.lastElapsedSeconds();
    double max_end = 0.0;
    for (const Span &s : rec.spans()) {
        EXPECT_EQ(s.name, "tasklet");
        EXPECT_TRUE(isCustomLane(s.lane));
        EXPECT_GT(s.cycles, 0u);
        max_end = std::max(max_end, s.t1);
    }
    EXPECT_DOUBLE_EQ(max_end, makespan1);
    EXPECT_EQ(rec.laneName(rec.lanes()[0]).substr(0, 5), "dpu3/");

    // A second run stacks on the DPU-local timeline.
    dpu.run(2, [](sim::Tasklet &t) { t.execute(10); });
    EXPECT_EQ(rec.spanCount(), 6u);
    bool saw_second_run = false;
    for (const Span &s : rec.spans()) {
        if (s.t0 > 0.0) {
            EXPECT_DOUBLE_EQ(s.t0, makespan1);
            saw_second_run = true;
        }
    }
    EXPECT_TRUE(saw_second_run);

    // Detach stops recording.
    dpu.attachTraceRecorder(nullptr);
    dpu.run(1, [](sim::Tasklet &t) { t.execute(10); });
    EXPECT_EQ(rec.spanCount(), 6u);
}
#endif
