/**
 * @file
 * Tests for the dynamic-graph-update experiment driver (Fig 17): result
 * plumbing, determinism, and the paper's qualitative orderings on a
 * scaled-down dataset.
 */

#include <gtest/gtest.h>

#include "workloads/graph/update_driver.hh"

using namespace pim;
using namespace pim::workloads::graph;

namespace {

GraphUpdateConfig
smallCfg(StructureKind s, core::AllocatorKind a)
{
    GraphUpdateConfig cfg;
    cfg.structure = s;
    cfg.allocator = a;
    cfg.numDpus = 8;
    cfg.sampleDpus = 1;
    cfg.tasklets = 8;
    cfg.gen.numNodes = 2000;
    cfg.gen.numEdges = 9000;
    cfg.gen.seed = 5;
    return cfg;
}

} // namespace

TEST(UpdateDriver, ProducesThroughputAndBreakdown)
{
    const auto r = runGraphUpdate(smallCfg(
        StructureKind::LinkedList, core::AllocatorKind::PimMallocSw));
    EXPECT_GT(r.updateSeconds, 0.0);
    EXPECT_GT(r.millionEdgesPerSec, 0.0);
    EXPECT_EQ(r.updateEdgesTotal, 3000u);
    EXPECT_GT(r.breakdown.total(), 0u);
    EXPECT_GT(r.allocStats.mallocCalls, 0u);
    EXPECT_GT(r.metadataBytes, 0u);
    EXPECT_GT(r.fragmentation, 0.0);
}

TEST(UpdateDriver, StaticCsrNeedsNoAllocator)
{
    const auto r = runGraphUpdate(smallCfg(
        StructureKind::StaticCsr, core::AllocatorKind::PimMallocSw));
    EXPECT_GT(r.updateSeconds, 0.0);
    EXPECT_EQ(r.allocStats.mallocCalls, 0u);
}

TEST(UpdateDriver, Deterministic)
{
    const auto cfg = smallCfg(StructureKind::VarArray,
                              core::AllocatorKind::PimMallocHwSw);
    const auto a = runGraphUpdate(cfg);
    const auto b = runGraphUpdate(cfg);
    EXPECT_EQ(a.updateSeconds, b.updateSeconds);
    EXPECT_EQ(a.allocStats.mallocCalls, b.allocStats.mallocCalls);
    EXPECT_EQ(a.traffic.totalBytes(), b.traffic.totalBytes());
}

TEST(UpdateDriver, PimMallocBeatsStrawMan)
{
    // Fig 17(a): dynamic structures on PIM-malloc outperform the same
    // structures on the straw-man allocator.
    const auto straw = runGraphUpdate(smallCfg(
        StructureKind::LinkedList, core::AllocatorKind::StrawMan));
    const auto sw = runGraphUpdate(smallCfg(
        StructureKind::LinkedList, core::AllocatorKind::PimMallocSw));
    EXPECT_GT(sw.millionEdgesPerSec, straw.millionEdgesPerSec);
}

TEST(UpdateDriver, HwSwReducesMetadataTraffic)
{
    // Fig 17(d): the hardware buddy cache moves less metadata than the
    // coarse software buffer.
    const auto sw = runGraphUpdate(smallCfg(
        StructureKind::LinkedList, core::AllocatorKind::PimMallocSw));
    const auto hw = runGraphUpdate(smallCfg(
        StructureKind::LinkedList, core::AllocatorKind::PimMallocHwSw));
    EXPECT_LT(hw.traffic.metadataBytes(), sw.traffic.metadataBytes());
}

TEST(UpdateDriver, StrawManBusyWaitsMoreThanPimMalloc)
{
    // Fig 17(a) breakdown: the straw-man's single mutex causes heavy
    // busy-waiting; the thread cache removes most of it.
    const auto straw = runGraphUpdate(smallCfg(
        StructureKind::LinkedList, core::AllocatorKind::StrawMan));
    const auto sw = runGraphUpdate(smallCfg(
        StructureKind::LinkedList, core::AllocatorKind::PimMallocSw));
    EXPECT_GT(straw.breakdown.fraction(sim::CycleKind::BusyWait),
              sw.breakdown.fraction(sim::CycleKind::BusyWait));
}

TEST(UpdateDriver, TraceEventsRecorded)
{
    auto cfg = smallCfg(StructureKind::LinkedList,
                        core::AllocatorKind::PimMallocSw);
    cfg.traceEvents = true;
    const auto r = runGraphUpdate(cfg);
    EXPECT_EQ(r.allocStats.events.size(), r.allocStats.mallocCalls);
}

TEST(UpdateDriver, MaxUpdateEdgesTruncates)
{
    auto cfg = smallCfg(StructureKind::LinkedList,
                        core::AllocatorKind::PimMallocSw);
    cfg.maxUpdateEdges = 100;
    const auto r = runGraphUpdate(cfg);
    EXPECT_EQ(r.updateEdgesTotal, 100u);
}

TEST(UpdateDriver, Fig3StaticSlowdownGrowsWithGraphSize)
{
    // Fig 3(c): with a fixed number of new edges, static CSR update
    // time grows with the pre-update graph while the dynamic structure
    // stays flat.
    auto seconds = [](StructureKind s, uint32_t scale) {
        GraphUpdateConfig cfg =
            smallCfg(s, core::AllocatorKind::PimMallocSw);
        cfg.gen.numEdges = 3000u * scale;
        cfg.gen.numNodes = 1000u * scale;
        cfg.maxUpdateEdges = 200;
        return runGraphUpdate(cfg).updateSeconds;
    };
    const double static_small = seconds(StructureKind::StaticCsr, 1);
    const double static_large = seconds(StructureKind::StaticCsr, 4);
    const double dyn_small = seconds(StructureKind::LinkedList, 1);
    const double dyn_large = seconds(StructureKind::LinkedList, 4);
    EXPECT_GT(static_large, 1.5 * static_small);
    EXPECT_LT(dyn_large, 1.5 * dyn_small + 1e-6);
}
