/**
 * @file
 * Tests for the telemetry subsystem: Histogram bucket arithmetic,
 * quantile accuracy against a sorted-sample oracle, bit-exact merge
 * associativity, TimelineSampler binning and epoch rebasing through a
 * real CommandQueue, SloTracker attainment math, the zero-cost
 * contract (attaching a registry must not perturb simulated results),
 * and the PIM_SIM_THREADS snapshot-invariance contract
 * (snapshotString() is byte-identical for any worker count).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "core/command_queue.hh"
#include "core/pim_system.hh"
#include "telemetry/metrics.hh"
#include "telemetry/registry.hh"
#include "telemetry/sampler.hh"
#include "telemetry/slo.hh"
#include "util/json.hh"
#include "util/table.hh"
#include "workloads/graph/update_driver.hh"
#include "workloads/llm/serving_engine.hh"
#include "workloads/microbench.hh"

using namespace pim;
using telemetry::Histogram;

TEST(Histogram, BucketBoundariesAreExact)
{
    // Low edges map back to their own bucket; the high edge is the
    // next bucket's low edge, including across octave boundaries and
    // for negative octaves (sub-1.0 samples).
    for (int32_t idx : {-200, -65, -64, -63, -1, 0, 1, 62, 63, 64, 65,
                        640, 1000}) {
        const double lo = Histogram::bucketLow(idx);
        const double hi = Histogram::bucketHigh(idx);
        ASSERT_LT(lo, hi);
        EXPECT_EQ(Histogram::bucketIndex(lo), idx) << "idx " << idx;
        EXPECT_EQ(Histogram::bucketIndex(hi), idx + 1) << "idx " << idx;
        // Just below the high edge still lands in this bucket.
        const double below = std::nextafter(hi, 0.0);
        EXPECT_EQ(Histogram::bucketIndex(below), idx) << "idx " << idx;
        EXPECT_DOUBLE_EQ(hi, Histogram::bucketLow(idx + 1));
        const double mid = Histogram::bucketMid(idx);
        EXPECT_GT(mid, lo);
        EXPECT_LT(mid, hi);
    }
}

TEST(Histogram, EmptyAndSingleSample)
{
    Histogram h;
    EXPECT_TRUE(h.empty());
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);

    // One sample: every quantile is that exact sample (min == max
    // clamps the bucket midpoint).
    h.add(5.0);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_DOUBLE_EQ(h.min(), 5.0);
    EXPECT_DOUBLE_EQ(h.max(), 5.0);
    EXPECT_DOUBLE_EQ(h.p50(), 5.0);
    EXPECT_DOUBLE_EQ(h.p99(), 5.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 5.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 5.0);
}

TEST(Histogram, ZeroAndNegativeSamplesUseTheZeroBucket)
{
    Histogram h;
    h.add(0.0);
    h.add(-3.0);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.zeroCount(), 2u);
    EXPECT_TRUE(h.buckets().empty());
    EXPECT_DOUBLE_EQ(h.min(), -3.0);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);
    // Quantiles of an all-nonpositive histogram report 0 clamped into
    // [min, max] — here exactly the zero sample.
    EXPECT_DOUBLE_EQ(h.p50(), 0.0);
}

namespace {

/** Deterministic LCG so the oracle comparison never flakes. */
uint64_t
lcg(uint64_t &s)
{
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return s >> 33;
}

std::vector<double>
syntheticSamples(size_t n)
{
    std::vector<double> v;
    v.reserve(n);
    uint64_t s = 12345;
    for (size_t i = 0; i < n; ++i) {
        // Spread over ~10 octaves around 1e-6..1e-3 (latency-like).
        const double mant =
            1.0 + static_cast<double>(lcg(s) % 1000) / 1000.0;
        const int oct = static_cast<int>(lcg(s) % 10);
        v.push_back(std::ldexp(mant * 1e-6, oct));
    }
    return v;
}

} // namespace

TEST(Histogram, QuantilesTrackTheSortedSampleOracle)
{
    const std::vector<double> samples = syntheticSamples(5000);
    Histogram h;
    for (double v : samples)
        h.add(v);

    std::vector<double> sorted = samples;
    std::sort(sorted.begin(), sorted.end());
    for (double q : {0.50, 0.90, 0.95, 0.99}) {
        const size_t rank = std::max<size_t>(
            1, static_cast<size_t>(
                   std::ceil(q * static_cast<double>(sorted.size()))));
        const double oracle = sorted[rank - 1];
        const double got = h.quantile(q);
        // Bucket relative width is 2/kSub ≈ 3.1%; the midpoint is
        // within ~1.6% of any sample in the bucket.
        EXPECT_NEAR(got, oracle, 0.02 * oracle) << "q=" << q;
    }
    EXPECT_DOUBLE_EQ(h.min(), sorted.front());
    EXPECT_DOUBLE_EQ(h.max(), sorted.back());
}

TEST(Histogram, MergeIsBitExactlyAssociativeAndCommutative)
{
    const std::vector<double> samples = syntheticSamples(3000);
    Histogram parts[3];
    Histogram whole;
    for (size_t i = 0; i < samples.size(); ++i) {
        parts[i % 3].add(samples[i]);
        whole.add(samples[i]);
    }

    // ((a + b) + c)  vs  (c + (b + a))  vs  single-shot.
    Histogram left = parts[0];
    left.merge(parts[1]);
    left.merge(parts[2]);
    Histogram right = parts[2];
    Histogram ba = parts[1];
    ba.merge(parts[0]);
    right.merge(ba);

    for (const Histogram *m : {&left, &right}) {
        EXPECT_EQ(m->count(), whole.count());
        EXPECT_EQ(m->zeroCount(), whole.zeroCount());
        EXPECT_EQ(m->buckets(), whole.buckets());
        // Derived statistics are pure functions of that state, so they
        // are bit-equal, not just close.
        EXPECT_EQ(m->min(), whole.min());
        EXPECT_EQ(m->max(), whole.max());
        EXPECT_EQ(m->p50(), whole.p50());
        EXPECT_EQ(m->p99(), whole.p99());
        EXPECT_EQ(m->mean(), whole.mean());
    }

    // Merging an empty histogram is the identity.
    Histogram empty;
    Histogram copy = whole;
    copy.merge(empty);
    EXPECT_EQ(copy.buckets(), whole.buckets());
    empty.merge(whole);
    EXPECT_EQ(empty.buckets(), whole.buckets());
    EXPECT_EQ(empty.min(), whole.min());
}

TEST(TimelineSampler, UtilizationBinsSplitIntervalsExactly)
{
    telemetry::TimelineSampler s(0.1);
    const int sid = s.series("util:x");
    s.accumulate(sid, 0.05, 0.25); // 0.5 of bin0, all of bin1, 0.5 of 2

    const auto snap = s.snapshot();
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap[0].name, "util:x");
    EXPECT_FALSE(snap[0].level);
    ASSERT_EQ(snap[0].values.size(), 3u);
    EXPECT_NEAR(snap[0].values[0], 0.5, 1e-12);
    EXPECT_NEAR(snap[0].values[1], 1.0, 1e-12);
    EXPECT_NEAR(snap[0].values[2], 0.5, 1e-12);
}

TEST(TimelineSampler, LevelSeriesPrefixSumsAndPadding)
{
    telemetry::TimelineSampler s(0.1);
    const int depth = s.levelSeries("depth");
    const int util = s.series("util");
    s.eventDelta(depth, 0.05, +2);
    s.eventDelta(depth, 0.32, -1);
    s.accumulate(util, 0.0, 0.05);

    const auto snap = s.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    // Level series: value is the level at the end of each bin.
    const auto &d = snap[0];
    EXPECT_TRUE(d.level);
    ASSERT_EQ(d.values.size(), 4u);
    EXPECT_DOUBLE_EQ(d.values[0], 2.0);
    EXPECT_DOUBLE_EQ(d.values[1], 2.0);
    EXPECT_DOUBLE_EQ(d.values[2], 2.0);
    EXPECT_DOUBLE_EQ(d.values[3], 1.0);
    // The short utilization series is padded to the common length.
    ASSERT_EQ(snap[1].values.size(), 4u);
    EXPECT_DOUBLE_EQ(snap[1].values[1], 0.0);
}

TEST(SloTracker, AttainmentMath)
{
    telemetry::SloTracker slo;
    EXPECT_TRUE(slo.empty());

    // Observations of undeclared metrics are dropped.
    slo.observe("ghost", 99.0);
    EXPECT_FALSE(slo.tracks("ghost"));

    slo.declare("lat", 1.0);
    EXPECT_TRUE(slo.tracks("lat"));
    EXPECT_DOUBLE_EQ(slo.score("lat").attainmentPct(), 100.0); // no samples

    slo.observe("lat", 0.5); // within
    slo.observe("lat", 1.0); // on target: not a violation
    slo.observe("lat", 2.0); // violation, excursion 2x
    const telemetry::SloScore &sc = slo.score("lat");
    EXPECT_EQ(sc.samples, 3u);
    EXPECT_EQ(sc.violations, 1u);
    EXPECT_DOUBLE_EQ(sc.target, 1.0);
    EXPECT_NEAR(sc.attainmentPct(), 200.0 / 3.0, 1e-9);
    EXPECT_DOUBLE_EQ(sc.worstExcursion, 2.0);
}

namespace {

core::PimSystemConfig
smallSystem()
{
    core::PimSystemConfig cfg;
    cfg.numDpus = 128; // 2 ranks
    cfg.sampleDpus = 4;
    cfg.simThreads = 2;
    return cfg;
}

} // namespace

TEST(QueueMetrics, CountersAndSamplerFromTheDrainFold)
{
    core::PimSystem sys(smallSystem());
    core::CommandQueue q(sys);
    telemetry::Registry met(1e-6); // fine cadence: transfers are short
    q.attachMetrics(&met);
    EXPECT_EQ(q.metricsRegistry(), &met);

    const uint64_t bytes = 1 << 16;
    q.memcpyAsync(sys.all(), bytes, core::CopyDirection::HostToPim);
    const double makespan1 = q.sync();
    ASSERT_GT(makespan1, 0.0);

    EXPECT_EQ(met.counter("queue.commands_issued").value(), 1u);
    EXPECT_EQ(met.counter("queue.commands_resolved").value(), 1u);
    EXPECT_EQ(met.counter("queue.commands_failed").value(), 0u);
    EXPECT_EQ(met.counter("queue.bus_bytes").value(),
              bytes * sys.numDpus());

    // A single copy saturates the bus for the whole makespan; the
    // binned series conserves busy time exactly.
    auto busBusy = [&]() {
        for (const auto &s : met.sampler().snapshot()) {
            if (s.name != "util:bus")
                continue;
            double busy = 0.0;
            for (double v : s.values)
                busy += v * met.sampler().cadence();
            return std::pair{busy, s.values.size()};
        }
        return std::pair{0.0, size_t{0}};
    };
    const auto [busy1, bins1] = busBusy();
    EXPECT_NEAR(busy1, makespan1, 1e-9 * makespan1);
    ASSERT_GT(bins1, 0u);

    // resetTimeline() rebases the epoch: the second copy's samples land
    // in new bins after the first epoch instead of overwriting it.
    q.resetTimeline();
    q.memcpyAsync(sys.all(), bytes, core::CopyDirection::HostToPim);
    q.sync();
    const auto [busy2, bins2] = busBusy();
    EXPECT_NEAR(busy2, 2.0 * makespan1, 1e-9 * makespan1);
    EXPECT_GE(bins2, bins1 + bins1 / 2);

    EXPECT_EQ(met.counter("queue.commands_issued").value(), 2u);
    EXPECT_TRUE(met.sampler().has("depth:queue"));
}

TEST(ZeroCost, AttachingARegistryDoesNotPerturbTheMicrobench)
{
    workloads::MicrobenchConfig cfg;
    cfg.allocator = core::AllocatorKind::PimMallocSw;
    cfg.tasklets = 16;
    cfg.allocsPerTasklet = 32;
    cfg.allocSize = 32;

    const auto plain = workloads::runMicrobench(cfg);
    telemetry::Registry met;
    cfg.metrics = &met;
    const auto metered = workloads::runMicrobench(cfg);

    // The simulated outcome is bit-identical with and without the
    // registry attached — metrics are observation, never actors.
    EXPECT_EQ(metered.elapsedCycles, plain.elapsedCycles);
    EXPECT_EQ(metered.avgLatencyUs, plain.avgLatencyUs);
    EXPECT_EQ(metered.mutexStats.acquisitions,
              plain.mutexStats.acquisitions);
    EXPECT_EQ(met.counter("mutex.acquisitions").value(),
              plain.mutexStats.acquisitions);
    EXPECT_GT(met.counter("sim.cycles").value(), 0u);
}

TEST(ZeroCost, AttachingARegistryDoesNotPerturbTheGraphRun)
{
    workloads::graph::GraphUpdateConfig cfg;
    cfg.numDpus = 128;
    cfg.sampleDpus = 2;
    cfg.gen.numNodes = 2000;
    cfg.gen.numEdges = 10000;
    cfg.updateRounds = 3;
    cfg.shipUpdates = true;
    cfg.simThreads = 2;

    const auto plain = workloads::graph::runGraphUpdate(cfg);
    telemetry::Registry met;
    cfg.metrics = &met;
    cfg.sloRoundSec = 0.5;
    const auto metered = workloads::graph::runGraphUpdate(cfg);

    EXPECT_EQ(metered.updateSeconds, plain.updateSeconds);
    EXPECT_EQ(metered.wallSeconds, plain.wallSeconds);
    EXPECT_EQ(metered.millionEdgesPerSec, plain.millionEdgesPerSec);
    EXPECT_EQ(met.histogram("graph.round_sec").count(),
              uint64_t{cfg.updateRounds});
    EXPECT_EQ(met.slo().score("graph.round").samples,
              uint64_t{cfg.updateRounds});
}

namespace {

std::string
graphSnapshotAtThreads(unsigned threads)
{
    workloads::graph::GraphUpdateConfig cfg;
    cfg.numDpus = 128;
    cfg.sampleDpus = 2;
    cfg.gen.numNodes = 2000;
    cfg.gen.numEdges = 10000;
    cfg.updateRounds = 3;
    cfg.shipUpdates = true;
    cfg.roundIntervalSec = 0.001;
    cfg.sloRoundSec = 0.5;
    cfg.simThreads = threads;
    telemetry::Registry met;
    cfg.metrics = &met;
    workloads::graph::runGraphUpdate(cfg);
    return met.snapshotString();
}

std::string
servingSnapshotAtThreads(unsigned threads)
{
    workloads::llm::ServingEngineConfig ecfg;
    ecfg.base.numDpus = 256;
    ecfg.base.numRequests = 6;
    ecfg.base.sloTtftSec = 0.5;
    ecfg.base.sloTpotSec = 0.05;
    ecfg.mode = workloads::llm::ServingMode::Disaggregated;
    ecfg.simThreads = threads;
    telemetry::Registry met;
    ecfg.base.metrics = &met;
    const workloads::llm::ServingScheme scheme{
        core::AllocatorKind::PimMallocHwSw};
    workloads::llm::ServingEngine(scheme, ecfg).run();
    return met.snapshotString();
}

} // namespace

TEST(ThreadInvariance, GraphSnapshotIsByteIdenticalAcrossWorkerCounts)
{
    const std::string one = graphSnapshotAtThreads(1);
    EXPECT_FALSE(one.empty());
    EXPECT_EQ(graphSnapshotAtThreads(4), one);
    EXPECT_EQ(graphSnapshotAtThreads(7), one);
}

TEST(ThreadInvariance, ServingSnapshotIsByteIdenticalAcrossWorkerCounts)
{
    const std::string one = servingSnapshotAtThreads(1);
    EXPECT_FALSE(one.empty());
    EXPECT_EQ(servingSnapshotAtThreads(4), one);
    EXPECT_EQ(servingSnapshotAtThreads(7), one);
}

TEST(HostWallGauges, ExcludedFromSnapshotButExportedToJsonAndTables)
{
    telemetry::Registry met;
    met.gauge("sim.value").set(1.5);
    met.hostGauge("queue.drain.phase1_sec").set(0.125);

    // Host-wall values vary run to run, so the deterministic snapshot
    // (the thread-invariance contract) must not mention them.
    const std::string snap = met.snapshotString();
    EXPECT_NE(snap.find("sim.value"), std::string::npos);
    EXPECT_EQ(snap.find("phase1_sec"), std::string::npos);
    EXPECT_EQ(snap.find("host_wall"), std::string::npos);

    // The JSON export carries them under a dedicated section...
    std::ostringstream os;
    util::JsonWriter j(os);
    met.writeJson(j);
    EXPECT_TRUE(j.complete());
    EXPECT_NE(os.str().find("\"host_wall\""), std::string::npos);
    EXPECT_NE(os.str().find("\"queue.drain.phase1_sec\""),
              std::string::npos);

    // ...and the table rendering gives them their own section too.
    std::ostringstream ts;
    for (const auto &t : met.tables("t"))
        t.print(ts);
    EXPECT_NE(ts.str().find("Host-wall metrics"), std::string::npos);
    EXPECT_NE(ts.str().find("queue.drain.phase1_sec"), std::string::npos);

    // Repeated lookups hit the same gauge.
    met.hostGauge("queue.drain.phase1_sec").set(0.25);
    EXPECT_DOUBLE_EQ(
        met.hostGauges().at("queue.drain.phase1_sec").value(), 0.25);
}

TEST(HostWallGauges, DrainFoldPublishesPhaseWallsWhenAttached)
{
    core::PimSystem sys(smallSystem());
    core::CommandQueue q(sys);
    telemetry::Registry met;
    q.attachMetrics(&met);
    std::atomic<uint64_t> work{0};
    q.launch(sys.all(), 1,
             [&](sim::Tasklet &t, unsigned) { t.execute(64); ++work; });
    q.sync();
    EXPECT_GT(work.load(), 0u);
    EXPECT_GT(met.hostGauges().at("queue.drain.phase1_sec").value(), 0.0);
    EXPECT_GE(met.hostGauges().at("queue.drain.phase2_sec").value(), 0.0);
    EXPECT_GT(met.hostGauges().at("queue.drain.commands_per_sec").value(),
              0.0);
    // Detached queues publish nothing: zero-cost when unattached.
    core::CommandQueue bare(sys);
    bare.launch(sys.all(), 1,
                [&](sim::Tasklet &t, unsigned) { t.execute(64); });
    bare.sync();
    EXPECT_EQ(met.hostGauges().size(), 3u);
}
