/**
 * @file
 * Unit tests for RunningStat, Percentile, Histogram, and geomean.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.hh"

using namespace pim::util;

TEST(RunningStat, EmptyDefaults)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MeanMinMax)
{
    RunningStat s;
    for (double x : {3.0, 1.0, 4.0, 1.0, 5.0})
        s.add(x);
    EXPECT_EQ(s.count(), 5u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.8);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
    EXPECT_NEAR(s.sum(), 14.0, 1e-9);
}

TEST(RunningStat, Variance)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_NEAR(s.variance(), 4.0, 1e-9); // classic example, sigma^2=4
    EXPECT_NEAR(s.stddev(), 2.0, 1e-9);
}

TEST(RunningStat, MergeMatchesSequential)
{
    RunningStat a, b, all;
    for (int i = 0; i < 50; ++i) {
        const double x = std::sin(i) * 10;
        (i % 2 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_EQ(a.min(), all.min());
    EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty)
{
    RunningStat a, empty;
    a.add(1.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 1u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 1u);
    EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(Percentile, EmptyReturnsZero)
{
    Percentile p;
    EXPECT_EQ(p.p50(), 0.0);
    EXPECT_EQ(p.mean(), 0.0);
}

TEST(Percentile, SingleSample)
{
    Percentile p;
    p.add(7.0);
    EXPECT_DOUBLE_EQ(p.p50(), 7.0);
    EXPECT_DOUBLE_EQ(p.p99(), 7.0);
    EXPECT_DOUBLE_EQ(p.percentile(0), 7.0);
    EXPECT_DOUBLE_EQ(p.percentile(100), 7.0);
}

TEST(Percentile, KnownQuartiles)
{
    Percentile p;
    for (int i = 1; i <= 101; ++i)
        p.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(p.p50(), 51.0);
    EXPECT_DOUBLE_EQ(p.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(p.percentile(100), 101.0);
    EXPECT_DOUBLE_EQ(p.percentile(25), 26.0);
}

TEST(Percentile, InterpolatesBetweenRanks)
{
    Percentile p;
    p.add(0.0);
    p.add(10.0);
    EXPECT_DOUBLE_EQ(p.p50(), 5.0);
    EXPECT_DOUBLE_EQ(p.percentile(25), 2.5);
}

TEST(Percentile, QueryThenAddThenQuery)
{
    Percentile p;
    p.add(1.0);
    p.add(3.0);
    EXPECT_DOUBLE_EQ(p.p50(), 2.0);
    p.add(100.0);
    EXPECT_DOUBLE_EQ(p.p50(), 3.0); // re-sorts after mutation
}

TEST(Percentile, MeanAndCount)
{
    Percentile p;
    for (double x : {1.0, 2.0, 3.0})
        p.add(x);
    EXPECT_EQ(p.count(), 3u);
    EXPECT_DOUBLE_EQ(p.mean(), 2.0);
}

TEST(Histogram, BinningAndClamping)
{
    Histogram h(10, 0.0, 100.0);
    h.add(5.0);    // bin 0
    h.add(95.0);   // bin 9
    h.add(-50.0);  // clamps to bin 0
    h.add(1000.0); // clamps to bin 9
    EXPECT_EQ(h.bin(0), 2u);
    EXPECT_EQ(h.bin(9), 2u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, BinLowEdges)
{
    Histogram h(4, 0.0, 8.0);
    EXPECT_DOUBLE_EQ(h.binLow(0), 0.0);
    EXPECT_DOUBLE_EQ(h.binLow(3), 6.0);
}

TEST(Geomean, KnownValues)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_NEAR(geomean({4.0, 9.0}), 6.0, 1e-9);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-9);
}
