/**
 * @file
 * Unit tests for the deterministic RNG: reproducibility, range
 * contracts, distribution sanity, and fork independence.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/rng.hh"

using pim::util::Rng;

TEST(Rng, SameSeedSameStream)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformIntRespectsBound)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.uniformInt(17), 17u);
}

TEST(Rng, UniformIntBoundOneAlwaysZero)
{
    Rng r(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.uniformInt(1), 0u);
}

TEST(Rng, UniformRangeInclusive)
{
    Rng r(9);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const uint64_t v = r.uniformRange(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u); // every value hit
}

TEST(Rng, UniformRealInUnitInterval)
{
    Rng r(11);
    for (int i = 0; i < 10000; ++i) {
        const double x = r.uniformReal();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Rng, UniformRealMeanNearHalf)
{
    Rng r(13);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.uniformReal();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BernoulliFrequency)
{
    Rng r(17);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += r.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMoments)
{
    Rng r(19);
    double sum = 0, sq = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double x = r.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, LogNormalMedian)
{
    Rng r(23);
    const int n = 100001;
    std::vector<double> xs(n);
    for (auto &x : xs)
        x = r.logNormal(2.0, 0.5);
    std::sort(xs.begin(), xs.end());
    // Median of lognormal(mu, sigma) is exp(mu).
    EXPECT_NEAR(xs[n / 2], std::exp(2.0), 0.2);
}

TEST(Rng, ExponentialMean)
{
    Rng r(29);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.exponential(4.0);
    EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, ZipfInRange)
{
    Rng r(31);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.zipf(100, 0.8), 100u);
}

TEST(Rng, ZipfIsSkewed)
{
    Rng r(37);
    const int n = 100000;
    int low = 0; // rank 0..9
    for (int i = 0; i < n; ++i)
        low += r.zipf(1000, 1.1) < 10;
    // Under uniform the first 10 of 1000 ranks would get ~1%.
    EXPECT_GT(static_cast<double>(low) / n, 0.20);
}

TEST(Rng, ZipfSingleElement)
{
    Rng r(41);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(r.zipf(1, 1.0), 0u);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng r(43);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = v;
    r.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleEmptyAndSingle)
{
    Rng r(47);
    std::vector<int> empty;
    r.shuffle(empty);
    EXPECT_TRUE(empty.empty());
    std::vector<int> one{42};
    r.shuffle(one);
    EXPECT_EQ(one[0], 42);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(51);
    Rng child = a.fork();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == child.next();
    EXPECT_LT(same, 3);
}
