/**
 * @file
 * Tests for the simulated spin lock: exclusion, busy-wait accounting,
 * contention statistics, and tryLock semantics.
 */

#include <gtest/gtest.h>

#include "sim/dpu.hh"
#include "sim/mutex.hh"

using namespace pim::sim;

TEST(Mutex, UncontendedLockUnlock)
{
    Dpu dpu;
    SimMutex m;
    dpu.run(1, [&](Tasklet &t) {
        m.lock(t);
        EXPECT_TRUE(m.held());
        m.unlock(t);
        EXPECT_FALSE(m.held());
    });
    EXPECT_EQ(m.acquisitions(), 1u);
    EXPECT_EQ(m.contendedAcquisitions(), 0u);
}

TEST(Mutex, MutualExclusion)
{
    Dpu dpu;
    SimMutex m;
    int inside = 0;
    int max_inside = 0;
    dpu.run(8, [&](Tasklet &t) {
        for (int i = 0; i < 5; ++i) {
            m.lock(t);
            ++inside;
            max_inside = std::max(max_inside, inside);
            t.execute(20); // critical section
            --inside;
            m.unlock(t);
            t.execute(5);
        }
    });
    EXPECT_EQ(max_inside, 1);
    EXPECT_EQ(m.acquisitions(), 40u);
}

TEST(Mutex, ContentionProducesBusyWait)
{
    Dpu dpu;
    SimMutex m;
    dpu.run(8, [&](Tasklet &t) {
        m.lock(t);
        t.execute(200); // long critical section forces spinning
        m.unlock(t);
    });
    EXPECT_GT(m.contendedAcquisitions(), 0u);
    EXPECT_GT(dpu.lastBreakdown().of(CycleKind::BusyWait), 0u);
}

TEST(Mutex, NoContentionNoBusyWait)
{
    Dpu dpu;
    SimMutex m;
    dpu.run(1, [&](Tasklet &t) {
        for (int i = 0; i < 10; ++i) {
            m.lock(t);
            t.execute(10);
            m.unlock(t);
        }
    });
    EXPECT_EQ(dpu.lastBreakdown().of(CycleKind::BusyWait), 0u);
}

TEST(Mutex, TryLock)
{
    Dpu dpu;
    SimMutex m;
    dpu.run(1, [&](Tasklet &t) {
        EXPECT_TRUE(m.tryLock(t));
        EXPECT_FALSE(m.tryLock(t)); // already held
        m.unlock(t);
        EXPECT_TRUE(m.tryLock(t));
        m.unlock(t);
    });
}

TEST(Mutex, BusyWaitGrowsWithThreads)
{
    auto busy_wait = [](unsigned tasklets) {
        Dpu dpu;
        SimMutex m;
        dpu.run(tasklets, [&](Tasklet &t) {
            for (int i = 0; i < 4; ++i) {
                m.lock(t);
                t.execute(100);
                m.unlock(t);
            }
        });
        return dpu.lastBreakdown().of(CycleKind::BusyWait);
    };
    EXPECT_GT(busy_wait(16), busy_wait(4));
    EXPECT_GT(busy_wait(4), busy_wait(1));
}

TEST(MutexDeath, UnlockFreePanics)
{
    Dpu dpu;
    SimMutex m;
    EXPECT_DEATH(dpu.run(1, [&](Tasklet &t) { m.unlock(t); }),
                 "unlock of a free mutex");
}
