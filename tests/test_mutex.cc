/**
 * @file
 * Tests for the simulated spin lock: exclusion, busy-wait accounting,
 * contention statistics, and tryLock semantics.
 */

#include <gtest/gtest.h>

#include "sim/dpu.hh"
#include "sim/mutex.hh"

using namespace pim::sim;

TEST(Mutex, UncontendedLockUnlock)
{
    Dpu dpu;
    SimMutex m;
    dpu.run(1, [&](Tasklet &t) {
        m.lock(t);
        EXPECT_TRUE(m.held());
        m.unlock(t);
        EXPECT_FALSE(m.held());
    });
    EXPECT_EQ(m.acquisitions(), 1u);
    EXPECT_EQ(m.contendedAcquisitions(), 0u);
}

TEST(Mutex, MutualExclusion)
{
    Dpu dpu;
    SimMutex m;
    int inside = 0;
    int max_inside = 0;
    dpu.run(8, [&](Tasklet &t) {
        for (int i = 0; i < 5; ++i) {
            m.lock(t);
            ++inside;
            max_inside = std::max(max_inside, inside);
            t.execute(20); // critical section
            --inside;
            m.unlock(t);
            t.execute(5);
        }
    });
    EXPECT_EQ(max_inside, 1);
    EXPECT_EQ(m.acquisitions(), 40u);
}

TEST(Mutex, ContentionProducesBusyWait)
{
    Dpu dpu;
    SimMutex m;
    dpu.run(8, [&](Tasklet &t) {
        m.lock(t);
        t.execute(200); // long critical section forces spinning
        m.unlock(t);
    });
    EXPECT_GT(m.contendedAcquisitions(), 0u);
    EXPECT_GT(dpu.lastBreakdown().of(CycleKind::BusyWait), 0u);
}

TEST(Mutex, NoContentionNoBusyWait)
{
    Dpu dpu;
    SimMutex m;
    dpu.run(1, [&](Tasklet &t) {
        for (int i = 0; i < 10; ++i) {
            m.lock(t);
            t.execute(10);
            m.unlock(t);
        }
    });
    EXPECT_EQ(dpu.lastBreakdown().of(CycleKind::BusyWait), 0u);
}

TEST(Mutex, TryLock)
{
    Dpu dpu;
    SimMutex m;
    dpu.run(1, [&](Tasklet &t) {
        EXPECT_TRUE(m.tryLock(t));
        EXPECT_FALSE(m.tryLock(t)); // already held
        m.unlock(t);
        EXPECT_TRUE(m.tryLock(t));
        m.unlock(t);
    });
}

TEST(Mutex, BusyWaitGrowsWithThreads)
{
    auto busy_wait = [](unsigned tasklets) {
        Dpu dpu;
        SimMutex m;
        dpu.run(tasklets, [&](Tasklet &t) {
            for (int i = 0; i < 4; ++i) {
                m.lock(t);
                t.execute(100);
                m.unlock(t);
            }
        });
        return dpu.lastBreakdown().of(CycleKind::BusyWait);
    };
    EXPECT_GT(busy_wait(16), busy_wait(4));
    EXPECT_GT(busy_wait(4), busy_wait(1));
}

TEST(MutexDeath, UnlockFreePanics)
{
    Dpu dpu;
    SimMutex m;
    EXPECT_DEATH(dpu.run(1, [&](Tasklet &t) { m.unlock(t); }),
                 "unlock of a free mutex");
}

TEST(MutexQueue, MutualExclusionAndParkStats)
{
    Dpu dpu;
    SimMutex m(SimMutex::Mode::Queue);
    EXPECT_EQ(m.mode(), SimMutex::Mode::Queue);
    int inside = 0;
    int max_inside = 0;
    dpu.run(8, [&](Tasklet &t) {
        for (int i = 0; i < 5; ++i) {
            m.lock(t);
            ++inside;
            max_inside = std::max(max_inside, inside);
            t.execute(20);
            --inside;
            m.unlock(t);
            t.execute(5);
        }
    });
    EXPECT_EQ(max_inside, 1);
    EXPECT_EQ(m.acquisitions(), 40u);
    EXPECT_FALSE(m.held());
    // The contended portion of the workload must exercise parking, and
    // every park episode must be balanced by a wake.
    EXPECT_GT(m.parkedCount(), 0u);
    EXPECT_EQ(m.parkedCount(), m.wokenCount());
    EXPECT_GE(m.elidedSpinEvents(), m.parkedCount());
}

TEST(MutexQueue, BusyWaitMatchesSpinExactly)
{
    // Per-tasklet breakdown equivalence on a contended workload — the
    // system-level contract is in test_sim_determinism; this is the
    // narrow mutex-only version.
    auto run = [](SimMutex::Mode mode) {
        Dpu dpu;
        SimMutex m(mode);
        dpu.run(16, [&](Tasklet &t) {
            for (int i = 0; i < 4; ++i) {
                m.lock(t);
                t.execute(100 + t.id() % 3);
                m.unlock(t);
                t.execute(9);
            }
        });
        return std::pair{dpu.lastElapsedCycles(),
                         dpu.lastBreakdown().of(CycleKind::BusyWait)};
    };
    EXPECT_EQ(run(SimMutex::Mode::Spin), run(SimMutex::Mode::Queue));
}

TEST(MutexQueue, UncontendedNeverParks)
{
    Dpu dpu;
    SimMutex m(SimMutex::Mode::Queue);
    dpu.run(1, [&](Tasklet &t) {
        for (int i = 0; i < 10; ++i) {
            m.lock(t);
            t.execute(10);
            m.unlock(t);
        }
    });
    EXPECT_EQ(m.parkedCount(), 0u);
    EXPECT_EQ(m.elidedSpinEvents(), 0u);
    EXPECT_EQ(dpu.lastBreakdown().of(CycleKind::BusyWait), 0u);
}

TEST(MutexQueue, StatsSnapshotAndMerge)
{
    Dpu dpu;
    SimMutex m(SimMutex::Mode::Queue);
    dpu.run(4, [&](Tasklet &t) {
        m.lock(t);
        t.execute(50);
        m.unlock(t);
    });
    const SimMutexStats s = m.statsSnapshot();
    EXPECT_EQ(s.acquisitions, m.acquisitions());
    EXPECT_EQ(s.contended, m.contendedAcquisitions());
    EXPECT_EQ(s.parked, m.parkedCount());
    EXPECT_EQ(s.woken, m.wokenCount());
    EXPECT_EQ(s.elidedSpinEvents, m.elidedSpinEvents());

    SimMutexStats sum = s;
    sum.merge(s);
    EXPECT_EQ(sum.acquisitions, 2 * s.acquisitions);
    EXPECT_EQ(sum.elidedSpinEvents, 2 * s.elidedSpinEvents);
}

TEST(MutexQueueDeath, LeakedLockIsDeadlockFatal)
{
    // A tasklet that finishes while holding the lock strands every
    // parked waiter; the scheduler must fail loudly, not hang or
    // silently drop tasklets.
    Dpu dpu;
    SimMutex m(SimMutex::Mode::Queue);
    EXPECT_DEATH(dpu.run(2, [&](Tasklet &t) {
        m.lock(t); // tasklet 0 wins and never unlocks
        t.execute(10);
    }), "deadlock");
}

TEST(MutexQueueDeath, AllTaskletsParkedIsFatal)
{
    Dpu dpu;
    SimMutex m(SimMutex::Mode::Queue);
    EXPECT_DEATH(dpu.run(4, [&](Tasklet &t) {
        if (t.id() == 0) {
            m.lock(t);
            t.execute(5);
            // finish holding the lock: the other three all park
        } else {
            t.execute(1);
            m.lock(t);
            m.unlock(t);
        }
    }), "deadlock");
}
