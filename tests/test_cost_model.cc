/**
 * @file
 * Property tests over the simulator's cost model: allocation latency
 * must respond monotonically to the hardware parameters the paper's
 * sensitivity arguments rely on (pipeline interval, DMA cost, clock,
 * buddy-cache latency), across allocator design points.
 */

#include <gtest/gtest.h>

#include "workloads/microbench.hh"

using namespace pim;
using namespace pim::workloads;

namespace {

MicrobenchResult
runWith(core::AllocatorKind kind, const sim::DpuConfig &dcfg)
{
    MicrobenchConfig cfg;
    cfg.allocator = kind;
    cfg.tasklets = 4;
    cfg.allocsPerTasklet = 32;
    cfg.allocSize = 4096; // exercises the buddy backend
    cfg.overrides.heapBytes = 4u << 20;
    cfg.dpuCfg = dcfg;
    return runMicrobench(cfg);
}

} // namespace

/** Sweep over the main allocator kinds. */
class CostModelSweep
    : public ::testing::TestWithParam<core::AllocatorKind>
{
};

TEST_P(CostModelSweep, SlowerDmaNeverSpeedsUpAllocation)
{
    sim::DpuConfig fast, slow;
    fast.dmaCyclesPerByte = 0.25;
    slow.dmaCyclesPerByte = 2.0;
    slow.dmaSetupCycles = 4 * fast.dmaSetupCycles;
    EXPECT_LE(runWith(GetParam(), fast).elapsedCycles,
              runWith(GetParam(), slow).elapsedCycles);
}

TEST_P(CostModelSweep, DeeperPipelineIntervalSlowsSingleThread)
{
    sim::DpuConfig shallow, deep;
    shallow.pipelineIssueInterval = 6;
    deep.pipelineIssueInterval = 22;
    EXPECT_LT(runWith(GetParam(), shallow).elapsedCycles,
              runWith(GetParam(), deep).elapsedCycles);
}

TEST_P(CostModelSweep, ClockOnlyChangesWallClockNotCycles)
{
    sim::DpuConfig slow_clock, fast_clock;
    slow_clock.clockGhz = 0.35;
    fast_clock.clockGhz = 0.70;
    const auto a = runWith(GetParam(), slow_clock);
    const auto b = runWith(GetParam(), fast_clock);
    // The paper's Section VII: a faster DRAM process shrinks absolute
    // pimMalloc latency proportionally but not the cycle count.
    EXPECT_EQ(a.elapsedCycles, b.elapsedCycles);
    EXPECT_NEAR(a.avgLatencyUs, 2.0 * b.avgLatencyUs,
                a.avgLatencyUs * 0.01);
}

INSTANTIATE_TEST_SUITE_P(MainKinds, CostModelSweep,
                         ::testing::ValuesIn(core::kMainKinds));

TEST(CostModel, BuddyCacheLatencyMatters)
{
    sim::DpuConfig one_cycle, ten_cycle;
    one_cycle.buddyCache.accessCycles = 1;
    ten_cycle.buddyCache.accessCycles = 10;
    EXPECT_LT(runWith(core::AllocatorKind::PimMallocHwSw, one_cycle)
                  .elapsedCycles,
              runWith(core::AllocatorKind::PimMallocHwSw, ten_cycle)
                  .elapsedCycles);
}

TEST(CostModel, HwCacheBeatsSwBufferOverDmaCostRange)
{
    // The HW/SW advantage must hold across a wide range of DMA costs —
    // it stems from moving fewer bytes, not from a tuned constant.
    for (double cpb : {0.25, 0.5, 1.0, 2.0}) {
        sim::DpuConfig dcfg;
        dcfg.dmaCyclesPerByte = cpb;
        const auto sw =
            runWith(core::AllocatorKind::PimMallocSw, dcfg);
        const auto hw =
            runWith(core::AllocatorKind::PimMallocHwSw, dcfg);
        EXPECT_LT(hw.elapsedCycles, sw.elapsedCycles)
            << "dmaCyclesPerByte=" << cpb;
    }
}
