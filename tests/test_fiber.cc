/**
 * @file
 * Unit tests for the fiber primitive, run against whichever backend is
 * compiled in (asm or ucontext; CI builds a leg with each): basic
 * resume/yield, nesting, direct switchTo chains, stack-heavy frames,
 * and a many-fiber stress loop. The death tests cover reuse of a
 * finished fiber.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/fiber.hh"

using pim::sim::Fiber;

TEST(Fiber, RunsToCompletionOnFirstResume)
{
    int ran = 0;
    Fiber f([&] { ran = 1; });
    EXPECT_FALSE(f.finished());
    f.resume();
    EXPECT_TRUE(f.finished());
    EXPECT_EQ(ran, 1);
}

TEST(Fiber, YieldSuspendsAndResumes)
{
    std::vector<int> order;
    Fiber f([&] {
        order.push_back(1);
        Fiber::yield();
        order.push_back(3);
    });
    f.resume();
    order.push_back(2);
    EXPECT_FALSE(f.finished());
    f.resume();
    EXPECT_TRUE(f.finished());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Fiber, ManyYields)
{
    int count = 0;
    Fiber f([&] {
        for (int i = 0; i < 100; ++i) {
            ++count;
            Fiber::yield();
        }
    });
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(f.finished());
        f.resume();
    }
    f.resume(); // final resume lets the body return
    EXPECT_TRUE(f.finished());
    EXPECT_EQ(count, 100);
}

TEST(Fiber, NestedFibers)
{
    std::vector<int> order;
    Fiber inner([&] {
        order.push_back(2);
        Fiber::yield();
        order.push_back(4);
    });
    Fiber outer([&] {
        order.push_back(1);
        inner.resume(); // runs inner until its yield
        order.push_back(3);
        inner.resume();
        order.push_back(5);
    });
    outer.resume();
    EXPECT_TRUE(outer.finished());
    EXPECT_TRUE(inner.finished());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Fiber, LocalStateSurvivesYield)
{
    int observed = 0;
    Fiber f([&] {
        int local = 7;
        Fiber::yield();
        local += 35;
        observed = local;
    });
    f.resume();
    f.resume();
    EXPECT_EQ(observed, 42);
}

TEST(Fiber, BackendNameIsKnown)
{
    const std::string name = Fiber::backendName();
    EXPECT_TRUE(name == "asm-x86_64" || name == "asm-aarch64"
                || name == "ucontext")
        << name;
}

TEST(Fiber, SwitchToTransfersControlDirectly)
{
    // a runs, switches straight into b without returning to main; b's
    // yield lands back in main's resume (the propagated caller), not
    // in a.
    std::vector<int> order;
    std::unique_ptr<Fiber> a, b;
    b = std::make_unique<Fiber>([&] {
        order.push_back(2);
        Fiber::yield(); // -> main (caller linkage inherited from a)
        order.push_back(5);
    });
    a = std::make_unique<Fiber>([&] {
        order.push_back(1);
        a->switchTo(*b);
        order.push_back(4);
    });
    a->resume(); // runs a then b until b's yield
    order.push_back(3);
    EXPECT_FALSE(a->finished());
    EXPECT_FALSE(b->finished());
    a->resume(); // a continues after its switchTo and finishes
    EXPECT_TRUE(a->finished());
    b->resume(); // b continues after its yield and finishes
    EXPECT_TRUE(b->finished());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Fiber, SwitchToChainFinishReturnsToResumer)
{
    // a -> b -> c; c finishes: control must come back to main's
    // resume(a), with a and b still suspended and resumable.
    std::vector<int> order;
    std::unique_ptr<Fiber> a, b, c;
    c = std::make_unique<Fiber>([&] { order.push_back(3); });
    b = std::make_unique<Fiber>([&] {
        order.push_back(2);
        b->switchTo(*c);
        order.push_back(6);
    });
    a = std::make_unique<Fiber>([&] {
        order.push_back(1);
        a->switchTo(*b);
        order.push_back(5);
    });
    a->resume();
    order.push_back(4);
    EXPECT_TRUE(c->finished());
    EXPECT_FALSE(a->finished());
    EXPECT_FALSE(b->finished());
    a->resume();
    EXPECT_TRUE(a->finished());
    b->resume();
    EXPECT_TRUE(b->finished());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5, 6}));
}

TEST(Fiber, SwitchToUnstartedFiberSeedsIt)
{
    int ran = 0;
    std::unique_ptr<Fiber> a, b;
    b = std::make_unique<Fiber>([&] { ran = 1; });
    a = std::make_unique<Fiber>([&] {
        a->switchTo(*b); // b has never run: switchTo must start it
    });
    a->resume();
    EXPECT_TRUE(b->finished());
    EXPECT_EQ(ran, 1);
    a->resume();
    EXPECT_TRUE(a->finished());
}

TEST(Fiber, LargeFrameNearStackLimit)
{
    // A frame using most of a small custom stack: catches off-by-a-page
    // seeding bugs and verifies the advertised capacity is usable.
    constexpr size_t kStack = 64 * 1024;
    constexpr size_t kFrame = 40 * 1024;
    uint64_t sum = 0;
    Fiber f(
        [&] {
            volatile uint8_t frame[kFrame];
            for (size_t i = 0; i < kFrame; ++i)
                frame[i] = static_cast<uint8_t>(i * 31 + 7);
            Fiber::yield(); // frame must survive a switch
            uint64_t s = 0;
            for (size_t i = 0; i < kFrame; ++i)
                s += frame[i];
            sum = s;
        },
        kStack);
    f.resume();
    f.resume();
    EXPECT_TRUE(f.finished());
    uint64_t expect = 0;
    for (size_t i = 0; i < kFrame; ++i)
        expect += static_cast<uint8_t>(i * 31 + 7);
    EXPECT_EQ(sum, expect);
}

TEST(Fiber, ManyFibersStress)
{
    // Hundreds of concurrently-live fibers with interleaved yields:
    // stresses seeding, switching, and per-fiber state isolation.
    constexpr int kFibers = 300;
    constexpr int kRounds = 17;
    std::vector<std::unique_ptr<Fiber>> fibers;
    std::vector<int> counts(kFibers, 0);
    fibers.reserve(kFibers);
    for (int i = 0; i < kFibers; ++i) {
        fibers.push_back(std::make_unique<Fiber>(
            [&counts, i] {
                // `local` checks that fiber-private state survives all
                // the interleaved switches.
                int local = 0;
                for (int r = 0; r < kRounds; ++r) {
                    local += i + r;
                    ++counts[i];
                    Fiber::yield();
                }
                EXPECT_EQ(local,
                          kRounds * i + kRounds * (kRounds - 1) / 2);
            },
            32 * 1024));
    }
    for (int r = 0; r <= kRounds; ++r)
        for (auto &f : fibers)
            if (!f->finished())
                f->resume();
    for (int i = 0; i < kFibers; ++i) {
        EXPECT_TRUE(fibers[i]->finished()) << i;
        EXPECT_EQ(counts[i], kRounds) << i;
    }
}

TEST(FiberDeath, ResumeFinishedPanics)
{
    Fiber f([] {});
    f.resume();
    EXPECT_DEATH(f.resume(), "finished");
}

TEST(FiberDeath, YieldOutsideFiberPanics)
{
    EXPECT_DEATH(Fiber::yield(), "outside");
}
