/**
 * @file
 * Unit tests for the ucontext fiber primitive.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/fiber.hh"

using pim::sim::Fiber;

TEST(Fiber, RunsToCompletionOnFirstResume)
{
    int ran = 0;
    Fiber f([&] { ran = 1; });
    EXPECT_FALSE(f.finished());
    f.resume();
    EXPECT_TRUE(f.finished());
    EXPECT_EQ(ran, 1);
}

TEST(Fiber, YieldSuspendsAndResumes)
{
    std::vector<int> order;
    Fiber f([&] {
        order.push_back(1);
        Fiber::yield();
        order.push_back(3);
    });
    f.resume();
    order.push_back(2);
    EXPECT_FALSE(f.finished());
    f.resume();
    EXPECT_TRUE(f.finished());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Fiber, ManyYields)
{
    int count = 0;
    Fiber f([&] {
        for (int i = 0; i < 100; ++i) {
            ++count;
            Fiber::yield();
        }
    });
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(f.finished());
        f.resume();
    }
    f.resume(); // final resume lets the body return
    EXPECT_TRUE(f.finished());
    EXPECT_EQ(count, 100);
}

TEST(Fiber, NestedFibers)
{
    std::vector<int> order;
    Fiber inner([&] {
        order.push_back(2);
        Fiber::yield();
        order.push_back(4);
    });
    Fiber outer([&] {
        order.push_back(1);
        inner.resume(); // runs inner until its yield
        order.push_back(3);
        inner.resume();
        order.push_back(5);
    });
    outer.resume();
    EXPECT_TRUE(outer.finished());
    EXPECT_TRUE(inner.finished());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Fiber, LocalStateSurvivesYield)
{
    int observed = 0;
    Fiber f([&] {
        int local = 7;
        Fiber::yield();
        local += 35;
        observed = local;
    });
    f.resume();
    f.resume();
    EXPECT_EQ(observed, 42);
}

TEST(FiberDeath, ResumeFinishedPanics)
{
    Fiber f([] {});
    f.resume();
    EXPECT_DEATH(f.resume(), "finished");
}
