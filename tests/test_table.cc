/**
 * @file
 * Unit tests for the table/CSV printer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "util/table.hh"

using pim::util::Table;

TEST(Table, PrintsTitleHeaderAndRows)
{
    Table t("demo");
    t.setHeader({"a", "bb"});
    t.addRow({"1", "2"});
    t.addRow({"333", "4"});
    std::ostringstream os;
    t.print(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("== demo =="), std::string::npos);
    EXPECT_NE(s.find("a"), std::string::npos);
    EXPECT_NE(s.find("333"), std::string::npos);
}

TEST(Table, CsvRoundTrip)
{
    Table t("csv");
    t.setHeader({"x", "y"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Table, NumFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(3.0, 0), "3");
    EXPECT_EQ(Table::num(uint64_t{42}), "42");
    EXPECT_EQ(Table::num(int64_t{-7}), "-7");
}

TEST(Table, ColumnsAlign)
{
    Table t("align");
    t.setHeader({"col", "c"});
    t.addRow({"x", "longvalue"});
    std::ostringstream os;
    t.print(os);
    // Each data line should be at least as wide as the widest cells.
    std::istringstream is(os.str());
    std::string line;
    std::getline(is, line); // title
    std::getline(is, line); // header
    EXPECT_GE(line.size(), std::string("col  longvalue").size() - 2);
}

TEST(TableDeath, RowWidthMismatchPanics)
{
    Table t("bad");
    t.setHeader({"a"});
    EXPECT_DEATH(t.addRow({"1", "2"}), "row width");
}
