/**
 * @file
 * Tests for the three adjacency structures: semantic equivalence (same
 * final graph regardless of representation), cost-shape properties
 * (CSR inserts scale with graph size; dynamic inserts do not), and
 * capacity handling.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "alloc/pim_malloc.hh"
#include "sim/dpu.hh"
#include "workloads/graph/csr_graph.hh"
#include "workloads/graph/linked_list_graph.hh"
#include "workloads/graph/var_array_graph.hh"

using namespace pim;
using namespace pim::workloads::graph;

namespace {

constexpr sim::MramAddr kTable = 40u << 20;

std::unique_ptr<alloc::PimMallocAllocator>
makeAlloc(sim::Dpu &dpu)
{
    alloc::PimMallocConfig cfg;
    cfg.heapBytes = 4u << 20;
    cfg.numTasklets = 1;
    auto a = std::make_unique<alloc::PimMallocAllocator>(dpu, cfg);
    dpu.run(1, [&](sim::Tasklet &t) { a->init(t); });
    return a;
}

std::vector<Edge>
sampleEdges()
{
    // Node 0 gets many edges (chunk/array growth), others few.
    std::vector<Edge> edges;
    for (uint32_t i = 0; i < 100; ++i)
        edges.push_back({0, 1000 + i});
    edges.push_back({1, 7});
    edges.push_back({2, 8});
    edges.push_back({2, 9});
    return edges;
}

void
verifyGraph(GraphStructure &g)
{
    EXPECT_EQ(g.degree(0), 100u);
    EXPECT_EQ(g.degree(1), 1u);
    EXPECT_EQ(g.degree(2), 2u);
    EXPECT_EQ(g.degree(3), 0u);
    auto n0 = g.neighbors(0);
    std::sort(n0.begin(), n0.end());
    ASSERT_EQ(n0.size(), 100u);
    EXPECT_EQ(n0.front(), 1000u);
    EXPECT_EQ(n0.back(), 1099u);
    auto n2 = g.neighbors(2);
    std::sort(n2.begin(), n2.end());
    EXPECT_EQ(n2, (std::vector<uint32_t>{8, 9}));
    EXPECT_EQ(g.edgeCount(), 103u);
}

} // namespace

TEST(CsrGraph, BuildAndInsert)
{
    sim::Dpu dpu;
    CsrGraph g(dpu, kTable, 4, 200);
    dpu.run(1, [&](sim::Tasklet &t) {
        g.build(t, sampleEdges());
        verifyGraph(g);
        EXPECT_TRUE(g.insertEdge(t, 3, 42));
        EXPECT_EQ(g.degree(3), 1u);
        EXPECT_EQ(g.neighbors(3), (std::vector<uint32_t>{42}));
        // Other adjacency survives the shift.
        EXPECT_EQ(g.degree(0), 100u);
    });
}

TEST(CsrGraph, InsertInMiddlePreservesOrdering)
{
    sim::Dpu dpu;
    CsrGraph g(dpu, kTable, 3, 10);
    dpu.run(1, [&](sim::Tasklet &t) {
        g.build(t, {{0, 5}, {2, 6}});
        EXPECT_TRUE(g.insertEdge(t, 1, 7));
        EXPECT_EQ(g.neighbors(0), (std::vector<uint32_t>{5}));
        EXPECT_EQ(g.neighbors(1), (std::vector<uint32_t>{7}));
        EXPECT_EQ(g.neighbors(2), (std::vector<uint32_t>{6}));
    });
}

TEST(CsrGraph, CapacityExhausted)
{
    sim::Dpu dpu;
    CsrGraph g(dpu, kTable, 2, 2);
    dpu.run(1, [&](sim::Tasklet &t) {
        EXPECT_TRUE(g.insertEdge(t, 0, 1));
        EXPECT_TRUE(g.insertEdge(t, 0, 2));
        EXPECT_FALSE(g.insertEdge(t, 0, 3));
    });
}

TEST(CsrGraph, InsertCostGrowsWithGraphSize)
{
    // Fig 3(c): CSR insertion cost scales with the pre-update graph.
    auto insert_cost = [](uint32_t base_edges) {
        sim::Dpu dpu;
        CsrGraph g(dpu, kTable, 100, base_edges + 10);
        std::vector<Edge> base;
        for (uint32_t i = 0; i < base_edges; ++i)
            base.push_back({99, i});
        dpu.run(1, [&](sim::Tasklet &t) { g.build(t, base); });
        // Insert at node 0: shifts the whole edge array.
        dpu.run(1,
                [&](sim::Tasklet &t) { g.insertEdge(t, 0, 12345); });
        return dpu.lastElapsedCycles();
    };
    EXPECT_GT(insert_cost(8000), 4 * insert_cost(1000));
}

TEST(LinkedListGraph, BuildAndVerify)
{
    sim::Dpu dpu;
    auto a = makeAlloc(dpu);
    LinkedListGraph g(dpu, *a, kTable, 4);
    dpu.run(1, [&](sim::Tasklet &t) {
        g.build(t, sampleEdges());
        verifyGraph(g);
    });
}

TEST(LinkedListGraph, OneFixed256ByteAllocationPerEdge)
{
    sim::Dpu dpu;
    auto a = makeAlloc(dpu);
    LinkedListGraph g(dpu, *a, kTable, 1);
    dpu.run(1, [&](sim::Tasklet &t) {
        // The paper's evaluation allocates one fixed-size 256 B element
        // per inserted edge (Fig 3(b) bottom).
        for (uint32_t i = 0; i < 63; ++i)
            g.insertEdge(t, 0, i);
        EXPECT_EQ(a->stats().mallocCalls, 63u);
        EXPECT_EQ(g.degree(0), 63u);
        // All requests are 256 B: single size class in use.
        EXPECT_EQ(a->stats().requestedBytes,
                  63u * LinkedListGraph::kChunkBytes);
    });
}

TEST(LinkedListGraph, InsertCostIndependentOfGraphSize)
{
    auto insert_cost = [](uint32_t base_edges) {
        sim::Dpu dpu;
        auto a = makeAlloc(dpu);
        LinkedListGraph g(dpu, *a, kTable, 100);
        std::vector<Edge> base;
        for (uint32_t i = 0; i < base_edges; ++i)
            base.push_back({i % 100, i});
        dpu.run(1, [&](sim::Tasklet &t) { g.build(t, base); });
        dpu.run(1, [&](sim::Tasklet &t) { g.insertEdge(t, 0, 9999); });
        return dpu.lastElapsedCycles();
    };
    const uint64_t small = insert_cost(500);
    const uint64_t large = insert_cost(5000);
    // O(1) insertion: cost stays within 2x across a 10x graph.
    EXPECT_LT(large, 2 * small);
}

TEST(VarArrayGraph, BuildAndVerify)
{
    sim::Dpu dpu;
    auto a = makeAlloc(dpu);
    VarArrayGraph g(dpu, *a, kTable, 4);
    dpu.run(1, [&](sim::Tasklet &t) {
        g.build(t, sampleEdges());
        verifyGraph(g);
    });
}

TEST(VarArrayGraph, DoublesCapacityAndFreesOldArray)
{
    sim::Dpu dpu;
    auto a = makeAlloc(dpu);
    VarArrayGraph g(dpu, *a, kTable, 1);
    dpu.run(1, [&](sim::Tasklet &t) {
        // 16 edges fit in the initial 64 B array; the 17th triggers a
        // grow-to-128 B (one alloc + one free).
        for (uint32_t i = 0; i < 16; ++i)
            g.insertEdge(t, 0, i);
        const uint64_t allocs = a->stats().mallocCalls;
        const uint64_t frees = a->stats().freeCalls;
        g.insertEdge(t, 0, 16);
        EXPECT_EQ(a->stats().mallocCalls, allocs + 1);
        EXPECT_EQ(a->stats().freeCalls, frees + 1);
        EXPECT_EQ(g.degree(0), 17u);
        // All edges preserved across the copy.
        auto n = g.neighbors(0);
        std::sort(n.begin(), n.end());
        for (uint32_t i = 0; i <= 16; ++i)
            EXPECT_EQ(n[i], i);
    });
}

TEST(VarArrayGraph, DegreeCapAtMaxBytes)
{
    sim::Dpu dpu;
    alloc::PimMallocConfig cfg;
    cfg.heapBytes = 8u << 20;
    cfg.numTasklets = 1;
    alloc::PimMallocAllocator a(dpu, cfg);
    dpu.run(1, [&](sim::Tasklet &t) { a.init(t); });
    VarArrayGraph g(dpu, a, kTable, 1);
    dpu.run(1, [&](sim::Tasklet &t) {
        for (uint32_t i = 0; i < VarArrayGraph::kMaxBytes / 4; ++i)
            ASSERT_TRUE(g.insertEdge(t, 0, i));
        EXPECT_FALSE(g.insertEdge(t, 0, 999999)); // 8192-degree cap
    });
}

TEST(GraphStructures, AllThreeAgreeOnRandomGraph)
{
    const GraphGenConfig gen{.numNodes = 50, .numEdges = 400,
                             .skew = 0.7, .maxDegree = 100, .seed = 12};
    const auto dataset = generateGraph(gen);

    sim::Dpu d1, d2, d3;
    auto a2 = makeAlloc(d2);
    auto a3 = makeAlloc(d3);
    CsrGraph csr(d1, kTable, gen.numNodes,
                 static_cast<uint32_t>(dataset.edges.size()));
    LinkedListGraph ll(d2, *a2, kTable, gen.numNodes);
    VarArrayGraph va(d3, *a3, kTable, gen.numNodes);

    d1.run(1, [&](sim::Tasklet &t) { csr.build(t, dataset.edges); });
    d2.run(1, [&](sim::Tasklet &t) { ll.build(t, dataset.edges); });
    d3.run(1, [&](sim::Tasklet &t) { va.build(t, dataset.edges); });

    for (uint32_t u = 0; u < gen.numNodes; ++u) {
        auto a = csr.neighbors(u);
        auto b = ll.neighbors(u);
        auto c = va.neighbors(u);
        std::sort(a.begin(), a.end());
        std::sort(b.begin(), b.end());
        std::sort(c.begin(), c.end());
        EXPECT_EQ(a, b) << "node " << u;
        EXPECT_EQ(a, c) << "node " << u;
    }
}
