/**
 * @file
 * Tests for the three metadata access paths: functional equivalence
 * (identical state transitions regardless of store), SW buffer
 * hit/miss/flush behaviour, and HW cache traffic characteristics.
 */

#include <gtest/gtest.h>

#include <memory>

#include "alloc/metadata_store.hh"
#include "sim/dpu.hh"
#include "util/rng.hh"

using namespace pim;
using namespace pim::alloc;

namespace {

constexpr uint32_t kNodes = 1024;

void
withTasklet(sim::Dpu &dpu, const std::function<void(sim::Tasklet &)> &fn)
{
    dpu.run(1, fn);
}

} // namespace

TEST(DirectStore, GetSetRoundTrip)
{
    sim::Dpu dpu;
    DirectStore s(dpu, 0, kNodes);
    withTasklet(dpu, [&](sim::Tasklet &t) {
        s.reset(t);
        EXPECT_EQ(s.get(t, 0), NodeState::Free);
        s.set(t, 0, NodeState::Allocated);
        s.set(t, 17, NodeState::Split);
        s.set(t, 1023, NodeState::Full);
        EXPECT_EQ(s.get(t, 0), NodeState::Allocated);
        EXPECT_EQ(s.get(t, 17), NodeState::Split);
        EXPECT_EQ(s.get(t, 1023), NodeState::Full);
        EXPECT_EQ(s.get(t, 16), NodeState::Free); // neighbors untouched
    });
}

TEST(DirectStore, PackingIsTwoBitsPerNode)
{
    sim::Dpu dpu;
    DirectStore s(dpu, 0, kNodes);
    EXPECT_EQ(s.bytes(), kNodes / 4);
}

TEST(DirectStore, NoDpuCost)
{
    sim::Dpu dpu;
    DirectStore s(dpu, 0, kNodes);
    withTasklet(dpu, [&](sim::Tasklet &t) {
        for (uint32_t i = 0; i < 100; ++i)
            s.set(t, i, NodeState::Split);
        t.execute(1); // scheduler wants at least one charge
    });
    EXPECT_EQ(dpu.lastElapsedCycles(), 11u);
}

TEST(SwBufferStore, HitsWithinWindow)
{
    sim::Dpu dpu;
    SwBufferStore s(dpu, 0, kNodes, 256);
    withTasklet(dpu, [&](sim::Tasklet &t) {
        s.get(t, 0); // first access: miss
        for (uint32_t i = 1; i < 100; ++i)
            s.get(t, i); // same window: hits
    });
    EXPECT_EQ(s.misses(), 1u);
    EXPECT_EQ(s.hits(), 99u);
}

TEST(SwBufferStore, AlternatingWindowsThrash)
{
    sim::Dpu dpu;
    // 256 B buffer = 1024 nodes per window; alternate across windows.
    SwBufferStore s(dpu, 0, 4096, 256);
    withTasklet(dpu, [&](sim::Tasklet &t) {
        for (int i = 0; i < 10; ++i) {
            s.get(t, 0);
            s.get(t, 2048);
        }
    });
    EXPECT_EQ(s.misses(), 20u);
    EXPECT_NEAR(s.hitRate(), 0.0, 1e-9);
}

TEST(SwBufferStore, DirtyFlushOnMissChargesWriteback)
{
    sim::Dpu dpu;
    SwBufferStore s(dpu, 0, 4096, 256);
    withTasklet(dpu, [&](sim::Tasklet &t) {
        s.set(t, 0, NodeState::Split); // miss + dirty
        const uint64_t w0 = dpu.traffic().metadataWriteBytes;
        s.get(t, 2048); // miss: must flush the dirty window first
        EXPECT_EQ(dpu.traffic().metadataWriteBytes, w0 + 256);
    });
}

TEST(SwBufferStore, CleanMissDoesNotWriteBack)
{
    sim::Dpu dpu;
    SwBufferStore s(dpu, 0, 4096, 256);
    withTasklet(dpu, [&](sim::Tasklet &t) {
        s.get(t, 0);
        const uint64_t w0 = dpu.traffic().metadataWriteBytes;
        s.get(t, 2048);
        EXPECT_EQ(dpu.traffic().metadataWriteBytes, w0);
    });
}

TEST(SwBufferStore, ExplicitFlush)
{
    sim::Dpu dpu;
    SwBufferStore s(dpu, 0, kNodes, 256);
    withTasklet(dpu, [&](sim::Tasklet &t) {
        s.set(t, 3, NodeState::Allocated);
        const uint64_t w0 = dpu.traffic().metadataWriteBytes;
        s.flush(t);
        EXPECT_EQ(dpu.traffic().metadataWriteBytes, w0 + 256);
        s.flush(t); // now clean: no-op
        EXPECT_EQ(dpu.traffic().metadataWriteBytes, w0 + 256);
    });
}

TEST(SwBufferStore, ReservesWram)
{
    sim::Dpu dpu;
    const uint32_t before = dpu.wramUsed();
    SwBufferStore s(dpu, 0, kNodes, 2048);
    EXPECT_EQ(dpu.wramUsed(), before + 2048);
}

TEST(HwCacheStore, FineGrainedMissTraffic)
{
    sim::Dpu dpu;
    HwCacheStore s(dpu, 0, kNodes);
    withTasklet(dpu, [&](sim::Tasklet &t) {
        s.get(t, 0); // miss: fetches exactly one 4 B word
        EXPECT_EQ(dpu.traffic().metadataReadBytes, 4u);
        s.get(t, 1); // same word: hit, no traffic
        EXPECT_EQ(dpu.traffic().metadataReadBytes, 4u);
        s.get(t, 16); // next word
        EXPECT_EQ(dpu.traffic().metadataReadBytes, 8u);
    });
    EXPECT_EQ(dpu.buddyCache().stats().hits, 1u);
    EXPECT_EQ(dpu.buddyCache().stats().misses, 2u);
}

TEST(HwCacheStore, DirtyEvictionWritesBackOneWord)
{
    sim::Dpu dpu; // 16-entry cache
    HwCacheStore s(dpu, 0, 16 * 17 * 16); // more words than entries
    withTasklet(dpu, [&](sim::Tasklet &t) {
        s.set(t, 0, NodeState::Split); // word 0 dirty
        // Touch 16 more distinct words to force eviction of word 0.
        for (uint32_t w = 1; w <= 16; ++w)
            s.get(t, w * 16);
        EXPECT_EQ(dpu.traffic().metadataWriteBytes, 4u);
    });
}

TEST(HwCacheStore, FlushWritesDirtyWords)
{
    sim::Dpu dpu;
    HwCacheStore s(dpu, 0, kNodes);
    withTasklet(dpu, [&](sim::Tasklet &t) {
        s.set(t, 0, NodeState::Split);
        s.set(t, 16, NodeState::Split);
        const uint64_t w0 = dpu.traffic().metadataWriteBytes;
        s.flush(t);
        EXPECT_EQ(dpu.traffic().metadataWriteBytes, w0 + 8);
    });
}

/** Property: all three stores produce identical visible state. */
class StoreEquivalence
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(StoreEquivalence, RandomOpsMatchDirect)
{
    const auto [seed, ops] = GetParam();
    sim::Dpu d_direct, d_sw, d_hw;
    DirectStore direct(d_direct, 0, kNodes);
    SwBufferStore sw(d_sw, 0, kNodes, 64);
    HwCacheStore hw(d_hw, 0, kNodes);

    util::Rng rng(static_cast<uint64_t>(seed));
    std::vector<std::pair<uint32_t, NodeState>> script;
    for (int i = 0; i < ops; ++i) {
        script.emplace_back(
            static_cast<uint32_t>(rng.uniformInt(kNodes)),
            static_cast<NodeState>(rng.uniformInt(4)));
    }

    auto apply = [&](sim::Dpu &dpu, MetadataStore &s) {
        dpu.run(1, [&](sim::Tasklet &t) {
            s.reset(t);
            for (const auto &[node, state] : script)
                s.set(t, node, state);
        });
    };
    apply(d_direct, direct);
    apply(d_sw, sw);
    apply(d_hw, hw);

    d_direct.run(1, [&](sim::Tasklet &t) {
        t.execute(1);
        for (uint32_t n = 0; n < kNodes; ++n) {
            const NodeState want = direct.get(t, n);
            sim::Tasklet *tp = &t;
            (void)tp;
            EXPECT_EQ(want, sw.get(t, n)) << "node " << n;
            EXPECT_EQ(want, hw.get(t, n)) << "node " << n;
        }
    });
}

INSTANTIATE_TEST_SUITE_P(
    RandomScripts, StoreEquivalence,
    ::testing::Values(std::make_pair(1, 50), std::make_pair(2, 500),
                      std::make_pair(3, 2000), std::make_pair(4, 5000)));
