/**
 * @file
 * Tests for the scratchpad buddy allocator (UPMEM SDK buddy_alloc
 * equivalent), including a differential test against BuddyTree: both
 * implement first-fit buddy allocation, so identical request sequences
 * must yield identical offsets.
 */

#include <gtest/gtest.h>

#include <set>

#include "alloc/buddy_tree.hh"
#include "alloc/wram_buddy.hh"
#include "sim/dpu.hh"
#include "util/rng.hh"

using namespace pim;
using namespace pim::alloc;

TEST(WramBuddy, UpmemGeometry)
{
    sim::Dpu dpu;
    WramBuddy w(dpu); // 32 KB heap, 32 B min
    // log2(32 KB / 32 B) = 10 splits -> 11 levels (paper Section III-C).
    EXPECT_EQ(w.levels(), 11u);
    // Metadata under 512 B, as quoted in Section II-B.
    EXPECT_LE(w.metadataBytes(), 512u);
}

TEST(WramBuddy, AllocFreeRoundTrip)
{
    sim::Dpu dpu;
    WramBuddy w(dpu);
    dpu.run(1, [&](sim::Tasklet &t) {
        const uint32_t a = w.alloc(t, 100);
        ASSERT_NE(a, kWramNull);
        EXPECT_EQ(w.allocatedBytes(), 128u);
        EXPECT_TRUE(w.free(t, a));
        EXPECT_EQ(w.allocatedBytes(), 0u);
    });
}

TEST(WramBuddy, ReservesWramForHeapAndMetadata)
{
    sim::Dpu dpu;
    const uint32_t before = dpu.wramUsed();
    WramBuddy w(dpu, 8192, 32);
    EXPECT_GE(dpu.wramUsed() - before, 8192u);
}

TEST(WramBuddy, ExhaustionReturnsNull)
{
    sim::Dpu dpu;
    WramBuddy w(dpu, 1024, 32);
    dpu.run(1, [&](sim::Tasklet &t) {
        for (int i = 0; i < 32; ++i)
            EXPECT_NE(w.alloc(t, 32), kWramNull);
        EXPECT_EQ(w.alloc(t, 32), kWramNull);
    });
}

TEST(WramBuddy, DoubleFreeAndWildPointerRejected)
{
    sim::Dpu dpu;
    WramBuddy w(dpu, 1024, 32);
    dpu.run(1, [&](sim::Tasklet &t) {
        const uint32_t a = w.alloc(t, 32);
        EXPECT_TRUE(w.free(t, a));
        EXPECT_FALSE(w.free(t, a));
        EXPECT_FALSE(w.free(t, a + 7));
        EXPECT_FALSE(w.free(t, 0xffff0000u));
    });
}

TEST(WramBuddy, ThreadSafeUnderContention)
{
    sim::Dpu dpu;
    WramBuddy w(dpu, 16384, 32);
    std::set<uint32_t> seen;
    dpu.run(8, [&](sim::Tasklet &t) {
        for (int i = 0; i < 16; ++i) {
            const uint32_t a = w.alloc(t, 64);
            ASSERT_NE(a, kWramNull);
            // Mutual exclusion means no duplicate addresses.
            ASSERT_TRUE(seen.insert(a).second);
        }
    });
    EXPECT_EQ(seen.size(), 128u);
}

TEST(WramBuddy, MatchesBuddyTreeFirstFitOrder)
{
    sim::Dpu dpu;
    const uint32_t heap = 8192;
    const uint32_t min_block = 32;
    WramBuddy w(dpu, heap, min_block);
    DirectStore store(dpu, 0, BuddyTree::nodesFor(heap, min_block));
    BuddyTree tree(store, 0, heap, min_block);
    const uint32_t w_base = heap ? 0 : 0; // WramBuddy offsets its heap
    (void)w_base;

    dpu.run(1, [&](sim::Tasklet &t) {
        t.execute(1);
        util::Rng rng(5);
        std::vector<std::pair<uint32_t, sim::MramAddr>> live; // w, tree
        uint32_t w_heap_base = kWramNull;
        for (int i = 0; i < 500; ++i) {
            if (live.empty() || rng.bernoulli(0.6)) {
                const uint32_t size =
                    static_cast<uint32_t>(rng.uniformRange(1, 512));
                const uint32_t a = w.alloc(t, size);
                const sim::MramAddr b = tree.alloc(t, size);
                ASSERT_EQ(a == kWramNull, b == sim::kNullAddr);
                if (a == kWramNull)
                    continue;
                if (w_heap_base == kWramNull)
                    w_heap_base = a; // first alloc lands at heap base
                // Identical offsets relative to each heap base.
                ASSERT_EQ(a - w_heap_base, b);
                live.emplace_back(a, b);
            } else {
                const size_t idx = rng.uniformInt(live.size());
                ASSERT_TRUE(w.free(t, live[idx].first));
                ASSERT_GT(tree.free(t, live[idx].second), 0u);
                live.erase(live.begin() + static_cast<long>(idx));
            }
        }
    });
}
