/**
 * @file
 * Golden determinism suite for the simulation core.
 *
 * The horizon scheduler skips context switches that would immediately
 * resume the same tasklet; that must be invisible to the simulation.
 * These tests run a contended 16-tasklet workload (mutex spinning, MRAM
 * DMA, asymmetric compute) under both scheduling policies and assert
 * every observable is identical: per-tasklet clocks, event counts,
 * cycle breakdowns, mutex statistics, DMA traffic, shared-memory
 * results, and the exact execution interleaving (as a trace hash).
 *
 * The trace hash is also pinned to a golden constant, so the asm and
 * ucontext fiber CI legs — separate binaries — are checked against the
 * same interleaving. If you intentionally change the cost model or the
 * workload below, rebuild and run this binary: GoldenTraceHash fails
 * and prints the new hash to paste into kGoldenTraceHash.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/dpu.hh"
#include "sim/mutex.hh"
#include "sim/scheduler.hh"

using namespace pim::sim;

namespace {

/** FNV-1a over 64-bit words; stable across platforms and compilers. */
struct TraceHash
{
    uint64_t h = 1469598103934665603ull;

    void
    add(uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 1099511628211ull;
        }
    }
};

struct RunResult
{
    std::vector<uint64_t> clocks;
    std::vector<uint64_t> events;
    std::vector<CycleBreakdown> breakdowns;
    uint64_t elapsed = 0;
    uint64_t mutexAcquisitions = 0;
    uint64_t mutexContended = 0;
    uint64_t mutexParked = 0;
    uint64_t mutexWoken = 0;
    uint64_t mutexElided = 0;
    uint64_t trafficBytes = 0;
    uint64_t dmaTransfers = 0;
    uint64_t sharedCounter = 0;
    uint64_t traceHash = 0;

    uint64_t
    totalEvents() const
    {
        uint64_t sum = 0;
        for (const uint64_t e : events)
            sum += e;
        return sum;
    }
};

constexpr unsigned kTasklets = 16;
constexpr unsigned kIters = 24;

/**
 * A deliberately nasty interleaving workload: every tasklet loops over
 * (spin-lock, read-modify-write a shared MRAM counter, unlock, then an
 * id-skewed compute block and an id-skewed DMA), so lock hand-off order,
 * spin batching, and DMA visibility all feed the result.
 */
RunResult
runWorkload(TaskletScheduler::Policy policy,
            SimMutex::Mode mutex_mode = SimMutex::Mode::Spin)
{
    Dpu dpu;
    TaskletScheduler sched(dpu, policy);
    SimMutex mutex(mutex_mode);
    const MramAddr counter_addr = 64;
    dpu.mram().write<uint64_t>(counter_addr, 0);

    TraceHash trace;
    for (unsigned i = 0; i < kTasklets; ++i) {
        sched.spawn([&](Tasklet &t) {
            for (unsigned it = 0; it < kIters; ++it) {
                mutex.lock(t);
                const auto v = t.mramRead<uint64_t>(counter_addr);
                t.execute(3 + t.id() % 5);
                t.mramWrite<uint64_t>(counter_addr, v + 1 + t.id());
                mutex.unlock(t);
                trace.add((static_cast<uint64_t>(t.id()) << 32) | it);
                trace.add(t.clock());
                t.execute(7 + 3 * t.id());
                t.dmaRead(128 + 8 * t.id(), 16 + 8 * (t.id() % 3));
                t.stall(5 + t.id(), CycleKind::IdleEtc);
            }
        });
    }
    sched.runToCompletion();

    RunResult r;
    for (size_t i = 0; i < sched.numTasklets(); ++i) {
        r.clocks.push_back(sched.tasklet(i).clock());
        r.events.push_back(sched.tasklet(i).simEvents());
        r.breakdowns.push_back(sched.tasklet(i).breakdown());
    }
    r.elapsed = sched.elapsedCycles();
    r.mutexAcquisitions = mutex.acquisitions();
    r.mutexContended = mutex.contendedAcquisitions();
    r.mutexParked = mutex.parkedCount();
    r.mutexWoken = mutex.wokenCount();
    r.mutexElided = mutex.elidedSpinEvents();
    r.trafficBytes = dpu.traffic().totalBytes();
    r.dmaTransfers = dpu.traffic().dmaTransfers;
    r.sharedCounter = dpu.mram().read<uint64_t>(counter_addr);
    r.traceHash = trace.h;
    return r;
}

/**
 * Golden interleaving hash of the workload above. Identical for the
 * horizon and naive schedulers and for the asm and ucontext fiber
 * backends, on every compiler/arch/sanitizer combination.
 */
constexpr uint64_t kGoldenTraceHash = 0xd5c4d11022def0b0ull;

} // namespace

TEST(SimDeterminism, HorizonMatchesNaiveReference)
{
    const RunResult horizon = runWorkload(TaskletScheduler::Policy::Horizon);
    const RunResult naive =
        runWorkload(TaskletScheduler::Policy::NaiveReference);

    EXPECT_EQ(horizon.traceHash, naive.traceHash);
    EXPECT_EQ(horizon.elapsed, naive.elapsed);
    EXPECT_EQ(horizon.mutexAcquisitions, naive.mutexAcquisitions);
    EXPECT_EQ(horizon.mutexContended, naive.mutexContended);
    EXPECT_EQ(horizon.trafficBytes, naive.trafficBytes);
    EXPECT_EQ(horizon.dmaTransfers, naive.dmaTransfers);
    EXPECT_EQ(horizon.sharedCounter, naive.sharedCounter);
    ASSERT_EQ(horizon.clocks.size(), naive.clocks.size());
    for (size_t i = 0; i < horizon.clocks.size(); ++i) {
        EXPECT_EQ(horizon.clocks[i], naive.clocks[i]) << "tasklet " << i;
        EXPECT_EQ(horizon.events[i], naive.events[i]) << "tasklet " << i;
        for (size_t k = 0; k < kNumCycleKinds; ++k)
            EXPECT_EQ(horizon.breakdowns[i].cycles[k],
                      naive.breakdowns[i].cycles[k])
                << "tasklet " << i << " kind " << k;
    }
}

TEST(SimDeterminism, WorkloadIsActuallyContended)
{
    const RunResult r = runWorkload(TaskletScheduler::Policy::Horizon);
    // The golden workload must keep exercising lock contention and
    // busy-wait accounting, or the comparison above proves nothing.
    EXPECT_EQ(r.mutexAcquisitions, uint64_t{kTasklets} * kIters);
    EXPECT_GT(r.mutexContended, 0u);
    uint64_t busy = 0;
    for (const auto &bd : r.breakdowns)
        busy += bd.of(CycleKind::BusyWait);
    EXPECT_GT(busy, 0u);
}

TEST(SimDeterminism, GoldenTraceHash)
{
    const RunResult r = runWorkload(TaskletScheduler::Policy::Horizon);
    EXPECT_EQ(r.traceHash, kGoldenTraceHash)
        << "Interleaving changed. If the cost model or golden workload "
           "changed intentionally, update kGoldenTraceHash to 0x"
        << std::hex << r.traceHash;
}

/**
 * The heart of the queue-mode fidelity contract (PIM_SIM_MUTEX=queue):
 * parked waiters with analytically replayed spin schedules must produce
 * *exactly* the simulation the spin model produces — same per-tasklet
 * clocks, same cycle breakdowns (BusyWait included), same interleaving
 * hash, same allocation-visible memory state. Only the real event
 * counts differ, and those differ by precisely the number of elided
 * spin re-checks.
 */
TEST(SimDeterminism, QueueMutexMatchesSpinExactly)
{
    const RunResult spin = runWorkload(TaskletScheduler::Policy::Horizon,
                                       SimMutex::Mode::Spin);
    const RunResult queue = runWorkload(TaskletScheduler::Policy::Horizon,
                                        SimMutex::Mode::Queue);

    EXPECT_EQ(queue.traceHash, spin.traceHash);
    EXPECT_EQ(queue.elapsed, spin.elapsed);
    EXPECT_EQ(queue.mutexAcquisitions, spin.mutexAcquisitions);
    EXPECT_EQ(queue.mutexContended, spin.mutexContended);
    EXPECT_EQ(queue.trafficBytes, spin.trafficBytes);
    EXPECT_EQ(queue.dmaTransfers, spin.dmaTransfers);
    EXPECT_EQ(queue.sharedCounter, spin.sharedCounter);
    ASSERT_EQ(queue.clocks.size(), spin.clocks.size());
    for (size_t i = 0; i < queue.clocks.size(); ++i) {
        EXPECT_EQ(queue.clocks[i], spin.clocks[i]) << "tasklet " << i;
        for (size_t k = 0; k < kNumCycleKinds; ++k)
            EXPECT_EQ(queue.breakdowns[i].cycles[k],
                      spin.breakdowns[i].cycles[k])
                << "tasklet " << i << " kind " << k;
    }

    // Event-count identity: every elided virtual re-check corresponds
    // to exactly one spin-model charge, so charged + elided == spin
    // charges. This is what makes events/s comparisons across modes
    // honest (bench_sim_throughput reports model events this way).
    EXPECT_LT(queue.totalEvents(), spin.totalEvents());
    EXPECT_EQ(queue.totalEvents() + queue.mutexElided,
              spin.totalEvents());

    // The workload must actually exercise the park/wake machinery.
    EXPECT_GT(queue.mutexParked, 0u);
    EXPECT_GT(queue.mutexWoken, 0u);
    EXPECT_EQ(spin.mutexParked, 0u);
}

TEST(SimDeterminism, QueueMutexHorizonMatchesNaiveReference)
{
    const RunResult horizon = runWorkload(TaskletScheduler::Policy::Horizon,
                                          SimMutex::Mode::Queue);
    const RunResult naive =
        runWorkload(TaskletScheduler::Policy::NaiveReference,
                    SimMutex::Mode::Queue);
    EXPECT_EQ(horizon.traceHash, naive.traceHash);
    EXPECT_EQ(horizon.clocks, naive.clocks);
    EXPECT_EQ(horizon.events, naive.events);
    EXPECT_EQ(horizon.mutexElided, naive.mutexElided);
    EXPECT_EQ(horizon.sharedCounter, naive.sharedCounter);
}

TEST(SimDeterminism, QueueMutexGoldenTraceHash)
{
    // Queue mode reproduces the *same* golden interleaving as spin —
    // the fidelity contract pinned to a constant.
    const RunResult r = runWorkload(TaskletScheduler::Policy::Horizon,
                                    SimMutex::Mode::Queue);
    EXPECT_EQ(r.traceHash, kGoldenTraceHash)
        << "Queue-mode interleaving diverged from the spin model. "
           "Actual hash: 0x" << std::hex << r.traceHash;
}

TEST(SimDeterminism, MutexModeFromEnvParsing)
{
    EXPECT_EQ(SimMutex::modeFromEnv(nullptr), SimMutex::Mode::Spin);
    EXPECT_EQ(SimMutex::modeFromEnv(""), SimMutex::Mode::Spin);
    EXPECT_EQ(SimMutex::modeFromEnv("spin"), SimMutex::Mode::Spin);
    EXPECT_EQ(SimMutex::modeFromEnv("queue"), SimMutex::Mode::Queue);
}

TEST(SimDeterminismDeath, UnknownMutexModeEnvValueIsFatal)
{
    // Same contract as PIM_SIM_SCHED: a typo must not silently pick a
    // mode (it would invalidate spin-vs-queue differential runs).
    EXPECT_EXIT(SimMutex::modeFromEnv("Queue"),
                testing::ExitedWithCode(1), "PIM_SIM_MUTEX");
    EXPECT_EXIT(SimMutex::modeFromEnv("garbage"),
                testing::ExitedWithCode(1), "PIM_SIM_MUTEX");
}

TEST(SimDeterminism, RepeatedRunsAreIdentical)
{
    const RunResult a = runWorkload(TaskletScheduler::Policy::Horizon);
    const RunResult b = runWorkload(TaskletScheduler::Policy::Horizon);
    EXPECT_EQ(a.traceHash, b.traceHash);
    EXPECT_EQ(a.clocks, b.clocks);
}

TEST(SimDeterminism, PolicyFromEnvParsing)
{
    // Dpu::runBodies latches policyFromEnv(getenv("PIM_SIM_SCHED"))
    // once per process; the parse itself is checked directly.
    EXPECT_EQ(TaskletScheduler::policyFromEnv(nullptr),
              TaskletScheduler::Policy::Horizon);
    EXPECT_EQ(TaskletScheduler::policyFromEnv("horizon"),
              TaskletScheduler::Policy::Horizon);
    EXPECT_EQ(TaskletScheduler::policyFromEnv("naive"),
              TaskletScheduler::Policy::NaiveReference);
}

TEST(SimDeterminismDeath, UnknownPolicyEnvValueIsFatal)
{
    // A typo must not silently fall back to the default scheduler (it
    // would make naive-vs-horizon differential runs vacuous).
    EXPECT_EXIT(TaskletScheduler::policyFromEnv("Naive"),
                testing::ExitedWithCode(1), "PIM_SIM_SCHED");
}

TEST(SimDeterminism, ExplicitPolicyConstruction)
{
    Dpu dpu;
    TaskletScheduler horizon(dpu);
    EXPECT_EQ(horizon.policy(), TaskletScheduler::Policy::Horizon);
    TaskletScheduler naive(dpu, TaskletScheduler::Policy::NaiveReference);
    EXPECT_EQ(naive.policy(), TaskletScheduler::Policy::NaiveReference);
}
