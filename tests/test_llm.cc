/**
 * @file
 * Tests for the LLM workload: model geometry, request sampling, KV
 * cache management, batch-capacity experiment (Fig 4(b)), and the
 * serving simulator (Fig 18).
 */

#include <gtest/gtest.h>

#include "alloc/pim_malloc.hh"
#include "sim/dpu.hh"
#include "workloads/llm/kv_cache.hh"
#include "workloads/llm/llm_config.hh"
#include "workloads/llm/serving_sim.hh"

using namespace pim;
using namespace pim::workloads::llm;

TEST(LlmConfig, Llama2SevenBGeometry)
{
    LlmModelConfig m;
    // 2 x 32 layers x 4096 hidden x 2 B = 512 KiB per token.
    EXPECT_EQ(m.kvBytesPerToken(), 512u << 10);
    // Sharded across 512 DPUs: 1 KiB per token per DPU.
    EXPECT_EQ(m.kvBytesPerTokenPerDpu(512), 1024u);
}

TEST(LlmConfig, SampledLengthsRespectCap)
{
    RequestLengthConfig cfg;
    util::Rng rng(1);
    for (int i = 0; i < 2000; ++i) {
        const auto r = sampleRequest(cfg, rng);
        EXPECT_GE(r.promptTokens, 1u);
        EXPECT_GE(r.outputTokens, 1u);
        EXPECT_LE(r.totalTokens(), cfg.maxSeqLen);
    }
}

TEST(LlmConfig, MeanLengthsNearShareGpt)
{
    RequestLengthConfig cfg;
    util::Rng rng(2);
    double prompt_sum = 0, out_sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const auto r = sampleRequest(cfg, rng);
        prompt_sum += r.promptTokens;
        out_sum += r.outputTokens;
    }
    // ShareGPT-like: mean prompt ~161, mean output ~338 (cap-truncated,
    // so allow generous bands).
    EXPECT_NEAR(prompt_sum / n, 161.0, 60.0);
    EXPECT_NEAR(out_sum / n, 320.0, 110.0);
}

namespace {

struct KvFixture
{
    KvFixture()
    {
        alloc::PimMallocConfig cfg;
        cfg.heapBytes = 4u << 20;
        cfg.numTasklets = 1;
        allocator = std::make_unique<alloc::PimMallocAllocator>(dpu, cfg);
        dpu.run(1, [&](sim::Tasklet &t) { allocator->init(t); });
    }

    sim::Dpu dpu;
    std::unique_ptr<alloc::PimMallocAllocator> allocator;
};

} // namespace

TEST(KvCache, GrowsInBlocks)
{
    KvFixture f;
    KvCacheManager kv(*f.allocator, 512);
    f.dpu.run(1, [&](sim::Tasklet &t) {
        EXPECT_TRUE(kv.appendBytes(t, 0, 100)); // 1 block
        EXPECT_EQ(kv.blockCount(0), 1u);
        EXPECT_TRUE(kv.appendBytes(t, 0, 412)); // fills block exactly
        EXPECT_EQ(kv.blockCount(0), 1u);
        EXPECT_TRUE(kv.appendBytes(t, 0, 1)); // spills to block 2
        EXPECT_EQ(kv.blockCount(0), 2u);
        EXPECT_EQ(kv.bytesStored(), 513u);
    });
}

TEST(KvCache, MultiTokenAppend)
{
    KvFixture f;
    KvCacheManager kv(*f.allocator, 512);
    f.dpu.run(1, [&](sim::Tasklet &t) {
        // A 1 KiB/token slice: each token adds exactly two 512 B blocks.
        EXPECT_TRUE(kv.appendBytes(t, 3, 10 * 1024));
        EXPECT_EQ(kv.blockCount(3), 20u);
    });
}

TEST(KvCache, ReleaseFreesEverything)
{
    KvFixture f;
    KvCacheManager kv(*f.allocator, 512);
    f.dpu.run(1, [&](sim::Tasklet &t) {
        kv.appendBytes(t, 0, 4096);
        kv.appendBytes(t, 1, 2048);
        EXPECT_EQ(kv.activeRequests(), 2u);
        kv.releaseRequest(t, 0);
        EXPECT_EQ(kv.activeRequests(), 1u);
        EXPECT_EQ(kv.bytesStored(), 2048u);
        kv.releaseRequest(t, 1);
        EXPECT_EQ(kv.totalBlocks(), 0u);
        EXPECT_EQ(f.allocator->stats().requestedBytes, 0u);
    });
}

TEST(KvCache, OomLeavesExistingBlocksIntact)
{
    sim::Dpu dpu;
    alloc::PimMallocConfig cfg;
    cfg.heapBytes = 64 * 1024;
    cfg.numTasklets = 1;
    cfg.prePopulate = false;
    alloc::PimMallocAllocator a(dpu, cfg);
    dpu.run(1, [&](sim::Tasklet &t) { a.init(t); });
    KvCacheManager kv(a, 512);
    dpu.run(1, [&](sim::Tasklet &t) {
        EXPECT_TRUE(kv.appendBytes(t, 0, 32 * 1024));
        const auto blocks = kv.blockCount(0);
        EXPECT_FALSE(kv.appendBytes(t, 0, 1u << 20)); // cannot fit
        EXPECT_EQ(kv.blockCount(0), blocks + 64); // partial growth kept
        kv.releaseRequest(t, 0);
    });
}

TEST(KvCache, ZeroLengthRequestHoldsNoBlocks)
{
    KvFixture f;
    KvCacheManager kv(*f.allocator, 512);
    f.dpu.run(1, [&](sim::Tasklet &t) {
        // A zero-byte append admits the request without allocating.
        EXPECT_TRUE(kv.appendBytes(t, 7, 0));
        EXPECT_EQ(kv.blockCount(7), 0u);
        EXPECT_EQ(kv.bytesStored(), 0u);
        EXPECT_EQ(kv.activeRequests(), 1u);
        // Growing it later works, and release reclaims everything.
        EXPECT_TRUE(kv.appendBytes(t, 7, 1));
        EXPECT_EQ(kv.blockCount(7), 1u);
        kv.releaseRequest(t, 7);
        EXPECT_EQ(kv.activeRequests(), 0u);
        EXPECT_EQ(kv.totalBlocks(), 0u);
    });
}

TEST(KvCache, ReleaseOfUnknownRequestIsANoop)
{
    KvFixture f;
    KvCacheManager kv(*f.allocator, 512);
    f.dpu.run(1, [&](sim::Tasklet &t) {
        kv.appendBytes(t, 0, 100);
        kv.releaseRequest(t, 42); // never admitted
        EXPECT_EQ(kv.activeRequests(), 1u);
        EXPECT_EQ(kv.bytesStored(), 100u);
    });
}

TEST(KvCache, HeapExhaustionAdmissionRecovers)
{
    // Admission control under heap exhaustion: an over-committing
    // request fails cleanly, its partial growth can be released, and
    // the freed space admits a smaller request afterwards.
    sim::Dpu dpu;
    alloc::PimMallocConfig cfg;
    cfg.heapBytes = 64 * 1024;
    cfg.numTasklets = 1;
    cfg.prePopulate = false;
    alloc::PimMallocAllocator a(dpu, cfg);
    dpu.run(1, [&](sim::Tasklet &t) { a.init(t); });
    KvCacheManager kv(a, 512);
    dpu.run(1, [&](sim::Tasklet &t) {
        EXPECT_TRUE(kv.appendBytes(t, 0, 16 * 1024));
        EXPECT_FALSE(kv.appendBytes(t, 1, 1u << 20)); // cannot fit
        // The failed request keeps its partial blocks until released.
        EXPECT_GT(kv.blockCount(1), 0u);
        kv.releaseRequest(t, 1);
        EXPECT_EQ(kv.blockCount(1), 0u);
        // The heap is intact: a fitting request is admitted.
        EXPECT_TRUE(kv.appendBytes(t, 2, 8 * 1024));
        EXPECT_EQ(kv.activeRequests(), 2u);
        kv.releaseRequest(t, 0);
        kv.releaseRequest(t, 2);
        EXPECT_EQ(kv.totalBlocks(), 0u);
    });
}

TEST(BatchCapacity, DynamicBeatsStatic)
{
    // Fig 4(b): dynamic allocation admits a much larger batch than
    // worst-case static reservation.
    const auto r = measureBatchCapacity(LlmModelConfig{},
                                        RequestLengthConfig{}, 512, 3);
    EXPECT_GT(r.staticMaxBatch, 0u);
    EXPECT_GT(r.dynamicMaxBatch, 2 * r.staticMaxBatch);
    EXPECT_LT(r.meanActualBytesPerRequest,
              static_cast<double>(r.staticReserveBytesPerRequest));
}

TEST(ServingSim, SchemeNames)
{
    ServingScheme stat{std::nullopt};
    ServingScheme sw{core::AllocatorKind::PimMallocSw};
    EXPECT_STREQ(stat.name(), "Static");
    EXPECT_STREQ(sw.name(), "PIM-malloc-SW");
}

namespace {

ServingConfig
quickServing()
{
    ServingConfig cfg;
    cfg.numRequests = 20;
    cfg.outputTokens = 32;
    cfg.promptTokens = 16;
    return cfg;
}

} // namespace

TEST(ServingSim, CompletesAllRequests)
{
    const auto r = runServing(ServingScheme{std::nullopt}, quickServing());
    EXPECT_GT(r.throughputTokensPerSec, 0.0);
    EXPECT_GT(r.makespanSec, 0.0);
    EXPECT_GT(r.tpotP50Ms, 0.0);
    EXPECT_LE(r.tpotP50Ms, r.tpotP99Ms);
    EXPECT_GT(r.peakBatchObserved, 0u);
    EXPECT_LE(r.peakBatchObserved, r.maxBatchLimit);
}

TEST(ServingSim, StaticBatchSmallerThanDynamic)
{
    const auto stat =
        runServing(ServingScheme{std::nullopt}, quickServing());
    const auto dyn = runServing(
        ServingScheme{core::AllocatorKind::PimMallocHwSw}, quickServing());
    EXPECT_LT(stat.maxBatchLimit, dyn.maxBatchLimit);
}

TEST(ServingSim, DynamicSchemesPayAllocationLatency)
{
    const auto stat =
        runServing(ServingScheme{std::nullopt}, quickServing());
    const auto dyn = runServing(
        ServingScheme{core::AllocatorKind::PimMallocSw}, quickServing());
    EXPECT_EQ(stat.allocSecPerBlock, 0.0);
    EXPECT_GT(dyn.allocSecPerBlock, 0.0);
}

TEST(ServingSim, StrawManHasHighestTpot)
{
    // Fig 18: the straw-man's allocation latency inflates TPOT beyond
    // every other scheme.
    const auto cfg = quickServing();
    const auto straw = runServing(
        ServingScheme{core::AllocatorKind::StrawMan}, cfg);
    const auto sw =
        runServing(ServingScheme{core::AllocatorKind::PimMallocSw}, cfg);
    const auto stat = runServing(ServingScheme{std::nullopt}, cfg);
    EXPECT_GT(straw.tpotP50Ms, sw.tpotP50Ms);
    EXPECT_GT(sw.tpotP50Ms, stat.tpotP50Ms);
}
