/**
 * @file
 * Tests for the straw-man buddy_alloc_PIM_DRAM allocator: paper
 * geometry, stats, contention behaviour (Fig 8), and the heap/alloc-size
 * latency scaling of Fig 7.
 */

#include <gtest/gtest.h>

#include <set>

#include "alloc/straw_man.hh"
#include "sim/dpu.hh"

using namespace pim;
using namespace pim::alloc;

namespace {

StrawManConfig
smallConfig()
{
    StrawManConfig cfg;
    cfg.heapBytes = 1u << 20;
    cfg.minBlock = 32;
    return cfg;
}

} // namespace

TEST(StrawMan, PaperMetadataFootprint)
{
    sim::Dpu dpu;
    StrawManAllocator a(dpu, StrawManConfig{});
    // 32 MB heap / 32 B min -> 512 KB metadata (Section II-B).
    EXPECT_EQ(a.metadataBytes(), 512u << 10);
    EXPECT_EQ(a.tree().levels(), 21u);
    EXPECT_EQ(a.name(), "straw-man");
}

TEST(StrawMan, AllocFreeBasics)
{
    sim::Dpu dpu;
    StrawManAllocator a(dpu, smallConfig());
    dpu.run(1, [&](sim::Tasklet &t) {
        a.init(t);
        const sim::MramAddr p = a.malloc(t, 100);
        ASSERT_NE(p, sim::kNullAddr);
        EXPECT_EQ(a.stats().mallocCalls, 1u);
        EXPECT_TRUE(a.free(t, p));
        EXPECT_EQ(a.stats().freeCalls, 1u);
        EXPECT_FALSE(a.free(t, p)); // double free rejected
    });
}

TEST(StrawMan, AllServicedAtBackend)
{
    sim::Dpu dpu;
    StrawManAllocator a(dpu, smallConfig());
    dpu.run(1, [&](sim::Tasklet &t) {
        a.init(t);
        for (int i = 0; i < 10; ++i)
            a.malloc(t, 32);
    });
    EXPECT_EQ(a.stats().serviced[size_t(ServiceLevel::Backend)], 10u);
    EXPECT_EQ(a.stats().serviced[size_t(ServiceLevel::Frontend)], 0u);
}

TEST(StrawMan, DistinctAddressesAcrossTasklets)
{
    sim::Dpu dpu;
    StrawManAllocator a(dpu, smallConfig());
    dpu.run(1, [&](sim::Tasklet &t) { a.init(t); });
    std::set<sim::MramAddr> seen;
    dpu.run(16, [&](sim::Tasklet &t) {
        for (int i = 0; i < 8; ++i) {
            const sim::MramAddr p = a.malloc(t, 64);
            ASSERT_NE(p, sim::kNullAddr);
            ASSERT_TRUE(seen.insert(p).second);
        }
    });
    EXPECT_EQ(seen.size(), 128u);
    EXPECT_GT(a.mutex().contendedAcquisitions(), 0u);
}

TEST(StrawMan, ContentionInflatesLatency)
{
    auto avg_latency = [](unsigned tasklets) {
        sim::Dpu dpu;
        StrawManAllocator a(dpu, smallConfig());
        dpu.run(1, [&](sim::Tasklet &t) { a.init(t); });
        dpu.run(tasklets, [&](sim::Tasklet &t) {
            for (int i = 0; i < 16; ++i)
                a.malloc(t, 32);
        });
        return a.stats().latency.mean();
    };
    // Fig 8: multi-threaded allocation suffers from mutex busy-waiting.
    EXPECT_GT(avg_latency(16), 3.0 * avg_latency(1));
}

TEST(StrawMan, BusyWaitDominatesUnderContention)
{
    sim::Dpu dpu;
    StrawManAllocator a(dpu, smallConfig());
    dpu.run(1, [&](sim::Tasklet &t) { a.init(t); });
    dpu.run(16, [&](sim::Tasklet &t) {
        for (int i = 0; i < 16; ++i)
            a.malloc(t, 32);
    });
    const auto &bd = dpu.lastBreakdown();
    // Fig 8(b): the 16-thread breakdown is dominated by busy-waiting.
    EXPECT_GT(bd.fraction(sim::CycleKind::BusyWait), 0.4);
}

TEST(StrawMan, LatencyGrowsWithTreeDepth)
{
    // Fig 7: larger heap / same min block -> deeper tree -> slower.
    auto avg_latency = [](uint32_t heap_bytes) {
        sim::Dpu dpu;
        StrawManConfig cfg;
        cfg.heapBytes = heap_bytes;
        cfg.minBlock = 32;
        StrawManAllocator a(dpu, cfg);
        dpu.run(1, [&](sim::Tasklet &t) { a.init(t); });
        dpu.run(1, [&](sim::Tasklet &t) {
            for (int i = 0; i < 32; ++i) {
                const sim::MramAddr p = a.malloc(t, 32);
                a.free(t, p);
            }
        });
        return a.stats().latency.mean();
    };
    const double small = avg_latency(32u << 10);
    const double large = avg_latency(32u << 20);
    EXPECT_GT(large, 2.0 * small);
}

TEST(StrawMan, HeapExhaustionCountsFailures)
{
    sim::Dpu dpu;
    StrawManConfig cfg;
    cfg.heapBytes = 4096;
    cfg.minBlock = 1024;
    StrawManAllocator a(dpu, cfg);
    dpu.run(1, [&](sim::Tasklet &t) {
        a.init(t);
        for (int i = 0; i < 4; ++i)
            EXPECT_NE(a.malloc(t, 1024), sim::kNullAddr);
        EXPECT_EQ(a.malloc(t, 1024), sim::kNullAddr);
        EXPECT_EQ(a.stats().failures, 1u);
    });
}

TEST(StrawMan, FragmentationAccountsRounding)
{
    sim::Dpu dpu;
    StrawManAllocator a(dpu, smallConfig());
    dpu.run(1, [&](sim::Tasklet &t) {
        a.init(t);
        a.malloc(t, 33); // rounds to 64: A/U = 64/33
        EXPECT_NEAR(a.stats().fragmentation(), 64.0 / 33.0, 1e-9);
    });
}

TEST(StrawMan, MetadataModeDirectIsFastest)
{
    auto run_with = [](MetadataMode mode) {
        sim::Dpu dpu;
        StrawManConfig cfg;
        cfg.heapBytes = 1u << 20;
        cfg.metadata = mode;
        StrawManAllocator a(dpu, cfg);
        dpu.run(1, [&](sim::Tasklet &t) { a.init(t); });
        dpu.run(1, [&](sim::Tasklet &t) {
            for (int i = 0; i < 32; ++i)
                a.malloc(t, 32);
        });
        return dpu.lastElapsedCycles();
    };
    const uint64_t direct = run_with(MetadataMode::Direct);
    const uint64_t sw = run_with(MetadataMode::SwBuffer);
    const uint64_t hw = run_with(MetadataMode::HwCache);
    EXPECT_LT(direct, hw);
    EXPECT_LT(hw, sw);
}

TEST(StrawMan, InitResetsState)
{
    sim::Dpu dpu;
    StrawManAllocator a(dpu, smallConfig());
    dpu.run(1, [&](sim::Tasklet &t) {
        a.init(t);
        a.malloc(t, 64);
        a.init(t);
        EXPECT_EQ(a.stats().mallocCalls, 0u);
        // The whole heap is allocatable again after re-init.
        EXPECT_NE(a.malloc(t, 1u << 20), sim::kNullAddr);
    });
}
