/**
 * @file
 * Tests for the allocator factory: kind naming, parsing, paper-default
 * construction, and override plumbing.
 */

#include <gtest/gtest.h>

#include "alloc/pim_malloc.hh"
#include "alloc/straw_man.hh"
#include "core/allocator_factory.hh"
#include "sim/dpu.hh"

using namespace pim;
using namespace pim::core;

TEST(AllocatorFactory, NamesRoundTrip)
{
    for (auto kind : kAllKinds) {
        const std::string name = allocatorKindName(kind);
        EXPECT_EQ(allocatorKindFromName(name), kind) << name;
    }
}

TEST(AllocatorFactory, ShortNames)
{
    EXPECT_EQ(allocatorKindFromName("straw-man"), AllocatorKind::StrawMan);
    EXPECT_EQ(allocatorKindFromName("sw"), AllocatorKind::PimMallocSw);
    EXPECT_EQ(allocatorKindFromName("hwsw"), AllocatorKind::PimMallocHwSw);
    EXPECT_EQ(allocatorKindFromName("sw-lazy"),
              AllocatorKind::PimMallocSwLazy);
}

TEST(AllocatorFactoryDeath, UnknownNameIsFatal)
{
    EXPECT_DEATH(allocatorKindFromName("bogus"), "unknown allocator");
}

TEST(AllocatorFactory, BuildsEveryKind)
{
    for (auto kind : kAllKinds) {
        sim::Dpu dpu;
        auto a = makeAllocator(dpu, kind);
        ASSERT_NE(a, nullptr);
        EXPECT_EQ(a->name() == allocatorKindName(kind)
                      || kind == AllocatorKind::StrawMan,
                  true);
        dpu.run(1, [&](sim::Tasklet &t) {
            a->init(t);
            const auto p = a->malloc(t, 64);
            EXPECT_NE(p, sim::kNullAddr);
            EXPECT_TRUE(a->free(t, p));
        });
    }
}

TEST(AllocatorFactory, StrawManPaperDefaults)
{
    sim::Dpu dpu;
    auto a = makeAllocator(dpu, AllocatorKind::StrawMan);
    auto *sm = dynamic_cast<alloc::StrawManAllocator *>(a.get());
    ASSERT_NE(sm, nullptr);
    EXPECT_EQ(sm->config().heapBytes, 32u << 20);
    EXPECT_EQ(sm->config().minBlock, 32u);
    EXPECT_EQ(sm->config().metadata, alloc::MetadataMode::SwBuffer);
}

TEST(AllocatorFactory, OverridesApplied)
{
    sim::Dpu dpu;
    AllocatorOverrides ov;
    ov.heapBytes = 1u << 20;
    ov.numTasklets = 8;
    auto a = makeAllocator(dpu, AllocatorKind::PimMallocSw, ov);
    auto *pm = dynamic_cast<alloc::PimMallocAllocator *>(a.get());
    ASSERT_NE(pm, nullptr);
    EXPECT_EQ(pm->config().heapBytes, 1u << 20);
    EXPECT_EQ(pm->config().numTasklets, 8u);
}

TEST(AllocatorFactory, LazyKindsDisablePrePopulation)
{
    sim::Dpu d1, d2;
    auto lazy = makeAllocator(d1, AllocatorKind::PimMallocHwSwLazy);
    auto *pm = dynamic_cast<alloc::PimMallocAllocator *>(lazy.get());
    ASSERT_NE(pm, nullptr);
    EXPECT_FALSE(pm->config().prePopulate);
    EXPECT_EQ(pm->config().metadata, alloc::MetadataMode::HwCache);
}
