/**
 * @file
 * Output byte-identity contract of the --metrics knob: with no registry
 * attached (the default), the benches' txt and JSON outputs are fully
 * deterministic and unchanged — and turning metrics on only *appends*
 * (metric tables to stdout, a "metrics" member to the JSON), never
 * perturbs the figure data itself.
 *
 * These tests shell out to the bench binaries next to the test
 * executable (ctest runs with the build directory as cwd) and skip if
 * the benches were not built (PIM_BUILD_BENCH=OFF).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <vector>

namespace {

bool
exists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

/** Run @p cmd, capture combined stdout+stderr, fail the test on rc!=0. */
std::string
run(const std::string &cmd)
{
    FILE *p = ::popen((cmd + " 2>&1").c_str(), "r");
    if (p == nullptr) {
        ADD_FAILURE() << "popen failed for: " << cmd;
        return {};
    }
    std::string out;
    char buf[4096];
    size_t n;
    while ((n = ::fread(buf, 1, sizeof buf, p)) > 0)
        out.append(buf, n);
    const int rc = ::pclose(p);
    EXPECT_EQ(rc, 0) << cmd << "\n" << out;
    return out;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/**
 * The JSON body of @p plain_json up to (but excluding) the final
 * closing brace. writeMetricsJson() emits the "metrics" member as the
 * last key before endObject, so this exact byte string must reappear
 * as a prefix of the metrics-enabled JSON.
 */
std::string
bodyPrefix(std::string s)
{
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
        s.pop_back();
    EXPECT_FALSE(s.empty());
    EXPECT_EQ(s.back(), '}');
    s.pop_back();
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
        s.pop_back();
    return s;
}

struct TempFile
{
    explicit TempFile(std::string p) : path(std::move(p)) {}
    ~TempFile() { std::remove(path.c_str()); }
    std::string path;
};

/**
 * The shared identity checks for one bench:
 *  1. two default runs (metrics off) are byte-identical, txt and JSON;
 *  2. the default txt output is a byte prefix of the --metrics output;
 *  3. the default JSON body is a byte prefix of the --metrics JSON,
 *     which additionally carries the "metrics" member.
 */
void
checkBench(const std::string &bin, const std::string &flags,
           const std::string &tag)
{
    if (!exists(bin))
        GTEST_SKIP() << bin << " not built (PIM_BUILD_BENCH=OFF?)";

    const std::string txt_a = run(bin + " " + flags);
    const std::string txt_b = run(bin + " " + flags);
    EXPECT_EQ(txt_a, txt_b) << bin << ": default output not deterministic";

    const std::string txt_m = run(bin + " " + flags + " --metrics");
    ASSERT_GE(txt_m.size(), txt_a.size());
    EXPECT_EQ(txt_m.compare(0, txt_a.size(), txt_a), 0)
        << bin << ": --metrics changed the figure output instead of "
                  "appending to it";

    TempFile ja("identity_" + tag + "_a.json");
    TempFile jb("identity_" + tag + "_b.json");
    TempFile jm("identity_" + tag + "_m.json");
    run(bin + " " + flags + " --json " + ja.path);
    run(bin + " " + flags + " --json " + jb.path);
    const std::string json_a = slurp(ja.path);
    EXPECT_EQ(json_a, slurp(jb.path))
        << bin << ": default JSON not deterministic";

    run(bin + " " + flags + " --metrics --json " + jm.path);
    const std::string json_m = slurp(jm.path);
    const std::string body = bodyPrefix(json_a);
    ASSERT_GE(json_m.size(), body.size());
    EXPECT_EQ(json_m.compare(0, body.size(), body), 0)
        << bin << ": --metrics changed the JSON figure data";
    EXPECT_NE(json_m.find("\"metrics\""), std::string::npos);
}

/** All values of numeric key @p key, in document order. */
std::vector<std::string>
numbersFor(const std::string &json, const std::string &key)
{
    const std::regex re("\"" + key + "\"\\s*:\\s*([-0-9.eE+]+)");
    std::vector<std::string> vals;
    for (auto it = std::sregex_iterator(json.begin(), json.end(), re);
         it != std::sregex_iterator(); ++it)
        vals.push_back((*it)[1].str());
    return vals;
}

} // namespace

TEST(MetricsIdentity, Fig15Microbench)
{
    checkBench("./bench_fig15_microbench", "", "fig15");
}

TEST(MetricsIdentity, Fig17GraphUpdate)
{
    checkBench("./bench_fig17_graph_update", "--dpus 128 --sample 2",
               "fig17");
}

TEST(MetricsIdentity, Fig18LlmServing)
{
    checkBench("./bench_fig18_llm_serving", "--requests 10", "fig18");
}

TEST(MetricsIdentity, SimThroughputCountsUnchangedByMetrics)
{
    const std::string bin = "./bench_sim_throughput";
    if (!exists(bin))
        GTEST_SKIP() << bin << " not built (PIM_BUILD_BENCH=OFF?)";

    // Wall-clock columns vary run to run, so the contract here is that
    // the *simulated* quantities — event and cycle counts — are
    // unchanged by attaching registries (which sim_throughput fills
    // outside the timed region).
    TempFile ja("identity_simtp_a.json");
    TempFile jm("identity_simtp_m.json");
    run(bin + " --allocs 256 --reps 1 --json " + ja.path);
    run(bin + " --allocs 256 --reps 1 --metrics --json " + jm.path);
    const std::string plain = slurp(ja.path);
    const std::string metered = slurp(jm.path);
    for (const char *key : {"sim_events", "elided_spin_events",
                            "model_events", "sim_cycles"}) {
        const auto a = numbersFor(plain, key);
        EXPECT_FALSE(a.empty()) << key;
        EXPECT_EQ(a, numbersFor(metered, key)) << key;
    }
    EXPECT_NE(metered.find("\"metrics\""), std::string::npos);
}
