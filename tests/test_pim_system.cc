/**
 * @file
 * Tests for the rank-aware async command-queue runtime: DpuSet
 * addressing, sample-index spreading (incl. non-divisible tails), async
 * launch + sync() timeline composition, host/PIM overlap accounting,
 * DPU-subset launches, scatter/gather transfers, event dependencies,
 * and thread-count invariance of the resolved timelines.
 */

#include <gtest/gtest.h>

#include <array>
#include <atomic>

#include "core/command_queue.hh"
#include "core/pim_system.hh"

using namespace pim;
using namespace pim::core;

namespace {

/** Small-MRAM DPU so tests don't pay 64 MB of backing store per DPU. */
sim::DpuConfig
smallDpuCfg()
{
    sim::DpuConfig cfg;
    cfg.mramBytes = 1u << 20;
    return cfg;
}

PimSystemConfig
smallSystem(unsigned dpus, unsigned per_rank, unsigned sample = 0)
{
    PimSystemConfig cfg;
    cfg.numDpus = dpus;
    cfg.dpusPerRank = per_rank;
    cfg.sampleDpus = sample;
    cfg.dpuCfg = smallDpuCfg();
    return cfg;
}

/** Seconds one single-tasklet launch of @p instrs instructions takes. */
double
launchSeconds(uint64_t instrs)
{
    // One tasklet issues every pipelineIssueInterval (11) cycles.
    return smallDpuCfg().cyclesToSeconds(instrs * 11);
}

constexpr double kLaunchOverhead = 20e-6; // TransferConfig default

} // namespace

TEST(PimSystem, RankStructure)
{
    PimSystem sys(smallSystem(130, 64));
    EXPECT_EQ(sys.numRanks(), 3u);
    EXPECT_EQ(sys.rankSize(0), 64u);
    EXPECT_EQ(sys.rankSize(1), 64u);
    EXPECT_EQ(sys.rankSize(2), 2u); // ragged tail rank
    EXPECT_EQ(sys.rankOf(0), 0u);
    EXPECT_EQ(sys.rankOf(63), 0u);
    EXPECT_EQ(sys.rankOf(64), 1u);
    EXPECT_EQ(sys.rankOf(129), 2u);
}

TEST(PimSystem, SampleGlobalIndexMatchesOldStrideWhenDivisible)
{
    // 512 / 4: the historical stride mapping.
    EXPECT_EQ(sampleGlobalIndex(0, 4, 512), 0u);
    EXPECT_EQ(sampleGlobalIndex(1, 4, 512), 128u);
    EXPECT_EQ(sampleGlobalIndex(3, 4, 512), 384u);
}

TEST(PimSystem, SampleGlobalIndexSpreadsNonDivisibleTail)
{
    // 10 DPUs, 4 samples: the old stride (10/4 = 2) mapped to
    // {0,2,4,6}, never representing the tail; the even spread reaches
    // it.
    EXPECT_EQ(sampleGlobalIndex(0, 4, 10), 0u);
    EXPECT_EQ(sampleGlobalIndex(1, 4, 10), 2u);
    EXPECT_EQ(sampleGlobalIndex(2, 4, 10), 5u);
    EXPECT_EQ(sampleGlobalIndex(3, 4, 10), 7u);
    // Degenerate cases.
    EXPECT_EQ(sampleGlobalIndex(5, 0, 10), 5u);  // full system
    EXPECT_EQ(sampleGlobalIndex(7, 10, 10), 7u); // sample == all
}

TEST(PimSystem, DpuSetAddressing)
{
    PimSystem sys(smallSystem(128, 64));
    const DpuSet all = sys.all();
    EXPECT_EQ(all.size(), 128u);
    EXPECT_EQ(all.ranks().size(), 2u);
    EXPECT_EQ(all.slots().size(), 128u);

    const DpuSet r1 = sys.rank(1);
    EXPECT_EQ(r1.size(), 64u);
    ASSERT_EQ(r1.ranks().size(), 1u);
    EXPECT_EQ(r1.ranks()[0], 1u);
    EXPECT_FALSE(r1.contains(63));
    EXPECT_TRUE(r1.contains(64));

    const DpuSet sub = sys.subset({5, 70, 70, 5});
    EXPECT_EQ(sub.size(), 2u); // deduplicated
    EXPECT_TRUE(sub.contains(5));
    EXPECT_TRUE(sub.contains(70));
    EXPECT_FALSE(sub.contains(6));
    ASSERT_EQ(sub.ranks().size(), 2u);
}

TEST(PimSystem, SampledSlotsSpreadAcrossRanks)
{
    PimSystem sys(smallSystem(128, 64, 2));
    EXPECT_EQ(sys.sampleCount(), 2u);
    EXPECT_EQ(sys.globalIndex(0), 0u);
    EXPECT_EQ(sys.globalIndex(1), 64u);
    EXPECT_EQ(sys.slotOf(64), 1u);
    EXPECT_EQ(sys.rank(1).slots().size(), 1u);
}

TEST(CommandQueue, AsyncLaunchResolvesOnSync)
{
    PimSystem sys(smallSystem(4, 2));
    CommandQueue q(sys);
    q.launch(sys.all(), 1,
             [](sim::Tasklet &t, unsigned) { t.execute(1000); });
    EXPECT_EQ(q.pendingCommands(), 1u);
    EXPECT_DOUBLE_EQ(q.elapsedSeconds(), 0.0); // nothing resolved yet
    const double makespan = q.sync();
    EXPECT_EQ(q.pendingCommands(), 0u);
    EXPECT_NEAR(makespan, kLaunchOverhead + launchSeconds(1000), 1e-12);
}

TEST(CommandQueue, SyncIsMakespanNotSumWhenHostOverlapsLaunch)
{
    PimSystem sys(smallSystem(4, 2));
    CommandQueue q(sys);
    q.launch(sys.all(), 1,
             [](sim::Tasklet &t, unsigned) { t.execute(100'000); });
    // Host work issued while the launch is in flight.
    const double host_sec = q.hostCompute(1, 100'000);
    const double launch_sec = launchSeconds(100'000);
    const double makespan = q.sync();
    ASSERT_GT(host_sec, 0.0);
    // Overlap: the makespan is the max of the two timelines (plus the
    // issue overhead), strictly less than their sum.
    EXPECT_NEAR(makespan,
                kLaunchOverhead + std::max(launch_sec, host_sec), 1e-12);
    EXPECT_LT(makespan, kLaunchOverhead + launch_sec + host_sec);
    // Both kinds of work really happened.
    EXPECT_NEAR(q.launchWorkSeconds(), launch_sec, 1e-12);
    EXPECT_NEAR(q.hostWorkSeconds(), host_sec, 1e-12);
}

TEST(CommandQueue, DisjointRankLaunchesOverlapSameRankSerializes)
{
    const uint64_t instrs = 200'000;
    const double d = launchSeconds(instrs);
    auto body = [](sim::Tasklet &t, unsigned) { t.execute(200'000); };

    PimSystem sys_a(smallSystem(4, 2));
    CommandQueue qa(sys_a);
    qa.launch(sys_a.rank(0), 1, body);
    qa.launch(sys_a.rank(1), 1, body);
    // Two issue overheads, but the ranks execute concurrently.
    EXPECT_NEAR(qa.sync(), 2 * kLaunchOverhead + d, 1e-12);

    PimSystem sys_b(smallSystem(4, 2));
    CommandQueue qb(sys_b);
    qb.launch(sys_b.rank(0), 1, body);
    qb.launch(sys_b.rank(0), 1, body);
    // Same rank: the second launch queues behind the first.
    EXPECT_NEAR(qb.sync(), kLaunchOverhead + 2 * d, 1e-12);
}

TEST(CommandQueue, SubsetLaunchRunsOnlyMembers)
{
    PimSystem sys(smallSystem(4, 2));
    CommandQueue q(sys);
    std::array<std::atomic<unsigned>, 4> ran{};
    q.launch(sys.subset({1, 3}), 1, [&](sim::Tasklet &t, unsigned g) {
        ran[g].fetch_add(1);
        t.execute(10);
    });
    q.sync();
    EXPECT_EQ(ran[0].load(), 0u);
    EXPECT_EQ(ran[1].load(), 1u);
    EXPECT_EQ(ran[2].load(), 0u);
    EXPECT_EQ(ran[3].load(), 1u);
}

TEST(CommandQueue, SubsetLaunchBusiesOnlyItsRanks)
{
    PimSystem sys(smallSystem(4, 2));
    CommandQueue q(sys);
    q.launch(sys.subset({0}), 1,
             [](sim::Tasklet &t, unsigned) { t.execute(50'000); });
    q.launch(sys.rank(1), 1,
             [](sim::Tasklet &t, unsigned) { t.execute(10); });
    q.sync();
    // Rank 1's short launch was not delayed behind rank 0's long one.
    EXPECT_NEAR(q.rankReadySeconds(1),
                2 * kLaunchOverhead + launchSeconds(10), 1e-12);
    EXPECT_GT(q.rankReadySeconds(0), q.rankReadySeconds(1));
}

TEST(CommandQueue, HeterogeneousLaunchProgram)
{
    PimSystem sys(smallSystem(4, 2));
    CommandQueue q(sys);
    // Non-uniform shards: DPU g executes (g+1) * 1000 instructions.
    q.launchProgram(sys.all(), [](sim::Dpu &dpu, unsigned g) {
        dpu.run(1, [g](sim::Tasklet &t) { t.execute((g + 1) * 1000); });
    });
    const double makespan = q.sync();
    // Rank 0 holds DPUs {0,1}, rank 1 holds {2,3}; each rank is busy
    // for its slowest member.
    EXPECT_NEAR(q.rankReadySeconds(0),
                kLaunchOverhead + launchSeconds(2000), 1e-12);
    EXPECT_NEAR(makespan, kLaunchOverhead + launchSeconds(4000), 1e-12);
}

TEST(CommandQueue, BlockingMemcpyOccupiesHostBusAndRanks)
{
    PimSystem sys(smallSystem(4, 2));
    CommandQueue q(sys);
    const double sec =
        q.memcpy(sys.all(), 1 << 20, CopyDirection::HostToPim);
    EXPECT_GT(sec, 0.0);
    EXPECT_DOUBLE_EQ(q.elapsedSeconds(), sec);
    EXPECT_DOUBLE_EQ(q.busReadySeconds(), sec);
    EXPECT_DOUBLE_EQ(q.rankReadySeconds(0), sec);
    EXPECT_EQ(q.transferredBytes(), uint64_t{4} << 20);
}

TEST(CommandQueue, AsyncMemcpyDoesNotBlockHost)
{
    PimSystem sys(smallSystem(4, 2));
    CommandQueue q(sys);
    q.memcpyAsync(sys.rank(0), 1 << 20, CopyDirection::HostToPim);
    const double host_sec = q.hostCompute(1, 1'000'000);
    q.sync();
    // The copy ran on the bus while the host computed.
    EXPECT_DOUBLE_EQ(q.hostWorkSeconds(), host_sec);
    EXPECT_GT(q.copyWorkSeconds(), 0.0);
    const double sum = host_sec + q.copyWorkSeconds();
    EXPECT_LT(q.elapsedSeconds(), sum);
}

TEST(CommandQueue, ScatterMemcpyMatchesUniformWhenEqual)
{
    PimSystem sys_a(smallSystem(4, 2));
    CommandQueue qa(sys_a);
    const double uniform =
        qa.memcpy(sys_a.all(), 4096, CopyDirection::PimToHost);

    PimSystem sys_b(smallSystem(4, 2));
    CommandQueue qb(sys_b);
    const double scatter = qb.memcpyScatter(
        sys_b.all(), {4096, 4096, 4096, 4096}, CopyDirection::PimToHost);
    EXPECT_DOUBLE_EQ(uniform, scatter);
    EXPECT_EQ(qa.transferredBytes(), qb.transferredBytes());
}

TEST(CommandQueue, ScatterMemcpyCostsSummedPayload)
{
    PimSystem sys(smallSystem(4, 2));
    CommandQueue q(sys);
    const double sec = q.memcpyScatter(
        sys.all(), {1000, 2000, 3000, 4000}, CopyDirection::HostToPim);
    EXPECT_DOUBLE_EQ(
        sec, sys.transferModel().secondsTotal(10'000, 4));
    EXPECT_EQ(q.transferredBytes(), 10'000u);
}

TEST(CommandQueue, EventDependencyOrdersAcrossTimelines)
{
    PimSystem sys(smallSystem(4, 2));
    CommandQueue q(sys);
    const Event done = q.launch(
        sys.all(), 1, [](sim::Tasklet &t, unsigned) { t.execute(1000); });
    // Explicitly ordered behind the launch completion: no overlap.
    const double host_sec = q.hostCompute(1, 1'000'000, done);
    const double makespan = q.sync();
    EXPECT_NEAR(makespan,
                kLaunchOverhead + launchSeconds(1000) + host_sec, 1e-12);
}

TEST(CommandQueue, TimelineIsThreadCountInvariant)
{
    auto run = [](unsigned threads) {
        PimSystemConfig cfg = smallSystem(16, 4);
        cfg.simThreads = threads;
        PimSystem sys(cfg);
        CommandQueue q(sys);
        q.launch(sys.all(), 4, [](sim::Tasklet &t, unsigned g) {
            t.execute(100 + g * 7 + t.id());
            t.dmaRead(0, 64);
        });
        q.hostCompute(3, 12345);
        q.memcpy(sys.rank(1), 4096, CopyDirection::PimToHost);
        q.launch(sys.rank(2), 2,
                 [](sim::Tasklet &t, unsigned) { t.execute(77); });
        return q.sync();
    };
    const double s1 = run(1);
    const double s8 = run(8);
    EXPECT_EQ(s1, s8); // bit-identical timeline
    EXPECT_GT(s1, 0.0);
}

TEST(CommandQueue, ResetTimelineKeepsDpuState)
{
    PimSystem sys(smallSystem(2, 2));
    CommandQueue q(sys);
    q.launch(sys.all(), 1, [](sim::Tasklet &t, unsigned) {
        t.execute(500);
    });
    q.memcpy(sys.all(), 1024, CopyDirection::HostToPim);
    EXPECT_GT(q.sync(), 0.0);
    q.resetTimeline();
    EXPECT_DOUBLE_EQ(q.elapsedSeconds(), 0.0);
    EXPECT_DOUBLE_EQ(q.busReadySeconds(), 0.0);
    EXPECT_EQ(q.transferredBytes(), 0u);
    EXPECT_DOUBLE_EQ(q.launchWorkSeconds(), 0.0);
    // DPU state (last run) survives the timeline reset.
    EXPECT_EQ(sys.dpu(0).lastElapsedCycles(), 500u * 11u);
}

TEST(CommandQueue, UnsampledRanksChargedRepresentativeMakespan)
{
    // 128 DPUs in 2 ranks but only one materialized DPU (global 0,
    // rank 0): a whole-system launch must still busy rank 1 for the
    // representative duration.
    PimSystem sys(smallSystem(128, 64, 1));
    CommandQueue q(sys);
    q.launch(sys.all(), 1,
             [](sim::Tasklet &t, unsigned) { t.execute(9000); });
    const double makespan = q.sync();
    EXPECT_NEAR(q.rankReadySeconds(1),
                kLaunchOverhead + launchSeconds(9000), 1e-12);
    EXPECT_NEAR(makespan, kLaunchOverhead + launchSeconds(9000), 1e-12);
}

TEST(PimSystem, SamplePerRankCoversEveryRankOfRaggedSystems)
{
    // 100 DPUs in 64-DPU ranks: even-spread sampling with 2 samples
    // lands both in rank 0 ({0, 50}); per-rank sampling must pick the
    // first DPU of each rank instead.
    PimSystemConfig cfg = smallSystem(100, 64);
    cfg.samplePerRank = true;
    PimSystem sys(cfg);
    ASSERT_EQ(sys.sampleCount(), 2u);
    EXPECT_EQ(sys.globalIndex(0), 0u);
    EXPECT_EQ(sys.globalIndex(1), 64u);
    EXPECT_EQ(sys.rank(1).slots().size(), 1u);

    // A launch on the tail rank is really simulated, not costed zero.
    CommandQueue q(sys);
    q.launch(sys.rank(1), 1,
             [](sim::Tasklet &t, unsigned) { t.execute(5000); });
    q.sync();
    EXPECT_NEAR(q.rankReadySeconds(1),
                kLaunchOverhead + launchSeconds(5000), 1e-12);
}

TEST(CommandQueue, ResetTimelineRebasesEarlierEvents)
{
    PimSystem sys(smallSystem(2, 2));
    CommandQueue q(sys);
    const Event e = q.launch(
        sys.all(), 1, [](sim::Tasklet &t, unsigned) { t.execute(9000); });
    q.sync();
    q.resetTimeline();
    // A pre-reset event must not leak its old absolute completion time
    // into the new epoch.
    const double host_sec = q.hostCompute(1, 1000, e);
    EXPECT_DOUBLE_EQ(q.sync(), host_sec);
}

TEST(CommandQueue, HostIdleUntilAdvancesButNeverRewinds)
{
    PimSystem sys(smallSystem(2, 2));
    CommandQueue q(sys);
    q.hostIdleUntil(1.5);
    EXPECT_DOUBLE_EQ(q.sync(), 1.5);
    q.hostIdleUntil(1.0); // already past: no-op
    EXPECT_DOUBLE_EQ(q.sync(), 1.5);
    EXPECT_DOUBLE_EQ(q.hostWorkSeconds(), 0.0); // idling is not work
}

TEST(PimSystem, RankRangeAndArbitraryRankSets)
{
    PimSystem sys(smallSystem(512, 64)); // 8 ranks
    const DpuSet head = sys.rankRange(0, 2);
    EXPECT_EQ(head.size(), 128u);
    EXPECT_EQ(head.ranks(), (std::vector<unsigned>{0, 1}));
    EXPECT_TRUE(head.contains(0));
    EXPECT_TRUE(head.contains(127));
    EXPECT_FALSE(head.contains(128));

    const DpuSet odd = sys.ranks({5, 3, 5, 1});
    EXPECT_EQ(odd.ranks(), (std::vector<unsigned>{1, 3, 5}));
    EXPECT_EQ(odd.size(), 192u);
    EXPECT_TRUE(odd.contains(64));
    EXPECT_FALSE(odd.contains(0));
    EXPECT_FALSE(odd.contains(128)); // rank 2
}

TEST(PimSystem, RankRangeCoversRaggedTail)
{
    PimSystem sys(smallSystem(10, 4)); // ranks of 4, 4, 2
    const DpuSet tail = sys.rankRange(2, 1);
    EXPECT_EQ(tail.size(), 2u);
    EXPECT_TRUE(tail.contains(9));
    EXPECT_EQ(sys.rankRange(0, 3).size(), 10u);
}

TEST(PimSystem, ComplementSplitsTheSystem)
{
    PimSystem sys(smallSystem(512, 64));
    const DpuSet head = sys.rankRange(0, 3);
    const DpuSet rest = head.complement();
    EXPECT_EQ(rest.ranks(), (std::vector<unsigned>{3, 4, 5, 6, 7}));
    EXPECT_EQ(head.size() + rest.size(), sys.numDpus());
    for (unsigned g = 0; g < sys.numDpus(); g += 37)
        EXPECT_NE(head.contains(g), rest.contains(g)) << g;
    // Every materialized slot lands in exactly one side.
    EXPECT_EQ(head.slots().size() + rest.slots().size(),
              static_cast<size_t>(sys.sampleCount()));

    const DpuSet not3 = sys.rank(3).complement();
    EXPECT_EQ(not3.ranks().size(), 7u);
    EXPECT_FALSE(not3.contains(192));
    EXPECT_TRUE(not3.contains(191));
}

TEST(PimSystem, ComplementOfExplicitSubsetIsExplicit)
{
    PimSystem sys(smallSystem(8, 4));
    const DpuSet rest = sys.subset({0, 2, 4, 6}).complement();
    EXPECT_EQ(rest.size(), 4u);
    EXPECT_TRUE(rest.contains(1));
    EXPECT_TRUE(rest.contains(7));
    EXPECT_FALSE(rest.contains(0));
}

TEST(PimSystem, PartitionRanksRespectsFractionAndClamps)
{
    PimSystem sys(smallSystem(512, 64));
    const auto [pre, dec] = sys.partitionRanks(0.25);
    EXPECT_EQ(pre.ranks().size(), 2u);
    EXPECT_EQ(dec.ranks().size(), 6u);
    // Both partitions stay non-empty at the extremes.
    EXPECT_EQ(sys.partitionRanks(0.0).first.ranks().size(), 1u);
    EXPECT_EQ(sys.partitionRanks(1.0).first.ranks().size(), 7u);
}

TEST(CommandQueue, LaunchTimedOccupiesExactlyTheTargetRanks)
{
    PimSystem sys(smallSystem(512, 64));
    CommandQueue q(sys);
    const Event e = q.launchTimed(sys.rankRange(0, 2), 2e-3);
    EXPECT_NEAR(q.eventSeconds(e), kLaunchOverhead + 2e-3, 1e-12);
    EXPECT_NEAR(q.rankReadySeconds(0), kLaunchOverhead + 2e-3, 1e-12);
    EXPECT_NEAR(q.rankReadySeconds(1), kLaunchOverhead + 2e-3, 1e-12);
    EXPECT_DOUBLE_EQ(q.rankReadySeconds(2), 0.0);
    // Back-to-back timed launches on disjoint partitions overlap.
    q.launchTimed(sys.rankRange(2, 6), 5e-3);
    const double makespan = q.sync();
    EXPECT_NEAR(makespan, 2 * kLaunchOverhead + 5e-3, 1e-12);
}

TEST(CommandQueue, BufferedScatterDoesNotStallTargetRanks)
{
    PimSystem sys(smallSystem(512, 64));
    CommandQueue q(sys);
    const DpuSet dec = sys.rankRange(4, 4);
    const Event attn = q.launchTimed(dec, 10e-3);
    // A double-buffered append lands while the ranks keep computing...
    const Event ship = q.memcpyScatterBufferedAsync(
        dec, std::vector<uint64_t>(dec.size(), 4096),
        CopyDirection::HostToPim);
    const double ship_end = q.eventSeconds(ship);
    EXPECT_LT(ship_end, q.eventSeconds(attn));
    EXPECT_NEAR(q.rankReadySeconds(4), kLaunchOverhead + 10e-3, 1e-12);
    // ...whereas a rank-occupying scatter serializes behind the launch.
    const Event full = q.memcpyScatterAsync(
        dec, std::vector<uint64_t>(dec.size(), 4096),
        CopyDirection::HostToPim);
    EXPECT_GT(q.eventSeconds(full), q.eventSeconds(attn));
    EXPECT_NEAR(q.rankReadySeconds(4), q.eventSeconds(full), 1e-12);
}

TEST(CommandQueue, EventSecondsOrdersDependentTimedLaunches)
{
    PimSystem sys(smallSystem(512, 64));
    CommandQueue q(sys);
    const DpuSet a = sys.rankRange(0, 1);
    const DpuSet b = sys.rankRange(1, 1);
    const Event first = q.launchTimed(a, 1e-3);
    // Dependent launch on a different rank starts only after `first`.
    const Event second = q.launchTimed(b, 1e-3, first);
    EXPECT_NEAR(q.eventSeconds(second),
                q.eventSeconds(first) + 1e-3, 1e-12);
    // eventSeconds drains but does not join: the host is still at the
    // issue point, not the makespan.
    EXPECT_LT(q.elapsedSeconds(), q.eventSeconds(second));
}

namespace {

/** Check a partition's invariants against the set that produced it. */
void
expectPartitionMatchesSet(const PimSystem &sys, const DpuSet &set)
{
    const SlotPartition &p = *set.partition();
    EXPECT_EQ(p.ranks, set.ranks());
    EXPECT_EQ(p.slots, set.slots());
    ASSERT_EQ(p.rankSlotBegin.size(), p.ranks.size() + 1);
    EXPECT_EQ(p.rankSlotBegin.front(), 0u);
    EXPECT_EQ(p.rankSlotBegin.back(), p.slots.size());
    for (size_t ri = 0; ri < p.ranks.size(); ++ri) {
        const unsigned jb = p.rankSlotBegin[ri];
        const unsigned je = p.rankSlotBegin[ri + 1];
        EXPECT_LE(jb, je);
        // Every slot in rank ri's run really belongs to rank ri.
        for (unsigned j = jb; j < je; ++j)
            EXPECT_EQ(sys.rankOf(sys.globalIndex(p.slots[j])),
                      p.ranks[ri]);
    }
}

} // namespace

TEST(SlotPartitionCache, RunsCoverRaggedTailSubsetAndComplement)
{
    // 130 DPUs over 64-wide ranks: rank 2 is a ragged 2-DPU tail.
    // Sampling (16 of 130) exercises non-contiguous slot→global maps.
    PimSystem sys(smallSystem(130, 64, 16));
    expectPartitionMatchesSet(sys, sys.all());
    expectPartitionMatchesSet(sys, sys.rank(2));
    expectPartitionMatchesSet(sys, sys.rankRange(1, 2));
    expectPartitionMatchesSet(sys, sys.rank(1).complement());
    expectPartitionMatchesSet(sys, sys.ranks({0, 2}));
    // Explicit subset straddling all three ranks, incl. the tail.
    expectPartitionMatchesSet(sys, sys.subset({0, 63, 64, 127, 129}));
    // Unsampled full-population system for comparison.
    PimSystem full(smallSystem(130, 64));
    expectPartitionMatchesSet(full, full.all());
    expectPartitionMatchesSet(full, full.subset({5, 70, 128}));
}

TEST(SlotPartitionCache, MemoizedPerSetAndSharedForFullSystem)
{
    PimSystem sys(smallSystem(256, 64, 32));
    const DpuSet sub = sys.rankRange(0, 2);
    // Repeated partition() calls on one set return the same instance.
    EXPECT_EQ(sub.partition().get(), sub.partition().get());
    // Every full-system set shares the system-wide cached partition.
    EXPECT_EQ(sys.all().partition().get(), sys.allPartition().get());
    EXPECT_EQ(sys.all().partition().get(), sys.all().partition().get());
    // Distinct subset sets memoize independently but agree on content.
    const DpuSet twin = sys.rankRange(0, 2);
    EXPECT_NE(sub.partition().get(), twin.partition().get());
    EXPECT_EQ(sub.partition()->slots, twin.partition()->slots);
}
