/**
 * @file
 * Tests for the synthetic graph generator and the update-stream split.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "workloads/graph/graph_gen.hh"
#include "workloads/graph/update_driver.hh"

using namespace pim::workloads::graph;

namespace {

GraphGenConfig
smallCfg()
{
    GraphGenConfig cfg;
    cfg.numNodes = 1000;
    cfg.numEdges = 5000;
    cfg.seed = 3;
    return cfg;
}

} // namespace

TEST(GraphGen, ExactEdgeCount)
{
    const auto g = generateGraph(smallCfg());
    EXPECT_EQ(g.numNodes, 1000u);
    EXPECT_EQ(g.edges.size(), 5000u);
}

TEST(GraphGen, Deterministic)
{
    const auto a = generateGraph(smallCfg());
    const auto b = generateGraph(smallCfg());
    ASSERT_EQ(a.edges.size(), b.edges.size());
    for (size_t i = 0; i < a.edges.size(); ++i) {
        EXPECT_EQ(a.edges[i].src, b.edges[i].src);
        EXPECT_EQ(a.edges[i].dst, b.edges[i].dst);
    }
}

TEST(GraphGen, NodesInRangeNoSelfLoops)
{
    const auto g = generateGraph(smallCfg());
    for (const auto &e : g.edges) {
        EXPECT_LT(e.src, g.numNodes);
        EXPECT_LT(e.dst, g.numNodes);
        EXPECT_NE(e.src, e.dst);
    }
}

TEST(GraphGen, DegreeDistributionIsSkewed)
{
    const auto g = generateGraph(smallCfg());
    std::map<uint32_t, uint32_t> degree;
    for (const auto &e : g.edges)
        ++degree[e.src];
    uint32_t max_degree = 0;
    for (const auto &[n, d] : degree)
        max_degree = std::max(max_degree, d);
    const double mean = 5000.0 / 1000.0;
    // Power-law: the hottest node far exceeds the mean degree.
    EXPECT_GT(max_degree, 10 * mean);
}

TEST(GraphGen, DegreeCapRespected)
{
    GraphGenConfig cfg = smallCfg();
    cfg.maxDegree = 16;
    const auto g = generateGraph(cfg);
    std::map<uint32_t, uint32_t> degree;
    for (const auto &e : g.edges)
        ++degree[e.src];
    for (const auto &[n, d] : degree)
        EXPECT_LE(d, 16u);
}

TEST(SplitForUpdate, PaperRatioOneToTwo)
{
    const auto g = generateGraph(smallCfg());
    const auto w = splitForUpdate(g, 1.0 / 3.0, 7);
    EXPECT_EQ(w.updateEdges.size(), g.edges.size() / 3);
    EXPECT_EQ(w.baseEdges.size() + w.updateEdges.size(), g.edges.size());
}

TEST(SplitForUpdate, PartitionIsExact)
{
    const auto g = generateGraph(smallCfg());
    const auto w = splitForUpdate(g, 0.25, 9);
    // Every original edge appears exactly once across the two sets.
    auto key = [](const Edge &e) {
        return (static_cast<uint64_t>(e.src) << 32) | e.dst;
    };
    std::multiset<uint64_t> original, split;
    for (const auto &e : g.edges)
        original.insert(key(e));
    for (const auto &e : w.baseEdges)
        split.insert(key(e));
    for (const auto &e : w.updateEdges)
        split.insert(key(e));
    EXPECT_EQ(original, split);
}

TEST(SplitForUpdate, SeedChangesSelection)
{
    const auto g = generateGraph(smallCfg());
    const auto a = splitForUpdate(g, 0.3, 1);
    const auto b = splitForUpdate(g, 0.3, 2);
    bool differs = false;
    for (size_t i = 0; i < a.updateEdges.size() && !differs; ++i) {
        differs = a.updateEdges[i].src != b.updateEdges[i].src
            || a.updateEdges[i].dst != b.updateEdges[i].dst;
    }
    EXPECT_TRUE(differs);
}

TEST(ShardOf, UniformAndStable)
{
    std::vector<uint32_t> counts(16, 0);
    for (uint32_t u = 0; u < 16000; ++u) {
        const unsigned s = shardOf(u, 16);
        ASSERT_LT(s, 16u);
        EXPECT_EQ(s, shardOf(u, 16)); // stable
        ++counts[s];
    }
    for (uint32_t c : counts) {
        EXPECT_GT(c, 600u); // roughly uniform (1000 +/- 40%)
        EXPECT_LT(c, 1400u);
    }
}
