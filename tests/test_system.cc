/**
 * @file
 * Tests for the multi-DPU reduction helper.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <vector>

#include "core/system.hh"

using namespace pim;
using namespace pim::core;

TEST(System, MaxReduction)
{
    const auto r = simulateDpus(4, sim::DpuConfig{},
                                [](sim::Dpu &dpu, unsigned idx) {
                                    dpu.run(1, [idx](sim::Tasklet &t) {
                                        t.execute(10 * (idx + 1));
                                    });
                                });
    EXPECT_EQ(r.numDpus, 4u);
    EXPECT_EQ(r.simulatedDpus, 4u);
    EXPECT_EQ(r.maxCycles, 40u * 11u); // slowest DPU
}

TEST(System, SamplingSpreadsIndices)
{
    // Programs run concurrently across host workers, so collect the
    // global indices under a mutex and sort before asserting.
    std::mutex mu;
    std::vector<unsigned> indices;
    simulateDpus(512, sim::DpuConfig{},
                 [&](sim::Dpu &dpu, unsigned idx) {
                     {
                         std::lock_guard<std::mutex> lock(mu);
                         indices.push_back(idx);
                     }
                     dpu.run(1, [](sim::Tasklet &t) { t.execute(1); });
                 },
                 4);
    std::sort(indices.begin(), indices.end());
    ASSERT_EQ(indices.size(), 4u);
    EXPECT_EQ(indices[0], 0u);
    EXPECT_EQ(indices[1], 128u);
    EXPECT_EQ(indices[3], 384u);
}

TEST(System, SamplingRepresentsNonDivisibleTail)
{
    // 10 DPUs sampled by 4: the even spread must reach the tail the
    // old stride mapping (stride 10/4 = 2 -> {0,2,4,6}) never hit.
    std::mutex mu;
    std::vector<unsigned> indices;
    simulateDpus(10, sim::DpuConfig{},
                 [&](sim::Dpu &dpu, unsigned idx) {
                     {
                         std::lock_guard<std::mutex> lock(mu);
                         indices.push_back(idx);
                     }
                     dpu.run(1, [](sim::Tasklet &t) { t.execute(1); });
                 },
                 4);
    std::sort(indices.begin(), indices.end());
    ASSERT_EQ(indices.size(), 4u);
    EXPECT_EQ(indices[0], 0u);
    EXPECT_EQ(indices[1], 2u);
    EXPECT_EQ(indices[2], 5u);
    EXPECT_EQ(indices[3], 7u);
}

TEST(System, TrafficScalesFromSample)
{
    const auto r = simulateDpus(
        100, sim::DpuConfig{},
        [](sim::Dpu &dpu, unsigned) {
            dpu.run(1, [](sim::Tasklet &t) { t.dmaRead(0, 1000); });
        },
        2);
    // 2 simulated DPUs read 1000 B each; scaled to 100 DPUs.
    EXPECT_EQ(r.traffic.dataReadBytes, 100u * 1000u);
}

TEST(System, BreakdownAggregates)
{
    const auto r = simulateDpus(
        2, sim::DpuConfig{},
        [](sim::Dpu &dpu, unsigned) {
            dpu.run(1, [](sim::Tasklet &t) {
                t.execute(10, sim::CycleKind::Run);
            });
        });
    EXPECT_EQ(r.breakdown.of(sim::CycleKind::Run), 2u * 110u);
}

TEST(System, SecondsConversion)
{
    const auto r = simulateDpus(1, sim::DpuConfig{},
                                [](sim::Dpu &dpu, unsigned) {
                                    dpu.run(1, [](sim::Tasklet &t) {
                                        t.execute(350'000);
                                    });
                                });
    EXPECT_NEAR(r.maxSeconds, 350'000 * 11 / 0.35e9, 1e-9);
    EXPECT_NEAR(r.meanSeconds, r.maxSeconds, 1e-12);
}
