/**
 * @file
 * Drain-mode contract tests. The pipelined drain (PIM_SIM_DRAIN=
 * pipelined) must be an invisible optimization: for any command script
 * — tenants, dependencies, callbacks, scatter copies, timed launches,
 * injected faults — its complete observable outcome is bit-identical
 * to the classic barrier drain, and invariant across worker-thread
 * counts. The differentials below compare full outcome digests with
 * exact double equality, the same bar the mutex-mode fuzz sets.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/command_queue.hh"
#include "core/pim_system.hh"
#include "fault/injector.hh"
#include "sim/dpu.hh"
#include "util/rng.hh"

using namespace pim;
using core::CommandQueue;

namespace {

/** Everything a command script can observe, for exact comparison. */
struct Outcome
{
    std::vector<double> eventTimes;
    std::vector<char> eventFailed;
    std::vector<double> makespans;
    std::vector<double> hostT;
    std::vector<double> rankT;
    double busT = 0.0;
    uint64_t transferredBytes = 0;
    double launchWork = 0.0;
    double copyWork = 0.0;
    double hostWork = 0.0;
    /** Callback dispatch sequence: (event, completion time) pairs in
     *  invocation order, onError entries with negated time. */
    std::vector<std::pair<core::Event, double>> callbacks;
    /** Order-insensitive sum folded from every launch-body execution
     *  (the launch bodies really ran, on whatever thread). */
    uint64_t workSum = 0;
};

void
expectEqualOutcome(const Outcome &a, const Outcome &b)
{
    EXPECT_EQ(a.eventTimes, b.eventTimes);
    EXPECT_EQ(a.eventFailed, b.eventFailed);
    EXPECT_EQ(a.makespans, b.makespans);
    EXPECT_EQ(a.hostT, b.hostT);
    EXPECT_EQ(a.rankT, b.rankT);
    EXPECT_EQ(a.busT, b.busT);
    EXPECT_EQ(a.transferredBytes, b.transferredBytes);
    EXPECT_EQ(a.launchWork, b.launchWork);
    EXPECT_EQ(a.copyWork, b.copyWork);
    EXPECT_EQ(a.hostWork, b.hostWork);
    EXPECT_EQ(a.callbacks, b.callbacks);
    EXPECT_EQ(a.workSum, b.workSum);
}

/**
 * A seeded random command storm: three sync rounds of launches (plain,
 * multi-tasklet, timed), async/buffered/scatter copies, host compute,
 * chained dependencies, three tenants, and completion/error callbacks,
 * against full-system, per-rank, rank-range, complement, and explicit
 * subset targets.
 */
Outcome
runScript(CommandQueue::DrainMode mode, unsigned threads, uint64_t seed,
          bool faults)
{
    core::PimSystemConfig cfg;
    cfg.numDpus = 256; // 4 ranks of 64
    cfg.sampleDpus = 32;
    cfg.simThreads = threads;
    core::PimSystem sys(cfg);
    CommandQueue queue(sys);
    queue.setDrainMode(mode);

    std::unique_ptr<fault::FaultInjector> inj;
    if (faults) {
        // Explicit schedule (not MTBF-drawn) so every fault class is
        // guaranteed to fire inside the script's short makespan: a
        // hang reaped by the timeout, a degraded rank, a transient
        // transfer, and a rank that dies almost immediately (poisoning
        // every dependent chain that touches it).
        fault::FaultSpec fs;
        fs.launchTimeoutSec = 0.01;
        std::vector<fault::FaultEvent> evs;
        fault::FaultEvent hang;
        hang.kind = fault::FaultKind::LaunchHang;
        hang.atSec = 1e-4;
        hang.rank = 0;
        evs.push_back(hang);
        fault::FaultEvent xfer;
        xfer.kind = fault::FaultKind::TransientTransfer;
        xfer.atSec = 2e-4;
        xfer.attempts = 2;
        evs.push_back(xfer);
        fault::FaultEvent degrade;
        degrade.kind = fault::FaultKind::RankDegrade;
        degrade.atSec = 0.0;
        degrade.rank = 1;
        degrade.multiplier = 3.0;
        degrade.durationSec = 0.01;
        evs.push_back(degrade);
        fault::FaultEvent dead;
        dead.kind = fault::FaultKind::RankFail;
        dead.atSec = 5e-4;
        dead.rank = 2;
        evs.push_back(dead);
        inj = std::make_unique<fault::FaultInjector>(
            fault::FaultPlan(fs, std::move(evs), sys.numRanks()));
        queue.attachFaultInjector(inj.get());
    }

    const core::TenantId tenants[3] = {core::kDefaultTenant,
                                       queue.addTenant("alpha"),
                                       queue.addTenant("beta")};

    std::vector<core::DpuSet> sets;
    sets.push_back(sys.all());
    for (unsigned r = 0; r < sys.numRanks(); ++r)
        sets.push_back(sys.rank(r));
    sets.push_back(sys.rankRange(1, 2));
    sets.push_back(sys.rank(0).complement());
    sets.push_back(sys.subset({sys.globalIndex(0), sys.globalIndex(3),
                               sys.globalIndex(9), sys.globalIndex(20),
                               sys.globalIndex(31)}));

    Outcome out;
    std::atomic<uint64_t> work_sum{0};
    util::Rng rng(seed * 7919 + 17);
    std::vector<core::Event> recent;

    auto mkopts = [&]() {
        core::CommandOptions o;
        o.tenant = tenants[rng.uniformInt(3)];
        if (!recent.empty() && rng.bernoulli(0.4))
            o.after = recent[recent.size() - 1
                             - rng.uniformInt(std::min<uint64_t>(
                                   recent.size(), 6))];
        return o;
    };
    auto direction = [&]() {
        return rng.bernoulli(0.5) ? core::CopyDirection::HostToPim
                                  : core::CopyDirection::PimToHost;
    };

    for (int round = 0; round < 3; ++round) {
        std::vector<core::Event> round_events;
        for (int i = 0; i < 110; ++i) {
            const core::DpuSet &set =
                sets[rng.uniformInt(sets.size())];
            core::Event e = core::kNoEvent;
            switch (rng.uniformInt(8)) {
              case 0:
              case 1:
              case 2: {
                const uint32_t w =
                    20 + static_cast<uint32_t>(rng.uniformInt(40));
                e = queue.launch(
                    set, 1 + static_cast<unsigned>(rng.uniformInt(3)),
                    [w, &work_sum](sim::Tasklet &t, unsigned global) {
                        t.execute(w + global % 11);
                        work_sum.fetch_add(global + w,
                                           std::memory_order_relaxed);
                    },
                    mkopts());
                break;
              }
              case 3:
                e = queue.launchTimed(
                    set, 1e-4 * static_cast<double>(
                                    1 + rng.uniformInt(20)),
                    mkopts());
                break;
              case 4:
                e = queue.memcpyAsync(set, 256 + rng.uniformInt(4096),
                                      direction(), mkopts());
                break;
              case 5:
                e = queue.memcpyBufferedAsync(
                    set, 128 + rng.uniformInt(1024), direction(),
                    mkopts());
                break;
              case 6: {
                std::vector<uint64_t> per_dpu(set.size());
                for (uint64_t &b : per_dpu)
                    b = 8 + rng.uniformInt(64);
                e = queue.memcpyScatterAsync(set, std::move(per_dpu),
                                             direction(), mkopts());
                break;
              }
              case 7:
                queue.hostCompute(1 + rng.uniformInt(64), 200,
                                  mkopts());
                break;
            }
            if (e != core::kNoEvent) {
                if (rng.bernoulli(0.25))
                    queue.onComplete(e, [&out](core::Event ev,
                                               double sec) {
                        out.callbacks.emplace_back(ev, sec);
                    });
                if (faults && rng.bernoulli(0.25))
                    queue.onError(e,
                                  [&out](core::Event ev, double sec) {
                                      out.callbacks.emplace_back(ev,
                                                                 -sec);
                                  });
                recent.push_back(e);
                round_events.push_back(e);
            }
        }
        // Query every event of the round before sync() compacts it.
        for (const core::Event e : round_events) {
            out.eventTimes.push_back(queue.eventSeconds(e));
            out.eventFailed.push_back(queue.eventFailed(e) ? 1 : 0);
        }
        out.makespans.push_back(queue.sync());
    }

    for (unsigned t = 0; t < queue.tenantCount(); ++t)
        out.hostT.push_back(queue.hostSeconds(t));
    for (unsigned r = 0; r < sys.numRanks(); ++r)
        out.rankT.push_back(queue.rankReadySeconds(r));
    out.busT = queue.busReadySeconds();
    out.transferredBytes = queue.transferredBytes();
    out.launchWork = queue.launchWorkSeconds();
    out.copyWork = queue.copyWorkSeconds();
    out.hostWork = queue.hostWorkSeconds();
    out.workSum = work_sum.load();
    return out;
}

} // namespace

/** Seeded random-script differential: barrier vs pipelined, exact. */
class DrainModeFuzz
    : public ::testing::TestWithParam<std::tuple<int, bool>>
{
};

TEST_P(DrainModeFuzz, PipelinedMatchesBarrierExactly)
{
    const auto [seed, faults] = GetParam();
    const Outcome barrier =
        runScript(CommandQueue::DrainMode::Barrier, 4,
                  static_cast<uint64_t>(seed), faults);
    const Outcome pipelined =
        runScript(CommandQueue::DrainMode::Pipelined, 4,
                  static_cast<uint64_t>(seed), faults);
    expectEqualOutcome(barrier, pipelined);
    EXPECT_FALSE(barrier.eventTimes.empty());
    EXPECT_FALSE(barrier.callbacks.empty());
    if (faults) {
        // The fault plan actually fired, so the differential covered
        // the failure paths too.
        bool any_failed = false;
        for (const char f : barrier.eventFailed)
            any_failed = any_failed || f != 0;
        EXPECT_TRUE(any_failed);
    }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndFaults, DrainModeFuzz,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(false, true)));

TEST(DrainMode, PipelinedIsThreadCountInvariant)
{
    // threads=1 exercises the barrier fallback (no pool to overlap
    // with), 4 and 7 the dispatched pipeline with ragged slicing.
    const Outcome one =
        runScript(CommandQueue::DrainMode::Pipelined, 1, 2, true);
    const Outcome four =
        runScript(CommandQueue::DrainMode::Pipelined, 4, 2, true);
    const Outcome seven =
        runScript(CommandQueue::DrainMode::Pipelined, 7, 2, true);
    expectEqualOutcome(one, four);
    expectEqualOutcome(one, seven);
}

TEST(DrainMode, EnvParsing)
{
    EXPECT_EQ(CommandQueue::drainModeFromEnv(nullptr),
              CommandQueue::DrainMode::Barrier);
    EXPECT_EQ(CommandQueue::drainModeFromEnv(""),
              CommandQueue::DrainMode::Barrier);
    EXPECT_EQ(CommandQueue::drainModeFromEnv("barrier"),
              CommandQueue::DrainMode::Barrier);
    EXPECT_EQ(CommandQueue::drainModeFromEnv("pipelined"),
              CommandQueue::DrainMode::Pipelined);
    EXPECT_STREQ(
        CommandQueue::drainModeName(CommandQueue::DrainMode::Barrier),
        "barrier");
    EXPECT_STREQ(
        CommandQueue::drainModeName(CommandQueue::DrainMode::Pipelined),
        "pipelined");
}

TEST(DrainModeDeathTest, GarbageEnvValueIsFatal)
{
    EXPECT_DEATH(CommandQueue::drainModeFromEnv("fast"),
                 "PIM_SIM_DRAIN");
}

TEST(DrainMode, DefaultLatchesEnvAndOverrides)
{
    const char *saved = std::getenv("PIM_SIM_DRAIN");
    const std::string saved_val = saved != nullptr ? saved : "";

    ::setenv("PIM_SIM_DRAIN", "pipelined", 1);
    CommandQueue::resetDefaultDrainModeForTesting();
    EXPECT_EQ(CommandQueue::defaultDrainMode(),
              CommandQueue::DrainMode::Pipelined);
    // Latched: a later env change is deliberately ignored.
    ::setenv("PIM_SIM_DRAIN", "barrier", 1);
    EXPECT_EQ(CommandQueue::defaultDrainMode(),
              CommandQueue::DrainMode::Pipelined);
    // Programmatic override wins.
    CommandQueue::setDefaultDrainMode(CommandQueue::DrainMode::Barrier);
    EXPECT_EQ(CommandQueue::defaultDrainMode(),
              CommandQueue::DrainMode::Barrier);

    // New queues start from the default in force at construction.
    CommandQueue::setDefaultDrainMode(
        CommandQueue::DrainMode::Pipelined);
    core::PimSystemConfig cfg;
    cfg.numDpus = 64;
    cfg.sampleDpus = 2;
    core::PimSystem sys(cfg);
    CommandQueue queue(sys);
    EXPECT_EQ(queue.drainMode(), CommandQueue::DrainMode::Pipelined);

    if (saved != nullptr)
        ::setenv("PIM_SIM_DRAIN", saved_val.c_str(), 1);
    else
        ::unsetenv("PIM_SIM_DRAIN");
    CommandQueue::resetDefaultDrainModeForTesting();
}

TEST(DrainMode, SetDrainModeDrainsPendingFirst)
{
    core::PimSystemConfig cfg;
    cfg.numDpus = 64;
    cfg.sampleDpus = 4;
    cfg.simThreads = 2;
    core::PimSystem sys(cfg);
    CommandQueue queue(sys);
    queue.setDrainMode(CommandQueue::DrainMode::Barrier);

    std::atomic<int> runs{0};
    queue.launch(sys.all(), 1, [&](sim::Tasklet &t, unsigned) {
        t.execute(10);
        runs.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(queue.pendingCommands(), 1u);
    queue.setDrainMode(CommandQueue::DrainMode::Pipelined);
    EXPECT_EQ(queue.pendingCommands(), 0u);
    EXPECT_EQ(runs.load(), 4);
    EXPECT_EQ(queue.drainMode(), CommandQueue::DrainMode::Pipelined);
    EXPECT_EQ(queue.drainStats().drains, 1u);
    EXPECT_EQ(queue.drainStats().commands, 1u);
}

TEST(DrainStats, AccumulateAndResetWithTimeline)
{
    core::PimSystemConfig cfg;
    cfg.numDpus = 128;
    cfg.sampleDpus = 4;
    cfg.simThreads = 2;
    core::PimSystem sys(cfg);
    CommandQueue queue(sys);
    queue.setDrainMode(CommandQueue::DrainMode::Pipelined);

    for (int i = 0; i < 3; ++i)
        queue.launch(sys.all(), 1,
                     [](sim::Tasklet &t, unsigned) { t.execute(25); });
    queue.memcpyAsync(sys.all(), 1024,
                      core::CopyDirection::HostToPim);
    queue.sync();
    const CommandQueue::DrainStats &st = queue.drainStats();
    EXPECT_EQ(st.drains, 1u);
    EXPECT_EQ(st.commands, 4u);
    EXPECT_GT(st.wallSec, 0.0);
    EXPECT_GE(st.phase1Sec, 0.0);
    EXPECT_GE(st.phase2Sec, 0.0);

    queue.resetTimeline();
    EXPECT_EQ(queue.drainStats().drains, 0u);
    EXPECT_EQ(queue.drainStats().commands, 0u);
    EXPECT_EQ(queue.drainStats().wallSec, 0.0);
}
