/**
 * @file
 * Tests for the analytic host, transfer, and area models used by the
 * design-space exploration and the Section VI-F overhead numbers.
 */

#include <gtest/gtest.h>

#include "sim/area_model.hh"
#include "sim/host_model.hh"
#include "sim/transfer_model.hh"

using namespace pim::sim;

TEST(HostModel, SerialTime)
{
    HostConfig cfg;
    cfg.clockGhz = 2.0;
    cfg.ipc = 2.0;
    HostModel h(cfg);
    // 4e9 instructions at 4e9 instr/s = 1 s.
    EXPECT_NEAR(h.serialSeconds(4'000'000'000ull), 1.0, 1e-9);
}

TEST(HostModel, ParallelWaves)
{
    HostConfig cfg;
    cfg.threads = 4;
    HostModel h(cfg);
    // 8 tasks on 4 threads = 2 waves.
    EXPECT_NEAR(h.seconds(8, 1000), 2 * h.serialSeconds(1000), 1e-12);
    // 9 tasks = 3 waves (ceil).
    EXPECT_NEAR(h.seconds(9, 1000), 3 * h.serialSeconds(1000), 1e-12);
    EXPECT_EQ(h.seconds(0, 1000), 0.0);
}

TEST(HostModel, MoreThreadsNeverSlower)
{
    HostConfig a, b;
    a.threads = 2;
    b.threads = 16;
    EXPECT_GE(HostModel(a).seconds(64, 500), HostModel(b).seconds(64, 500));
}

TEST(TransferModel, BandwidthSaturates)
{
    TransferModel x;
    const double bw1 = x.bandwidth(1);
    const double bw512 = x.bandwidth(512);
    EXPECT_DOUBLE_EQ(bw1, x.config().perDpuBytesPerSec);
    EXPECT_DOUBLE_EQ(bw512, x.config().peakBytesPerSec);
    EXPECT_LE(x.bandwidth(4), 4 * bw1 + 1);
}

TEST(TransferModel, TimeScalesWithPayload)
{
    TransferModel x;
    const double small = x.seconds(1024, 64);
    const double big = x.seconds(1024 * 1024, 64);
    EXPECT_GT(big, small);
    EXPECT_EQ(x.seconds(0, 64), 0.0);
    EXPECT_EQ(x.seconds(1024, 0), 0.0);
}

TEST(TransferModel, LatencyFloorsSmallTransfers)
{
    TransferModel x;
    // An 8-byte transfer is dominated by the launch latency.
    EXPECT_NEAR(x.seconds(8, 1), x.config().launchLatencySec, 1e-6);
}

TEST(TransferModel, PerDpuGrowthBeyondSaturation)
{
    TransferModel x;
    // Past saturation, doubling DPUs doubles total bytes but not
    // bandwidth: time roughly doubles.
    const double t256 = x.seconds(1 << 20, 256);
    const double t512 = x.seconds(1 << 20, 512);
    EXPECT_NEAR(t512 / t256, 2.0, 0.1);
}

TEST(AreaModel, ReproducesPaperOverheads)
{
    // Section VI-F: 0.019 mm^2, 5 mW, < 1 PIM core cycle for the
    // default 16-entry / 64 B buddy cache.
    AreaModel model;
    const auto o = model.estimate(BuddyCacheConfig{});
    EXPECT_NEAR(o.areaMm2, 0.019, 0.004);
    EXPECT_NEAR(o.powerMw, 5.0, 1.5);
    EXPECT_LT(o.cyclesAt350Mhz, 1.0);
}

TEST(AreaModel, ScalesWithEntries)
{
    AreaModel model;
    BuddyCacheConfig small, big;
    small.entries = 4;
    big.entries = 64;
    EXPECT_LT(model.estimate(small).areaMm2, model.estimate(big).areaMm2);
    EXPECT_LT(model.estimate(small).accessNs, model.estimate(big).accessNs);
}

TEST(AreaModel, DramProcessScaling)
{
    AreaModel::Scaling s;
    s.areaFactor = 10.0;
    AreaModel model(s);
    const auto o = model.estimate(BuddyCacheConfig{});
    EXPECT_NEAR(o.areaMm2 / o.logicAreaMm2, 10.0, 1e-9);
}
