/**
 * @file
 * Tests for the parallel multi-DPU execution engine: thread-count
 * invariance of MultiDpuResult (the deterministic-reduction guarantee),
 * correct merge of per-worker partials against a sequential reference,
 * PIM_SIM_THREADS resolution, and forEach coverage/exception semantics.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "core/command_queue.hh"
#include "core/host_runtime.hh"
#include "core/parallel_engine.hh"
#include "core/pim_system.hh"
#include "core/system.hh"
#include "workloads/graph/update_driver.hh"

using namespace pim;
using namespace pim::core;

namespace {

/** Small-MRAM DPU so tests don't pay 64 MB of backing store per DPU. */
sim::DpuConfig
smallDpuCfg()
{
    sim::DpuConfig cfg;
    cfg.mramBytes = 1u << 20;
    return cfg;
}

/** A contention-free per-DPU program with index-dependent compute,
 *  DMA traffic, and idle time, so every MultiDpuResult field is
 *  exercised (incl. the floating-point reductions). */
void
referenceProgram(sim::Dpu &dpu, unsigned idx)
{
    dpu.run(4, [idx](sim::Tasklet &t) {
        t.execute(50 + 13 * (idx % 7) + t.id());
        t.dmaRead(0, 64 + 8 * (idx % 5));
        t.dmaWrite(4096, 32 + 8 * (t.id() % 3));
        t.stall(5 + idx % 3, sim::CycleKind::BusyWait);
    });
}

MultiDpuResult
runWithThreads(unsigned num_dpus, unsigned threads, unsigned sample = 0)
{
    return simulateDpus(num_dpus, smallDpuCfg(), referenceProgram,
                        sample, threads);
}

void
expectIdentical(const MultiDpuResult &a, const MultiDpuResult &b)
{
    EXPECT_EQ(a.numDpus, b.numDpus);
    EXPECT_EQ(a.simulatedDpus, b.simulatedDpus);
    EXPECT_EQ(a.maxCycles, b.maxCycles);
    // Bit-identical doubles, not just approximately equal: the chunked
    // reduction fixes the floating-point association.
    EXPECT_EQ(a.maxSeconds, b.maxSeconds);
    EXPECT_EQ(a.meanSeconds, b.meanSeconds);
    for (size_t k = 0; k < sim::kNumCycleKinds; ++k)
        EXPECT_EQ(a.breakdown.cycles[k], b.breakdown.cycles[k]);
    EXPECT_EQ(a.traffic.dataReadBytes, b.traffic.dataReadBytes);
    EXPECT_EQ(a.traffic.dataWriteBytes, b.traffic.dataWriteBytes);
    EXPECT_EQ(a.traffic.metadataReadBytes, b.traffic.metadataReadBytes);
    EXPECT_EQ(a.traffic.metadataWriteBytes, b.traffic.metadataWriteBytes);
    EXPECT_EQ(a.traffic.dmaTransfers, b.traffic.dmaTransfers);
}

} // namespace

TEST(ParallelEngine, ThreadCountInvariance)
{
    // 130 DPUs: a non-multiple of the chunk size, so the last chunk is
    // ragged — the hardest case for the deterministic reduction.
    const auto r1 = runWithThreads(130, 1);
    const auto r2 = runWithThreads(130, 2);
    const auto r8 = runWithThreads(130, 8);
    expectIdentical(r1, r2);
    expectIdentical(r1, r8);
    EXPECT_GT(r1.maxCycles, 0u);
    EXPECT_GT(r1.traffic.totalBytes(), 0u);
}

TEST(ParallelEngine, ThreadCountInvarianceUnderSampling)
{
    const auto r1 = runWithThreads(512, 1, 48);
    const auto r8 = runWithThreads(512, 8, 48);
    expectIdentical(r1, r8);
    EXPECT_EQ(r1.numDpus, 512u);
    EXPECT_EQ(r1.simulatedDpus, 48u);
}

TEST(ParallelEngine, MergesPartialsLikeSequentialReference)
{
    const unsigned n = 40;
    // Hand-rolled sequential reduction over the same programs.
    uint64_t ref_max = 0;
    sim::CycleBreakdown ref_breakdown{};
    sim::TrafficStats ref_traffic{};
    for (unsigned i = 0; i < n; ++i) {
        sim::Dpu dpu{smallDpuCfg()};
        referenceProgram(dpu, i);
        ref_max = std::max(ref_max, dpu.lastElapsedCycles());
        ref_breakdown.merge(dpu.lastBreakdown());
        ref_traffic.merge(dpu.traffic());
    }

    const auto r = runWithThreads(n, 4);
    EXPECT_EQ(r.maxCycles, ref_max);
    for (size_t k = 0; k < sim::kNumCycleKinds; ++k)
        EXPECT_EQ(r.breakdown.cycles[k], ref_breakdown.cycles[k]);
    EXPECT_EQ(r.traffic.dataReadBytes, ref_traffic.dataReadBytes);
    EXPECT_EQ(r.traffic.dataWriteBytes, ref_traffic.dataWriteBytes);
    EXPECT_EQ(r.traffic.dmaTransfers, ref_traffic.dmaTransfers);
}

TEST(ParallelEngine, SimulateDpusFacadeMatchesManualQueueUse)
{
    // The synchronous facade and a hand-driven PimSystem+CommandQueue
    // must produce identical reductions.
    const auto facade =
        simulateDpus(96, smallDpuCfg(), referenceProgram, 0, 3);

    PimSystemConfig scfg;
    scfg.numDpus = 96;
    scfg.dpuCfg = smallDpuCfg();
    scfg.simThreads = 3;
    PimSystem sys(scfg);
    CommandQueue queue(sys);
    queue.launchProgram(sys.all(), referenceProgram);
    queue.sync();

    uint64_t max_cycles = 0;
    sim::CycleBreakdown breakdown{};
    sim::TrafficStats traffic{};
    for (unsigned slot = 0; slot < sys.sampleCount(); ++slot) {
        max_cycles =
            std::max(max_cycles, sys.dpu(slot).lastElapsedCycles());
        breakdown.merge(sys.dpu(slot).lastBreakdown());
        traffic.merge(sys.dpu(slot).traffic());
    }
    EXPECT_EQ(facade.maxCycles, max_cycles);
    for (size_t k = 0; k < sim::kNumCycleKinds; ++k)
        EXPECT_EQ(facade.breakdown.cycles[k], breakdown.cycles[k]);
    EXPECT_EQ(facade.traffic.totalBytes(), traffic.totalBytes());
}

TEST(ParallelEngine, ResolveThreadsPrecedence)
{
    // Explicit request wins over everything.
    EXPECT_EQ(resolveSimThreads(5), 5u);

    // PIM_SIM_THREADS is honored when no explicit request is made.
    ::setenv("PIM_SIM_THREADS", "3", 1);
    EXPECT_EQ(resolveSimThreads(0), 3u);
    EXPECT_EQ(resolveSimThreads(7), 7u);
    EXPECT_EQ(ParallelDpuEngine(0).threadCount(), 3u);

    // An empty value counts as unset.
    ::setenv("PIM_SIM_THREADS", "", 1);
    EXPECT_GE(resolveSimThreads(0), 1u);

    // An explicit request never consults the environment, so even a
    // bogus value is ignored when a positive count is passed.
    ::setenv("PIM_SIM_THREADS", "zero", 1);
    EXPECT_EQ(resolveSimThreads(7), 7u);

    ::unsetenv("PIM_SIM_THREADS");
    EXPECT_GE(resolveSimThreads(0), 1u);
}

TEST(ParallelEngineDeath, InvalidEnvThreadCountIsFatal)
{
    // Garbage, zero, negative, and trailing-junk values must fail
    // loudly instead of silently selecting the hardware thread count.
    EXPECT_DEATH({
        ::setenv("PIM_SIM_THREADS", "zero", 1);
        resolveSimThreads(0);
    }, "PIM_SIM_THREADS must be a positive integer");
    EXPECT_DEATH({
        ::setenv("PIM_SIM_THREADS", "0", 1);
        resolveSimThreads(0);
    }, "PIM_SIM_THREADS must be a positive integer");
    EXPECT_DEATH({
        ::setenv("PIM_SIM_THREADS", "-2", 1);
        resolveSimThreads(0);
    }, "PIM_SIM_THREADS must be a positive integer");
    EXPECT_DEATH({
        ::setenv("PIM_SIM_THREADS", "4cores", 1);
        resolveSimThreads(0);
    }, "PIM_SIM_THREADS must be a positive integer");
    ::unsetenv("PIM_SIM_THREADS");
}

TEST(ParallelEngine, ForEachCoversEveryIndexExactlyOnce)
{
    const size_t n = 1000; // spans many chunks
    std::vector<std::atomic<unsigned>> hits(n);
    ParallelDpuEngine engine(8);
    engine.forEach(n, [&](size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1u) << "index " << i;
}

TEST(ParallelEngine, ForEachHandlesEmptyAndTiny)
{
    ParallelDpuEngine engine(8);
    engine.forEach(0, [](size_t) { FAIL() << "must not be called"; });

    std::atomic<unsigned> calls{0};
    engine.forEach(1, [&](size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 1u);
}

TEST(ParallelEngine, ForEachPropagatesExceptions)
{
    ParallelDpuEngine engine(4);
    EXPECT_THROW(engine.forEach(256,
                                [](size_t i) {
                                    if (i == 200)
                                        throw std::runtime_error("boom");
                                }),
                 std::runtime_error);
}

TEST(ParallelEngine, HostRuntimeLaunchIsThreadCountInvariant)
{
    auto launch = [](unsigned threads) {
        HostRuntimeConfig cfg;
        cfg.numDpus = 64;
        cfg.sampleDpus = 32;
        cfg.dpuCfg = smallDpuCfg();
        cfg.simThreads = threads;
        HostRuntime rt(cfg);
        rt.pimLaunch(8, [](sim::Tasklet &t, unsigned idx) {
            t.execute(100 + idx + t.id());
            t.dmaRead(0, 64);
        });
        return rt.elapsedSeconds();
    };
    const double s1 = launch(1);
    const double s8 = launch(8);
    EXPECT_EQ(s1, s8); // bit-identical timeline
    EXPECT_GT(s1, 0.0);

    HostRuntimeConfig cfg;
    cfg.simThreads = 6;
    EXPECT_EQ(HostRuntime(cfg).simThreads(), 6u);
}

TEST(ParallelEngine, GraphUpdateDriverIsThreadCountInvariant)
{
    auto run = [](unsigned threads) {
        workloads::graph::GraphUpdateConfig cfg;
        cfg.numDpus = 32;
        cfg.sampleDpus = 8;
        cfg.tasklets = 4;
        cfg.gen.numNodes = 512;
        cfg.gen.numEdges = 2048;
        cfg.simThreads = threads;
        return workloads::graph::runGraphUpdate(cfg);
    };
    const auto a = run(1);
    const auto b = run(8);
    EXPECT_EQ(a.updateSeconds, b.updateSeconds);
    EXPECT_EQ(a.updateEdgesTotal, b.updateEdgesTotal);
    EXPECT_EQ(a.allocStats.mallocCalls, b.allocStats.mallocCalls);
    EXPECT_EQ(a.allocStats.freeCalls, b.allocStats.freeCalls);
    EXPECT_EQ(a.fragmentation, b.fragmentation);
    EXPECT_EQ(a.traffic.totalBytes(), b.traffic.totalBytes());
    for (size_t k = 0; k < sim::kNumCycleKinds; ++k)
        EXPECT_EQ(a.breakdown.cycles[k], b.breakdown.cycles[k]);
    EXPECT_GT(a.allocStats.mallocCalls, 0u);
}
