/**
 * @file
 * Tests for the parallel multi-DPU execution engine: thread-count
 * invariance of MultiDpuResult (the deterministic-reduction guarantee),
 * correct merge of per-worker partials against a sequential reference,
 * PIM_SIM_THREADS resolution, and forEach coverage/exception semantics.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/command_queue.hh"
#include "core/host_runtime.hh"
#include "core/parallel_engine.hh"
#include "core/pim_system.hh"
#include "core/system.hh"
#include "sim/mutex.hh"
#include "workloads/graph/update_driver.hh"

using namespace pim;
using namespace pim::core;

namespace {

/** Small-MRAM DPU so tests don't pay 64 MB of backing store per DPU. */
sim::DpuConfig
smallDpuCfg()
{
    sim::DpuConfig cfg;
    cfg.mramBytes = 1u << 20;
    return cfg;
}

/** A contention-free per-DPU program with index-dependent compute,
 *  DMA traffic, and idle time, so every MultiDpuResult field is
 *  exercised (incl. the floating-point reductions). */
void
referenceProgram(sim::Dpu &dpu, unsigned idx)
{
    dpu.run(4, [idx](sim::Tasklet &t) {
        t.execute(50 + 13 * (idx % 7) + t.id());
        t.dmaRead(0, 64 + 8 * (idx % 5));
        t.dmaWrite(4096, 32 + 8 * (t.id() % 3));
        t.stall(5 + idx % 3, sim::CycleKind::BusyWait);
    });
}

MultiDpuResult
runWithThreads(unsigned num_dpus, unsigned threads, unsigned sample = 0)
{
    return simulateDpus(num_dpus, smallDpuCfg(), referenceProgram,
                        sample, threads);
}

void
expectIdentical(const MultiDpuResult &a, const MultiDpuResult &b)
{
    EXPECT_EQ(a.numDpus, b.numDpus);
    EXPECT_EQ(a.simulatedDpus, b.simulatedDpus);
    EXPECT_EQ(a.maxCycles, b.maxCycles);
    // Bit-identical doubles, not just approximately equal: the chunked
    // reduction fixes the floating-point association.
    EXPECT_EQ(a.maxSeconds, b.maxSeconds);
    EXPECT_EQ(a.meanSeconds, b.meanSeconds);
    for (size_t k = 0; k < sim::kNumCycleKinds; ++k)
        EXPECT_EQ(a.breakdown.cycles[k], b.breakdown.cycles[k]);
    EXPECT_EQ(a.traffic.dataReadBytes, b.traffic.dataReadBytes);
    EXPECT_EQ(a.traffic.dataWriteBytes, b.traffic.dataWriteBytes);
    EXPECT_EQ(a.traffic.metadataReadBytes, b.traffic.metadataReadBytes);
    EXPECT_EQ(a.traffic.metadataWriteBytes, b.traffic.metadataWriteBytes);
    EXPECT_EQ(a.traffic.dmaTransfers, b.traffic.dmaTransfers);
}

} // namespace

TEST(ParallelEngine, ThreadCountInvariance)
{
    // 130 DPUs: a non-multiple of the chunk size, so the last chunk is
    // ragged — the hardest case for the deterministic reduction.
    const auto r1 = runWithThreads(130, 1);
    const auto r2 = runWithThreads(130, 2);
    const auto r8 = runWithThreads(130, 8);
    expectIdentical(r1, r2);
    expectIdentical(r1, r8);
    EXPECT_GT(r1.maxCycles, 0u);
    EXPECT_GT(r1.traffic.totalBytes(), 0u);
}

TEST(ParallelEngine, ThreadCountInvarianceUnderSampling)
{
    const auto r1 = runWithThreads(512, 1, 48);
    const auto r8 = runWithThreads(512, 8, 48);
    expectIdentical(r1, r8);
    EXPECT_EQ(r1.numDpus, 512u);
    EXPECT_EQ(r1.simulatedDpus, 48u);
}

TEST(ParallelEngine, MergesPartialsLikeSequentialReference)
{
    const unsigned n = 40;
    // Hand-rolled sequential reduction over the same programs.
    uint64_t ref_max = 0;
    sim::CycleBreakdown ref_breakdown{};
    sim::TrafficStats ref_traffic{};
    for (unsigned i = 0; i < n; ++i) {
        sim::Dpu dpu{smallDpuCfg()};
        referenceProgram(dpu, i);
        ref_max = std::max(ref_max, dpu.lastElapsedCycles());
        ref_breakdown.merge(dpu.lastBreakdown());
        ref_traffic.merge(dpu.traffic());
    }

    const auto r = runWithThreads(n, 4);
    EXPECT_EQ(r.maxCycles, ref_max);
    for (size_t k = 0; k < sim::kNumCycleKinds; ++k)
        EXPECT_EQ(r.breakdown.cycles[k], ref_breakdown.cycles[k]);
    EXPECT_EQ(r.traffic.dataReadBytes, ref_traffic.dataReadBytes);
    EXPECT_EQ(r.traffic.dataWriteBytes, ref_traffic.dataWriteBytes);
    EXPECT_EQ(r.traffic.dmaTransfers, ref_traffic.dmaTransfers);
}

TEST(ParallelEngine, SimulateDpusFacadeMatchesManualQueueUse)
{
    // The synchronous facade and a hand-driven PimSystem+CommandQueue
    // must produce identical reductions.
    const auto facade =
        simulateDpus(96, smallDpuCfg(), referenceProgram, 0, 3);

    PimSystemConfig scfg;
    scfg.numDpus = 96;
    scfg.dpuCfg = smallDpuCfg();
    scfg.simThreads = 3;
    PimSystem sys(scfg);
    CommandQueue queue(sys);
    queue.launchProgram(sys.all(), referenceProgram);
    queue.sync();

    uint64_t max_cycles = 0;
    sim::CycleBreakdown breakdown{};
    sim::TrafficStats traffic{};
    for (unsigned slot = 0; slot < sys.sampleCount(); ++slot) {
        max_cycles =
            std::max(max_cycles, sys.dpu(slot).lastElapsedCycles());
        breakdown.merge(sys.dpu(slot).lastBreakdown());
        traffic.merge(sys.dpu(slot).traffic());
    }
    EXPECT_EQ(facade.maxCycles, max_cycles);
    for (size_t k = 0; k < sim::kNumCycleKinds; ++k)
        EXPECT_EQ(facade.breakdown.cycles[k], breakdown.cycles[k]);
    EXPECT_EQ(facade.traffic.totalBytes(), traffic.totalBytes());
}

TEST(ParallelEngine, ResolveThreadsPrecedence)
{
    // Explicit request wins over everything.
    EXPECT_EQ(resolveSimThreads(5), 5u);

    // PIM_SIM_THREADS is honored when no explicit request is made.
    ::setenv("PIM_SIM_THREADS", "3", 1);
    EXPECT_EQ(resolveSimThreads(0), 3u);
    EXPECT_EQ(resolveSimThreads(7), 7u);
    EXPECT_EQ(ParallelDpuEngine(0).threadCount(), 3u);

    // An empty value counts as unset.
    ::setenv("PIM_SIM_THREADS", "", 1);
    EXPECT_GE(resolveSimThreads(0), 1u);

    // An explicit request never consults the environment, so even a
    // bogus value is ignored when a positive count is passed.
    ::setenv("PIM_SIM_THREADS", "zero", 1);
    EXPECT_EQ(resolveSimThreads(7), 7u);

    ::unsetenv("PIM_SIM_THREADS");
    EXPECT_GE(resolveSimThreads(0), 1u);
}

TEST(ParallelEngineDeath, InvalidEnvThreadCountIsFatal)
{
    // Garbage, zero, negative, and trailing-junk values must fail
    // loudly instead of silently selecting the hardware thread count.
    EXPECT_DEATH({
        ::setenv("PIM_SIM_THREADS", "zero", 1);
        resolveSimThreads(0);
    }, "PIM_SIM_THREADS must be a positive integer");
    EXPECT_DEATH({
        ::setenv("PIM_SIM_THREADS", "0", 1);
        resolveSimThreads(0);
    }, "PIM_SIM_THREADS must be a positive integer");
    EXPECT_DEATH({
        ::setenv("PIM_SIM_THREADS", "-2", 1);
        resolveSimThreads(0);
    }, "PIM_SIM_THREADS must be a positive integer");
    EXPECT_DEATH({
        ::setenv("PIM_SIM_THREADS", "4cores", 1);
        resolveSimThreads(0);
    }, "PIM_SIM_THREADS must be a positive integer");
    ::unsetenv("PIM_SIM_THREADS");
}

TEST(ParallelEngine, ForEachCoversEveryIndexExactlyOnce)
{
    const size_t n = 1000; // spans many chunks
    std::vector<std::atomic<unsigned>> hits(n);
    ParallelDpuEngine engine(8);
    engine.forEach(n, [&](size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1u) << "index " << i;
}

TEST(ParallelEngine, ForEachHandlesEmptyAndTiny)
{
    ParallelDpuEngine engine(8);
    engine.forEach(0, [](size_t) { FAIL() << "must not be called"; });

    std::atomic<unsigned> calls{0};
    engine.forEach(1, [&](size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 1u);
}

TEST(ParallelEngine, ForEachPropagatesExceptions)
{
    ParallelDpuEngine engine(4);
    EXPECT_THROW(engine.forEach(256,
                                [](size_t i) {
                                    if (i == 200)
                                        throw std::runtime_error("boom");
                                }),
                 std::runtime_error);
}

TEST(ParallelEngine, HostRuntimeLaunchIsThreadCountInvariant)
{
    auto launch = [](unsigned threads) {
        HostRuntimeConfig cfg;
        cfg.numDpus = 64;
        cfg.sampleDpus = 32;
        cfg.dpuCfg = smallDpuCfg();
        cfg.simThreads = threads;
        HostRuntime rt(cfg);
        rt.pimLaunch(8, [](sim::Tasklet &t, unsigned idx) {
            t.execute(100 + idx + t.id());
            t.dmaRead(0, 64);
        });
        return rt.elapsedSeconds();
    };
    const double s1 = launch(1);
    const double s8 = launch(8);
    EXPECT_EQ(s1, s8); // bit-identical timeline
    EXPECT_GT(s1, 0.0);

    HostRuntimeConfig cfg;
    cfg.simThreads = 6;
    EXPECT_EQ(HostRuntime(cfg).simThreads(), 6u);
}

TEST(ParallelEngine, GraphUpdateDriverIsThreadCountInvariant)
{
    auto run = [](unsigned threads) {
        workloads::graph::GraphUpdateConfig cfg;
        cfg.numDpus = 32;
        cfg.sampleDpus = 8;
        cfg.tasklets = 4;
        cfg.gen.numNodes = 512;
        cfg.gen.numEdges = 2048;
        cfg.simThreads = threads;
        return workloads::graph::runGraphUpdate(cfg);
    };
    const auto a = run(1);
    const auto b = run(8);
    EXPECT_EQ(a.updateSeconds, b.updateSeconds);
    EXPECT_EQ(a.updateEdgesTotal, b.updateEdgesTotal);
    EXPECT_EQ(a.allocStats.mallocCalls, b.allocStats.mallocCalls);
    EXPECT_EQ(a.allocStats.freeCalls, b.allocStats.freeCalls);
    EXPECT_EQ(a.fragmentation, b.fragmentation);
    EXPECT_EQ(a.traffic.totalBytes(), b.traffic.totalBytes());
    for (size_t k = 0; k < sim::kNumCycleKinds; ++k)
        EXPECT_EQ(a.breakdown.cycles[k], b.breakdown.cycles[k]);
    EXPECT_GT(a.allocStats.mallocCalls, 0u);
}

namespace {

/** RAII override of the process-wide SimMutex default mode. */
struct ScopedMutexMode
{
    sim::SimMutex::Mode prev;

    explicit ScopedMutexMode(sim::SimMutex::Mode m)
        : prev(sim::SimMutex::defaultMode())
    {
        sim::SimMutex::setDefaultMode(m);
    }

    ~ScopedMutexMode() { sim::SimMutex::setDefaultMode(prev); }
};

/** Per-DPU program with real intra-DPU lock contention, so the mutex
 *  execution mode matters to the simulated timeline. */
void
contendedProgram(sim::Dpu &dpu, unsigned idx)
{
    sim::SimMutex mutex; // default mode: the latched process-wide one
    dpu.run(8, [&mutex, idx](sim::Tasklet &t) {
        for (unsigned i = 0; i < 6; ++i) {
            mutex.lock(t);
            t.execute(40 + idx % 5 + t.id());
            mutex.unlock(t);
            t.execute(10 + 3 * t.id());
            t.dmaRead(0, 64);
        }
    });
}

} // namespace

TEST(ParallelEngine, PersistentPoolReusesThreadsAcrossCalls)
{
    ParallelDpuEngine engine(4);
    EXPECT_EQ(engine.liveWorkers(), 0u); // lazily spawned

    auto collectIds = [&]() {
        std::mutex m;
        std::set<std::thread::id> ids;
        engine.forEach(256, [&](size_t) {
            std::lock_guard<std::mutex> lock(m);
            ids.insert(std::this_thread::get_id());
        });
        return ids;
    };
    auto all_ids = collectIds();
    EXPECT_GT(engine.liveWorkers(), 0u);
    EXPECT_LE(engine.liveWorkers(), 4u);
    const unsigned live_after_first = engine.liveWorkers();

    // Later calls are served by the same parked workers: the pool does
    // not grow, and the union of executing threads across many calls
    // never exceeds it (per-call spawning would mint fresh ids every
    // round).
    for (int round = 0; round < 3; ++round) {
        const auto again = collectIds();
        all_ids.insert(again.begin(), again.end());
    }
    EXPECT_EQ(engine.liveWorkers(), live_after_first);
    EXPECT_LE(all_ids.size(), live_after_first);

    // The caller never executes indices itself (workers own the job).
    EXPECT_FALSE(all_ids.count(std::this_thread::get_id()));
}

TEST(ParallelEngine, NestedForEachRunsInline)
{
    ParallelDpuEngine engine(4);
    std::vector<std::atomic<unsigned>> hits(32);
    engine.forEach(4, [&](size_t outer) {
        // A nested call on the same engine must not dead-lock on the
        // dispatcher; it runs inline on the worker.
        engine.forEach(8, [&](size_t inner) {
            hits[outer * 8 + inner].fetch_add(
                1, std::memory_order_relaxed);
        });
    });
    for (size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1u) << "index " << i;
}

TEST(ParallelEngine, AffinityFromEnvParsing)
{
    EXPECT_FALSE(ParallelDpuEngine::affinityFromEnv(nullptr));
    EXPECT_FALSE(ParallelDpuEngine::affinityFromEnv(""));
    EXPECT_FALSE(ParallelDpuEngine::affinityFromEnv("0"));
    EXPECT_TRUE(ParallelDpuEngine::affinityFromEnv("1"));
}

TEST(ParallelEngineDeath, InvalidAffinityEnvValueIsFatal)
{
    EXPECT_DEATH({
        ::setenv("PIM_SIM_AFFINITY", "yes", 1);
        ParallelDpuEngine engine(2);
    }, "PIM_SIM_AFFINITY");
    EXPECT_DEATH({
        ::setenv("PIM_SIM_AFFINITY", "2", 1);
        ParallelDpuEngine engine(2);
    }, "PIM_SIM_AFFINITY");
    ::unsetenv("PIM_SIM_AFFINITY");
}

TEST(ParallelEngine, PinnedPlacementIsDeterministicAndCovers)
{
    // Pinned mode switches to static contiguous slices; coverage and
    // determinism must be unaffected.
    ::setenv("PIM_SIM_AFFINITY", "1", 1);
    {
        ParallelDpuEngine engine(4);
        EXPECT_TRUE(engine.affinityEnabled());
        std::vector<std::atomic<unsigned>> hits(130);
        engine.forEach(130, [&](size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (size_t i = 0; i < hits.size(); ++i)
            EXPECT_EQ(hits[i].load(), 1u) << "index " << i;

        // Slice ownership is a total, stable partition of the indices.
        unsigned prev = 0;
        for (size_t i = 0; i < 130; ++i) {
            const unsigned owner = engine.ownerOfIndex(i, 130);
            EXPECT_LT(owner, 4u);
            EXPECT_GE(owner, prev) << "owners must be non-decreasing";
            prev = owner;
        }

        const auto r = simulateDpus(64, smallDpuCfg(), referenceProgram,
                                    0, 4);
        ::unsetenv("PIM_SIM_AFFINITY");
        const auto ref = simulateDpus(64, smallDpuCfg(),
                                      referenceProgram, 0, 4);
        expectIdentical(r, ref);
    }
    ::unsetenv("PIM_SIM_AFFINITY");
}

TEST(ParallelEngine, QueueMutexThreadCountInvariance)
{
    // PIM_SIM_MUTEX=queue must preserve the engine's bit-identity
    // guarantee across PIM_SIM_THREADS settings...
    ScopedMutexMode queue(sim::SimMutex::Mode::Queue);
    const auto r1 =
        simulateDpus(130, smallDpuCfg(), contendedProgram, 0, 1);
    const auto r4 =
        simulateDpus(130, smallDpuCfg(), contendedProgram, 0, 4);
    const auto r7 =
        simulateDpus(130, smallDpuCfg(), contendedProgram, 0, 7);
    expectIdentical(r1, r4);
    expectIdentical(r1, r7);
    EXPECT_GT(r1.breakdown.of(sim::CycleKind::BusyWait), 0u);

    // ...and the queue-mode simulation reduces identically to the spin
    // reference (the cross-mode fidelity contract, at system scale).
    ScopedMutexMode spin(sim::SimMutex::Mode::Spin);
    const auto s4 =
        simulateDpus(130, smallDpuCfg(), contendedProgram, 0, 4);
    expectIdentical(r1, s4);
}
