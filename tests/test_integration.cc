/**
 * @file
 * Cross-module integration tests asserting the paper's headline
 * qualitative results end to end:
 *   - PIM-malloc-SW beats the straw-man by a large factor on small
 *     allocations (the 66x result's shape);
 *   - PIM-malloc-HW/SW beats PIM-malloc-SW (the +31% result's shape);
 *   - SW and HW/SW variants return byte-identical allocation sequences
 *     (the metadata store only changes cost, never placement);
 *   - buddy cache hit rate saturates at 64 B (Fig 16's shape);
 *   - frontend services the vast majority of requests while the backend
 *     dominates latency (Fig 11's shape).
 */

#include <gtest/gtest.h>

#include <vector>

#include "alloc/pim_malloc.hh"
#include "sim/dpu.hh"
#include "util/rng.hh"
#include "workloads/microbench.hh"

using namespace pim;
using namespace pim::workloads;

TEST(Integration, SwBeatsStrawManBySizableFactor)
{
    auto avg = [](core::AllocatorKind kind) {
        MicrobenchConfig cfg;
        cfg.allocator = kind;
        cfg.tasklets = 16;
        cfg.allocsPerTasklet = 64;
        cfg.allocSize = 32;
        return runMicrobench(cfg).avgLatencyUs;
    };
    const double straw = avg(core::AllocatorKind::StrawMan);
    const double sw = avg(core::AllocatorKind::PimMallocSw);
    EXPECT_GT(straw / sw, 20.0);
}

TEST(Integration, HwSwBeatsSwOnBackendBoundWork)
{
    auto avg = [](core::AllocatorKind kind) {
        MicrobenchConfig cfg;
        cfg.allocator = kind;
        cfg.tasklets = 16;
        cfg.allocsPerTasklet = 64;
        cfg.allocSize = 4096; // backend-bound
        return runMicrobench(cfg).avgLatencyUs;
    };
    const double sw = avg(core::AllocatorKind::PimMallocSw);
    const double hwsw = avg(core::AllocatorKind::PimMallocHwSw);
    EXPECT_GT(sw / hwsw, 1.2);
}

TEST(Integration, SwAndHwSwProduceIdenticalAddressSequences)
{
    auto addresses = [](alloc::MetadataMode mode) {
        sim::Dpu dpu;
        alloc::PimMallocConfig cfg;
        cfg.heapBytes = 4u << 20;
        cfg.metadata = mode;
        cfg.numTasklets = 1;
        alloc::PimMallocAllocator a(dpu, cfg);
        std::vector<sim::MramAddr> out;
        dpu.run(1, [&](sim::Tasklet &t) { a.init(t); });
        // Single tasklet: under concurrency the metadata path's latency
        // legitimately reorders which tasklet allocates first, so
        // placement equivalence is only well-defined sequentially.
        dpu.run(1, [&](sim::Tasklet &t) {
            util::Rng rng(t.id());
            std::vector<sim::MramAddr> live;
            for (int i = 0; i < 500; ++i) {
                if (live.empty() || rng.bernoulli(0.6)) {
                    const auto p = a.malloc(
                        t, static_cast<uint32_t>(
                               rng.uniformRange(1, 8000)));
                    if (p != sim::kNullAddr) {
                        live.push_back(p);
                        out.push_back(p);
                    }
                } else {
                    a.free(t, live.back());
                    live.pop_back();
                }
            }
        });
        return out;
    };
    // The metadata path changes latency and traffic, never placement.
    EXPECT_EQ(addresses(alloc::MetadataMode::SwBuffer),
              addresses(alloc::MetadataMode::HwCache));
    EXPECT_EQ(addresses(alloc::MetadataMode::SwBuffer),
              addresses(alloc::MetadataMode::Direct));
}

TEST(Integration, BuddyCacheHitRateSaturatesAt64Bytes)
{
    auto hit_rate = [](unsigned entries) {
        MicrobenchConfig cfg;
        cfg.allocator = core::AllocatorKind::PimMallocHwSw;
        cfg.tasklets = 16;
        cfg.allocsPerTasklet = 64;
        cfg.allocSize = 4096;
        cfg.dpuCfg.buddyCache.entries = entries;
        return runMicrobench(cfg).cacheStats.hitRate();
    };
    const double r16b = hit_rate(4);   // 16 B cache
    const double r64b = hit_rate(16);  // 64 B cache (paper default)
    const double r256b = hit_rate(64); // 256 B cache
    EXPECT_GT(r64b, r16b);
    // Fig 16: beyond 64 B the hit rate is saturated.
    EXPECT_LT(r256b - r64b, 0.05);
    EXPECT_GT(r64b, 0.85);
}

TEST(Integration, FrontendServicesMostRequestsBackendDominatesCycles)
{
    // Fig 11: a small-allocation-heavy workload services ~90%+ of
    // requests at the thread cache, yet the buddy backend accounts for
    // the majority of total allocation cycles.
    sim::Dpu dpu;
    alloc::PimMallocConfig cfg;
    cfg.numTasklets = 8;
    alloc::PimMallocAllocator a(dpu, cfg);
    dpu.run(1, [&](sim::Tasklet &t) { a.init(t); });
    dpu.run(8, [&](sim::Tasklet &t) {
        util::Rng rng(t.id() + 100);
        for (int i = 0; i < 400; ++i)
            a.malloc(t, 256);
    });
    const auto &st = a.stats();
    const double frontend_share =
        st.servicedFraction(alloc::ServiceLevel::Frontend);
    const double backend_cycles =
        st.cyclesFraction(alloc::ServiceLevel::Backend);
    EXPECT_GT(frontend_share, 0.85);
    EXPECT_GT(backend_cycles, 0.5);
}

TEST(Integration, LazyVariantsReduceFragmentation)
{
    // Table III's qualitative claim across both metadata modes.
    auto frag = [](core::AllocatorKind kind) {
        MicrobenchConfig cfg;
        cfg.allocator = kind;
        cfg.tasklets = 8;
        cfg.allocsPerTasklet = 64;
        cfg.allocSize = 256;
        return runMicrobench(cfg).allocStats.peakFragmentation;
    };
    EXPECT_GT(frag(core::AllocatorKind::PimMallocSw),
              frag(core::AllocatorKind::PimMallocSwLazy));
    EXPECT_GT(frag(core::AllocatorKind::PimMallocHwSw),
              frag(core::AllocatorKind::PimMallocHwSwLazy));
}

TEST(Integration, MetadataOverheadMatchesSectionVIE)
{
    // Section VI-E: PIM-malloc's buddy metadata is 4 KB per bank and
    // total per-workload metadata stays near ~5 KB.
    sim::Dpu dpu;
    alloc::PimMallocConfig cfg;
    cfg.numTasklets = 16;
    alloc::PimMallocAllocator a(dpu, cfg);
    dpu.run(1, [&](sim::Tasklet &t) { a.init(t); });
    dpu.run(16, [&](sim::Tasklet &t) {
        for (int i = 0; i < 50; ++i)
            a.malloc(t, 256);
    });
    EXPECT_EQ(a.backendMetadataBytes(), 4096u);
    EXPECT_LT(a.metadataBytes(), 16u << 10);
}
