/**
 * @file
 * Fuzz-style stress and failure-injection tests across all allocator
 * design points: long multi-tasklet alloc/free churn with host-side
 * interval checking, OOM storms with recovery, mixed-size adversarial
 * patterns, and the Section VII general-purpose data-cache comparison.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "alloc/metadata_store.hh"
#include "alloc/pim_malloc.hh"
#include "alloc/straw_man.hh"
#include "core/allocator_factory.hh"
#include "sim/dpu.hh"
#include "util/rng.hh"

using namespace pim;

namespace {

/** Host-side overlap checker shared by the fuzz runs. */
class IntervalChecker
{
  public:
    void
    insert(sim::MramAddr a, uint32_t len)
    {
        auto next = live_.lower_bound(a);
        if (next != live_.end()) {
            ASSERT_LE(a + len, next->first) << "overlap with next block";
        }
        if (next != live_.begin()) {
            auto prev = std::prev(next);
            ASSERT_LE(prev->first + prev->second, a)
                << "overlap with previous block";
        }
        live_[a] = len;
    }

    sim::MramAddr
    any(util::Rng &rng) const
    {
        auto it = live_.begin();
        std::advance(it, static_cast<long>(rng.uniformInt(live_.size())));
        return it->first;
    }

    void erase(sim::MramAddr a) { live_.erase(a); }
    bool empty() const { return live_.empty(); }
    size_t size() const { return live_.size(); }

  private:
    std::map<sim::MramAddr, uint32_t> live_;
};

} // namespace

/** Parameterized fuzz across every allocator kind and several seeds. */
class AllocatorFuzz
    : public ::testing::TestWithParam<std::tuple<core::AllocatorKind, int>>
{
};

TEST_P(AllocatorFuzz, ChurnKeepsHeapConsistent)
{
    const auto [kind, seed] = GetParam();
    sim::Dpu dpu;
    core::AllocatorOverrides ov;
    ov.numTasklets = 8;
    ov.heapBytes = 4u << 20;
    auto a = core::makeAllocator(dpu, kind, ov);
    dpu.run(1, [&](sim::Tasklet &t) { a->init(t); });

    IntervalChecker live;
    dpu.run(8, [&](sim::Tasklet &t) {
        util::Rng rng(static_cast<uint64_t>(seed) * 100 + t.id());
        std::vector<sim::MramAddr> mine;
        for (int i = 0; i < 250; ++i) {
            if (mine.empty() || rng.bernoulli(0.55)) {
                // Adversarial mix: tiny, class-boundary, and bypass
                // sizes.
                static constexpr uint32_t sizes[] = {1,    15,   16,  17,
                                                     255,  256,  257, 2047,
                                                     2048, 2049, 4096, 5000};
                const uint32_t size = sizes[rng.uniformInt(12)];
                const sim::MramAddr p = a->malloc(t, size);
                if (p == sim::kNullAddr)
                    continue;
                live.insert(p, size);
                mine.push_back(p);
            } else {
                const size_t idx = rng.uniformInt(mine.size());
                ASSERT_TRUE(a->free(t, mine[idx]));
                live.erase(mine[idx]);
                mine.erase(mine.begin() + static_cast<long>(idx));
            }
        }
        for (auto p : mine) {
            ASSERT_TRUE(a->free(t, p));
            live.erase(p);
        }
    });
    EXPECT_TRUE(live.empty());
    EXPECT_EQ(a->stats().requestedBytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAndSeeds, AllocatorFuzz,
    ::testing::Combine(::testing::ValuesIn(core::kAllKinds),
                       ::testing::Values(1, 2)));

namespace {

/** One randomized churn run's complete observable outcome. */
struct ChurnOutcome
{
    uint64_t elapsed = 0;
    uint64_t busyWait = 0;
    uint64_t addrHash = 0;
    uint64_t events = 0;
    uint64_t mutexElided = 0;

    bool
    operator==(const ChurnOutcome &o) const
    {
        return elapsed == o.elapsed && busyWait == o.busyWait
            && addrHash == o.addrHash;
    }
};

/**
 * The AllocatorFuzz churn, instrumented: per-tasklet hashes of every
 * returned address (order-insensitive across tasklets, order-sensitive
 * within one) fold allocation outcomes into one comparable value.
 */
ChurnOutcome
runChurn(core::AllocatorKind kind, int seed, sim::SimMutex::Mode mode)
{
    const sim::SimMutex::Mode prev = sim::SimMutex::defaultMode();
    sim::SimMutex::setDefaultMode(mode);
    sim::Dpu dpu;
    core::AllocatorOverrides ov;
    ov.numTasklets = 8;
    ov.heapBytes = 4u << 20;
    auto a = core::makeAllocator(dpu, kind, ov);
    sim::SimMutex::setDefaultMode(prev);
    dpu.run(1, [&](sim::Tasklet &t) { a->init(t); });

    std::vector<uint64_t> hashes(8, 1469598103934665603ull);
    dpu.run(8, [&](sim::Tasklet &t) {
        uint64_t &h = hashes[t.id()];
        auto fold = [&h](uint64_t v) {
            for (int b = 0; b < 8; ++b) {
                h ^= (v >> (8 * b)) & 0xff;
                h *= 1099511628211ull;
            }
        };
        util::Rng rng(static_cast<uint64_t>(seed) * 100 + t.id());
        std::vector<sim::MramAddr> mine;
        for (int i = 0; i < 200; ++i) {
            if (mine.empty() || rng.bernoulli(0.55)) {
                static constexpr uint32_t sizes[] = {1,   16,   17,
                                                     255, 2048, 4096};
                const sim::MramAddr p =
                    a->malloc(t, sizes[rng.uniformInt(6)]);
                fold(p);
                if (p == sim::kNullAddr)
                    continue;
                mine.push_back(p);
            } else {
                const size_t idx = rng.uniformInt(mine.size());
                EXPECT_TRUE(a->free(t, mine[idx]));
                mine.erase(mine.begin() + static_cast<long>(idx));
            }
        }
        for (auto p : mine)
            EXPECT_TRUE(a->free(t, p));
    });

    ChurnOutcome r;
    r.elapsed = dpu.lastElapsedCycles();
    r.busyWait = dpu.lastBreakdown().of(sim::CycleKind::BusyWait);
    r.events = dpu.lastSimEvents();
    for (uint64_t h : hashes)
        r.addrHash ^= h; // xor: tasklet-order independent
    const sim::SimMutex *m = a->contentionMutex();
    r.mutexElided = m != nullptr ? m->elidedSpinEvents() : 0;
    return r;
}

} // namespace

/** Spin-vs-queue differential over the randomized churn. */
class MutexModeFuzz
    : public ::testing::TestWithParam<std::tuple<core::AllocatorKind, int>>
{
};

TEST_P(MutexModeFuzz, QueueChurnMatchesSpinExactly)
{
    const auto [kind, seed] = GetParam();
    const ChurnOutcome spin =
        runChurn(kind, seed, sim::SimMutex::Mode::Spin);
    const ChurnOutcome queue =
        runChurn(kind, seed, sim::SimMutex::Mode::Queue);

    // Allocation outcomes and the full timeline match exactly; the
    // event counts satisfy the elision identity.
    EXPECT_TRUE(spin == queue);
    EXPECT_EQ(spin.addrHash, queue.addrHash);
    EXPECT_EQ(spin.elapsed, queue.elapsed);
    EXPECT_EQ(spin.mutexElided, 0u);
    EXPECT_EQ(queue.events + queue.mutexElided, spin.events);
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAndSeeds, MutexModeFuzz,
    ::testing::Combine(::testing::ValuesIn(core::kAllKinds),
                       ::testing::Values(1, 2, 3)));

/** OOM storm: exhaust, verify failure accounting, fully recover. */
class OomRecovery : public ::testing::TestWithParam<core::AllocatorKind>
{
};

TEST_P(OomRecovery, ExhaustAndRecover)
{
    sim::Dpu dpu;
    core::AllocatorOverrides ov;
    ov.numTasklets = 4;
    ov.heapBytes = 256 * 1024;
    auto a = core::makeAllocator(dpu, GetParam(), ov);
    dpu.run(1, [&](sim::Tasklet &t) { a->init(t); });

    std::vector<sim::MramAddr> blocks;
    dpu.run(1, [&](sim::Tasklet &t) {
        // Storm until exhaustion.
        for (;;) {
            const sim::MramAddr p = a->malloc(t, 4096);
            if (p == sim::kNullAddr)
                break;
            blocks.push_back(p);
        }
        EXPECT_GT(a->stats().failures, 0u);
        // Heap must be fully recoverable.
        for (auto p : blocks)
            ASSERT_TRUE(a->free(t, p));
        const sim::MramAddr again = a->malloc(t, 4096);
        EXPECT_NE(again, sim::kNullAddr);
        a->free(t, again);
    });
}

INSTANTIATE_TEST_SUITE_P(AllKinds, OomRecovery,
                         ::testing::ValuesIn(core::kAllKinds));

TEST(DataCacheStore, BasicCaching)
{
    sim::Dpu dpu;
    alloc::DataCacheStore s(dpu, 0, 4096, 64, 4);
    dpu.run(1, [&](sim::Tasklet &t) {
        s.get(t, 0); // miss: fetches a 64 B line
        EXPECT_EQ(dpu.traffic().metadataReadBytes, 64u);
        // The whole line (64 B x 4 nodes/byte = 256 nodes) now hits.
        for (uint32_t n = 1; n < 256; n += 16)
            s.get(t, n);
        EXPECT_EQ(dpu.traffic().metadataReadBytes, 64u);
        EXPECT_GT(s.hits(), 0u);
    });
}

TEST(DataCacheStore, DirtyLineWritesBackWholeLine)
{
    sim::Dpu dpu;
    alloc::DataCacheStore s(dpu, 0, 65536, 64, 1);
    dpu.run(1, [&](sim::Tasklet &t) {
        s.set(t, 0, alloc::NodeState::Split);
        s.get(t, 4096); // different line: evicts dirty line 0
        EXPECT_EQ(dpu.traffic().metadataWriteBytes, 64u);
    });
}

TEST(DataCacheStore, SectionViiGranularityMismatch)
{
    // Section VII: with equal capacity, a general-purpose 64 B-line
    // cache moves far more metadata than the word-granular buddy cache
    // on the buddy allocator's scattered access pattern.
    auto traffic_with = [](bool use_data_cache) {
        sim::Dpu dpu;
        const uint32_t heap = 32u << 20;
        const uint32_t min_block = 4096;
        const uint32_t nodes =
            alloc::BuddyTree::nodesFor(heap, min_block);
        std::unique_ptr<alloc::MetadataStore> store;
        if (use_data_cache) {
            // 64 B capacity = one 64 B line.
            store = std::make_unique<alloc::DataCacheStore>(dpu, 0, nodes,
                                                            64, 1);
        } else {
            store = std::make_unique<alloc::HwCacheStore>(dpu, 0, nodes);
        }
        alloc::BuddyTree tree(*store, 1u << 20, heap, min_block);
        dpu.run(1, [&](sim::Tasklet &t) {
            tree.reset(t);
            for (int i = 0; i < 256; ++i) {
                const auto p = tree.alloc(t, 4096);
                ASSERT_NE(p, sim::kNullAddr);
                tree.free(t, p);
            }
        });
        return dpu.traffic().metadataBytes();
    };
    const uint64_t general = traffic_with(true);
    const uint64_t buddy = traffic_with(false);
    EXPECT_GT(general, 4 * buddy);
}

TEST(FailureInjection, FreeingForeignAddressesNeverCorrupts)
{
    sim::Dpu dpu;
    core::AllocatorOverrides ov;
    ov.numTasklets = 2;
    ov.heapBytes = 1u << 20;
    auto a = core::makeAllocator(dpu, core::AllocatorKind::PimMallocSw, ov);
    dpu.run(1, [&](sim::Tasklet &t) { a->init(t); });
    dpu.run(1, [&](sim::Tasklet &t) {
        const sim::MramAddr p = a->malloc(t, 100);
        util::Rng rng(9);
        for (int i = 0; i < 200; ++i)
            EXPECT_FALSE(a->free(t, static_cast<sim::MramAddr>(
                                        rng.next() % (64u << 20))))
                << "random address accepted";
        // The legitimate block is still intact and freeable.
        EXPECT_TRUE(a->free(t, p));
    });
}

TEST(FailureInjection, ReInitAfterOomRestoresService)
{
    sim::Dpu dpu;
    alloc::PimMallocConfig cfg;
    cfg.heapBytes = 128 * 1024;
    cfg.numTasklets = 2;
    alloc::PimMallocAllocator a(dpu, cfg);
    dpu.run(1, [&](sim::Tasklet &t) {
        a.init(t);
        while (a.malloc(t, 4096) != sim::kNullAddr) {}
        a.init(t); // abandon everything, start over
        EXPECT_NE(a.malloc(t, 4096), sim::kNullAddr);
    });
}
