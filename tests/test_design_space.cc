/**
 * @file
 * Tests for the Table I / Fig 6 design-space model: strategy naming,
 * metadata sizing, scaling shapes (who grows with DPU count, who stays
 * flat), and the latency-breakdown characteristics of Fig 6(b).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/design_space.hh"

using namespace pim;
using namespace pim::core;

namespace {

DesignSpaceParams
fastParams(unsigned dpus)
{
    DesignSpaceParams p;
    p.numDpus = dpus;
    p.allocsPerDpu = 16; // fewer rounds keeps tests quick
    p.allocCfg.heapBytes = 1u << 20;
    return p;
}

} // namespace

TEST(DesignSpace, StrategyNames)
{
    EXPECT_STREQ(designStrategyName(DesignStrategy::PimMetaPimExec),
                 "PIM-Metadata/PIM-Executed");
    EXPECT_STREQ(designStrategyName(DesignStrategy::HostMetaHostExec),
                 "Host-Metadata/Host-Executed");
}

TEST(DesignSpace, PaperMetadataSize)
{
    alloc::StrawManConfig cfg; // 32 MB / 32 B
    EXPECT_EQ(metadataBytesPerDpu(cfg), 512u << 10);
}

TEST(DesignSpace, PimPimIsFlatAcrossDpuCounts)
{
    const auto r1 =
        evalStrategy(DesignStrategy::PimMetaPimExec, fastParams(1));
    const auto r512 =
        evalStrategy(DesignStrategy::PimMetaPimExec, fastParams(512));
    // DPUs allocate locally and in parallel: latency independent of N.
    EXPECT_NEAR(r1.totalSeconds(), r512.totalSeconds(),
                r1.totalSeconds() * 0.01);
}

TEST(DesignSpace, TransferHeavyStrategiesGrowWithDpus)
{
    for (auto s : {DesignStrategy::HostMetaPimExec,
                   DesignStrategy::PimMetaHostExec}) {
        const auto r32 = evalStrategy(s, fastParams(32));
        const auto r512 = evalStrategy(s, fastParams(512));
        EXPECT_GT(r512.totalSeconds(), 3.0 * r32.totalSeconds())
            << designStrategyName(s);
    }
}

TEST(DesignSpace, HostHostGrowsWithDpus)
{
    const auto r32 =
        evalStrategy(DesignStrategy::HostMetaHostExec, fastParams(32));
    const auto r512 =
        evalStrategy(DesignStrategy::HostMetaHostExec, fastParams(512));
    EXPECT_GT(r512.totalSeconds(), 2.0 * r32.totalSeconds());
}

TEST(DesignSpace, PimPimWinsAtScale)
{
    // Fig 6(a): at 512 DPUs, PIM-Metadata/PIM-Executed is the fastest
    // strategy by a wide margin.
    const auto p = fastParams(512);
    const double pim_pim =
        evalStrategy(DesignStrategy::PimMetaPimExec, p).totalSeconds();
    for (auto s : {DesignStrategy::HostMetaHostExec,
                   DesignStrategy::HostMetaPimExec,
                   DesignStrategy::PimMetaHostExec}) {
        EXPECT_GT(evalStrategy(s, p).totalSeconds(), 2.0 * pim_pim)
            << designStrategyName(s);
    }
}

TEST(DesignSpace, BreakdownShapes)
{
    // Fig 6(b): metadata-moving strategies are transfer-dominated;
    // PIM-PIM is compute-dominated.
    const auto p = fastParams(512);
    EXPECT_GT(evalStrategy(DesignStrategy::HostMetaPimExec, p)
                  .transferFraction(),
              0.5);
    EXPECT_GT(evalStrategy(DesignStrategy::PimMetaHostExec, p)
                  .transferFraction(),
              0.5);
    EXPECT_LT(evalStrategy(DesignStrategy::PimMetaPimExec, p)
                  .transferFraction(),
              0.5);
}

TEST(DesignSpace, TransferScalesWithMetadataSize)
{
    auto p_small = fastParams(128);
    auto p_large = fastParams(128);
    p_small.allocCfg.heapBytes = 1u << 20;
    p_large.allocCfg.heapBytes = 32u << 20;
    const auto small =
        evalStrategy(DesignStrategy::HostMetaPimExec, p_small);
    const auto large =
        evalStrategy(DesignStrategy::HostMetaPimExec, p_large);
    EXPECT_GT(large.transferSeconds, 4.0 * small.transferSeconds);
}

TEST(DesignSpace, SerialMakespanIsSumOfWork)
{
    const auto r =
        evalStrategy(DesignStrategy::HostMetaPimExec, fastParams(128));
    EXPECT_EQ(r.mode, ExecutionMode::Serial);
    EXPECT_DOUBLE_EQ(r.totalSeconds(),
                     r.computeSeconds + r.transferSeconds);
    EXPECT_DOUBLE_EQ(r.overlapSavedSeconds(), 0.0);
}

TEST(DesignSpace, OverlappedHidesWorkUnderTheMakespan)
{
    // Host-Meta/Host-Exec is compute-dominated: rank-pipelining hides
    // the per-round pointer transfers under the host's buddy runs.
    const auto p = fastParams(512);
    const auto r = evalStrategy(DesignStrategy::HostMetaHostExec, p,
                                ExecutionMode::Overlapped);
    EXPECT_EQ(r.mode, ExecutionMode::Overlapped);
    EXPECT_GT(r.computeSeconds, 0.0);
    EXPECT_GT(r.transferSeconds, 0.0);
    // Genuine overlap: end-to-end strictly below the summed work.
    EXPECT_LT(r.makespanSeconds,
              r.computeSeconds + r.transferSeconds);
    EXPECT_GT(r.overlapSavedSeconds(), 0.0);
    // ...but never below the bigger of the two timelines.
    EXPECT_GE(r.makespanSeconds,
              std::max(r.computeSeconds, r.transferSeconds) * 0.999);
}

TEST(DesignSpace, OverlappedPimPimMatchesSerial)
{
    // Nothing to pipeline in PIM-Meta/PIM-Exec: one launch either way.
    const auto p = fastParams(512);
    const auto serial =
        evalStrategy(DesignStrategy::PimMetaPimExec, p);
    const auto overlapped = evalStrategy(
        DesignStrategy::PimMetaPimExec, p, ExecutionMode::Overlapped);
    EXPECT_NEAR(overlapped.totalSeconds(), serial.totalSeconds(),
                serial.totalSeconds() * 0.01);
}

TEST(DesignSpace, OverlappedNeverBeatsBusOnTransferBoundStrategies)
{
    // Transfer-dominated strategies stay within a whisker of their bus
    // time: pipelining hides compute, not the saturated bus.
    const auto p = fastParams(128);
    const auto r = evalStrategy(DesignStrategy::HostMetaPimExec, p,
                                ExecutionMode::Overlapped);
    EXPECT_GE(r.makespanSeconds, r.transferSeconds * 0.999);
}
