/**
 * @file
 * End-to-end tests for PIM-malloc (SW, HW/SW, lazy): the three workflow
 * cases of Fig 10, service-level attribution, fragmentation accounting,
 * metadata footprint, pre-population, and multi-tasklet correctness.
 */

#include <gtest/gtest.h>

#include <set>

#include "alloc/pim_malloc.hh"
#include "sim/dpu.hh"
#include "util/rng.hh"

using namespace pim;
using namespace pim::alloc;

namespace {

PimMallocConfig
testConfig(MetadataMode mode = MetadataMode::SwBuffer,
           bool pre_populate = true, unsigned tasklets = 4)
{
    PimMallocConfig cfg;
    cfg.heapBytes = 4u << 20; // smaller heap keeps tests fast
    cfg.metadata = mode;
    cfg.prePopulate = pre_populate;
    cfg.numTasklets = tasklets;
    return cfg;
}

} // namespace

TEST(PimMalloc, Names)
{
    sim::Dpu d1, d2, d3;
    EXPECT_EQ(PimMallocAllocator(d1, testConfig()).name(),
              "PIM-malloc-SW");
    EXPECT_EQ(PimMallocAllocator(d2, testConfig(MetadataMode::HwCache))
                  .name(),
              "PIM-malloc-HW/SW");
    EXPECT_EQ(PimMallocAllocator(
                  d3, testConfig(MetadataMode::SwBuffer, false))
                  .name(),
              "PIM-malloc-SW-lazy");
}

TEST(PimMalloc, BackendMetadataFootprintMatchesPaper)
{
    sim::Dpu dpu;
    PimMallocConfig cfg; // paper defaults: 32 MB heap, 4 KB spans
    PimMallocAllocator a(dpu, cfg);
    // Section VI-E: the hierarchical design shrinks buddy metadata to
    // 4 KB per DRAM bank.
    EXPECT_EQ(a.backendMetadataBytes(), 4096u);
    EXPECT_EQ(a.backend().levels(), 14u);
}

TEST(PimMalloc, Fig10CaseHit)
{
    sim::Dpu dpu;
    PimMallocAllocator a(dpu, testConfig());
    dpu.run(1, [&](sim::Tasklet &t) {
        a.init(t);
        // Pre-populated cache: a 128 B request is a pure frontend hit.
        const auto p = a.malloc(t, 128);
        ASSERT_NE(p, sim::kNullAddr);
        EXPECT_EQ(a.stats().serviced[size_t(ServiceLevel::Frontend)], 1u);
        EXPECT_EQ(a.stats().serviced[size_t(ServiceLevel::Backend)], 0u);
    });
}

TEST(PimMalloc, Fig10CaseMissRefillsSpan)
{
    sim::Dpu dpu;
    PimMallocAllocator a(dpu, testConfig());
    dpu.run(1, [&](sim::Tasklet &t) {
        a.init(t);
        // Exhaust the pre-populated 2 KB span (2 blocks), then the next
        // request must refill from the buddy.
        a.malloc(t, 2048);
        a.malloc(t, 2048);
        a.malloc(t, 2048);
        EXPECT_EQ(a.stats().serviced[size_t(ServiceLevel::Frontend)], 2u);
        EXPECT_EQ(a.stats().serviced[size_t(ServiceLevel::Backend)], 1u);
    });
}

TEST(PimMalloc, Fig10CaseBypass)
{
    sim::Dpu dpu;
    PimMallocAllocator a(dpu, testConfig());
    dpu.run(1, [&](sim::Tasklet &t) {
        a.init(t);
        const auto p = a.malloc(t, 8192);
        ASSERT_NE(p, sim::kNullAddr);
        EXPECT_EQ(a.stats().serviced[size_t(ServiceLevel::Bypass)], 1u);
        EXPECT_TRUE(a.free(t, p));
    });
}

TEST(PimMalloc, LazyModeStartsEmpty)
{
    sim::Dpu dpu;
    PimMallocAllocator a(dpu, testConfig(MetadataMode::SwBuffer, false));
    dpu.run(1, [&](sim::Tasklet &t) {
        a.init(t);
        EXPECT_EQ(a.stats().reservedBytes, 0u);
        // First small request must go to the backend (span fetch).
        a.malloc(t, 64);
        EXPECT_EQ(a.stats().serviced[size_t(ServiceLevel::Backend)], 1u);
    });
}

TEST(PimMalloc, PrePopulationReservesOneSpanPerClassPerTasklet)
{
    sim::Dpu dpu;
    const auto cfg = testConfig(MetadataMode::SwBuffer, true, 4);
    PimMallocAllocator a(dpu, cfg);
    dpu.run(1, [&](sim::Tasklet &t) { a.init(t); });
    // 4 tasklets x 8 classes x 4 KB spans.
    EXPECT_EQ(a.stats().reservedBytes, 4u * 8u * 4096u);
    EXPECT_EQ(a.backend().allocatedBytes(), 4u * 8u * 4096u);
}

TEST(PimMalloc, FreeReturnsBlocksAndEmptySpans)
{
    sim::Dpu dpu;
    PimMallocAllocator a(dpu, testConfig(MetadataMode::SwBuffer, false));
    dpu.run(1, [&](sim::Tasklet &t) {
        a.init(t);
        // Two spans of the 2 KB class.
        std::vector<sim::MramAddr> ps;
        for (int i = 0; i < 4; ++i)
            ps.push_back(a.malloc(t, 2048));
        EXPECT_EQ(a.stats().reservedBytes, 2u * 4096u);
        for (auto p : ps)
            EXPECT_TRUE(a.free(t, p));
        // One span lingers (last-span caching), one returned.
        EXPECT_EQ(a.stats().reservedBytes, 4096u);
        EXPECT_EQ(a.stats().requestedBytes, 0u);
    });
}

TEST(PimMalloc, FragmentationMatchesDefinition)
{
    sim::Dpu dpu;
    PimMallocAllocator a(dpu, testConfig(MetadataMode::SwBuffer, false));
    dpu.run(1, [&](sim::Tasklet &t) {
        a.init(t);
        a.malloc(t, 1024); // one 4 KB span fetched, 1 KB requested
        EXPECT_NEAR(a.stats().fragmentation(), 4096.0 / 1024.0, 1e-9);
        // Peak tracks the worst ratio seen.
        EXPECT_GE(a.stats().peakFragmentation, 4.0);
    });
}

TEST(PimMalloc, EagerFragmentationHigherThanLazy)
{
    auto peak_frag = [](bool pre_populate) {
        sim::Dpu dpu;
        PimMallocAllocator a(
            dpu, testConfig(MetadataMode::SwBuffer, pre_populate, 4));
        dpu.run(1, [&](sim::Tasklet &t) { a.init(t); });
        dpu.run(4, [&](sim::Tasklet &t) {
            for (int i = 0; i < 64; ++i)
                a.malloc(t, 256); // single size class, Table III row 1
        });
        return a.stats().peakFragmentation;
    };
    // Table III: pre-population inflates A/U; lazy stays near 1.
    EXPECT_GT(peak_frag(true), peak_frag(false));
}

TEST(PimMalloc, DistinctAddressesAcrossTaskletsAndSizes)
{
    sim::Dpu dpu;
    PimMallocAllocator a(dpu, testConfig());
    dpu.run(1, [&](sim::Tasklet &t) { a.init(t); });
    std::set<sim::MramAddr> seen;
    dpu.run(4, [&](sim::Tasklet &t) {
        util::Rng rng(t.id() + 1);
        for (int i = 0; i < 100; ++i) {
            const uint32_t size =
                static_cast<uint32_t>(rng.uniformRange(1, 3000));
            const auto p = a.malloc(t, size);
            ASSERT_NE(p, sim::kNullAddr);
            ASSERT_TRUE(seen.insert(p).second) << "duplicate " << p;
        }
    });
    EXPECT_EQ(seen.size(), 400u);
}

TEST(PimMalloc, RandomAllocFreeChurnStaysConsistent)
{
    sim::Dpu dpu;
    PimMallocAllocator a(dpu, testConfig(MetadataMode::HwCache));
    dpu.run(1, [&](sim::Tasklet &t) { a.init(t); });
    dpu.run(4, [&](sim::Tasklet &t) {
        util::Rng rng(t.id() + 77);
        std::vector<sim::MramAddr> live;
        for (int i = 0; i < 400; ++i) {
            if (live.empty() || rng.bernoulli(0.55)) {
                const uint32_t size =
                    static_cast<uint32_t>(rng.uniformRange(1, 6000));
                const auto p = a.malloc(t, size);
                if (p != sim::kNullAddr)
                    live.push_back(p);
            } else {
                const size_t idx = rng.uniformInt(live.size());
                ASSERT_TRUE(a.free(t, live[idx]));
                live.erase(live.begin() + static_cast<long>(idx));
            }
        }
        for (auto p : live)
            ASSERT_TRUE(a.free(t, p));
    });
    EXPECT_EQ(a.stats().requestedBytes, 0u);
    EXPECT_EQ(a.stats().failures, 0u);
}

TEST(PimMalloc, FreeOfUnknownPointerRejected)
{
    sim::Dpu dpu;
    PimMallocAllocator a(dpu, testConfig());
    dpu.run(1, [&](sim::Tasklet &t) {
        a.init(t);
        EXPECT_FALSE(a.free(t, 0x123456));
        const auto p = a.malloc(t, 64);
        EXPECT_TRUE(a.free(t, p));
        EXPECT_FALSE(a.free(t, p));
    });
}

TEST(PimMalloc, OutOfMemoryFailsGracefully)
{
    sim::Dpu dpu;
    PimMallocConfig cfg = testConfig(MetadataMode::SwBuffer, false);
    cfg.heapBytes = 64 * 1024;
    PimMallocAllocator a(dpu, cfg);
    dpu.run(1, [&](sim::Tasklet &t) {
        a.init(t);
        std::vector<sim::MramAddr> ps;
        for (;;) {
            const auto p = a.malloc(t, 4096);
            if (p == sim::kNullAddr)
                break;
            ps.push_back(p);
        }
        EXPECT_EQ(ps.size(), 16u);
        EXPECT_EQ(a.stats().failures, 1u);
        // Recovery after frees.
        for (auto p : ps)
            a.free(t, p);
        EXPECT_NE(a.malloc(t, 4096), sim::kNullAddr);
    });
}

TEST(PimMalloc, LatencyTraceRecordsEvents)
{
    sim::Dpu dpu;
    PimMallocAllocator a(dpu, testConfig());
    a.stats().traceEvents = true;
    dpu.run(1, [&](sim::Tasklet &t) {
        a.init(t);
        a.malloc(t, 32);
        a.malloc(t, 32);
    });
    ASSERT_EQ(a.stats().events.size(), 2u);
    EXPECT_GT(a.stats().events[1].startCycle,
              a.stats().events[0].startCycle);
    EXPECT_GT(a.stats().events[0].latencyCycles, 0u);
    EXPECT_EQ(a.stats().events[0].size, 32u);
}

TEST(PimMalloc, WramBudgetExhaustionFallsBackToBypass)
{
    sim::Dpu dpu;
    PimMallocConfig cfg = testConfig(MetadataMode::SwBuffer, false, 1);
    cfg.maxSpansPerTasklet = 2;
    PimMallocAllocator a(dpu, cfg);
    dpu.run(1, [&](sim::Tasklet &t) {
        a.init(t);
        // Fill two spans of the 16 B class (2 x 256 blocks), then one
        // more request: no record budget left -> bypass.
        for (int i = 0; i < 512; ++i)
            ASSERT_NE(a.malloc(t, 16), sim::kNullAddr);
        ASSERT_NE(a.malloc(t, 16), sim::kNullAddr);
        EXPECT_EQ(a.stats().serviced[size_t(ServiceLevel::Bypass)], 1u);
    });
}

TEST(PimMalloc, HwVariantPopulatesBuddyCache)
{
    sim::Dpu dpu;
    PimMallocAllocator a(dpu, testConfig(MetadataMode::HwCache));
    dpu.run(1, [&](sim::Tasklet &t) {
        a.init(t);
        for (int i = 0; i < 8; ++i)
            a.malloc(t, 4096); // bypass -> backend tree traversals
    });
    EXPECT_GT(dpu.buddyCache().stats().lookups, 0u);
    EXPECT_GT(dpu.buddyCache().stats().hitRate(), 0.5);
}

TEST(PimMallocDeath, MallocBeforeInitPanics)
{
    sim::Dpu dpu;
    PimMallocAllocator a(dpu, testConfig());
    EXPECT_DEATH(dpu.run(1, [&](sim::Tasklet &t) { a.malloc(t, 32); }),
                 "before initAllocator");
}
