/**
 * @file
 * Tests for FlatMemory (WRAM/MRAM backing store) and the Tasklet DMA
 * cost model.
 */

#include <gtest/gtest.h>

#include "sim/dpu.hh"
#include "sim/memory.hh"

using namespace pim::sim;

TEST(FlatMemory, TypedReadWrite)
{
    FlatMemory m(1024, "test");
    m.write<uint32_t>(16, 0xdeadbeef);
    EXPECT_EQ(m.read<uint32_t>(16), 0xdeadbeefu);
    m.write<uint64_t>(64, 0x0123456789abcdefull);
    EXPECT_EQ(m.read<uint64_t>(64), 0x0123456789abcdefull);
}

TEST(FlatMemory, InitiallyZero)
{
    FlatMemory m(256, "test");
    for (uint32_t i = 0; i < 256; i += 8)
        EXPECT_EQ(m.read<uint64_t>(i), 0u);
}

TEST(FlatMemory, BulkCopy)
{
    FlatMemory m(1024, "test");
    const char src[] = "hello pim";
    m.writeBytes(100, src, sizeof(src));
    char dst[sizeof(src)];
    m.readBytes(100, dst, sizeof(src));
    EXPECT_STREQ(dst, "hello pim");
}

TEST(FlatMemory, MoveBytesOverlapping)
{
    FlatMemory m(64, "test");
    for (uint8_t i = 0; i < 16; ++i)
        m.write<uint8_t>(i, i);
    m.moveBytes(4, 0, 16); // overlapping forward shift
    for (uint8_t i = 0; i < 16; ++i)
        EXPECT_EQ(m.read<uint8_t>(4 + i), i);
}

TEST(FlatMemory, Fill)
{
    FlatMemory m(64, "test");
    m.fill(8, 16, 0xab);
    EXPECT_EQ(m.read<uint8_t>(7), 0u);
    EXPECT_EQ(m.read<uint8_t>(8), 0xabu);
    EXPECT_EQ(m.read<uint8_t>(23), 0xabu);
    EXPECT_EQ(m.read<uint8_t>(24), 0u);
}

TEST(FlatMemoryDeath, OutOfRangePanics)
{
    FlatMemory m(64, "tiny");
    EXPECT_DEATH(m.read<uint32_t>(62), "out of range");
    EXPECT_DEATH(m.write<uint32_t>(64, 1), "out of range");
}

TEST(Dma, ReadCostMatchesModel)
{
    Dpu dpu;
    const auto &cfg = dpu.config();
    dpu.run(1, [](Tasklet &t) { t.dmaRead(0, 1024); });
    const uint64_t expect = cfg.dmaSetupCycles
        + static_cast<uint64_t>(cfg.dmaCyclesPerByte * 1024);
    EXPECT_EQ(dpu.lastElapsedCycles(), expect);
    EXPECT_EQ(dpu.lastBreakdown().of(CycleKind::IdleMemory), expect);
}

TEST(Dma, TrafficAccounting)
{
    Dpu dpu;
    dpu.run(1, [](Tasklet &t) {
        t.dmaRead(0, 100, TrafficClass::Data);
        t.dmaWrite(0, 50, TrafficClass::Data);
        t.dmaRead(0, 8, TrafficClass::Metadata);
        t.dmaWrite(0, 4, TrafficClass::Metadata);
    });
    const auto &tr = dpu.traffic();
    EXPECT_EQ(tr.dataReadBytes, 100u);
    EXPECT_EQ(tr.dataWriteBytes, 50u);
    EXPECT_EQ(tr.metadataReadBytes, 8u);
    EXPECT_EQ(tr.metadataWriteBytes, 4u);
    EXPECT_EQ(tr.dmaTransfers, 4u);
    EXPECT_EQ(tr.totalBytes(), 162u);
    EXPECT_EQ(tr.metadataBytes(), 12u);
}

TEST(Dma, TypedMramHelpersChargeMinimumEightBytes)
{
    Dpu dpu;
    dpu.run(1, [](Tasklet &t) {
        t.mramWrite<uint32_t>(128, 77);
        EXPECT_EQ(t.mramRead<uint32_t>(128), 77u);
    });
    // Both 4-byte accesses charge the 8-byte DMA minimum.
    EXPECT_EQ(dpu.traffic().dataWriteBytes, 8u);
    EXPECT_EQ(dpu.traffic().dataReadBytes, 8u);
}

TEST(Dma, ResetStatsClearsTraffic)
{
    Dpu dpu;
    dpu.run(1, [](Tasklet &t) { t.dmaRead(0, 64); });
    EXPECT_GT(dpu.traffic().totalBytes(), 0u);
    dpu.resetStats();
    EXPECT_EQ(dpu.traffic().totalBytes(), 0u);
}

TEST(Dpu, WramReserveBudget)
{
    DpuConfig cfg;
    cfg.wramBytes = 1024;
    Dpu dpu(cfg);
    EXPECT_EQ(dpu.wramReserve(512), 0u);
    EXPECT_EQ(dpu.wramReserve(256), 512u);
    EXPECT_EQ(dpu.wramUsed(), 768u);
    dpu.wramReset();
    EXPECT_EQ(dpu.wramUsed(), 0u);
}

TEST(DpuDeath, WramOverflowPanics)
{
    DpuConfig cfg;
    cfg.wramBytes = 1024;
    Dpu dpu(cfg);
    dpu.wramReserve(1024);
    EXPECT_DEATH(dpu.wramReserve(1), "WRAM budget exceeded");
}
