/**
 * @file
 * Tests for the buddy tree: geometry, allocation/free semantics,
 * alignment and non-overlap invariants, merge behaviour, fullness
 * pruning, exhaustion, and differential randomized testing against a
 * simple host-side reference allocator.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "alloc/buddy_tree.hh"
#include "sim/dpu.hh"
#include "util/rng.hh"

using namespace pim;
using namespace pim::alloc;

namespace {

/** Fixture with a small direct-store tree for fast functional tests. */
class BuddyTreeTest : public ::testing::Test
{
  protected:
    static constexpr uint32_t kHeap = 64 * 1024;
    static constexpr uint32_t kMin = 64;
    static constexpr sim::MramAddr kHeapBase = 4096;

    BuddyTreeTest()
        : store(dpu, 0, BuddyTree::nodesFor(kHeap, kMin)),
          tree(store, kHeapBase, kHeap, kMin)
    {
    }

    void
    run(const std::function<void(sim::Tasklet &)> &fn)
    {
        dpu.run(1, [&](sim::Tasklet &t) {
            t.execute(1);
            fn(t);
        });
    }

    sim::Dpu dpu;
    DirectStore store;
    BuddyTree tree;
};

} // namespace

TEST_F(BuddyTreeTest, Geometry)
{
    // 64 KB / 64 B = 1024 leaves -> 11 levels, 2047 nodes.
    EXPECT_EQ(tree.levels(), 11u);
    EXPECT_EQ(tree.numNodes(), 2047u);
    EXPECT_EQ(tree.blockSize(0), kHeap);
    EXPECT_EQ(tree.blockSize(10), kMin);
    EXPECT_EQ(BuddyTree::nodesFor(kHeap, kMin), 2047u);
}

TEST_F(BuddyTreeTest, PaperTreeDepths)
{
    // Section III-B: 32 MB / 32 B needs a 20-split (21-level) tree with
    // 512 KB of metadata; Section IV-A: 32 MB / 4 KB needs 13 splits
    // (14 levels) and 4 KB of metadata.
    EXPECT_EQ(BuddyTree::nodesFor(32u << 20, 32), (1u << 21) - 1);
    EXPECT_EQ(((1u << 21) / 16) * 4, 512u << 10);
    EXPECT_EQ(BuddyTree::nodesFor(32u << 20, 4096), (1u << 14) - 1);
    EXPECT_EQ(((1u << 14) / 16) * 4, 4u << 10);
}

TEST_F(BuddyTreeTest, RoundSize)
{
    EXPECT_EQ(tree.roundSize(1), kMin);
    EXPECT_EQ(tree.roundSize(64), 64u);
    EXPECT_EQ(tree.roundSize(65), 128u);
    EXPECT_EQ(tree.roundSize(1000), 1024u);
    EXPECT_EQ(tree.roundSize(kHeap), kHeap);
}

TEST_F(BuddyTreeTest, FirstAllocationAtHeapBase)
{
    run([&](sim::Tasklet &t) {
        EXPECT_EQ(tree.alloc(t, 64), kHeapBase);
    });
}

TEST_F(BuddyTreeTest, WholeHeapAllocation)
{
    run([&](sim::Tasklet &t) {
        EXPECT_EQ(tree.alloc(t, kHeap), kHeapBase);
        EXPECT_EQ(tree.alloc(t, 64), sim::kNullAddr); // nothing left
        EXPECT_EQ(tree.free(t, kHeapBase), kHeap);
        EXPECT_NE(tree.alloc(t, 64), sim::kNullAddr);
    });
}

TEST_F(BuddyTreeTest, OversizeRequestFails)
{
    run([&](sim::Tasklet &t) {
        EXPECT_EQ(tree.alloc(t, kHeap + 1), sim::kNullAddr);
        EXPECT_EQ(tree.stats().failures, 1u);
    });
}

TEST_F(BuddyTreeTest, BlocksAreAlignedToTheirSize)
{
    run([&](sim::Tasklet &t) {
        for (uint32_t size : {64u, 128u, 256u, 1024u, 4096u}) {
            const sim::MramAddr a = tree.alloc(t, size);
            ASSERT_NE(a, sim::kNullAddr);
            EXPECT_EQ((a - kHeapBase) % size, 0u)
                << "size " << size << " misaligned";
        }
    });
}

TEST_F(BuddyTreeTest, NoOverlapAmongLiveBlocks)
{
    run([&](sim::Tasklet &t) {
        std::map<sim::MramAddr, uint32_t> live; // addr -> rounded size
        util::Rng rng(99);
        for (int i = 0; i < 300; ++i) {
            const uint32_t size =
                64u << rng.uniformInt(5); // 64..1024
            const sim::MramAddr a = tree.alloc(t, size);
            if (a == sim::kNullAddr) {
                // Free something and move on.
                if (!live.empty()) {
                    auto it = live.begin();
                    EXPECT_EQ(tree.free(t, it->first), it->second);
                    live.erase(it);
                }
                continue;
            }
            const uint32_t rounded = tree.roundSize(size);
            // Check non-overlap against all live blocks.
            for (const auto &[base, len] : live) {
                const bool disjoint =
                    a + rounded <= base || base + len <= a;
                ASSERT_TRUE(disjoint)
                    << "overlap: [" << a << "," << a + rounded << ") vs ["
                    << base << "," << base + len << ")";
            }
            live[a] = rounded;
        }
    });
}

TEST_F(BuddyTreeTest, FreeMergesBuddies)
{
    run([&](sim::Tasklet &t) {
        const sim::MramAddr a = tree.alloc(t, 64);
        const sim::MramAddr b = tree.alloc(t, 64);
        ASSERT_NE(a, sim::kNullAddr);
        ASSERT_NE(b, sim::kNullAddr);
        tree.free(t, a);
        tree.free(t, b);
        // After merging all the way up, the whole heap is allocatable.
        EXPECT_EQ(tree.alloc(t, kHeap), kHeapBase);
    });
}

TEST_F(BuddyTreeTest, PartialMergeBlockedByLiveBuddy)
{
    run([&](sim::Tasklet &t) {
        const sim::MramAddr a = tree.alloc(t, 64);
        const sim::MramAddr b = tree.alloc(t, 64);
        (void)b;
        tree.free(t, a);
        // b still live: the whole heap must not be allocatable.
        EXPECT_EQ(tree.alloc(t, kHeap), sim::kNullAddr);
    });
}

TEST_F(BuddyTreeTest, DoubleFreeRejected)
{
    run([&](sim::Tasklet &t) {
        const sim::MramAddr a = tree.alloc(t, 128);
        EXPECT_EQ(tree.free(t, a), 128u);
        EXPECT_EQ(tree.free(t, a), 0u);
    });
}

TEST_F(BuddyTreeTest, WildPointerRejected)
{
    run([&](sim::Tasklet &t) {
        EXPECT_EQ(tree.free(t, kHeapBase + 64), 0u); // never allocated
        EXPECT_EQ(tree.free(t, 0), 0u);              // outside the heap
        EXPECT_EQ(tree.free(t, kHeapBase + kHeap + 64), 0u);
        tree.alloc(t, 256);
        EXPECT_EQ(tree.free(t, kHeapBase + 64), 0u); // interior pointer
    });
}

TEST_F(BuddyTreeTest, MisalignedPointerRejected)
{
    run([&](sim::Tasklet &t) {
        tree.alloc(t, 64);
        EXPECT_EQ(tree.free(t, kHeapBase + 13), 0u);
    });
}

TEST_F(BuddyTreeTest, AllocatedBytesTracksRoundedSizes)
{
    run([&](sim::Tasklet &t) {
        EXPECT_EQ(tree.allocatedBytes(), 0u);
        const sim::MramAddr a = tree.alloc(t, 100); // rounds to 128
        EXPECT_EQ(tree.allocatedBytes(), 128u);
        tree.alloc(t, 64);
        EXPECT_EQ(tree.allocatedBytes(), 192u);
        tree.free(t, a);
        EXPECT_EQ(tree.allocatedBytes(), 64u);
    });
}

TEST_F(BuddyTreeTest, ExhaustionAndFullRecovery)
{
    run([&](sim::Tasklet &t) {
        std::vector<sim::MramAddr> blocks;
        for (;;) {
            const sim::MramAddr a = tree.alloc(t, kMin);
            if (a == sim::kNullAddr)
                break;
            blocks.push_back(a);
        }
        EXPECT_EQ(blocks.size(), kHeap / kMin);
        // Every address distinct.
        std::set<sim::MramAddr> uniq(blocks.begin(), blocks.end());
        EXPECT_EQ(uniq.size(), blocks.size());
        for (const auto a : blocks)
            EXPECT_EQ(tree.free(t, a), kMin);
        EXPECT_EQ(tree.allocatedBytes(), 0u);
        EXPECT_EQ(tree.alloc(t, kHeap), kHeapBase);
    });
}

TEST_F(BuddyTreeTest, FullPruningBoundsTraversal)
{
    run([&](sim::Tasklet &t) {
        // Fill the left half leaf by leaf, then allocate once more: the
        // search must not revisit every allocated leaf thanks to Full
        // pruning.
        for (uint32_t i = 0; i < kHeap / kMin / 2; ++i)
            ASSERT_NE(tree.alloc(t, kMin), sim::kNullAddr);
        const uint64_t visits_before = tree.stats().nodesVisited;
        ASSERT_NE(tree.alloc(t, kMin), sim::kNullAddr);
        const uint64_t visits = tree.stats().nodesVisited - visits_before;
        // A pruned search touches O(depth) nodes, far fewer than the
        // 512 allocated leaves.
        EXPECT_LT(visits, 4 * tree.levels());
    });
}

TEST_F(BuddyTreeTest, VisitsPerAllocStatistic)
{
    run([&](sim::Tasklet &t) {
        tree.alloc(t, kMin);
        EXPECT_GT(tree.stats().visitsPerAlloc(), 0.0);
        EXPECT_EQ(tree.stats().allocs, 1u);
    });
}

/**
 * Differential test: the buddy tree against a host-side reference that
 * tracks live intervals; verifies no overlap, correct sizes, and that
 * free/alloc agree over long random runs across store types.
 */
class BuddyTreeRandomized
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(BuddyTreeRandomized, LongRandomRunKeepsInvariants)
{
    const auto [seed, mode] = GetParam();
    sim::Dpu dpu;
    const uint32_t heap = 1u << 20;
    const uint32_t min_block = 256;
    const uint32_t nodes = BuddyTree::nodesFor(heap, min_block);
    std::unique_ptr<MetadataStore> store;
    switch (mode) {
      case 0:
        store = std::make_unique<DirectStore>(dpu, 0, nodes);
        break;
      case 1:
        store = std::make_unique<SwBufferStore>(dpu, 0, nodes, 128);
        break;
      default:
        store = std::make_unique<HwCacheStore>(dpu, 0, nodes);
        break;
    }
    BuddyTree tree(*store, 1 << 16, heap, min_block);

    dpu.run(1, [&](sim::Tasklet &t) {
        t.execute(1);
        util::Rng rng(static_cast<uint64_t>(seed));
        std::map<sim::MramAddr, uint32_t> live;
        uint64_t expected_allocated = 0;
        for (int i = 0; i < 2000; ++i) {
            if (live.empty() || rng.bernoulli(0.6)) {
                const uint32_t size = static_cast<uint32_t>(
                    rng.uniformRange(1, 8192));
                const sim::MramAddr a = tree.alloc(t, size);
                if (a == sim::kNullAddr)
                    continue;
                const uint32_t rounded = tree.roundSize(size);
                // Alignment + containment.
                ASSERT_EQ((a - (1u << 16)) % rounded, 0u);
                ASSERT_LE(a + rounded, (1u << 16) + heap);
                // Non-overlap with neighbors in the interval map.
                auto next = live.lower_bound(a);
                if (next != live.end()) {
                    ASSERT_LE(a + rounded, next->first);
                }
                if (next != live.begin()) {
                    auto prev = std::prev(next);
                    ASSERT_LE(prev->first + prev->second, a);
                }
                live[a] = rounded;
                expected_allocated += rounded;
            } else {
                auto it = live.begin();
                std::advance(it, static_cast<long>(
                                 rng.uniformInt(live.size())));
                ASSERT_EQ(tree.free(t, it->first), it->second);
                expected_allocated -= it->second;
                live.erase(it);
            }
            ASSERT_EQ(tree.allocatedBytes(), expected_allocated);
        }
    });
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndStores, BuddyTreeRandomized,
    ::testing::Combine(::testing::Values(11, 22, 33),
                       ::testing::Values(0, 1, 2)));
