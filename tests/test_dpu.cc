/**
 * @file
 * DPU-level tests: configuration defaults, launch mechanics, repeated
 * launches, and time conversion.
 */

#include <gtest/gtest.h>

#include "sim/dpu.hh"

using namespace pim::sim;

TEST(Dpu, UpmemDefaults)
{
    Dpu dpu;
    EXPECT_EQ(dpu.config().mramBytes, 64u << 20);
    EXPECT_EQ(dpu.config().wramBytes, 64u << 10);
    EXPECT_EQ(dpu.config().maxTasklets, 24u);
    EXPECT_DOUBLE_EQ(dpu.config().clockGhz, 0.35);
    EXPECT_EQ(dpu.mram().size(), 64u << 20);
    EXPECT_EQ(dpu.wram().size(), 64u << 10);
}

TEST(Dpu, CycleConversion)
{
    DpuConfig cfg;
    cfg.clockGhz = 0.35;
    // 350 cycles at 350 MHz = 1 us.
    EXPECT_NEAR(cfg.cyclesToMicros(350), 1.0, 1e-9);
    EXPECT_NEAR(cfg.cyclesToSeconds(350'000'000), 1.0, 1e-9);
}

TEST(Dpu, RunReturnsMakespan)
{
    Dpu dpu;
    const uint64_t c = dpu.run(2, [](Tasklet &t) {
        t.execute(t.id() == 0 ? 1 : 7);
    });
    EXPECT_EQ(c, dpu.lastElapsedCycles());
    EXPECT_EQ(c, 7u * 11u);
}

TEST(Dpu, SequentialLaunchesIndependentClocks)
{
    Dpu dpu;
    dpu.run(1, [](Tasklet &t) { t.execute(100); });
    const uint64_t first = dpu.lastElapsedCycles();
    dpu.run(1, [](Tasklet &t) { t.execute(1); });
    EXPECT_LT(dpu.lastElapsedCycles(), first);
}

TEST(Dpu, StatePersistsAcrossLaunches)
{
    Dpu dpu;
    dpu.run(1, [&](Tasklet &t) {
        t.dpu().mram().write<uint32_t>(1000, 7);
        t.execute(1);
    });
    uint32_t seen = 0;
    dpu.run(1, [&](Tasklet &t) {
        seen = t.dpu().mram().read<uint32_t>(1000);
        t.execute(1);
    });
    EXPECT_EQ(seen, 7u);
}

TEST(Dpu, MaxTaskletsLaunchWorks)
{
    Dpu dpu;
    unsigned count = 0;
    dpu.run(24, [&](Tasklet &t) {
        ++count;
        t.execute(1);
    });
    EXPECT_EQ(count, 24u);
}

TEST(Dpu, CustomConfigPropagates)
{
    DpuConfig cfg;
    cfg.mramBytes = 1u << 20;
    cfg.pipelineIssueInterval = 5;
    Dpu dpu(cfg);
    EXPECT_EQ(dpu.mram().size(), 1u << 20);
    dpu.run(1, [](Tasklet &t) { t.execute(10); });
    EXPECT_EQ(dpu.lastElapsedCycles(), 50u);
}

TEST(DpuDeath, EmptyLaunchPanics)
{
    Dpu dpu;
    EXPECT_DEATH(dpu.runBodies({}), "at least one tasklet");
}
