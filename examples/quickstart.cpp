/**
 * @file
 * Quickstart: the paper's Table II API in thirty lines.
 *
 * Creates one simulated DPU, instantiates PIM-malloc-SW, runs
 * initAllocator() on tasklet 0, then has 16 tasklets allocate and free
 * MRAM blocks concurrently while the harness reports latency, service
 * levels, and fragmentation.
 *
 * Run:  ./quickstart [--tasklets=16] [--allocs=64] [--size=256]
 *                    [--allocator=sw|hwsw|straw-man|sw-lazy|hwsw-lazy]
 *                    [--trace=out.json] [--occupancy]
 *
 * --trace captures the run as Chrome/Perfetto trace-event JSON (queue
 * lanes, plus per-tasklet lanes in PIM_TRACE_SIM builds); --occupancy
 * prints the per-lane busy breakdown.
 */

#include <iostream>
#include <vector>

#include "core/allocator_factory.hh"
#include "core/command_queue.hh"
#include "core/pim_system.hh"
#include "trace/chrome_trace.hh"
#include "util/cli.hh"
#include "util/table.hh"

using namespace pim;

int
main(int argc, char **argv)
{
    util::Cli cli(argc, argv,
                  "tasklets,allocs,size,allocator,trace,occupancy");
    // The shared-knob subset (tasklets/trace/occupancy) parses through
    // BenchKnobs so the trace knobs behave exactly like the benches'.
    const util::BenchKnobs knobs = util::parseBenchKnobs(cli);
    const unsigned tasklets = knobs.tasklets;
    const unsigned allocs = static_cast<unsigned>(cli.getInt("allocs", 64));
    const uint32_t size = static_cast<uint32_t>(cli.getInt("size", 256));
    const auto kind =
        core::allocatorKindFromName(cli.get("allocator", "sw"));

    // A one-DPU system with the UPMEM defaults (350 MHz, 24 tasklet
    // slots, 64 KB WRAM, 64 MB MRAM), driven through the command-queue
    // runtime every experiment in the repo uses.
    core::PimSystem sys(core::singleDpuConfig());
    core::CommandQueue queue(sys);
    sim::Dpu &dpu = sys.dpu(0);

    trace::Recorder recorder;
    if (knobs.wantsTrace()) {
        queue.attachRecorder(&recorder);
#ifdef PIM_TRACE_SIM
        dpu.attachTraceRecorder(&recorder);
#endif
    }

    core::AllocatorOverrides ov;
    ov.numTasklets = tasklets;
    auto allocator = core::makeAllocator(dpu, kind, ov);

    // Table II: initAllocator() runs once, on a designated tasklet.
    queue.launch(sys.all(), 1,
                 [&](sim::Tasklet &t, unsigned) { allocator->init(t); },
                 {.label = "initAllocator"});

    // pimMalloc()/pimFree() from every tasklet, no explicit locking.
    queue.launch(sys.all(), tasklets, [&](sim::Tasklet &t, unsigned) {
        std::vector<sim::MramAddr> mine;
        for (unsigned i = 0; i < allocs; ++i) {
            const sim::MramAddr p = allocator->malloc(t, size);
            if (p == sim::kNullAddr) {
                std::cerr << "heap exhausted at allocation " << i << "\n";
                break;
            }
            mine.push_back(p);
        }
        for (sim::MramAddr p : mine)
            allocator->free(t, p);
    }, {.label = "alloc+free"});
    queue.sync();

    const auto &st = allocator->stats();
    util::Table out(allocator->name() + " on one DPU: "
                    + std::to_string(tasklets) + " tasklets x "
                    + std::to_string(allocs) + " x "
                    + std::to_string(size) + " B");
    out.setHeader({"Metric", "Value"});
    out.addRow({"pimMalloc calls", util::Table::num(st.mallocCalls)});
    out.addRow({"pimFree calls", util::Table::num(st.freeCalls)});
    out.addRow({"Mean latency (us)",
                util::Table::num(dpu.config().cyclesToMicros(
                    static_cast<uint64_t>(st.latency.mean())), 2)});
    out.addRow({"Frontend hits %",
                util::Table::num(st.servicedFraction(
                                     alloc::ServiceLevel::Frontend) * 100,
                                 1)});
    out.addRow({"Peak fragmentation (A/U)",
                util::Table::num(st.peakFragmentation, 2)});
    out.addRow({"Allocator metadata (KB)",
                util::Table::num(
                    static_cast<double>(allocator->metadataBytes())
                        / 1024.0, 1)});
    out.addRow({"Makespan (us)",
                util::Table::num(dpu.config().cyclesToMicros(
                    dpu.lastElapsedCycles()), 1)});
    out.print(std::cout);

    if (knobs.wantsTrace()
        && !trace::emitReports(std::cout, {{"quickstart", &recorder}},
                               knobs.occupancy, knobs.tracePath))
        return 1;
    return 0;
}
