/**
 * @file
 * Domain example #3 — exploring the allocator design space (Table I).
 *
 * Evaluates where allocator metadata should live (host vs PIM) and
 * which processor should run the buddy algorithm (host vs PIM cores)
 * for a configurable system size, reproducing the reasoning behind the
 * paper's choice of PIM-Metadata/PIM-Executed.
 *
 * Run:  ./design_space [--dpus=512] [--allocs=128] [--size=32]
 *                      [--overlap] [--trace=out.json] [--occupancy]
 *
 * --overlap additionally replays each pseudo-program on the async
 * command-queue runtime, pipelining rounds at rank granularity.
 * --trace / --occupancy imply --overlap: the replays are captured as
 * one Chrome/Perfetto process per strategy, and/or summarized as
 * per-lane busy fractions.
 */

#include <iostream>
#include <vector>

#include "core/design_space.hh"
#include "trace/chrome_trace.hh"
#include "util/cli.hh"
#include "util/table.hh"

using namespace pim;
using namespace pim::core;

int
main(int argc, char **argv)
{
    util::Cli cli(argc, argv, "dpus,allocs,size,overlap,trace,occupancy");
    // The shared-knob subset (dpus/trace/occupancy) parses through
    // BenchKnobs so the trace knobs behave exactly like the benches'.
    const util::BenchKnobs knobs = util::parseBenchKnobs(cli);

    DesignSpaceParams p;
    p.numDpus = knobs.dpus;
    p.allocsPerDpu = static_cast<unsigned>(cli.getInt("allocs", 128));
    p.allocSize = static_cast<uint32_t>(cli.getInt("size", 32));

    util::Table out("Design space at " + std::to_string(p.numDpus)
                    + " PIM cores, " + std::to_string(p.allocsPerDpu)
                    + " x " + std::to_string(p.allocSize)
                    + " B allocations per core");
    out.setHeader({"Strategy", "Total (s)", "Compute (s)", "Transfer (s)",
                   "Transfer %"});
    DesignStrategy best = DesignStrategy::PimMetaPimExec;
    double best_total = 1e30;
    for (auto s : kAllStrategies) {
        const auto r = evalStrategy(s, p);
        if (r.totalSeconds() < best_total) {
            best_total = r.totalSeconds();
            best = s;
        }
        out.addRow({designStrategyName(s),
                    util::Table::num(r.totalSeconds(), 4),
                    util::Table::num(r.computeSeconds, 4),
                    util::Table::num(r.transferSeconds, 4),
                    util::Table::num(r.transferFraction() * 100, 1)});
    }
    out.print(std::cout);
    std::cout << "\nFastest strategy: " << designStrategyName(best)
              << " (the paper selects PIM-Metadata/PIM-Executed as the "
                 "foundation of PIM-malloc)\n";

    if (cli.getBool("overlap", false) || knobs.wantsTrace()) {
        trace::RecorderSet recorders(knobs.wantsTrace());
        util::Table ov("Async command queue: rank-pipelined overlap");
        ov.setHeader({"Strategy", "Serial (s)", "Overlapped (s)",
                      "Hidden (s)"});
        for (const auto s : kAllStrategies) {
            const auto serial = evalStrategy(s, p);
            DesignSpaceParams po = p;
            po.recorder = recorders.add(designStrategyName(s));
            const auto async =
                evalStrategy(s, po, ExecutionMode::Overlapped);
            ov.addRow({designStrategyName(s),
                       util::Table::num(serial.totalSeconds(), 4),
                       util::Table::num(async.totalSeconds(), 4),
                       util::Table::num(async.overlapSavedSeconds(), 4)});
        }
        ov.print(std::cout);

        if (!trace::emitReports(std::cout, recorders, knobs.occupancy,
                                knobs.tracePath,
                                "Overlapped occupancy: "))
            return 1;
    }
    return 0;
}
