/**
 * @file
 * Domain example #1 — dynamic graph updates (the paper's case study 1).
 *
 * Builds a power-law graph, shards it across a PIM system, and streams
 * edge insertions into the chosen adjacency representation, comparing
 * the static CSR baseline against allocator-backed dynamic structures.
 *
 * Run:  ./graph_update [--structure=csr|linkedlist|vararray]
 *                      [--allocator=sw|hwsw|straw-man]
 *                      [--dpus=64] [--nodes=24000] [--edges=120000]
 *                      [--sample=2] [--threads=0]
 *
 * --threads=0 resolves PIM_SIM_THREADS, then hardware concurrency.
 */

#include <iostream>

#include "util/cli.hh"
#include "util/table.hh"
#include "workloads/graph/update_driver.hh"

using namespace pim;
using namespace pim::workloads::graph;

int
main(int argc, char **argv)
{
    util::Cli cli(argc, argv,
                  "structure,allocator,dpus,nodes,edges,sample,threads");

    GraphUpdateConfig cfg;
    const std::string structure = cli.get("structure", "linkedlist");
    if (structure == "csr")
        cfg.structure = StructureKind::StaticCsr;
    else if (structure == "vararray")
        cfg.structure = StructureKind::VarArray;
    else
        cfg.structure = StructureKind::LinkedList;
    cfg.allocator =
        core::allocatorKindFromName(cli.get("allocator", "sw"));
    cfg.numDpus = static_cast<unsigned>(cli.getInt("dpus", 64));
    cfg.sampleDpus = static_cast<unsigned>(cli.getInt("sample", 2));
    cfg.simThreads = static_cast<unsigned>(cli.getInt("threads", 0));
    cfg.gen.numNodes = static_cast<uint32_t>(cli.getInt("nodes", 24000));
    cfg.gen.numEdges =
        static_cast<uint64_t>(cli.getInt("edges", 120000));

    const auto r = runGraphUpdate(cfg);

    util::Table out(std::string(structureKindName(cfg.structure))
                    + (cfg.structure == StructureKind::StaticCsr
                           ? ""
                           : std::string(" on ")
                                 + core::allocatorKindName(cfg.allocator)));
    out.setHeader({"Metric", "Value"});
    out.addRow({"Update edges", util::Table::num(r.updateEdgesTotal)});
    out.addRow({"Update time (ms)",
                util::Table::num(r.updateSeconds * 1e3, 2)});
    out.addRow({"Throughput (Medges/s)",
                util::Table::num(r.millionEdgesPerSec, 2)});
    out.addRow({"Run %",
                util::Table::num(
                    r.breakdown.fraction(sim::CycleKind::Run) * 100, 1)});
    out.addRow({"Busy-wait %",
                util::Table::num(
                    r.breakdown.fraction(sim::CycleKind::BusyWait) * 100,
                    1)});
    out.addRow({"Idle(Memory) %",
                util::Table::num(
                    r.breakdown.fraction(sim::CycleKind::IdleMemory) * 100,
                    1)});
    if (r.allocStats.mallocCalls > 0) {
        out.addRow({"pimMalloc calls",
                    util::Table::num(r.allocStats.mallocCalls)});
        out.addRow({"Mean alloc latency (us)",
                    util::Table::num(r.avgAllocLatencyUs, 2)});
        out.addRow({"Peak fragmentation (A/U)",
                    util::Table::num(r.fragmentation, 2)});
    }
    out.print(std::cout);
    return 0;
}
