/**
 * @file
 * Domain example #2 — LLM attention offload (the paper's case study 2).
 *
 * Serves a stream of Llama-2 7B requests whose KV caches live in PIM
 * memory, comparing KV-cache allocation schemes: static worst-case
 * reservation vs dynamic growth with a selectable allocator. Prints
 * throughput and TPOT percentiles plus the Fig 4(b) batch-capacity
 * comparison.
 *
 * Run:  ./llm_serving [--allocator=sw|hwsw|straw-man|static]
 *                     [--requests=100] [--rate=10]
 *                     [--disaggregate] [--prefill-frac=0.25]
 *
 * With --disaggregate the trace runs on the ServingEngine's
 * rank-partitioned prefill/decode pipeline instead of the lockstep
 * loop: prefill launches target a rank subset, decode attention runs
 * on the complement, and KV blocks ship double-buffered over the bus.
 */

#include <iostream>
#include <optional>

#include "util/cli.hh"
#include "util/table.hh"
#include "workloads/llm/kv_cache.hh"
#include "workloads/llm/serving_engine.hh"
#include "workloads/llm/serving_sim.hh"

using namespace pim;
using namespace pim::workloads::llm;

int
main(int argc, char **argv)
{
    util::Cli cli(argc, argv,
                  "allocator,requests,rate,disaggregate,prefill-frac");

    ServingScheme scheme{std::nullopt};
    const std::string name = cli.get("allocator", "hwsw");
    if (name != "static")
        scheme.allocator = core::allocatorKindFromName(name);

    ServingEngineConfig ecfg;
    ecfg.base.numRequests =
        static_cast<unsigned>(cli.getInt("requests", 100));
    ecfg.base.arrivalRatePerSec = cli.getDouble("rate", 10.0);
    const bool disagg = cli.getBool("disaggregate", false);
    ecfg.mode = disagg ? ServingMode::Disaggregated
                       : ServingMode::Lockstep;
    ecfg.prefillRankFraction = cli.getDouble("prefill-frac", 0.25);
    const ServingConfig &cfg = ecfg.base;

    const auto r = ServingEngine(scheme, ecfg).run();

    util::Table out(std::string("LLM serving with ") + scheme.name()
                    + (disagg ? " (disaggregated prefill/decode)" : "")
                    + " KV-cache management");
    out.setHeader({"Metric", "Value"});
    out.addRow({"Requests", util::Table::num(uint64_t{cfg.numRequests})});
    out.addRow({"Throughput (tokens/s)",
                util::Table::num(r.throughputTokensPerSec, 0)});
    out.addRow({"TPOT p50 (ms)", util::Table::num(r.tpotP50Ms, 1)});
    out.addRow({"TPOT p99 (ms)", util::Table::num(r.tpotP99Ms, 1)});
    out.addRow({"Makespan (s)", util::Table::num(r.makespanSec, 2)});
    out.addRow({"Batch limit", util::Table::num(uint64_t{r.maxBatchLimit})});
    out.addRow({"Peak batch",
                util::Table::num(uint64_t{r.peakBatchObserved})});
    if (scheme.allocator) {
        out.addRow({"Calibrated alloc latency (us/block)",
                    util::Table::num(r.allocSecPerBlock * 1e6, 1)});
    }
    if (disagg) {
        out.addRow({"Prefill / decode ranks",
                    util::Table::num(uint64_t{r.prefillRanks}) + " / "
                        + util::Table::num(uint64_t{r.decodeRanks})});
        out.addRow({"Prefill waves",
                    util::Table::num(uint64_t{r.prefillWaves})});
        out.addRow({"KV shipped (MB)",
                    util::Table::num(
                        static_cast<double>(r.kvShippedBytes) / 1e6, 1)});
        out.addRow({"Overlap hidden (s)",
                    util::Table::num(r.overlapSeconds, 2)});
    }
    out.print(std::cout);

    // Fig 4(b) context: what batch sizes does each strategy admit?
    const auto cap = measureBatchCapacity(cfg.model, cfg.lengths,
                                          cfg.numDpus, 3);
    std::cout << "\nBatch capacity (ShareGPT-like lengths): static "
              << cap.staticMaxBatch << " vs dynamic "
              << cap.dynamicMaxBatch << "\n";
    return 0;
}
