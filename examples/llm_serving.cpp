/**
 * @file
 * Domain example #2 — LLM attention offload (the paper's case study 2).
 *
 * Serves a stream of Llama-2 7B requests whose KV caches live in PIM
 * memory, comparing KV-cache allocation schemes: static worst-case
 * reservation vs dynamic growth with a selectable allocator. Prints
 * throughput and TPOT percentiles plus the Fig 4(b) batch-capacity
 * comparison.
 *
 * Run:  ./llm_serving [--allocator=sw|hwsw|straw-man|static]
 *                     [--requests=100] [--rate=10]
 */

#include <iostream>
#include <optional>

#include "util/cli.hh"
#include "util/table.hh"
#include "workloads/llm/kv_cache.hh"
#include "workloads/llm/serving_sim.hh"

using namespace pim;
using namespace pim::workloads::llm;

int
main(int argc, char **argv)
{
    util::Cli cli(argc, argv, "allocator,requests,rate");

    ServingScheme scheme{std::nullopt};
    const std::string name = cli.get("allocator", "hwsw");
    if (name != "static")
        scheme.allocator = core::allocatorKindFromName(name);

    ServingConfig cfg;
    cfg.numRequests = static_cast<unsigned>(cli.getInt("requests", 100));
    cfg.arrivalRatePerSec = cli.getDouble("rate", 10.0);

    const auto r = runServing(scheme, cfg);

    util::Table out(std::string("LLM serving with ") + scheme.name()
                    + " KV-cache management");
    out.setHeader({"Metric", "Value"});
    out.addRow({"Requests", util::Table::num(uint64_t{cfg.numRequests})});
    out.addRow({"Throughput (tokens/s)",
                util::Table::num(r.throughputTokensPerSec, 0)});
    out.addRow({"TPOT p50 (ms)", util::Table::num(r.tpotP50Ms, 1)});
    out.addRow({"TPOT p99 (ms)", util::Table::num(r.tpotP99Ms, 1)});
    out.addRow({"Makespan (s)", util::Table::num(r.makespanSec, 2)});
    out.addRow({"Batch limit", util::Table::num(uint64_t{r.maxBatchLimit})});
    out.addRow({"Peak batch",
                util::Table::num(uint64_t{r.peakBatchObserved})});
    if (scheme.allocator) {
        out.addRow({"Calibrated alloc latency (us/block)",
                    util::Table::num(r.allocSecPerBlock * 1e6, 1)});
    }
    out.print(std::cout);

    // Fig 4(b) context: what batch sizes does each strategy admit?
    const auto cap = measureBatchCapacity(cfg.model, cfg.lengths,
                                          cfg.numDpus, 3);
    std::cout << "\nBatch capacity (ShareGPT-like lengths): static "
              << cap.staticMaxBatch << " vs dynamic "
              << cap.dynamicMaxBatch << "\n";
    return 0;
}
