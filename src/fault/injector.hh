/**
 * @file
 * FaultInjector: consumption state over a FaultPlan.
 *
 * The plan is the immutable schedule; the injector is the mutable
 * cursor the runtime queries while it resolves commands. All queries
 * happen in core::CommandQueue's *sequential* resolve fold (and in the
 * control-plane loop of whoever drives recovery), so consumption order
 * — and therefore every injected outcome — is independent of the sim
 * thread count.
 *
 * Layering: fault/ sits below core/ (it depends only on util/), so the
 * CommandQueue can hold a FaultInjector* while benches and workloads
 * build plans from CLI knobs.
 */

#ifndef PIM_FAULT_INJECTOR_HH
#define PIM_FAULT_INJECTOR_HH

#include <cstdint>
#include <vector>

#include "fault/fault_plan.hh"

namespace pim::telemetry {
class Registry;
}

namespace pim::fault {

/** Outcome of routing one bus transfer through the injector. */
struct TransferOutcome
{
    /** Attempts charged to the bus (1 = clean first try). */
    unsigned attempts = 1;
    /** Total bus seconds: attempts * copySeconds + backoff between
     *  retries (exponential, capped). */
    double busSeconds = 0.0;
    /** Retry budget exhausted: the transfer failed permanently. */
    bool failed = false;
};

/** Running totals of what the injector actually inflicted. */
struct InjectorStats
{
    unsigned rankFailures = 0;
    unsigned transientTransferFaults = 0;
    unsigned transferRetries = 0;
    unsigned transferPermanentFailures = 0;
    unsigned launchHangs = 0;
    unsigned launchTimeouts = 0;
    unsigned degradedLaunches = 0;
    unsigned poisonedCommands = 0;
};

class FaultInjector
{
  public:
    explicit FaultInjector(FaultPlan plan);

    const FaultPlan &plan() const { return plan_; }
    const FaultSpec &spec() const { return plan_.spec(); }

    // ------------------------------------------------------------------
    // Data plane: queried by the CommandQueue resolve fold.
    // ------------------------------------------------------------------

    /** Simulated time rank @p r dies (+inf if it never does). */
    double rankFailSeconds(unsigned r) const;

    /** True if rank @p r is dead at time @p t. */
    bool rankFailedBy(unsigned r, double t) const;

    /** Launch-duration multiplier for rank @p r at @p startSec (>= 1;
     *  the max over active degradation episodes). */
    double launchMultiplier(unsigned r, double startSec) const;

    /** Launch timeout in seconds (0 = launches never time out). */
    double launchTimeoutSec() const { return plan_.spec().launchTimeoutSec; }

    /**
     * Consume the oldest un-consumed hang event armed at or before
     * @p startSec whose victim is in @p ranks. Returns the hanging
     * rank, or -1 if the launch proceeds. A hang is only recoverable
     * via the launch timeout (spec parsing enforces that; the queue is
     * fatal if a programmatic plan hangs with no timeout).
     */
    int consumeHang(const std::vector<unsigned> &ranks, double startSec);

    /**
     * Route one bus transfer of duration @p copySeconds starting at
     * @p startSec: consumes every transient event armed before the
     * first attempt would complete (a glitch latches onto the next
     * transfer in flight), charges retries with capped exponential
     * backoff, and reports permanent failure once the attempt budget
     * (spec().maxTransferAttempts) is exhausted.
     */
    TransferOutcome transfer(double startSec, double copySeconds);

    /** Bookkeeping hooks for outcomes only the queue can see. */
    void noteTimeout() { ++stats_.launchTimeouts; }
    void noteDegraded() { ++stats_.degradedLaunches; }
    void notePoisoned() { ++stats_.poisonedCommands; }

    // ------------------------------------------------------------------
    // Control plane: drives RankScheduler quarantine + recovery.
    // ------------------------------------------------------------------

    /**
     * Rank-failure events due at or before @p nowSec and not yet
     * reported (first failure per rank only), in schedule order. The
     * caller quarantines each rank and triggers tenant recovery.
     */
    std::vector<FaultEvent> drainFailedRanks(double nowSec);

    const InjectorStats &stats() const { return stats_; }

    /**
     * Re-export the injection statistics as "fault.*" counters in
     * @p met, so fault activity rides in the same metrics snapshot as
     * the queue/scheduler signals it explains. Call once, after the
     * run (counters are monotonic; re-exporting would double-count).
     */
    void exportMetrics(telemetry::Registry &met) const;

  private:
    FaultPlan plan_;
    /** Per-rank first-death time (+inf if never). */
    std::vector<double> rankFailAt_;
    /** RankFail events deduped to the first per rank, time order. */
    std::vector<FaultEvent> rankFails_;
    size_t rankFailCursor_ = 0;
    std::vector<FaultEvent> degrades_;
    std::vector<FaultEvent> hangs_;
    std::vector<bool> hangConsumed_;
    std::vector<FaultEvent> transients_;
    size_t transientCursor_ = 0;
    InjectorStats stats_;
};

} // namespace pim::fault

#endif // PIM_FAULT_INJECTOR_HH
