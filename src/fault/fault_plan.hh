/**
 * @file
 * Deterministic fault schedules for the command-queue runtime.
 *
 * A FaultPlan is a pre-generated, sorted list of fault events on the
 * *simulated* timeline, built from a seed and a rate spec before any
 * command runs. Because the schedule exists up front and every
 * consumption decision is made in the queue's sequential resolve fold,
 * an injected-fault run is bit-identical for any PIM_SIM_THREADS
 * value — the same property the fault-free simulator already has.
 *
 * Each fault class draws from its own named Rng sub-stream
 * (util::Rng::stream), so changing one rate knob never shifts the
 * schedule of another class, and none of them alias workload
 * randomness (arrival processes, graph shapes).
 */

#ifndef PIM_FAULT_FAULT_PLAN_HH
#define PIM_FAULT_FAULT_PLAN_HH

#include <cstdint>
#include <string>
#include <vector>

namespace pim::fault {

/** One class of injected fault. */
enum class FaultKind {
    /** Permanent rank death: the rank stops executing at atSec. */
    RankFail,
    /** Transient bus-transfer corruption: the victim transfer is
     *  retried with capped exponential backoff. */
    TransientTransfer,
    /** The rank runs slow (launch durations scaled by multiplier) for
     *  durationSec starting at atSec — a thermal/refresh straggler. */
    RankDegrade,
    /** The next launch touching the rank never completes; only
     *  recoverable via the launch timeout knob. */
    LaunchHang,
};

/** Printable name of a fault kind ("rank-fail", ...). */
const char *faultKindName(FaultKind kind);

/** What a fault-aware workload does when its commands fail (irrelevant
 *  without an attached FaultInjector on the queue). */
enum class FaultPolicy {
    /** No story: any failed event is a fatal error (the pre-fault
     *  behavior, and the default for callers that never opted in). */
    Fatal,
    /** No-recovery baseline: affected work is dropped, dead ranks
     *  shrink the partition, the run keeps going. */
    Drop,
    /** Full recovery: replacement ranks re-join the partition, lost
     *  state is restored over the bus, and the affected work re-runs
     *  (counted against the SLO), never dropped. */
    Recover,
};

/** One scheduled fault on the simulated timeline. */
struct FaultEvent
{
    FaultKind kind = FaultKind::RankFail;
    /** Simulated time the fault arms. */
    double atSec = 0.0;
    /** Victim rank (RankFail / RankDegrade / LaunchHang). */
    unsigned rank = 0;
    /** RankDegrade: launch-duration multiplier (> 1). */
    double multiplier = 1.0;
    /** RankDegrade: how long the degradation lasts. */
    double durationSec = 0.0;
    /** TransientTransfer: consecutive corrupted attempts injected. */
    unsigned attempts = 1;
};

/**
 * Fault rates and recovery knobs, parseable from a `--fault-spec`
 * string of comma-separated key=value pairs, e.g.
 *
 *   "mtbf=5,xfer-mtbf=0.5,degrade-mtbf=10,timeout=0.2"
 *
 * Keys (all rates are mean-time-between-failures in simulated
 * seconds; a rate of 0 disables that class):
 *
 *   mtbf          rank failures               (rankMtbfSec)
 *   xfer-mtbf     transient transfer faults   (transferMtbfSec)
 *   degrade-mtbf  rank degradation episodes   (degradeMtbfSec)
 *   degrade-mult  degradation multiplier      (degradeMultiplier)
 *   degrade-dur   degradation duration (s)    (degradeDurationSec)
 *   hang-mtbf     launch hangs                (hangMtbfSec)
 *   timeout       launch timeout (s, 0 = off) (launchTimeoutSec)
 *   horizon       schedule horizon (s)        (horizonSec)
 *   backoff       first retry backoff (s)     (retryBackoffSec)
 *   backoff-cap   max per-retry backoff (s)   (retryBackoffCapSec)
 *   max-attempts  transfer attempts before a
 *                 permanent failure           (maxTransferAttempts)
 *
 * Unknown keys or unparseable values are a fatal CLI error.
 */
struct FaultSpec
{
    double rankMtbfSec = 0.0;
    double transferMtbfSec = 0.0;
    double degradeMtbfSec = 0.0;
    double degradeMultiplier = 4.0;
    double degradeDurationSec = 1.0;
    double hangMtbfSec = 0.0;
    double launchTimeoutSec = 0.0;
    double horizonSec = 120.0;
    double retryBackoffSec = 100e-6;
    double retryBackoffCapSec = 10e-3;
    unsigned maxTransferAttempts = 8;

    /** True if any fault class has a nonzero rate. */
    bool enabled() const;

    /**
     * Parse a `--fault-spec` string (see above). Fatal with a clear
     * message on unknown keys, bad numbers, or invalid combinations.
     * An empty string parses to the all-disabled default spec.
     */
    static FaultSpec parse(const std::string &spec);

    /**
     * Spec from the shared bench knobs: parse @p spec, then let a
     * nonzero @p mtbfOverride (the `--mtbf` convenience flag) replace
     * the rank-failure MTBF.
     */
    static FaultSpec fromKnobs(const std::string &spec,
                               double mtbfOverride);
};

/**
 * The deterministic fault schedule: every fault event the run will
 * ever see, sorted by time, a pure function of (spec, seed, numRanks).
 */
class FaultPlan
{
  public:
    /** Empty plan (no faults). */
    FaultPlan() = default;

    /** Generate the schedule over [0, spec.horizonSec). */
    FaultPlan(const FaultSpec &spec, uint64_t seed, unsigned numRanks);

    /** Programmatic plan from explicit @p events (tests, trace
     *  replay), sorted into schedule order. */
    FaultPlan(const FaultSpec &spec, std::vector<FaultEvent> events,
              unsigned numRanks);

    const FaultSpec &spec() const { return spec_; }
    unsigned numRanks() const { return numRanks_; }

    /** All scheduled events, sorted by (atSec, kind, rank). */
    const std::vector<FaultEvent> &events() const { return events_; }

    /** Events of one kind, in time order. */
    std::vector<FaultEvent> eventsOfKind(FaultKind kind) const;

  private:
    FaultSpec spec_{};
    unsigned numRanks_ = 0;
    std::vector<FaultEvent> events_;
};

} // namespace pim::fault

#endif // PIM_FAULT_FAULT_PLAN_HH
