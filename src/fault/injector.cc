#include "fault/injector.hh"

#include <algorithm>
#include <limits>

#include "telemetry/registry.hh"
#include "util/logging.hh"

namespace pim::fault {

namespace {
constexpr double kNever = std::numeric_limits<double>::infinity();
} // namespace

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan))
{
    rankFailAt_.assign(std::max(1u, plan_.numRanks()), kNever);
    for (const FaultEvent &e : plan_.events()) {
        switch (e.kind) {
          case FaultKind::RankFail:
            if (rankFailAt_[e.rank] == kNever) {
                rankFailAt_[e.rank] = e.atSec;
                rankFails_.push_back(e);
            }
            break;
          case FaultKind::RankDegrade:
            degrades_.push_back(e);
            break;
          case FaultKind::LaunchHang:
            hangs_.push_back(e);
            break;
          case FaultKind::TransientTransfer:
            transients_.push_back(e);
            break;
        }
    }
    hangConsumed_.assign(hangs_.size(), false);
}

double
FaultInjector::rankFailSeconds(unsigned r) const
{
    if (r >= rankFailAt_.size())
        return kNever;
    return rankFailAt_[r];
}

bool
FaultInjector::rankFailedBy(unsigned r, double t) const
{
    return rankFailSeconds(r) <= t;
}

double
FaultInjector::launchMultiplier(unsigned r, double startSec) const
{
    double mult = 1.0;
    for (const FaultEvent &e : degrades_) {
        if (e.atSec > startSec)
            break; // time-sorted: nothing later is active yet
        if (e.rank == r && startSec < e.atSec + e.durationSec)
            mult = std::max(mult, e.multiplier);
    }
    return mult;
}

int
FaultInjector::consumeHang(const std::vector<unsigned> &ranks,
                           double startSec)
{
    for (size_t i = 0; i < hangs_.size(); ++i) {
        if (hangs_[i].atSec > startSec)
            break;
        if (hangConsumed_[i])
            continue;
        const bool hits = std::find(ranks.begin(), ranks.end(),
                                    hangs_[i].rank) != ranks.end();
        if (hits) {
            hangConsumed_[i] = true;
            ++stats_.launchHangs;
            return static_cast<int>(hangs_[i].rank);
        }
    }
    return -1;
}

TransferOutcome
FaultInjector::transfer(double startSec, double copySeconds)
{
    // Consume every glitch armed before the first attempt would land:
    // an armed glitch latches onto the transfer in flight (or the next
    // one issued), which keeps consumption a monotone cursor over the
    // schedule — the bus timeline only moves forward in the fold.
    unsigned corrupted = 0;
    const double windowEnd = startSec + copySeconds;
    while (transientCursor_ < transients_.size() &&
           transients_[transientCursor_].atSec < windowEnd) {
        corrupted += transients_[transientCursor_].attempts;
        ++transientCursor_;
        ++stats_.transientTransferFaults;
    }

    const FaultSpec &spec = plan_.spec();
    TransferOutcome out;
    out.failed = corrupted >= spec.maxTransferAttempts;
    out.attempts = out.failed ? spec.maxTransferAttempts : corrupted + 1;
    out.busSeconds = out.attempts * copySeconds;
    for (unsigned k = 0; k + 1 < out.attempts; ++k) {
        double backoff = spec.retryBackoffSec;
        for (unsigned j = 0; j < k && backoff < spec.retryBackoffCapSec; ++j)
            backoff *= 2.0;
        out.busSeconds += std::min(backoff, spec.retryBackoffCapSec);
    }
    stats_.transferRetries += out.attempts - 1;
    if (out.failed)
        ++stats_.transferPermanentFailures;
    return out;
}

void
FaultInjector::exportMetrics(telemetry::Registry &met) const
{
    met.counter("fault.rank_failures").add(stats_.rankFailures);
    met.counter("fault.transient_transfer_faults")
        .add(stats_.transientTransferFaults);
    met.counter("fault.transfer_retries").add(stats_.transferRetries);
    met.counter("fault.transfer_permanent_failures")
        .add(stats_.transferPermanentFailures);
    met.counter("fault.launch_hangs").add(stats_.launchHangs);
    met.counter("fault.launch_timeouts").add(stats_.launchTimeouts);
    met.counter("fault.degraded_launches")
        .add(stats_.degradedLaunches);
    met.counter("fault.poisoned_commands")
        .add(stats_.poisonedCommands);
}

std::vector<FaultEvent>
FaultInjector::drainFailedRanks(double nowSec)
{
    std::vector<FaultEvent> due;
    while (rankFailCursor_ < rankFails_.size() &&
           rankFails_[rankFailCursor_].atSec <= nowSec) {
        due.push_back(rankFails_[rankFailCursor_]);
        ++rankFailCursor_;
        ++stats_.rankFailures;
    }
    return due;
}

} // namespace pim::fault
