#include "fault/fault_plan.hh"

#include <algorithm>
#include <cstdlib>

#include "util/logging.hh"
#include "util/rng.hh"

namespace pim::fault {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::RankFail: return "rank-fail";
      case FaultKind::TransientTransfer: return "xfer-transient";
      case FaultKind::RankDegrade: return "rank-degrade";
      case FaultKind::LaunchHang: return "launch-hang";
    }
    return "?";
}

bool
FaultSpec::enabled() const
{
    return rankMtbfSec > 0.0 || transferMtbfSec > 0.0 ||
           degradeMtbfSec > 0.0 || hangMtbfSec > 0.0;
}

namespace {

double
parseDouble(const std::string &key, const std::string &value)
{
    char *end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (end == nullptr || *end != '\0' || value.empty())
        PIM_FATAL("--fault-spec: value for '", key, "' is not a number: '",
                  value, "'");
    if (v < 0.0)
        PIM_FATAL("--fault-spec: '", key, "' must be >= 0, got ", value);
    return v;
}

} // namespace

FaultSpec
FaultSpec::parse(const std::string &spec)
{
    FaultSpec out;
    size_t pos = 0;
    while (pos < spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string item = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;
        const size_t eq = item.find('=');
        if (eq == std::string::npos)
            PIM_FATAL("--fault-spec: expected key=value, got '", item,
                      "' (spec: \"", spec, "\")");
        const std::string key = item.substr(0, eq);
        const std::string value = item.substr(eq + 1);
        const double v = parseDouble(key, value);
        if (key == "mtbf") {
            out.rankMtbfSec = v;
        } else if (key == "xfer-mtbf") {
            out.transferMtbfSec = v;
        } else if (key == "degrade-mtbf") {
            out.degradeMtbfSec = v;
        } else if (key == "degrade-mult") {
            if (v < 1.0)
                PIM_FATAL("--fault-spec: degrade-mult must be >= 1, got ",
                          value);
            out.degradeMultiplier = v;
        } else if (key == "degrade-dur") {
            out.degradeDurationSec = v;
        } else if (key == "hang-mtbf") {
            out.hangMtbfSec = v;
        } else if (key == "timeout") {
            out.launchTimeoutSec = v;
        } else if (key == "horizon") {
            if (v <= 0.0)
                PIM_FATAL("--fault-spec: horizon must be > 0, got ", value);
            out.horizonSec = v;
        } else if (key == "backoff") {
            out.retryBackoffSec = v;
        } else if (key == "backoff-cap") {
            out.retryBackoffCapSec = v;
        } else if (key == "max-attempts") {
            if (v < 1.0 || v != static_cast<unsigned>(v))
                PIM_FATAL("--fault-spec: max-attempts must be a positive "
                          "integer, got ", value);
            out.maxTransferAttempts = static_cast<unsigned>(v);
        } else {
            PIM_FATAL("--fault-spec: unknown key '", key,
                      "' (known: mtbf, xfer-mtbf, degrade-mtbf, "
                      "degrade-mult, degrade-dur, hang-mtbf, timeout, "
                      "horizon, backoff, backoff-cap, max-attempts)");
        }
    }
    if (out.hangMtbfSec > 0.0 && out.launchTimeoutSec <= 0.0)
        PIM_FATAL("--fault-spec: hang-mtbf requires a launch timeout "
                  "(add timeout=<sec>): a hung launch with no timeout "
                  "would stall the simulated timeline forever");
    return out;
}

FaultSpec
FaultSpec::fromKnobs(const std::string &spec, double mtbfOverride)
{
    FaultSpec out = parse(spec);
    if (mtbfOverride > 0.0)
        out.rankMtbfSec = mtbfOverride;
    return out;
}

namespace {

/** Schedule order: (atSec, kind, rank). */
void
sortEvents(std::vector<FaultEvent> &events)
{
    std::sort(events.begin(), events.end(),
              [](const FaultEvent &a, const FaultEvent &b) {
                  if (a.atSec != b.atSec)
                      return a.atSec < b.atSec;
                  if (a.kind != b.kind)
                      return static_cast<int>(a.kind) <
                             static_cast<int>(b.kind);
                  return a.rank < b.rank;
              });
}

} // namespace

FaultPlan::FaultPlan(const FaultSpec &spec, uint64_t seed,
                     unsigned numRanks)
    : spec_(spec), numRanks_(numRanks)
{
    PIM_ASSERT(numRanks > 0, "FaultPlan needs at least one rank");
    const util::Rng root(seed);

    // Each class owns a named sub-stream: a Poisson process of
    // exponential inter-arrival gaps over [0, horizon), with victim
    // ranks (and per-event parameters) drawn from the same stream so
    // the whole class is a function of exactly one (seed, name) pair.
    const auto poisson = [&](const char *name, double mtbfSec,
                             auto &&emit) {
        if (mtbfSec <= 0.0)
            return;
        util::Rng rng = root.stream(name);
        double t = rng.exponential(1.0 / mtbfSec);
        while (t < spec_.horizonSec) {
            emit(rng, t);
            t += rng.exponential(1.0 / mtbfSec);
        }
    };

    poisson("fault/rank-fail", spec_.rankMtbfSec,
            [&](util::Rng &rng, double t) {
                FaultEvent e;
                e.kind = FaultKind::RankFail;
                e.atSec = t;
                e.rank = static_cast<unsigned>(rng.uniformInt(numRanks_));
                events_.push_back(e);
            });
    poisson("fault/xfer", spec_.transferMtbfSec,
            [&](util::Rng &rng, double t) {
                FaultEvent e;
                e.kind = FaultKind::TransientTransfer;
                e.atSec = t;
                // Mostly single-attempt glitches with a geometric tail
                // of burst errors, so retries occasionally stack.
                e.attempts = 1;
                while (e.attempts < spec_.maxTransferAttempts &&
                       rng.bernoulli(0.35))
                    ++e.attempts;
                events_.push_back(e);
            });
    poisson("fault/degrade", spec_.degradeMtbfSec,
            [&](util::Rng &rng, double t) {
                FaultEvent e;
                e.kind = FaultKind::RankDegrade;
                e.atSec = t;
                e.rank = static_cast<unsigned>(rng.uniformInt(numRanks_));
                e.multiplier = spec_.degradeMultiplier;
                e.durationSec = spec_.degradeDurationSec;
                events_.push_back(e);
            });
    poisson("fault/hang", spec_.hangMtbfSec,
            [&](util::Rng &rng, double t) {
                FaultEvent e;
                e.kind = FaultKind::LaunchHang;
                e.atSec = t;
                e.rank = static_cast<unsigned>(rng.uniformInt(numRanks_));
                events_.push_back(e);
            });

    sortEvents(events_);
}

FaultPlan::FaultPlan(const FaultSpec &spec,
                     std::vector<FaultEvent> events, unsigned numRanks)
    : spec_(spec), numRanks_(numRanks), events_(std::move(events))
{
    PIM_ASSERT(numRanks > 0, "FaultPlan needs at least one rank");
    for (const FaultEvent &e : events_) {
        PIM_ASSERT(e.rank < numRanks_, "fault event victim rank ",
                   e.rank, " outside the ", numRanks_, "-rank system");
    }
    sortEvents(events_);
}

std::vector<FaultEvent>
FaultPlan::eventsOfKind(FaultKind kind) const
{
    std::vector<FaultEvent> out;
    for (const FaultEvent &e : events_)
        if (e.kind == kind)
            out.push_back(e);
    return out;
}

} // namespace pim::fault
