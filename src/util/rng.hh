/**
 * @file
 * Deterministic pseudo-random number generation for workloads and tests.
 *
 * All randomness in this repository flows through Rng so that every
 * experiment is exactly reproducible from its seed. The core generator is
 * xoshiro256** (public domain, Blackman & Vigna), which is fast, has a
 * 256-bit state, and passes BigCrush.
 */

#ifndef PIM_UTIL_RNG_HH
#define PIM_UTIL_RNG_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pim::util {

/**
 * Deterministic random number generator (xoshiro256**).
 *
 * Seeding uses splitmix64 to expand a single 64-bit seed into the
 * 256-bit state, as recommended by the xoshiro authors.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed. The same seed yields the same stream. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound). @pre bound > 0. */
    uint64_t uniformInt(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    uint64_t uniformRange(uint64_t lo, uint64_t hi);

    /** Uniform double in [0, 1). */
    double uniformReal();

    /** Bernoulli trial with probability p of returning true. */
    bool bernoulli(double p);

    /**
     * Sample from a lognormal distribution with the given parameters of
     * the underlying normal (mu, sigma). Used for ShareGPT-like sequence
     * length modelling.
     */
    double logNormal(double mu, double sigma);

    /** Standard normal via Box-Muller (one value per call, no caching). */
    double normal();

    /** Exponential with the given rate (mean 1/rate). @pre rate > 0. */
    double exponential(double rate);

    /**
     * Zipf-like integer in [0, n) with exponent s, used by the synthetic
     * power-law graph generator. Implemented via inverse-CDF on a
     * precomputed table-free approximation (rejection-free, O(1) after an
     * O(1) harmonic estimate), adequate for workload shaping.
     */
    uint64_t zipf(uint64_t n, double s);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        if (v.empty()) return;
        for (size_t i = v.size() - 1; i > 0; --i) {
            size_t j = uniformInt(i + 1);
            std::swap(v[i], v[j]);
        }
    }

    /** Derive an independent child generator (for per-DPU streams). */
    Rng fork();

    /**
     * Derive the independent named sub-stream @p name without advancing
     * this generator: the child's state is a pure function of this
     * generator's current state and the name. Calling stream() on a
     * freshly seeded root therefore gives every subsystem
     * ("fault/rank-fail", "arrivals", "graph/degrees") a stable stream
     * of its own — drawing more or fewer values from one stream, or
     * adding a new stream, never shifts the values another stream
     * produces, unlike sharing one generator or fork()ing in a
     * knob-dependent order.
     */
    Rng stream(const std::string &name) const;

  private:
    uint64_t s_[4];
};

} // namespace pim::util

#endif // PIM_UTIL_RNG_HH
