#include "util/cli.hh"

#include <cstdlib>
#include <set>
#include <sstream>

#include "util/logging.hh"

namespace pim::util {

Cli::Cli(int argc, char **argv, const std::string &known)
{
    std::set<std::string> allowed;
    if (!known.empty()) {
        std::istringstream is(known);
        std::string tok;
        while (std::getline(is, tok, ','))
            allowed.insert(tok);
    }

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0)
            PIM_FATAL("unexpected positional argument '", arg, "'");
        arg = arg.substr(2);
        std::string name;
        std::string value;
        auto eq = arg.find('=');
        if (eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
        } else {
            name = arg;
            // --flag value (if next token is not a flag), else boolean.
            if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0)
                value = argv[++i];
            else
                value = "true";
        }
        if (!allowed.empty() && !allowed.count(name))
            PIM_FATAL("unknown flag --", name);
        values_[name] = value;
    }
}

bool
Cli::has(const std::string &name) const
{
    return values_.count(name) > 0;
}

std::string
Cli::get(const std::string &name, const std::string &def) const
{
    auto it = values_.find(name);
    return it == values_.end() ? def : it->second;
}

int64_t
Cli::getInt(const std::string &name, int64_t def) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    const int64_t v = std::strtoll(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0')
        PIM_FATAL("flag --", name, " expects an integer, got '",
                  it->second, "'");
    return v;
}

double
Cli::getDouble(const std::string &name, double def) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        PIM_FATAL("flag --", name, " expects a number, got '",
                  it->second, "'");
    return v;
}

bool
Cli::getBool(const std::string &name, bool def) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return def;
    return it->second != "false" && it->second != "0";
}

std::string
benchKnobNames(const std::string &extra)
{
    std::string names = "dpus,sample,tasklets,threads,json,trace,"
                        "occupancy,metrics,fault-seed,mtbf,fault-spec";
    if (!extra.empty()) {
        names += ',';
        names += extra;
    }
    return names;
}

namespace {

/** Read an integer knob, enforcing @p min <= value. */
int64_t
knobInt(const Cli &cli, const char *name, int64_t def, int64_t min)
{
    const int64_t v = cli.getInt(name, def);
    if (v < min)
        PIM_FATAL("flag --", name, " must be >= ", min, ", got ", v);
    return v;
}

} // namespace

BenchKnobs
parseBenchKnobs(const Cli &cli, const BenchKnobs &defaults)
{
    BenchKnobs k = defaults;
    k.dpus = static_cast<unsigned>(knobInt(cli, "dpus", k.dpus, 1));
    k.sample =
        static_cast<unsigned>(knobInt(cli, "sample", k.sample, 0));
    k.tasklets =
        static_cast<unsigned>(knobInt(cli, "tasklets", k.tasklets, 1));
    // 0 means "auto" internally, but an *explicit* --threads=0 (or a
    // negative count) is a config error, not a request for the default.
    if (cli.has("threads")) {
        const int64_t t = cli.getInt("threads", 0);
        if (t <= 0)
            PIM_FATAL("flag --threads must be a positive integer, got ",
                      t, " (omit the flag or set PIM_SIM_THREADS for "
                      "the automatic thread count)");
        k.threads = static_cast<unsigned>(t);
    }
    k.jsonPath = cli.get("json", k.jsonPath);
    k.tracePath = cli.get("trace", k.tracePath);
    k.occupancy = cli.getBool("occupancy", k.occupancy);
    k.metrics = cli.getBool("metrics", k.metrics);
    k.faultSeed = static_cast<uint64_t>(
        knobInt(cli, "fault-seed", static_cast<int64_t>(k.faultSeed),
                0));
    k.mtbf = cli.getDouble("mtbf", k.mtbf);
    if (k.mtbf < 0)
        PIM_FATAL("flag --mtbf must be >= 0, got ", k.mtbf);
    k.faultSpec = cli.get("fault-spec", k.faultSpec);
    return k;
}

} // namespace pim::util
