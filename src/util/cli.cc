#include "util/cli.hh"

#include <cstdlib>
#include <set>
#include <sstream>

#include "util/logging.hh"

namespace pim::util {

Cli::Cli(int argc, char **argv, const std::string &known)
{
    std::set<std::string> allowed;
    if (!known.empty()) {
        std::istringstream is(known);
        std::string tok;
        while (std::getline(is, tok, ','))
            allowed.insert(tok);
    }

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0)
            PIM_FATAL("unexpected positional argument '", arg, "'");
        arg = arg.substr(2);
        std::string name;
        std::string value;
        auto eq = arg.find('=');
        if (eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
        } else {
            name = arg;
            // --flag value (if next token is not a flag), else boolean.
            if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0)
                value = argv[++i];
            else
                value = "true";
        }
        if (!allowed.empty() && !allowed.count(name))
            PIM_FATAL("unknown flag --", name);
        values_[name] = value;
    }
}

bool
Cli::has(const std::string &name) const
{
    return values_.count(name) > 0;
}

std::string
Cli::get(const std::string &name, const std::string &def) const
{
    auto it = values_.find(name);
    return it == values_.end() ? def : it->second;
}

int64_t
Cli::getInt(const std::string &name, int64_t def) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return def;
    return std::strtoll(it->second.c_str(), nullptr, 0);
}

double
Cli::getDouble(const std::string &name, double def) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return def;
    return std::strtod(it->second.c_str(), nullptr);
}

bool
Cli::getBool(const std::string &name, bool def) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return def;
    return it->second != "false" && it->second != "0";
}

std::string
benchKnobNames(const std::string &extra)
{
    std::string names = "dpus,sample,tasklets,threads,json";
    if (!extra.empty()) {
        names += ',';
        names += extra;
    }
    return names;
}

BenchKnobs
parseBenchKnobs(const Cli &cli, const BenchKnobs &defaults)
{
    BenchKnobs k = defaults;
    k.dpus = static_cast<unsigned>(cli.getInt("dpus", k.dpus));
    k.sample = static_cast<unsigned>(cli.getInt("sample", k.sample));
    k.tasklets =
        static_cast<unsigned>(cli.getInt("tasklets", k.tasklets));
    k.threads = static_cast<unsigned>(cli.getInt("threads", k.threads));
    k.jsonPath = cli.get("json", k.jsonPath);
    return k;
}

} // namespace pim::util
