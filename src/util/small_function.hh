/**
 * @file
 * Move-only callable wrapper with guaranteed small-buffer storage.
 *
 * std::function's inline buffer is implementation-defined (libstdc++:
 * 16 bytes), so the composed launch closures the command queue stores —
 * a tasklet count plus a moved std::function body, ~40 bytes — heap-
 * allocate on every enqueue. SmallFunction makes the inline capacity a
 * template parameter: callables up to Capacity bytes (and max_align_t
 * alignment) are stored in place, larger ones fall back to one heap
 * allocation. Move-only by design — the queue never copies commands,
 * and dropping copyability lets it hold move-only captures (e.g. a
 * moved std::function) without the copy-constructibility tax
 * std::function imposes.
 */

#ifndef PIM_UTIL_SMALL_FUNCTION_HH
#define PIM_UTIL_SMALL_FUNCTION_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace pim::util {

template <typename Sig, std::size_t Capacity = 48>
class SmallFunction;

template <typename R, typename... Args, std::size_t Capacity>
class SmallFunction<R(Args...), Capacity>
{
    static_assert(Capacity >= sizeof(void *),
                  "capacity must at least hold the heap-fallback pointer");

  public:
    SmallFunction() = default;
    SmallFunction(std::nullptr_t) {} // NOLINT(google-explicit-constructor)

    template <typename F,
              typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, SmallFunction>
                  && std::is_invocable_r_v<R, D &, Args...>>>
    SmallFunction(F &&f) // NOLINT(google-explicit-constructor)
    {
        if constexpr (fitsInline<D>()) {
            ::new (static_cast<void *>(store_)) D(std::forward<F>(f));
            ops_ = &inlineOps<D>;
        } else {
            *reinterpret_cast<D **>(store_) = new D(std::forward<F>(f));
            ops_ = &heapOps<D>;
        }
    }

    SmallFunction(SmallFunction &&other) noexcept { moveFrom(other); }

    SmallFunction &operator=(SmallFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    SmallFunction(const SmallFunction &) = delete;
    SmallFunction &operator=(const SmallFunction &) = delete;

    ~SmallFunction() { reset(); }

    explicit operator bool() const { return ops_ != nullptr; }

    /** Invoke; undefined for an empty SmallFunction (callers gate on
     *  operator bool, matching how the queue skips timed launches). */
    R operator()(Args... args)
    {
        return ops_->invoke(store_, std::forward<Args>(args)...);
    }

    /** True if a callable of type F is stored without heap fallback. */
    template <typename F>
    static constexpr bool fitsInline()
    {
        return sizeof(F) <= Capacity
            && alignof(F) <= alignof(std::max_align_t)
            && std::is_nothrow_move_constructible_v<F>;
    }

  private:
    struct Ops
    {
        R (*invoke)(unsigned char *store, Args &&...args);
        /** Move-construct dst's storage from src's and destroy src's. */
        void (*relocate)(unsigned char *src, unsigned char *dst) noexcept;
        void (*destroy)(unsigned char *store) noexcept;
    };

    template <typename D>
    static D *inlinePtr(unsigned char *store)
    {
        return std::launder(reinterpret_cast<D *>(store));
    }

    template <typename D>
    static constexpr Ops inlineOps = {
        [](unsigned char *store, Args &&...args) -> R {
            return (*inlinePtr<D>(store))(std::forward<Args>(args)...);
        },
        [](unsigned char *src, unsigned char *dst) noexcept {
            ::new (static_cast<void *>(dst))
                D(std::move(*inlinePtr<D>(src)));
            inlinePtr<D>(src)->~D();
        },
        [](unsigned char *store) noexcept { inlinePtr<D>(store)->~D(); },
    };

    template <typename D>
    static constexpr Ops heapOps = {
        [](unsigned char *store, Args &&...args) -> R {
            return (**reinterpret_cast<D **>(store))(
                std::forward<Args>(args)...);
        },
        [](unsigned char *src, unsigned char *dst) noexcept {
            *reinterpret_cast<D **>(dst) = *reinterpret_cast<D **>(src);
        },
        [](unsigned char *store) noexcept {
            delete *reinterpret_cast<D **>(store);
        },
    };

    void reset()
    {
        if (ops_ != nullptr) {
            ops_->destroy(store_);
            ops_ = nullptr;
        }
    }

    void moveFrom(SmallFunction &other) noexcept
    {
        if (other.ops_ != nullptr) {
            ops_ = other.ops_;
            ops_->relocate(other.store_, store_);
            other.ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char store_[Capacity];
    const Ops *ops_ = nullptr;
};

} // namespace pim::util

#endif // PIM_UTIL_SMALL_FUNCTION_HH
