#include "util/host_placement.hh"

#include <thread>

#if defined(__linux__)
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sched.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>
#include <vector>
#endif

namespace pim::util {

#if defined(__linux__)

namespace {

/** mbind(2) policy/flag constants (uapi values, stable ABI); defined
 *  here so the raw syscall needs no numaif.h / libnuma headers. */
constexpr int kMpolBind = 2;
constexpr unsigned kMpolMfMove = 1u << 1;

/**
 * Parse one /sys/devices/system/node/node<N>/cpulist ("0-3,8,10-11")
 * and report whether it contains @p cpu.
 */
bool
cpulistContains(const char *list, unsigned cpu)
{
    const char *p = list;
    while (*p != '\0' && *p != '\n') {
        char *end = nullptr;
        const unsigned long lo = std::strtoul(p, &end, 10);
        if (end == p)
            break;
        unsigned long hi = lo;
        p = end;
        if (*p == '-') {
            hi = std::strtoul(p + 1, &end, 10);
            p = end;
        }
        if (cpu >= lo && cpu <= hi)
            return true;
        if (*p == ',')
            ++p;
    }
    return false;
}

/** NUMA node owning @p cpu per sysfs; -1 when the topology is absent. */
int
numaNodeOfCpu(unsigned cpu)
{
    for (unsigned node = 0;; ++node) {
        char path[96];
        std::snprintf(path, sizeof(path),
                      "/sys/devices/system/node/node%u/cpulist", node);
        FILE *f = std::fopen(path, "r");
        if (f == nullptr)
            return -1;
        char buf[512];
        const bool ok = std::fgets(buf, sizeof(buf), f) != nullptr;
        std::fclose(f);
        if (ok && cpulistContains(buf, cpu))
            return static_cast<int>(node);
    }
}

} // namespace

unsigned
hostCpuCount()
{
    cpu_set_t mask;
    CPU_ZERO(&mask);
    if (sched_getaffinity(0, sizeof(mask), &mask) == 0) {
        const int n = CPU_COUNT(&mask);
        if (n > 0)
            return static_cast<unsigned>(n);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

bool
pinCurrentThreadToCpu(unsigned cpu)
{
    // Map the logical worker index onto the process's *allowed* CPUs:
    // under a container quota the allowed set need not start at 0.
    cpu_set_t allowed;
    CPU_ZERO(&allowed);
    if (sched_getaffinity(0, sizeof(allowed), &allowed) != 0)
        return false;
    const int total = CPU_COUNT(&allowed);
    if (total <= 0)
        return false;
    unsigned want = cpu % static_cast<unsigned>(total);
    int target = -1;
    for (int c = 0; c < CPU_SETSIZE; ++c) {
        if (!CPU_ISSET(c, &allowed))
            continue;
        if (want == 0) {
            target = c;
            break;
        }
        --want;
    }
    if (target < 0)
        return false;
    cpu_set_t mask;
    CPU_ZERO(&mask);
    CPU_SET(target, &mask);
    return sched_setaffinity(0, sizeof(mask), &mask) == 0;
}

int
currentNumaNode()
{
    const int cpu = sched_getcpu();
    if (cpu < 0)
        return -1;
    return numaNodeOfCpu(static_cast<unsigned>(cpu));
}

unsigned
numaNodeCount()
{
    unsigned node = 0;
    for (;; ++node) {
        char path[96];
        std::snprintf(path, sizeof(path),
                      "/sys/devices/system/node/node%u/cpulist", node);
        if (access(path, R_OK) != 0)
            break;
    }
    return node > 0 ? node : 1;
}

bool
numaBindingSupported()
{
#if defined(PIM_SIM_NUMA) && defined(SYS_mbind)
    return numaNodeCount() > 1;
#else
    return false;
#endif
}

bool
bindMemoryToCurrentNode(void *addr, size_t len)
{
#if defined(PIM_SIM_NUMA) && defined(SYS_mbind)
    if (!numaBindingSupported())
        return false;
    const int node = currentNumaNode();
    if (node < 0)
        return false;

    // Shrink the range inward to page boundaries: the buffers come from
    // calloc and need not be aligned, and binding a partial page would
    // move a neighbor's data.
    const long page_l = sysconf(_SC_PAGESIZE);
    const uintptr_t page = page_l > 0 ? static_cast<uintptr_t>(page_l)
                                      : uintptr_t{4096};
    const uintptr_t lo =
        (reinterpret_cast<uintptr_t>(addr) + page - 1) & ~(page - 1);
    const uintptr_t hi =
        (reinterpret_cast<uintptr_t>(addr) + len) & ~(page - 1);
    if (hi <= lo)
        return false;

    // A huge page spanning the range would defeat page-granular
    // placement; best-effort, ignore failure.
    (void)madvise(reinterpret_cast<void *>(lo), hi - lo,
                  MADV_NOHUGEPAGE);

    std::vector<unsigned long> nodemask(
        (static_cast<size_t>(node) / (8 * sizeof(unsigned long))) + 1,
        0ul);
    nodemask[static_cast<size_t>(node) / (8 * sizeof(unsigned long))] |=
        1ul << (static_cast<size_t>(node) % (8 * sizeof(unsigned long)));

    return syscall(SYS_mbind, reinterpret_cast<void *>(lo), hi - lo,
                   kMpolBind, nodemask.data(),
                   nodemask.size() * 8 * sizeof(unsigned long) + 1,
                   kMpolMfMove) == 0;
#else
    (void)addr;
    (void)len;
    return false;
#endif
}

#else // !__linux__

unsigned
hostCpuCount()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

bool
pinCurrentThreadToCpu(unsigned)
{
    return false;
}

int
currentNumaNode()
{
    return -1;
}

unsigned
numaNodeCount()
{
    return 1;
}

bool
numaBindingSupported()
{
    return false;
}

bool
bindMemoryToCurrentNode(void *, size_t)
{
    return false;
}

#endif

} // namespace pim::util
