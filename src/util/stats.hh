/**
 * @file
 * Lightweight statistics containers used by the simulator, the allocator
 * instrumentation, and the benchmark harnesses: running moments,
 * percentile estimation from retained samples, and fixed-bin histograms.
 */

#ifndef PIM_UTIL_STATS_HH
#define PIM_UTIL_STATS_HH

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace pim::util {

/**
 * Online mean/variance/min/max accumulator (Welford's algorithm).
 * O(1) memory; suitable for very long event streams.
 */
class RunningStat
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const RunningStat &other);

    /** Number of observations so far. */
    uint64_t count() const { return n_; }

    /** Arithmetic mean; 0 if empty. */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Population variance; 0 if fewer than two samples. */
    double variance() const;

    /** Standard deviation. */
    double stddev() const;

    /** Smallest observation; +inf if empty. */
    double min() const { return min_; }

    /** Largest observation; -inf if empty. */
    double max() const { return max_; }

    /** Sum of all observations. */
    double sum() const { return mean_ * static_cast<double>(n_); }

    /** Reset to the empty state. */
    void reset();

  private:
    uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Sample reservoir with exact percentile queries.
 *
 * Stores all samples (the experiments here generate at most a few million
 * events) and sorts lazily on the first percentile query.
 */
class Percentile
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Exact p-th percentile, p in [0, 100]. Returns 0 if empty. */
    double percentile(double p) const;

    /** Convenience accessors. */
    double p50() const { return percentile(50.0); }
    double p95() const { return percentile(95.0); }
    double p99() const { return percentile(99.0); }

    /** Number of samples. */
    size_t count() const { return samples_.size(); }

    /** Mean of all samples; 0 if empty. */
    double mean() const;

    /** Access to the raw (unsorted) samples, e.g. for time series plots. */
    const std::vector<double> &samples() const { return samples_; }

    /** Drop all samples. */
    void reset();

  private:
    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

/**
 * Fixed-width linear histogram over [lo, hi); out-of-range samples clamp
 * into the first/last bin so mass is never silently dropped.
 */
class Histogram
{
  public:
    /** @param bins number of bins (>0); @param lo/hi range covered. */
    Histogram(size_t bins, double lo, double hi);

    /** Add one sample. */
    void add(double x);

    /** Count in bin i. */
    uint64_t bin(size_t i) const { return counts_.at(i); }

    /** Number of bins. */
    size_t bins() const { return counts_.size(); }

    /** Lower edge of bin i. */
    double binLow(size_t i) const;

    /** Total samples. */
    uint64_t total() const { return total_; }

  private:
    std::vector<uint64_t> counts_;
    double lo_;
    double hi_;
    uint64_t total_ = 0;
};

/** Geometric mean of a vector of positive values; 0 if empty. */
double geomean(const std::vector<double> &xs);

} // namespace pim::util

#endif // PIM_UTIL_STATS_HH
