#include "util/table.hh"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <sstream>

#include "util/json.hh"
#include "util/logging.hh"

namespace pim::util {

Table::Table(std::string title) : title_(std::move(title)) {}

void
Table::setHeader(std::vector<std::string> cols)
{
    header_ = std::move(cols);
}

void
Table::addRow(std::vector<std::string> cols)
{
    if (!header_.empty()) {
        PIM_ASSERT(cols.size() == header_.size(),
                   "row width ", cols.size(), " != header width ",
                   header_.size(), " in table '", title_, "'");
    }
    rows_.push_back(std::move(cols));
}

std::string
Table::num(double v, int decimals)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(decimals) << v;
    return os.str();
}

std::string
Table::num(uint64_t v)
{
    return std::to_string(v);
}

std::string
Table::num(int64_t v)
{
    return std::to_string(v);
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> widths;
    auto grow = [&](const std::vector<std::string> &row) {
        if (widths.size() < row.size())
            widths.resize(row.size(), 0);
        for (size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    if (!header_.empty())
        grow(header_);
    for (const auto &r : rows_)
        grow(r);

    os << "== " << title_ << " ==\n";
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i) {
            os << std::left << std::setw(static_cast<int>(widths[i]) + 2)
               << row[i];
        }
        os << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        size_t total = 0;
        for (size_t w : widths)
            total += w + 2;
        os << std::string(total, '-') << "\n";
    }
    for (const auto &r : rows_)
        emit(r);
    os.flush();
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i) {
            if (i)
                os << ",";
            os << row[i];
        }
        os << "\n";
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &r : rows_)
        emit(r);
}

void
Table::writeJson(JsonWriter &j) const
{
    j.beginObject();
    j.key("title").value(title_);
    j.key("header").beginArray();
    for (const auto &h : header_)
        j.value(h);
    j.endArray();
    j.key("rows").beginArray();
    for (const auto &row : rows_) {
        j.beginArray();
        for (const auto &cell : row)
            j.value(cell);
        j.endArray();
    }
    j.endArray();
    j.endObject();
}

} // namespace pim::util
