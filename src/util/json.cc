#include "util/json.hh"

#include <cmath>
#include <cstdio>

#include "util/logging.hh"

namespace pim::util {

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::indent()
{
    out_ << '\n';
    for (size_t i = 0; i < frames_.size(); ++i)
        out_ << "  ";
}

void
JsonWriter::beforeValue()
{
    if (key_pending_) {
        key_pending_ = false;
        return;
    }
    PIM_ASSERT(!wrote_root_ || !frames_.empty(),
               "JSON document already complete");
    if (!frames_.empty()) {
        PIM_ASSERT(frames_.back() == Frame::Array,
                   "object member requires key()");
        if (!first_.back())
            out_ << ',';
        first_.back() = false;
        indent();
    }
    wrote_root_ = true;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    PIM_ASSERT(!frames_.empty() && frames_.back() == Frame::Object,
               "key() outside an object");
    PIM_ASSERT(!key_pending_, "key() after key()");
    if (!first_.back())
        out_ << ',';
    first_.back() = false;
    indent();
    out_ << '"' << escape(name) << "\": ";
    key_pending_ = true;
    return *this;
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    out_ << '{';
    frames_.push_back(Frame::Object);
    first_.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    PIM_ASSERT(!frames_.empty() && frames_.back() == Frame::Object,
               "endObject() without beginObject()");
    PIM_ASSERT(!key_pending_, "dangling key()");
    const bool empty = first_.back();
    frames_.pop_back();
    first_.pop_back();
    if (!empty)
        indent();
    out_ << '}';
    if (frames_.empty())
        out_ << '\n';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    out_ << '[';
    frames_.push_back(Frame::Array);
    first_.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    PIM_ASSERT(!frames_.empty() && frames_.back() == Frame::Array,
               "endArray() without beginArray()");
    const bool empty = first_.back();
    frames_.pop_back();
    first_.pop_back();
    if (!empty)
        indent();
    out_ << ']';
    if (frames_.empty())
        out_ << '\n';
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &s)
{
    beforeValue();
    out_ << '"' << escape(s) << '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *s)
{
    return value(std::string(s));
}

JsonWriter &
JsonWriter::value(double d)
{
    beforeValue();
    if (!std::isfinite(d)) {
        // JSON has no Inf/NaN; emit null so consumers fail loudly.
        out_ << "null";
        return *this;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out_ << buf;
    return *this;
}

JsonWriter &
JsonWriter::value(uint64_t n)
{
    beforeValue();
    out_ << n;
    return *this;
}

JsonWriter &
JsonWriter::value(int64_t n)
{
    beforeValue();
    out_ << n;
    return *this;
}

JsonWriter &
JsonWriter::value(bool b)
{
    beforeValue();
    out_ << (b ? "true" : "false");
    return *this;
}

} // namespace pim::util
