/**
 * @file
 * Error-reporting helpers following the gem5 fatal/panic convention.
 *
 * - panic():  an internal invariant was violated (a bug in this library);
 *             aborts so a debugger or core dump can capture state.
 * - fatal():  the *user* asked for something impossible (bad config);
 *             exits with status 1.
 * - warn():   something is suspicious but the run can continue.
 */

#ifndef PIM_UTIL_LOGGING_HH
#define PIM_UTIL_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace pim::util {

/** Print "panic: <msg>" with location info and abort(). */
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);

/** Print "fatal: <msg>" and exit(1). */
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);

/** Print "warn: <msg>" to stderr. */
void warnImpl(const char *file, int line, const std::string &msg);

namespace detail {

template <typename... Args>
std::string
formatParts(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

} // namespace pim::util

#define PIM_PANIC(...) \
    ::pim::util::panicImpl(__FILE__, __LINE__, \
        ::pim::util::detail::formatParts(__VA_ARGS__))

#define PIM_FATAL(...) \
    ::pim::util::fatalImpl(__FILE__, __LINE__, \
        ::pim::util::detail::formatParts(__VA_ARGS__))

#define PIM_WARN(...) \
    ::pim::util::warnImpl(__FILE__, __LINE__, \
        ::pim::util::detail::formatParts(__VA_ARGS__))

/** Invariant check that stays enabled in release builds. */
#define PIM_ASSERT(cond, ...) \
    do { \
        if (!(cond)) \
            PIM_PANIC("assertion failed: " #cond " — ", ##__VA_ARGS__); \
    } while (0)

#endif // PIM_UTIL_LOGGING_HH
