/**
 * @file
 * Minimal streaming JSON writer for machine-readable benchmark output
 * (BENCH_*.json). Supports nested objects/arrays, string escaping, and
 * integer/double/bool values — just enough for perf artifacts, with no
 * external dependency.
 */

#ifndef PIM_UTIL_JSON_HH
#define PIM_UTIL_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace pim::util {

/**
 * Streaming writer producing pretty-printed JSON on an ostream.
 *
 * Usage:
 *   JsonWriter j(out);
 *   j.beginObject();
 *   j.key("name").value("bench");
 *   j.key("cases").beginArray();
 *   j.beginObject(); ... j.endObject();
 *   j.endArray();
 *   j.endObject();
 *
 * The writer asserts balanced begin/end calls and inserts commas and
 * indentation automatically.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &out) : out_(out) {}

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; must be followed by exactly one value. */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &s);
    JsonWriter &value(const char *s);
    JsonWriter &value(double d);
    JsonWriter &value(uint64_t n);
    JsonWriter &value(int64_t n);
    JsonWriter &value(int n) { return value(static_cast<int64_t>(n)); }
    JsonWriter &value(unsigned n) { return value(static_cast<uint64_t>(n)); }
    JsonWriter &value(bool b);

    /** True once every begin has been matched by an end. */
    bool complete() const { return frames_.empty() && wrote_root_; }

    /** JSON-escape @p s (quotes not included). */
    static std::string escape(const std::string &s);

  private:
    enum class Frame : uint8_t { Object, Array };

    void beforeValue();
    void indent();

    std::ostream &out_;
    std::vector<Frame> frames_;
    std::vector<bool> first_;   // first element of frames_[i] pending?
    bool key_pending_ = false;  // key() emitted, value expected
    bool wrote_root_ = false;
};

} // namespace pim::util

#endif // PIM_UTIL_JSON_HH
