/**
 * @file
 * Host CPU/NUMA placement helpers for the simulation worker pool.
 *
 * Everything here is best-effort and degrades to a no-op: simulation
 * results never depend on placement (the engine's determinism guarantee
 * is slot-indexed writes + sequential folds), only wall-clock time
 * does. On non-Linux hosts, in sandboxes that reject the syscalls, or
 * when the build disables PIM_SIM_NUMA, every function returns false /
 * does nothing, and callers proceed unpinned and unbound.
 *
 * No libnuma dependency: NUMA topology is read from sysfs and pages are
 * bound with the raw mbind(2) syscall, so the helpers work on minimal
 * container images.
 */

#ifndef PIM_UTIL_HOST_PLACEMENT_HH
#define PIM_UTIL_HOST_PLACEMENT_HH

#include <cstddef>

namespace pim::util {

/** Number of CPUs usable by this process (affinity-mask aware);
 *  at least 1. */
unsigned hostCpuCount();

/**
 * Pin the calling thread to host CPU @p cpu (sched_setaffinity).
 * @return true on success; false when unsupported or rejected.
 */
bool pinCurrentThreadToCpu(unsigned cpu);

/**
 * NUMA node of the CPU the calling thread is currently running on,
 * resolved via /sys/devices/system/node/node<N>/cpulist.
 * @return the node id, or -1 when the topology is unavailable.
 */
int currentNumaNode();

/** Number of NUMA nodes visible in sysfs; 1 when unknown. */
unsigned numaNodeCount();

/**
 * Bind the pages of [@p addr, @p addr + @p len) to the NUMA node the
 * calling thread currently runs on, moving already-touched pages
 * (mbind MPOL_BIND | MPOL_MF_MOVE). The range is shrunk inward to page
 * boundaries, so buffers need not be page-aligned; transparent huge
 * pages are disabled on the range first so page-granular placement
 * sticks.
 *
 * @return true if the kernel accepted the binding; false when the host
 *         has a single node, the topology is unknown, the syscall is
 *         unavailable, or the build disabled PIM_SIM_NUMA.
 */
bool bindMemoryToCurrentNode(void *addr, size_t len);

/** True when this build + host can attempt NUMA bindings at all. */
bool numaBindingSupported();

} // namespace pim::util

#endif // PIM_UTIL_HOST_PLACEMENT_HH
