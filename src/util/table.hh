/**
 * @file
 * Console table and CSV emission for benchmark harnesses. Every bench
 * binary prints the rows/series of the corresponding paper figure through
 * this printer so output stays uniform and machine-parseable.
 */

#ifndef PIM_UTIL_TABLE_HH
#define PIM_UTIL_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace pim::util {

class JsonWriter;

/**
 * Column-aligned text table with an optional title, built row by row.
 * Cells are strings; helpers format numbers with sensible precision.
 */
class Table
{
  public:
    /** @param title caption printed above the table. */
    explicit Table(std::string title);

    /** Set the header row. */
    void setHeader(std::vector<std::string> cols);

    /** Append a data row (must match header width if one was set). */
    void addRow(std::vector<std::string> cols);

    /** Format a double with the given number of decimals. */
    static std::string num(double v, int decimals = 2);

    /** Format an integer. */
    static std::string num(uint64_t v);
    static std::string num(int64_t v);
    static std::string num(int v) { return num(static_cast<int64_t>(v)); }

    /** Render the aligned table to the stream. */
    void print(std::ostream &os) const;

    /** Render the table as CSV (header + rows, no title). */
    void printCsv(std::ostream &os) const;

    /**
     * Emit the table as one JSON value:
     * {"title": ..., "header": [...], "rows": [[...], ...]} (cells stay
     * strings, exactly as printed). Used by the bench binaries' --json
     * output so every figure's numbers are machine-readable in the same
     * shape they appear on the console.
     */
    void writeJson(JsonWriter &j) const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace pim::util

#endif // PIM_UTIL_TABLE_HH
