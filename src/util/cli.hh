/**
 * @file
 * Minimal command-line flag parsing for examples and bench binaries.
 * Flags take the form --name=value or --name value; unknown flags are a
 * fatal error so typos never silently change an experiment.
 */

#ifndef PIM_UTIL_CLI_HH
#define PIM_UTIL_CLI_HH

#include <cstdint>
#include <map>
#include <string>

namespace pim::util {

/** Parsed command line with typed accessors and defaults. */
class Cli
{
  public:
    /**
     * Parse argv. @param known comma-separated list of accepted flag
     * names; pass "" to accept anything (used by tests).
     */
    Cli(int argc, char **argv, const std::string &known = "");

    /** True if --name was given. */
    bool has(const std::string &name) const;

    /** String flag with default. */
    std::string get(const std::string &name, const std::string &def) const;

    /** Integer flag with default; a non-integer value is fatal. */
    int64_t getInt(const std::string &name, int64_t def) const;

    /** Floating-point flag with default; a non-numeric value is fatal. */
    double getDouble(const std::string &name, double def) const;

    /** Boolean flag: present without value, or =true/=false. */
    bool getBool(const std::string &name, bool def) const;

  private:
    std::map<std::string, std::string> values_;
};

/**
 * The shared experiment knobs the figure benchmarks accept
 * (--dpus/--sample/--tasklets/--threads/--json/--trace/--occupancy),
 * so every bench parses them identically instead of hand-rolling its
 * own subset.
 */
struct BenchKnobs
{
    /** Logical system size (--dpus). */
    unsigned dpus = 512;
    /** Materialized sample DPUs, 0 = all (--sample). */
    unsigned sample = 2;
    /** Tasklets per DPU (--tasklets). */
    unsigned tasklets = 16;
    /** Host worker threads, 0 = PIM_SIM_THREADS/auto (--threads). */
    unsigned threads = 0;
    /** Machine-readable output path (--json); empty = none. */
    std::string jsonPath;
    /** Chrome/Perfetto trace output path (--trace); empty = none. */
    std::string tracePath;
    /** Print per-lane occupancy breakdowns (--occupancy). */
    bool occupancy = false;
    /** Collect and print runtime metrics summaries (--metrics):
     *  counters, latency histograms, SLO attainment. Metrics are also
     *  collected whenever tracing is on (wantsMetrics()), so counter
     *  tracks land in every written capture. */
    bool metrics = false;
    /**
     * Fault injection (--fault-seed/--mtbf/--fault-spec). The raw
     * spec string is carried here and parsed by
     * fault::FaultSpec::fromKnobs(faultSpec, mtbf) — util cannot
     * depend on the fault module — which is fatal on invalid specs.
     * mtbf is the rank-failure MTBF convenience flag (simulated
     * seconds, 0 = off); faultSpec is the full key=value spec.
     */
    uint64_t faultSeed = 23;
    double mtbf = 0.0;
    std::string faultSpec;

    /** True if either tracing output was requested. */
    bool
    wantsTrace() const
    {
        return !tracePath.empty() || occupancy;
    }

    /** True if any fault-injection flag was set. */
    bool
    wantsFaults() const
    {
        return mtbf > 0.0 || !faultSpec.empty();
    }

    /** True if a metrics registry should be attached: --metrics, or
     *  any tracing output (counter tracks ride in the capture). */
    bool
    wantsMetrics() const
    {
        return metrics || wantsTrace();
    }
};

/** Comma-joined known-flag list: the shared knob names + @p extra. */
std::string benchKnobNames(const std::string &extra = "");

/**
 * Read the shared knobs from @p cli over per-bench @p defaults.
 * Validates what it reads: --dpus/--tasklets must be >= 1 and --threads
 * must be a positive integer (omit it — or set PIM_SIM_THREADS — for
 * the automatic thread count); violations are fatal, consistent with
 * the unknown-flag policy.
 */
BenchKnobs parseBenchKnobs(const Cli &cli,
                           const BenchKnobs &defaults = {});

} // namespace pim::util

#endif // PIM_UTIL_CLI_HH
