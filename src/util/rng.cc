#include "util/rng.hh"

#include <cmath>

#include "util/logging.hh"

namespace pim::util {

namespace {

/** splitmix64 step, used only for seeding. */
uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

uint64_t
Rng::uniformInt(uint64_t bound)
{
    PIM_ASSERT(bound > 0, "uniformInt bound must be positive");
    // Lemire's nearly-divisionless method would be overkill here; simple
    // rejection keeps the stream easy to reason about in tests.
    const uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

uint64_t
Rng::uniformRange(uint64_t lo, uint64_t hi)
{
    PIM_ASSERT(lo <= hi, "uniformRange requires lo <= hi");
    return lo + uniformInt(hi - lo + 1);
}

double
Rng::uniformReal()
{
    return (next() >> 11) * 0x1.0p-53;
}

bool
Rng::bernoulli(double p)
{
    return uniformReal() < p;
}

double
Rng::normal()
{
    // Box-Muller; discard the second value for stream simplicity.
    double u1 = uniformReal();
    double u2 = uniformReal();
    if (u1 <= 0.0)
        u1 = 0x1.0p-53;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double
Rng::logNormal(double mu, double sigma)
{
    return std::exp(mu + sigma * normal());
}

double
Rng::exponential(double rate)
{
    PIM_ASSERT(rate > 0.0, "exponential rate must be positive");
    double u = uniformReal();
    if (u >= 1.0)
        u = 1.0 - 0x1.0p-53;
    return -std::log(1.0 - u) / rate;
}

uint64_t
Rng::zipf(uint64_t n, double s)
{
    PIM_ASSERT(n > 0, "zipf needs a positive range");
    if (n == 1)
        return 0;
    // Inverse-CDF against the continuous bounded Pareto approximation of
    // the Zipf distribution; exact enough for degree-sequence shaping.
    if (s == 1.0)
        s = 1.0 + 1e-9;
    const double one_minus_s = 1.0 - s;
    const double h_n = (std::pow(static_cast<double>(n), one_minus_s) - 1.0)
        / one_minus_s;
    const double u = uniformReal();
    const double x = std::pow(u * h_n * one_minus_s + 1.0, 1.0 / one_minus_s);
    uint64_t k = static_cast<uint64_t>(x);
    if (k >= n)
        k = n - 1;
    return k;
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xd1b54a32d192ed03ull);
}

Rng
Rng::stream(const std::string &name) const
{
    // FNV-1a 64 over the name, then one splitmix64 expansion per state
    // word keyed off the parent's *unadvanced* state: the child is a
    // pure function of (parent state, name), so the same (seed, name)
    // pair always yields the same stream regardless of what else was
    // drawn from sibling streams.
    uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : name) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    Rng child(0);
    bool nonzero = false;
    for (size_t i = 0; i < 4; ++i) {
        uint64_t x = s_[i] ^ h;
        child.s_[i] = splitmix64(x);
        nonzero = nonzero || child.s_[i] != 0;
    }
    if (!nonzero)
        child.s_[0] = h | 1; // xoshiro state must not be all zero
    return child;
}

} // namespace pim::util
