#include "util/stats.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace pim::util {

void
RunningStat::add(double x)
{
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean_ - mean_;
    const uint64_t total = n_ + other.n_;
    m2_ += other.m2_ + delta * delta
        * (static_cast<double>(n_) * static_cast<double>(other.n_))
        / static_cast<double>(total);
    mean_ += delta * static_cast<double>(other.n_)
        / static_cast<double>(total);
    n_ = total;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
RunningStat::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStat::reset()
{
    *this = RunningStat();
}

void
Percentile::add(double x)
{
    samples_.push_back(x);
    sorted_ = false;
}

double
Percentile::percentile(double p) const
{
    PIM_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range: ", p);
    if (samples_.empty())
        return 0.0;
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    // Nearest-rank with linear interpolation between adjacent order
    // statistics (the "exclusive" definition used by numpy's default).
    const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double
Percentile::mean() const
{
    if (samples_.empty())
        return 0.0;
    double s = 0.0;
    for (double x : samples_)
        s += x;
    return s / static_cast<double>(samples_.size());
}

void
Percentile::reset()
{
    samples_.clear();
    sorted_ = true;
}

Histogram::Histogram(size_t bins, double lo, double hi)
    : counts_(bins, 0), lo_(lo), hi_(hi)
{
    PIM_ASSERT(bins > 0, "histogram needs at least one bin");
    PIM_ASSERT(hi > lo, "histogram range must be non-empty");
}

void
Histogram::add(double x)
{
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    double idx = (x - lo_) / width;
    size_t i;
    if (idx < 0.0)
        i = 0;
    else if (idx >= static_cast<double>(counts_.size()))
        i = counts_.size() - 1;
    else
        i = static_cast<size_t>(idx);
    ++counts_[i];
    ++total_;
}

double
Histogram::binLow(size_t i) const
{
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + width * static_cast<double>(i);
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs) {
        PIM_ASSERT(x > 0.0, "geomean requires positive values");
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

} // namespace pim::util
