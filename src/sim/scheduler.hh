/**
 * @file
 * Deterministic cooperative scheduler for the tasklets of one DPU.
 *
 * Tasklets run on fibers; every cycle charge suspends the running tasklet
 * and control returns here. The scheduler always resumes the unfinished
 * tasklet with the smallest virtual clock (ties broken by id), which
 * makes the interleaving — and therefore every experiment — fully
 * deterministic while still exhibiting realistic contention dynamics.
 */

#ifndef PIM_SIM_SCHEDULER_HH
#define PIM_SIM_SCHEDULER_HH

#include <functional>
#include <memory>
#include <vector>

#include "sim/fiber.hh"
#include "sim/tasklet.hh"

namespace pim::sim {

class Dpu;

/** Scheduler owning the tasklets and fibers of one DPU program launch. */
class TaskletScheduler
{
  public:
    explicit TaskletScheduler(Dpu &dpu);

    /** Add one tasklet running @p body. Must precede runToCompletion(). */
    void spawn(std::function<void(Tasklet &)> body);

    /** Run all spawned tasklets to completion (single host thread). */
    void runToCompletion();

    /** Number of tasklets that have not yet finished. */
    unsigned activeCount() const { return active_; }

    /** Number of tasklets spawned. */
    size_t numTasklets() const { return tasklets_.size(); }

    /** Access a tasklet (e.g. to read its breakdown after the run). */
    Tasklet &tasklet(size_t i) { return *tasklets_.at(i); }
    const Tasklet &tasklet(size_t i) const { return *tasklets_.at(i); }

    /** Max virtual clock across tasklets (the program's makespan). */
    uint64_t elapsedCycles() const;

  private:
    friend class Tasklet;

    /** Record @p cycles against @p t and yield if inside the run loop. */
    void chargeAndYield(Tasklet &t, uint64_t cycles, CycleKind kind);

    Dpu &dpu_;
    std::vector<std::unique_ptr<Tasklet>> tasklets_;
    std::vector<std::unique_ptr<Fiber>> fibers_;
    unsigned active_ = 0;
    bool running_ = false;
};

} // namespace pim::sim

#endif // PIM_SIM_SCHEDULER_HH
