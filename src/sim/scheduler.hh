/**
 * @file
 * Deterministic cooperative scheduler for the tasklets of one DPU.
 *
 * Tasklets run on fibers; control returns here whenever the running
 * tasklet can no longer be the next one to run. The scheduler always
 * runs the unfinished tasklet with the smallest virtual clock (ties
 * broken by id), which makes the interleaving — and therefore every
 * experiment — fully deterministic while still exhibiting realistic
 * contention dynamics.
 *
 * Two scheduling policies produce bit-identical simulations:
 *
 *  - Horizon (default): when a tasklet is resumed the scheduler also
 *    hands it a *horizon* — the largest virtual clock at which it still
 *    wins the "(smallest clock, lowest id)" election against the best
 *    waiting tasklet. Cycle charges below the horizon just advance the
 *    tasklet's clock inline (a branch and two adds); only a charge that
 *    crosses the horizon context-switches. This is semantics-preserving
 *    because a yield that would immediately resume the same tasklet is
 *    a no-op in a cooperative model: nothing else runs in between, so
 *    no observable state can change. The waiting set is a small binary
 *    min-heap keyed by (clock, id); only the resumed tasklet's key ever
 *    changes (monotonically forward), so plain push/pop suffices.
 *
 *  - NaiveReference: the original event loop — yield back to the
 *    scheduler after *every* cycle charge and rescan all tasklets with
 *    an O(T) loop. Kept as the executable specification; the
 *    determinism test suite asserts Horizon matches it exactly.
 *
 * Parked tasklets: SimMutex's queue mode deschedules blocked tasklets
 * through parkCurrent()/wake(). A parked tasklet holds no election key
 * (it is out of the Horizon heap and skipped by the NaiveReference
 * scan), so the remaining runnable tasklets elect — and run ahead —
 * against each other only. wake() re-inserts the tasklet at a future
 * clock chosen by the waker, charging the wait as one lump. The
 * scheduler also keeps the election keys at which tasklets finished
 * (finish history), so wakers can reconstruct the pipeline width that
 * was in effect at any past virtual instant (pipelineWidthAt()).
 */

#ifndef PIM_SIM_SCHEDULER_HH
#define PIM_SIM_SCHEDULER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/fiber.hh"
#include "sim/tasklet.hh"

namespace pim::sim {

class Dpu;

/** Scheduler owning the tasklets and fibers of one DPU program launch. */
class TaskletScheduler
{
  public:
    /** Event-loop implementation; both produce identical simulations. */
    enum class Policy : uint8_t {
        Horizon,        ///< run-ahead horizon scheduling (default)
        NaiveReference, ///< yield-per-charge + O(T) scan (reference)
    };

    explicit TaskletScheduler(Dpu &dpu, Policy policy = Policy::Horizon);

    /** Add one tasklet running @p body. Must precede runToCompletion(). */
    void spawn(std::function<void(Tasklet &)> body);

    /** Run all spawned tasklets to completion (single host thread). */
    void runToCompletion();

    /**
     * Parse a PIM_SIM_SCHED value: "naive" -> NaiveReference,
     * "horizon" or unset -> Horizon; anything else is a fatal config
     * error (a typo must not silently select the default).
     */
    static Policy policyFromEnv(const char *value);

    /** Number of tasklets spawned. */
    size_t numTasklets() const { return tasklets_.size(); }

    /** Access a tasklet (e.g. to read its breakdown after the run). */
    Tasklet &tasklet(size_t i) { return *tasklets_.at(i); }
    const Tasklet &tasklet(size_t i) const { return *tasklets_.at(i); }

    /** Max virtual clock across tasklets (the program's makespan). */
    uint64_t elapsedCycles() const;

    /** The active scheduling policy. */
    Policy policy() const { return policy_; }

    /**
     * Deschedule the running tasklet @p t until a later wake(): its
     * election key leaves the heap, control transfers to the best
     * runnable tasklet, and parkCurrent() returns only after @p t has
     * been woken and wins an election again. Fatal if @p t is the last
     * runnable tasklet (nothing could ever wake it — deadlock).
     */
    void parkCurrent(Tasklet &t);

    /**
     * Wake parked tasklet @p waiter: place it at election key
     * @p clock_key (which must be in the future of both the waiter and
     * the running tasklet @p current) and account the wait as
     * @p busy_wait_cycles of BusyWait in one lump — deliberately not a
     * simulation event; callers track elided events themselves.
     * @p current is the running tasklet issuing the wake; its run-ahead
     * horizon is tightened so it yields when it crosses the woken key.
     */
    void wake(Tasklet &waiter, uint64_t clock_key,
              uint64_t busy_wait_cycles, Tasklet &current);

    /**
     * The pipeline width — max(pipelineIssueInterval, unfinished
     * tasklets) — in effect at virtual instant @p key, reconstructed
     * from the finish history of the current launch. Only valid for
     * keys at or before the running tasklet's position (later finishes
     * are not known yet).
     */
    uint64_t pipelineWidthAt(uint64_t key) const;

  private:
    friend class Tasklet;

    void runHorizon();
    void runNaive();

    /**
     * Called from the fiber of @p t when a charge crossed its horizon:
     * under Horizon, elect the best waiting tasklet and transfer
     * control to its fiber directly (one context switch, no scheduler
     * round trip); under NaiveReference, plain-yield to the event loop.
     */
    void switchOut(Tasklet &t);

    /** Tasklet id packed into the low bits of an election key. */
    static unsigned
    keyId(uint64_t key)
    {
        return static_cast<unsigned>(key)
            & ((1u << Tasklet::kIdBits) - 1u);
    }

    void heapPush(uint64_t key);
    uint64_t heapPop();
    /** Pop the min and insert @p key in one sift (the hot-path shape). */
    uint64_t heapReplaceTop(uint64_t key);

    Dpu &dpu_;
    Policy policy_;
    std::vector<std::unique_ptr<Tasklet>> tasklets_;
    std::vector<std::unique_ptr<Fiber>> fibers_;
    /** Raw-pointer mirrors of the above (hot path, no deref chains). */
    std::vector<Tasklet *> taskletRaw_;
    std::vector<Fiber *> fiberRaw_;
    /**
     * Binary min-heap of the *suspended* unfinished tasklets' election
     * keys (the running tasklet is not in it). Only the switched-out
     * tasklet's key ever changes, so replace-top is the only hot
     * operation; no decrease-key / index tracking is needed.
     */
    std::vector<uint64_t> heap_;
    /**
     * Election keys at which tasklets of this launch finished, in
     * finish order. Drives pipelineWidthAt(): the unfinished count at
     * key K is numTasklets() minus the finishes strictly before K.
     */
    std::vector<uint64_t> finishKeys_;
    unsigned active_ = 0;
    bool running_ = false;
};

} // namespace pim::sim

#endif // PIM_SIM_SCHEDULER_HH
