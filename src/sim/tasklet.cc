#include "sim/tasklet.hh"

#include <algorithm>
#include <cmath>

#include "sim/dpu.hh"
#include "sim/scheduler.hh"

namespace pim::sim {

const char *
cycleKindName(CycleKind kind)
{
    switch (kind) {
      case CycleKind::Run: return "Run";
      case CycleKind::BusyWait: return "Busy-waiting";
      case CycleKind::IdleMemory: return "Idle(Memory)";
      case CycleKind::IdleEtc: return "Idle(Etc)";
    }
    return "?";
}

Tasklet::Tasklet(Dpu &dpu, TaskletScheduler &sched, unsigned id)
    : dpu_(dpu), sched_(sched), activeTasklets_(&sched.active_),
      issueInterval_(dpu.config().pipelineIssueInterval), id_(id),
      clockKey_(id) // clock 0, id in the low bits
{
}

void
Tasklet::yieldNow()
{
    sched_.switchOut(*this);
}

void
Tasklet::dmaRead(MramAddr addr, uint32_t bytes, TrafficClass tc)
{
    (void)addr;
    const auto &cfg = dpu_.config();
    const uint64_t cycles = cfg.dmaSetupCycles
        + static_cast<uint64_t>(std::ceil(cfg.dmaCyclesPerByte * bytes));
    auto &traffic = dpu_.traffic();
    ++traffic.dmaTransfers;
    if (tc == TrafficClass::Metadata)
        traffic.metadataReadBytes += bytes;
    else
        traffic.dataReadBytes += bytes;
    charge(cycles, CycleKind::IdleMemory);
}

void
Tasklet::dmaWrite(MramAddr addr, uint32_t bytes, TrafficClass tc)
{
    (void)addr;
    const auto &cfg = dpu_.config();
    const uint64_t cycles = cfg.dmaSetupCycles
        + static_cast<uint64_t>(std::ceil(cfg.dmaCyclesPerByte * bytes));
    auto &traffic = dpu_.traffic();
    ++traffic.dmaTransfers;
    if (tc == TrafficClass::Metadata)
        traffic.metadataWriteBytes += bytes;
    else
        traffic.dataWriteBytes += bytes;
    charge(cycles, CycleKind::IdleMemory);
}

template <typename T>
T
Tasklet::mramRead(MramAddr addr, TrafficClass tc)
{
    dmaRead(addr, std::max<uint32_t>(8, sizeof(T)), tc);
    return dpu_.mram().read<T>(addr);
}

template <typename T>
void
Tasklet::mramWrite(MramAddr addr, const T &value, TrafficClass tc)
{
    // Charge the DMA before committing the store (mirroring mramRead):
    // the write must not become visible to tasklets scheduled during
    // the transfer's virtual time window.
    dmaWrite(addr, std::max<uint32_t>(8, sizeof(T)), tc);
    dpu_.mram().write<T>(addr, value);
}

// Explicit instantiations for the types workloads use.
template uint32_t Tasklet::mramRead<uint32_t>(MramAddr, TrafficClass);
template uint64_t Tasklet::mramRead<uint64_t>(MramAddr, TrafficClass);
template int32_t Tasklet::mramRead<int32_t>(MramAddr, TrafficClass);
template void Tasklet::mramWrite<uint32_t>(MramAddr, const uint32_t &,
                                           TrafficClass);
template void Tasklet::mramWrite<uint64_t>(MramAddr, const uint64_t &,
                                           TrafficClass);
template void Tasklet::mramWrite<int32_t>(MramAddr, const int32_t &,
                                          TrafficClass);

} // namespace pim::sim
