#include "sim/dpu.hh"

#include <cstdlib>
#include <string>

#include "sim/scheduler.hh"
#include "util/logging.hh"

#ifdef PIM_TRACE_SIM
#include "trace/trace.hh"
#endif

namespace pim::sim {

namespace {

/**
 * Scheduling policy for all DPU launches. PIM_SIM_SCHED=naive selects
 * the reference event loop, so any experiment can be re-run against it
 * to check bit-identical output (the determinism suite automates this
 * for a contended workload).
 */
TaskletScheduler::Policy
schedulerPolicy()
{
    static const TaskletScheduler::Policy policy =
        TaskletScheduler::policyFromEnv(std::getenv("PIM_SIM_SCHED"));
    return policy;
}

} // namespace

Dpu::Dpu(const DpuConfig &cfg)
    : cfg_(cfg),
      mram_(cfg.mramBytes, "MRAM"),
      wram_(cfg.wramBytes, "WRAM"),
      buddyCache_(cfg.buddyCache)
{
}

uint64_t
Dpu::run(unsigned num_tasklets, const std::function<void(Tasklet &)> &body)
{
    std::vector<std::function<void(Tasklet &)>> bodies(num_tasklets, body);
    return runBodies(std::move(bodies));
}

uint64_t
Dpu::runBodies(std::vector<std::function<void(Tasklet &)>> bodies)
{
    PIM_ASSERT(!bodies.empty(), "DPU launch needs at least one tasklet");
    TaskletScheduler sched(*this, schedulerPolicy());
    for (auto &b : bodies)
        sched.spawn(std::move(b));
    sched.runToCompletion();

    lastElapsed_ = sched.elapsedCycles();
    lastBreakdown_ = CycleBreakdown{};
    lastSimEvents_ = 0;
    for (size_t i = 0; i < sched.numTasklets(); ++i) {
        const auto &bd = sched.tasklet(i).breakdown();
        lastBreakdown_.merge(bd);
        lastSimEvents_ += sched.tasklet(i).simEvents();
        // Pad tasklets that finished before the makespan with Idle(Etc)
        // so occupancy fractions are meaningful across the whole launch.
        lastBreakdown_.add(CycleKind::IdleEtc,
                           lastElapsed_ - sched.tasklet(i).clock());
    }

#ifdef PIM_TRACE_SIM
    if (traceRec_ != nullptr) {
        const std::string prefix =
            "dpu" + std::to_string(traceGlobal_) + "/t";
        for (size_t i = 0; i < sched.numTasklets(); ++i) {
            const uint64_t cycles = sched.tasklet(i).clock();
            trace::Span s;
            s.lane = traceRec_->customLane(prefix + std::to_string(i));
            s.name = "tasklet";
            s.t0 = traceOrigin_;
            s.t1 = traceOrigin_ + cfg_.cyclesToSeconds(cycles);
            s.cycles = cycles;
            traceRec_->record(std::move(s));
        }
        traceOrigin_ += cfg_.cyclesToSeconds(lastElapsed_);
    }
#endif
    return lastElapsed_;
}

uint32_t
Dpu::wramReserve(uint32_t bytes)
{
    PIM_ASSERT(wramUsed_ + bytes <= cfg_.wramBytes,
               "WRAM budget exceeded: used=", wramUsed_, " request=", bytes,
               " capacity=", cfg_.wramBytes);
    const uint32_t offset = wramUsed_;
    wramUsed_ += bytes;
    return offset;
}

void
Dpu::resetStats()
{
    traffic_ = TrafficStats{};
    buddyCache_.resetStats();
    lastElapsed_ = 0;
    lastBreakdown_ = CycleBreakdown{};
}

} // namespace pim::sim
