#include "sim/memory.hh"

#include "util/host_placement.hh"

namespace pim::sim {

FlatMemory::FlatMemory(size_t bytes, const char *name)
    : data_(static_cast<uint8_t *>(std::calloc(bytes ? bytes : 1, 1)),
            &std::free),
      size_(bytes), name_(name)
{
    PIM_ASSERT(data_ != nullptr, name, " allocation of ", bytes,
               " bytes failed");
}

void
FlatMemory::reset()
{
    data_.reset(
        static_cast<uint8_t *>(std::calloc(size_ ? size_ : 1, 1)));
    PIM_ASSERT(data_ != nullptr, name_, " reallocation of ", size_,
               " bytes failed");
}

bool
FlatMemory::bindToCallingThread()
{
    return util::bindMemoryToCurrentNode(data_.get(), size_);
}

void
FlatMemory::checkRange(MramAddr addr, size_t n) const
{
    PIM_ASSERT(static_cast<size_t>(addr) + n <= size_,
               name_, " access out of range: addr=", addr, " len=", n,
               " size=", size_);
}

void
FlatMemory::readBytes(MramAddr addr, void *dst, size_t n) const
{
    checkRange(addr, n);
    std::memcpy(dst, data_.get() + addr, n);
}

void
FlatMemory::writeBytes(MramAddr addr, const void *src, size_t n)
{
    checkRange(addr, n);
    std::memcpy(data_.get() + addr, src, n);
}

void
FlatMemory::moveBytes(MramAddr dst, MramAddr src, size_t n)
{
    checkRange(dst, n);
    checkRange(src, n);
    std::memmove(data_.get() + dst, data_.get() + src, n);
}

void
FlatMemory::fill(MramAddr addr, size_t n, uint8_t value)
{
    checkRange(addr, n);
    std::memset(data_.get() + addr, value, n);
}

} // namespace pim::sim
