#include "sim/memory.hh"

namespace pim::sim {

FlatMemory::FlatMemory(size_t bytes, const char *name)
    : data_(bytes, 0), name_(name)
{
}

void
FlatMemory::checkRange(MramAddr addr, size_t n) const
{
    PIM_ASSERT(static_cast<size_t>(addr) + n <= data_.size(),
               name_, " access out of range: addr=", addr, " len=", n,
               " size=", data_.size());
}

void
FlatMemory::readBytes(MramAddr addr, void *dst, size_t n) const
{
    checkRange(addr, n);
    std::memcpy(dst, data_.data() + addr, n);
}

void
FlatMemory::writeBytes(MramAddr addr, const void *src, size_t n)
{
    checkRange(addr, n);
    std::memcpy(data_.data() + addr, src, n);
}

void
FlatMemory::moveBytes(MramAddr dst, MramAddr src, size_t n)
{
    checkRange(dst, n);
    checkRange(src, n);
    std::memmove(data_.data() + dst, data_.data() + src, n);
}

void
FlatMemory::fill(MramAddr addr, size_t n, uint8_t value)
{
    checkRange(addr, n);
    std::memset(data_.data() + addr, value, n);
}

} // namespace pim::sim
