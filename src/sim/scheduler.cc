#include "sim/scheduler.hh"

#include <algorithm>

#include "sim/dpu.hh"
#include "util/logging.hh"

namespace pim::sim {

TaskletScheduler::TaskletScheduler(Dpu &dpu) : dpu_(dpu) {}

void
TaskletScheduler::spawn(std::function<void(Tasklet &)> body)
{
    PIM_ASSERT(!running_, "cannot spawn while running");
    PIM_ASSERT(tasklets_.size() < dpu_.config().maxTasklets,
               "DPU supports at most ", dpu_.config().maxTasklets,
               " tasklets");
    const unsigned id = static_cast<unsigned>(tasklets_.size());
    tasklets_.push_back(std::make_unique<Tasklet>(dpu_, *this, id));
    Tasklet *t = tasklets_.back().get();
    fibers_.push_back(std::make_unique<Fiber>(
        [body = std::move(body), t]() { body(*t); }));
}

void
TaskletScheduler::runToCompletion()
{
    PIM_ASSERT(!running_, "scheduler already running");
    PIM_ASSERT(!tasklets_.empty(), "no tasklets spawned");
    running_ = true;
    active_ = static_cast<unsigned>(tasklets_.size());

    // Always resume the unfinished tasklet with the smallest virtual
    // clock; ties break toward the lowest id. This is a discrete-event
    // loop where each event is one cycle charge.
    for (;;) {
        int next = -1;
        uint64_t best = UINT64_MAX;
        for (size_t i = 0; i < tasklets_.size(); ++i) {
            if (fibers_[i]->finished())
                continue;
            if (tasklets_[i]->clock() < best) {
                best = tasklets_[i]->clock();
                next = static_cast<int>(i);
            }
        }
        if (next < 0)
            break;
        fibers_[static_cast<size_t>(next)]->resume();
        if (fibers_[static_cast<size_t>(next)]->finished())
            --active_;
    }
    running_ = false;
}

uint64_t
TaskletScheduler::elapsedCycles() const
{
    uint64_t best = 0;
    for (const auto &t : tasklets_)
        best = std::max(best, t->clock());
    return best;
}

void
TaskletScheduler::chargeAndYield(Tasklet &t, uint64_t cycles, CycleKind kind)
{
    t.clock_ += cycles;
    t.breakdown_.add(kind, cycles);
    if (running_)
        Fiber::yield();
}

} // namespace pim::sim
