#include "sim/scheduler.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "sim/dpu.hh"
#include "util/logging.hh"

namespace pim::sim {

TaskletScheduler::TaskletScheduler(Dpu &dpu, Policy policy)
    : dpu_(dpu), policy_(policy)
{
}

TaskletScheduler::Policy
TaskletScheduler::policyFromEnv(const char *value)
{
    if (value == nullptr || std::strcmp(value, "horizon") == 0)
        return Policy::Horizon;
    if (std::strcmp(value, "naive") == 0)
        return Policy::NaiveReference;
    PIM_FATAL("unrecognized PIM_SIM_SCHED value \"", value,
              "\" (expected \"horizon\" or \"naive\")");
}

void
TaskletScheduler::spawn(std::function<void(Tasklet &)> body)
{
    PIM_ASSERT(!running_, "cannot spawn while running");
    PIM_ASSERT(tasklets_.size() < dpu_.config().maxTasklets,
               "DPU supports at most ", dpu_.config().maxTasklets,
               " tasklets");
    const unsigned id = static_cast<unsigned>(tasklets_.size());
    PIM_ASSERT(id < (1u << Tasklet::kIdBits),
               "election-key packing supports at most ",
               1u << Tasklet::kIdBits, " tasklets");
    tasklets_.push_back(std::make_unique<Tasklet>(dpu_, *this, id));
    Tasklet *t = tasklets_.back().get();
    fibers_.push_back(
        std::make_unique<Fiber>([this, body = std::move(body), t]() {
            body(*t);
            // Charges after the run loop (e.g. tests poking a finished
            // launch's tasklets) must never try to yield.
            t->horizonKey_ = UINT64_MAX;
            // The finish history lets mutex wakers replay the pipeline
            // width at any past virtual instant (pipelineWidthAt).
            finishKeys_.push_back(t->clockKey_);
        }));
    taskletRaw_.push_back(t);
    fiberRaw_.push_back(fibers_.back().get());
}

void
TaskletScheduler::runToCompletion()
{
    PIM_ASSERT(!running_, "scheduler already running");
    PIM_ASSERT(!tasklets_.empty(), "no tasklets spawned");
    running_ = true;
    active_ = static_cast<unsigned>(tasklets_.size());
    finishKeys_.clear();
    finishKeys_.reserve(tasklets_.size());
    if (policy_ == Policy::Horizon)
        runHorizon();
    else
        runNaive();
    PIM_ASSERT(active_ == 0, active_,
               " tasklet(s) still parked at the end of the launch — "
               "deadlock (a lock was never released?)");
    running_ = false;
}

uint64_t
TaskletScheduler::pipelineWidthAt(uint64_t key) const
{
    // Small linear scan: at most one entry per tasklet (<= 24), and
    // wakers only call this on the contended path.
    unsigned finished = 0;
    for (const uint64_t fk : finishKeys_)
        finished += fk < key ? 1u : 0u;
    const uint64_t unfinished = tasklets_.size() - finished;
    const uint64_t interval = dpu_.config().pipelineIssueInterval;
    return unfinished > interval ? unfinished : interval;
}

void
TaskletScheduler::parkCurrent(Tasklet &t)
{
    PIM_ASSERT(!t.parked_, "parking an already-parked tasklet");
    t.parked_ = true;
    if (policy_ != Policy::Horizon) {
        Fiber::yield();
        return;
    }
    if (heap_.empty())
        PIM_FATAL("tasklet ", t.id_, " parked with no runnable tasklet "
                  "left — deadlock (a lock was never released?)");
    // Like switchOut(), but t's key is *not* re-inserted: hand control
    // to the best waiter and leave t out of all elections until wake().
    const uint64_t winner = heapPop();
    taskletRaw_[keyId(winner)]->horizonKey_ =
        heap_.empty() ? UINT64_MAX : heap_.front();
    fiberRaw_[t.id_]->switchTo(*fiberRaw_[keyId(winner)]);
}

void
TaskletScheduler::wake(Tasklet &waiter, uint64_t clock_key,
                       uint64_t busy_wait_cycles, Tasklet &current)
{
    PIM_ASSERT(waiter.parked_, "waking a tasklet that is not parked");
    PIM_ASSERT(clock_key >= waiter.clockKey_,
               "wake would move a tasklet backwards in virtual time");
    waiter.parked_ = false;
    waiter.clockKey_ = clock_key;
    waiter.breakdown_.add(CycleKind::BusyWait, busy_wait_cycles);
    if (policy_ == Policy::Horizon) {
        heapPush(clock_key);
        // The waker's horizon was the previous heap front; the woken
        // key may now be the nearer election it must not run past.
        current.horizonKey_ = heap_.front();
    }
}

void
TaskletScheduler::heapPush(uint64_t key)
{
    // Cold path (launch setup only); the hot operation is
    // heapReplaceTop, which std:: has no equivalent for.
    heap_.push_back(key);
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
}

uint64_t
TaskletScheduler::heapPop()
{
    const uint64_t top = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty())
        heapReplaceTop(heap_.front());
    return top;
}

uint64_t
TaskletScheduler::heapReplaceTop(uint64_t key)
{
    uint64_t *h = heap_.data();
    const uint64_t top = h[0];
    const size_t n = heap_.size();
    size_t i = 0;
    for (;;) {
        const size_t l = 2 * i + 1;
        if (l >= n)
            break;
        const size_t r = l + 1;
        const size_t child = (r < n && h[r] < h[l]) ? r : l;
        if (h[child] >= key)
            break;
        h[i] = h[child];
        i = child;
    }
    h[i] = key;
    return top;
}

void
TaskletScheduler::switchOut(Tasklet &t)
{
    if (policy_ != Policy::Horizon) {
        Fiber::yield();
        return;
    }
    /*
     * t just lost the election to heap_[0] (its horizon was computed
     * from exactly that entry, and the heap cannot change while t
     * runs). Swap t in for the winner with a single sift-down, give the
     * winner its horizon against the new best waiter, and jump straight
     * into its fiber.
     */
    const uint64_t winner = heapReplaceTop(t.clockKey_);
    taskletRaw_[keyId(winner)]->horizonKey_ = heap_.front();
    fiberRaw_[t.id_]->switchTo(*fiberRaw_[keyId(winner)]);
}

void
TaskletScheduler::runHorizon()
{
    heap_.clear();
    heap_.reserve(tasklets_.size());
    for (size_t i = 0; i < tasklets_.size(); ++i)
        heapPush(tasklets_[i]->clockKey_);

    while (!heap_.empty()) {
        const uint64_t cur = heapPop();
        Tasklet &t = *taskletRaw_[keyId(cur)];
        // The best waiter's key is exactly the largest own key at which
        // `t` still wins the "(smallest clock, lowest id)" election;
        // with no waiters `t` can never lose.
        t.horizonKey_ = heap_.empty() ? UINT64_MAX : heap_.front();
        fiberRaw_[keyId(cur)]->resume();
        // Control only returns here when a fiber (not necessarily
        // cur's — losers switch directly into winners and park
        // themselves in the heap) ran its body to completion.
        --active_;
    }
}

void
TaskletScheduler::runNaive()
{
    // The original discrete-event loop where each event is one cycle
    // charge: resume the min-(clock, id) tasklet, which yields right
    // after its next charge (its horizon is pinned to its own key, so
    // any charge crosses it).
    for (;;) {
        int next = -1;
        uint64_t best = UINT64_MAX;
        for (size_t i = 0; i < tasklets_.size(); ++i) {
            if (fibers_[i]->finished() || tasklets_[i]->parked_)
                continue;
            if (tasklets_[i]->clockKey_ < best) {
                best = tasklets_[i]->clockKey_;
                next = static_cast<int>(i);
            }
        }
        if (next < 0)
            break;
        Tasklet &t = *tasklets_[static_cast<size_t>(next)];
        t.horizonKey_ = t.clockKey_;
        fibers_[static_cast<size_t>(next)]->resume();
        t.horizonKey_ = UINT64_MAX;
        if (fibers_[static_cast<size_t>(next)]->finished())
            --active_;
    }
}

uint64_t
TaskletScheduler::elapsedCycles() const
{
    uint64_t best = 0;
    for (const auto &t : tasklets_)
        best = std::max(best, t->clock());
    return best;
}

} // namespace pim::sim
