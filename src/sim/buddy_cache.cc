#include "sim/buddy_cache.hh"

#include "util/logging.hh"

namespace pim::sim {

BuddyCache::BuddyCache(const BuddyCacheConfig &cfg)
    : cfg_(cfg), entries_(cfg.entries)
{
    PIM_ASSERT(cfg.entries > 0, "buddy cache needs at least one entry");
}

void
BuddyCache::init()
{
    for (auto &e : entries_)
        e = Entry{};
    useClock_ = 0;
}

int
BuddyCache::find(MramAddr addr) const
{
    for (size_t i = 0; i < entries_.size(); ++i) {
        if (entries_[i].valid && entries_[i].addr == addr)
            return static_cast<int>(i);
    }
    return -1;
}

bool
BuddyCache::lookup(MramAddr addr)
{
    ++stats_.lookups;
    const int idx = find(addr);
    if (idx >= 0) {
        ++stats_.hits;
        return true;
    }
    ++stats_.misses;
    return false;
}

uint32_t
BuddyCache::read(MramAddr addr)
{
    const int idx = find(addr);
    PIM_ASSERT(idx >= 0, "read_bc of non-resident addr ", addr);
    entries_[idx].lastUse = ++useClock_;
    return entries_[idx].value;
}

void
BuddyCache::write(MramAddr addr, uint32_t value)
{
    const int idx = find(addr);
    PIM_ASSERT(idx >= 0, "write_bc of non-resident addr ", addr);
    entries_[idx].value = value;
    entries_[idx].dirty = true;
    entries_[idx].lastUse = ++useClock_;
}

std::optional<std::pair<MramAddr, uint32_t>>
BuddyCache::insert(MramAddr addr, uint32_t value, bool dirty)
{
    PIM_ASSERT(find(addr) < 0, "insert of already-resident addr ", addr);
    // Prefer an invalid slot; otherwise evict true-LRU.
    int victim = -1;
    for (size_t i = 0; i < entries_.size(); ++i) {
        if (!entries_[i].valid) {
            victim = static_cast<int>(i);
            break;
        }
    }
    std::optional<std::pair<MramAddr, uint32_t>> writeback;
    if (victim < 0) {
        uint64_t oldest = UINT64_MAX;
        for (size_t i = 0; i < entries_.size(); ++i) {
            if (entries_[i].lastUse < oldest) {
                oldest = entries_[i].lastUse;
                victim = static_cast<int>(i);
            }
        }
        ++stats_.evictions;
        if (entries_[victim].dirty) {
            ++stats_.dirtyEvictions;
            writeback = {entries_[victim].addr, entries_[victim].value};
        }
    }
    entries_[victim] = Entry{true, dirty, addr, value, ++useClock_};
    return writeback;
}

std::vector<std::pair<MramAddr, uint32_t>>
BuddyCache::flushDirty()
{
    std::vector<std::pair<MramAddr, uint32_t>> out;
    for (auto &e : entries_) {
        if (e.valid && e.dirty) {
            out.emplace_back(e.addr, e.value);
            e.dirty = false;
        }
    }
    return out;
}

bool
BuddyCache::contains(MramAddr addr) const
{
    return find(addr) >= 0;
}

} // namespace pim::sim
