/**
 * @file
 * Host<->PIM data transfer cost model (the pimMemcpy() of Fig 5,
 * implemented on real hardware with dpu_push_xfer()). UPMEM transfers
 * are staged through the memory bus by the host; aggregate bandwidth
 * grows with the number of DPUs addressed in one call until the bus
 * saturates. Constants follow the published UPMEM characterization
 * (PrIM: ~0.3-0.6 GB/s per rank, saturating around 6-7 GB/s system-wide
 * for parallel transfers).
 */

#ifndef PIM_SIM_TRANSFER_MODEL_HH
#define PIM_SIM_TRANSFER_MODEL_HH

#include <cstdint>

namespace pim::sim {

/** Transfer engine parameters. */
struct TransferConfig
{
    /** Fixed software overhead per transfer call (driver + staging). */
    double launchLatencySec = 20e-6;
    /** Single-DPU streaming bandwidth, bytes/s. */
    double perDpuBytesPerSec = 600e6;
    /** System-wide saturation bandwidth, bytes/s. */
    double peakBytesPerSec = 6.5e9;
};

/** Computes host<->PIM copy times for per-DPU payloads. */
class TransferModel
{
  public:
    explicit TransferModel(const TransferConfig &cfg = TransferConfig{});

    /**
     * Time to copy @p bytes_per_dpu to/from each of @p num_dpus DPUs in
     * one batched transfer call.
     */
    double seconds(uint64_t bytes_per_dpu, unsigned num_dpus) const;

    /**
     * Time for one batched scatter/gather call moving @p total_bytes
     * spread (possibly unevenly) over @p num_dpus DPUs. Identical to
     * seconds() when the payload is uniform.
     */
    double secondsTotal(uint64_t total_bytes, unsigned num_dpus) const;

    /** Effective aggregate bandwidth for a batch of @p num_dpus DPUs. */
    double bandwidth(unsigned num_dpus) const;

    const TransferConfig &config() const { return cfg_; }

  private:
    TransferConfig cfg_;
};

} // namespace pim::sim

#endif // PIM_SIM_TRANSFER_MODEL_HH
