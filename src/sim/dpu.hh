/**
 * @file
 * One DRAM Processing Unit (DPU): the bank-level PIM core the paper
 * targets. Owns the backing storage for WRAM and MRAM, the hardware
 * buddy cache model, traffic statistics, and a simple WRAM budget
 * accountant used by the allocators to prove they fit in the scratchpad.
 *
 * DPUs never share state (each has its own address space), so multi-DPU
 * experiments simulate DPUs independently and reduce across them.
 */

#ifndef PIM_SIM_DPU_HH
#define PIM_SIM_DPU_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/buddy_cache.hh"
#include "sim/config.hh"
#include "sim/memory.hh"
#include "sim/tasklet.hh"
#include "sim/types.hh"

#ifdef PIM_TRACE_SIM
namespace pim::trace {
class Recorder;
}
#endif

namespace pim::sim {

/** A single simulated DPU. */
class Dpu
{
  public:
    explicit Dpu(const DpuConfig &cfg = DpuConfig{});

    /** Immutable hardware parameters. */
    const DpuConfig &config() const { return cfg_; }

    /** Local DRAM bank. */
    FlatMemory &mram() { return mram_; }
    const FlatMemory &mram() const { return mram_; }

    /** Scratchpad. */
    FlatMemory &wram() { return wram_; }

    /** Hardware buddy cache (PIM-malloc-HW/SW only). */
    BuddyCache &buddyCache() { return buddyCache_; }

    /** Aggregate DMA traffic since the last resetStats(). */
    TrafficStats &traffic() { return traffic_; }
    const TrafficStats &traffic() const { return traffic_; }

    /**
     * Launch @p num_tasklets tasklets all running @p body and simulate to
     * completion. Returns the makespan in cycles.
     */
    uint64_t run(unsigned num_tasklets,
                 const std::function<void(Tasklet &)> &body);

    /** Launch with one distinct body per tasklet. */
    uint64_t runBodies(std::vector<std::function<void(Tasklet &)>> bodies);

    /** Makespan of the most recent run, in cycles. */
    uint64_t lastElapsedCycles() const { return lastElapsed_; }

    /** Simulation events (cycle charges) of the most recent run. */
    uint64_t lastSimEvents() const { return lastSimEvents_; }

    /** Makespan of the most recent run, in seconds. */
    double
    lastElapsedSeconds() const
    {
        return cfg_.cyclesToSeconds(lastElapsed_);
    }

    /**
     * Cycle breakdown of the most recent run aggregated over tasklets.
     * Tasklets that finish before the makespan contribute the difference
     * as Idle(Etc), so fractions reflect occupancy of the whole launch.
     */
    const CycleBreakdown &lastBreakdown() const { return lastBreakdown_; }

    /**
     * Reserve @p bytes of WRAM for a software structure (thread caches,
     * metadata buffers). Panics if the scratchpad budget is exceeded —
     * this is how the simulation enforces the paper's 64 KB constraint.
     * Returns the WRAM offset of the reservation.
     */
    uint32_t wramReserve(uint32_t bytes);

    /** WRAM bytes currently reserved. */
    uint32_t wramUsed() const { return wramUsed_; }

    /** Release all WRAM reservations (between experiments). */
    void wramReset() { wramUsed_ = 0; }

    /** Clear traffic counters and buddy-cache statistics. */
    void resetStats();

#ifdef PIM_TRACE_SIM
    /**
     * Per-tasklet tracing hook (compiled out with -DPIM_TRACE_SIM=OFF):
     * while a recorder is attached, every run()/runBodies() records one
     * span per tasklet on the custom lane "dpu<index>/t<k>", covering
     * that tasklet's virtual clock. Successive runs stack on this DPU's
     * own local timeline (each run starts where the previous makespan
     * ended). The work happens once per launch, after the event loop —
     * the tasklet hot path is untouched.
     */
    void
    attachTraceRecorder(trace::Recorder *rec, unsigned global_index = 0)
    {
        traceRec_ = rec;
        traceGlobal_ = global_index;
    }

    /** Restart the local trace timeline at @p seconds. */
    void setTraceOrigin(double seconds) { traceOrigin_ = seconds; }
#endif

    /**
     * Return this DPU's touched MRAM/WRAM pages to the OS (contents are
     * lost; statistics and the last run's results survive). One-shot
     * reductions call this after harvesting a DPU's outcome so peak
     * memory tracks the in-flight workers, not the whole system.
     */
    void reclaimMemory()
    {
        mram_.reset();
        wram_.reset();
    }

    /**
     * Bind this DPU's MRAM and WRAM pages to the NUMA node of the
     * calling thread (best-effort; see FlatMemory::bindToCallingThread).
     * PimSystem runs this on each DPU's owning pool worker when
     * PIM_SIM_AFFINITY pins workers to cores.
     */
    bool
    bindMemoryToCallingThread()
    {
        const bool m = mram_.bindToCallingThread();
        const bool w = wram_.bindToCallingThread();
        return m || w;
    }

  private:
    DpuConfig cfg_;
    FlatMemory mram_;
    FlatMemory wram_;
    BuddyCache buddyCache_;
    TrafficStats traffic_;
    uint64_t lastElapsed_ = 0;
    uint64_t lastSimEvents_ = 0;
    CycleBreakdown lastBreakdown_{};
    uint32_t wramUsed_ = 0;
#ifdef PIM_TRACE_SIM
    trace::Recorder *traceRec_ = nullptr;
    unsigned traceGlobal_ = 0;
    double traceOrigin_ = 0.0;
#endif
};

} // namespace pim::sim

#endif // PIM_SIM_DPU_HH
