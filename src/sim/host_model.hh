/**
 * @file
 * Analytic model of the host CPU used by the "Host-Executed" design
 * points of the design-space exploration (Table I / Fig 6). The paper's
 * host is an Intel Xeon Gold 5222 running the buddy algorithm under
 * pthreads; we model it as `threads` workers retiring `ipc` instructions
 * per cycle at `clockGhz`.
 */

#ifndef PIM_SIM_HOST_MODEL_HH
#define PIM_SIM_HOST_MODEL_HH

#include <cstdint>

namespace pim::sim {

/** Host CPU parameters. */
struct HostConfig
{
    /** Core clock in GHz (Xeon Gold 5222: 3.8 GHz boost). */
    double clockGhz = 3.8;
    /** Sustained IPC on the pointer-chasing buddy traversal. */
    double ipc = 1.5;
    /** Worker threads available to the pthreads parallel-for. */
    unsigned threads = 16;
};

/** Converts host instruction counts to wall-clock seconds. */
class HostModel
{
  public:
    explicit HostModel(const HostConfig &cfg = HostConfig{});

    /**
     * Time to execute @p tasks independent tasks of
     * @p instrs_per_task instructions each, parallelized across the
     * host's worker threads (ceil-div load balancing).
     */
    double seconds(uint64_t tasks, uint64_t instrs_per_task) const;

    /** Time for a single serial instruction stream. */
    double serialSeconds(uint64_t instrs) const;

    const HostConfig &config() const { return cfg_; }

  private:
    HostConfig cfg_;
};

} // namespace pim::sim

#endif // PIM_SIM_HOST_MODEL_HH
