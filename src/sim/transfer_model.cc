#include "sim/transfer_model.hh"

#include <algorithm>

#include "util/logging.hh"

namespace pim::sim {

TransferModel::TransferModel(const TransferConfig &cfg) : cfg_(cfg)
{
    PIM_ASSERT(cfg.perDpuBytesPerSec > 0 && cfg.peakBytesPerSec > 0,
               "invalid transfer config");
}

double
TransferModel::bandwidth(unsigned num_dpus) const
{
    return std::min(cfg_.peakBytesPerSec,
                    cfg_.perDpuBytesPerSec * static_cast<double>(num_dpus));
}

double
TransferModel::seconds(uint64_t bytes_per_dpu, unsigned num_dpus) const
{
    if (num_dpus == 0 || bytes_per_dpu == 0)
        return 0.0;
    const double total =
        static_cast<double>(bytes_per_dpu) * static_cast<double>(num_dpus);
    return cfg_.launchLatencySec + total / bandwidth(num_dpus);
}

double
TransferModel::secondsTotal(uint64_t total_bytes, unsigned num_dpus) const
{
    if (num_dpus == 0 || total_bytes == 0)
        return 0.0;
    return cfg_.launchLatencySec
        + static_cast<double>(total_bytes) / bandwidth(num_dpus);
}

} // namespace pim::sim
