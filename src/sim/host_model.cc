#include "sim/host_model.hh"

#include "util/logging.hh"

namespace pim::sim {

HostModel::HostModel(const HostConfig &cfg) : cfg_(cfg)
{
    PIM_ASSERT(cfg.clockGhz > 0 && cfg.ipc > 0 && cfg.threads > 0,
               "invalid host config");
}

double
HostModel::seconds(uint64_t tasks, uint64_t instrs_per_task) const
{
    if (tasks == 0)
        return 0.0;
    const uint64_t waves = (tasks + cfg_.threads - 1) / cfg_.threads;
    return serialSeconds(waves * instrs_per_task);
}

double
HostModel::serialSeconds(uint64_t instrs) const
{
    return static_cast<double>(instrs) / (cfg_.ipc * cfg_.clockGhz * 1e9);
}

} // namespace pim::sim
