/**
 * @file
 * Hand-rolled assembly fiber backend (Linux x86-64 / aarch64). The
 * actual switch is pim_fiber_jump in fiber_asm_<arch>.S: save the
 * callee-saved registers, publish the stack pointer, adopt the target's,
 * restore, return — no syscalls, unlike glibc swapcontext which takes
 * two rt_sigprocmask round trips per switch.
 *
 * First entry into a fiber works by seeding the private stack with a
 * frame whose return address is pim_fiber_trampoline; the trampoline
 * receives the Fiber* (passed through the jump's arg register) and calls
 * pim_fiber_entry, which runs the body.
 *
 * Under AddressSanitizer every switch is bracketed with
 * __sanitizer_start_switch_fiber / __sanitizer_finish_switch_fiber so
 * ASan retargets its fake-stack bookkeeping to the new stack. The
 * invariant: whoever jumps INTO a fiber first records where that
 * fiber's yield/finish should switch back to (resume() computes the
 * current stack's bounds; switchTo() propagates its own caller bounds),
 * so arrival sites never have to guess.
 */

#include "sim/fiber.hh"

#include "util/logging.hh"

#if defined(PIM_SIM_FIBER_UCONTEXT)
#error "fiber_asm.cc compiled with PIM_SIM_FIBER_UCONTEXT"
#endif

#if !defined(__x86_64__) && !defined(__aarch64__)
#error "no asm fiber port for this architecture; build with -DPIM_SIM_FIBER_UCONTEXT=ON"
#endif

#if PIM_SIM_FIBER_ASAN
#include <pthread.h>
#include <sanitizer/common_interface_defs.h>
#endif

extern "C" {

/**
 * Switch contexts: store the current stack pointer (pointing at a frame
 * of saved callee-saved registers) to *save_sp, adopt restore_sp, and
 * return @p arg in the resumed context.
 */
void *pim_fiber_jump(void **save_sp, void *restore_sp, void *arg);

/** First-entry thunk whose address seeds a fresh fiber stack. */
void pim_fiber_trampoline();

} // extern "C"

namespace pim::sim {

namespace {

/** The fiber currently executing on this thread, if any. */
thread_local Fiber *tl_current = nullptr;

/** Bytes pim_fiber_jump pops when resuming a context: the callee-saved
 *  register frame plus the return address (see fiber_asm_<arch>.S). */
#if defined(__x86_64__)
constexpr size_t kFrameBytes = 6 * 8 + 8;
#elif defined(__aarch64__)
constexpr size_t kFrameBytes = 160;
#endif

} // namespace

const char *
Fiber::backendName()
{
#if defined(__x86_64__)
    return "asm-x86_64";
#else
    return "asm-aarch64";
#endif
}

void
Fiber::ensureStarted()
{
    if (started_)
        return;
    started_ = true;
    const auto base = reinterpret_cast<uintptr_t>(stack_.get());
    /*
     * x86-64: the ABI fixes rsp = 8 (mod 16) at a function's first
     * instruction, so a saved frame's base must land the trampoline's
     * `call` on a 16-byte boundary: align the stack top to 16 and place
     * the 56-byte frame directly below it. aarch64 keeps sp 16-aligned
     * always, and kFrameBytes = 160 preserves that.
     */
    uintptr_t top = (base + stackBytes_) & ~static_cast<uintptr_t>(15);
    auto *slots = reinterpret_cast<void **>(top - kFrameBytes);
    for (size_t i = 0; i < kFrameBytes / sizeof(void *); ++i)
        slots[i] = nullptr;
#if defined(__x86_64__)
    // Slot 6 is the frame's return address (after r15..rbp).
    slots[6] = reinterpret_cast<void *>(&pim_fiber_trampoline);
#else
    // Slot 11 is the x30 (link register) save slot at offset 88.
    slots[11] = reinterpret_cast<void *>(&pim_fiber_trampoline);
#endif
    sp_ = slots;
}

#if PIM_SIM_FIBER_ASAN
/**
 * Record, on the fiber about to be resumed, the bounds of the stack the
 * resuming code is executing on (a fiber's private stack when nested,
 * else the host thread's stack), so the fiber's yield/finish can
 * annotate the switch back.
 */
void
Fiber::noteResumerStack()
{
    if (Fiber *cur = tl_current) {
        callerStackBottom_ = cur->stack_.get();
        callerStackSize_ = cur->stackBytes_;
        return;
    }
    thread_local const void *thread_bottom = nullptr;
    thread_local size_t thread_size = 0;
    if (thread_bottom == nullptr) {
        pthread_attr_t attr;
        if (pthread_getattr_np(pthread_self(), &attr) != 0)
            PIM_PANIC("pthread_getattr_np failed");
        void *addr = nullptr;
        size_t sz = 0;
        pthread_attr_getstack(&attr, &addr, &sz);
        pthread_attr_destroy(&attr);
        thread_bottom = addr;
        thread_size = sz;
    }
    callerStackBottom_ = thread_bottom;
    callerStackSize_ = thread_size;
}
#endif // PIM_SIM_FIBER_ASAN

void
Fiber::run()
{
#if PIM_SIM_FIBER_ASAN
    // Complete the switch the resumer started (no fake stack yet: this
    // context has never left).
    __sanitizer_finish_switch_fiber(nullptr, nullptr, nullptr);
#endif
    body_();
    finished_ = true;
    tl_current = nullptr;
#if PIM_SIM_FIBER_ASAN
    // Leaving this fiber for good: nullptr destroys its fake stack.
    __sanitizer_start_switch_fiber(nullptr, callerStackBottom_,
                                   callerStackSize_);
#endif
    void *dead_sp;
    pim_fiber_jump(&dead_sp, callerSp_, nullptr);
    PIM_PANIC("resumed a finished fiber");
}

void
Fiber::resume()
{
    PIM_ASSERT(!finished_, "cannot resume a finished fiber");
    ensureStarted();
#if PIM_SIM_FIBER_ASAN
    noteResumerStack();
#endif
    Fiber *previous = tl_current;
    tl_current = this;
#if PIM_SIM_FIBER_ASAN
    void *fake = nullptr;
    __sanitizer_start_switch_fiber(&fake, stack_.get(), stackBytes_);
#endif
    pim_fiber_jump(&callerSp_, sp_, this);
#if PIM_SIM_FIBER_ASAN
    __sanitizer_finish_switch_fiber(fake, nullptr, nullptr);
#endif
    tl_current = previous;
}

void
Fiber::switchTo(Fiber &next)
{
    PIM_ASSERT(tl_current == this, "switchTo outside the running fiber");
    PIM_ASSERT(!next.finished_, "cannot switch to a finished fiber");
    // Hand the resume linkage to `next`: its eventual yield or finish
    // returns to whoever resume()d this chain, not to this fiber.
    next.callerSp_ = callerSp_;
#if PIM_SIM_FIBER_ASAN
    next.callerStackBottom_ = callerStackBottom_;
    next.callerStackSize_ = callerStackSize_;
#endif
    next.ensureStarted();
    tl_current = &next;
#if PIM_SIM_FIBER_ASAN
    __sanitizer_start_switch_fiber(&asanFakeStack_, next.stack_.get(),
                                   next.stackBytes_);
#endif
    pim_fiber_jump(&sp_, next.sp_, &next);
#if PIM_SIM_FIBER_ASAN
    __sanitizer_finish_switch_fiber(asanFakeStack_, nullptr, nullptr);
#endif
    // tl_current was restored by whoever switched back into us.
}

void
Fiber::yield()
{
    Fiber *self = tl_current;
    PIM_ASSERT(self != nullptr, "Fiber::yield outside a fiber");
#if PIM_SIM_FIBER_ASAN
    __sanitizer_start_switch_fiber(&self->asanFakeStack_,
                                   self->callerStackBottom_,
                                   self->callerStackSize_);
#endif
    pim_fiber_jump(&self->sp_, self->callerSp_, nullptr);
#if PIM_SIM_FIBER_ASAN
    __sanitizer_finish_switch_fiber(self->asanFakeStack_, nullptr, nullptr);
#endif
}

} // namespace pim::sim

extern "C" void
pim_fiber_entry(void *fiber)
{
    static_cast<pim::sim::Fiber *>(fiber)->run();
}
