/**
 * @file
 * Portable ucontext fiber backend. Each switch goes through glibc
 * swapcontext, which performs two rt_sigprocmask syscalls per direction;
 * the asm backend avoids that entirely. This backend is kept as the
 * fallback for platforms without an asm port and as the reference
 * implementation for differential testing (CI builds one leg with it).
 */

#include "sim/fiber.hh"

#include "util/logging.hh"

#if !defined(PIM_SIM_FIBER_UCONTEXT)
#error "fiber_ucontext.cc compiled without PIM_SIM_FIBER_UCONTEXT"
#endif

namespace pim::sim {

namespace {

/** The fiber currently executing on this thread, if any. */
thread_local Fiber *tl_current = nullptr;

} // namespace

const char *
Fiber::backendName()
{
    return "ucontext";
}

void
Fiber::trampoline(unsigned hi, unsigned lo)
{
    auto *self = reinterpret_cast<Fiber *>(
        (static_cast<uintptr_t>(hi) << 32) | static_cast<uintptr_t>(lo));
    self->run();
}

void
Fiber::run()
{
    body_();
    finished_ = true;
    // Return to the resumer; the fiber must never fall off the end of
    // its context, so swap explicitly.
    Fiber *self = this;
    tl_current = nullptr;
    swapcontext(&self->context_, &self->caller_);
    PIM_PANIC("resumed a finished fiber");
}

void
Fiber::ensureStarted()
{
    if (started_)
        return;
    started_ = true;
    if (getcontext(&context_) != 0)
        PIM_PANIC("getcontext failed");
    context_.uc_stack.ss_sp = stack_.get();
    context_.uc_stack.ss_size = stackBytes_;
    context_.uc_link = nullptr;
    const auto ptr = reinterpret_cast<uintptr_t>(this);
    makecontext(&context_, reinterpret_cast<void (*)()>(&trampoline), 2,
                static_cast<unsigned>(ptr >> 32),
                static_cast<unsigned>(ptr & 0xffffffffu));
}

void
Fiber::resume()
{
    PIM_ASSERT(!finished_, "cannot resume a finished fiber");
    ensureStarted();
    Fiber *previous = tl_current;
    tl_current = this;
    swapcontext(&caller_, &context_);
    tl_current = previous;
}

void
Fiber::switchTo(Fiber &next)
{
    PIM_ASSERT(tl_current == this, "switchTo outside the running fiber");
    PIM_ASSERT(!next.finished_, "cannot switch to a finished fiber");
    // Hand the resume linkage to `next`: its eventual yield or finish
    // returns to whoever resume()d this chain, not to this fiber.
    next.caller_ = caller_;
    next.ensureStarted();
    tl_current = &next;
    swapcontext(&context_, &next.context_);
    // tl_current was restored by whoever switched back into us.
}

void
Fiber::yield()
{
    Fiber *self = tl_current;
    PIM_ASSERT(self != nullptr, "Fiber::yield outside a fiber");
    swapcontext(&self->context_, &self->caller_);
}

} // namespace pim::sim
