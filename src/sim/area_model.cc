#include "sim/area_model.hh"

#include <cmath>

namespace pim::sim {

namespace {

// 32 nm logic constants, calibrated to CACTI 7.0 CAM estimates for small
// fully-associative arrays. Bit cells are a small fraction of the total;
// the comparators, match lines, and I/O periphery dominate at this size.
constexpr double kCamBitAreaUm2 = 0.35;      // CAM cell (2x SRAM 6T)
constexpr double kPeripheryAreaUm2 = 1500.0; // sense amps, decode, I/O
constexpr double kPerEntryPeripheryUm2 = 24.0;
constexpr double kTagBits = 32.0;

constexpr double kDynamicPjPerAccess = 3.3;  // match-line + read
constexpr double kLeakageMwPerKbit = 0.9;
constexpr double kAccessesPerSecond = 1.2e9; // worst-case duty at 350 MHz
                                             // with pipelined lookups

constexpr double kBaseDelayNs = 0.22;        // wordline + match at 32 nm
constexpr double kDelayPerEntryNs = 0.004;

} // namespace

AreaModel::AreaModel(Scaling scaling) : scaling_(scaling) {}

HardwareOverheads
AreaModel::estimate(const BuddyCacheConfig &cfg) const
{
    const double bits_per_entry = kTagBits + 8.0 * cfg.bytesPerEntry + 2.0;
    const double total_bits = bits_per_entry * cfg.entries;

    const double logic_area_um2 = total_bits * kCamBitAreaUm2
        + kPeripheryAreaUm2 + kPerEntryPeripheryUm2 * cfg.entries;
    const double logic_area_mm2 = logic_area_um2 * 1e-6;

    const double dynamic_mw =
        kDynamicPjPerAccess * kAccessesPerSecond * 1e-9
        * (static_cast<double>(cfg.entries) / 16.0);
    const double leakage_mw = kLeakageMwPerKbit * total_bits / 1024.0;
    // Power in the DRAM process is comparable (lower leakage, higher
    // dynamic energy); the paper reports the scaled total directly.
    const double power_mw = dynamic_mw + leakage_mw;

    const double logic_delay_ns =
        kBaseDelayNs + kDelayPerEntryNs * cfg.entries;

    HardwareOverheads out;
    out.logicAreaMm2 = logic_area_mm2;
    out.areaMm2 = logic_area_mm2 * scaling_.areaFactor;
    out.powerMw = power_mw;
    out.accessNs = logic_delay_ns * scaling_.delayFactor;
    out.cyclesAt350Mhz = out.accessNs / (1000.0 / 350.0);
    return out;
}

} // namespace pim::sim
