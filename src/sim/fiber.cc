/**
 * @file
 * Backend-independent Fiber pieces; the context-switch machinery itself
 * lives in fiber_asm.cc / fiber_asm_*.S or fiber_ucontext.cc (one of
 * which is compiled in, selected by CMake).
 */

#include "sim/fiber.hh"

#include "util/logging.hh"

namespace pim::sim {

Fiber::Fiber(std::function<void()> body, size_t stack_bytes)
    : body_(std::move(body)),
      stack_(new uint8_t[stack_bytes]),
      stackBytes_(stack_bytes)
{
    PIM_ASSERT(body_ != nullptr, "fiber requires a body");
    PIM_ASSERT(stack_bytes >= 16 * 1024, "fiber stack too small");
}

} // namespace pim::sim
