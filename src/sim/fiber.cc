#include "sim/fiber.hh"

#include "util/logging.hh"

namespace pim::sim {

namespace {

/** The fiber currently executing on this thread, if any. */
thread_local Fiber *tl_current = nullptr;

} // namespace

Fiber::Fiber(std::function<void()> body, size_t stack_bytes)
    : body_(std::move(body)), stack_(stack_bytes)
{
    PIM_ASSERT(body_ != nullptr, "fiber requires a body");
    PIM_ASSERT(stack_bytes >= 16 * 1024, "fiber stack too small");
}

void
Fiber::trampoline(unsigned hi, unsigned lo)
{
    auto *self = reinterpret_cast<Fiber *>(
        (static_cast<uintptr_t>(hi) << 32) | static_cast<uintptr_t>(lo));
    self->run();
}

void
Fiber::run()
{
    body_();
    finished_ = true;
    // Return to the resumer; the fiber must never fall off the end of
    // its context, so swap explicitly.
    Fiber *self = this;
    tl_current = nullptr;
    swapcontext(&self->context_, &self->caller_);
    PIM_PANIC("resumed a finished fiber");
}

void
Fiber::resume()
{
    PIM_ASSERT(!finished_, "cannot resume a finished fiber");
    if (!started_) {
        started_ = true;
        if (getcontext(&context_) != 0)
            PIM_PANIC("getcontext failed");
        context_.uc_stack.ss_sp = stack_.data();
        context_.uc_stack.ss_size = stack_.size();
        context_.uc_link = nullptr;
        const auto ptr = reinterpret_cast<uintptr_t>(this);
        makecontext(&context_, reinterpret_cast<void (*)()>(&trampoline), 2,
                    static_cast<unsigned>(ptr >> 32),
                    static_cast<unsigned>(ptr & 0xffffffffu));
    }
    Fiber *previous = tl_current;
    tl_current = this;
    swapcontext(&caller_, &context_);
    tl_current = previous;
}

void
Fiber::yield()
{
    Fiber *self = tl_current;
    PIM_ASSERT(self != nullptr, "Fiber::yield outside a fiber");
    swapcontext(&self->context_, &self->caller_);
}

} // namespace pim::sim
