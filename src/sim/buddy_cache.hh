/**
 * @file
 * Hardware buddy cache model (Section IV-B of the paper): a small
 * fully-associative CAM, one per DPU, that caches 4-byte words of the
 * buddy allocator's packed metadata array. Managed with true LRU and a
 * write-back policy; hits cost one PIM core cycle.
 *
 * The four ISA extensions map to methods here:
 *   init_bc    -> init()
 *   lookup_bc  -> lookup()
 *   read_bc    -> read()
 *   write_bc   -> write() / insert()
 */

#ifndef PIM_SIM_BUDDY_CACHE_HH
#define PIM_SIM_BUDDY_CACHE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/config.hh"
#include "sim/types.hh"

namespace pim::sim {

/** Statistics exported by the buddy cache. */
struct BuddyCacheStats
{
    uint64_t lookups = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t dirtyEvictions = 0;

    /** Hit rate in [0,1]; 0 when no lookups happened. */
    double
    hitRate() const
    {
        return lookups ? static_cast<double>(hits)
            / static_cast<double>(lookups) : 0.0;
    }
};

/** The per-DPU CAM-based metadata cache. */
class BuddyCache
{
  public:
    explicit BuddyCache(const BuddyCacheConfig &cfg = BuddyCacheConfig{});

    /** Invalidate all entries (the init_bc instruction). */
    void init();

    /**
     * Tag lookup (the lookup_bc instruction). Counts toward hit/miss
     * statistics. @return true if @p addr is resident.
     */
    bool lookup(MramAddr addr);

    /**
     * Read the cached word for @p addr (the read_bc instruction).
     * @pre a preceding lookup(addr) returned true.
     */
    uint32_t read(MramAddr addr);

    /**
     * Update the cached word for @p addr in place and mark it dirty.
     * @pre the word is resident.
     */
    void write(MramAddr addr, uint32_t value);

    /**
     * Insert a word fetched from DRAM, evicting the LRU entry if the
     * cache is full (the write_bc fill path).
     * @return the evicted (addr, value) pair if the victim was dirty and
     *         must be written back to DRAM, std::nullopt otherwise.
     */
    std::optional<std::pair<MramAddr, uint32_t>>
    insert(MramAddr addr, uint32_t value, bool dirty);

    /**
     * Flush all dirty entries; returns them so the caller can charge the
     * write-back DMA traffic. Used when an allocator is torn down.
     */
    std::vector<std::pair<MramAddr, uint32_t>> flushDirty();

    /** True if @p addr is resident (no statistics side effects). */
    bool contains(MramAddr addr) const;

    /** Statistics accessors. */
    const BuddyCacheStats &stats() const { return stats_; }
    void resetStats() { stats_ = BuddyCacheStats{}; }

    /** Configuration. */
    const BuddyCacheConfig &config() const { return cfg_; }

  private:
    struct Entry
    {
        bool valid = false;
        bool dirty = false;
        MramAddr addr = 0;
        uint32_t value = 0;
        uint64_t lastUse = 0;
    };

    /** Index of the entry holding @p addr, or -1. */
    int find(MramAddr addr) const;

    BuddyCacheConfig cfg_;
    std::vector<Entry> entries_;
    BuddyCacheStats stats_;
    uint64_t useClock_ = 0;
};

} // namespace pim::sim

#endif // PIM_SIM_BUDDY_CACHE_HH
