/**
 * @file
 * Backing storage for a DPU's memories: the 64 KB scratchpad (WRAM) and
 * the 64 MB local DRAM bank (MRAM). These classes model *storage* only;
 * cycle costs for moving data between them are charged by the Tasklet DMA
 * interface (Tasklet::dmaRead / Tasklet::dmaWrite).
 */

#ifndef PIM_SIM_MEMORY_HH
#define PIM_SIM_MEMORY_HH

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "sim/types.hh"
#include "util/logging.hh"

namespace pim::sim {

/**
 * A flat byte-addressable memory with bounds-checked typed access.
 * Used for both WRAM and MRAM (they differ only in size and in the cost
 * model applied by the caller).
 */
class FlatMemory
{
  public:
    /** @param bytes capacity; @param name used in error messages. */
    FlatMemory(size_t bytes, const char *name);

    /** Capacity in bytes. */
    size_t size() const { return size_; }

    /** Read a trivially-copyable value at @p addr. */
    template <typename T>
    T
    read(MramAddr addr) const
    {
        static_assert(std::is_trivially_copyable_v<T>);
        checkRange(addr, sizeof(T));
        T value;
        std::memcpy(&value, data_.get() + addr, sizeof(T));
        return value;
    }

    /** Write a trivially-copyable value at @p addr. */
    template <typename T>
    void
    write(MramAddr addr, const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        checkRange(addr, sizeof(T));
        std::memcpy(data_.get() + addr, &value, sizeof(T));
    }

    /** Bulk copy out of the memory. */
    void readBytes(MramAddr addr, void *dst, size_t n) const;

    /** Bulk copy into the memory. */
    void writeBytes(MramAddr addr, const void *src, size_t n);

    /** memmove within the memory (used by the CSR shift model). */
    void moveBytes(MramAddr dst, MramAddr src, size_t n);

    /** Zero-fill a range. */
    void fill(MramAddr addr, size_t n, uint8_t value);

    /**
     * Drop the backing store and reallocate it lazily zeroed: returns
     * every touched page to the OS. Contents are lost; capacity is
     * unchanged. Used to bound peak memory when thousands of DPUs are
     * simulated once and reduced (core::simulateDpus and friends).
     */
    void reset();

    /**
     * Best-effort NUMA placement: bind this memory's pages to the node
     * of the CPU the calling thread runs on (util::
     * bindMemoryToCurrentNode). Called by the owning worker of a pinned
     * ParallelDpuEngine so a DPU's bank lives next to the core that
     * simulates it. No-op (returns false) on single-node hosts,
     * non-Linux builds, or when PIM_SIM_NUMA is disabled; simulation
     * results never depend on it.
     */
    bool bindToCallingThread();

    /** Raw pointer for read-only inspection in tests. */
    const uint8_t *raw() const { return data_.get(); }

  private:
    void checkRange(MramAddr addr, size_t n) const;

    /* calloc-backed so large banks are lazily zeroed by the kernel:
     * materializing thousands of 64 MB DPUs costs address space, not
     * page faults, which is what makes full-system (sample = 0)
     * parallel sweeps tractable. */
    std::unique_ptr<uint8_t[], void (*)(void *)> data_;
    size_t size_;
    const char *name_;
};

} // namespace pim::sim

#endif // PIM_SIM_MEMORY_HH
