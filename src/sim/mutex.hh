/**
 * @file
 * Simulated intra-DPU mutex. UPMEM tasklets synchronize through WRAM
 * atomics; a blocked tasklet spins (there is no sleeping), which is
 * exactly the busy-waiting behaviour the paper's Fig 8 measures. Each
 * spin iteration charges BusyWait cycles, so contention shows up in the
 * latency breakdown automatically.
 *
 * Two execution modes produce bit-identical simulations:
 *
 *  - Spin (default): blocked tasklets literally re-check the lock with
 *    bounded exponential backoff; every re-check is one simulation
 *    event (cycle charge), and under heavy contention those events —
 *    and their context switches — dominate host wall time.
 *
 *  - Queue (PIM_SIM_MUTEX=queue): blocked tasklets park on a per-mutex
 *    FIFO wait list and deschedule entirely (they hold no election key
 *    in the scheduler heap). The spin model's re-check times are a
 *    pure function of the arrival clock, the deterministic backoff
 *    sequence (kAttemptInstrs doubling to kMaxSpinInstrs), and the
 *    pipeline width at each re-check (replayed from the scheduler's
 *    finish history), so unlock() advances every parked waiter's
 *    *virtual* spin schedule analytically and wakes exactly the waiter
 *    whose next re-check is the first one after the release — the same
 *    waiter, at the same clock, with the same accumulated BusyWait
 *    cycles the spin model would produce. A woken waiter re-validates
 *    on resume: if a running tasklet grabbed the lock in between
 *    (which the spin model also allows — its re-check would have come
 *    first in (clock, id) election order), it re-parks and its virtual
 *    schedule continues. Allocation outcomes, per-tasklet clocks, and
 *    cycle breakdowns are therefore *exactly* equal across modes; only
 *    the number of real simulation events differs (the elided
 *    re-checks are counted in elidedSpinEvents(), and
 *    chargedEvents + elidedSpinEvents == spin-mode chargedEvents).
 */

#ifndef PIM_SIM_MUTEX_HH
#define PIM_SIM_MUTEX_HH

#include <cstdint>
#include <vector>

#include "sim/tasklet.hh"

namespace pim::sim {

/** Snapshot of a SimMutex's contention counters. */
struct SimMutexStats
{
    uint64_t acquisitions = 0;
    uint64_t contended = 0;
    uint64_t parked = 0;
    uint64_t woken = 0;
    uint64_t elidedSpinEvents = 0;

    void
    merge(const SimMutexStats &o)
    {
        acquisitions += o.acquisitions;
        contended += o.contended;
        parked += o.parked;
        woken += o.woken;
        elidedSpinEvents += o.elidedSpinEvents;
    }
};

/** Test-and-set lock with spin and parked-waiter execution modes. */
class SimMutex
{
  public:
    /** How blocked tasklets wait; see the file header. */
    enum class Mode : uint8_t {
        Spin,  ///< simulate every backoff re-check (cycle-exact reference)
        Queue, ///< park waiters, replay the spin schedule analytically
    };

    /** Instruction cost of one lock attempt (test-and-set + branch). */
    static constexpr uint64_t kAttemptInstrs = 4;
    /** Instruction cost of releasing the lock. */
    static constexpr uint64_t kReleaseInstrs = 2;
    /** Backoff cap: largest instruction batch between re-checks. */
    static constexpr uint64_t kMaxSpinInstrs = 256;

    /** @param mode waiting strategy; defaults to PIM_SIM_MUTEX. */
    explicit SimMutex(Mode mode = defaultMode()) : mode_(mode) {}

    /**
     * Parse a PIM_SIM_MUTEX value: "spin" or unset -> Spin, "queue" ->
     * Queue; anything else is a fatal config error (a typo must not
     * silently select the default, mirroring PIM_SIM_SCHED).
     */
    static Mode modeFromEnv(const char *value);

    /** Process-wide default mode, latched from PIM_SIM_MUTEX once. */
    static Mode defaultMode();

    /** Override the process-wide default (tests and differential runs). */
    static void setDefaultMode(Mode mode);

    /** Re-read PIM_SIM_MUTEX on the next defaultMode() call (tests). */
    static void resetDefaultModeForTesting();

    /** Short mode name for bench metadata ("spin" / "queue"). */
    static const char *modeName(Mode mode);

    /**
     * Acquire the lock. In Spin mode a blocked tasklet busy-waits
     * (BusyWait charges); in Queue mode it parks and is woken with an
     * equivalent lump BusyWait charge. The successful final attempt is
     * always charged as Run.
     */
    void lock(Tasklet &t);

    /** Try to acquire without waiting. @return true on success. */
    bool tryLock(Tasklet &t);

    /**
     * Release the lock. @pre held. In Queue mode this advances every
     * parked waiter's virtual spin schedule past the release point and
     * wakes the waiter whose re-check comes first.
     */
    void unlock(Tasklet &t);

    /** True while some tasklet holds the lock. */
    bool held() const { return locked_; }

    /** The waiting strategy of this mutex instance. */
    Mode mode() const { return mode_; }

    /** Total successful acquisitions. */
    uint64_t acquisitions() const { return acquisitions_; }

    /** Acquisitions that had to wait at least once. */
    uint64_t contendedAcquisitions() const { return contended_; }

    /** Park episodes (Queue mode; a stolen wake re-parks and counts). */
    uint64_t parkedCount() const { return parked_; }

    /** Wake-ups issued by unlock() (Queue mode). */
    uint64_t wokenCount() const { return woken_; }

    /**
     * Spin re-checks that Queue mode accounted analytically instead of
     * simulating (0 in Spin mode). Adding this to the real charged
     * event count reproduces the spin model's event count exactly.
     */
    uint64_t elidedSpinEvents() const { return elided_; }

    /** All counters as one value (bench tables / JSON). */
    SimMutexStats
    statsSnapshot() const
    {
        return {acquisitions_, contended_, parked_, woken_, elided_};
    }

  private:
    /** One parked tasklet's virtual spin-schedule state. */
    struct Waiter
    {
        Tasklet *t;
        /** Election key of the next virtual lock re-check. */
        uint64_t nextCheckKey;
        /** Index into the backoff sequence for the batch *after* that. */
        uint32_t batchIdx;
    };

    /** Backoff batch @p idx in instructions: 4, 8, ..., capped at 256. */
    static uint64_t
    batchInstrs(uint32_t idx)
    {
        return idx >= 6 ? kMaxSpinInstrs : (kAttemptInstrs << idx);
    }

    void lockSpin(Tasklet &t);
    void lockQueue(Tasklet &t);

    /** Append @p t to the wait list, virtually charging one batch. */
    void parkWaiter(Tasklet &t, uint32_t batch_idx);

    Mode mode_;
    bool locked_ = false;
    uint64_t acquisitions_ = 0;
    uint64_t contended_ = 0;
    uint64_t parked_ = 0;
    uint64_t woken_ = 0;
    uint64_t elided_ = 0;
    /** Parked tasklets in arrival order (Queue mode only). */
    std::vector<Waiter> waiters_;
    /**
     * Backoff handoff from unlock() to the woken tasklet's lock()
     * frame, indexed by tasklet id (wakes are one-at-a-time per mutex,
     * and a woken tasklet consumes its slot before the next wake of
     * the same tasklet can happen).
     */
    std::vector<uint32_t> resumeBatchIdx_;
};

} // namespace pim::sim

#endif // PIM_SIM_MUTEX_HH
