/**
 * @file
 * Simulated intra-DPU mutex. UPMEM tasklets synchronize through WRAM
 * atomics; a blocked tasklet spins (there is no sleeping), which is
 * exactly the busy-waiting behaviour the paper's Fig 8 measures. Each
 * spin iteration charges BusyWait cycles, so contention shows up in the
 * latency breakdown automatically.
 */

#ifndef PIM_SIM_MUTEX_HH
#define PIM_SIM_MUTEX_HH

#include <cstdint>

#include "sim/tasklet.hh"

namespace pim::sim {

/** Test-and-set spin lock with acquisition statistics. */
class SimMutex
{
  public:
    /** Instruction cost of one lock attempt (test-and-set + branch). */
    static constexpr uint64_t kAttemptInstrs = 4;
    /** Instruction cost of releasing the lock. */
    static constexpr uint64_t kReleaseInstrs = 2;

    /**
     * Acquire the lock, spinning until available. Spin iterations are
     * charged to the tasklet as BusyWait; the successful final attempt
     * is charged as Run.
     */
    void lock(Tasklet &t);

    /** Try to acquire without spinning. @return true on success. */
    bool tryLock(Tasklet &t);

    /** Release the lock. @pre held. */
    void unlock(Tasklet &t);

    /** True while some tasklet holds the lock. */
    bool held() const { return locked_; }

    /** Total successful acquisitions. */
    uint64_t acquisitions() const { return acquisitions_; }

    /** Acquisitions that had to spin at least once. */
    uint64_t contendedAcquisitions() const { return contended_; }

  private:
    bool locked_ = false;
    uint64_t acquisitions_ = 0;
    uint64_t contended_ = 0;
};

} // namespace pim::sim

#endif // PIM_SIM_MUTEX_HH
