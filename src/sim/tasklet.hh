/**
 * @file
 * The execution context handed to code running "on" a DPU hardware
 * thread. All simulated work flows through this interface: instruction
 * blocks (execute), MRAM DMA (dmaRead/dmaWrite and the typed helpers),
 * and raw stalls. Each charge advances the tasklet's virtual clock; the
 * tasklet yields to the scheduler only when the charge crosses the
 * scheduler-assigned horizon (the point where another tasklet would win
 * the election), so the common uncontended charge is a branch and two
 * adds with no function call — see scheduler.hh for why this is
 * semantics-preserving.
 */

#ifndef PIM_SIM_TASKLET_HH
#define PIM_SIM_TASKLET_HH

#include <cstdint>

#include "sim/types.hh"

namespace pim::sim {

class Dpu;
class TaskletScheduler;

/**
 * One DPU hardware thread. Instances are created and owned by the
 * TaskletScheduler; workload code receives a reference.
 */
class Tasklet
{
  public:
    /** Low bits of the election key reserved for the tasklet id. */
    static constexpr unsigned kIdBits = 5;

    Tasklet(Dpu &dpu, TaskletScheduler &sched, unsigned id);

    Tasklet(const Tasklet &) = delete;
    Tasklet &operator=(const Tasklet &) = delete;

    /**
     * Execute a block of @p instrs instructions. The wall-clock cost is
     * instrs x max(pipelineIssueInterval, activeTasklets) cycles, which
     * models the UPMEM fine-grained multithreaded pipeline: one tasklet
     * alone is bounded by the issue interval, and a full pipeline shares
     * one issue slot per cycle among all active tasklets.
     *
     * @param kind  accounting category (Run for useful work, BusyWait
     *              for lock spinning).
     */
    void
    execute(uint64_t instrs, CycleKind kind = CycleKind::Run)
    {
        if (instrs == 0)
            return;
        const uint64_t width =
            *activeTasklets_ > issueInterval_ ? *activeTasklets_
                                              : issueInterval_;
        charge(instrs * width, kind);
    }

    /** Charge raw cycles without pipeline scaling (e.g. fixed latencies). */
    void
    stall(uint64_t cycles, CycleKind kind)
    {
        if (cycles == 0)
            return;
        charge(cycles, kind);
    }

    /**
     * Charge the cost of one MRAM->WRAM DMA transfer of @p bytes and
     * record the traffic. Time is accounted as Idle(Memory).
     */
    void dmaRead(MramAddr addr, uint32_t bytes,
                 TrafficClass tc = TrafficClass::Data);

    /** WRAM->MRAM counterpart of dmaRead(). */
    void dmaWrite(MramAddr addr, uint32_t bytes,
                  TrafficClass tc = TrafficClass::Data);

    /**
     * Read a value from MRAM, charging a DMA of max(8, sizeof(T)) bytes
     * (the UPMEM DMA engine moves at least 8 bytes).
     */
    template <typename T>
    T mramRead(MramAddr addr, TrafficClass tc = TrafficClass::Data);

    /** Typed MRAM write; see mramRead() for the cost model. */
    template <typename T>
    void mramWrite(MramAddr addr, const T &value,
                   TrafficClass tc = TrafficClass::Data);

    /** Virtual clock of this tasklet, in DPU cycles. */
    uint64_t clock() const { return clockKey_ >> kIdBits; }

    /** Number of simulation events (cycle charges) this tasklet issued. */
    uint64_t simEvents() const { return simEvents_; }

    /** Hardware thread id (0-based). */
    unsigned id() const { return id_; }

    /** The DPU this tasklet runs on. */
    Dpu &dpu() { return dpu_; }

    /** The scheduler owning this tasklet (park/wake, width replay). */
    TaskletScheduler &scheduler() { return sched_; }

    /** True while descheduled via TaskletScheduler::parkCurrent(). */
    bool parked() const { return parked_; }

    /** Per-category cycle totals accumulated so far. */
    const CycleBreakdown &breakdown() const { return breakdown_; }

  private:
    friend class TaskletScheduler;

    /**
     * The hot path of the whole simulator: account @p cycles and yield
     * only when the new clock crosses the scheduler-assigned horizon
     * (i.e. another tasklet would now win the election).
     */
    void
    charge(uint64_t cycles, CycleKind kind)
    {
        clockKey_ += cycles << kIdBits;
        ++simEvents_;
        breakdown_.add(kind, cycles);
        if (clockKey_ > horizonKey_) [[unlikely]]
            yieldNow();
    }

    /** Cold path: suspend back to the scheduler loop. */
    void yieldNow();

    Dpu &dpu_;
    TaskletScheduler &sched_;
    /** Points at the scheduler's live unfinished-tasklet count. */
    const unsigned *activeTasklets_;
    /** Cached DpuConfig::pipelineIssueInterval. */
    uint64_t issueInterval_;
    unsigned id_;
    /**
     * The tasklet's election key: virtual clock in the upper 59 bits,
     * id in the low kIdBits. "(smallest clock, lowest id) wins" is then
     * plain integer order, so the scheduler's heap holds bare uint64
     * keys and the horizon check below is a single compare. Charging
     * cycles adds cycles << kIdBits, leaving the id bits untouched.
     */
    uint64_t clockKey_;
    /**
     * Run-ahead bound, maintained by the scheduler: the election key of
     * the best waiting tasklet. This tasklet keeps running (no context
     * switch) until a charge pushes clockKey_ past it. UINT64_MAX
     * outside the run loop (or for the last unfinished tasklet), so
     * charges never yield there.
     */
    uint64_t horizonKey_ = UINT64_MAX;
    uint64_t simEvents_ = 0;
    /** Set while descheduled (parked mutex waiter); the scheduler
     *  never elects a parked tasklet. */
    bool parked_ = false;
    CycleBreakdown breakdown_{};
};

} // namespace pim::sim

#endif // PIM_SIM_TASKLET_HH
