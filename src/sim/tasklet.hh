/**
 * @file
 * The execution context handed to code running "on" a DPU hardware
 * thread. All simulated work flows through this interface: instruction
 * blocks (execute), MRAM DMA (dmaRead/dmaWrite and the typed helpers),
 * and raw stalls. Each charge advances the tasklet's virtual clock and
 * yields to the scheduler, which interleaves tasklets deterministically.
 */

#ifndef PIM_SIM_TASKLET_HH
#define PIM_SIM_TASKLET_HH

#include <cstdint>

#include "sim/types.hh"

namespace pim::sim {

class Dpu;
class TaskletScheduler;

/**
 * One DPU hardware thread. Instances are created and owned by the
 * TaskletScheduler; workload code receives a reference.
 */
class Tasklet
{
  public:
    Tasklet(Dpu &dpu, TaskletScheduler &sched, unsigned id);

    Tasklet(const Tasklet &) = delete;
    Tasklet &operator=(const Tasklet &) = delete;

    /**
     * Execute a block of @p instrs instructions. The wall-clock cost is
     * instrs x max(pipelineIssueInterval, activeTasklets) cycles, which
     * models the UPMEM fine-grained multithreaded pipeline: one tasklet
     * alone is bounded by the issue interval, and a full pipeline shares
     * one issue slot per cycle among all active tasklets.
     *
     * @param kind  accounting category (Run for useful work, BusyWait
     *              for lock spinning).
     */
    void execute(uint64_t instrs, CycleKind kind = CycleKind::Run);

    /** Charge raw cycles without pipeline scaling (e.g. fixed latencies). */
    void stall(uint64_t cycles, CycleKind kind);

    /**
     * Charge the cost of one MRAM->WRAM DMA transfer of @p bytes and
     * record the traffic. Time is accounted as Idle(Memory).
     */
    void dmaRead(MramAddr addr, uint32_t bytes,
                 TrafficClass tc = TrafficClass::Data);

    /** WRAM->MRAM counterpart of dmaRead(). */
    void dmaWrite(MramAddr addr, uint32_t bytes,
                  TrafficClass tc = TrafficClass::Data);

    /**
     * Read a value from MRAM, charging a DMA of max(8, sizeof(T)) bytes
     * (the UPMEM DMA engine moves at least 8 bytes).
     */
    template <typename T>
    T mramRead(MramAddr addr, TrafficClass tc = TrafficClass::Data);

    /** Typed MRAM write; see mramRead() for the cost model. */
    template <typename T>
    void mramWrite(MramAddr addr, const T &value,
                   TrafficClass tc = TrafficClass::Data);

    /** Virtual clock of this tasklet, in DPU cycles. */
    uint64_t clock() const { return clock_; }

    /** Hardware thread id (0-based). */
    unsigned id() const { return id_; }

    /** The DPU this tasklet runs on. */
    Dpu &dpu() { return dpu_; }

    /** Per-category cycle totals accumulated so far. */
    const CycleBreakdown &breakdown() const { return breakdown_; }

  private:
    friend class TaskletScheduler;

    Dpu &dpu_;
    TaskletScheduler &sched_;
    unsigned id_;
    uint64_t clock_ = 0;
    CycleBreakdown breakdown_{};
};

} // namespace pim::sim

#endif // PIM_SIM_TASKLET_HH
