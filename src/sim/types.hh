/**
 * @file
 * Shared simulator value types: cycle accounting categories, traffic
 * classes, and the per-tasklet cycle breakdown used by the paper's
 * latency-breakdown figures (Fig 8(b), Fig 17(a)).
 */

#ifndef PIM_SIM_TYPES_HH
#define PIM_SIM_TYPES_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace pim::sim {

/** 32-bit address within a DPU's local MRAM bank. */
using MramAddr = uint32_t;

/** Sentinel for "no address" (allocation failure). */
inline constexpr MramAddr kNullAddr = UINT32_MAX;

/**
 * What a block of consumed cycles was spent on. Mirrors the paper's
 * breakdown: Run (useful compute), Busy-waiting (spinning on the
 * allocator mutex), Idle(Memory) (stalled on MRAM DMA), Idle(Etc)
 * (launch/teardown and scheduling gaps).
 */
enum class CycleKind : uint8_t {
    Run = 0,
    BusyWait = 1,
    IdleMemory = 2,
    IdleEtc = 3,
};

/** Number of CycleKind categories. */
inline constexpr size_t kNumCycleKinds = 4;

/** Human-readable name of a CycleKind. */
const char *cycleKindName(CycleKind kind);

/** Per-category cycle totals. */
struct CycleBreakdown
{
    std::array<uint64_t, kNumCycleKinds> cycles{};

    /** Add cycles to one category. */
    void
    add(CycleKind kind, uint64_t n)
    {
        cycles[static_cast<size_t>(kind)] += n;
    }

    /** Cycles in one category. */
    uint64_t
    of(CycleKind kind) const
    {
        return cycles[static_cast<size_t>(kind)];
    }

    /** Sum over all categories. */
    uint64_t
    total() const
    {
        uint64_t t = 0;
        for (auto c : cycles)
            t += c;
        return t;
    }

    /** Fraction of the total spent in one category; 0 if empty. */
    double
    fraction(CycleKind kind) const
    {
        const uint64_t t = total();
        return t ? static_cast<double>(of(kind)) / static_cast<double>(t)
                 : 0.0;
    }

    /** Element-wise accumulate. */
    void
    merge(const CycleBreakdown &other)
    {
        for (size_t i = 0; i < kNumCycleKinds; ++i)
            cycles[i] += other.cycles[i];
    }
};

/**
 * Classification of MRAM<->WRAM DMA traffic, so the benchmarks can report
 * allocator-metadata traffic separately from workload data traffic
 * (Fig 17(d)).
 */
enum class TrafficClass : uint8_t {
    Data = 0,
    Metadata = 1,
};

/** Aggregate DMA traffic counters for one DPU run. */
struct TrafficStats
{
    uint64_t dataReadBytes = 0;
    uint64_t dataWriteBytes = 0;
    uint64_t metadataReadBytes = 0;
    uint64_t metadataWriteBytes = 0;
    uint64_t dmaTransfers = 0;

    /** Total bytes moved in either direction. */
    uint64_t
    totalBytes() const
    {
        return dataReadBytes + dataWriteBytes + metadataReadBytes
            + metadataWriteBytes;
    }

    /** Metadata-only bytes (the Fig 17(d) metric). */
    uint64_t
    metadataBytes() const
    {
        return metadataReadBytes + metadataWriteBytes;
    }

    void
    merge(const TrafficStats &other)
    {
        dataReadBytes += other.dataReadBytes;
        dataWriteBytes += other.dataWriteBytes;
        metadataReadBytes += other.metadataReadBytes;
        metadataWriteBytes += other.metadataWriteBytes;
        dmaTransfers += other.dmaTransfers;
    }
};

} // namespace pim::sim

#endif // PIM_SIM_TYPES_HH
