/**
 * @file
 * DPU hardware configuration, defaulted to the UPMEM-PIM parameters the
 * paper evaluates (Section II-A / Section V): 350 MHz in-order core, up
 * to 24 tasklets sharing a 14-stage "revolver" pipeline with an 11-cycle
 * per-tasklet issue interval, 64 KB WRAM, 64 MB MRAM.
 */

#ifndef PIM_SIM_CONFIG_HH
#define PIM_SIM_CONFIG_HH

#include <cstdint>

namespace pim::sim {

/** Configuration of the per-DPU hardware buddy cache (Section IV-B). */
struct BuddyCacheConfig
{
    /** Number of fully-associative CAM entries (16 x 4 B = 64 B). */
    unsigned entries = 16;
    /** Metadata payload bytes per entry (one packed metadata word). */
    unsigned bytesPerEntry = 4;
    /** Access latency in PIM core cycles (paper: 1 cycle). */
    uint32_t accessCycles = 1;

    /** Total capacity in bytes. */
    unsigned
    capacityBytes() const
    {
        return entries * bytesPerEntry;
    }
};

/** Static hardware parameters of one DPU. */
struct DpuConfig
{
    /** Local DRAM bank (MRAM) capacity. */
    uint32_t mramBytes = 64u << 20;
    /** Scratchpad (WRAM) capacity. */
    uint32_t wramBytes = 64u << 10;
    /** Hardware thread (tasklet) slots. */
    unsigned maxTasklets = 24;
    /**
     * Minimum issue interval of one tasklet in cycles. The UPMEM pipeline
     * dispatches tasklets round-robin; a single tasklet can issue at most
     * one instruction every `pipelineIssueInterval` cycles, and with T >=
     * that many active tasklets the pipeline is saturated and each
     * tasklet issues every T cycles.
     */
    unsigned pipelineIssueInterval = 11;
    /** Core clock in GHz (UPMEM: 350 MHz). */
    double clockGhz = 0.35;
    /** Fixed cycles to set up one MRAM<->WRAM DMA transfer. */
    uint32_t dmaSetupCycles = 64;
    /** Streaming cost per byte of DMA payload. */
    double dmaCyclesPerByte = 0.5;
    /** Hardware buddy cache (only used by PIM-malloc-HW/SW). */
    BuddyCacheConfig buddyCache{};

    /** Convert a cycle count on this DPU to seconds. */
    double
    cyclesToSeconds(uint64_t cycles) const
    {
        return static_cast<double>(cycles) / (clockGhz * 1e9);
    }

    /** Convert a cycle count on this DPU to microseconds. */
    double
    cyclesToMicros(uint64_t cycles) const
    {
        return static_cast<double>(cycles) / (clockGhz * 1e3);
    }
};

} // namespace pim::sim

#endif // PIM_SIM_CONFIG_HH
