/**
 * @file
 * Analytic area/power/timing model for the hardware buddy cache
 * (Section VI-F). The paper evaluates a 16-entry CAM with CACTI 7.0 at
 * a 32 nm logic node, then scales area by 10x and delay by 3x to account
 * for the DRAM process PIM cores are fabricated in. The constants here
 * are calibrated so the default configuration reproduces the paper's
 * reported overheads (0.019 mm^2, 5 mW, < 1 PIM cycle), while still
 * scaling sensibly with entry count for the sensitivity study.
 */

#ifndef PIM_SIM_AREA_MODEL_HH
#define PIM_SIM_AREA_MODEL_HH

#include "sim/config.hh"

namespace pim::sim {

/** Result of one buddy-cache hardware estimate. */
struct HardwareOverheads
{
    double areaMm2 = 0.0;        ///< after DRAM-process scaling
    double powerMw = 0.0;        ///< after DRAM-process scaling
    double accessNs = 0.0;       ///< after DRAM-process scaling
    double logicAreaMm2 = 0.0;   ///< raw 32 nm logic estimate
    double cyclesAt350Mhz = 0.0; ///< accessNs expressed in PIM cycles
};

/** CAM estimator for the buddy cache. */
class AreaModel
{
  public:
    /** Process scaling factors (paper: DRAM ~10x less dense, 3x slower). */
    struct Scaling
    {
        double areaFactor = 10.0;
        double delayFactor = 3.0;
    };

    explicit AreaModel(Scaling scaling);
    AreaModel() : AreaModel(Scaling{}) {}

    /** Estimate hardware overheads for the given cache configuration. */
    HardwareOverheads estimate(const BuddyCacheConfig &cfg) const;

  private:
    Scaling scaling_;
};

} // namespace pim::sim

#endif // PIM_SIM_AREA_MODEL_HH
