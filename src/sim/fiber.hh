/**
 * @file
 * Cooperative user-level fibers built on POSIX ucontext. Each simulated
 * tasklet runs on its own fiber so allocator and workload code can be
 * written as straight-line C++ while the scheduler interleaves tasklets
 * deterministically at cycle-charge boundaries.
 */

#ifndef PIM_SIM_FIBER_HH
#define PIM_SIM_FIBER_HH

#include <ucontext.h>

#include <cstdint>
#include <functional>
#include <vector>

namespace pim::sim {

/**
 * A single cooperatively-scheduled execution context.
 *
 * The owner (scheduler) calls resume(); the fiber body calls
 * Fiber::yield() to suspend back to the owner. When the body returns the
 * fiber becomes finished and further resume() calls are invalid.
 */
class Fiber
{
  public:
    /**
     * @param body   function executed on the fiber's own stack.
     * @param stack_bytes size of the private stack (default 256 KiB,
     *        enough for the deepest buddy-tree recursion plus workloads).
     */
    explicit Fiber(std::function<void()> body,
                   size_t stack_bytes = 256 * 1024);

    Fiber(const Fiber &) = delete;
    Fiber &operator=(const Fiber &) = delete;

    /** Switch from the caller into the fiber. @pre !finished(). */
    void resume();

    /**
     * Suspend the currently running fiber back to its resumer.
     * @pre called from inside a fiber body.
     */
    static void yield();

    /** True once the body function has returned. */
    bool finished() const { return finished_; }

  private:
    static void trampoline(unsigned hi, unsigned lo);
    void run();

    std::function<void()> body_;
    std::vector<uint8_t> stack_;
    ucontext_t context_;
    ucontext_t caller_;
    bool started_ = false;
    bool finished_ = false;
};

} // namespace pim::sim

#endif // PIM_SIM_FIBER_HH
