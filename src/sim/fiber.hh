/**
 * @file
 * Cooperative user-level fibers. Each simulated tasklet runs on its own
 * fiber so allocator and workload code can be written as straight-line
 * C++ while the scheduler interleaves tasklets deterministically at
 * cycle-charge boundaries.
 *
 * Two interchangeable backends implement the same API:
 *
 *  - asm (default on Linux x86-64/aarch64): a hand-rolled register-only
 *    context switch (boost::fcontext-style). It saves exactly the System
 *    V callee-saved state and switches stacks in ~a dozen instructions,
 *    with no syscalls. See fiber_asm.cc / fiber_asm_*.S.
 *
 *  - ucontext (CMake -DPIM_SIM_FIBER_UCONTEXT=ON, and the automatic
 *    fallback on other platforms): portable POSIX swapcontext. Each
 *    switch costs two rt_sigprocmask syscalls in glibc, roughly 20x the
 *    asm backend. Retained for differential testing and portability.
 *    See fiber_ucontext.cc.
 *
 * Scheduling behaviour is backend-independent: the determinism suite
 * asserts identical simulation results under both (CI builds one leg
 * with each).
 */

#ifndef PIM_SIM_FIBER_HH
#define PIM_SIM_FIBER_HH

#if defined(PIM_SIM_FIBER_UCONTEXT)
#include <ucontext.h>
#endif

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

/*
 * AddressSanitizer needs explicit fiber-switch annotations for custom
 * stack switching (__sanitizer_start/finish_switch_fiber). The detection
 * macro lives here so every translation unit including this header
 * agrees on the Fiber class layout (sanitizer flags are applied
 * globally via the pim_sanitizers interface target).
 */
#if defined(__SANITIZE_ADDRESS__)
#define PIM_SIM_FIBER_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PIM_SIM_FIBER_ASAN 1
#endif
#endif
#ifndef PIM_SIM_FIBER_ASAN
#define PIM_SIM_FIBER_ASAN 0
#endif

#if !defined(PIM_SIM_FIBER_UCONTEXT)
namespace pim::sim {
class Fiber;
}
/** Assembly-backend entry point; runs the fiber body (fiber_asm.cc). */
extern "C" void pim_fiber_entry(void *fiber);
#endif

namespace pim::sim {

/**
 * A single cooperatively-scheduled execution context.
 *
 * The owner (scheduler) calls resume(); the fiber body calls
 * Fiber::yield() to suspend back to the owner. When the body returns the
 * fiber becomes finished and further resume() calls are invalid.
 */
class Fiber
{
  public:
    /**
     * @param body   function executed on the fiber's own stack.
     * @param stack_bytes size of the private stack (default 256 KiB,
     *        enough for the deepest buddy-tree recursion plus workloads).
     */
    explicit Fiber(std::function<void()> body,
                   size_t stack_bytes = 256 * 1024);

    Fiber(const Fiber &) = delete;
    Fiber &operator=(const Fiber &) = delete;

    /** Switch from the caller into the fiber. @pre !finished(). */
    void resume();

    /**
     * Suspend the currently running fiber back to its resumer.
     * @pre called from inside a fiber body.
     */
    static void yield();

    /**
     * Suspend the currently running fiber (*this) and transfer control
     * directly to @p next — one context switch instead of the two a
     * yield()-then-resume() round trip through the owner would cost.
     * The resume linkage is propagated: when @p next (or any fiber it
     * in turn switches to) yields or finishes, control returns to the
     * frame that resume()d this chain.
     *
     * @pre called from inside this fiber's body; !next.finished().
     */
    void switchTo(Fiber &next);

    /** True once the body function has returned. */
    bool finished() const { return finished_; }

    /** Name of the compiled-in context-switch backend. */
    static const char *backendName();

  private:
    void run();

    std::function<void()> body_;
    /** Uninitialized private stack (zeroing 256 KiB per fiber would
     *  dominate short launches). */
    std::unique_ptr<uint8_t[]> stack_;
    size_t stackBytes_;
    bool started_ = false;
    bool finished_ = false;

#if defined(PIM_SIM_FIBER_UCONTEXT)
    static void trampoline(unsigned hi, unsigned lo);

    /** Prepare context_ to enter run() on the private stack. */
    void ensureStarted();

    ucontext_t context_;
    ucontext_t caller_;
#else
    friend void ::pim_fiber_entry(void *);

    /** Seed the initial stack frame so the first jump enters run(). */
    void ensureStarted();

    void *sp_ = nullptr;       ///< fiber's saved stack pointer
    void *callerSp_ = nullptr; ///< resumer's saved stack pointer
#endif

#if PIM_SIM_FIBER_ASAN
    void noteResumerStack();

    void *asanFakeStack_ = nullptr;
    const void *callerStackBottom_ = nullptr;
    size_t callerStackSize_ = 0;
#endif
};

} // namespace pim::sim

#endif // PIM_SIM_FIBER_HH
