#include "sim/mutex.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "sim/scheduler.hh"
#include "util/logging.hh"

namespace pim::sim {

namespace {

/** -1 = unset; otherwise a latched SimMutex::Mode. Atomic because
 *  allocators construct mutexes inside parallel multi-DPU launches. */
std::atomic<int> g_default_mode{-1};

/** Election key of @p t's current position (clock in the high bits). */
uint64_t
electionKeyOf(const Tasklet &t)
{
    return (t.clock() << Tasklet::kIdBits) | t.id();
}

} // namespace

SimMutex::Mode
SimMutex::modeFromEnv(const char *value)
{
    if (value == nullptr || *value == '\0'
        || std::strcmp(value, "spin") == 0)
        return Mode::Spin;
    if (std::strcmp(value, "queue") == 0)
        return Mode::Queue;
    PIM_FATAL("unrecognized PIM_SIM_MUTEX value \"", value,
              "\" (expected \"spin\" or \"queue\")");
}

SimMutex::Mode
SimMutex::defaultMode()
{
    int m = g_default_mode.load(std::memory_order_relaxed);
    if (m < 0) {
        // Benign race: concurrent first calls parse the same value.
        m = static_cast<int>(modeFromEnv(std::getenv("PIM_SIM_MUTEX")));
        g_default_mode.store(m, std::memory_order_relaxed);
    }
    return static_cast<Mode>(m);
}

void
SimMutex::setDefaultMode(Mode mode)
{
    g_default_mode.store(static_cast<int>(mode),
                         std::memory_order_relaxed);
}

void
SimMutex::resetDefaultModeForTesting()
{
    g_default_mode.store(-1, std::memory_order_relaxed);
}

const char *
SimMutex::modeName(Mode mode)
{
    return mode == Mode::Spin ? "spin" : "queue";
}

void
SimMutex::lock(Tasklet &t)
{
    if (mode_ == Mode::Spin)
        lockSpin(t);
    else
        lockQueue(t);
}

void
SimMutex::lockSpin(Tasklet &t)
{
    bool spun = false;
    uint64_t spin_instrs = kAttemptInstrs;
    for (;;) {
        if (!locked_) {
            locked_ = true;
            ++acquisitions_;
            if (spun)
                ++contended_;
            t.execute(kAttemptInstrs, CycleKind::Run);
            return;
        }
        spun = true;
        // Spin with bounded exponential backoff. Batching attempts keeps
        // the simulation event count manageable under heavy contention
        // without changing where the busy-wait cycles are attributed.
        //
        // Under horizon scheduling this loop is also what makes lock
        // hand-off cheap to simulate: `locked_` can only change while
        // this tasklet is switched out, i.e. when a charge below
        // crosses its horizon, so every re-check that runs ahead inside
        // the horizon is charged but switch-free. (The Queue mode
        // elides these re-check events entirely while reproducing their
        // timing analytically — see mutex.hh.)
        t.execute(spin_instrs, CycleKind::BusyWait);
        spin_instrs = std::min<uint64_t>(spin_instrs * 2, kMaxSpinInstrs);
    }
}

void
SimMutex::parkWaiter(Tasklet &t, uint32_t batch_idx)
{
    // The failed re-check at the current clock charges one backoff
    // batch in the spin model; account it virtually and deschedule.
    TaskletScheduler &sched = t.scheduler();
    const uint64_t key = electionKeyOf(t);
    const uint64_t width = sched.pipelineWidthAt(key);
    waiters_.push_back(
        {&t, key + ((batchInstrs(batch_idx) * width) << Tasklet::kIdBits),
         batch_idx + 1});
    ++parked_;
    ++elided_;
    sched.parkCurrent(t);
}

void
SimMutex::lockQueue(Tasklet &t)
{
    if (!locked_) {
        locked_ = true;
        ++acquisitions_;
        t.execute(kAttemptInstrs, CycleKind::Run);
        return;
    }
    if (resumeBatchIdx_.size() <= t.id())
        resumeBatchIdx_.resize(t.id() + 1, 0);
    uint32_t batch_idx = 0;
    for (;;) {
        parkWaiter(t, batch_idx); // blocks until unlock() wakes us
        if (!locked_) {
            // Our virtual re-check is the first one after the release:
            // acquire at exactly the clock the spin model would.
            locked_ = true;
            ++acquisitions_;
            ++contended_;
            t.execute(kAttemptInstrs, CycleKind::Run);
            return;
        }
        // A running tasklet grabbed the lock between the release and
        // our re-check (its attempt preceded ours in election order,
        // exactly as in the spin model). Keep the backoff sequence
        // going from where the wait schedule left off.
        batch_idx = resumeBatchIdx_[t.id()];
    }
}

bool
SimMutex::tryLock(Tasklet &t)
{
    t.execute(kAttemptInstrs, CycleKind::Run);
    if (locked_)
        return false;
    locked_ = true;
    ++acquisitions_;
    return true;
}

void
SimMutex::unlock(Tasklet &t)
{
    PIM_ASSERT(locked_, "unlock of a free mutex");
    locked_ = false;
    if (!waiters_.empty()) {
        // The lock frees at the releaser's current election key (the
        // release charge below happens after the store, as in the spin
        // model). Advance every parked waiter's virtual spin schedule
        // past that point: re-checks before it found the lock held
        // (see mutex.hh for why no earlier re-check can have found it
        // free), each costing one backoff batch at the pipeline width
        // of its moment.
        TaskletScheduler &sched = t.scheduler();
        const uint64_t release_key = electionKeyOf(t);
        size_t winner = waiters_.size();
        uint64_t winner_key = UINT64_MAX;
        for (size_t i = 0; i < waiters_.size(); ++i) {
            Waiter &w = waiters_[i];
            while (w.nextCheckKey < release_key) {
                const uint64_t width =
                    sched.pipelineWidthAt(w.nextCheckKey);
                w.nextCheckKey +=
                    (batchInstrs(w.batchIdx) * width) << Tasklet::kIdBits;
                ++w.batchIdx;
                ++elided_;
            }
            if (w.nextCheckKey < winner_key) {
                winner_key = w.nextCheckKey;
                winner = i;
            }
        }
        // Wake the waiter whose re-check comes first, charging it the
        // BusyWait cycles the spin model accumulated between its park
        // clock and that re-check. It re-validates on resume.
        Waiter w = waiters_[winner];
        waiters_.erase(waiters_.begin() + static_cast<long>(winner));
        if (resumeBatchIdx_.size() <= w.t->id())
            resumeBatchIdx_.resize(w.t->id() + 1, 0);
        resumeBatchIdx_[w.t->id()] = w.batchIdx;
        const uint64_t busy_wait =
            (w.nextCheckKey >> Tasklet::kIdBits) - w.t->clock();
        ++woken_;
        sched.wake(*w.t, w.nextCheckKey, busy_wait, t);
    }
    t.execute(kReleaseInstrs, CycleKind::Run);
}

} // namespace pim::sim
