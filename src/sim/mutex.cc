#include "sim/mutex.hh"

#include <algorithm>

#include "util/logging.hh"

namespace pim::sim {

void
SimMutex::lock(Tasklet &t)
{
    bool spun = false;
    uint64_t spin_instrs = kAttemptInstrs;
    for (;;) {
        if (!locked_) {
            locked_ = true;
            ++acquisitions_;
            if (spun)
                ++contended_;
            t.execute(kAttemptInstrs, CycleKind::Run);
            return;
        }
        spun = true;
        // Spin with bounded exponential backoff. Batching attempts keeps
        // the simulation event count manageable under heavy contention
        // without changing where the busy-wait cycles are attributed.
        //
        // Under horizon scheduling this loop is also what makes lock
        // hand-off cheap to simulate: `locked_` can only change while
        // this tasklet is switched out, i.e. when a charge below
        // crosses its horizon, so every re-check that runs ahead inside
        // the horizon is charged but switch-free. (ROADMAP: an
        // event-driven wait queue could elide the spin events
        // entirely, at the cost of changing this attribution.)
        t.execute(spin_instrs, CycleKind::BusyWait);
        spin_instrs = std::min<uint64_t>(spin_instrs * 2, 256);
    }
}

bool
SimMutex::tryLock(Tasklet &t)
{
    t.execute(kAttemptInstrs, CycleKind::Run);
    if (locked_)
        return false;
    locked_ = true;
    ++acquisitions_;
    return true;
}

void
SimMutex::unlock(Tasklet &t)
{
    PIM_ASSERT(locked_, "unlock of a free mutex");
    locked_ = false;
    t.execute(kReleaseInstrs, CycleKind::Run);
}

} // namespace pim::sim
