#include "trace/chrome_trace.hh"

#include <fstream>
#include <iostream>

#include "telemetry/export.hh"
#include "trace/occupancy.hh"
#include "util/json.hh"

namespace pim::trace {

namespace {

/** Metadata event ({"ph":"M"}) with one string or integer arg. */
void
metaEvent(util::JsonWriter &j, const char *name, int pid, int tid,
          const char *arg_key, const std::string &arg_str, int64_t arg_int,
          bool string_arg)
{
    j.beginObject();
    j.key("name").value(name);
    j.key("ph").value("M");
    j.key("pid").value(pid);
    j.key("tid").value(tid);
    j.key("args").beginObject();
    if (string_arg)
        j.key(arg_key).value(arg_str);
    else
        j.key(arg_key).value(arg_int);
    j.endObject();
    j.endObject();
}

/**
 * Perfetto counter tracks: one "C"-phase event per value change of
 * each sampler series (each unique (pid, name) renders as its own
 * counter track). Unchanged consecutive bins are elided — "C" events
 * hold their value until the next one — except the last bin, which is
 * always emitted so the track spans the full run.
 */
void
writeCounterTracks(util::JsonWriter &j,
                   const telemetry::Registry &met, int pid)
{
    const double cadence = met.sampler().cadence();
    for (const auto &s : met.sampler().snapshot()) {
        for (size_t b = 0; b < s.values.size(); ++b) {
            if (b > 0 && b + 1 < s.values.size()
                && s.values[b] == s.values[b - 1])
                continue;
            j.beginObject();
            j.key("name").value(s.name);
            j.key("ph").value("C");
            j.key("ts").value(static_cast<double>(b) * cadence * 1e6);
            j.key("pid").value(pid);
            j.key("args").beginObject();
            j.key("value").value(s.values[b]);
            j.endObject();
            j.endObject();
        }
    }
}

void
writeProcess(util::JsonWriter &j, const TraceProcess &proc, int pid)
{
    metaEvent(j, "process_name", pid, 0, "name", proc.name, 0, true);
    if (proc.metrics != nullptr)
        writeCounterTracks(j, *proc.metrics, pid);
    if (proc.recorder == nullptr)
        return;
    const Recorder &rec = *proc.recorder;

    // One named thread per lane, sorted host < bus < ranks < customs.
    const std::vector<int> lanes = rec.lanes();
    std::vector<int> lane_tid(lanes.size());
    for (size_t i = 0; i < lanes.size(); ++i) {
        const int tid = static_cast<int>(i);
        lane_tid[i] = tid;
        metaEvent(j, "thread_name", pid, tid, "name",
                  rec.laneName(lanes[i]), 0, true);
        metaEvent(j, "thread_sort_index", pid, tid, "sort_index", "",
                  tid, false);
    }
    auto tidOf = [&](int lane) {
        for (size_t i = 0; i < lanes.size(); ++i) {
            if (lanes[i] == lane)
                return lane_tid[i];
        }
        return 0; // unreachable: lanes() covers every recorded span
    };

    for (const Span &s : rec.spans()) {
        j.beginObject();
        j.key("name").value(s.name);
        j.key("cat").value(s.idle ? "wait"
                                  : isCustomLane(s.lane) ? "sim" : "queue");
        j.key("ph").value("X");
        j.key("ts").value(s.t0 * 1e6);
        j.key("dur").value(s.duration() * 1e6);
        j.key("pid").value(pid);
        j.key("tid").value(tidOf(s.lane));
        j.key("args").beginObject();
        if (s.bytes > 0)
            j.key("bytes").value(s.bytes);
        if (s.cycles > 0)
            j.key("cycles").value(s.cycles);
        if (s.event != kNoSpanEvent)
            j.key("event").value(s.event);
        if (s.after != kNoSpanEvent)
            j.key("after").value(s.after);
        if (!s.tenant.empty())
            j.key("tenant").value(s.tenant);
        j.endObject();
        j.endObject();
    }
}

} // namespace

void
writeChromeTrace(std::ostream &out,
                 const std::vector<TraceProcess> &processes)
{
    util::JsonWriter j(out);
    j.beginObject();
    j.key("displayTimeUnit").value("ms");
    j.key("traceEvents").beginArray();
    int pid = 1;
    for (const TraceProcess &proc : processes) {
        if (proc.recorder != nullptr || proc.metrics != nullptr)
            writeProcess(j, proc, pid);
        ++pid;
    }
    j.endArray();
    j.endObject();
}

void
writeChromeTrace(std::ostream &out, const Recorder &rec,
                 const std::string &process_name)
{
    writeChromeTrace(out, {{process_name, &rec}});
}

bool
writeChromeTraceFile(const std::string &path,
                     const std::vector<TraceProcess> &processes)
{
    std::ofstream out(path);
    if (!out) {
        std::cerr << "cannot open " << path << "\n";
        return false;
    }
    writeChromeTrace(out, processes);
    std::cout << "trace written to " << path << "\n";
    return true;
}

Recorder *
RecorderSet::add(std::string name)
{
    if (!enabled_)
        return nullptr;
    recorders_.emplace_back();
    names_.push_back(std::move(name));
    return &recorders_.back();
}

std::vector<TraceProcess>
RecorderSet::processes() const
{
    std::vector<TraceProcess> procs;
    for (size_t i = 0; i < names_.size(); ++i)
        procs.push_back({names_[i], &recorders_[i]});
    return procs;
}

bool
emitReports(std::ostream &out,
            const std::vector<TraceProcess> &processes,
            bool print_occupancy, const std::string &trace_path,
            const std::string &title_prefix)
{
    if (print_occupancy) {
        for (const TraceProcess &p : processes) {
            if (p.recorder == nullptr)
                continue; // metrics-only process: no spans to analyze
            out << "\n";
            const OccupancyReport rep = analyzeOccupancy(*p.recorder);
            rep.toTable(title_prefix + p.name).print(out);
            if (!rep.tenants.empty()) {
                out << "\n";
                rep.tenantsTable("Tenant occupancy: " + p.name)
                    .print(out);
            }
        }
    }
    if (!trace_path.empty())
        return writeChromeTraceFile(trace_path, processes);
    return true;
}

bool
emitReports(std::ostream &out, const RecorderSet &recorders,
            bool print_occupancy, const std::string &trace_path,
            const std::string &title_prefix)
{
    if (!recorders.enabled())
        return true;
    return emitReports(out, recorders.processes(), print_occupancy,
                       trace_path, title_prefix);
}

bool
emitReports(std::ostream &out, const RecorderSet &recorders,
            const telemetry::MetricSet &metrics, bool print_occupancy,
            bool print_metrics, const std::string &trace_path,
            const std::string &title_prefix)
{
    std::vector<TraceProcess> procs = recorders.enabled()
        ? recorders.processes() : std::vector<TraceProcess>{};
    if (metrics.enabled()) {
        for (const auto &e : metrics.entries()) {
            bool paired = false;
            for (TraceProcess &p : procs) {
                if (p.name == e.name) {
                    p.metrics = e.registry;
                    paired = true;
                }
            }
            if (!paired)
                procs.push_back({e.name, nullptr, e.registry});
        }
    }
    emitReports(out, procs, print_occupancy, /*trace_path=*/"",
                title_prefix);
    telemetry::printMetrics(out, metrics, print_metrics);
    if (!trace_path.empty() && !procs.empty())
        return writeChromeTraceFile(trace_path, procs);
    return true;
}

} // namespace pim::trace
