/**
 * @file
 * Chrome trace-event / Perfetto exporter for trace::Recorder. Emits the
 * JSON object form ({"traceEvents": [...]}) with complete ("X") events,
 * so a capture loads directly in chrome://tracing or ui.perfetto.dev.
 *
 * Each recorder becomes one process; its lanes become named, sorted
 * threads (host, bus, rank0..N, then custom lanes). Timestamps are
 * microseconds, as the format requires. Transfer payloads, DPU cycles,
 * and command Event ids/dependencies ride along in each event's args.
 */

#ifndef PIM_TRACE_CHROME_TRACE_HH
#define PIM_TRACE_CHROME_TRACE_HH

#include <deque>
#include <ostream>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace pim::telemetry {
class MetricSet;
class Registry;
}

namespace pim::trace {

/**
 * One process of a multi-experiment capture: span lanes from the
 * recorder, Perfetto counter tracks ("C"-phase events — utilization,
 * queue depth, busy-rank curves) from the registry's TimelineSampler.
 * Either may be null; a metrics-only process emits just its counter
 * tracks.
 */
struct TraceProcess
{
    std::string name;
    const Recorder *recorder = nullptr;
    const telemetry::Registry *metrics = nullptr;
};

/**
 * Named recorders for a multi-configuration bench: one recorder per
 * traced run, with stable addresses, created only when tracing was
 * requested. The standard shape is
 *
 *   trace::RecorderSet recorders(knobs.wantsTrace());
 *   cfg.recorder = recorders.add(run_name);     // nullptr when off
 *   ...
 *   if (!trace::emitReports(std::cout, recorders, knobs.occupancy,
 *                           knobs.tracePath))
 *       return 1;
 */
class RecorderSet
{
  public:
    /** @param enabled false = add() returns nullptr, emit no-ops. */
    explicit RecorderSet(bool enabled) : enabled_(enabled) {}

    bool enabled() const { return enabled_; }

    /** New recorder labeled @p name; nullptr when disabled. */
    Recorder *add(std::string name);

    /** The recorders added so far, as capture processes. */
    std::vector<TraceProcess> processes() const;

  private:
    bool enabled_;
    std::deque<Recorder> recorders_;
    std::vector<std::string> names_;
};

/** Write a multi-process capture. */
void writeChromeTrace(std::ostream &out,
                      const std::vector<TraceProcess> &processes);

/** Write a single-recorder capture. */
void writeChromeTrace(std::ostream &out, const Recorder &rec,
                      const std::string &process_name = "pim");

/**
 * Write a capture to @p path. Returns false (with a message on stderr)
 * if the file cannot be opened; prints "trace written to <path>" on
 * success.
 */
bool writeChromeTraceFile(const std::string &path,
                          const std::vector<TraceProcess> &processes);

/**
 * The shared bench/example epilogue behind the --occupancy / --trace
 * knobs: when @p print_occupancy, print one occupancy table per
 * process on @p out (titled "<title_prefix><process name>"); when
 * @p trace_path is non-empty, write all processes as one multi-process
 * Chrome capture. Returns false if the trace file cannot be written.
 */
bool emitReports(std::ostream &out,
                 const std::vector<TraceProcess> &processes,
                 bool print_occupancy, const std::string &trace_path,
                 const std::string &title_prefix = "Occupancy: ");

/** emitReports over a RecorderSet; a disabled set is a successful
 *  no-op, so callers need no enabled() guard. */
bool emitReports(std::ostream &out, const RecorderSet &recorders,
                 bool print_occupancy, const std::string &trace_path,
                 const std::string &title_prefix = "Occupancy: ");

/**
 * emitReports with metrics: pairs each registry of @p metrics with the
 * recorder of the same name (name-matched add() calls), so a written
 * capture carries the run's counter tracks beside its spans, prints
 * each registry's summary tables when @p print_metrics (--metrics),
 * and prints occupancy tables as before. Disabled sets no-op
 * independently; registries without a recorder become metrics-only
 * processes.
 */
bool emitReports(std::ostream &out, const RecorderSet &recorders,
                 const telemetry::MetricSet &metrics,
                 bool print_occupancy, bool print_metrics,
                 const std::string &trace_path,
                 const std::string &title_prefix = "Occupancy: ");

} // namespace pim::trace

#endif // PIM_TRACE_CHROME_TRACE_HH
