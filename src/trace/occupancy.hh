/**
 * @file
 * Occupancy analysis over a recorded trace: per-lane busy time (the
 * union of non-idle spans, so overlapping spans are not double
 * counted), idle/overlap accounting, straggler-rank detection, and
 * critical-lane attribution — which resource's timeline actually ends
 * the makespan. This is what turns a queue trace into an answer to
 * "why is this run slow": a bus-bound scatter shows a ~100% busy bus
 * lane, a straggler rank shows one rank lane outlasting its peers, and
 * well-hidden host compute shows host busy time ≫ its share of the
 * makespan.
 */

#ifndef PIM_TRACE_OCCUPANCY_HH
#define PIM_TRACE_OCCUPANCY_HH

#include <string>
#include <vector>

#include "trace/trace.hh"
#include "util/json.hh"
#include "util/table.hh"

namespace pim::trace {

/** Occupancy of one lane over the trace window [0, makespan]. */
struct LaneOccupancy
{
    int lane = kHostLane;
    std::string name;
    /** Union of non-idle span time on this lane. */
    double busySeconds = 0.0;
    /** busySeconds / makespan (0 for an empty trace). */
    double busyFraction = 0.0;
    /** End of the lane's last span (busy or idle). */
    double endSeconds = 0.0;
    /** End of the lane's last non-idle span (0 if never busy). */
    double busyEndSeconds = 0.0;
    /** Spans recorded on the lane (including idle spans). */
    size_t spans = 0;
    /** Transfer payload carried by the lane's spans. */
    uint64_t bytes = 0;
    /** Rank lanes only: busy time exceeds the straggler threshold. */
    bool straggler = false;
};

/**
 * Busy-time attribution of one tenant (spans carrying the same
 * Span::tenant tag) across all resource lanes it touched.
 */
struct TenantOccupancy
{
    /** Tenant display name ("(default)" for untagged spans when they
     *  coexist with tagged ones). */
    std::string name;
    /** Per-lane union of the tenant's non-idle resource-lane spans,
     *  summed over lanes. */
    double busySeconds = 0.0;
    /** busySeconds / makespan: resource-lane seconds the tenant held
     *  per second of wall clock (>1 = more than one lane on average). */
    double busyFraction = 0.0;
    /** Busy time restricted to rank lanes (the tenant's PIM share). */
    double rankBusySeconds = 0.0;
    /** Rank lanes the tenant's spans touched. */
    unsigned rankLanes = 0;
    /** End of the tenant's last non-idle span. */
    double busyEndSeconds = 0.0;
    /** Spans recorded for the tenant (including idle spans). */
    size_t spans = 0;
    /** Transfer payload carried by the tenant's bus spans. */
    uint64_t bytes = 0;
};

/** Whole-trace occupancy breakdown. */
struct OccupancyReport
{
    /** Max span end over all lanes (the traced makespan). */
    double makespanSeconds = 0.0;
    /**
     * Sum of busy time over the *resource* lanes: host, bus, ranks,
     * and custom lanes flagged as resources (per-tenant host lanes).
     * Other custom lanes (e.g. per-tasklet spans) mirror work the
     * queue already charges to a rank, so they are excluded — counting
     * them would double-count the same physical work.
     */
    double busySumSeconds = 0.0;
    /** Resource-lane work hidden by running lanes concurrently:
     *  max(0, busySum - makespan). */
    double overlapSeconds = 0.0;
    /**
     * The lane whose *busy* timeline ends last — the resource that
     * actually constrains the makespan. An idle wait span (a host
     * blocked on a transfer) ending at the makespan does not qualify;
     * ties (a copy releases the bus and its ranks simultaneously) go
     * to the busier lane, then to display order.
     */
    int criticalLane = kHostLane;
    std::string criticalLaneName;
    /** Median busy time over the rank lanes (straggler baseline). */
    double rankBusyMedianSeconds = 0.0;
    /** Lanes in display order (host, bus, ranks, customs). */
    std::vector<LaneOccupancy> lanes;

    /**
     * Per-tenant busy-time attribution, in first-appearance order.
     * Empty unless the trace carries tenant-tagged spans (a co-tenant
     * queue); untagged spans coexisting with tagged ones appear as the
     * "(default)" tenant.
     */
    std::vector<TenantOccupancy> tenants;

    /** Render as a console table. */
    util::Table toTable(const std::string &title = "Occupancy") const;

    /** Render the per-tenant attribution (tenants must be non-empty). */
    util::Table tenantsTable(
        const std::string &title = "Tenant occupancy") const;

    /** Emit as one JSON object value on @p j. */
    void writeJson(util::JsonWriter &j) const;
};

/**
 * Analyze @p rec. A rank lane is flagged as a straggler when its busy
 * time exceeds @p straggler_factor times the median rank busy time
 * (with at least two rank lanes present).
 */
OccupancyReport analyzeOccupancy(const Recorder &rec,
                                 double straggler_factor = 1.25);

} // namespace pim::trace

#endif // PIM_TRACE_OCCUPANCY_HH
