#include "trace/occupancy.hh"

#include <algorithm>
#include <map>

namespace pim::trace {

namespace {

/** Union length of a set of intervals (destructive: sorts @p iv). */
double
unionSeconds(std::vector<std::pair<double, double>> &iv)
{
    std::sort(iv.begin(), iv.end());
    double total = 0.0;
    double cur_lo = 0.0;
    double cur_hi = -1.0;
    for (const auto &[lo, hi] : iv) {
        if (cur_hi < cur_lo || lo > cur_hi) {
            if (cur_hi >= cur_lo)
                total += cur_hi - cur_lo;
            cur_lo = lo;
            cur_hi = hi;
        } else {
            cur_hi = std::max(cur_hi, hi);
        }
    }
    if (cur_hi >= cur_lo)
        total += cur_hi - cur_lo;
    return total;
}

} // namespace

OccupancyReport
analyzeOccupancy(const Recorder &rec, double straggler_factor)
{
    OccupancyReport rep;

    struct LaneAccum
    {
        std::vector<std::pair<double, double>> busy;
        double end = 0.0;
        double busyEnd = 0.0;
        size_t spans = 0;
        uint64_t bytes = 0;
    };
    std::map<int, LaneAccum> accum;
    for (const Span &s : rec.spans()) {
        LaneAccum &a = accum[s.lane];
        ++a.spans;
        a.bytes += s.bytes;
        a.end = std::max(a.end, s.t1);
        if (!s.idle && s.t1 > s.t0) {
            a.busy.emplace_back(s.t0, s.t1);
            a.busyEnd = std::max(a.busyEnd, s.t1);
        }
    }

    for (const int lane : rec.lanes()) {
        LaneAccum &a = accum[lane];
        LaneOccupancy lo;
        lo.lane = lane;
        lo.name = rec.laneName(lane);
        lo.busySeconds = unionSeconds(a.busy);
        lo.endSeconds = a.end;
        lo.busyEndSeconds = a.busyEnd;
        lo.spans = a.spans;
        lo.bytes = a.bytes;
        rep.lanes.push_back(std::move(lo));
    }

    // Per-tenant attribution: group non-idle resource-lane spans by
    // their tenant tag and union them per (tenant, lane), so a
    // co-tenant trace answers "how much of the machine did each tenant
    // actually hold". Skipped entirely (tenants stays empty) for the
    // ordinary single-tenant trace where no span carries a tag.
    bool tagged = false;
    for (const Span &s : rec.spans()) {
        if (!s.tenant.empty()) {
            tagged = true;
            break;
        }
    }
    if (tagged) {
        struct TenantAccum
        {
            std::map<int, std::vector<std::pair<double, double>>> busy;
            double busyEnd = 0.0;
            size_t spans = 0;
            uint64_t bytes = 0;
        };
        std::map<std::string, TenantAccum> per_tenant;
        std::vector<std::string> order;
        for (const Span &s : rec.spans()) {
            if (!rec.isResourceLane(s.lane))
                continue;
            const std::string key =
                s.tenant.empty() ? std::string("(default)") : s.tenant;
            if (per_tenant.find(key) == per_tenant.end())
                order.push_back(key);
            TenantAccum &a = per_tenant[key];
            ++a.spans;
            a.bytes += s.bytes;
            if (!s.idle && s.t1 > s.t0) {
                a.busy[s.lane].emplace_back(s.t0, s.t1);
                a.busyEnd = std::max(a.busyEnd, s.t1);
            }
        }
        for (const std::string &key : order) {
            TenantAccum &a = per_tenant[key];
            TenantOccupancy to;
            to.name = key;
            to.busyEndSeconds = a.busyEnd;
            to.spans = a.spans;
            to.bytes = a.bytes;
            for (auto &[lane, iv] : a.busy) {
                const double busy = unionSeconds(iv);
                to.busySeconds += busy;
                if (isRankLane(lane)) {
                    to.rankBusySeconds += busy;
                    ++to.rankLanes;
                }
            }
            rep.tenants.push_back(std::move(to));
        }
    }

    // Makespan covers every lane; the busy-time sum (and therefore the
    // overlap figure) covers only the resource lanes — host, bus,
    // ranks, and resource-flagged customs (per-tenant host lanes);
    // other custom lanes carry work the queue already charged to a
    // rank.
    // The critical lane is the one whose busy timeline ends last (an
    // idle wait reaching the makespan does not constrain anything);
    // ties go to the busier lane, then to display order. A trace with
    // no busy span at all falls back to the latest-ending lane.
    double best_busy_end = 0.0;
    double best_busy = -1.0;
    bool have_critical = false;
    for (const LaneOccupancy &lo : rep.lanes) {
        rep.makespanSeconds =
            std::max(rep.makespanSeconds, lo.endSeconds);
        if (rec.isResourceLane(lo.lane))
            rep.busySumSeconds += lo.busySeconds;
        if (lo.busySeconds > 0.0
            && (lo.busyEndSeconds > best_busy_end
                || (lo.busyEndSeconds == best_busy_end
                    && lo.busySeconds > best_busy))) {
            best_busy_end = lo.busyEndSeconds;
            best_busy = lo.busySeconds;
            rep.criticalLane = lo.lane;
            rep.criticalLaneName = lo.name;
            have_critical = true;
        }
    }
    if (!have_critical) {
        double best_end = -1.0;
        for (const LaneOccupancy &lo : rep.lanes) {
            if (lo.endSeconds > best_end) {
                best_end = lo.endSeconds;
                rep.criticalLane = lo.lane;
                rep.criticalLaneName = lo.name;
            }
        }
    }
    rep.overlapSeconds =
        std::max(0.0, rep.busySumSeconds - rep.makespanSeconds);

    if (rep.makespanSeconds > 0.0) {
        for (LaneOccupancy &lo : rep.lanes)
            lo.busyFraction = lo.busySeconds / rep.makespanSeconds;
        for (TenantOccupancy &to : rep.tenants) {
            // Normalize by the window only: a tenant's busy time spans
            // several lanes, so the fraction reads as "machine-lane
            // seconds held per second of wall clock".
            to.busyFraction = to.busySeconds / rep.makespanSeconds;
        }
    }

    // Straggler ranks: busy time well above the median rank's.
    std::vector<double> rank_busy;
    for (const LaneOccupancy &lo : rep.lanes) {
        if (isRankLane(lo.lane))
            rank_busy.push_back(lo.busySeconds);
    }
    if (rank_busy.size() >= 2) {
        std::sort(rank_busy.begin(), rank_busy.end());
        const size_t n = rank_busy.size();
        rep.rankBusyMedianSeconds = n % 2 == 1
            ? rank_busy[n / 2]
            : 0.5 * (rank_busy[n / 2 - 1] + rank_busy[n / 2]);
        for (LaneOccupancy &lo : rep.lanes) {
            if (isRankLane(lo.lane) && rep.rankBusyMedianSeconds > 0.0
                && lo.busySeconds
                    > straggler_factor * rep.rankBusyMedianSeconds)
                lo.straggler = true;
        }
    }
    return rep;
}

util::Table
OccupancyReport::toTable(const std::string &title) const
{
    util::Table t(title + " — makespan "
                  + util::Table::num(makespanSeconds * 1e3, 3)
                  + " ms, critical lane " + criticalLaneName
                  + ", overlap hid "
                  + util::Table::num(overlapSeconds * 1e3, 3) + " ms");
    t.setHeader({"Lane", "Busy (ms)", "Busy %", "End (ms)", "Spans",
                 "MB moved", "Flags"});
    for (const LaneOccupancy &lo : lanes) {
        std::string flags;
        if (lo.lane == criticalLane)
            flags += "critical";
        if (lo.straggler)
            flags += flags.empty() ? "straggler" : ",straggler";
        t.addRow({lo.name, util::Table::num(lo.busySeconds * 1e3, 3),
                  util::Table::num(lo.busyFraction * 100.0, 1),
                  util::Table::num(lo.endSeconds * 1e3, 3),
                  util::Table::num(static_cast<uint64_t>(lo.spans)),
                  util::Table::num(
                      static_cast<double>(lo.bytes) / 1e6, 2),
                  flags});
    }
    return t;
}

util::Table
OccupancyReport::tenantsTable(const std::string &title) const
{
    util::Table t(title + " — makespan "
                  + util::Table::num(makespanSeconds * 1e3, 3) + " ms");
    t.setHeader({"Tenant", "Busy (ms)", "Lanes/s", "Rank busy (ms)",
                 "Ranks", "Busy end (ms)", "Spans", "MB moved"});
    for (const TenantOccupancy &to : tenants) {
        t.addRow({to.name, util::Table::num(to.busySeconds * 1e3, 3),
                  util::Table::num(to.busyFraction, 2),
                  util::Table::num(to.rankBusySeconds * 1e3, 3),
                  util::Table::num(static_cast<uint64_t>(to.rankLanes)),
                  util::Table::num(to.busyEndSeconds * 1e3, 3),
                  util::Table::num(static_cast<uint64_t>(to.spans)),
                  util::Table::num(
                      static_cast<double>(to.bytes) / 1e6, 2)});
    }
    return t;
}

void
OccupancyReport::writeJson(util::JsonWriter &j) const
{
    j.beginObject();
    j.key("makespan_seconds").value(makespanSeconds);
    j.key("busy_sum_seconds").value(busySumSeconds);
    j.key("overlap_seconds").value(overlapSeconds);
    j.key("critical_lane").value(criticalLaneName);
    j.key("rank_busy_median_seconds").value(rankBusyMedianSeconds);
    j.key("lanes").beginArray();
    for (const LaneOccupancy &lo : lanes) {
        j.beginObject();
        j.key("name").value(lo.name);
        j.key("busy_seconds").value(lo.busySeconds);
        j.key("busy_fraction").value(lo.busyFraction);
        j.key("end_seconds").value(lo.endSeconds);
        j.key("busy_end_seconds").value(lo.busyEndSeconds);
        j.key("spans").value(static_cast<uint64_t>(lo.spans));
        j.key("bytes").value(lo.bytes);
        j.key("straggler").value(lo.straggler);
        j.endObject();
    }
    j.endArray();
    // Only co-tenant traces carry the attribution array; single-tenant
    // reports keep their historical JSON shape byte-for-byte.
    if (!tenants.empty()) {
        j.key("tenants").beginArray();
        for (const TenantOccupancy &to : tenants) {
            j.beginObject();
            j.key("name").value(to.name);
            j.key("busy_seconds").value(to.busySeconds);
            j.key("busy_fraction").value(to.busyFraction);
            j.key("rank_busy_seconds").value(to.rankBusySeconds);
            j.key("rank_lanes")
                .value(static_cast<uint64_t>(to.rankLanes));
            j.key("busy_end_seconds").value(to.busyEndSeconds);
            j.key("spans").value(static_cast<uint64_t>(to.spans));
            j.key("bytes").value(to.bytes);
            j.endObject();
        }
        j.endArray();
    }
    j.endObject();
}

} // namespace pim::trace
