#include "trace/trace.hh"

#include <algorithm>

#include "util/logging.hh"

namespace pim::trace {

void
Recorder::record(Span s)
{
    PIM_ASSERT(s.t1 >= s.t0, "span ends before it starts: ", s.name,
               " [", s.t0, ", ", s.t1, ")");
    std::lock_guard<std::mutex> lock(mu_);
    spans_.push_back(std::move(s));
}

int
Recorder::customLaneLocked(const std::string &name, bool resource)
{
    for (size_t i = 0; i < customNames_.size(); ++i) {
        if (customNames_[i] == name) {
            if (resource)
                customResource_[i] = true;
            return -1 - static_cast<int>(i);
        }
    }
    customNames_.push_back(name);
    customResource_.push_back(resource);
    return -static_cast<int>(customNames_.size());
}

int
Recorder::customLane(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    return customLaneLocked(name, /*resource=*/false);
}

int
Recorder::resourceLane(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    return customLaneLocked(name, /*resource=*/true);
}

bool
Recorder::isResourceLane(int lane) const
{
    if (!isCustomLane(lane))
        return true;
    std::lock_guard<std::mutex> lock(mu_);
    const size_t idx = static_cast<size_t>(-1 - lane);
    PIM_ASSERT(idx < customResource_.size(), "unknown custom lane ",
               lane);
    return customResource_[idx];
}

void
Recorder::setRankCount(unsigned n)
{
    std::lock_guard<std::mutex> lock(mu_);
    rankCount_ = std::max(rankCount_, n);
}

unsigned
Recorder::rankCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return rankCount_;
}

size_t
Recorder::spanCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return spans_.size();
}

double
Recorder::endSeconds() const
{
    std::lock_guard<std::mutex> lock(mu_);
    double end = 0.0;
    for (const Span &s : spans_)
        end = std::max(end, s.t1);
    return end;
}

void
Recorder::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    spans_.clear();
}

std::string
Recorder::laneName(int lane) const
{
    if (lane == kHostLane)
        return "host";
    if (lane == kBusLane)
        return "bus";
    if (isRankLane(lane))
        return "rank" + std::to_string(rankOfLane(lane));
    std::lock_guard<std::mutex> lock(mu_);
    const size_t idx = static_cast<size_t>(-1 - lane);
    PIM_ASSERT(idx < customNames_.size(), "unknown custom lane ", lane);
    return customNames_[idx];
}

uint64_t
Recorder::laneOrderKey(int lane)
{
    // host, bus, ranks ascending, customs in creation order.
    if (lane == kHostLane)
        return 0;
    if (lane == kBusLane)
        return 1;
    if (isRankLane(lane))
        return (uint64_t{1} << 32) + rankOfLane(lane);
    return (uint64_t{2} << 32) + static_cast<uint64_t>(-1 - lane);
}

std::vector<int>
Recorder::lanes() const
{
    std::vector<int> out;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (const Span &s : spans_) {
            if (std::find(out.begin(), out.end(), s.lane) == out.end())
                out.push_back(s.lane);
        }
    }
    std::sort(out.begin(), out.end(), [](int a, int b) {
        return laneOrderKey(a) < laneOrderKey(b);
    });
    return out;
}

} // namespace pim::trace
