/**
 * @file
 * Timeline-tracing primitives for the command-queue runtime.
 *
 * A trace::Recorder collects *spans* — half-open time intervals on a
 * *lane* — while an experiment runs. Lanes mirror the resources the
 * CommandQueue resolves commands against (the host thread, the shared
 * transfer bus, each DPU rank) plus arbitrary named custom lanes (the
 * per-tasklet spans the sim layer can emit when the PIM_TRACE_SIM hook
 * is compiled in).
 *
 * The recorder itself knows nothing about the queue: it is a passive,
 * thread-safe sink at the very bottom of the dependency graph, so core,
 * sim, and the workloads can all feed it. Consumers are the Chrome/
 * Perfetto exporter (chrome_trace.hh) and the occupancy analyzer
 * (occupancy.hh).
 *
 * With no recorder attached the instrumentation points reduce to one
 * null-pointer test per resolved command, so tracing costs nothing when
 * it is off.
 */

#ifndef PIM_TRACE_TRACE_HH
#define PIM_TRACE_TRACE_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace pim::trace {

/**
 * Lane encoding: non-negative lanes are the queue's resource timelines
 * (host, bus, rank r); negative lanes are custom lanes allocated by
 * name through Recorder::customLane (tasklet spans, auxiliary series).
 */
inline constexpr int kHostLane = 0;
inline constexpr int kBusLane = 1;

/** Lane of rank @p r. */
constexpr int
rankLane(unsigned r)
{
    return 2 + static_cast<int>(r);
}

/** True if @p lane is a rank lane. */
constexpr bool
isRankLane(int lane)
{
    return lane >= 2;
}

/** Rank of a rank lane. */
constexpr unsigned
rankOfLane(int lane)
{
    return static_cast<unsigned>(lane - 2);
}

/** True if @p lane was allocated by Recorder::customLane. */
constexpr bool
isCustomLane(int lane)
{
    return lane < 0;
}

/** "No event" marker for Span::event / Span::after (== core::kNoEvent). */
inline constexpr int kNoSpanEvent = -1;

/** One recorded interval on a lane. */
struct Span
{
    int lane = kHostLane;
    /** What ran (command label, or a kind name like "memcpy:h2p"). */
    std::string name;
    /** Owning tenant's display name ("" = the default/anonymous
     *  tenant). The key trace::analyzeOccupancy groups per-tenant
     *  busy-time attribution by. */
    std::string tenant;
    /** Start/end in seconds on the trace timeline. */
    double t0 = 0.0;
    double t1 = 0.0;
    /** Payload of transfer spans (0 otherwise). */
    uint64_t bytes = 0;
    /** DPU cycles of launch/tasklet spans (0 otherwise). */
    uint64_t cycles = 0;
    /** Completion Event id of the producing command (kNoSpanEvent if
     *  the span did not come from a queue command). */
    int event = kNoSpanEvent;
    /** Explicit dependency Event of the producing command. */
    int after = kNoSpanEvent;
    /** True for stall/wait intervals (host blocked on a transfer,
     *  idle-until gaps); excluded from occupancy busy time. */
    bool idle = false;

    double
    duration() const
    {
        return t1 - t0;
    }
};

/** Thread-safe span sink of one traced experiment. */
class Recorder
{
  public:
    /** Append one span (asserts t1 >= t0). Safe from any thread. */
    void record(Span s);

    /**
     * Lane id of the custom lane called @p name, allocating it on first
     * use (same name -> same lane). Safe from any thread.
     */
    int customLane(const std::string &name);

    /**
     * Like customLane, but the lane is a *resource* lane: it carries
     * real work of its own (e.g. a tenant's host issue timeline) rather
     * than mirroring work already charged to a rank, so occupancy
     * analysis counts it into the busy-time sum. Allocating the same
     * name through both entry points keeps the stronger (resource)
     * classification. Safe from any thread.
     */
    int resourceLane(const std::string &name);

    /**
     * True if @p lane contributes to the resource busy-time sum: the
     * built-in host/bus/rank lanes always do, custom lanes only when
     * allocated through resourceLane.
     */
    bool isResourceLane(int lane) const;

    /** Rank lanes the producer may use (for display; grows monotonically). */
    void setRankCount(unsigned n);
    unsigned rankCount() const;

    /**
     * Recorded spans, in record order. Not safe to call while other
     * threads are still recording.
     */
    const std::vector<Span> &spans() const { return spans_; }

    size_t spanCount() const;

    /** Largest span end time (0 with no spans). */
    double endSeconds() const;

    /** Drop all spans (custom-lane names are kept). */
    void clear();

    /** Display name of @p lane ("host", "bus", "rank3", custom name). */
    std::string laneName(int lane) const;

    /**
     * Distinct lanes appearing in the recorded spans, in display order:
     * host, bus, ranks ascending, then custom lanes in creation order.
     */
    std::vector<int> lanes() const;

    /** Sort key for display order (host < bus < ranks < customs). */
    static uint64_t laneOrderKey(int lane);

  private:
    int customLaneLocked(const std::string &name, bool resource);

    mutable std::mutex mu_;
    std::vector<Span> spans_;
    std::vector<std::string> customNames_;
    /** Parallel to customNames_: true = counts as a resource lane. */
    std::vector<bool> customResource_;
    unsigned rankCount_ = 0;
};

} // namespace pim::trace

#endif // PIM_TRACE_TRACE_HH
