#include "telemetry/metrics.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace pim::telemetry {

int32_t
Histogram::bucketIndex(double v)
{
    PIM_ASSERT(v > 0.0 && std::isfinite(v),
               "bucketIndex needs a finite positive sample, got ", v);
    int exp = 0;
    const double m = std::frexp(v, &exp); // m in [0.5, 1)
    // Sub-bucket within the octave: [0.5, 1) split into kSub equal
    // slices. The clamp guards the m -> 1 rounding edge.
    const int32_t sub = std::min<int32_t>(
        kSub - 1,
        static_cast<int32_t>((m - 0.5) * 2.0 * static_cast<double>(kSub)));
    return static_cast<int32_t>(exp) * kSub + sub;
}

double
Histogram::bucketLow(int32_t idx)
{
    // Floor division so negative octaves (sub-1.0 samples) map right.
    int32_t exp = idx / kSub;
    int32_t sub = idx % kSub;
    if (sub < 0) {
        sub += kSub;
        exp -= 1;
    }
    return std::ldexp(
        0.5 + static_cast<double>(sub) / (2.0 * static_cast<double>(kSub)),
        exp);
}

double
Histogram::bucketHigh(int32_t idx)
{
    // Bucket indices are contiguous across octave boundaries: the
    // bucket after (exp, kSub-1) is (exp+1, 0) and its low edge is
    // exactly this bucket's high edge.
    return bucketLow(idx + 1);
}

double
Histogram::bucketMid(int32_t idx)
{
    return 0.5 * (bucketLow(idx) + bucketLow(idx + 1));
}

void
Histogram::add(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    if (v > 0.0)
        ++buckets_[bucketIndex(v)];
    else
        ++zero_;
}

void
Histogram::merge(const Histogram &o)
{
    if (o.count_ == 0)
        return;
    if (count_ == 0) {
        min_ = o.min_;
        max_ = o.max_;
    } else {
        min_ = std::min(min_, o.min_);
        max_ = std::max(max_, o.max_);
    }
    count_ += o.count_;
    zero_ += o.zero_;
    for (const auto &[idx, n] : o.buckets_)
        buckets_[idx] += n;
}

double
Histogram::mean() const
{
    if (count_ == 0)
        return 0.0;
    // The zero bucket contributes 0; the map iterates in ascending
    // bucket order, so the accumulation order is deterministic.
    double sum = 0.0;
    for (const auto &[idx, n] : buckets_)
        sum += static_cast<double>(n) * bucketMid(idx);
    return sum / static_cast<double>(count_);
}

double
Histogram::quantile(double q) const
{
    if (count_ == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // Nearest-rank: the smallest sample with cumulative count >= rank.
    const uint64_t rank = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               std::ceil(q * static_cast<double>(count_))));
    uint64_t seen = zero_;
    if (rank <= seen)
        return std::clamp(0.0, min_, max_);
    for (const auto &[idx, n] : buckets_) {
        seen += n;
        if (rank <= seen)
            return std::clamp(bucketMid(idx), min_, max_);
    }
    return max_;
}

} // namespace pim::telemetry
