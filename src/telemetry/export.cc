#include "telemetry/export.hh"

#include "util/json.hh"
#include "util/table.hh"

namespace pim::telemetry {

Registry *
MetricSet::add(std::string name)
{
    if (!enabled_)
        return nullptr;
    registries_.emplace_back();
    names_.push_back(std::move(name));
    return &registries_.back();
}

const Registry *
MetricSet::find(const std::string &name) const
{
    for (size_t i = 0; i < names_.size(); ++i) {
        if (names_[i] == name)
            return &registries_[i];
    }
    return nullptr;
}

std::vector<MetricSet::Entry>
MetricSet::entries() const
{
    std::vector<Entry> out;
    for (size_t i = 0; i < names_.size(); ++i)
        out.push_back({names_[i], &registries_[i]});
    return out;
}

void
printMetrics(std::ostream &out, const MetricSet &metrics,
             bool print_tables)
{
    if (!metrics.enabled() || !print_tables)
        return;
    for (const MetricSet::Entry &e : metrics.entries()) {
        for (const util::Table &t : e.registry->tables(e.name)) {
            out << "\n";
            t.print(out);
        }
    }
}

void
writeMetricsJson(util::JsonWriter &j, const MetricSet &metrics)
{
    if (!metrics.enabled())
        return;
    j.key("metrics").beginObject();
    for (const MetricSet::Entry &e : metrics.entries()) {
        j.key(e.name);
        e.registry->writeJson(j);
    }
    j.endObject();
}

} // namespace pim::telemetry
