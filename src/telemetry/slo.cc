#include "telemetry/slo.hh"

#include <algorithm>

#include "util/logging.hh"

namespace pim::telemetry {

void
SloTracker::declare(const std::string &metric, double target_sec)
{
    PIM_ASSERT(target_sec > 0.0, "SLO target for '", metric,
               "' must be positive, got ", target_sec);
    scores_[metric].target = target_sec;
}

void
SloTracker::observe(const std::string &metric, double value)
{
    const auto it = scores_.find(metric);
    if (it == scores_.end())
        return;
    SloScore &s = it->second;
    ++s.samples;
    if (value > s.target)
        ++s.violations;
    s.worstExcursion = std::max(s.worstExcursion, value / s.target);
}

const SloScore &
SloTracker::score(const std::string &metric) const
{
    const auto it = scores_.find(metric);
    PIM_ASSERT(it != scores_.end(), "no SLO declared for '", metric,
               "'");
    return it->second;
}

} // namespace pim::telemetry
