/**
 * @file
 * Per-metric SLO scoring: declare a latency target per named metric
 * (e.g. "serving.ttft", "graph.round"), observe samples, and read back
 * attainment (% of samples within target), violation counts, and the
 * worst excursion (max observed/target ratio). Observations of
 * undeclared metrics are dropped, so instrumentation can observe
 * unconditionally and only runs that declared targets pay for scoring.
 */

#ifndef PIM_TELEMETRY_SLO_HH
#define PIM_TELEMETRY_SLO_HH

#include <cstdint>
#include <map>
#include <string>

namespace pim::telemetry {

/** Attainment record of one declared SLO. */
struct SloScore
{
    /** Declared target (seconds). */
    double target = 0.0;
    uint64_t samples = 0;
    /** Samples strictly above target. */
    uint64_t violations = 0;
    /** Largest observed/target ratio (0 with no samples). */
    double worstExcursion = 0.0;

    /** Percent of samples within target (100 with no samples). */
    double
    attainmentPct() const
    {
        return samples == 0
            ? 100.0
            : 100.0 * static_cast<double>(samples - violations)
                / static_cast<double>(samples);
    }
};

/** Scores observed samples against declared per-metric targets. */
class SloTracker
{
  public:
    /** Declare (or retarget) the SLO for @p metric. */
    void declare(const std::string &metric, double target_sec);

    /** Score one sample; dropped if @p metric has no declared SLO. */
    void observe(const std::string &metric, double value);

    /** True if @p metric has a declared SLO. */
    bool tracks(const std::string &metric) const
    {
        return scores_.count(metric) != 0;
    }

    /** The declared metric's score (fatal if undeclared). */
    const SloScore &score(const std::string &metric) const;

    /** All declared metrics, keyed by name. */
    const std::map<std::string, SloScore> &scores() const
    {
        return scores_;
    }

    bool empty() const { return scores_.empty(); }

  private:
    std::map<std::string, SloScore> scores_;
};

} // namespace pim::telemetry

#endif // PIM_TELEMETRY_SLO_HH
