/**
 * @file
 * Bench-side metrics plumbing, mirroring trace::RecorderSet: a
 * MetricSet hands out named registries only when metrics were
 * requested (--metrics, or --trace so counter tracks land in the
 * capture), and the emit helpers render every registry as util::Table
 * summaries and as the "metrics" block of a BENCH json. The standard
 * shape is
 *
 *   telemetry::MetricSet metrics(knobs.metrics || knobs.wantsTrace());
 *   cfg.metrics = metrics.add(run_name);        // nullptr when off
 *   ...
 *   telemetry::printMetrics(std::cout, metrics, knobs.metrics);
 *   ... inside the bench's JsonWriter object:
 *   telemetry::writeMetricsJson(j, metrics);    // key "metrics"
 */

#ifndef PIM_TELEMETRY_EXPORT_HH
#define PIM_TELEMETRY_EXPORT_HH

#include <deque>
#include <ostream>
#include <string>
#include <vector>

#include "telemetry/registry.hh"

namespace pim::util {
class JsonWriter;
}

namespace pim::telemetry {

/** Named registries for a multi-configuration bench. */
class MetricSet
{
  public:
    /** @param enabled false = add() returns nullptr, emit no-ops. */
    explicit MetricSet(bool enabled) : enabled_(enabled) {}

    bool enabled() const { return enabled_; }

    /** New registry labeled @p name; nullptr when disabled. */
    Registry *add(std::string name);

    /** The registry labeled @p name (nullptr if absent/disabled). */
    const Registry *find(const std::string &name) const;

    struct Entry
    {
        std::string name;
        const Registry *registry;
    };

    /** The registries added so far, in add() order. */
    std::vector<Entry> entries() const;

  private:
    bool enabled_;
    std::deque<Registry> registries_;
    std::vector<std::string> names_;
};

/**
 * Print each registry's summary tables on @p out when
 * @p print_tables; a disabled set is a silent no-op.
 */
void printMetrics(std::ostream &out, const MetricSet &metrics,
                  bool print_tables);

/**
 * Emit key "metrics" + one object per registry (keyed by its add()
 * name) into an open JSON object; no-op when the set is disabled, so
 * metric-free BENCH json stays byte-identical.
 */
void writeMetricsJson(util::JsonWriter &j, const MetricSet &metrics);

} // namespace pim::telemetry

#endif // PIM_TELEMETRY_EXPORT_HH
