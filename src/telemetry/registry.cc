#include "telemetry/registry.hh"

#include <cstdio>
#include <sstream>

#include "util/json.hh"
#include "util/table.hh"

namespace pim::telemetry {

namespace {

/** Full-precision double (round-trips exactly; snapshot identity). */
std::string
fullPrec(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

void
writeHistogram(util::JsonWriter &j, const Histogram &h)
{
    j.beginObject();
    j.key("count").value(h.count());
    j.key("min").value(h.min());
    j.key("max").value(h.max());
    j.key("mean").value(h.mean());
    j.key("p50").value(h.p50());
    j.key("p90").value(h.p90());
    j.key("p95").value(h.p95());
    j.key("p99").value(h.p99());
    j.endObject();
}

} // namespace

void
Registry::writeJson(util::JsonWriter &j) const
{
    j.beginObject();
    j.key("counters").beginObject();
    for (const auto &[name, c] : counters_)
        j.key(name).value(c.value());
    j.endObject();
    j.key("gauges").beginObject();
    for (const auto &[name, g] : gauges_)
        j.key(name).value(g.value());
    j.endObject();
    j.key("histograms").beginObject();
    for (const auto &[name, h] : hists_) {
        j.key(name);
        writeHistogram(j, h);
    }
    j.endObject();
    j.key("timeline").beginObject();
    j.key("cadence_sec").value(sampler_.cadence());
    j.key("series").beginArray();
    for (const auto &s : sampler_.snapshot()) {
        j.beginObject();
        j.key("name").value(s.name);
        j.key("kind").value(s.level ? "level" : "utilization");
        j.key("values").beginArray();
        for (const double v : s.values)
            j.value(v);
        j.endArray();
        j.endObject();
    }
    j.endArray();
    j.endObject();
    j.key("slo").beginObject();
    for (const auto &[name, s] : slo_.scores()) {
        j.key(name).beginObject();
        j.key("target_sec").value(s.target);
        j.key("samples").value(s.samples);
        j.key("violations").value(s.violations);
        j.key("attainment_pct").value(s.attainmentPct());
        j.key("worst_excursion").value(s.worstExcursion);
        j.endObject();
    }
    j.endObject();
    // Host-wall measurements last: real-time values (drain phase walls,
    // commands/s) that vary run to run — not part of the deterministic
    // registry shape above, and absent from snapshotString().
    if (!hostGauges_.empty()) {
        j.key("host_wall").beginObject();
        for (const auto &[name, g] : hostGauges_)
            j.key(name).value(g.value());
        j.endObject();
    }
    j.endObject();
}

std::vector<util::Table>
Registry::tables(const std::string &title) const
{
    std::vector<util::Table> out;
    if (!counters_.empty() || !gauges_.empty()) {
        util::Table t("Metrics: " + title);
        t.setHeader({"Metric", "Value"});
        for (const auto &[name, c] : counters_)
            t.addRow({name, util::Table::num(c.value())});
        for (const auto &[name, g] : gauges_)
            t.addRow({name, util::Table::num(g.value(), 3)});
        out.push_back(std::move(t));
    }
    if (!hostGauges_.empty()) {
        util::Table t("Host-wall metrics: " + title);
        t.setHeader({"Metric", "Value"});
        for (const auto &[name, g] : hostGauges_)
            t.addRow({name, util::Table::num(g.value(), 3)});
        out.push_back(std::move(t));
    }
    if (!hists_.empty()) {
        util::Table t("Latency histograms: " + title);
        t.setHeader({"Histogram", "Count", "Min", "p50", "p90", "p95",
                     "p99", "Max", "Mean"});
        for (const auto &[name, h] : hists_) {
            t.addRow({name, util::Table::num(h.count()),
                      util::Table::num(h.min(), 6),
                      util::Table::num(h.p50(), 6),
                      util::Table::num(h.p90(), 6),
                      util::Table::num(h.p95(), 6),
                      util::Table::num(h.p99(), 6),
                      util::Table::num(h.max(), 6),
                      util::Table::num(h.mean(), 6)});
        }
        out.push_back(std::move(t));
    }
    if (!slo_.empty()) {
        util::Table t("SLO attainment: " + title);
        t.setHeader({"SLO", "Target (s)", "Samples", "Violations",
                     "Attainment %", "Worst excursion"});
        for (const auto &[name, s] : slo_.scores()) {
            t.addRow({name, util::Table::num(s.target, 6),
                      util::Table::num(s.samples),
                      util::Table::num(s.violations),
                      util::Table::num(s.attainmentPct(), 2),
                      util::Table::num(s.worstExcursion, 3)});
        }
        out.push_back(std::move(t));
    }
    return out;
}

std::string
Registry::snapshotString() const
{
    std::ostringstream os;
    for (const auto &[name, c] : counters_)
        os << "counter " << name << " = " << c.value() << "\n";
    for (const auto &[name, g] : gauges_)
        os << "gauge " << name << " = " << fullPrec(g.value()) << "\n";
    for (const auto &[name, h] : hists_) {
        os << "hist " << name << " count=" << h.count()
           << " zero=" << h.zeroCount()
           << " min=" << fullPrec(h.min())
           << " max=" << fullPrec(h.max()) << " buckets={";
        for (const auto &[idx, n] : h.buckets())
            os << idx << ":" << n << ",";
        os << "}\n";
    }
    for (const auto &s : sampler_.snapshot()) {
        os << "series " << s.name << (s.level ? " level" : " util")
           << " cadence=" << fullPrec(sampler_.cadence()) << " [";
        for (const double v : s.values)
            os << fullPrec(v) << ",";
        os << "]\n";
    }
    for (const auto &[name, s] : slo_.scores()) {
        os << "slo " << name << " target=" << fullPrec(s.target)
           << " samples=" << s.samples
           << " violations=" << s.violations
           << " worst=" << fullPrec(s.worstExcursion) << "\n";
    }
    return os.str();
}

} // namespace pim::telemetry
