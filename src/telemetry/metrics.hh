/**
 * @file
 * Low-overhead metric primitives: named counters, gauges, and an
 * HDR-style log-linear histogram that answers p50/p90/p95/p99/max
 * without storing samples.
 *
 * Everything here is deterministic by construction: a Histogram keeps
 * only integer bucket counts plus the exact min/max, so merge() is
 * bit-exactly associative and commutative (no floating-point sum whose
 * result depends on addition order), and every derived statistic
 * (mean, quantiles) is a pure function of that state. Instrumented
 * code always updates metrics from the sequential command-queue fold,
 * so snapshots are bit-identical for any PIM_SIM_THREADS.
 */

#ifndef PIM_TELEMETRY_METRICS_HH
#define PIM_TELEMETRY_METRICS_HH

#include <cstdint>
#include <map>

namespace pim::telemetry {

/** Monotonic event count (commands resolved, bytes moved, retries). */
class Counter
{
  public:
    void add(uint64_t n = 1) { v_ += n; }
    uint64_t value() const { return v_; }
    void merge(const Counter &o) { v_ += o.v_; }

  private:
    uint64_t v_ = 0;
};

/** Last-write-wins instantaneous value (free ranks, batch size). */
class Gauge
{
  public:
    void set(double v) { v_ = v; }
    double value() const { return v_; }

  private:
    double v_ = 0.0;
};

/**
 * Log-linear histogram (HDR-histogram bucketing): each power-of-two
 * octave of the positive reals splits into kSub equal-width
 * sub-buckets, so the relative width of any bucket is at most
 * 2/kSub ≈ 3.1% and a bucket-midpoint quantile is within ~1.6% of the
 * exact sample quantile. Non-positive samples land in a dedicated zero
 * bucket (they have no octave).
 *
 * Stored state: sparse integer bucket counts, the zero-bucket count,
 * and the exact min/max. Quantiles are nearest-rank over the
 * cumulative bucket counts, reported at the bucket midpoint and
 * clamped into [min, max] so max() and one-sample histograms are
 * exact.
 */
class Histogram
{
  public:
    /** Sub-buckets per power-of-two octave. */
    static constexpr int32_t kSub = 64;

    /** Record one sample. */
    void add(double v);

    /** Fold @p o in; bit-exactly associative and commutative. */
    void merge(const Histogram &o);

    uint64_t count() const { return count_; }
    bool empty() const { return count_ == 0; }

    /** Exact smallest / largest recorded sample (0 when empty). */
    double min() const { return count_ == 0 ? 0.0 : min_; }
    double max() const { return count_ == 0 ? 0.0 : max_; }

    /** Mean over bucket midpoints (≤ ~1.6% relative error). */
    double mean() const;

    /**
     * Nearest-rank quantile for @p q in [0, 1], at the bucket
     * midpoint, clamped into [min, max]. 0 when empty.
     */
    double quantile(double q) const;

    double p50() const { return quantile(0.50); }
    double p90() const { return quantile(0.90); }
    double p95() const { return quantile(0.95); }
    double p99() const { return quantile(0.99); }

    /** Bucket index of positive @p v: octave * kSub + sub-bucket. */
    static int32_t bucketIndex(double v);

    /** Inclusive lower / exclusive upper bound of bucket @p idx. */
    static double bucketLow(int32_t idx);
    static double bucketHigh(int32_t idx);
    /** Representative value of bucket @p idx (the midpoint). */
    static double bucketMid(int32_t idx);

    /** Sparse positive-sample buckets (index -> count). */
    const std::map<int32_t, uint64_t> &buckets() const
    {
        return buckets_;
    }

    /** Samples <= 0 (tracked apart: they have no log bucket). */
    uint64_t zeroCount() const { return zero_; }

  private:
    std::map<int32_t, uint64_t> buckets_;
    uint64_t zero_ = 0;
    uint64_t count_ = 0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace pim::telemetry

#endif // PIM_TELEMETRY_METRICS_HH
