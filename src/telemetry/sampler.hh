/**
 * @file
 * Simulated-time series sampler. The CommandQueue drives it from the
 * sequential drain fold: every resolved command reports the intervals
 * it occupied (bus, host lanes, ranks) and its in-flight window, and
 * the sampler bins them at a fixed simulated-time cadence. Because the
 * fold runs in enqueue order regardless of the worker-thread count,
 * the binned series are bit-identical across PIM_SIM_THREADS — and
 * because the clock is the modeled timeline, the curves are properties
 * of the experiment, not of the host machine.
 *
 * Two series kinds:
 *  - utilization: accumulate(sid, t0, t1) distributes busy seconds
 *    over the bins the interval overlaps; a bin's value is
 *    busy / cadence (a fraction for a single lane, an average
 *    busy-resource count for aggregated series like "ranks_busy").
 *  - level: eventDelta(sid, t, ±1) records steps (queue depth); a
 *    bin's value is the level at the end of the bin (prefix sum).
 */

#ifndef PIM_TELEMETRY_SAMPLER_HH
#define PIM_TELEMETRY_SAMPLER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pim::telemetry {

/** Fixed-cadence simulated-time series store. */
class TimelineSampler
{
  public:
    /** @param cadence_sec bin width in simulated seconds. */
    explicit TimelineSampler(double cadence_sec = 0.01);

    double cadence() const { return cadence_; }

    /** Get-or-create the utilization series named @p name. */
    int series(const std::string &name);

    /** Get-or-create the level series named @p name. */
    int levelSeries(const std::string &name);

    /** True if @p name exists (does not create). */
    bool has(const std::string &name) const
    {
        return index_.count(name) != 0;
    }

    /** Add the busy interval [t0, t1) to utilization series @p sid. */
    void accumulate(int sid, double t0, double t1);

    /** Apply @p delta to level series @p sid at time @p t. */
    void eventDelta(int sid, double t, int64_t delta);

    /** One exported series: per-bin values at the shared cadence. */
    struct SeriesSnapshot
    {
        std::string name;
        /** Level series (queue depth) vs utilization series. */
        bool level = false;
        /** Bin i covers [i*cadence, (i+1)*cadence). */
        std::vector<double> values;
    };

    /** All series, in creation order, padded to the common length. */
    std::vector<SeriesSnapshot> snapshot() const;

    /** True if no series was ever created. */
    bool empty() const { return series_.empty(); }

  private:
    struct Series
    {
        std::string name;
        bool level = false;
        /** Utilization: busy seconds per bin. */
        std::vector<double> busy;
        /** Level: step deltas keyed by bin. */
        std::map<int64_t, int64_t> deltas;
    };

    int64_t binOf(double t) const;

    double cadence_;
    std::vector<Series> series_;
    std::map<std::string, int> index_;
    /** Highest bin touched by any series (snapshot padding). */
    int64_t maxBin_ = -1;
};

} // namespace pim::telemetry

#endif // PIM_TELEMETRY_SAMPLER_HH
