#include "telemetry/sampler.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace pim::telemetry {

TimelineSampler::TimelineSampler(double cadence_sec)
    : cadence_(cadence_sec)
{
    PIM_ASSERT(cadence_sec > 0.0,
               "sampler cadence must be positive, got ", cadence_sec);
}

int
TimelineSampler::series(const std::string &name)
{
    const auto it = index_.find(name);
    if (it != index_.end())
        return it->second;
    const int sid = static_cast<int>(series_.size());
    series_.push_back(Series{name, /*level=*/false, {}, {}});
    index_.emplace(name, sid);
    return sid;
}

int
TimelineSampler::levelSeries(const std::string &name)
{
    const auto it = index_.find(name);
    if (it != index_.end())
        return it->second;
    const int sid = static_cast<int>(series_.size());
    series_.push_back(Series{name, /*level=*/true, {}, {}});
    index_.emplace(name, sid);
    return sid;
}

int64_t
TimelineSampler::binOf(double t) const
{
    return static_cast<int64_t>(
        std::floor(std::max(0.0, t) / cadence_));
}

void
TimelineSampler::accumulate(int sid, double t0, double t1)
{
    if (!(t1 > t0))
        return;
    t0 = std::max(0.0, t0);
    t1 = std::max(t0, t1);
    Series &s = series_[static_cast<size_t>(sid)];
    const int64_t b0 = binOf(t0);
    const int64_t b1 = binOf(t1);
    if (static_cast<int64_t>(s.busy.size()) <= b1)
        s.busy.resize(static_cast<size_t>(b1) + 1, 0.0);
    maxBin_ = std::max(maxBin_, b1);
    for (int64_t b = b0; b <= b1; ++b) {
        const double lo = std::max(t0, static_cast<double>(b) * cadence_);
        const double hi =
            std::min(t1, static_cast<double>(b + 1) * cadence_);
        if (hi > lo)
            s.busy[static_cast<size_t>(b)] += hi - lo;
    }
}

void
TimelineSampler::eventDelta(int sid, double t, int64_t delta)
{
    Series &s = series_[static_cast<size_t>(sid)];
    const int64_t b = binOf(t);
    s.deltas[b] += delta;
    maxBin_ = std::max(maxBin_, b);
}

std::vector<TimelineSampler::SeriesSnapshot>
TimelineSampler::snapshot() const
{
    const size_t bins =
        maxBin_ < 0 ? 0 : static_cast<size_t>(maxBin_) + 1;
    std::vector<SeriesSnapshot> out;
    out.reserve(series_.size());
    for (const Series &s : series_) {
        SeriesSnapshot snap;
        snap.name = s.name;
        snap.level = s.level;
        snap.values.assign(bins, 0.0);
        if (s.level) {
            // A bin's value is the level after all steps in it: the
            // running prefix sum of the per-bin deltas.
            int64_t lvl = 0;
            auto it = s.deltas.begin();
            for (size_t b = 0; b < bins; ++b) {
                while (it != s.deltas.end()
                       && it->first == static_cast<int64_t>(b)) {
                    lvl += it->second;
                    ++it;
                }
                snap.values[b] = static_cast<double>(lvl);
            }
        } else {
            for (size_t b = 0; b < s.busy.size(); ++b)
                snap.values[b] = s.busy[b] / cadence_;
        }
        out.push_back(std::move(snap));
    }
    return out;
}

} // namespace pim::telemetry
