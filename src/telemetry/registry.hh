/**
 * @file
 * The metrics registry: one attachable sink holding named counters,
 * gauges, and histograms plus one TimelineSampler and one SloTracker,
 * so a single pointer wires a whole run's observability. Producers
 * (CommandQueue, RankScheduler, FaultInjector, the workload drivers)
 * update it only from sequential control paths — never from the
 * parallel launch-body phase — so a snapshot is bit-identical for any
 * PIM_SIM_THREADS. With no registry attached every instrumented path
 * costs one pointer test.
 *
 * Export surfaces: writeJson() emits the "metrics" BENCH-json block,
 * tables() renders human util::Table summaries (--metrics), and
 * snapshotString() is the canonical textual dump the thread-count
 * invariance tests compare byte-for-byte.
 */

#ifndef PIM_TELEMETRY_REGISTRY_HH
#define PIM_TELEMETRY_REGISTRY_HH

#include <map>
#include <string>
#include <vector>

#include "telemetry/metrics.hh"
#include "telemetry/sampler.hh"
#include "telemetry/slo.hh"

namespace pim::util {
class JsonWriter;
class Table;
}

namespace pim::telemetry {

/** Named metrics + sampler + SLO scores of one run. */
class Registry
{
  public:
    explicit Registry(double sampler_cadence_sec = 0.01)
        : sampler_(sampler_cadence_sec)
    {
    }

    /** Get-or-create; references stay valid for the registry's life
     *  (std::map nodes are stable), so producers may cache them. */
    Counter &counter(const std::string &name) { return counters_[name]; }
    Gauge &gauge(const std::string &name) { return gauges_[name]; }
    Histogram &histogram(const std::string &name) { return hists_[name]; }

    /**
     * Get-or-create a *host-wall* gauge: a measurement of real host
     * time (drain phase walls, commands/s), which varies run to run and
     * across PIM_SIM_THREADS by nature. Host-wall gauges are exported
     * by writeJson() (under "host_wall") and tables(), but deliberately
     * EXCLUDED from snapshotString() — the snapshot is the simulated-
     * time determinism contract, and a wall-clock value in it would
     * break the byte-for-byte thread-count invariance every other
     * metric upholds.
     */
    Gauge &hostGauge(const std::string &name)
    {
        return hostGauges_[name];
    }

    TimelineSampler &sampler() { return sampler_; }
    const TimelineSampler &sampler() const { return sampler_; }

    SloTracker &slo() { return slo_; }
    const SloTracker &slo() const { return slo_; }

    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, Gauge> &gauges() const
    {
        return gauges_;
    }
    const std::map<std::string, Histogram> &histograms() const
    {
        return hists_;
    }
    const std::map<std::string, Gauge> &hostGauges() const
    {
        return hostGauges_;
    }

    /**
     * Emit this registry as one JSON object value (the caller writes
     * the surrounding key): {"counters": {...}, "gauges": {...},
     * "histograms": {name: {count,min,max,mean,p50,p90,p95,p99}},
     * "timeline": {cadence_sec, series: [...]}, "slo": {...}}.
     */
    void writeJson(util::JsonWriter &j) const;

    /**
     * Human summary tables (counters+gauges, histograms, SLOs; empty
     * sections are skipped). Titles are prefixed with @p title.
     */
    std::vector<util::Table> tables(const std::string &title) const;

    /**
     * Canonical textual dump of the complete state — every counter,
     * gauge, histogram bucket, sampler bin, and SLO score printed with
     * full precision. Two runs are metric-equivalent iff their
     * snapshot strings match byte-for-byte (the PIM_SIM_THREADS
     * invariance contract).
     */
    std::string snapshotString() const;

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Gauge> gauges_;
    /** Host-wall measurements; see hostGauge() for the contract. */
    std::map<std::string, Gauge> hostGauges_;
    std::map<std::string, Histogram> hists_;
    TimelineSampler sampler_;
    SloTracker slo_;
};

} // namespace pim::telemetry

#endif // PIM_TELEMETRY_REGISTRY_HH
