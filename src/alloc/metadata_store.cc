#include "alloc/metadata_store.hh"

#include "alloc/cost_model.hh"
#include "util/logging.hh"

namespace pim::alloc {

MetadataStore::MetadataStore(sim::Dpu &dpu, sim::MramAddr mram_base,
                             uint32_t num_nodes)
    : dpu_(dpu), base_(mram_base), numNodes_(num_nodes),
      wordCount_((num_nodes + kNodesPerWord - 1) / kNodesPerWord)
{
    PIM_ASSERT(num_nodes > 0, "metadata store needs at least one node");
    PIM_ASSERT(static_cast<uint64_t>(mram_base) + bytes()
                   <= dpu.mram().size(),
               "metadata array does not fit in MRAM");
}

NodeState
MetadataStore::rawGet(uint32_t node) const
{
    PIM_ASSERT(node < numNodes_, "node index out of range: ", node);
    const uint32_t word = dpu_.mram().read<uint32_t>(wordAddr(node));
    return static_cast<NodeState>((word >> bitShift(node)) & 0x3u);
}

void
MetadataStore::rawSet(uint32_t node, NodeState s)
{
    PIM_ASSERT(node < numNodes_, "node index out of range: ", node);
    const sim::MramAddr addr = wordAddr(node);
    uint32_t word = dpu_.mram().read<uint32_t>(addr);
    word &= ~(0x3u << bitShift(node));
    word |= static_cast<uint32_t>(s) << bitShift(node);
    dpu_.mram().write<uint32_t>(addr, word);
}

void
MetadataStore::reset(sim::Tasklet &t)
{
    dpu_.mram().fill(base_, bytes(), 0);
    // Bulk zeroing is one streaming DMA over the array.
    t.dmaWrite(base_, bytes(), sim::TrafficClass::Metadata);
}

// --- DirectStore ---

NodeState
DirectStore::get(sim::Tasklet &t, uint32_t node)
{
    (void)t;
    ++accesses_;
    return rawGet(node);
}

void
DirectStore::set(sim::Tasklet &t, uint32_t node, NodeState s)
{
    (void)t;
    ++accesses_;
    rawSet(node, s);
}

void
DirectStore::flush(sim::Tasklet &t)
{
    (void)t;
}

// --- SwBufferStore ---

SwBufferStore::SwBufferStore(sim::Dpu &dpu, sim::MramAddr mram_base,
                             uint32_t num_nodes, uint32_t buffer_bytes)
    : MetadataStore(dpu, mram_base, num_nodes), bufferBytes_(buffer_bytes)
{
    PIM_ASSERT(buffer_bytes >= kWordBytes,
               "SW buffer must hold at least one word");
    dpu.wramReserve(buffer_bytes);
}

void
SwBufferStore::ensureResident(sim::Tasklet &t, uint32_t node)
{
    const uint32_t byte_off = (node / kNodesPerWord) * kWordBytes;
    const uint32_t window = byte_off - byte_off % bufferBytes_;
    if (valid_ && window == windowStart_) {
        ++hits_;
        t.execute(cost::kSwBufferHitInstrs);
        return;
    }
    ++misses_;
    t.execute(cost::kSwBufferMissInstrs);
    // Coarse-grained policy: flush the whole window, reload the whole
    // window containing the requested word (Fig 13(a), lines 8-15).
    uint32_t resident = std::min(bufferBytes_, bytes() - windowStart_);
    if (valid_ && dirty_) {
        t.dmaWrite(base_ + windowStart_, resident,
                   sim::TrafficClass::Metadata);
    }
    windowStart_ = window;
    resident = std::min(bufferBytes_, bytes() - windowStart_);
    t.dmaRead(base_ + windowStart_, resident, sim::TrafficClass::Metadata);
    valid_ = true;
    dirty_ = false;
}

NodeState
SwBufferStore::get(sim::Tasklet &t, uint32_t node)
{
    ++accesses_;
    ensureResident(t, node);
    return rawGet(node);
}

void
SwBufferStore::set(sim::Tasklet &t, uint32_t node, NodeState s)
{
    ++accesses_;
    ensureResident(t, node);
    rawSet(node, s);
    dirty_ = true;
}

void
SwBufferStore::flush(sim::Tasklet &t)
{
    if (valid_ && dirty_) {
        const uint32_t resident =
            std::min(bufferBytes_, bytes() - windowStart_);
        t.dmaWrite(base_ + windowStart_, resident,
                   sim::TrafficClass::Metadata);
        dirty_ = false;
    }
}

void
SwBufferStore::reset(sim::Tasklet &t)
{
    MetadataStore::reset(t);
    valid_ = false;
    dirty_ = false;
}

// --- DataCacheStore ---

DataCacheStore::DataCacheStore(sim::Dpu &dpu, sim::MramAddr mram_base,
                               uint32_t num_nodes, uint32_t line_bytes,
                               uint32_t lines)
    : MetadataStore(dpu, mram_base, num_nodes), lineBytes_(line_bytes),
      lines_(lines)
{
    PIM_ASSERT(line_bytes >= kWordBytes && lines > 0,
               "invalid data cache geometry");
}

void
DataCacheStore::ensureResident(sim::Tasklet &t, uint32_t node,
                               bool mark_dirty)
{
    const uint32_t byte_off = (node / kNodesPerWord) * kWordBytes;
    const uint32_t tag = byte_off - byte_off % lineBytes_;
    // 1-cycle tag check, like any L1 hit.
    t.stall(1, sim::CycleKind::Run);
    for (auto &l : lines_) {
        if (l.valid && l.tag == tag) {
            ++hits_;
            l.lastUse = ++useClock_;
            l.dirty |= mark_dirty;
            return;
        }
    }
    ++misses_;
    // Coarse-grained line fill: the granularity mismatch the paper's
    // Section VII calls out — a whole 64 B line moves for 2 bits of
    // metadata.
    Line *victim = nullptr;
    for (auto &l : lines_) {
        if (!l.valid) {
            victim = &l;
            break;
        }
        if (!victim || l.lastUse < victim->lastUse)
            victim = &l;
    }
    if (victim->valid && victim->dirty)
        t.dmaWrite(base_ + victim->tag, lineBytes_,
                   sim::TrafficClass::Metadata);
    t.dmaRead(base_ + tag, lineBytes_, sim::TrafficClass::Metadata);
    *victim = Line{true, mark_dirty, tag, ++useClock_};
}

NodeState
DataCacheStore::get(sim::Tasklet &t, uint32_t node)
{
    ++accesses_;
    ensureResident(t, node, false);
    return rawGet(node);
}

void
DataCacheStore::set(sim::Tasklet &t, uint32_t node, NodeState s)
{
    ++accesses_;
    ensureResident(t, node, true);
    rawSet(node, s);
}

void
DataCacheStore::flush(sim::Tasklet &t)
{
    for (auto &l : lines_) {
        if (l.valid && l.dirty) {
            t.dmaWrite(base_ + l.tag, lineBytes_,
                       sim::TrafficClass::Metadata);
            l.dirty = false;
        }
    }
}

void
DataCacheStore::reset(sim::Tasklet &t)
{
    MetadataStore::reset(t);
    for (auto &l : lines_)
        l = Line{};
}

// --- HwCacheStore ---

HwCacheStore::HwCacheStore(sim::Dpu &dpu, sim::MramAddr mram_base,
                           uint32_t num_nodes)
    : MetadataStore(dpu, mram_base, num_nodes)
{
    dpu.buddyCache().init();
}

void
HwCacheStore::ensureResident(sim::Tasklet &t, sim::MramAddr word_addr)
{
    auto &cache = dpu_.buddyCache();
    const uint32_t lat = dpu_.config().buddyCache.accessCycles;
    // lookup_bc
    t.stall(lat, sim::CycleKind::Run);
    if (cache.lookup(word_addr))
        return;
    // Miss: fetch exactly the requested word from DRAM (fine-grained),
    // then fill via write_bc, writing back a dirty LRU victim if any.
    t.execute(cost::kHwCacheMissInstrs);
    t.dmaRead(word_addr, kWordBytes, sim::TrafficClass::Metadata);
    const uint32_t value = dpu_.mram().read<uint32_t>(word_addr);
    auto victim = cache.insert(word_addr, value, false);
    t.stall(lat, sim::CycleKind::Run); // write_bc fill
    if (victim) {
        // The array itself is kept coherent on every set(), so the
        // victim's payload is already in MRAM; charge the write-back.
        t.dmaWrite(victim->first, kWordBytes, sim::TrafficClass::Metadata);
    }
}

NodeState
HwCacheStore::get(sim::Tasklet &t, uint32_t node)
{
    ++accesses_;
    const sim::MramAddr wa = wordAddr(node);
    ensureResident(t, wa);
    // read_bc
    t.stall(dpu_.config().buddyCache.accessCycles, sim::CycleKind::Run);
    dpu_.buddyCache().read(wa);
    return rawGet(node);
}

void
HwCacheStore::set(sim::Tasklet &t, uint32_t node, NodeState s)
{
    ++accesses_;
    const sim::MramAddr wa = wordAddr(node);
    ensureResident(t, wa);
    rawSet(node, s);
    // write_bc updates the cached word in place and marks it dirty; the
    // MRAM array is updated above so reads through any path stay
    // coherent, while the traffic cost of persisting the word is charged
    // when the dirty entry is evicted or flushed.
    t.stall(dpu_.config().buddyCache.accessCycles, sim::CycleKind::Run);
    dpu_.buddyCache().write(wa, dpu_.mram().read<uint32_t>(wa));
}

void
HwCacheStore::flush(sim::Tasklet &t)
{
    for (auto &wb : dpu_.buddyCache().flushDirty())
        t.dmaWrite(wb.first, kWordBytes, sim::TrafficClass::Metadata);
}

void
HwCacheStore::reset(sim::Tasklet &t)
{
    MetadataStore::reset(t);
    dpu_.buddyCache().init();
}

} // namespace pim::alloc
