/**
 * @file
 * PIM-malloc (Section IV): the paper's fast and scalable dynamic memory
 * allocator for PIM, in both variants.
 *
 *  - PIM-malloc-SW:     per-tasklet thread caches in front of a 14-level
 *                       buddy backend whose metadata is reached through
 *                       the coarse software-managed WRAM buffer.
 *  - PIM-malloc-HW/SW:  identical, except the backend metadata is
 *                       reached through the per-core hardware buddy
 *                       cache (fine-grained LRU, write-back).
 *
 * Both variants exist in eager (default; initAllocator pre-populates one
 * span per size class per tasklet) and lazy (PIM-malloc-lazy, Table III)
 * flavours.
 */

#ifndef PIM_ALLOC_PIM_MALLOC_HH
#define PIM_ALLOC_PIM_MALLOC_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "alloc/allocator.hh"
#include "alloc/buddy_tree.hh"
#include "alloc/straw_man.hh"
#include "alloc/thread_cache.hh"
#include "sim/dpu.hh"
#include "sim/mutex.hh"

namespace pim::alloc {

/** Configuration of a PIM-malloc instance (one per DPU). */
struct PimMallocConfig
{
    /** MRAM byte offset where metadata + heap are placed. */
    sim::MramAddr base = 0;
    /** Heap capacity (paper: 32 MB). */
    uint32_t heapBytes = 32u << 20;
    /** Backend buddy minimum block == thread-cache span (paper: 4 KB). */
    uint32_t spanBytes = 4096;
    /** Frontend size classes (paper: 16 B .. 2 KB, 8 classes). */
    std::vector<uint32_t> sizeClasses{16, 32, 64, 128, 256, 512, 1024, 2048};
    /** Backend metadata access path: SwBuffer => PIM-malloc-SW,
     *  HwCache => PIM-malloc-HW/SW. */
    MetadataMode metadata = MetadataMode::SwBuffer;
    /** WRAM window of the software-managed buffer (SwBuffer mode). */
    uint32_t swBufferBytes = 2048;
    /** Eager pre-population of thread caches (false => -lazy). */
    bool prePopulate = true;
    /** Tasklets that will use this allocator (thread caches created). */
    unsigned numTasklets = 16;
    /** Span records per thread cache; 0 = derive from WRAM budget. */
    uint32_t maxSpansPerTasklet = 0;
};

/** The hierarchical PIM-malloc allocator. */
class PimMallocAllocator : public Allocator
{
  public:
    PimMallocAllocator(sim::Dpu &dpu, const PimMallocConfig &cfg);

    void init(sim::Tasklet &t) override;
    sim::MramAddr malloc(sim::Tasklet &t, uint32_t size) override;
    bool free(sim::Tasklet &t, sim::MramAddr addr) override;
    const AllocStats &stats() const override { return stats_; }
    AllocStats &stats() override { return stats_; }
    uint64_t metadataBytes() const override;
    std::string name() const override;

    /** Backend buddy tree (tests, characterization). */
    BuddyTree &backend() { return *tree_; }

    /** Thread cache of tasklet @p id. */
    ThreadCache &cache(unsigned id) { return *caches_.at(id); }

    /** Backend mutex (contention statistics). */
    const sim::SimMutex &mutex() const { return mutex_; }

    const sim::SimMutex *contentionMutex() const override
    {
        return &mutex_;
    }

    /** Configuration in effect. */
    const PimMallocConfig &config() const { return cfg_; }

    /** MRAM metadata footprint of the backend tree alone. */
    uint64_t backendMetadataBytes() const { return store_->bytes(); }

    /** WRAM footprint of live thread-cache span records. */
    uint64_t threadCacheMetadataBytes() const;

  private:
    /** Bookkeeping for one live user block. */
    struct LiveBlock
    {
        uint32_t requested;      ///< user-visible size
        bool bypass;             ///< true if serviced by the backend
        uint8_t cls;             ///< size class (frontend blocks)
        unsigned taskletId;      ///< owning thread cache
        sim::MramAddr spanBase;  ///< span containing the block
    };

    /** Lock, allocate from the buddy, unlock. */
    sim::MramAddr backendAlloc(sim::Tasklet &t, uint32_t size);

    /** Lock, free to the buddy, unlock. */
    uint32_t backendFree(sim::Tasklet &t, sim::MramAddr addr);

    sim::Dpu &dpu_;
    PimMallocConfig cfg_;
    std::unique_ptr<MetadataStore> store_;
    std::unique_ptr<BuddyTree> tree_;
    ThreadCacheConfig tcCfg_;
    std::vector<std::unique_ptr<ThreadCache>> caches_;
    sim::SimMutex mutex_;
    AllocStats stats_;
    std::unordered_map<sim::MramAddr, LiveBlock> live_;
    bool initialized_ = false;
};

} // namespace pim::alloc

#endif // PIM_ALLOC_PIM_MALLOC_HH
