/**
 * @file
 * Reimplementation of UPMEM's scratchpad buddy_alloc() (Section II-A):
 * a buddy allocator over a small WRAM heap whose metadata also lives in
 * WRAM, so no MRAM DMA is ever needed. It is deliberately standalone
 * (not built on BuddyTree) so tests can use it as an independent
 * reference implementation of the buddy algorithm.
 */

#ifndef PIM_ALLOC_WRAM_BUDDY_HH
#define PIM_ALLOC_WRAM_BUDDY_HH

#include <cstdint>
#include <vector>

#include "sim/dpu.hh"
#include "sim/mutex.hh"
#include "sim/tasklet.hh"

namespace pim::alloc {

/** Return value for WRAM allocation failure. */
inline constexpr uint32_t kWramNull = UINT32_MAX;

/** Scratchpad buddy allocator (UPMEM SDK's buddy_alloc equivalent). */
class WramBuddy
{
  public:
    /**
     * @param dpu        owning DPU; heap and metadata WRAM are reserved
     *                   from its scratchpad budget.
     * @param heap_bytes WRAM heap size (UPMEM default 32 KB, max 64 KB).
     * @param min_block  smallest allocation (UPMEM: 32 B).
     */
    WramBuddy(sim::Dpu &dpu, uint32_t heap_bytes = 32u << 10,
              uint32_t min_block = 32);

    /**
     * Allocate @p size bytes of WRAM.
     * @return WRAM offset, or kWramNull on exhaustion.
     */
    uint32_t alloc(sim::Tasklet &t, uint32_t size);

    /**
     * Free a block previously returned by alloc().
     * @return false on an invalid or double free.
     */
    bool free(sim::Tasklet &t, uint32_t addr);

    /** Tree levels (UPMEM's 32 KB / 32 B heap: 11 levels). */
    uint32_t levels() const { return levels_; }

    /** Metadata footprint in WRAM bytes (one byte per node here). */
    uint32_t metadataBytes() const;

    /** Heap bytes currently allocated (after power-of-two rounding). */
    uint64_t allocatedBytes() const { return allocatedBytes_; }

  private:
    enum class State : uint8_t { Free = 0, Split = 1, Allocated = 2 };

    uint32_t blockSize(uint32_t level) const { return heapBytes_ >> level; }
    uint32_t offsetOf(uint32_t node, uint32_t level) const;
    uint32_t tryAlloc(sim::Tasklet &t, uint32_t node, uint32_t level,
                      uint32_t target);

    sim::Dpu &dpu_;
    uint32_t heapBytes_;
    uint32_t minBlock_;
    uint32_t levels_;
    uint32_t heapBase_; ///< WRAM offset of the heap region
    std::vector<State> states_;
    sim::SimMutex mutex_;
    uint64_t allocatedBytes_ = 0;
};

} // namespace pim::alloc

#endif // PIM_ALLOC_WRAM_BUDDY_HH
