/**
 * @file
 * PIM-malloc's frontend: the per-tasklet thread cache (Section IV-A).
 *
 * Each tasklet owns eight linked lists, one per power-of-two size class
 * from 16 B to 2 KB. Each list holds 4 KB spans obtained from the buddy
 * backend, subdivided into fixed-size sub-blocks whose allocation state
 * is a per-span bitmap (bit = 1 means free, as in the paper's Fig 9(b)).
 * Because every list is an independent pool of fixed-size chunks there
 * is no external fragmentation inside the cache, and because the cache
 * is private to its tasklet no mutex is ever taken on the fast path.
 *
 * Lists keep spans with free sub-blocks at the front: a span that
 * becomes full is rotated to the back, and a full span that receives a
 * free is rotated to the front, so the allocation fast path touches a
 * bounded number of records regardless of how many spans are live.
 * Span records themselves are MRAM-resident (Section VI-E accounts
 * them per workload, far beyond the 64 KB scratchpad); only the list
 * heads live in WRAM.
 */

#ifndef PIM_ALLOC_THREAD_CACHE_HH
#define PIM_ALLOC_THREAD_CACHE_HH

#include <array>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "sim/tasklet.hh"
#include "sim/types.hh"

namespace pim::alloc {

/** Thread cache tuning parameters. */
struct ThreadCacheConfig
{
    /** Span granularity fetched from the buddy backend (paper: 4 KB). */
    uint32_t spanBytes = 4096;
    /** Size classes, ascending powers of two (paper: 16 B .. 2 KB). */
    std::vector<uint32_t> sizeClasses{16, 32, 64, 128, 256, 512, 1024, 2048};
    /** Max simultaneously held span records, per cache. */
    uint32_t maxSpans = 8192;
};

/** The per-tasklet frontend allocator. */
class ThreadCache
{
  public:
    /** MRAM bytes of one span record: base + 256-bit bitmap + counters. */
    static constexpr uint32_t kSpanRecordBytes = 48;

    ThreadCache(unsigned owner, const ThreadCacheConfig &cfg);

    /**
     * Size-class index for @p size, or -1 when the request exceeds the
     * largest class and must bypass the cache.
     */
    int classFor(uint32_t size) const;

    /**
     * Fast-path allocation from class @p cls.
     * @return sub-block address, or sim::kNullAddr when every span of
     *         the class is full (caller refills via the backend).
     */
    sim::MramAddr tryAlloc(sim::Tasklet &t, unsigned cls);

    /**
     * Add a fresh span (from the backend) to class @p cls.
     * @return false when the record budget is exhausted; the span is
     *         then NOT installed and the caller keeps ownership.
     */
    bool installSpan(sim::Tasklet &t, unsigned cls, sim::MramAddr base);

    /** Result of a free through the cache. */
    struct FreeResult
    {
        bool ok = false;            ///< block was live in the span
        bool spanReleased = false;  ///< span became empty and was dropped
        sim::MramAddr spanBase = sim::kNullAddr; ///< span to return if so
    };

    /**
     * Release sub-block @p addr of class @p cls living in the span based
     * at @p span_base. An empty span is dropped from the list (and must
     * be returned to the backend by the caller) unless it is the last
     * span of its class, which stays cached to serve the next burst.
     */
    FreeResult free(sim::Tasklet &t, unsigned cls, sim::MramAddr span_base,
                    sim::MramAddr addr);

    /** Number of size classes. */
    size_t numClasses() const { return cfg_.sizeClasses.size(); }

    /** Byte size of class @p cls. */
    uint32_t classSize(unsigned cls) const { return cfg_.sizeClasses[cls]; }

    /** Spans currently held in class @p cls. */
    size_t spanCount(unsigned cls) const { return lists_[cls].size(); }

    /** Spans currently held across all classes. */
    size_t totalSpans() const { return index_.size(); }

    /** Free sub-blocks currently available in class @p cls. */
    uint32_t freeBlocks(unsigned cls) const;

    /** High-water mark of simultaneously held spans (metadata sizing). */
    uint32_t peakSpans() const { return peakSpans_; }

    /** Owning tasklet id. */
    unsigned owner() const { return owner_; }

  private:
    /** One 4 KB span and its sub-block bitmap (bit set = free). */
    struct Span
    {
        sim::MramAddr base = sim::kNullAddr;
        std::array<uint64_t, 4> bitmap{};
        uint16_t freeCount = 0;
        uint16_t totalCount = 0;
    };

    using SpanList = std::list<Span>;

    /** Initialize a span's bitmap for @p cls (all sub-blocks free). */
    Span makeSpan(unsigned cls, sim::MramAddr base) const;

    unsigned owner_;
    ThreadCacheConfig cfg_;
    std::vector<SpanList> lists_;
    /** O(1) span lookup by base address: (class, list position). */
    std::unordered_map<sim::MramAddr, std::pair<unsigned, SpanList::iterator>>
        index_;
    uint32_t peakSpans_ = 0;
};

} // namespace pim::alloc

#endif // PIM_ALLOC_THREAD_CACHE_HH
