#include "alloc/thread_cache.hh"

#include <bit>

#include "alloc/cost_model.hh"
#include "util/logging.hh"

namespace pim::alloc {

ThreadCache::ThreadCache(unsigned owner, const ThreadCacheConfig &cfg)
    : owner_(owner), cfg_(cfg), lists_(cfg.sizeClasses.size())
{
    PIM_ASSERT(!cfg.sizeClasses.empty(), "need at least one size class");
    PIM_ASSERT(std::has_single_bit(cfg.spanBytes),
               "span size must be a power of two");
    uint32_t prev = 0;
    for (uint32_t c : cfg_.sizeClasses) {
        PIM_ASSERT(std::has_single_bit(c), "size classes are powers of two");
        PIM_ASSERT(c > prev, "size classes must be ascending");
        PIM_ASSERT(cfg.spanBytes / c <= 256,
                   "span/class ratio exceeds the 256-bit bitmap");
        prev = c;
    }
    PIM_ASSERT(cfg_.sizeClasses.back() <= cfg.spanBytes,
               "largest class must fit in a span");
}

int
ThreadCache::classFor(uint32_t size) const
{
    if (size > cfg_.sizeClasses.back())
        return -1;
    for (size_t i = 0; i < cfg_.sizeClasses.size(); ++i) {
        if (size <= cfg_.sizeClasses[i])
            return static_cast<int>(i);
    }
    return -1;
}

ThreadCache::Span
ThreadCache::makeSpan(unsigned cls, sim::MramAddr base) const
{
    Span s;
    s.base = base;
    s.totalCount = static_cast<uint16_t>(cfg_.spanBytes
                                         / cfg_.sizeClasses[cls]);
    s.freeCount = s.totalCount;
    for (uint32_t i = 0; i < s.totalCount; ++i)
        s.bitmap[i / 64] |= 1ull << (i % 64);
    return s;
}

sim::MramAddr
ThreadCache::tryAlloc(sim::Tasklet &t, unsigned cls)
{
    PIM_ASSERT(cls < lists_.size(), "size class out of range");
    t.execute(cost::kThreadCacheHitInstrs);
    auto &list = lists_[cls];
    // Invariant: spans with free blocks are kept ahead of full spans,
    // so normally only the head needs inspection. Stale full spans at
    // the head are rotated to the back; a full cycle of rotations means
    // everything is full.
    size_t rotations = 0;
    while (!list.empty() && rotations <= list.size()) {
        t.execute(2); // list-hop
        Span &span = list.front();
        if (span.freeCount == 0) {
            ++rotations;
            list.splice(list.end(), list, list.begin());
            index_[span.base].second = std::prev(list.end());
            continue;
        }
        // Scan the bitmap one 64-bit word at a time for a set bit.
        const uint32_t words =
            (static_cast<uint32_t>(span.totalCount) + 63) / 64;
        for (uint32_t w = 0; w < words; ++w) {
            t.execute(cost::kBitmapWordScanInstrs);
            if (span.bitmap[w] == 0)
                continue;
            const uint32_t bit =
                static_cast<uint32_t>(std::countr_zero(span.bitmap[w]));
            const uint32_t idx = w * 64 + bit;
            span.bitmap[w] &= ~(1ull << bit);
            --span.freeCount;
            const sim::MramAddr addr =
                span.base + idx * cfg_.sizeClasses[cls];
            if (span.freeCount == 0 && list.size() > 1) {
                // Rotate the now-full span behind the others.
                list.splice(list.end(), list, list.begin());
                index_[span.base].second = std::prev(list.end());
            }
            return addr;
        }
        PIM_PANIC("span free count disagrees with its bitmap");
    }
    return sim::kNullAddr;
}

bool
ThreadCache::installSpan(sim::Tasklet &t, unsigned cls, sim::MramAddr base)
{
    PIM_ASSERT(cls < lists_.size(), "size class out of range");
    PIM_ASSERT(!index_.count(base), "span already installed");
    if (totalSpans() >= cfg_.maxSpans)
        return false;
    t.execute(cost::kSpanInstallInstrs);
    auto &list = lists_[cls];
    list.push_front(makeSpan(cls, base));
    index_[base] = {cls, list.begin()};
    peakSpans_ = std::max<uint32_t>(peakSpans_,
                                    static_cast<uint32_t>(totalSpans()));
    return true;
}

ThreadCache::FreeResult
ThreadCache::free(sim::Tasklet &t, unsigned cls, sim::MramAddr span_base,
                  sim::MramAddr addr)
{
    PIM_ASSERT(cls < lists_.size(), "size class out of range");
    t.execute(cost::kThreadCacheFreeInstrs);
    const auto idx_it = index_.find(span_base);
    if (idx_it == index_.end() || idx_it->second.first != cls)
        return FreeResult{};
    auto &list = lists_[cls];
    const auto span_it = idx_it->second.second;
    Span &span = *span_it;

    const uint32_t offset = addr - span.base;
    const uint32_t cls_size = cfg_.sizeClasses[cls];
    if (offset % cls_size != 0)
        return FreeResult{};
    const uint32_t sub = offset / cls_size;
    if (sub >= span.totalCount)
        return FreeResult{};
    const uint64_t mask = 1ull << (sub % 64);
    if (span.bitmap[sub / 64] & mask)
        return FreeResult{}; // double free
    const bool was_full = span.freeCount == 0;
    span.bitmap[sub / 64] |= mask;
    ++span.freeCount;

    FreeResult res;
    res.ok = true;
    if (span.freeCount == span.totalCount && list.size() > 1) {
        // Fully free: merge the 4 KB block back to the backend, but
        // keep the last span of a class resident to absorb bursts.
        res.spanReleased = true;
        res.spanBase = span.base;
        index_.erase(idx_it);
        list.erase(span_it);
    } else if (was_full) {
        // The span has free blocks again: bring it to the front so the
        // allocation fast path finds it.
        list.splice(list.begin(), list, span_it);
        idx_it->second.second = list.begin();
    }
    return res;
}

uint32_t
ThreadCache::freeBlocks(unsigned cls) const
{
    uint32_t n = 0;
    for (const auto &s : lists_[cls])
        n += s.freeCount;
    return n;
}

} // namespace pim::alloc
