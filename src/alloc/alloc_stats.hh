/**
 * @file
 * Instrumentation shared by all allocators: request counts by service
 * level (frontend thread cache / backend buddy / bypass), latency
 * aggregation, per-request trace for time-series plots, and the
 * fragmentation accounting of Table III (A/U ratio per [Berger et al.,
 * Hoard ASPLOS'00] as cited by the paper).
 */

#ifndef PIM_ALLOC_ALLOC_STATS_HH
#define PIM_ALLOC_ALLOC_STATS_HH

#include <cstdint>
#include <vector>

#include "util/stats.hh"

namespace pim::alloc {

/** Where a pimMalloc() request was serviced (Fig 11). */
enum class ServiceLevel : uint8_t {
    Frontend = 0, ///< thread cache hit
    Backend = 1,  ///< thread cache miss -> buddy refill, or buddy directly
    Bypass = 2,   ///< > 2 KB request sent straight to the buddy
};

/** One recorded allocation event (for Fig 8(a) / Fig 17(c) series). */
struct AllocEvent
{
    uint64_t startCycle;
    uint64_t latencyCycles;
    uint32_t size;
    ServiceLevel level;
    unsigned taskletId;
};

/** Aggregated allocator statistics. */
struct AllocStats
{
    uint64_t mallocCalls = 0;
    uint64_t freeCalls = 0;
    uint64_t failures = 0;

    /** Requests and cycles by service level. */
    uint64_t serviced[3] = {0, 0, 0};
    uint64_t cyclesByLevel[3] = {0, 0, 0};

    /** Latency distribution over all pimMalloc() calls, in cycles. */
    util::Percentile latency;

    /** Optional per-event trace (enabled by setTraceEvents). */
    std::vector<AllocEvent> events;
    bool traceEvents = false;

    // --- Fragmentation accounting (Table III) ---
    /** Live bytes reserved by the allocator from the heap (A). */
    uint64_t reservedBytes = 0;
    /** Live bytes requested by the program (U). */
    uint64_t requestedBytes = 0;
    /**
     * A/U measured at the program's peak memory usage (the Table III
     * metric): sampling at peak U avoids the degenerate ratios right
     * after pre-population, when A is large but almost nothing has been
     * requested yet.
     */
    double peakFragmentation = 0.0;
    /** Peak of U (program high-water mark). */
    uint64_t peakRequestedBytes = 0;
    /** Peak of A alone (heap high-water mark). */
    uint64_t peakReservedBytes = 0;

    /** Record one serviced request. */
    void
    recordMalloc(ServiceLevel level, uint64_t start, uint64_t latency_cycles,
                 uint32_t size, unsigned tasklet)
    {
        ++mallocCalls;
        serviced[static_cast<size_t>(level)] += 1;
        cyclesByLevel[static_cast<size_t>(level)] += latency_cycles;
        latency.add(static_cast<double>(latency_cycles));
        if (traceEvents)
            events.push_back({start, latency_cycles, size, level, tasklet});
    }

    /** Update A (allocator-reserved bytes) by a signed delta. */
    void
    adjustReserved(int64_t delta)
    {
        reservedBytes = static_cast<uint64_t>(
            static_cast<int64_t>(reservedBytes) + delta);
        if (reservedBytes > peakReservedBytes)
            peakReservedBytes = reservedBytes;
        if (requestedBytes > 0 && requestedBytes == peakRequestedBytes)
            peakFragmentation = fragmentation();
    }

    /** Update U (program-requested bytes) by a signed delta. */
    void
    adjustRequested(int64_t delta)
    {
        requestedBytes = static_cast<uint64_t>(
            static_cast<int64_t>(requestedBytes) + delta);
        if (requestedBytes > 0 && requestedBytes >= peakRequestedBytes) {
            peakRequestedBytes = requestedBytes;
            peakFragmentation = fragmentation();
        }
    }

    /**
     * Zero the request counters, latency distribution, and trace while
     * preserving the live fragmentation state (A/U and peaks survive so
     * Table III still covers the whole run). Used by workload drivers to
     * separate an untimed build phase from the measured phase.
     */
    void
    resetCounters()
    {
        mallocCalls = 0;
        freeCalls = 0;
        failures = 0;
        for (auto &s : serviced)
            s = 0;
        for (auto &c : cyclesByLevel)
            c = 0;
        latency.reset();
        events.clear();
    }

    /** Fraction of requests serviced at @p level. */
    double
    servicedFraction(ServiceLevel level) const
    {
        return mallocCalls
            ? static_cast<double>(serviced[static_cast<size_t>(level)])
                / static_cast<double>(mallocCalls)
            : 0.0;
    }

    /** Fraction of total allocation cycles spent at @p level. */
    double
    cyclesFraction(ServiceLevel level) const
    {
        uint64_t total = cyclesByLevel[0] + cyclesByLevel[1]
            + cyclesByLevel[2];
        return total
            ? static_cast<double>(cyclesByLevel[static_cast<size_t>(level)])
                / static_cast<double>(total)
            : 0.0;
    }

    /** Current A/U; 0 when nothing requested. */
    double
    fragmentation() const
    {
        return requestedBytes
            ? static_cast<double>(reservedBytes)
                / static_cast<double>(requestedBytes)
            : 0.0;
    }

};

} // namespace pim::alloc

#endif // PIM_ALLOC_ALLOC_STATS_HH
