/**
 * @file
 * The buddy allocation algorithm (Knowlton, CACM 1965) over a packed
 * 2-bit-per-node metadata tree, as used by UPMEM's buddy_alloc(), the
 * straw-man buddy_alloc_PIM_DRAM, and PIM-malloc's backend. The tree is
 * generic over a MetadataStore so the same algorithm runs with direct,
 * software-buffered, or hardware-cached metadata access.
 */

#ifndef PIM_ALLOC_BUDDY_TREE_HH
#define PIM_ALLOC_BUDDY_TREE_HH

#include <cstdint>

#include "alloc/metadata_store.hh"
#include "sim/tasklet.hh"
#include "sim/types.hh"

namespace pim::alloc {

/** Buddy-tree traversal statistics. */
struct BuddyTreeStats
{
    uint64_t allocs = 0;
    uint64_t frees = 0;
    uint64_t failures = 0;
    uint64_t nodesVisited = 0;

    /** Mean tree nodes touched per successful allocation. */
    double
    visitsPerAlloc() const
    {
        return allocs ? static_cast<double>(nodesVisited)
            / static_cast<double>(allocs) : 0.0;
    }
};

/**
 * Power-of-two buddy allocator over a contiguous MRAM heap.
 *
 * Level 0 is the root (the whole heap); each level halves the block
 * size; the deepest level allocates @p min_block bytes. A heap of H
 * bytes with minimum block m therefore has log2(H/m)+1 levels — the
 * paper's "20-level tree" for H=32 MB, m=32 B and "13-level tree" for
 * m=4 KB.
 */
class BuddyTree
{
  public:
    /**
     * @param store      metadata access path (not owned).
     * @param heap_base  MRAM byte offset of the heap region.
     * @param heap_bytes heap capacity; must be a power of two.
     * @param min_block  smallest allocatable block; power of two.
     */
    BuddyTree(MetadataStore &store, sim::MramAddr heap_base,
              uint32_t heap_bytes, uint32_t min_block);

    /**
     * Allocate at least @p size bytes (rounded up to a power of two,
     * clamped to min_block). Returns sim::kNullAddr when no block of the
     * required size is free.
     */
    sim::MramAddr alloc(sim::Tasklet &t, uint32_t size);

    /**
     * Free a block previously returned by alloc(). Merges with free
     * buddies as far up the tree as possible.
     * @return the size of the freed block, or 0 on an invalid/double
     *         free.
     */
    uint32_t free(sim::Tasklet &t, sim::MramAddr addr);

    /** Number of tree levels (root inclusive). */
    uint32_t levels() const { return levels_; }

    /** Number of nodes in the tree. */
    uint32_t numNodes() const { return (1u << levels_) - 1; }

    /** Size in bytes of blocks at @p level. */
    uint32_t
    blockSize(uint32_t level) const
    {
        return heapBytes_ >> level;
    }

    /** Round a request up to its allocation size (power of two). */
    uint32_t roundSize(uint32_t size) const;

    /** Heap bytes currently allocated (after rounding). */
    uint64_t allocatedBytes() const { return allocatedBytes_; }

    /** Heap capacity. */
    uint32_t heapBytes() const { return heapBytes_; }

    /** Heap base address in MRAM. */
    sim::MramAddr heapBase() const { return heapBase_; }

    /** Number of nodes the metadata array must cover. */
    static uint32_t
    nodesFor(uint32_t heap_bytes, uint32_t min_block)
    {
        uint32_t levels = 1;
        while ((heap_bytes >> (levels - 1)) > min_block)
            ++levels;
        return (1u << levels) - 1;
    }

    /**
     * Reset the tree to the all-free state: zeroes the metadata array
     * (one bulk DMA) and clears accounting and statistics.
     */
    void reset(sim::Tasklet &t);

    /** Traversal statistics. */
    const BuddyTreeStats &stats() const { return stats_; }

    /** The metadata store backing this tree. */
    MetadataStore &store() { return store_; }

  private:
    /** Level whose block size fits @p rounded size exactly. */
    uint32_t levelFor(uint32_t rounded) const;

    /** Heap byte offset of @p node at @p level. */
    uint32_t
    offsetOf(uint32_t node, uint32_t level) const
    {
        const uint32_t first = (1u << level) - 1;
        return (node - first) * blockSize(level);
    }

    /** Recursive first-fit descent. */
    sim::MramAddr tryAlloc(sim::Tasklet &t, uint32_t node, uint32_t level,
                           uint32_t target);

    MetadataStore &store_;
    sim::MramAddr heapBase_;
    uint32_t heapBytes_;
    uint32_t minBlock_;
    uint32_t levels_;
    uint64_t allocatedBytes_ = 0;
    BuddyTreeStats stats_;
};

} // namespace pim::alloc

#endif // PIM_ALLOC_BUDDY_TREE_HH
