/**
 * @file
 * The straw-man buddy_alloc_PIM_DRAM design (Section III-B): UPMEM's
 * scratchpad buddy allocator extended to manage a PIM core's 32 MB MRAM
 * heap with a single flat buddy tree (20 splits, 21 levels, 32 B minimum
 * blocks -> 512 KB of metadata) accessed through the coarse-grained
 * software-managed WRAM metadata buffer, all under one shared mutex.
 * This is the "PIM-Metadata/PIM-Executed" design point the paper builds
 * PIM-malloc on top of, and the baseline PIM-malloc is compared against.
 */

#ifndef PIM_ALLOC_STRAW_MAN_HH
#define PIM_ALLOC_STRAW_MAN_HH

#include <memory>
#include <unordered_map>

#include "alloc/allocator.hh"
#include "alloc/buddy_tree.hh"
#include "alloc/metadata_store.hh"
#include "sim/dpu.hh"
#include "sim/mutex.hh"

namespace pim::alloc {

/** How a buddy allocator reaches its metadata. */
enum class MetadataMode : uint8_t {
    Direct,   ///< no access cost (host-executed / oracle)
    SwBuffer, ///< coarse software-managed WRAM buffer
    HwCache,  ///< hardware buddy cache (PIM-malloc-HW/SW)
};

/** Configuration of the straw-man allocator. */
struct StrawManConfig
{
    /** MRAM byte offset where metadata + heap are placed. */
    sim::MramAddr base = 0;
    /** Heap capacity (paper: 32 MB). */
    uint32_t heapBytes = 32u << 20;
    /** Minimum (de)allocation size (paper: 32 B). */
    uint32_t minBlock = 32;
    /** Metadata access path. */
    MetadataMode metadata = MetadataMode::SwBuffer;
    /** WRAM window of the software-managed buffer. */
    uint32_t swBufferBytes = 2048;
};

/** The straw-man PIM buddy allocator. */
class StrawManAllocator : public Allocator
{
  public:
    StrawManAllocator(sim::Dpu &dpu, const StrawManConfig &cfg);

    void init(sim::Tasklet &t) override;
    sim::MramAddr malloc(sim::Tasklet &t, uint32_t size) override;
    bool free(sim::Tasklet &t, sim::MramAddr addr) override;
    const AllocStats &stats() const override { return stats_; }
    AllocStats &stats() override { return stats_; }
    uint64_t metadataBytes() const override { return store_->bytes(); }
    std::string name() const override;

    /** The underlying buddy tree (for tests and characterization). */
    BuddyTree &tree() { return *tree_; }

    /** The allocator mutex (for contention statistics). */
    const sim::SimMutex &mutex() const { return mutex_; }

    const sim::SimMutex *contentionMutex() const override
    {
        return &mutex_;
    }

    /** The configuration in effect. */
    const StrawManConfig &config() const { return cfg_; }

  private:
    sim::Dpu &dpu_;
    StrawManConfig cfg_;
    std::unique_ptr<MetadataStore> store_;
    std::unique_ptr<BuddyTree> tree_;
    sim::SimMutex mutex_;
    AllocStats stats_;
    /** Host-side bookkeeping: user-requested size per live block. */
    std::unordered_map<sim::MramAddr, uint32_t> liveRequests_;
};

/** Build the metadata store selected by @p mode (shared with PimMalloc). */
std::unique_ptr<MetadataStore>
makeMetadataStore(sim::Dpu &dpu, MetadataMode mode, sim::MramAddr base,
                  uint32_t num_nodes, uint32_t sw_buffer_bytes);

} // namespace pim::alloc

#endif // PIM_ALLOC_STRAW_MAN_HH
