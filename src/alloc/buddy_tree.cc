#include "alloc/buddy_tree.hh"

#include <bit>

#include "alloc/cost_model.hh"
#include "util/logging.hh"

namespace pim::alloc {

namespace {

bool
isPow2(uint32_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

} // namespace

BuddyTree::BuddyTree(MetadataStore &store, sim::MramAddr heap_base,
                     uint32_t heap_bytes, uint32_t min_block)
    : store_(store), heapBase_(heap_base), heapBytes_(heap_bytes),
      minBlock_(min_block)
{
    PIM_ASSERT(isPow2(heap_bytes), "heap size must be a power of two");
    PIM_ASSERT(isPow2(min_block), "min block must be a power of two");
    PIM_ASSERT(min_block <= heap_bytes, "min block exceeds heap");
    levels_ = 1;
    while (blockSize(levels_ - 1) > minBlock_)
        ++levels_;
    PIM_ASSERT(store.numNodes() >= numNodes(),
               "metadata store too small: ", store.numNodes(), " < ",
               numNodes());
}

uint32_t
BuddyTree::roundSize(uint32_t size) const
{
    if (size <= minBlock_)
        return minBlock_;
    return std::bit_ceil(size);
}

uint32_t
BuddyTree::levelFor(uint32_t rounded) const
{
    // blockSize(level) == heapBytes_ >> level == rounded
    return static_cast<uint32_t>(
        std::countr_zero(heapBytes_ / rounded));
}

sim::MramAddr
BuddyTree::tryAlloc(sim::Tasklet &t, uint32_t node, uint32_t level,
                    uint32_t target)
{
    ++stats_.nodesVisited;
    t.execute(cost::kNodeVisitInstrs);
    const NodeState state = store_.get(t, node);

    if (level == target) {
        if (state != NodeState::Free)
            return sim::kNullAddr;
        t.execute(cost::kNodeUpdateInstrs);
        store_.set(t, node, NodeState::Allocated);
        return heapBase_ + offsetOf(node, level);
    }

    if (state == NodeState::Allocated || state == NodeState::Full)
        return sim::kNullAddr;

    if (state == NodeState::Free) {
        // Split: children are implicitly Free (the invariant maintained
        // by free()'s merge path), so mark this node divided and
        // descend.
        t.execute(cost::kNodeUpdateInstrs);
        store_.set(t, node, NodeState::Split);
    }

    const uint32_t left = 2 * node + 1;
    sim::MramAddr r = tryAlloc(t, left, level + 1, target);
    if (r == sim::kNullAddr)
        r = tryAlloc(t, left + 1, level + 1, target);

    if (r == sim::kNullAddr && state == NodeState::Free) {
        // We split a free node but neither child could satisfy the
        // request (can only happen via racing tasklets outside the
        // allocator mutex, which the callers prevent; restore anyway to
        // keep the structure canonical).
        t.execute(cost::kNodeUpdateInstrs);
        store_.set(t, node, NodeState::Free);
    } else if (r != sim::kNullAddr) {
        // Propagate fullness: if both children are now exhausted, mark
        // this node Full so later searches prune the subtree.
        ++stats_.nodesVisited;
        t.execute(cost::kNodeVisitInstrs);
        const NodeState ls = store_.get(t, left);
        NodeState rs = NodeState::Free;
        if (ls == NodeState::Allocated || ls == NodeState::Full) {
            ++stats_.nodesVisited;
            t.execute(cost::kNodeVisitInstrs);
            rs = store_.get(t, left + 1);
        }
        if ((ls == NodeState::Allocated || ls == NodeState::Full)
            && (rs == NodeState::Allocated || rs == NodeState::Full)) {
            t.execute(cost::kNodeUpdateInstrs);
            store_.set(t, node, NodeState::Full);
        }
    }
    return r;
}

void
BuddyTree::reset(sim::Tasklet &t)
{
    store_.reset(t);
    allocatedBytes_ = 0;
    stats_ = BuddyTreeStats{};
}

sim::MramAddr
BuddyTree::alloc(sim::Tasklet &t, uint32_t size)
{
    const uint32_t rounded = roundSize(size);
    if (rounded > heapBytes_) {
        ++stats_.failures;
        return sim::kNullAddr;
    }
    const uint32_t target = levelFor(rounded);
    const sim::MramAddr r = tryAlloc(t, 0, 0, target);
    if (r == sim::kNullAddr) {
        ++stats_.failures;
        return sim::kNullAddr;
    }
    ++stats_.allocs;
    allocatedBytes_ += rounded;
    return r;
}

uint32_t
BuddyTree::free(sim::Tasklet &t, sim::MramAddr addr)
{
    if (addr < heapBase_ || addr >= heapBase_ + heapBytes_)
        return 0;
    const uint32_t offset = addr - heapBase_;
    if (offset % minBlock_ != 0)
        return 0;

    // Descend from the root following the child containing `offset`
    // until the node allocated exactly at `offset` is found.
    uint32_t node = 0;
    uint32_t level = 0;
    for (;;) {
        ++stats_.nodesVisited;
        t.execute(cost::kNodeVisitInstrs);
        const NodeState state = store_.get(t, node);
        const uint32_t node_off = offsetOf(node, level);
        if (state == NodeState::Allocated) {
            if (node_off != offset)
                return 0; // pointer into the middle of a block
            break;
        }
        if (state == NodeState::Free)
            return 0; // double free / wild pointer
        if (level + 1 >= levels_)
            return 0; // leaf is Split — corrupt pointer
        const uint32_t child_size = blockSize(level + 1);
        const uint32_t left = 2 * node + 1;
        node = (offset - node_off < child_size) ? left : left + 1;
        ++level;
    }

    const uint32_t freed = blockSize(level);
    t.execute(cost::kNodeUpdateInstrs);
    store_.set(t, node, NodeState::Free);

    // Merge upward while the buddy is also free.
    while (level > 0) {
        const uint32_t buddy =
            ((node - 1) ^ 1u) + 1; // sibling in heap order
        ++stats_.nodesVisited;
        t.execute(cost::kNodeVisitInstrs);
        if (store_.get(t, buddy) != NodeState::Free)
            break;
        const uint32_t parent = (node - 1) / 2;
        t.execute(cost::kNodeUpdateInstrs);
        store_.set(t, parent, NodeState::Free);
        node = parent;
        --level;
    }

    // Ancestors that were marked Full can no longer be full: downgrade
    // them to Split. The walk stops at the first non-Full ancestor
    // (nothing above it can be marked Full either, since marking
    // requires both children to be exhausted).
    while (level > 0) {
        const uint32_t parent = (node - 1) / 2;
        ++stats_.nodesVisited;
        t.execute(cost::kNodeVisitInstrs);
        if (store_.get(t, parent) != NodeState::Full)
            break;
        t.execute(cost::kNodeUpdateInstrs);
        store_.set(t, parent, NodeState::Split);
        node = parent;
        --level;
    }

    ++stats_.frees;
    PIM_ASSERT(allocatedBytes_ >= freed, "allocated-bytes underflow");
    allocatedBytes_ -= freed;
    return freed;
}

} // namespace pim::alloc
