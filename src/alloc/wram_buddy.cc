#include "alloc/wram_buddy.hh"

#include <bit>

#include "alloc/cost_model.hh"
#include "util/logging.hh"

namespace pim::alloc {

WramBuddy::WramBuddy(sim::Dpu &dpu, uint32_t heap_bytes, uint32_t min_block)
    : dpu_(dpu), heapBytes_(heap_bytes), minBlock_(min_block)
{
    PIM_ASSERT(std::has_single_bit(heap_bytes),
               "WRAM heap must be a power of two");
    PIM_ASSERT(std::has_single_bit(min_block),
               "WRAM min block must be a power of two");
    levels_ = 1;
    while (blockSize(levels_ - 1) > minBlock_)
        ++levels_;
    states_.assign((1u << levels_) - 1, State::Free);
    heapBase_ = dpu.wramReserve(heap_bytes);
    dpu.wramReserve(metadataBytes());
}

uint32_t
WramBuddy::metadataBytes() const
{
    // UPMEM's implementation packs this tighter (2 bits/node, < 512 B
    // for the 32 KB heap); we account the packed size.
    return (static_cast<uint32_t>(states_.size()) * 2 + 7) / 8;
}

uint32_t
WramBuddy::offsetOf(uint32_t node, uint32_t level) const
{
    const uint32_t first = (1u << level) - 1;
    return (node - first) * blockSize(level);
}

uint32_t
WramBuddy::tryAlloc(sim::Tasklet &t, uint32_t node, uint32_t level,
                    uint32_t target)
{
    t.execute(cost::kNodeVisitInstrs);
    const State state = states_[node];
    if (level == target) {
        if (state != State::Free)
            return kWramNull;
        states_[node] = State::Allocated;
        t.execute(cost::kNodeUpdateInstrs);
        return heapBase_ + offsetOf(node, level);
    }
    if (state == State::Allocated)
        return kWramNull;
    if (state == State::Free) {
        states_[node] = State::Split;
        t.execute(cost::kNodeUpdateInstrs);
    }
    const uint32_t left = 2 * node + 1;
    uint32_t r = tryAlloc(t, left, level + 1, target);
    if (r == kWramNull)
        r = tryAlloc(t, left + 1, level + 1, target);
    if (r == kWramNull && state == State::Free) {
        states_[node] = State::Free;
        t.execute(cost::kNodeUpdateInstrs);
    }
    return r;
}

uint32_t
WramBuddy::alloc(sim::Tasklet &t, uint32_t size)
{
    uint32_t rounded = size <= minBlock_ ? minBlock_ : std::bit_ceil(size);
    if (rounded > heapBytes_)
        return kWramNull;
    const uint32_t target =
        static_cast<uint32_t>(std::countr_zero(heapBytes_ / rounded));
    mutex_.lock(t);
    const uint32_t r = tryAlloc(t, 0, 0, target);
    if (r != kWramNull)
        allocatedBytes_ += rounded;
    mutex_.unlock(t);
    return r;
}

bool
WramBuddy::free(sim::Tasklet &t, uint32_t addr)
{
    if (addr < heapBase_ || addr >= heapBase_ + heapBytes_)
        return false;
    const uint32_t offset = addr - heapBase_;
    if (offset % minBlock_ != 0)
        return false;

    mutex_.lock(t);
    uint32_t node = 0;
    uint32_t level = 0;
    bool found = false;
    for (;;) {
        t.execute(cost::kNodeVisitInstrs);
        const State state = states_[node];
        const uint32_t node_off = offsetOf(node, level);
        if (state == State::Allocated) {
            found = node_off == offset;
            break;
        }
        if (state == State::Free || level + 1 >= levels_)
            break;
        const uint32_t child_size = blockSize(level + 1);
        const uint32_t left = 2 * node + 1;
        node = (offset - node_off < child_size) ? left : left + 1;
        ++level;
    }
    if (!found) {
        mutex_.unlock(t);
        return false;
    }

    allocatedBytes_ -= blockSize(level);
    states_[node] = State::Free;
    t.execute(cost::kNodeUpdateInstrs);
    while (level > 0) {
        const uint32_t buddy = ((node - 1) ^ 1u) + 1;
        t.execute(cost::kNodeVisitInstrs);
        if (states_[buddy] != State::Free)
            break;
        const uint32_t parent = (node - 1) / 2;
        states_[parent] = State::Free;
        t.execute(cost::kNodeUpdateInstrs);
        node = parent;
        --level;
    }
    mutex_.unlock(t);
    return true;
}

} // namespace pim::alloc
