/**
 * @file
 * Metadata access paths for the buddy allocator. The packed 2-bit
 * per-node state array lives in MRAM; the three concrete stores model
 * the three ways the paper's designs reach it:
 *
 *  - DirectStore:   host-resident / idealized access with no DPU cost
 *                   (used by Host-Executed design points and as a test
 *                   oracle).
 *  - SwBufferStore: the straw-man's and PIM-malloc-SW's software-managed
 *                   WRAM buffer with coarse-grained flush-and-reload on
 *                   miss (Fig 13(a)).
 *  - HwCacheStore:  PIM-malloc-HW/SW's per-core hardware buddy cache
 *                   with fine-grained LRU and write-back (Fig 13(b)).
 *
 * All stores operate on the same MRAM array, so switching stores never
 * changes allocation results — only cost and traffic. Tests rely on this
 * equivalence property.
 */

#ifndef PIM_ALLOC_METADATA_STORE_HH
#define PIM_ALLOC_METADATA_STORE_HH

#include <cstdint>
#include <vector>

#include "sim/dpu.hh"
#include "sim/tasklet.hh"
#include "sim/types.hh"

namespace pim::alloc {

/** Buddy-tree node state, 2 bits in the packed metadata array. */
enum class NodeState : uint8_t {
    Free = 0,      ///< whole block available
    Split = 1,     ///< divided; some descendant is allocated
    Allocated = 2, ///< handed out as one block exactly at this node
    Full = 3,      ///< divided and every descendant is allocated; the
                   ///< alloc search prunes such subtrees so traversal
                   ///< cost scales with tree depth, not live blocks
};

/** Abstract access path to the packed node-state array. */
class MetadataStore
{
  public:
    /**
     * @param dpu        owning DPU (storage + traffic accounting).
     * @param mram_base  MRAM byte offset of the packed state array.
     * @param num_nodes  number of tree nodes covered.
     */
    MetadataStore(sim::Dpu &dpu, sim::MramAddr mram_base, uint32_t num_nodes);
    virtual ~MetadataStore() = default;

    /** Read one node's state, charging this store's access cost. */
    virtual NodeState get(sim::Tasklet &t, uint32_t node) = 0;

    /** Write one node's state, charging this store's access cost. */
    virtual void set(sim::Tasklet &t, uint32_t node, NodeState s) = 0;

    /** Write back any dirty cached state (teardown / handoff). */
    virtual void flush(sim::Tasklet &t) = 0;

    /** Zero the whole array (allocator init). Charges bulk DMA. */
    virtual void reset(sim::Tasklet &t);

    /** Metadata footprint in MRAM bytes (4-byte word granularity). */
    uint32_t bytes() const { return wordCount_ * kWordBytes; }

    /** Number of nodes covered. */
    uint32_t numNodes() const { return numNodes_; }

    /** MRAM base address of the array. */
    sim::MramAddr base() const { return base_; }

    /** Total get+set accesses (for characterization). */
    uint64_t accesses() const { return accesses_; }

  protected:
    /** Nodes per packed 4-byte word (16 nodes x 2 bits). */
    static constexpr uint32_t kWordBytes = 4;
    static constexpr uint32_t kNodesPerWord = kWordBytes * 8 / 2;

    /** MRAM byte address of the word holding @p node. */
    sim::MramAddr
    wordAddr(uint32_t node) const
    {
        return base_ + (node / kNodesPerWord) * kWordBytes;
    }

    /** Bit shift of @p node within its word. */
    uint32_t
    bitShift(uint32_t node) const
    {
        return (node % kNodesPerWord) * 2;
    }

    /** Read a node's state straight from the MRAM array (no cost). */
    NodeState rawGet(uint32_t node) const;

    /** Write a node's state straight into the MRAM array (no cost). */
    void rawSet(uint32_t node, NodeState s);

    sim::Dpu &dpu_;
    sim::MramAddr base_;
    uint32_t numNodes_;
    uint32_t wordCount_;
    uint64_t accesses_ = 0;
};

/** Zero-cost direct access (host-side execution / test oracle). */
class DirectStore : public MetadataStore
{
  public:
    using MetadataStore::MetadataStore;

    NodeState get(sim::Tasklet &t, uint32_t node) override;
    void set(sim::Tasklet &t, uint32_t node, NodeState s) override;
    void flush(sim::Tasklet &t) override;
};

/**
 * Coarse-grained software-managed WRAM buffer (Fig 13(a)). Caches one
 * aligned window of the metadata array; a miss flushes the whole window
 * (if dirty) and reloads the window containing the requested word.
 */
class SwBufferStore : public MetadataStore
{
  public:
    /**
     * @param buffer_bytes WRAM window size (default 2 KB, the paper's
     *        measured per-request transfer granularity).
     */
    SwBufferStore(sim::Dpu &dpu, sim::MramAddr mram_base, uint32_t num_nodes,
                  uint32_t buffer_bytes = 2048);

    NodeState get(sim::Tasklet &t, uint32_t node) override;
    void set(sim::Tasklet &t, uint32_t node, NodeState s) override;
    void flush(sim::Tasklet &t) override;
    void reset(sim::Tasklet &t) override;

    /** Buffer hit statistics (paper quotes ~73% for 4 KB allocs). */
    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }

    double
    hitRate() const
    {
        const uint64_t total = hits_ + misses_;
        return total ? static_cast<double>(hits_)
            / static_cast<double>(total) : 0.0;
    }

  private:
    /** Make the window containing @p node resident; charge costs. */
    void ensureResident(sim::Tasklet &t, uint32_t node);

    uint32_t bufferBytes_;
    uint32_t windowStart_ = 0; ///< byte offset into the array
    bool valid_ = false;
    bool dirty_ = false;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

/**
 * General-purpose data-cache access path (Section VII's discussion of
 * cache-enabled future PIM). Models a conventional cache in front of
 * MRAM that operates on coarse 64-byte lines: hits are as fast as the
 * buddy cache's, but every miss moves a whole line, and the small
 * per-core capacity thrashes on the buddy tree's non-adjacent access
 * pattern. Exists to reproduce the paper's argument that a specialized
 * fine-grained metadata cache remains necessary even when PIM cores
 * gain a general-purpose cache.
 */
class DataCacheStore : public MetadataStore
{
  public:
    /**
     * @param line_bytes cache line size (conventional: 64 B).
     * @param lines      number of lines (fully associative, LRU).
     */
    DataCacheStore(sim::Dpu &dpu, sim::MramAddr mram_base,
                   uint32_t num_nodes, uint32_t line_bytes = 64,
                   uint32_t lines = 16);

    NodeState get(sim::Tasklet &t, uint32_t node) override;
    void set(sim::Tasklet &t, uint32_t node, NodeState s) override;
    void flush(sim::Tasklet &t) override;
    void reset(sim::Tasklet &t) override;

    /** Hit statistics. */
    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        uint32_t tag = 0; ///< line-aligned byte offset into the array
        uint64_t lastUse = 0;
    };

    /** Make the line holding @p node resident; charge costs. */
    void ensureResident(sim::Tasklet &t, uint32_t node, bool mark_dirty);

    uint32_t lineBytes_;
    std::vector<Line> lines_;
    uint64_t useClock_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

/**
 * Hardware buddy-cache access path (Fig 13(b)). Uses the DPU's CAM-based
 * BuddyCache at 4-byte word granularity; misses fetch exactly one word
 * from MRAM, dirty LRU victims are written back.
 */
class HwCacheStore : public MetadataStore
{
  public:
    HwCacheStore(sim::Dpu &dpu, sim::MramAddr mram_base, uint32_t num_nodes);

    NodeState get(sim::Tasklet &t, uint32_t node) override;
    void set(sim::Tasklet &t, uint32_t node, NodeState s) override;
    void flush(sim::Tasklet &t) override;
    void reset(sim::Tasklet &t) override;

  private:
    /** lookup_bc + fill on miss; returns nothing, cache becomes resident. */
    void ensureResident(sim::Tasklet &t, sim::MramAddr word_addr);
};

} // namespace pim::alloc

#endif // PIM_ALLOC_METADATA_STORE_HH
