#include "alloc/pim_malloc.hh"

#include <algorithm>

#include "alloc/cost_model.hh"
#include "util/logging.hh"

namespace pim::alloc {

PimMallocAllocator::PimMallocAllocator(sim::Dpu &dpu,
                                       const PimMallocConfig &cfg)
    : dpu_(dpu), cfg_(cfg)
{
    PIM_ASSERT(cfg.numTasklets >= 1
                   && cfg.numTasklets <= dpu.config().maxTasklets,
               "invalid tasklet count ", cfg.numTasklets);
    const uint32_t nodes = BuddyTree::nodesFor(cfg.heapBytes, cfg.spanBytes);
    store_ = makeMetadataStore(dpu, cfg.metadata, cfg.base, nodes,
                               cfg.swBufferBytes);
    const sim::MramAddr heap_base = cfg.base + store_->bytes();
    PIM_ASSERT(static_cast<uint64_t>(heap_base) + cfg.heapBytes
                   <= dpu.mram().size(),
               "PIM-malloc heap does not fit in MRAM");
    tree_ = std::make_unique<BuddyTree>(*store_, heap_base, cfg.heapBytes,
                                        cfg.spanBytes);

    // Size the per-tasklet span-record arenas from the remaining WRAM.
    ThreadCacheConfig tc_cfg;
    tc_cfg.spanBytes = cfg.spanBytes;
    tc_cfg.sizeClasses = cfg.sizeClasses;
    if (cfg.maxSpansPerTasklet > 0) {
        tc_cfg.maxSpans = cfg.maxSpansPerTasklet;
    } else {
        // Span records are MRAM-resident (the paper's Section VI-E
        // accounts them per request, e.g. 5.2 KB for LLM attention,
        // which far exceeds the scratchpad); only the list heads live
        // in WRAM. Cap records at one per heap span.
        tc_cfg.maxSpans = cfg.heapBytes / cfg.spanBytes;
    }
    // WRAM holds one list head per size class per tasklet.
    dpu.wramReserve(cfg.numTasklets
                    * static_cast<uint32_t>(tc_cfg.sizeClasses.size()) * 8);
    tcCfg_ = tc_cfg;
    for (unsigned i = 0; i < cfg.numTasklets; ++i)
        caches_.push_back(std::make_unique<ThreadCache>(i, tc_cfg));
}

std::string
PimMallocAllocator::name() const
{
    std::string n = cfg_.metadata == MetadataMode::HwCache
        ? "PIM-malloc-HW/SW" : "PIM-malloc-SW";
    if (cfg_.metadata == MetadataMode::Direct)
        n = "PIM-malloc-direct";
    if (!cfg_.prePopulate)
        n += "-lazy";
    return n;
}

void
PimMallocAllocator::init(sim::Tasklet &t)
{
    // Table II initAllocator(): reset metadata; pre-populate each thread
    // cache with one free span per size class (eager variants only).
    // Executed by a single designated tasklet.
    tree_->reset(t);
    const bool trace = stats_.traceEvents;
    stats_ = AllocStats{};
    stats_.traceEvents = trace;
    live_.clear();
    // Rebuild the thread caches so a re-init starts from a clean slate
    // (the WRAM arena is already reserved; no new reservation needed).
    caches_.clear();
    for (unsigned i = 0; i < cfg_.numTasklets; ++i)
        caches_.push_back(std::make_unique<ThreadCache>(i, tcCfg_));
    if (cfg_.prePopulate) {
        for (auto &cache : caches_) {
            for (unsigned cls = 0; cls < cache->numClasses(); ++cls) {
                const sim::MramAddr span = tree_->alloc(t, cfg_.spanBytes);
                PIM_ASSERT(span != sim::kNullAddr,
                           "heap too small to pre-populate thread caches");
                const bool ok = cache->installSpan(t, cls, span);
                PIM_ASSERT(ok, "WRAM arena too small for pre-population");
                stats_.adjustReserved(cfg_.spanBytes);
            }
        }
    }
    initialized_ = true;
}

sim::MramAddr
PimMallocAllocator::backendAlloc(sim::Tasklet &t, uint32_t size)
{
    mutex_.lock(t);
    const sim::MramAddr addr = tree_->alloc(t, size);
    mutex_.unlock(t);
    return addr;
}

uint32_t
PimMallocAllocator::backendFree(sim::Tasklet &t, sim::MramAddr addr)
{
    mutex_.lock(t);
    const uint32_t freed = tree_->free(t, addr);
    mutex_.unlock(t);
    return freed;
}

sim::MramAddr
PimMallocAllocator::malloc(sim::Tasklet &t, uint32_t size)
{
    PIM_ASSERT(initialized_, "pimMalloc before initAllocator");
    PIM_ASSERT(size > 0, "zero-byte allocation");
    const uint64_t start = t.clock();
    t.execute(cost::kApiOverheadInstrs + cost::kSizeClassLookupInstrs);

    ThreadCache &cache = *caches_.at(t.id() % caches_.size());
    const int cls = cache.classFor(size);

    if (cls < 0) {
        // Case #3 (Fig 10(c)): thread cache bypass.
        const sim::MramAddr addr = backendAlloc(t, size);
        if (addr == sim::kNullAddr) {
            ++stats_.failures;
            return sim::kNullAddr;
        }
        live_[addr] = LiveBlock{size, true, 0, t.id(), sim::kNullAddr};
        stats_.adjustReserved(static_cast<int64_t>(tree_->roundSize(size)));
        stats_.adjustRequested(static_cast<int64_t>(size));
        stats_.recordMalloc(ServiceLevel::Bypass, start, t.clock() - start,
                            size, t.id());
        return addr;
    }

    // Case #1 (Fig 10(a)): thread cache hit.
    sim::MramAddr addr = cache.tryAlloc(t, static_cast<unsigned>(cls));
    ServiceLevel level = ServiceLevel::Frontend;

    if (addr == sim::kNullAddr) {
        // Case #2 (Fig 10(b)): miss — refill with a span from the buddy.
        level = ServiceLevel::Backend;
        const sim::MramAddr span = backendAlloc(t, cfg_.spanBytes);
        if (span != sim::kNullAddr) {
            if (cache.installSpan(t, static_cast<unsigned>(cls), span)) {
                stats_.adjustReserved(cfg_.spanBytes);
                addr = cache.tryAlloc(t, static_cast<unsigned>(cls));
                PIM_ASSERT(addr != sim::kNullAddr,
                           "fresh span failed to service a request");
            } else {
                // WRAM record budget exhausted: serve the request from
                // the whole 4 KB block (degenerates to bypass).
                addr = span;
                live_[addr] =
                    LiveBlock{size, true, 0, t.id(), sim::kNullAddr};
                stats_.adjustReserved(cfg_.spanBytes);
                stats_.adjustRequested(static_cast<int64_t>(size));
                stats_.recordMalloc(ServiceLevel::Bypass, start,
                                    t.clock() - start, size, t.id());
                return addr;
            }
        }
    }

    if (addr == sim::kNullAddr) {
        ++stats_.failures;
        return sim::kNullAddr;
    }

    const sim::MramAddr heap_base = tree_->heapBase();
    const sim::MramAddr span_base =
        heap_base + (addr - heap_base) / cfg_.spanBytes * cfg_.spanBytes;
    live_[addr] = LiveBlock{size, false, static_cast<uint8_t>(cls), t.id(),
                            span_base};
    stats_.adjustRequested(static_cast<int64_t>(size));
    stats_.recordMalloc(level, start, t.clock() - start, size, t.id());
    return addr;
}

bool
PimMallocAllocator::free(sim::Tasklet &t, sim::MramAddr addr)
{
    PIM_ASSERT(initialized_, "pimFree before initAllocator");
    t.execute(cost::kApiOverheadInstrs);
    auto it = live_.find(addr);
    if (it == live_.end())
        return false;
    const LiveBlock block = it->second;

    if (block.bypass) {
        const uint32_t freed = backendFree(t, addr);
        if (freed == 0)
            return false;
        stats_.adjustReserved(-static_cast<int64_t>(freed));
    } else {
        ThreadCache &cache = *caches_.at(block.taskletId);
        const auto res = cache.free(t, block.cls, block.spanBase, addr);
        if (!res.ok)
            return false;
        if (res.spanReleased) {
            const uint32_t freed = backendFree(t, res.spanBase);
            PIM_ASSERT(freed == cfg_.spanBytes,
                       "span return freed unexpected size ", freed);
            stats_.adjustReserved(-static_cast<int64_t>(freed));
        }
    }
    stats_.adjustRequested(-static_cast<int64_t>(block.requested));
    ++stats_.freeCalls;
    live_.erase(it);
    return true;
}

uint64_t
PimMallocAllocator::metadataBytes() const
{
    return backendMetadataBytes() + threadCacheMetadataBytes();
}

uint64_t
PimMallocAllocator::threadCacheMetadataBytes() const
{
    uint64_t n = 0;
    for (const auto &c : caches_)
        n += c->totalSpans() * ThreadCache::kSpanRecordBytes;
    return n;
}

} // namespace pim::alloc
