#include "alloc/straw_man.hh"

#include "alloc/cost_model.hh"
#include "util/logging.hh"

namespace pim::alloc {

std::unique_ptr<MetadataStore>
makeMetadataStore(sim::Dpu &dpu, MetadataMode mode, sim::MramAddr base,
                  uint32_t num_nodes, uint32_t sw_buffer_bytes)
{
    switch (mode) {
      case MetadataMode::Direct:
        return std::make_unique<DirectStore>(dpu, base, num_nodes);
      case MetadataMode::SwBuffer:
        return std::make_unique<SwBufferStore>(dpu, base, num_nodes,
                                               sw_buffer_bytes);
      case MetadataMode::HwCache:
        return std::make_unique<HwCacheStore>(dpu, base, num_nodes);
    }
    PIM_PANIC("unknown metadata mode");
}

StrawManAllocator::StrawManAllocator(sim::Dpu &dpu, const StrawManConfig &cfg)
    : dpu_(dpu), cfg_(cfg)
{
    const uint32_t nodes = BuddyTree::nodesFor(cfg.heapBytes, cfg.minBlock);
    store_ = makeMetadataStore(dpu, cfg.metadata, cfg.base, nodes,
                               cfg.swBufferBytes);
    const sim::MramAddr heap_base = cfg.base + store_->bytes();
    PIM_ASSERT(static_cast<uint64_t>(heap_base) + cfg.heapBytes
                   <= dpu.mram().size(),
               "straw-man heap does not fit in MRAM");
    tree_ = std::make_unique<BuddyTree>(*store_, heap_base, cfg.heapBytes,
                                        cfg.minBlock);
}

std::string
StrawManAllocator::name() const
{
    return "straw-man";
}

void
StrawManAllocator::init(sim::Tasklet &t)
{
    tree_->reset(t);
    const bool trace = stats_.traceEvents;
    stats_ = AllocStats{};
    stats_.traceEvents = trace;
    liveRequests_.clear();
}

sim::MramAddr
StrawManAllocator::malloc(sim::Tasklet &t, uint32_t size)
{
    const uint64_t start = t.clock();
    t.execute(cost::kApiOverheadInstrs);
    mutex_.lock(t);
    const sim::MramAddr addr = tree_->alloc(t, size);
    mutex_.unlock(t);
    if (addr == sim::kNullAddr) {
        ++stats_.failures;
        return sim::kNullAddr;
    }
    liveRequests_[addr] = size;
    stats_.adjustReserved(static_cast<int64_t>(tree_->roundSize(size)));
    stats_.adjustRequested(static_cast<int64_t>(size));
    stats_.recordMalloc(ServiceLevel::Backend, start, t.clock() - start,
                        size, t.id());
    return addr;
}

bool
StrawManAllocator::free(sim::Tasklet &t, sim::MramAddr addr)
{
    t.execute(cost::kApiOverheadInstrs);
    mutex_.lock(t);
    const uint32_t freed = tree_->free(t, addr);
    mutex_.unlock(t);
    if (freed == 0)
        return false;
    ++stats_.freeCalls;
    auto it = liveRequests_.find(addr);
    PIM_ASSERT(it != liveRequests_.end(),
               "tree freed a block the allocator never handed out");
    stats_.adjustReserved(-static_cast<int64_t>(freed));
    stats_.adjustRequested(-static_cast<int64_t>(it->second));
    liveRequests_.erase(it);
    return true;
}

} // namespace pim::alloc
