/**
 * @file
 * The abstract dynamic-memory-allocator interface every design point in
 * the paper implements: the straw-man buddy_alloc_PIM_DRAM, PIM-malloc-SW,
 * PIM-malloc-HW/SW (and their lazy variants). Mirrors the paper's
 * Table II API: initAllocator / pimMalloc / pimFree.
 */

#ifndef PIM_ALLOC_ALLOCATOR_HH
#define PIM_ALLOC_ALLOCATOR_HH

#include <string>

#include "alloc/alloc_stats.hh"
#include "sim/mutex.hh"
#include "sim/tasklet.hh"
#include "sim/types.hh"

namespace pim::alloc {

/** Abstract per-DPU dynamic memory allocator. */
class Allocator
{
  public:
    virtual ~Allocator() = default;

    /**
     * One-time initialization (the paper's initAllocator()): resets
     * metadata and, for eager PIM-malloc variants, pre-populates the
     * thread caches. Must be called by exactly one tasklet (id 0 by
     * convention) before any pimMalloc().
     */
    virtual void init(sim::Tasklet &t) = 0;

    /**
     * Allocate @p size bytes in the DPU's MRAM heap.
     * @return MRAM address, or sim::kNullAddr on exhaustion.
     */
    virtual sim::MramAddr malloc(sim::Tasklet &t, uint32_t size) = 0;

    /**
     * Release a block previously returned by malloc().
     * @return false on an invalid pointer or double free.
     */
    virtual bool free(sim::Tasklet &t, sim::MramAddr addr) = 0;

    /** Aggregated statistics (service levels, latency, fragmentation). */
    virtual const AllocStats &stats() const = 0;
    virtual AllocStats &stats() = 0;

    /** MRAM bytes used for allocator metadata (Section VI-E). */
    virtual uint64_t metadataBytes() const = 0;

    /**
     * The central lock serializing this allocator's metadata, when the
     * design point has one (contention / parked-waiter statistics for
     * benches). nullptr for lock-free or per-tasklet designs.
     */
    virtual const sim::SimMutex *contentionMutex() const { return nullptr; }

    /** Human-readable design-point name. */
    virtual std::string name() const = 0;
};

} // namespace pim::alloc

#endif // PIM_ALLOC_ALLOCATOR_HH
