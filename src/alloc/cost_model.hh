/**
 * @file
 * Centralized instruction-count constants for the allocator cost model.
 *
 * The simulator charges work in instruction blocks; these constants are
 * the per-operation instruction counts of the corresponding UPMEM C
 * routines (estimated from the paper's description and typical compiled
 * code for the operations). Keeping them in one header makes the cost
 * model auditable and lets sensitivity tests vary them coherently.
 */

#ifndef PIM_ALLOC_COST_MODEL_HH
#define PIM_ALLOC_COST_MODEL_HH

#include <cstdint>

namespace pim::alloc::cost {

/** Buddy tree: decode one node's state and decide the next step. */
inline constexpr uint64_t kNodeVisitInstrs = 12;

/** Buddy tree: update one node's state (read-modify-write of a word). */
inline constexpr uint64_t kNodeUpdateInstrs = 8;

/** SW metadata buffer: bounds check + word extract on a hit. */
inline constexpr uint64_t kSwBufferHitInstrs = 6;

/** SW metadata buffer: flush/refill bookkeeping on a miss (excl. DMA). */
inline constexpr uint64_t kSwBufferMissInstrs = 40;

/** HW buddy cache: miss-path bookkeeping (excl. DMA and fill). */
inline constexpr uint64_t kHwCacheMissInstrs = 6;

/** Size-class lookup at the front of pimMalloc(). */
inline constexpr uint64_t kSizeClassLookupInstrs = 6;

/** Thread cache: scan one 64-bit bitmap word for a free sub-block. */
inline constexpr uint64_t kBitmapWordScanInstrs = 4;

/** Thread cache: fast-path bookkeeping around a hit (list walk, addr). */
inline constexpr uint64_t kThreadCacheHitInstrs = 14;

/** Thread cache: install a freshly fetched 4 KB span into a list. */
inline constexpr uint64_t kSpanInstallInstrs = 24;

/** Thread cache: free-path bookkeeping (span locate + bit set). */
inline constexpr uint64_t kThreadCacheFreeInstrs = 16;

/** pimMalloc()/pimFree() call overhead (args, dispatch, return). */
inline constexpr uint64_t kApiOverheadInstrs = 8;

/** Host model: instructions per buddy-tree level on the host CPU. */
inline constexpr uint64_t kHostInstrsPerLevel = 25;

/** Host model: per-allocation fixed overhead (call, locking, queueing). */
inline constexpr uint64_t kHostAllocOverheadInstrs = 120;

} // namespace pim::alloc::cost

#endif // PIM_ALLOC_COST_MODEL_HH
