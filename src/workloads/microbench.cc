#include "workloads/microbench.hh"

#include <vector>

#include "core/command_queue.hh"
#include "core/pim_system.hh"
#include "sim/dpu.hh"
#include "telemetry/registry.hh"
#include "util/logging.hh"

namespace pim::workloads {

MicrobenchResult
runMicrobench(const MicrobenchConfig &cfg)
{
    // One-DPU system driven through the unified command-queue runtime.
    core::PimSystem sys(core::singleDpuConfig(cfg.dpuCfg));
    core::CommandQueue queue(sys);
    sim::Dpu &dpu = sys.dpu(0);

    core::AllocatorOverrides ov = cfg.overrides;
    ov.numTasklets = cfg.tasklets;
    auto allocator = core::makeAllocator(dpu, cfg.allocator, ov);
    allocator->stats().traceEvents = cfg.traceEvents;

    // initAllocator() is a one-time, single-tasklet operation (Table II);
    // run it in its own launch so the measured phase starts initialized.
    queue.launch(sys.all(), 1,
                 [&](sim::Tasklet &t, unsigned) { allocator->init(t); });
    queue.sync();
    dpu.resetStats();
    allocator->stats().resetCounters();
    if (cfg.recorder != nullptr || cfg.metrics != nullptr) {
        // Trace/meter only the measured phase, starting at t = 0.
        queue.resetTimeline();
        if (cfg.recorder != nullptr)
            queue.attachRecorder(cfg.recorder);
        if (cfg.metrics != nullptr)
            queue.attachMetrics(cfg.metrics);
    }

    queue.launch(sys.all(), cfg.tasklets, [&](sim::Tasklet &t, unsigned) {
        std::vector<sim::MramAddr> live;
        live.reserve(cfg.freeEachAlloc ? 1 : cfg.allocsPerTasklet);
        for (unsigned i = 0; i < cfg.allocsPerTasklet; ++i) {
            const sim::MramAddr addr = allocator->malloc(t, cfg.allocSize);
            PIM_ASSERT(addr != sim::kNullAddr,
                       "microbenchmark exhausted the heap (size=",
                       cfg.allocSize, ", i=", i, ")");
            if (cfg.freeEachAlloc) {
                const bool ok = allocator->free(t, addr);
                PIM_ASSERT(ok, "microbenchmark double free");
            } else {
                live.push_back(addr);
            }
        }
    }, {.label = "alloc loop"});
    queue.sync();

    MicrobenchResult res;
    res.elapsedCycles = dpu.lastElapsedCycles();
    res.elapsedUs = dpu.config().cyclesToMicros(res.elapsedCycles);
    res.allocStats = allocator->stats();
    res.avgLatencyUs = dpu.config().cyclesToMicros(
        static_cast<uint64_t>(res.allocStats.latency.mean()));
    res.breakdown = dpu.lastBreakdown();
    res.traffic = dpu.traffic();
    res.cacheStats = dpu.buddyCache().stats();
    res.metadataBytes = allocator->metadataBytes();
    if (const sim::SimMutex *m = allocator->contentionMutex()) {
        res.mutexStats = m->statsSnapshot();
        res.mutexMode = m->mode();
    }
    if (cfg.metrics != nullptr) {
        telemetry::Registry &met = *cfg.metrics;
        met.counter("sim.cycles").add(res.elapsedCycles);
        met.counter("mutex.acquisitions")
            .add(res.mutexStats.acquisitions);
        met.counter("mutex.contended").add(res.mutexStats.contended);
        met.counter("mutex.parked").add(res.mutexStats.parked);
        met.counter("mutex.woken").add(res.mutexStats.woken);
        met.counter("mutex.elided_spin_events")
            .add(res.mutexStats.elidedSpinEvents);
    }
    return res;
}

} // namespace pim::workloads
