#include "workloads/microbench.hh"

#include <vector>

#include "sim/dpu.hh"
#include "util/logging.hh"

namespace pim::workloads {

MicrobenchResult
runMicrobench(const MicrobenchConfig &cfg)
{
    sim::Dpu dpu(cfg.dpuCfg);
    core::AllocatorOverrides ov = cfg.overrides;
    ov.numTasklets = cfg.tasklets;
    auto allocator = core::makeAllocator(dpu, cfg.allocator, ov);
    allocator->stats().traceEvents = cfg.traceEvents;

    // initAllocator() is a one-time, single-tasklet operation (Table II);
    // run it in its own launch so the measured phase starts initialized.
    dpu.run(1, [&](sim::Tasklet &t) { allocator->init(t); });
    dpu.resetStats();
    allocator->stats().resetCounters();

    dpu.run(cfg.tasklets, [&](sim::Tasklet &t) {
        std::vector<sim::MramAddr> live;
        live.reserve(cfg.freeEachAlloc ? 1 : cfg.allocsPerTasklet);
        for (unsigned i = 0; i < cfg.allocsPerTasklet; ++i) {
            const sim::MramAddr addr = allocator->malloc(t, cfg.allocSize);
            PIM_ASSERT(addr != sim::kNullAddr,
                       "microbenchmark exhausted the heap (size=",
                       cfg.allocSize, ", i=", i, ")");
            if (cfg.freeEachAlloc) {
                const bool ok = allocator->free(t, addr);
                PIM_ASSERT(ok, "microbenchmark double free");
            } else {
                live.push_back(addr);
            }
        }
    });

    MicrobenchResult res;
    res.elapsedCycles = dpu.lastElapsedCycles();
    res.elapsedUs = dpu.config().cyclesToMicros(res.elapsedCycles);
    res.allocStats = allocator->stats();
    res.avgLatencyUs = dpu.config().cyclesToMicros(
        static_cast<uint64_t>(res.allocStats.latency.mean()));
    res.breakdown = dpu.lastBreakdown();
    res.traffic = dpu.traffic();
    res.cacheStats = dpu.buddyCache().stats();
    res.metadataBytes = allocator->metadataBytes();
    return res;
}

} // namespace pim::workloads
