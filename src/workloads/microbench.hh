/**
 * @file
 * The standalone allocation microbenchmark of Section V: N tasklets
 * each issue a series of pimMalloc() (optionally followed by pimFree())
 * calls of a fixed size on one DPU, and the harness reports latency
 * statistics, cycle breakdowns, and metadata traffic. Drives Fig 7,
 * Fig 8, Fig 15, and Fig 16.
 */

#ifndef PIM_WORKLOADS_MICROBENCH_HH
#define PIM_WORKLOADS_MICROBENCH_HH

#include "alloc/alloc_stats.hh"
#include "core/allocator_factory.hh"
#include "sim/buddy_cache.hh"
#include "sim/config.hh"
#include "sim/mutex.hh"
#include "sim/types.hh"
#include "util/stats.hh"

namespace pim::trace {
class Recorder;
}

namespace pim::telemetry {
class Registry;
}

namespace pim::workloads {

/** Microbenchmark parameters. */
struct MicrobenchConfig
{
    /** Allocator design point under test. */
    core::AllocatorKind allocator = core::AllocatorKind::PimMallocSw;
    /** Concurrent tasklets issuing requests (paper: 1 or 16). */
    unsigned tasklets = 16;
    /** Requests per tasklet (paper: 128). */
    unsigned allocsPerTasklet = 128;
    /** Fixed request size in bytes. */
    uint32_t allocSize = 32;
    /**
     * Free each block immediately after allocating it ("consecutive
     * memory (de)allocation", Fig 7); false keeps blocks live (Fig 15).
     */
    bool freeEachAlloc = false;
    /** Record the per-event trace (Fig 8(a) series). */
    bool traceEvents = false;
    /** Overrides forwarded to the allocator factory. */
    core::AllocatorOverrides overrides{};
    /** DPU hardware configuration (buddy cache size sweeps). */
    sim::DpuConfig dpuCfg{};
    /** Span recorder fed by the measured launch (nullptr = off). */
    trace::Recorder *recorder = nullptr;
    /** Metrics registry (nullptr = off): queue counters/utilization of
     *  the measured launch plus "mutex.*" lock and "sim.*" engine
     *  counters harvested at the end of the run. */
    telemetry::Registry *metrics = nullptr;
};

/** Microbenchmark outcome. */
struct MicrobenchResult
{
    /** Mean pimMalloc() latency in microseconds. */
    double avgLatencyUs = 0.0;
    /** Makespan of the launch in cycles / microseconds. */
    uint64_t elapsedCycles = 0;
    double elapsedUs = 0.0;
    /** Full allocator statistics (service levels, latency percentiles,
     *  fragmentation, trace). */
    alloc::AllocStats allocStats;
    /** Launch-wide cycle breakdown. */
    sim::CycleBreakdown breakdown{};
    /** DMA traffic (metadata vs data). */
    sim::TrafficStats traffic{};
    /** Hardware buddy-cache statistics (HW/SW runs). */
    sim::BuddyCacheStats cacheStats{};
    /** MRAM metadata footprint of the allocator. */
    uint64_t metadataBytes = 0;
    /** Central-lock statistics (zeroed for lock-free design points). */
    sim::SimMutexStats mutexStats{};
    /** The lock's execution mode during the run. */
    sim::SimMutex::Mode mutexMode = sim::SimMutex::Mode::Spin;
};

/** Run the microbenchmark on one DPU. */
MicrobenchResult runMicrobench(const MicrobenchConfig &cfg);

} // namespace pim::workloads

#endif // PIM_WORKLOADS_MICROBENCH_HH
