/**
 * @file
 * Synthetic dynamic-graph workload generation. The paper uses the
 * loc-gowalla social network (196,591 nodes, 950,327 edges) and models
 * updates by randomly sampling edges: the sampled third becomes the
 * "newly added" stream, the rest is the pre-update graph (1:2 ratio,
 * Section V). loc-gowalla itself is not available offline, so we
 * generate a Chung-Lu style power-law graph with matched node/edge
 * counts and degree skew — the update-cost shapes depend only on graph
 * size and degree distribution, both of which are preserved.
 */

#ifndef PIM_WORKLOADS_GRAPH_GRAPH_GEN_HH
#define PIM_WORKLOADS_GRAPH_GRAPH_GEN_HH

#include <cstdint>
#include <vector>

#include "util/rng.hh"

namespace pim::workloads::graph {

/** One directed edge. */
struct Edge
{
    uint32_t src;
    uint32_t dst;
};

/** A generated graph. */
struct GraphDataset
{
    uint32_t numNodes = 0;
    std::vector<Edge> edges;
};

/** Parameters of the synthetic generator. */
struct GraphGenConfig
{
    /** Node count (loc-gowalla: 196,591). */
    uint32_t numNodes = 196591;
    /** Edge count (loc-gowalla: 950,327 directed edges). */
    uint64_t numEdges = 950327;
    /** Zipf exponent of the out-degree skew. */
    double skew = 0.75;
    /** Cap on any node's out-degree (keeps var-arrays within 32 KB). */
    uint32_t maxDegree = 8192;
    /** Generator seed. */
    uint64_t seed = 42;
};

/** Generate a power-law graph. Deterministic in the config. */
GraphDataset generateGraph(const GraphGenConfig &cfg);

/** A dataset split into pre-update graph + update stream. */
struct UpdateWorkload
{
    uint32_t numNodes = 0;
    std::vector<Edge> baseEdges;   ///< the pre-update graph
    std::vector<Edge> updateEdges; ///< the newly added edges
};

/**
 * Randomly sample edges into an update stream. @p new_fraction is the
 * share of all edges that become updates (paper: 1:2 new:existing, i.e.
 * 1/3).
 */
UpdateWorkload splitForUpdate(const GraphDataset &g, double new_fraction,
                              uint64_t seed);

} // namespace pim::workloads::graph

#endif // PIM_WORKLOADS_GRAPH_GRAPH_GEN_HH
