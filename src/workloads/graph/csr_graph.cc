#include "workloads/graph/csr_graph.hh"

#include <algorithm>

#include "util/logging.hh"

namespace pim::workloads::graph {

namespace {
/** WRAM staging granularity of the array-rewrite loops. */
constexpr uint32_t kStreamChunkBytes = 2048;
} // namespace

CsrGraph::CsrGraph(sim::Dpu &dpu, sim::MramAddr base, uint32_t num_nodes,
                   uint32_t max_edges)
    : dpu_(dpu), base_(base), numNodes_(num_nodes), maxEdges_(max_edges)
{
    PIM_ASSERT(static_cast<uint64_t>(base) + footprintBytes()
                   <= dpu.mram().size(),
               "CSR arrays do not fit in MRAM");
    // NodePtr starts all-zero (empty graph).
    dpu.mram().fill(base_, (numNodes_ + 1) * 4, 0);
}

uint64_t
CsrGraph::footprintBytes() const
{
    return static_cast<uint64_t>(numNodes_ + 1) * 4
        + static_cast<uint64_t>(maxEdges_) * 4;
}

void
CsrGraph::chargeStream(sim::Tasklet &t, sim::MramAddr addr, uint64_t bytes)
{
    // Shift loops stage MRAM through WRAM chunk by chunk: each chunk is
    // one DMA read + one DMA write plus a small copy loop.
    uint64_t remaining = bytes;
    sim::MramAddr a = addr;
    while (remaining > 0) {
        const uint32_t n = static_cast<uint32_t>(
            std::min<uint64_t>(remaining, kStreamChunkBytes));
        t.dmaRead(a, n);
        t.execute(n / 32 + 1); // word-copy loop, 8 words per iteration
        t.dmaWrite(a, n);
        a += n;
        remaining -= n;
    }
}

void
CsrGraph::build(sim::Tasklet &t, const std::vector<Edge> &edges)
{
    PIM_ASSERT(edges.size() <= maxEdges_, "CSR capacity too small");
    // Batch construction: counting sort by source (host side), then one
    // streaming write of both arrays.
    std::vector<uint32_t> counts(numNodes_ + 1, 0);
    for (const auto &e : edges) {
        PIM_ASSERT(e.src < numNodes_, "local src out of range");
        ++counts[e.src + 1];
    }
    for (uint32_t i = 1; i <= numNodes_; ++i)
        counts[i] += counts[i - 1];
    std::vector<uint32_t> cursor(counts.begin(), counts.end() - 1);
    for (uint32_t i = 0; i <= numNodes_; ++i)
        dpu_.mram().write<uint32_t>(nodePtrAddr(i), counts[i]);
    for (const auto &e : edges)
        dpu_.mram().write<uint32_t>(edgeAddr(cursor[e.src]++), e.dst);
    numEdges_ = static_cast<uint32_t>(edges.size());
    // One bulk upload charge for the whole structure.
    t.dmaWrite(base_, static_cast<uint32_t>((numNodes_ + 1) * 4
                                            + numEdges_ * 4));
}

bool
CsrGraph::insertEdge(sim::Tasklet &t, uint32_t u_local, uint32_t v_global)
{
    PIM_ASSERT(u_local < numNodes_, "local src out of range");
    mutex_.lock(t);
    if (numEdges_ >= maxEdges_) {
        mutex_.unlock(t);
        return false;
    }
    auto &mram = dpu_.mram();

    // Insert position: end of u's neighbor run.
    const uint32_t pos = t.mramRead<uint32_t>(nodePtrAddr(u_local + 1));

    // Shift the EdgeIdx tail [pos, numEdges) up by one slot.
    const uint64_t tail_bytes =
        static_cast<uint64_t>(numEdges_ - pos) * 4;
    if (tail_bytes > 0) {
        mram.moveBytes(edgeAddr(pos + 1), edgeAddr(pos), tail_bytes);
        chargeStream(t, edgeAddr(pos), tail_bytes);
    }
    t.mramWrite<uint32_t>(edgeAddr(pos), v_global);

    // Rewrite the NodePtr suffix (every pointer after u shifts by one).
    for (uint32_t i = u_local + 1; i <= numNodes_; ++i) {
        const uint32_t v = mram.read<uint32_t>(nodePtrAddr(i));
        mram.write<uint32_t>(nodePtrAddr(i), v + 1);
    }
    const uint64_t ptr_bytes =
        static_cast<uint64_t>(numNodes_ - u_local) * 4;
    if (ptr_bytes > 0)
        chargeStream(t, nodePtrAddr(u_local + 1), ptr_bytes);

    ++numEdges_;
    mutex_.unlock(t);
    return true;
}

uint64_t
CsrGraph::degree(uint32_t u_local) const
{
    const uint32_t lo = dpu_.mram().read<uint32_t>(nodePtrAddr(u_local));
    const uint32_t hi =
        dpu_.mram().read<uint32_t>(nodePtrAddr(u_local + 1));
    return hi - lo;
}

std::vector<uint32_t>
CsrGraph::neighbors(uint32_t u_local) const
{
    const uint32_t lo = dpu_.mram().read<uint32_t>(nodePtrAddr(u_local));
    const uint32_t hi =
        dpu_.mram().read<uint32_t>(nodePtrAddr(u_local + 1));
    std::vector<uint32_t> out;
    out.reserve(hi - lo);
    for (uint32_t i = lo; i < hi; ++i)
        out.push_back(dpu_.mram().read<uint32_t>(edgeAddr(i)));
    return out;
}

} // namespace pim::workloads::graph
