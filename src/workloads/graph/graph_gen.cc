#include "workloads/graph/graph_gen.hh"

#include <algorithm>

#include "util/logging.hh"

namespace pim::workloads::graph {

GraphDataset
generateGraph(const GraphGenConfig &cfg)
{
    PIM_ASSERT(cfg.numNodes > 1, "graph needs at least two nodes");
    util::Rng rng(cfg.seed);

    GraphDataset g;
    g.numNodes = cfg.numNodes;
    g.edges.reserve(cfg.numEdges);

    // Chung-Lu style: source nodes drawn from a Zipf distribution over a
    // random permutation of node ids (so heavy nodes are scattered),
    // destinations uniform.
    std::vector<uint32_t> perm(cfg.numNodes);
    for (uint32_t i = 0; i < cfg.numNodes; ++i)
        perm[i] = i;
    rng.shuffle(perm);

    std::vector<uint32_t> degree(cfg.numNodes, 0);
    uint64_t produced = 0;
    uint64_t attempts = 0;
    const uint64_t max_attempts = cfg.numEdges * 4 + 1000;
    while (produced < cfg.numEdges && attempts < max_attempts) {
        ++attempts;
        const uint32_t src =
            perm[rng.zipf(cfg.numNodes, cfg.skew)];
        if (degree[src] >= cfg.maxDegree)
            continue;
        uint32_t dst =
            static_cast<uint32_t>(rng.uniformInt(cfg.numNodes));
        if (dst == src)
            dst = (dst + 1) % cfg.numNodes;
        g.edges.push_back({src, dst});
        ++degree[src];
        ++produced;
    }
    PIM_ASSERT(produced == cfg.numEdges,
               "degree cap too tight to generate requested edges");
    return g;
}

UpdateWorkload
splitForUpdate(const GraphDataset &g, double new_fraction, uint64_t seed)
{
    PIM_ASSERT(new_fraction > 0.0 && new_fraction < 1.0,
               "new_fraction must be in (0,1)");
    util::Rng rng(seed);

    std::vector<uint32_t> idx(g.edges.size());
    for (uint32_t i = 0; i < idx.size(); ++i)
        idx[i] = i;
    rng.shuffle(idx);

    const size_t new_count = static_cast<size_t>(
        static_cast<double>(g.edges.size()) * new_fraction);
    UpdateWorkload w;
    w.numNodes = g.numNodes;
    w.updateEdges.reserve(new_count);
    w.baseEdges.reserve(g.edges.size() - new_count);
    for (size_t i = 0; i < idx.size(); ++i) {
        if (i < new_count)
            w.updateEdges.push_back(g.edges[idx[i]]);
        else
            w.baseEdges.push_back(g.edges[idx[i]]);
    }
    return w;
}

} // namespace pim::workloads::graph
