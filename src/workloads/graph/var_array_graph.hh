/**
 * @file
 * The "variable-sized array" dynamic representation ([Busato et al.,
 * Hornet HPEC'18] as cited by the paper): each node keeps all its edges
 * in a single power-of-two array; on overflow the array is reallocated
 * at twice the size and the contents copied. Allocation sizes therefore
 * span 64 B .. 32 KB, exercising both the thread-cache and bypass paths
 * of PIM-malloc.
 *
 * Node table entry (12 B): [addr:u32][capBytes:u32][count:u32].
 */

#ifndef PIM_WORKLOADS_GRAPH_VAR_ARRAY_GRAPH_HH
#define PIM_WORKLOADS_GRAPH_VAR_ARRAY_GRAPH_HH

#include "alloc/allocator.hh"
#include "sim/dpu.hh"
#include "workloads/graph/dynamic_graph.hh"

namespace pim::workloads::graph {

/** Growable per-node edge arrays for one DPU's shard. */
class VarArrayGraph : public GraphStructure
{
  public:
    /** Initial array allocation (paper: 64 B = 16 edges). */
    static constexpr uint32_t kInitialBytes = 64;
    /** Largest array (paper: 32 KB = 8192 edges). */
    static constexpr uint32_t kMaxBytes = 32768;

    VarArrayGraph(sim::Dpu &dpu, alloc::Allocator &allocator,
                  sim::MramAddr table_base, uint32_t num_nodes);

    void build(sim::Tasklet &t, const std::vector<Edge> &edges) override;
    bool insertEdge(sim::Tasklet &t, uint32_t u_local,
                    uint32_t v_global) override;
    uint64_t degree(uint32_t u_local) const override;
    std::vector<uint32_t> neighbors(uint32_t u_local) const override;
    uint64_t edgeCount() const override { return numEdges_; }
    std::string name() const override { return "Dynamic (variable sized array)"; }

  private:
    sim::MramAddr entryAddr(uint32_t u) const { return tableBase_ + u * 12; }

    sim::Dpu &dpu_;
    alloc::Allocator &allocator_;
    sim::MramAddr tableBase_;
    uint32_t numNodes_;
    uint64_t numEdges_ = 0;
};

} // namespace pim::workloads::graph

#endif // PIM_WORKLOADS_GRAPH_VAR_ARRAY_GRAPH_HH
