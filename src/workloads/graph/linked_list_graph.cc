#include "workloads/graph/linked_list_graph.hh"

#include "util/logging.hh"

namespace pim::workloads::graph {

namespace {
/** Null head pointer: MRAM address 0 is always allocator metadata. */
constexpr sim::MramAddr kNullHead = 0;
} // namespace

LinkedListGraph::LinkedListGraph(sim::Dpu &dpu, alloc::Allocator &allocator,
                                 sim::MramAddr table_base,
                                 uint32_t num_nodes)
    : dpu_(dpu), allocator_(allocator), tableBase_(table_base),
      numNodes_(num_nodes)
{
    PIM_ASSERT(static_cast<uint64_t>(table_base)
                   + static_cast<uint64_t>(num_nodes) * 4
                   <= dpu.mram().size(),
               "node table does not fit in MRAM");
    dpu.mram().fill(tableBase_, num_nodes * 4, 0);
}

void
LinkedListGraph::build(sim::Tasklet &t, const std::vector<Edge> &edges)
{
    for (const auto &e : edges) {
        const bool ok = insertEdge(t, e.src, e.dst);
        PIM_ASSERT(ok, "linked-list build ran out of heap");
    }
}

bool
LinkedListGraph::insertEdge(sim::Tasklet &t, uint32_t u_local,
                            uint32_t v_global)
{
    PIM_ASSERT(u_local < numNodes_, "local src out of range");
    // One fixed-size element per edge, prepended in O(1): allocate,
    // link to the old head, publish as the new head.
    const sim::MramAddr head = t.mramRead<uint32_t>(headAddr(u_local));
    const sim::MramAddr elem = allocator_.malloc(t, kChunkBytes);
    if (elem == sim::kNullAddr)
        return false;
    t.mramWrite<uint32_t>(elem, head);          // next
    t.mramWrite<uint32_t>(elem + 4, v_global);  // dst
    t.mramWrite<uint32_t>(headAddr(u_local), elem);
    ++numEdges_;
    return true;
}

uint64_t
LinkedListGraph::degree(uint32_t u_local) const
{
    uint64_t n = 0;
    sim::MramAddr elem = dpu_.mram().read<uint32_t>(headAddr(u_local));
    while (elem != kNullHead) {
        ++n;
        elem = dpu_.mram().read<uint32_t>(elem);
    }
    return n;
}

std::vector<uint32_t>
LinkedListGraph::neighbors(uint32_t u_local) const
{
    std::vector<uint32_t> out;
    sim::MramAddr elem = dpu_.mram().read<uint32_t>(headAddr(u_local));
    while (elem != kNullHead) {
        out.push_back(dpu_.mram().read<uint32_t>(elem + 4));
        elem = dpu_.mram().read<uint32_t>(elem);
    }
    return out;
}

} // namespace pim::workloads::graph
