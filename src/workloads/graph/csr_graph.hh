/**
 * @file
 * The static CSR baseline (Fig 3(b) top). NodePtr and EdgeIdx arrays
 * live in MRAM; inserting an edge shifts the EdgeIdx tail one slot and
 * rewrites the NodePtr suffix, so insertion cost grows with the size of
 * the pre-update graph — the pathology motivating dynamic allocation.
 * Concurrent inserts serialize on one mutex (the arrays are global
 * state), which surfaces as busy-waiting in the Fig 17 breakdown.
 */

#ifndef PIM_WORKLOADS_GRAPH_CSR_GRAPH_HH
#define PIM_WORKLOADS_GRAPH_CSR_GRAPH_HH

#include "sim/dpu.hh"
#include "sim/mutex.hh"
#include "workloads/graph/dynamic_graph.hh"

namespace pim::workloads::graph {

/** Static compressed-sparse-row adjacency for one DPU's shard. */
class CsrGraph : public GraphStructure
{
  public:
    /**
     * @param dpu        owning DPU; arrays are placed in its MRAM.
     * @param base       MRAM byte offset of the structure.
     * @param num_nodes  shard-local node count.
     * @param max_edges  EdgeIdx capacity (inserting beyond it fails).
     */
    CsrGraph(sim::Dpu &dpu, sim::MramAddr base, uint32_t num_nodes,
             uint32_t max_edges);

    void build(sim::Tasklet &t, const std::vector<Edge> &edges) override;
    bool insertEdge(sim::Tasklet &t, uint32_t u_local,
                    uint32_t v_global) override;
    uint64_t degree(uint32_t u_local) const override;
    std::vector<uint32_t> neighbors(uint32_t u_local) const override;
    uint64_t edgeCount() const override { return numEdges_; }
    std::string name() const override { return "Static (CSR)"; }

    /** MRAM bytes occupied by the arrays. */
    uint64_t footprintBytes() const;

  private:
    /** Byte address of NodePtr[i]. */
    sim::MramAddr nodePtrAddr(uint32_t i) const { return base_ + i * 4; }
    /** Byte address of EdgeIdx[i]. */
    sim::MramAddr
    edgeAddr(uint32_t i) const
    {
        return base_ + (numNodes_ + 1) * 4 + i * 4;
    }

    /** Charge a streaming rewrite of @p bytes (read + write, chunked). */
    void chargeStream(sim::Tasklet &t, sim::MramAddr addr, uint64_t bytes);

    sim::Dpu &dpu_;
    sim::MramAddr base_;
    uint32_t numNodes_;
    uint32_t maxEdges_;
    uint32_t numEdges_ = 0;
    sim::SimMutex mutex_;
};

} // namespace pim::workloads::graph

#endif // PIM_WORKLOADS_GRAPH_CSR_GRAPH_HH
