/**
 * @file
 * The "array of linked lists" dynamic representation (Fig 3(b) bottom,
 * [Winter et al., faimGraph SC'18] as cited by the paper): per node, a
 * singly linked list of fixed-size 256 B edge elements allocated with
 * pimMalloc(). Following the paper's evaluation setup ("a constant
 * allocation size — we assume 256 B — because its edge-storing elements
 * are fixed-size arrays"), every inserted edge allocates one element
 * and prepends it: memory is allocated solely for the new edge and
 * connected via pointers, so insertion cost is O(1) and independent of
 * the pre-update graph size — the Fig 3(c) point.
 *
 * Element layout (256 B): [next:u32][dst:u32][padding to 256 B].
 */

#ifndef PIM_WORKLOADS_GRAPH_LINKED_LIST_GRAPH_HH
#define PIM_WORKLOADS_GRAPH_LINKED_LIST_GRAPH_HH

#include "alloc/allocator.hh"
#include "sim/dpu.hh"
#include "workloads/graph/dynamic_graph.hh"

namespace pim::workloads::graph {

/** Linked-element adjacency for one DPU's shard. */
class LinkedListGraph : public GraphStructure
{
  public:
    /** Fixed element allocation size (paper: 256 B). */
    static constexpr uint32_t kChunkBytes = 256;

    /**
     * @param dpu        owning DPU.
     * @param allocator  the dynamic allocator under evaluation.
     * @param table_base MRAM offset of the per-node head table (must not
     *                   overlap the allocator's heap).
     * @param num_nodes  shard-local node count.
     */
    LinkedListGraph(sim::Dpu &dpu, alloc::Allocator &allocator,
                    sim::MramAddr table_base, uint32_t num_nodes);

    void build(sim::Tasklet &t, const std::vector<Edge> &edges) override;
    bool insertEdge(sim::Tasklet &t, uint32_t u_local,
                    uint32_t v_global) override;
    uint64_t degree(uint32_t u_local) const override;
    std::vector<uint32_t> neighbors(uint32_t u_local) const override;
    uint64_t edgeCount() const override { return numEdges_; }
    std::string name() const override { return "Dynamic (array of linked lists)"; }

  private:
    sim::MramAddr headAddr(uint32_t u) const { return tableBase_ + u * 4; }

    sim::Dpu &dpu_;
    alloc::Allocator &allocator_;
    sim::MramAddr tableBase_;
    uint32_t numNodes_;
    uint64_t numEdges_ = 0;
};

} // namespace pim::workloads::graph

#endif // PIM_WORKLOADS_GRAPH_LINKED_LIST_GRAPH_HH
