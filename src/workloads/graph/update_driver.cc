#include "workloads/graph/update_driver.hh"

#include <algorithm>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>

#include "alloc/allocator.hh"
#include "core/pim_system.hh"
#include "core/rank_scheduler.hh"
#include "fault/injector.hh"
#include "sim/dpu.hh"
#include "telemetry/registry.hh"
#include "util/logging.hh"
#include "workloads/graph/csr_graph.hh"
#include "workloads/graph/linked_list_graph.hh"
#include "workloads/graph/var_array_graph.hh"

namespace pim::workloads::graph {

const char *
structureKindName(StructureKind s)
{
    switch (s) {
      case StructureKind::StaticCsr: return "Static (CSR)";
      case StructureKind::LinkedList: return "Dynamic (array of linked lists)";
      case StructureKind::VarArray: return "Dynamic (variable sized array)";
    }
    return "?";
}

unsigned
shardOf(uint32_t node, unsigned num_dpus)
{
    return static_cast<unsigned>((node * 2654435761u) >> 8) % num_dpus;
}

namespace {

/** MRAM offset of the node tables (clear of the 32 MB allocator heap). */
constexpr sim::MramAddr kTableBase = 48u << 20;

/** Shard-local view of the workload for one DPU. */
struct Shard
{
    uint32_t numLocalNodes = 0;
    std::vector<Edge> baseEdges;   ///< src remapped to local ids
    std::vector<Edge> updateEdges; ///< src remapped to local ids
};

Shard
buildShard(const UpdateWorkload &w, unsigned dpu, unsigned num_dpus)
{
    Shard s;
    std::unordered_map<uint32_t, uint32_t> local;
    auto localId = [&](uint32_t u) {
        auto it = local.find(u);
        if (it != local.end())
            return it->second;
        const uint32_t id = static_cast<uint32_t>(local.size());
        local.emplace(u, id);
        return id;
    };
    // Register every shard-owned node first so ids are stable and the
    // table covers nodes that only appear in the update stream.
    for (uint32_t u = 0; u < w.numNodes; ++u) {
        if (shardOf(u, num_dpus) == dpu)
            localId(u);
    }
    s.numLocalNodes = static_cast<uint32_t>(local.size());
    for (const auto &e : w.baseEdges) {
        if (shardOf(e.src, num_dpus) == dpu)
            s.baseEdges.push_back({localId(e.src), e.dst});
    }
    for (const auto &e : w.updateEdges) {
        if (shardOf(e.src, num_dpus) == dpu)
            s.updateEdges.push_back({localId(e.src), e.dst});
    }
    return s;
}

/** The truncated update split of @p cfg's dataset. */
UpdateWorkload
buildWorkload(const GraphUpdateConfig &cfg)
{
    const GraphDataset dataset = generateGraph(cfg.gen);
    UpdateWorkload w = splitForUpdate(dataset, cfg.newFraction, cfg.seed);
    if (cfg.maxUpdateEdges > 0 && w.updateEdges.size() > cfg.maxUpdateEdges)
        w.updateEdges.resize(cfg.maxUpdateEdges);
    return w;
}

/** Per-shard outcome, filled by its worker and merged in shard order
 *  afterwards so the result is thread-count invariant. */
struct ShardOutcome
{
    bool simulated = false;
    uint64_t cycles = 0;
    sim::CycleBreakdown breakdown{};
    sim::TrafficStats traffic{};
    bool hasAllocator = false;
    alloc::AllocStats stats;
    uint64_t metadataBytes = 0;
};

/** Sequential merge in shard order — identical to the former
 *  single-threaded loop, for any worker count. */
void
mergeOutcomes(GraphUpdateResult &out, const GraphUpdateConfig &cfg,
              const std::vector<ShardOutcome> &outcomes)
{
    uint64_t max_cycles = 0;
    for (const ShardOutcome &oc : outcomes) {
        if (!oc.simulated)
            continue;
        max_cycles = std::max(max_cycles, oc.cycles);
        out.breakdown.merge(oc.breakdown);
        out.traffic.merge(oc.traffic);
        if (oc.hasAllocator) {
            const auto &st = oc.stats;
            out.allocStats.mallocCalls += st.mallocCalls;
            out.allocStats.freeCalls += st.freeCalls;
            out.allocStats.failures += st.failures;
            for (size_t l = 0; l < 3; ++l) {
                out.allocStats.serviced[l] += st.serviced[l];
                out.allocStats.cyclesByLevel[l] += st.cyclesByLevel[l];
            }
            for (double x : st.latency.samples())
                out.allocStats.latency.add(x);
            out.allocStats.events.insert(out.allocStats.events.end(),
                                         st.events.begin(),
                                         st.events.end());
            out.fragmentation =
                std::max(out.fragmentation, st.peakFragmentation);
            out.metadataBytes = oc.metadataBytes;
        }
    }

    out.updateSeconds = cfg.dpuCfg.cyclesToSeconds(max_cycles);
    if (out.updateSeconds > 0) {
        out.millionEdgesPerSec =
            static_cast<double>(out.updateEdgesTotal)
            / out.updateSeconds / 1e6;
    }
    out.avgAllocLatencyUs = cfg.dpuCfg.cyclesToMicros(
        static_cast<uint64_t>(out.allocStats.latency.mean()));
}

} // namespace

/**
 * The full state of one streaming graph-update experiment between
 * step() calls: the per-slot shard/allocator/graph built by the untimed
 * launch, the per-shard round-slice bookkeeping, and the accumulated
 * per-shard outcomes.
 */
struct GraphUpdateTask::Impl
{
    Impl(const GraphUpdateConfig &cfg_in, core::CommandQueue &q,
         const core::DpuSet &partition, core::TenantId tenant_in);

    void step();
    void commitPending(unsigned r);
    void observeRound(unsigned r, double doneSec);
    void resolveParkedRetry();
    void onRankFailed(unsigned rank, double failSec);
    void onReplacementGranted(const core::DpuSet &replacement);
    uint64_t sliceEdges(unsigned shardIdx, unsigned r) const;

    /** Persistent per-sample-slot shard state across rounds. */
    struct SlotState
    {
        bool active = false;
        Shard shard;
        std::unique_ptr<alloc::Allocator> allocator;
        std::unique_ptr<GraphStructure> graph;
    };

    GraphUpdateConfig cfg;
    core::CommandQueue &queue;
    core::PimSystem &sys;
    core::TenantId tenant;
    bool traced;
    core::DpuSet part;
    unsigned numShards;   ///< = part.size(): logical dataset shards
    unsigned rounds;      ///< total update rounds (>= 1)
    unsigned round = 0;   ///< rounds enqueued so far
    UpdateWorkload w;     ///< owned: launch bodies run at drain time
    /** Update edges owned by each logical shard (scatter byte counts
     *  of shipped rounds derive from the per-round slice of these). */
    std::vector<uint64_t> shardEdgeCounts;
    std::vector<SlotState> slots;
    std::vector<ShardOutcome> outcomes;
    core::Event buildEvt = core::kNoEvent;
    core::Event lastRoundEvt = core::kNoEvent;
    double buildDoneSec = 0.0;
    double now = 0.0;
    GraphUpdateResult res; ///< updateEdgesTotal filled up front
    /** Registry sinks (both null when cfg.metrics is null). */
    telemetry::Registry *met = nullptr;
    telemetry::Histogram *roundHist = nullptr;

    // Fault tolerance (all of it inert — and the round path
    // numerically unchanged — unless the queue has a
    // fault::FaultInjector attached). Round bodies stage their
    // outcomes in `pending`; a round commits only once its event is
    // known to have succeeded, so a failed round's measurements never
    // leak into the result before the round has re-executed (Recover)
    // or been written off (Drop).
    fault::FaultPolicy policy;
    core::DpuSet partAtBuild;        ///< frozen shard-id mapping
    std::vector<unsigned> partRankIds;
    std::vector<int> slotShardIdx;   ///< frozen at build; -1 = not ours
    std::vector<ShardOutcome> pending; ///< staged round in flight
    bool parked = false;             ///< last round failed, unresolved
    unsigned parkedR = 0;
    core::Event restoreEvt = core::kNoEvent;
    /** A shard whose home rank died (Recover): its functional state is
     *  frozen at the host-side checkpoint and its remaining slices
     *  re-execute on the replacement as timed launches at the per-edge
     *  rate measured before the death. */
    struct MigratedShard
    {
        unsigned slot;
        unsigned shardIdx;
        double perEdgeCycles;
        std::optional<core::DpuSet> home; ///< set at replacement grant
    };
    std::vector<MigratedShard> migrated;
    /** One rank death awaiting its replacement grant (Recover). */
    struct PendingFail
    {
        unsigned rank;
        double failSec;
        std::vector<MigratedShard> shards; ///< home filled at grant
        uint64_t residentBytesPerDpu = 0;
    };
    std::deque<PendingFail> pendingFails;
    std::vector<double> unrepairedFailSecs; ///< never repaired (Drop)
    std::vector<bool> deadShard;   ///< logical shards lost (Drop)
    /** Current home member (global DPU index) of each logical shard:
     *  its build member until the hosting rank dies, then the
     *  replacement member (Recover) or -1 (Drop). Scatter byte counts
     *  of shipped rounds follow the shard here. */
    std::vector<long> shardHome;
    unsigned failures = 0;
    unsigned recovered = 0;
    unsigned reExec = 0;
    unsigned lostRoundsN = 0;
    uint64_t lostEdgesN = 0;
    uint64_t restoreBytesN = 0;
    double mttrSum = 0.0;
    double downtime = 0.0;
};

GraphUpdateTask::Impl::Impl(const GraphUpdateConfig &cfg_in,
                            core::CommandQueue &q,
                            const core::DpuSet &partition,
                            core::TenantId tenant_in)
    : cfg(cfg_in), queue(q), sys(q.system()), tenant(tenant_in),
      traced(q.recorder() != nullptr), part(partition),
      numShards(partition.size()),
      rounds(std::max(1u, cfg_in.updateRounds)), w(buildWorkload(cfg_in)),
      policy(cfg_in.faultPolicy), partAtBuild(partition)
{
    PIM_ASSERT(numShards >= 1, "need at least one DPU in the partition");
    res.updateEdgesTotal = w.updateEdges.size();

    if (cfg.metrics != nullptr) {
        met = cfg.metrics;
        roundHist = &met->histogram("graph.round_sec");
        if (cfg.sloRoundSec > 0.0)
            met->slo().declare("graph.round", cfg.sloRoundSec);
    }

    shardEdgeCounts.assign(numShards, 0);
    for (const auto &e : w.updateEdges)
        ++shardEdgeCounts[shardOf(e.src, numShards)];

    slots.resize(sys.sampleCount());
    outcomes.resize(sys.sampleCount());
    pending.resize(sys.sampleCount());
    deadShard.assign(numShards, false);
    shardHome.resize(numShards);
    for (unsigned j = 0; j < numShards; ++j)
        shardHome[j] = partAtBuild.memberAt(j);
    partRankIds = partition.ranks();
    // Shard ids are frozen here: a replacement rank joining `part`
    // later must not re-deal the dataset.
    slotShardIdx.assign(sys.sampleCount(), -1);
    for (const unsigned slot : partAtBuild.slots()) {
        slotShardIdx[slot] = static_cast<int>(
            partAtBuild.indexOf(sys.globalIndex(slot)));
    }

    // Untimed deployment launch: every sampled partition DPU builds its
    // shard's pre-update graph (allocator init + parallel build), then
    // arms the measured-phase counters. Shard ids are the partition's
    // dense indexOf order, so a partition run shards the dataset over
    // its own DPUs exactly like a whole-system run over all of them.
    buildEvt = queue.launchProgram(
        part,
        [this](sim::Dpu &dpu, unsigned dpu_idx) {
            const unsigned slot = sys.slotOf(dpu_idx);
            SlotState &st = slots[slot];
            st.shard = buildShard(
                w, static_cast<unsigned>(slotShardIdx[slot]), numShards);
            if (st.shard.numLocalNodes == 0)
                return;
            st.active = true;

            if (cfg.structure == StructureKind::StaticCsr) {
                const uint32_t max_edges = static_cast<uint32_t>(
                    st.shard.baseEdges.size()
                    + st.shard.updateEdges.size());
                st.graph = std::make_unique<CsrGraph>(
                    dpu, kTableBase, st.shard.numLocalNodes, max_edges);
            } else {
                core::AllocatorOverrides ov;
                ov.numTasklets = cfg.tasklets;
                st.allocator =
                    core::makeAllocator(dpu, cfg.allocator, ov);
                if (cfg.structure == StructureKind::LinkedList) {
                    st.graph = std::make_unique<LinkedListGraph>(
                        dpu, *st.allocator, kTableBase,
                        st.shard.numLocalNodes);
                } else {
                    st.graph = std::make_unique<VarArrayGraph>(
                        dpu, *st.allocator, kTableBase,
                        st.shard.numLocalNodes);
                }
            }

            if (st.allocator)
                dpu.run(1,
                        [&](sim::Tasklet &t) { st.allocator->init(t); });
            dpu.run(cfg.tasklets, [&](sim::Tasklet &t) {
                if (cfg.structure == StructureKind::StaticCsr) {
                    if (t.id() == 0)
                        st.graph->build(t, st.shard.baseEdges);
                    return;
                }
                // Node-partitioned parallel build: tasklet k owns
                // local nodes with id % tasklets == k, so no two
                // tasklets ever touch the same adjacency list.
                std::vector<Edge> mine;
                for (const auto &e : st.shard.baseEdges) {
                    if (e.src % cfg.tasklets == t.id())
                        mine.push_back(e);
                }
                st.graph->build(t, mine);
            });

            // Measured phase starts at the first update round.
            dpu.resetStats();
            if (st.allocator) {
                st.allocator->stats().resetCounters();
                st.allocator->stats().traceEvents = cfg.traceEvents;
            }
        },
        {.label = traced ? "graph build" : "", .tenant = tenant});
}

uint64_t
GraphUpdateTask::Impl::sliceEdges(unsigned shardIdx, unsigned r) const
{
    const uint64_t c = shardEdgeCounts[shardIdx];
    return (static_cast<uint64_t>(r) + 1) * c / rounds
        - static_cast<uint64_t>(r) * c / rounds;
}

void
GraphUpdateTask::Impl::commitPending(unsigned r)
{
    for (size_t slot = 0; slot < pending.size(); ++slot) {
        ShardOutcome &pc = pending[slot];
        if (!pc.simulated)
            continue;
        ShardOutcome &oc = outcomes[slot];
        oc.simulated = true;
        oc.cycles += pc.cycles;
        oc.breakdown.merge(pc.breakdown);
        oc.traffic.merge(pc.traffic);
        if (pc.hasAllocator) {
            oc.hasAllocator = true;
            oc.stats = pc.stats;
            oc.metadataBytes = pc.metadataBytes;
        }
        pc = ShardOutcome{};
    }
    // Migrated shards' slices ran as timed launches at their estimated
    // per-edge rate; account the same estimate so throughput stays
    // consistent with the charged timeline.
    for (const MigratedShard &m : migrated) {
        outcomes[m.slot].cycles += static_cast<uint64_t>(
            m.perEdgeCycles
            * static_cast<double>(sliceEdges(m.shardIdx, r)));
    }
}

void
GraphUpdateTask::Impl::observeRound(unsigned r, double doneSec)
{
    if (met == nullptr)
        return;
    // Round latency on the ingest clock: completion minus the round's
    // scheduled arrival (the build completion plus r pacing intervals),
    // so back-to-back rounds report pure service time and a paced
    // stream reports service + queueing delay.
    const double due =
        buildDoneSec + static_cast<double>(r) * cfg.roundIntervalSec;
    const double lat = doneSec - due;
    roundHist->add(lat);
    met->slo().observe("graph.round", lat);
}

void
GraphUpdateTask::Impl::resolveParkedRetry()
{
    // Re-execute the failed round on the (possibly repaired)
    // partition, modeled as one timed launch of the staged cost,
    // ordered after any pending shard restore. The staged outcomes
    // commit only now — the round's work lands exactly once.
    double cyc = 0.0;
    for (const ShardOutcome &pc : pending)
        cyc = std::max(cyc, static_cast<double>(pc.cycles));
    for (const MigratedShard &m : migrated) {
        cyc = std::max(cyc, m.perEdgeCycles
                                * static_cast<double>(
                                    sliceEdges(m.shardIdx, parkedR)));
    }
    core::Event retry = core::kNoEvent;
    if (cyc > 0.0) {
        retry = queue.launchTimed(
            part,
            cfg.dpuCfg.cyclesToSeconds(static_cast<uint64_t>(cyc)),
            {.after = restoreEvt,
             .label = traced ? "recover:redo r" + std::to_string(parkedR)
                             : std::string(),
             .tenant = tenant});
        restoreEvt = core::kNoEvent;
        const double t = queue.eventSeconds(retry);
        now = std::max(now, t);
        if (queue.eventFailed(retry))
            return; // still parked: another fault hit the retry itself
        lastRoundEvt = retry;
    }
    observeRound(parkedR, now);
    commitPending(parkedR);
    ++reExec;
    parked = false;
}

void
GraphUpdateTask::Impl::step()
{
    if (parked) {
        resolveParkedRetry();
        if (parked || round >= rounds)
            return;
    }

    const unsigned r = round;

    if (r == 0) {
        buildDoneSec = queue.eventSeconds(buildEvt);
        if (queue.faultInjector() != nullptr
            && queue.eventFailed(buildEvt)) {
            PIM_FATAL("graph build failed under fault injection before "
                      "the update stream started: raise the MTBF or "
                      "shorten the build");
        }
    }

    // Ingest pacing: the stream's round r arrives r intervals after
    // the build; idle the tenant's host lane until then so the
    // round's commands are not issued early.
    if (cfg.roundIntervalSec > 0 && r > 0) {
        queue.hostIdleUntil(
            buildDoneSec + r * cfg.roundIntervalSec,
            {.label = traced ? "wait:ingest" : std::string(),
             .tenant = tenant});
    }

    // Optionally ship this round's update edges (8 B each) to their
    // owning DPUs; the round's launch orders after the shipment so the
    // data has landed, while the double-buffered transfer leaves the
    // previous round's compute running.
    core::Event ship = core::kNoEvent;
    if (cfg.shipUpdates) {
        // Byte counts index positions of the *current* partition: a
        // recovered partition swapped the dead rank's members for the
        // replacement's, and a Drop partition shrank. Each surviving
        // shard's slice ships to the member that hosts it now.
        std::vector<uint64_t> bytes(part.size(), 0);
        for (unsigned j = 0; j < numShards; ++j) {
            if (shardHome[j] < 0)
                continue; // lost with its rank (Drop)
            bytes[part.indexOf(static_cast<unsigned>(shardHome[j]))] +=
                sliceEdges(j, r) * sizeof(Edge);
        }
        ship = queue.memcpyScatterBufferedAsync(
            part, std::move(bytes), core::CopyDirection::HostToPim,
            {.label = traced ? "updates r" + std::to_string(r)
                             : std::string(),
             .tenant = tenant});
    }

    const bool last = (r + 1 == rounds);
    lastRoundEvt = queue.launchProgram(
        part,
        [this, r, last](sim::Dpu &dpu, unsigned dpu_idx) {
            const unsigned slot = sys.slotOf(dpu_idx);
            SlotState &st = slots[slot];
            if (!st.active)
                return;

            // This shard's slice of the round: consecutive slices
            // cover its update stream exactly once.
            const uint64_t c = st.shard.updateEdges.size();
            const uint64_t lo = r * c / rounds;
            const uint64_t hi = (r + 1) * c / rounds;

            dpu.resetStats();
            dpu.run(cfg.tasklets, [&](sim::Tasklet &t) {
                for (uint64_t i = lo; i < hi; ++i) {
                    const Edge &e = st.shard.updateEdges[i];
                    if (e.src % cfg.tasklets != t.id())
                        continue;
                    const bool ok = st.graph->insertEdge(t, e.src, e.dst);
                    PIM_ASSERT(ok, "update insertion failed (capacity)");
                }
            });

            // Stage the outcome; it commits once the round's event is
            // known to have succeeded (immediately in a fault-free
            // run).
            ShardOutcome &oc = pending[slot];
            oc.simulated = true;
            oc.cycles += dpu.lastElapsedCycles();
            oc.breakdown.merge(dpu.lastBreakdown());
            oc.traffic.merge(dpu.traffic());
            if (!last)
                return;
            // Final round: harvest the run-wide allocator stats, then
            // return this shard's pages so full-system runs don't hold
            // every shard resident at once.
            if (st.allocator) {
                oc.hasAllocator = true;
                oc.stats = st.allocator->stats();
                oc.metadataBytes = st.allocator->metadataBytes();
            }
            st.graph.reset();
            st.allocator.reset();
            st.active = false;
            dpu.reclaimMemory();
        },
        {.after = ship,
         .label = traced ? "update r" + std::to_string(r)
                         : std::string(),
         .tenant = tenant});
    ++round;

    // Migrated shards (Recover): their slices of this round run on the
    // replacement ranks as timed launches at the measured per-edge
    // rate, ordered after the shipment like the main launch.
    std::vector<core::Event> extras;
    for (const MigratedShard &m : migrated) {
        const uint64_t k = sliceEdges(m.shardIdx, r);
        if (k == 0)
            continue;
        extras.push_back(queue.launchTimed(
            *m.home,
            cfg.dpuCfg.cyclesToSeconds(static_cast<uint64_t>(
                m.perEdgeCycles * static_cast<double>(k))),
            {.after = ship,
             .label = traced ? "update r" + std::to_string(r)
                     + ":migrated"
                             : std::string(),
             .tenant = tenant}));
    }

    const bool faults = queue.faultInjector() != nullptr;
    double t = queue.eventSeconds(lastRoundEvt);
    bool failed = faults && queue.eventFailed(lastRoundEvt);
    for (const core::Event e : extras) {
        t = std::max(t, queue.eventSeconds(e));
        failed = failed || (faults && queue.eventFailed(e));
    }
    now = std::max(now, t);
    if (!failed) {
        observeRound(r, t);
        commitPending(r);
        return;
    }

    // The round failed: a rank died mid-round, a shipped slice was
    // permanently corrupted (poisoning the launch through .after), or
    // the launch timed out.
    if (policy == fault::FaultPolicy::Fatal) {
        PIM_FATAL("update round ", r, " failed under fault injection "
                  "(FaultPolicy::Fatal)");
    }
    if (policy == fault::FaultPolicy::Drop) {
        // No re-execution: the round's insertions are written off.
        ++lostRoundsN;
        for (unsigned j = 0; j < numShards; ++j) {
            if (!deadShard[j])
                lostEdgesN += sliceEdges(j, r);
        }
        for (ShardOutcome &pc : pending)
            pc = ShardOutcome{};
        return;
    }
    // Recover: park the staged round; it re-executes once the driver
    // has quarantined any dead rank and a replacement has joined (or
    // immediately next step, for a transient/timeout failure).
    parked = true;
    parkedR = r;
}

void
GraphUpdateTask::Impl::onRankFailed(unsigned rank, double failSec)
{
    const auto it =
        std::find(partRankIds.begin(), partRankIds.end(), rank);
    PIM_ASSERT(it != partRankIds.end(), "rank ", rank,
               " is not part of this graph partition");
    if (policy == fault::FaultPolicy::Fatal) {
        PIM_FATAL("rank ", rank, " failed at t=", failSec,
                  "s (FaultPolicy::Fatal)");
    }
    ++failures;
    partRankIds.erase(it);
    PIM_ASSERT(!partRankIds.empty(),
               "graph partition lost its last rank");
    part = sys.ranks(partRankIds);

    const core::DpuSet dead_set = sys.ranks({rank});

    if (policy == fault::FaultPolicy::Drop) {
        // The dead rank's shards — and every update edge they had not
        // ingested yet — are gone; the partition shrinks onto the
        // survivors.
        unrepairedFailSecs.push_back(failSec);
        for (unsigned i = 0; i < dead_set.size(); ++i) {
            const unsigned shard_idx =
                partAtBuild.indexOf(dead_set.memberAt(i));
            if (deadShard[shard_idx])
                continue;
            deadShard[shard_idx] = true;
            shardHome[shard_idx] = -1;
            const uint64_t c = shardEdgeCounts[shard_idx];
            lostEdgesN += c - static_cast<uint64_t>(round) * c / rounds;
        }
        for (const unsigned slot : dead_set.slots()) {
            SlotState &st = slots[slot];
            if (!st.active)
                continue;
            st.graph.reset();
            st.allocator.reset();
            st.active = false;
            pending[slot] = ShardOutcome{};
        }
        return;
    }

    // Recover: freeze each dead sampled shard at its host-side
    // checkpoint — harvest the allocator stats now (the re-executed
    // rounds are timed-only, so this is the shard's final functional
    // state) and measure the per-edge rate its remaining slices will
    // be charged at — then pause until a replacement rank is granted.
    PendingFail fail{rank, failSec, {}, 0};
    uint64_t resident_sum = 0;
    unsigned resident_n = 0;
    for (const unsigned slot : dead_set.slots()) {
        SlotState &st = slots[slot];
        if (!st.active)
            continue;
        ShardOutcome &oc = outcomes[slot];
        oc.simulated = true;
        if (st.allocator) {
            oc.hasAllocator = true;
            oc.stats = st.allocator->stats();
            oc.metadataBytes = st.allocator->metadataBytes();
        }
        const unsigned shard_idx =
            static_cast<unsigned>(slotShardIdx[slot]);
        const uint64_t c = shardEdgeCounts[shard_idx];
        const uint64_t processed =
            static_cast<uint64_t>(round) * c / rounds;
        const uint64_t cyc = oc.cycles + pending[slot].cycles;
        const double per_edge = processed > 0
            ? static_cast<double>(cyc) / static_cast<double>(processed)
            : 0.0;
        const uint64_t local = st.shard.updateEdges.size();
        const uint64_t local_processed =
            static_cast<uint64_t>(round) * local / rounds;
        resident_sum += st.shard.numLocalNodes * 8ull
            + (st.shard.baseEdges.size() + local_processed)
                * sizeof(Edge);
        ++resident_n;
        fail.shards.push_back({slot, shard_idx, per_edge, std::nullopt});
        st.graph.reset();
        st.allocator.reset();
        st.active = false;
    }
    if (resident_n > 0)
        fail.residentBytesPerDpu = resident_sum / resident_n;
    pendingFails.push_back(std::move(fail));
}

void
GraphUpdateTask::Impl::onReplacementGranted(
    const core::DpuSet &replacement)
{
    PIM_ASSERT(!pendingFails.empty(),
               "replacement granted with no outstanding rank failure");
    PendingFail fail = std::move(pendingFails.front());
    pendingFails.pop_front();
    ++recovered;

    for (const unsigned r : replacement.ranks())
        partRankIds.push_back(r);
    part = sys.ranks(partRankIds);

    // Repair starts no earlier than the failure was observed: the
    // replacement's lanes are idle (a fresh rank back-fills to t=0
    // otherwise), so pin the tenant's host lane first.
    queue.hostIdleUntil(std::max(now, fail.failSec),
                        {.label = traced ? "recover:wait" : std::string(),
                         .tenant = tenant});

    // Restore the dead rank's shard state onto the replacement from
    // the host-side checkpoint, costed as a bus transfer; the parked
    // round's retry orders after it.
    core::Event restore = core::kNoEvent;
    if (fail.residentBytesPerDpu > 0) {
        restore = queue.memcpyBufferedAsync(
            replacement, fail.residentBytesPerDpu,
            core::CopyDirection::HostToPim,
            {.label = traced ? "recover:restore" : std::string(),
             .tenant = tenant});
        restoreBytesN += fail.residentBytesPerDpu * replacement.size();
        restoreEvt = restore;
    }
    for (MigratedShard &m : fail.shards) {
        m.home = replacement;
        migrated.push_back(std::move(m));
    }

    // Every shard the dead rank hosted — sampled or not — now lives on
    // the replacement member at the same within-rank offset, so shipped
    // rounds keep scattering its slice to the member that runs it.
    const core::DpuSet dead_set = sys.ranks({fail.rank});
    for (unsigned j = 0; j < numShards; ++j) {
        if (shardHome[j] < 0)
            continue;
        const unsigned home = static_cast<unsigned>(shardHome[j]);
        if (dead_set.contains(home))
            shardHome[j] = replacement.memberAt(
                dead_set.indexOf(home) % replacement.size());
    }

    const double repaired = std::max(
        restore != core::kNoEvent ? queue.eventSeconds(restore)
                                  : std::max(now, fail.failSec),
        fail.failSec);
    mttrSum += repaired - fail.failSec;
    downtime += repaired - fail.failSec;
}

GraphUpdateTask::GraphUpdateTask(const GraphUpdateConfig &cfg,
                                 core::CommandQueue &queue,
                                 const core::DpuSet &partition,
                                 core::TenantId tenant)
    : impl_(std::make_unique<Impl>(cfg, queue, partition, tenant))
{
}

GraphUpdateTask::~GraphUpdateTask() = default;

bool
GraphUpdateTask::done() const
{
    return impl_->round >= impl_->rounds && !impl_->parked
        && impl_->pendingFails.empty();
}

double
GraphUpdateTask::clockSeconds() const
{
    return impl_->now;
}

void
GraphUpdateTask::step()
{
    PIM_ASSERT(!done(), "step() after the last update round");
    PIM_ASSERT(impl_->pendingFails.empty(),
               "step() while waiting for a replacement rank");
    impl_->step();
}

void
GraphUpdateTask::onRankFailed(unsigned rank, double failSec)
{
    impl_->onRankFailed(rank, failSec);
}

void
GraphUpdateTask::onReplacementGranted(const core::DpuSet &replacement)
{
    impl_->onReplacementGranted(replacement);
}

bool
GraphUpdateTask::waitingReplacement() const
{
    return !impl_->pendingFails.empty();
}

GraphUpdateResult
GraphUpdateTask::result() const
{
    PIM_ASSERT(done(), "result() before the last update round");
    GraphUpdateResult out = impl_->res;
    mergeOutcomes(out, impl_->cfg, impl_->outcomes);
    out.wallSeconds = std::max(0.0, impl_->now - impl_->buildDoneSec);
    out.rankFailures = impl_->failures;
    out.reExecutedRounds = impl_->reExec;
    out.lostRounds = impl_->lostRoundsN;
    out.lostEdges = impl_->lostEdgesN;
    out.restoreBytes = impl_->restoreBytesN;
    out.mttrMeanSec = impl_->recovered > 0
        ? impl_->mttrSum / impl_->recovered
        : 0.0;
    double down = impl_->downtime;
    for (const double fail_sec : impl_->unrepairedFailSecs)
        down += std::max(0.0, impl_->now - fail_sec);
    out.availability = out.wallSeconds > 0.0
        ? std::clamp(1.0 - down / out.wallSeconds, 0.0, 1.0)
        : 1.0;
    if (out.lostEdges > 0 && out.updateSeconds > 0) {
        // Throughput counts only the edges actually ingested.
        const uint64_t kept = out.updateEdgesTotal
                > out.lostEdges
            ? out.updateEdgesTotal - out.lostEdges
            : 0;
        out.millionEdgesPerSec =
            static_cast<double>(kept) / out.updateSeconds / 1e6;
    }
    return out;
}

GraphUpdateResult
runGraphUpdate(const GraphUpdateConfig &cfg)
{
    PIM_ASSERT(cfg.numDpus >= 1, "need at least one DPU");

    // The dataset is sharded across the whole system; the unified
    // runtime materializes the sampled shards and executes the
    // launches below on its host pool.
    core::PimSystemConfig scfg;
    scfg.numDpus = cfg.numDpus;
    scfg.sampleDpus = cfg.sampleDpus;
    scfg.dpuCfg = cfg.dpuCfg;
    scfg.simThreads = cfg.simThreads;

    if (cfg.updateRounds > 1 || cfg.shipUpdates
        || cfg.faultSpec.enabled()) {
        // Streaming-ingest mode: the round-driven stepper on a private
        // queue (the co-tenant form runs the same task on a shared
        // queue instead). Fault injection rides this path — round
        // granularity is what makes recovery possible.
        core::PimSystem sys(scfg);
        core::CommandQueue queue(sys);
        if (cfg.recorder != nullptr)
            queue.attachRecorder(cfg.recorder);
        if (cfg.metrics != nullptr)
            queue.attachMetrics(cfg.metrics);

        std::unique_ptr<fault::FaultInjector> inj;
        std::unique_ptr<core::RankScheduler> sched;
        std::unique_ptr<GraphUpdateTask> task;
        if (cfg.faultSpec.enabled()) {
            inj = std::make_unique<fault::FaultInjector>(
                fault::FaultPlan(cfg.faultSpec, cfg.faultSeed,
                                 sys.numRanks()));
            queue.attachFaultInjector(inj.get());
        }
        if (inj != nullptr && cfg.faultSpec.rankMtbfSec > 0.0) {
            sched = std::make_unique<core::RankScheduler>(sys);
            if (cfg.metrics != nullptr)
                sched->attachMetrics(cfg.metrics);
            const unsigned spare = std::min(
                cfg.spareRanks,
                sys.numRanks() > 1 ? sys.numRanks() - 1 : 0u);
            task = std::make_unique<GraphUpdateTask>(
                cfg, queue,
                sched->acquireRanks(sys.numRanks() - spare, "graph"));
            sched->onRevoke("graph", [&](unsigned rank) {
                task->onRankFailed(rank, inj->rankFailSeconds(rank));
                if (cfg.faultPolicy == fault::FaultPolicy::Recover) {
                    sched->requestRanks(
                        1, "graph", [&](core::DpuSet replacement) {
                            task->onReplacementGranted(
                                std::move(replacement));
                        });
                }
            });
        } else {
            task = std::make_unique<GraphUpdateTask>(cfg, queue,
                                                     sys.all());
        }

        while (!task->done()) {
            task->step();
            if (sched != nullptr) {
                for (const fault::FaultEvent &ev :
                     inj->drainFailedRanks(task->clockSeconds()))
                    sched->quarantine(ev.rank);
                if (task->waitingReplacement()) {
                    PIM_FATAL("rank failed with no spare replacement "
                              "left (", sched->freeRankCount(),
                              " free): raise "
                              "GraphUpdateConfig::spareRanks or "
                              "shorten the stream");
                }
            }
        }
        if (inj != nullptr && cfg.metrics != nullptr)
            inj->exportMetrics(*cfg.metrics);
        GraphUpdateResult out = task->result();
        queue.sync();
        return out;
    }

    const UpdateWorkload w = buildWorkload(cfg);

    GraphUpdateResult out;
    out.updateEdgesTotal = w.updateEdges.size();

    core::PimSystem sys(scfg);
    core::CommandQueue queue(sys);
    if (cfg.recorder != nullptr)
        queue.attachRecorder(cfg.recorder);
    if (cfg.metrics != nullptr)
        queue.attachMetrics(cfg.metrics);

    const unsigned simulated = sys.sampleCount();
    std::vector<ShardOutcome> outcomes(simulated);

    // One launch, heterogeneous per-DPU work: every sampled DPU builds
    // and updates its own shard (no two shards share state, so the
    // bodies are safely concurrent).
    queue.launchProgram(sys.all(), [&](sim::Dpu &dpu, unsigned dpu_idx) {
        const unsigned slot = sys.slotOf(dpu_idx);
        const Shard shard = buildShard(w, dpu_idx, cfg.numDpus);
        if (shard.numLocalNodes == 0)
            return;

        std::unique_ptr<alloc::Allocator> allocator;
        std::unique_ptr<GraphStructure> graph;

        if (cfg.structure == StructureKind::StaticCsr) {
            const uint32_t max_edges = static_cast<uint32_t>(
                shard.baseEdges.size() + shard.updateEdges.size());
            graph = std::make_unique<CsrGraph>(
                dpu, kTableBase, shard.numLocalNodes, max_edges);
        } else {
            core::AllocatorOverrides ov;
            ov.numTasklets = cfg.tasklets;
            allocator = core::makeAllocator(dpu, cfg.allocator, ov);
            if (cfg.structure == StructureKind::LinkedList) {
                graph = std::make_unique<LinkedListGraph>(
                    dpu, *allocator, kTableBase, shard.numLocalNodes);
            } else {
                graph = std::make_unique<VarArrayGraph>(
                    dpu, *allocator, kTableBase, shard.numLocalNodes);
            }
        }

        // Untimed: allocator init, then pre-update graph construction.
        if (allocator)
            dpu.run(1, [&](sim::Tasklet &t) { allocator->init(t); });
        dpu.run(cfg.tasklets, [&](sim::Tasklet &t) {
            if (cfg.structure == StructureKind::StaticCsr) {
                if (t.id() == 0)
                    graph->build(t, shard.baseEdges);
                return;
            }
            // Node-partitioned parallel build: tasklet k owns local
            // nodes with id % tasklets == k, so no two tasklets ever
            // touch the same adjacency list.
            std::vector<Edge> mine;
            for (const auto &e : shard.baseEdges) {
                if (e.src % cfg.tasklets == t.id())
                    mine.push_back(e);
            }
            graph->build(t, mine);
        });

        // Measured phase starts here.
        dpu.resetStats();
        if (allocator) {
            allocator->stats().resetCounters();
            allocator->stats().traceEvents = cfg.traceEvents;
        }

        dpu.run(cfg.tasklets, [&](sim::Tasklet &t) {
            for (const auto &e : shard.updateEdges) {
                if (e.src % cfg.tasklets != t.id())
                    continue;
                const bool ok = graph->insertEdge(t, e.src, e.dst);
                PIM_ASSERT(ok, "update insertion failed (capacity)");
            }
        });

        ShardOutcome &oc = outcomes[slot];
        oc.simulated = true;
        oc.cycles = dpu.lastElapsedCycles();
        oc.breakdown = dpu.lastBreakdown();
        oc.traffic = dpu.traffic();
        if (allocator) {
            oc.hasAllocator = true;
            oc.stats = allocator->stats();
            oc.metadataBytes = allocator->metadataBytes();
        }
        // Outcome harvested — return this shard's pages so full-system
        // (sample = 0) runs don't hold every shard resident at once.
        graph.reset();
        allocator.reset();
        dpu.reclaimMemory();
    }, {.label = "build+update"});
    queue.sync();

    mergeOutcomes(out, cfg, outcomes);
    return out;
}

} // namespace pim::workloads::graph
