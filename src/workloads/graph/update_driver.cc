#include "workloads/graph/update_driver.hh"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "alloc/allocator.hh"
#include "core/pim_system.hh"
#include "sim/dpu.hh"
#include "util/logging.hh"
#include "workloads/graph/csr_graph.hh"
#include "workloads/graph/linked_list_graph.hh"
#include "workloads/graph/var_array_graph.hh"

namespace pim::workloads::graph {

const char *
structureKindName(StructureKind s)
{
    switch (s) {
      case StructureKind::StaticCsr: return "Static (CSR)";
      case StructureKind::LinkedList: return "Dynamic (array of linked lists)";
      case StructureKind::VarArray: return "Dynamic (variable sized array)";
    }
    return "?";
}

unsigned
shardOf(uint32_t node, unsigned num_dpus)
{
    return static_cast<unsigned>((node * 2654435761u) >> 8) % num_dpus;
}

namespace {

/** MRAM offset of the node tables (clear of the 32 MB allocator heap). */
constexpr sim::MramAddr kTableBase = 48u << 20;

/** Shard-local view of the workload for one DPU. */
struct Shard
{
    uint32_t numLocalNodes = 0;
    std::vector<Edge> baseEdges;   ///< src remapped to local ids
    std::vector<Edge> updateEdges; ///< src remapped to local ids
};

Shard
buildShard(const UpdateWorkload &w, unsigned dpu, unsigned num_dpus)
{
    Shard s;
    std::unordered_map<uint32_t, uint32_t> local;
    auto localId = [&](uint32_t u) {
        auto it = local.find(u);
        if (it != local.end())
            return it->second;
        const uint32_t id = static_cast<uint32_t>(local.size());
        local.emplace(u, id);
        return id;
    };
    // Register every shard-owned node first so ids are stable and the
    // table covers nodes that only appear in the update stream.
    for (uint32_t u = 0; u < w.numNodes; ++u) {
        if (shardOf(u, num_dpus) == dpu)
            localId(u);
    }
    s.numLocalNodes = static_cast<uint32_t>(local.size());
    for (const auto &e : w.baseEdges) {
        if (shardOf(e.src, num_dpus) == dpu)
            s.baseEdges.push_back({localId(e.src), e.dst});
    }
    for (const auto &e : w.updateEdges) {
        if (shardOf(e.src, num_dpus) == dpu)
            s.updateEdges.push_back({localId(e.src), e.dst});
    }
    return s;
}

/** The truncated update split of @p cfg's dataset. */
UpdateWorkload
buildWorkload(const GraphUpdateConfig &cfg)
{
    const GraphDataset dataset = generateGraph(cfg.gen);
    UpdateWorkload w = splitForUpdate(dataset, cfg.newFraction, cfg.seed);
    if (cfg.maxUpdateEdges > 0 && w.updateEdges.size() > cfg.maxUpdateEdges)
        w.updateEdges.resize(cfg.maxUpdateEdges);
    return w;
}

/** Per-shard outcome, filled by its worker and merged in shard order
 *  afterwards so the result is thread-count invariant. */
struct ShardOutcome
{
    bool simulated = false;
    uint64_t cycles = 0;
    sim::CycleBreakdown breakdown{};
    sim::TrafficStats traffic{};
    bool hasAllocator = false;
    alloc::AllocStats stats;
    uint64_t metadataBytes = 0;
};

/** Sequential merge in shard order — identical to the former
 *  single-threaded loop, for any worker count. */
void
mergeOutcomes(GraphUpdateResult &out, const GraphUpdateConfig &cfg,
              const std::vector<ShardOutcome> &outcomes)
{
    uint64_t max_cycles = 0;
    for (const ShardOutcome &oc : outcomes) {
        if (!oc.simulated)
            continue;
        max_cycles = std::max(max_cycles, oc.cycles);
        out.breakdown.merge(oc.breakdown);
        out.traffic.merge(oc.traffic);
        if (oc.hasAllocator) {
            const auto &st = oc.stats;
            out.allocStats.mallocCalls += st.mallocCalls;
            out.allocStats.freeCalls += st.freeCalls;
            out.allocStats.failures += st.failures;
            for (size_t l = 0; l < 3; ++l) {
                out.allocStats.serviced[l] += st.serviced[l];
                out.allocStats.cyclesByLevel[l] += st.cyclesByLevel[l];
            }
            for (double x : st.latency.samples())
                out.allocStats.latency.add(x);
            out.allocStats.events.insert(out.allocStats.events.end(),
                                         st.events.begin(),
                                         st.events.end());
            out.fragmentation =
                std::max(out.fragmentation, st.peakFragmentation);
            out.metadataBytes = oc.metadataBytes;
        }
    }

    out.updateSeconds = cfg.dpuCfg.cyclesToSeconds(max_cycles);
    if (out.updateSeconds > 0) {
        out.millionEdgesPerSec =
            static_cast<double>(out.updateEdgesTotal)
            / out.updateSeconds / 1e6;
    }
    out.avgAllocLatencyUs = cfg.dpuCfg.cyclesToMicros(
        static_cast<uint64_t>(out.allocStats.latency.mean()));
}

} // namespace

/**
 * The full state of one streaming graph-update experiment between
 * step() calls: the per-slot shard/allocator/graph built by the untimed
 * launch, the per-shard round-slice bookkeeping, and the accumulated
 * per-shard outcomes.
 */
struct GraphUpdateTask::Impl
{
    Impl(const GraphUpdateConfig &cfg_in, core::CommandQueue &q,
         const core::DpuSet &partition, core::TenantId tenant_in);

    void step();

    /** Persistent per-sample-slot shard state across rounds. */
    struct SlotState
    {
        bool active = false;
        Shard shard;
        std::unique_ptr<alloc::Allocator> allocator;
        std::unique_ptr<GraphStructure> graph;
    };

    GraphUpdateConfig cfg;
    core::CommandQueue &queue;
    core::PimSystem &sys;
    core::TenantId tenant;
    bool traced;
    core::DpuSet part;
    unsigned numShards;   ///< = part.size(): logical dataset shards
    unsigned rounds;      ///< total update rounds (>= 1)
    unsigned round = 0;   ///< rounds enqueued so far
    UpdateWorkload w;     ///< owned: launch bodies run at drain time
    /** Update edges owned by each logical shard (scatter byte counts
     *  of shipped rounds derive from the per-round slice of these). */
    std::vector<uint64_t> shardEdgeCounts;
    std::vector<SlotState> slots;
    std::vector<ShardOutcome> outcomes;
    core::Event buildEvt = core::kNoEvent;
    core::Event lastRoundEvt = core::kNoEvent;
    double buildDoneSec = 0.0;
    double now = 0.0;
    GraphUpdateResult res; ///< updateEdgesTotal filled up front
};

GraphUpdateTask::Impl::Impl(const GraphUpdateConfig &cfg_in,
                            core::CommandQueue &q,
                            const core::DpuSet &partition,
                            core::TenantId tenant_in)
    : cfg(cfg_in), queue(q), sys(q.system()), tenant(tenant_in),
      traced(q.recorder() != nullptr), part(partition),
      numShards(partition.size()),
      rounds(std::max(1u, cfg_in.updateRounds)), w(buildWorkload(cfg_in))
{
    PIM_ASSERT(numShards >= 1, "need at least one DPU in the partition");
    res.updateEdgesTotal = w.updateEdges.size();

    shardEdgeCounts.assign(numShards, 0);
    for (const auto &e : w.updateEdges)
        ++shardEdgeCounts[shardOf(e.src, numShards)];

    slots.resize(sys.sampleCount());
    outcomes.resize(sys.sampleCount());

    // Untimed deployment launch: every sampled partition DPU builds its
    // shard's pre-update graph (allocator init + parallel build), then
    // arms the measured-phase counters. Shard ids are the partition's
    // dense indexOf order, so a partition run shards the dataset over
    // its own DPUs exactly like a whole-system run over all of them.
    buildEvt = queue.launchProgram(
        part,
        [this](sim::Dpu &dpu, unsigned dpu_idx) {
            const unsigned slot = sys.slotOf(dpu_idx);
            SlotState &st = slots[slot];
            st.shard = buildShard(w, part.indexOf(dpu_idx), numShards);
            if (st.shard.numLocalNodes == 0)
                return;
            st.active = true;

            if (cfg.structure == StructureKind::StaticCsr) {
                const uint32_t max_edges = static_cast<uint32_t>(
                    st.shard.baseEdges.size()
                    + st.shard.updateEdges.size());
                st.graph = std::make_unique<CsrGraph>(
                    dpu, kTableBase, st.shard.numLocalNodes, max_edges);
            } else {
                core::AllocatorOverrides ov;
                ov.numTasklets = cfg.tasklets;
                st.allocator =
                    core::makeAllocator(dpu, cfg.allocator, ov);
                if (cfg.structure == StructureKind::LinkedList) {
                    st.graph = std::make_unique<LinkedListGraph>(
                        dpu, *st.allocator, kTableBase,
                        st.shard.numLocalNodes);
                } else {
                    st.graph = std::make_unique<VarArrayGraph>(
                        dpu, *st.allocator, kTableBase,
                        st.shard.numLocalNodes);
                }
            }

            if (st.allocator)
                dpu.run(1,
                        [&](sim::Tasklet &t) { st.allocator->init(t); });
            dpu.run(cfg.tasklets, [&](sim::Tasklet &t) {
                if (cfg.structure == StructureKind::StaticCsr) {
                    if (t.id() == 0)
                        st.graph->build(t, st.shard.baseEdges);
                    return;
                }
                // Node-partitioned parallel build: tasklet k owns
                // local nodes with id % tasklets == k, so no two
                // tasklets ever touch the same adjacency list.
                std::vector<Edge> mine;
                for (const auto &e : st.shard.baseEdges) {
                    if (e.src % cfg.tasklets == t.id())
                        mine.push_back(e);
                }
                st.graph->build(t, mine);
            });

            // Measured phase starts at the first update round.
            dpu.resetStats();
            if (st.allocator) {
                st.allocator->stats().resetCounters();
                st.allocator->stats().traceEvents = cfg.traceEvents;
            }
        },
        {.label = traced ? "graph build" : "", .tenant = tenant});
}

void
GraphUpdateTask::Impl::step()
{
    const unsigned r = round;

    if (r == 0)
        buildDoneSec = queue.eventSeconds(buildEvt);

    // Ingest pacing: the stream's round r arrives r intervals after
    // the build; idle the tenant's host lane until then so the
    // round's commands are not issued early.
    if (cfg.roundIntervalSec > 0 && r > 0) {
        queue.hostIdleUntil(
            buildDoneSec + r * cfg.roundIntervalSec,
            {.label = traced ? "wait:ingest" : std::string(),
             .tenant = tenant});
    }

    // Optionally ship this round's update edges (8 B each) to their
    // owning DPUs; the round's launch orders after the shipment so the
    // data has landed, while the double-buffered transfer leaves the
    // previous round's compute running.
    core::Event ship = core::kNoEvent;
    if (cfg.shipUpdates) {
        std::vector<uint64_t> bytes(numShards, 0);
        for (unsigned j = 0; j < numShards; ++j) {
            const uint64_t c = shardEdgeCounts[j];
            const uint64_t lo = r * c / rounds;
            const uint64_t hi = (r + 1) * c / rounds;
            bytes[j] = (hi - lo) * sizeof(Edge);
        }
        ship = queue.memcpyScatterBufferedAsync(
            part, std::move(bytes), core::CopyDirection::HostToPim,
            {.label = traced ? "updates r" + std::to_string(r)
                             : std::string(),
             .tenant = tenant});
    }

    const bool last = (r + 1 == rounds);
    lastRoundEvt = queue.launchProgram(
        part,
        [this, r, last](sim::Dpu &dpu, unsigned dpu_idx) {
            const unsigned slot = sys.slotOf(dpu_idx);
            SlotState &st = slots[slot];
            if (!st.active)
                return;

            // This shard's slice of the round: consecutive slices
            // cover its update stream exactly once.
            const uint64_t c = st.shard.updateEdges.size();
            const uint64_t lo = r * c / rounds;
            const uint64_t hi = (r + 1) * c / rounds;

            dpu.resetStats();
            dpu.run(cfg.tasklets, [&](sim::Tasklet &t) {
                for (uint64_t i = lo; i < hi; ++i) {
                    const Edge &e = st.shard.updateEdges[i];
                    if (e.src % cfg.tasklets != t.id())
                        continue;
                    const bool ok = st.graph->insertEdge(t, e.src, e.dst);
                    PIM_ASSERT(ok, "update insertion failed (capacity)");
                }
            });

            ShardOutcome &oc = outcomes[slot];
            oc.simulated = true;
            oc.cycles += dpu.lastElapsedCycles();
            oc.breakdown.merge(dpu.lastBreakdown());
            oc.traffic.merge(dpu.traffic());
            if (!last)
                return;
            // Final round: harvest the run-wide allocator stats, then
            // return this shard's pages so full-system runs don't hold
            // every shard resident at once.
            if (st.allocator) {
                oc.hasAllocator = true;
                oc.stats = st.allocator->stats();
                oc.metadataBytes = st.allocator->metadataBytes();
            }
            st.graph.reset();
            st.allocator.reset();
            st.active = false;
            dpu.reclaimMemory();
        },
        {.after = ship,
         .label = traced ? "update r" + std::to_string(r)
                         : std::string(),
         .tenant = tenant});
    ++round;

    now = std::max(now, queue.eventSeconds(lastRoundEvt));
}

GraphUpdateTask::GraphUpdateTask(const GraphUpdateConfig &cfg,
                                 core::CommandQueue &queue,
                                 const core::DpuSet &partition,
                                 core::TenantId tenant)
    : impl_(std::make_unique<Impl>(cfg, queue, partition, tenant))
{
}

GraphUpdateTask::~GraphUpdateTask() = default;

bool
GraphUpdateTask::done() const
{
    return impl_->round >= impl_->rounds;
}

double
GraphUpdateTask::clockSeconds() const
{
    return impl_->now;
}

void
GraphUpdateTask::step()
{
    PIM_ASSERT(!done(), "step() after the last update round");
    impl_->step();
}

GraphUpdateResult
GraphUpdateTask::result() const
{
    PIM_ASSERT(done(), "result() before the last update round");
    GraphUpdateResult out = impl_->res;
    mergeOutcomes(out, impl_->cfg, impl_->outcomes);
    out.wallSeconds = std::max(0.0, impl_->now - impl_->buildDoneSec);
    return out;
}

GraphUpdateResult
runGraphUpdate(const GraphUpdateConfig &cfg)
{
    PIM_ASSERT(cfg.numDpus >= 1, "need at least one DPU");

    // The dataset is sharded across the whole system; the unified
    // runtime materializes the sampled shards and executes the
    // launches below on its host pool.
    core::PimSystemConfig scfg;
    scfg.numDpus = cfg.numDpus;
    scfg.sampleDpus = cfg.sampleDpus;
    scfg.dpuCfg = cfg.dpuCfg;
    scfg.simThreads = cfg.simThreads;

    if (cfg.updateRounds > 1 || cfg.shipUpdates) {
        // Streaming-ingest mode: the round-driven stepper on a private
        // queue (the co-tenant form runs the same task on a shared
        // queue instead).
        core::PimSystem sys(scfg);
        core::CommandQueue queue(sys);
        if (cfg.recorder != nullptr)
            queue.attachRecorder(cfg.recorder);
        GraphUpdateTask task(cfg, queue, sys.all());
        while (!task.done())
            task.step();
        GraphUpdateResult out = task.result();
        queue.sync();
        return out;
    }

    const UpdateWorkload w = buildWorkload(cfg);

    GraphUpdateResult out;
    out.updateEdgesTotal = w.updateEdges.size();

    core::PimSystem sys(scfg);
    core::CommandQueue queue(sys);
    if (cfg.recorder != nullptr)
        queue.attachRecorder(cfg.recorder);

    const unsigned simulated = sys.sampleCount();
    std::vector<ShardOutcome> outcomes(simulated);

    // One launch, heterogeneous per-DPU work: every sampled DPU builds
    // and updates its own shard (no two shards share state, so the
    // bodies are safely concurrent).
    queue.launchProgram(sys.all(), [&](sim::Dpu &dpu, unsigned dpu_idx) {
        const unsigned slot = sys.slotOf(dpu_idx);
        const Shard shard = buildShard(w, dpu_idx, cfg.numDpus);
        if (shard.numLocalNodes == 0)
            return;

        std::unique_ptr<alloc::Allocator> allocator;
        std::unique_ptr<GraphStructure> graph;

        if (cfg.structure == StructureKind::StaticCsr) {
            const uint32_t max_edges = static_cast<uint32_t>(
                shard.baseEdges.size() + shard.updateEdges.size());
            graph = std::make_unique<CsrGraph>(
                dpu, kTableBase, shard.numLocalNodes, max_edges);
        } else {
            core::AllocatorOverrides ov;
            ov.numTasklets = cfg.tasklets;
            allocator = core::makeAllocator(dpu, cfg.allocator, ov);
            if (cfg.structure == StructureKind::LinkedList) {
                graph = std::make_unique<LinkedListGraph>(
                    dpu, *allocator, kTableBase, shard.numLocalNodes);
            } else {
                graph = std::make_unique<VarArrayGraph>(
                    dpu, *allocator, kTableBase, shard.numLocalNodes);
            }
        }

        // Untimed: allocator init, then pre-update graph construction.
        if (allocator)
            dpu.run(1, [&](sim::Tasklet &t) { allocator->init(t); });
        dpu.run(cfg.tasklets, [&](sim::Tasklet &t) {
            if (cfg.structure == StructureKind::StaticCsr) {
                if (t.id() == 0)
                    graph->build(t, shard.baseEdges);
                return;
            }
            // Node-partitioned parallel build: tasklet k owns local
            // nodes with id % tasklets == k, so no two tasklets ever
            // touch the same adjacency list.
            std::vector<Edge> mine;
            for (const auto &e : shard.baseEdges) {
                if (e.src % cfg.tasklets == t.id())
                    mine.push_back(e);
            }
            graph->build(t, mine);
        });

        // Measured phase starts here.
        dpu.resetStats();
        if (allocator) {
            allocator->stats().resetCounters();
            allocator->stats().traceEvents = cfg.traceEvents;
        }

        dpu.run(cfg.tasklets, [&](sim::Tasklet &t) {
            for (const auto &e : shard.updateEdges) {
                if (e.src % cfg.tasklets != t.id())
                    continue;
                const bool ok = graph->insertEdge(t, e.src, e.dst);
                PIM_ASSERT(ok, "update insertion failed (capacity)");
            }
        });

        ShardOutcome &oc = outcomes[slot];
        oc.simulated = true;
        oc.cycles = dpu.lastElapsedCycles();
        oc.breakdown = dpu.lastBreakdown();
        oc.traffic = dpu.traffic();
        if (allocator) {
            oc.hasAllocator = true;
            oc.stats = allocator->stats();
            oc.metadataBytes = allocator->metadataBytes();
        }
        // Outcome harvested — return this shard's pages so full-system
        // (sample = 0) runs don't hold every shard resident at once.
        graph.reset();
        allocator.reset();
        dpu.reclaimMemory();
    }, {.label = "build+update"});
    queue.sync();

    mergeOutcomes(out, cfg, outcomes);
    return out;
}

} // namespace pim::workloads::graph
