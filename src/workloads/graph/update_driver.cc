#include "workloads/graph/update_driver.hh"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "alloc/allocator.hh"
#include "core/command_queue.hh"
#include "core/pim_system.hh"
#include "sim/dpu.hh"
#include "util/logging.hh"
#include "workloads/graph/csr_graph.hh"
#include "workloads/graph/linked_list_graph.hh"
#include "workloads/graph/var_array_graph.hh"

namespace pim::workloads::graph {

const char *
structureKindName(StructureKind s)
{
    switch (s) {
      case StructureKind::StaticCsr: return "Static (CSR)";
      case StructureKind::LinkedList: return "Dynamic (array of linked lists)";
      case StructureKind::VarArray: return "Dynamic (variable sized array)";
    }
    return "?";
}

unsigned
shardOf(uint32_t node, unsigned num_dpus)
{
    return static_cast<unsigned>((node * 2654435761u) >> 8) % num_dpus;
}

namespace {

/** MRAM offset of the node tables (clear of the 32 MB allocator heap). */
constexpr sim::MramAddr kTableBase = 48u << 20;

/** Shard-local view of the workload for one DPU. */
struct Shard
{
    uint32_t numLocalNodes = 0;
    std::vector<Edge> baseEdges;   ///< src remapped to local ids
    std::vector<Edge> updateEdges; ///< src remapped to local ids
};

Shard
buildShard(const UpdateWorkload &w, unsigned dpu, unsigned num_dpus)
{
    Shard s;
    std::unordered_map<uint32_t, uint32_t> local;
    auto localId = [&](uint32_t u) {
        auto it = local.find(u);
        if (it != local.end())
            return it->second;
        const uint32_t id = static_cast<uint32_t>(local.size());
        local.emplace(u, id);
        return id;
    };
    // Register every shard-owned node first so ids are stable and the
    // table covers nodes that only appear in the update stream.
    for (uint32_t u = 0; u < w.numNodes; ++u) {
        if (shardOf(u, num_dpus) == dpu)
            localId(u);
    }
    s.numLocalNodes = static_cast<uint32_t>(local.size());
    for (const auto &e : w.baseEdges) {
        if (shardOf(e.src, num_dpus) == dpu)
            s.baseEdges.push_back({localId(e.src), e.dst});
    }
    for (const auto &e : w.updateEdges) {
        if (shardOf(e.src, num_dpus) == dpu)
            s.updateEdges.push_back({localId(e.src), e.dst});
    }
    return s;
}

} // namespace

GraphUpdateResult
runGraphUpdate(const GraphUpdateConfig &cfg)
{
    PIM_ASSERT(cfg.numDpus >= 1, "need at least one DPU");
    const GraphDataset dataset = generateGraph(cfg.gen);
    UpdateWorkload w = splitForUpdate(dataset, cfg.newFraction, cfg.seed);
    if (cfg.maxUpdateEdges > 0 && w.updateEdges.size() > cfg.maxUpdateEdges)
        w.updateEdges.resize(cfg.maxUpdateEdges);

    GraphUpdateResult out;
    out.updateEdgesTotal = w.updateEdges.size();

    // The dataset is sharded across the whole system; the unified
    // runtime materializes the sampled shards and executes the one
    // heterogeneous launch below on its host pool.
    core::PimSystemConfig scfg;
    scfg.numDpus = cfg.numDpus;
    scfg.sampleDpus = cfg.sampleDpus;
    scfg.dpuCfg = cfg.dpuCfg;
    scfg.simThreads = cfg.simThreads;
    core::PimSystem sys(scfg);
    core::CommandQueue queue(sys);
    if (cfg.recorder != nullptr)
        queue.attachRecorder(cfg.recorder);

    const unsigned simulated = sys.sampleCount();

    /* Per-shard outcome, filled by its worker and merged in shard order
     * afterwards so the result is thread-count invariant. */
    struct ShardOutcome
    {
        bool simulated = false;
        uint64_t cycles = 0;
        sim::CycleBreakdown breakdown{};
        sim::TrafficStats traffic{};
        bool hasAllocator = false;
        alloc::AllocStats stats;
        uint64_t metadataBytes = 0;
    };
    std::vector<ShardOutcome> outcomes(simulated);

    // One launch, heterogeneous per-DPU work: every sampled DPU builds
    // and updates its own shard (no two shards share state, so the
    // bodies are safely concurrent).
    queue.launchProgram(sys.all(), [&](sim::Dpu &dpu, unsigned dpu_idx) {
        const unsigned slot = sys.slotOf(dpu_idx);
        const Shard shard = buildShard(w, dpu_idx, cfg.numDpus);
        if (shard.numLocalNodes == 0)
            return;

        std::unique_ptr<alloc::Allocator> allocator;
        std::unique_ptr<GraphStructure> graph;

        if (cfg.structure == StructureKind::StaticCsr) {
            const uint32_t max_edges = static_cast<uint32_t>(
                shard.baseEdges.size() + shard.updateEdges.size());
            graph = std::make_unique<CsrGraph>(
                dpu, kTableBase, shard.numLocalNodes, max_edges);
        } else {
            core::AllocatorOverrides ov;
            ov.numTasklets = cfg.tasklets;
            allocator = core::makeAllocator(dpu, cfg.allocator, ov);
            if (cfg.structure == StructureKind::LinkedList) {
                graph = std::make_unique<LinkedListGraph>(
                    dpu, *allocator, kTableBase, shard.numLocalNodes);
            } else {
                graph = std::make_unique<VarArrayGraph>(
                    dpu, *allocator, kTableBase, shard.numLocalNodes);
            }
        }

        // Untimed: allocator init, then pre-update graph construction.
        if (allocator)
            dpu.run(1, [&](sim::Tasklet &t) { allocator->init(t); });
        dpu.run(cfg.tasklets, [&](sim::Tasklet &t) {
            if (cfg.structure == StructureKind::StaticCsr) {
                if (t.id() == 0)
                    graph->build(t, shard.baseEdges);
                return;
            }
            // Node-partitioned parallel build: tasklet k owns local
            // nodes with id % tasklets == k, so no two tasklets ever
            // touch the same adjacency list.
            std::vector<Edge> mine;
            for (const auto &e : shard.baseEdges) {
                if (e.src % cfg.tasklets == t.id())
                    mine.push_back(e);
            }
            graph->build(t, mine);
        });

        // Measured phase starts here.
        dpu.resetStats();
        if (allocator) {
            allocator->stats().resetCounters();
            allocator->stats().traceEvents = cfg.traceEvents;
        }

        dpu.run(cfg.tasklets, [&](sim::Tasklet &t) {
            for (const auto &e : shard.updateEdges) {
                if (e.src % cfg.tasklets != t.id())
                    continue;
                const bool ok = graph->insertEdge(t, e.src, e.dst);
                PIM_ASSERT(ok, "update insertion failed (capacity)");
            }
        });

        ShardOutcome &oc = outcomes[slot];
        oc.simulated = true;
        oc.cycles = dpu.lastElapsedCycles();
        oc.breakdown = dpu.lastBreakdown();
        oc.traffic = dpu.traffic();
        if (allocator) {
            oc.hasAllocator = true;
            oc.stats = allocator->stats();
            oc.metadataBytes = allocator->metadataBytes();
        }
        // Outcome harvested — return this shard's pages so full-system
        // (sample = 0) runs don't hold every shard resident at once.
        graph.reset();
        allocator.reset();
        dpu.reclaimMemory();
    }, core::kNoEvent, "build+update");
    queue.sync();

    // Sequential merge in shard order — identical to the former
    // single-threaded loop, for any worker count.
    uint64_t max_cycles = 0;
    for (const ShardOutcome &oc : outcomes) {
        if (!oc.simulated)
            continue;
        max_cycles = std::max(max_cycles, oc.cycles);
        out.breakdown.merge(oc.breakdown);
        out.traffic.merge(oc.traffic);
        if (oc.hasAllocator) {
            const auto &st = oc.stats;
            out.allocStats.mallocCalls += st.mallocCalls;
            out.allocStats.freeCalls += st.freeCalls;
            out.allocStats.failures += st.failures;
            for (size_t l = 0; l < 3; ++l) {
                out.allocStats.serviced[l] += st.serviced[l];
                out.allocStats.cyclesByLevel[l] += st.cyclesByLevel[l];
            }
            for (double x : st.latency.samples())
                out.allocStats.latency.add(x);
            out.allocStats.events.insert(out.allocStats.events.end(),
                                         st.events.begin(),
                                         st.events.end());
            out.fragmentation =
                std::max(out.fragmentation, st.peakFragmentation);
            out.metadataBytes = oc.metadataBytes;
        }
    }

    out.updateSeconds = cfg.dpuCfg.cyclesToSeconds(max_cycles);
    if (out.updateSeconds > 0) {
        out.millionEdgesPerSec =
            static_cast<double>(out.updateEdgesTotal)
            / out.updateSeconds / 1e6;
    }
    out.avgAllocLatencyUs = cfg.dpuCfg.cyclesToMicros(
        static_cast<uint64_t>(out.allocStats.latency.mean()));
    return out;
}

} // namespace pim::workloads::graph
