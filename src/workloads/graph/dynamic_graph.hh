/**
 * @file
 * Common interface of the three graph representations the paper
 * evaluates for dynamic updates (Fig 3, Fig 17): the static CSR
 * baseline, the array of linked lists (faimGraph-style, fixed 256 B
 * chunks), and the variable-sized array (Hornet-style, power-of-two
 * arrays grown by doubling). Each instance manages the node shard
 * assigned to one DPU.
 */

#ifndef PIM_WORKLOADS_GRAPH_DYNAMIC_GRAPH_HH
#define PIM_WORKLOADS_GRAPH_DYNAMIC_GRAPH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/tasklet.hh"
#include "workloads/graph/graph_gen.hh"

namespace pim::workloads::graph {

/** Abstract per-DPU adjacency structure. */
class GraphStructure
{
  public:
    virtual ~GraphStructure() = default;

    /**
     * Bulk-load the pre-update shard. Static structures may use an
     * efficient batch path; dynamic structures insert edge by edge
     * (costs are charged to @p t but the caller runs this in an untimed
     * launch).
     *
     * @param edges  local edges with src already remapped to local ids.
     */
    virtual void build(sim::Tasklet &t,
                       const std::vector<Edge> &edges) = 0;

    /**
     * Insert one edge (timed path). @p u_local is the shard-local source
     * id, @p v_global the destination's global id (stored verbatim).
     * @return false when the structure is out of capacity.
     */
    virtual bool insertEdge(sim::Tasklet &t, uint32_t u_local,
                            uint32_t v_global) = 0;

    /** Out-degree of a local node (host-side verification). */
    virtual uint64_t degree(uint32_t u_local) const = 0;

    /** Neighbor multiset of a local node (host-side verification). */
    virtual std::vector<uint32_t> neighbors(uint32_t u_local) const = 0;

    /** Total edges stored. */
    virtual uint64_t edgeCount() const = 0;

    /** Display name. */
    virtual std::string name() const = 0;
};

} // namespace pim::workloads::graph

#endif // PIM_WORKLOADS_GRAPH_DYNAMIC_GRAPH_HH
