#include "workloads/graph/var_array_graph.hh"

#include <algorithm>
#include <vector>

#include "util/logging.hh"

namespace pim::workloads::graph {

VarArrayGraph::VarArrayGraph(sim::Dpu &dpu, alloc::Allocator &allocator,
                             sim::MramAddr table_base, uint32_t num_nodes)
    : dpu_(dpu), allocator_(allocator), tableBase_(table_base),
      numNodes_(num_nodes)
{
    PIM_ASSERT(static_cast<uint64_t>(table_base)
                   + static_cast<uint64_t>(num_nodes) * 12
                   <= dpu.mram().size(),
               "node table does not fit in MRAM");
    dpu.mram().fill(tableBase_, num_nodes * 12, 0);
}

void
VarArrayGraph::build(sim::Tasklet &t, const std::vector<Edge> &edges)
{
    for (const auto &e : edges) {
        const bool ok = insertEdge(t, e.src, e.dst);
        PIM_ASSERT(ok, "var-array build ran out of heap");
    }
}

bool
VarArrayGraph::insertEdge(sim::Tasklet &t, uint32_t u_local,
                          uint32_t v_global)
{
    PIM_ASSERT(u_local < numNodes_, "local src out of range");
    auto &mram = dpu_.mram();
    const sim::MramAddr entry = entryAddr(u_local);

    // One 12 B staged read of the node descriptor.
    t.dmaRead(entry, 12);
    sim::MramAddr addr = mram.read<uint32_t>(entry);
    uint32_t cap = mram.read<uint32_t>(entry + 4);
    uint32_t count = mram.read<uint32_t>(entry + 8);

    if (addr == 0) {
        addr = allocator_.malloc(t, kInitialBytes);
        if (addr == sim::kNullAddr)
            return false;
        cap = kInitialBytes;
    } else if (count * 4 >= cap) {
        if (cap >= kMaxBytes)
            return false; // degree cap reached
        const uint32_t new_cap = cap * 2;
        const sim::MramAddr bigger = allocator_.malloc(t, new_cap);
        if (bigger == sim::kNullAddr)
            return false;
        // Copy the old array: staged read + write of `cap` bytes.
        std::vector<uint8_t> tmp(cap);
        mram.readBytes(addr, tmp.data(), cap);
        mram.writeBytes(bigger, tmp.data(), cap);
        t.dmaRead(addr, cap);
        t.dmaWrite(bigger, cap);
        const bool freed = allocator_.free(t, addr);
        PIM_ASSERT(freed, "var-array grow freed an unknown block");
        addr = bigger;
        cap = new_cap;
    }

    mram.write<uint32_t>(addr + count * 4, v_global);
    t.dmaWrite(addr + count * 4, 8);
    ++count;
    mram.write<uint32_t>(entry, addr);
    mram.write<uint32_t>(entry + 4, cap);
    mram.write<uint32_t>(entry + 8, count);
    t.dmaWrite(entry, 12);
    ++numEdges_;
    return true;
}

uint64_t
VarArrayGraph::degree(uint32_t u_local) const
{
    return dpu_.mram().read<uint32_t>(entryAddr(u_local) + 8);
}

std::vector<uint32_t>
VarArrayGraph::neighbors(uint32_t u_local) const
{
    const sim::MramAddr addr =
        dpu_.mram().read<uint32_t>(entryAddr(u_local));
    const uint32_t count =
        dpu_.mram().read<uint32_t>(entryAddr(u_local) + 8);
    std::vector<uint32_t> out;
    out.reserve(count);
    for (uint32_t i = 0; i < count; ++i)
        out.push_back(dpu_.mram().read<uint32_t>(addr + i * 4));
    return out;
}

} // namespace pim::workloads::graph
