/**
 * @file
 * End-to-end dynamic graph update experiment (Fig 3(c), Fig 17):
 * shards the synthetic dataset across DPUs, bulk-loads the pre-update
 * graph in an untimed launch, then measures the parallel insertion of
 * the update stream with the selected data structure and allocator.
 */

#ifndef PIM_WORKLOADS_GRAPH_UPDATE_DRIVER_HH
#define PIM_WORKLOADS_GRAPH_UPDATE_DRIVER_HH

#include <cstdint>

#include "alloc/alloc_stats.hh"
#include "core/allocator_factory.hh"
#include "sim/config.hh"
#include "sim/types.hh"
#include "workloads/graph/graph_gen.hh"

namespace pim::trace {
class Recorder;
}

namespace pim::workloads::graph {

/** The three representations of Fig 17(a). */
enum class StructureKind {
    StaticCsr,
    LinkedList,
    VarArray,
};

/** Display name of a structure kind. */
const char *structureKindName(StructureKind s);

/** Experiment parameters. */
struct GraphUpdateConfig
{
    /** Adjacency representation under test. */
    StructureKind structure = StructureKind::LinkedList;
    /** Allocator for the dynamic representations (ignored for CSR). */
    core::AllocatorKind allocator = core::AllocatorKind::PimMallocSw;
    /** System size the dataset is sharded across. */
    unsigned numDpus = 512;
    /** Representative DPUs actually simulated (0 = all of numDpus). */
    unsigned sampleDpus = 2;
    /** Tasklets per DPU processing insertions. */
    unsigned tasklets = 16;
    /** Dataset generator parameters. */
    GraphGenConfig gen{};
    /** Fraction of edges forming the update stream (paper: 1/3). */
    double newFraction = 1.0 / 3.0;
    /** Truncate the update stream to this many edges (0 = all). Used by
     *  the Fig 3(c) experiment, which fixes the update count while the
     *  pre-update graph grows. */
    uint64_t maxUpdateEdges = 0;
    /** Record per-allocation events (Fig 17(b,c)). */
    bool traceEvents = false;
    /** DPU hardware parameters. */
    sim::DpuConfig dpuCfg{};
    /** Workload split seed. */
    uint64_t seed = 7;
    /** Host worker threads simulating shards (0 = PIM_SIM_THREADS env,
     *  else hardware concurrency). Results are thread-count invariant. */
    unsigned simThreads = 0;
    /** Span recorder fed by the run's command queue (nullptr = off). */
    trace::Recorder *recorder = nullptr;
};

/** Aggregated outcome of the update phase. */
struct GraphUpdateResult
{
    /** Makespan of the update phase (max over sampled DPUs). */
    double updateSeconds = 0.0;
    /** System-wide update throughput. */
    double millionEdgesPerSec = 0.0;
    /** Update edges across the whole system. */
    uint64_t updateEdgesTotal = 0;
    /** Launch-wide cycle breakdown, summed over sampled DPUs. */
    sim::CycleBreakdown breakdown{};
    /** DMA traffic of the update phase, summed over sampled DPUs. */
    sim::TrafficStats traffic{};
    /** Allocator statistics merged over sampled DPUs (update phase
     *  counters; fragmentation covers the whole run). */
    alloc::AllocStats allocStats;
    /** Worst peak A/U over sampled DPUs (Table III). */
    double fragmentation = 0.0;
    /** Allocator metadata footprint per DPU (Section VI-E), bytes. */
    uint64_t metadataBytes = 0;
    /** Mean pimMalloc() latency during updates, microseconds. */
    double avgAllocLatencyUs = 0.0;
};

/** Run the experiment. Deterministic in the config. */
GraphUpdateResult runGraphUpdate(const GraphUpdateConfig &cfg);

/** DPU shard owning @p node (multiplicative hash, uniform). */
unsigned shardOf(uint32_t node, unsigned num_dpus);

} // namespace pim::workloads::graph

#endif // PIM_WORKLOADS_GRAPH_UPDATE_DRIVER_HH
