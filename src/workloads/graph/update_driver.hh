/**
 * @file
 * End-to-end dynamic graph update experiment (Fig 3(c), Fig 17):
 * shards the synthetic dataset across DPUs, bulk-loads the pre-update
 * graph in an untimed launch, then measures the parallel insertion of
 * the update stream with the selected data structure and allocator.
 */

#ifndef PIM_WORKLOADS_GRAPH_UPDATE_DRIVER_HH
#define PIM_WORKLOADS_GRAPH_UPDATE_DRIVER_HH

#include <cstdint>
#include <memory>

#include "alloc/alloc_stats.hh"
#include "core/allocator_factory.hh"
#include "core/command_queue.hh"
#include "fault/fault_plan.hh"
#include "sim/config.hh"
#include "sim/types.hh"
#include "workloads/graph/graph_gen.hh"

namespace pim::trace {
class Recorder;
}

namespace pim::telemetry {
class Registry;
}

namespace pim::workloads::graph {

/** The three representations of Fig 17(a). */
enum class StructureKind {
    StaticCsr,
    LinkedList,
    VarArray,
};

/** Display name of a structure kind. */
const char *structureKindName(StructureKind s);

/** Experiment parameters. */
struct GraphUpdateConfig
{
    /** Adjacency representation under test. */
    StructureKind structure = StructureKind::LinkedList;
    /** Allocator for the dynamic representations (ignored for CSR). */
    core::AllocatorKind allocator = core::AllocatorKind::PimMallocSw;
    /** System size the dataset is sharded across. */
    unsigned numDpus = 512;
    /** Representative DPUs actually simulated (0 = all of numDpus). */
    unsigned sampleDpus = 2;
    /** Tasklets per DPU processing insertions. */
    unsigned tasklets = 16;
    /** Dataset generator parameters. */
    GraphGenConfig gen{};
    /** Fraction of edges forming the update stream (paper: 1/3). */
    double newFraction = 1.0 / 3.0;
    /** Truncate the update stream to this many edges (0 = all). Used by
     *  the Fig 3(c) experiment, which fixes the update count while the
     *  pre-update graph grows. */
    uint64_t maxUpdateEdges = 0;
    /** Record per-allocation events (Fig 17(b,c)). */
    bool traceEvents = false;
    /** DPU hardware parameters. */
    sim::DpuConfig dpuCfg{};
    /**
     * Number of batched update rounds the stream is split into
     * (streaming-ingest mode). 1 = the historical single measured
     * launch. With R > 1 every shard inserts its edges in R slices,
     * each slice a separate launch on the command queue, so a co-tenant
     * run interleaves with other tenants at round granularity.
     */
    unsigned updateRounds = 1;
    /**
     * Ship each round's update edges (8 B/edge) to the owning DPUs over
     * the bus (double-buffered scatter) before the round's launch,
     * instead of assuming the stream is resident. Implies the
     * round-driven path even when updateRounds == 1.
     */
    bool shipUpdates = false;
    /**
     * Ingest cadence of the round-driven path: round r is not issued
     * before r * roundIntervalSec after the build completes (the
     * tenant's host lane idles until then), modeling an update stream
     * that arrives over time instead of being fully buffered. 0 =
     * back-to-back rounds. Only meaningful with updateRounds > 1 or
     * shipUpdates.
     */
    double roundIntervalSec = 0.0;
    /** Workload split seed. */
    uint64_t seed = 7;
    /** Host worker threads simulating shards (0 = PIM_SIM_THREADS env,
     *  else hardware concurrency). Results are thread-count invariant. */
    unsigned simThreads = 0;
    /** Span recorder fed by the run's command queue (nullptr = off). */
    trace::Recorder *recorder = nullptr;
    /**
     * Metrics registry (nullptr = off): queue counters/utilization plus
     * the per-round ingest latency histogram "graph.round_sec"
     * (completion minus the round's scheduled issue time; round-driven
     * path only) and, when sloRoundSec is set, attainment under
     * "graph.round".
     */
    telemetry::Registry *metrics = nullptr;
    /** Round-latency SLO target in seconds (0 = no SLO declared). */
    double sloRoundSec = 0.0;
    /**
     * Fault injection (opt-in): when faultSpec.enabled(),
     * runGraphUpdate takes the round-driven path, builds a FaultPlan
     * from (faultSpec, faultSeed), attaches it to the run's queue, and
     * — if rank failures are in play — arbitrates ranks through a
     * RankScheduler holding spareRanks back so replacements exist.
     * Disabled by default; the fault-free path is byte-identical to
     * the pre-fault driver. (Co-tenant GraphUpdateTask callers wire
     * injector + scheduler themselves and only set faultPolicy.)
     */
    fault::FaultSpec faultSpec{};
    uint64_t faultSeed = 29;
    fault::FaultPolicy faultPolicy = fault::FaultPolicy::Recover;
    unsigned spareRanks = 1;
};

/** Aggregated outcome of the update phase. */
struct GraphUpdateResult
{
    /** Makespan of the update phase (max over sampled DPUs). */
    double updateSeconds = 0.0;
    /** System-wide update throughput. */
    double millionEdgesPerSec = 0.0;
    /** Update edges across the whole system. */
    uint64_t updateEdgesTotal = 0;
    /** Launch-wide cycle breakdown, summed over sampled DPUs. */
    sim::CycleBreakdown breakdown{};
    /** DMA traffic of the update phase, summed over sampled DPUs. */
    sim::TrafficStats traffic{};
    /** Allocator statistics merged over sampled DPUs (update phase
     *  counters; fragmentation covers the whole run). */
    alloc::AllocStats allocStats;
    /** Worst peak A/U over sampled DPUs (Table III). */
    double fragmentation = 0.0;
    /** Allocator metadata footprint per DPU (Section VI-E), bytes. */
    uint64_t metadataBytes = 0;
    /** Mean pimMalloc() latency during updates, microseconds. */
    double avgAllocLatencyUs = 0.0;
    /**
     * Queue-timeline wall time of the update rounds (completion of the
     * last round minus completion of the build launch) — the metric a
     * co-tenant run compares against its solo baseline. 0 in the
     * historical single-launch path, where no round boundary exists.
     */
    double wallSeconds = 0.0;

    /** Fault injection (all zero/ideal in a fault-free run). */
    unsigned rankFailures = 0;    ///< rank deaths inside this partition
    unsigned reExecutedRounds = 0; ///< failed rounds re-run (Recover)
    unsigned lostRounds = 0;      ///< failed rounds never re-run (Drop)
    uint64_t lostEdges = 0;       ///< update edges lost with them (Drop)
    uint64_t restoreBytes = 0;    ///< shard state restored to replacements
    /** Mean time-to-repair: rank death -> replacement granted and the
     *  shard restore landed (recovered failures only). */
    double mttrMeanSec = 0.0;
    /** 1 - (time some failure was unrepaired) / update wall time. */
    double availability = 1.0;
};

/** Run the experiment. Deterministic in the config. */
GraphUpdateResult runGraphUpdate(const GraphUpdateConfig &cfg);

/**
 * The graph-update experiment as a *resumable stepper* on an externally
 * owned CommandQueue and rank partition — the co-tenant form of
 * runGraphUpdate. Construction shards the dataset across the
 * partition's logical DPUs (dense DpuSet::indexOf order) and enqueues
 * the untimed build launch; each step() enqueues one update round
 * (optionally preceded by its double-buffered edge shipment) and
 * advances the task clock to the round's completion. A standalone run
 * ("construct over all ranks of a fresh system, step() until done()")
 * reproduces runGraphUpdate's round-driven path exactly.
 *
 * The task never joins the queue's timelines (no sync()); co-resident
 * tenants keep issuing while it runs.
 */
class GraphUpdateTask
{
  public:
    /**
     * @param partition rank-granular DpuSet this tenant owns; the
     *        dataset is sharded across its size() logical DPUs.
     * @param tenant the queue tenant commands are issued as (register
     *        with CommandQueue::addTenant; 0 = the default host).
     */
    GraphUpdateTask(const GraphUpdateConfig &cfg,
                    core::CommandQueue &queue,
                    const core::DpuSet &partition,
                    core::TenantId tenant = core::kDefaultTenant);
    ~GraphUpdateTask();

    GraphUpdateTask(const GraphUpdateTask &) = delete;
    GraphUpdateTask &operator=(const GraphUpdateTask &) = delete;

    /** True once every update round has completed. */
    bool done() const;

    /** Completion time of the task's latest round on the queue
     *  timeline (the co-scheduler's ordering key). */
    double clockSeconds() const;

    /** Enqueue the next update round and wait for it (event-driven).
     *  Must not be called after done(), nor while
     *  waitingReplacement(). */
    void step();

    /**
     * Control-plane notification: @p rank — part of this task's
     * partition — died at simulated time @p failSec (wire this to
     * RankScheduler::onRevoke). Under fault::FaultPolicy::Drop the
     * dead rank's shards (and their un-inserted edges) are lost and
     * the partition shrinks; under Recover the task pauses
     * (waitingReplacement()) until onReplacementGranted().
     */
    void onRankFailed(unsigned rank, double failSec);

    /**
     * A replacement grant (single rank) for the oldest outstanding
     * failure: the dead rank's shard state is restored onto the
     * replacement from the host-side checkpoint (costed as a bus
     * transfer), and the failed round — plus the migrated shards'
     * remaining rounds — re-executes there as timed launches.
     */
    void onReplacementGranted(const core::DpuSet &replacement);

    /** True while the task cannot progress awaiting a replacement
     *  grant; the driver must not step() the task in that state. */
    bool waitingReplacement() const;

    /** Metrics of the completed experiment (valid once done()). */
    GraphUpdateResult result() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/** DPU shard owning @p node (multiplicative hash, uniform). */
unsigned shardOf(uint32_t node, unsigned num_dpus);

} // namespace pim::workloads::graph

#endif // PIM_WORKLOADS_GRAPH_UPDATE_DRIVER_HH
