#include "workloads/llm/kv_cache.hh"

#include "alloc/pim_malloc.hh"
#include "core/allocator_factory.hh"
#include "core/command_queue.hh"
#include "core/pim_system.hh"
#include "sim/dpu.hh"
#include "util/logging.hh"
#include "workloads/llm/llm_config.hh"

namespace pim::workloads::llm {

KvCacheManager::KvCacheManager(alloc::Allocator &allocator,
                               uint32_t block_bytes)
    : allocator_(allocator), blockBytes_(block_bytes)
{
    PIM_ASSERT(block_bytes > 0, "block size must be positive");
}

bool
KvCacheManager::appendBytes(sim::Tasklet &t, unsigned req, uint64_t bytes)
{
    Request &r = requests_[req];
    uint64_t need = bytes;
    while (need > 0) {
        const uint64_t capacity =
            static_cast<uint64_t>(r.blocks.size()) * blockBytes_;
        const uint64_t space = capacity - r.bytesUsed;
        if (space == 0) {
            const sim::MramAddr blk = allocator_.malloc(t, blockBytes_);
            if (blk == sim::kNullAddr)
                return false;
            r.blocks.push_back(blk);
            ++totalBlocks_;
            continue;
        }
        const uint64_t take = std::min(space, need);
        r.bytesUsed += take;
        bytesStored_ += take;
        need -= take;
    }
    return true;
}

void
KvCacheManager::releaseRequest(sim::Tasklet &t, unsigned req)
{
    auto it = requests_.find(req);
    if (it == requests_.end())
        return;
    for (const sim::MramAddr blk : it->second.blocks) {
        const bool ok = allocator_.free(t, blk);
        PIM_ASSERT(ok, "KV block double free");
        --totalBlocks_;
    }
    bytesStored_ -= it->second.bytesUsed;
    requests_.erase(it);
}

size_t
KvCacheManager::blockCount(unsigned req) const
{
    auto it = requests_.find(req);
    return it == requests_.end() ? 0 : it->second.blocks.size();
}

BatchCapacityResult
measureBatchCapacity(const LlmModelConfig &model,
                     const RequestLengthConfig &lengths,
                     unsigned num_dpus, uint64_t seed)
{
    BatchCapacityResult res;
    const uint64_t per_token = model.kvBytesPerTokenPerDpu(num_dpus);

    // Static: PAISE-style, every request slot reserves the worst case.
    alloc::PimMallocConfig heap_cfg;
    res.heapBytes = heap_cfg.heapBytes;
    res.staticReserveBytesPerRequest = per_token * lengths.maxSeqLen;
    res.staticMaxBatch = static_cast<unsigned>(
        res.heapBytes / res.staticReserveBytesPerRequest);

    // Dynamic: admit sampled requests against the real allocator until
    // the heap cannot hold another one, on a one-DPU system driven
    // through the unified runtime.
    util::Rng rng(seed);
    core::PimSystem sys(core::singleDpuConfig());
    core::CommandQueue queue(sys);
    sim::Dpu &dpu = sys.dpu(0);
    auto allocator =
        core::makeAllocator(dpu, core::AllocatorKind::PimMallocSw);
    KvCacheManager kv(*allocator);

    unsigned admitted = 0;
    uint64_t actual_bytes_sum = 0;
    queue.launch(sys.all(), 1,
                 [&](sim::Tasklet &t, unsigned) { allocator->init(t); });
    queue.launch(sys.all(), 1, [&](sim::Tasklet &t, unsigned) {
        for (;;) {
            const RequestLengths r = sampleRequest(lengths, rng);
            const uint64_t bytes = per_token * r.totalTokens();
            if (!kv.appendBytes(t, admitted, bytes)) {
                kv.releaseRequest(t, admitted);
                break;
            }
            actual_bytes_sum += bytes;
            ++admitted;
        }
    });
    queue.sync();
    res.dynamicMaxBatch = admitted;
    res.meanActualBytesPerRequest = admitted
        ? static_cast<double>(actual_bytes_sum) / admitted : 0.0;
    return res;
}

} // namespace pim::workloads::llm
