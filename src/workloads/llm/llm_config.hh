/**
 * @file
 * LLM model and request-length configuration for the attention-offload
 * case study (Section III-A case #2, Section V, Fig 4, Fig 18). The
 * model geometry is Llama-2 7B; request lengths follow a ShareGPT-like
 * lognormal fit (the actual ShareGPT dump is not available offline; the
 * fit matches its published mean prompt/output lengths of ~161/~338
 * tokens).
 */

#ifndef PIM_WORKLOADS_LLM_LLM_CONFIG_HH
#define PIM_WORKLOADS_LLM_LLM_CONFIG_HH

#include <cstdint>

#include "util/rng.hh"

namespace pim::workloads::llm {

/** Transformer geometry (defaults: Llama-2 7B). */
struct LlmModelConfig
{
    unsigned numLayers = 32;
    unsigned hiddenDim = 4096;
    unsigned numHeads = 32;
    unsigned bytesPerValue = 2; ///< fp16

    /**
     * KV-cache bytes one token adds across the whole model:
     * 2 (K and V) x layers x hidden x bytes = 512 KiB for Llama-2 7B.
     */
    uint64_t
    kvBytesPerToken() const
    {
        return 2ull * numLayers * hiddenDim * bytesPerValue;
    }

    /** Per-DPU share when the KV cache is sharded across @p n DPUs. */
    uint64_t
    kvBytesPerTokenPerDpu(unsigned n) const
    {
        return (kvBytesPerToken() + n - 1) / n;
    }
};

/** ShareGPT-like request length distribution. */
struct RequestLengthConfig
{
    /** Lognormal parameters of the prompt length (mean ~161 tokens). */
    double promptMu = 4.38;
    double promptSigma = 1.18;
    /** Lognormal parameters of the output length (mean ~338 tokens). */
    double outputMu = 5.12;
    double outputSigma = 1.18;
    /** Serving-config cap on prompt+output (PAISE-style static
     *  allocation reserves for this worst case). */
    unsigned maxSeqLen = 2048;
};

/** One sampled request. */
struct RequestLengths
{
    unsigned promptTokens;
    unsigned outputTokens;

    unsigned
    totalTokens() const
    {
        return promptTokens + outputTokens;
    }
};

/** Sample one request's lengths (clamped to the maxSeqLen cap). */
RequestLengths sampleRequest(const RequestLengthConfig &cfg,
                             util::Rng &rng);

} // namespace pim::workloads::llm

#endif // PIM_WORKLOADS_LLM_LLM_CONFIG_HH
