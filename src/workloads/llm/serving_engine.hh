/**
 * @file
 * LLM serving engine on the command-queue runtime. One engine, two
 * execution modes:
 *
 *   Lockstep      — the analytic Fig 18 reproduction: every decode step
 *                   is one composed host-clock charge (FC + attention +
 *                   allocation), requests march in lockstep. Numerically
 *                   identical to the historical runServing() loop.
 *
 *   Disaggregated — prefill/decode disaggregation as a real pipeline on
 *                   core::CommandQueue (the DistServe/LLMServingSim-style
 *                   setup): prefill runs as launchProgram on a leading
 *                   rank partition (the real KV allocator + prompt KV
 *                   fill on the simulated DPUs), decode attention runs
 *                   as bandwidth-costed launchTimed commands on the
 *                   complementary ranks, prompt KV migrates prefill →
 *                   decode over the bus, and each step's KV-block append
 *                   ships via double-buffered memcpyScatterBufferedAsync
 *                   chained with Events so the transfer overlaps the
 *                   next step's attention. Admission and TPOT accounting
 *                   are driven off Event completion timestamps
 *                   (CommandQueue::eventSeconds), not a lumped clock.
 *
 * Attach a trace::Recorder (ServingConfig::recorder) to see the
 * pipeline: prefill-rank lanes, decode-rank lanes, and the KV bus lane
 * genuinely overlap, and `--occupancy` quantifies the hidden work.
 */

#ifndef PIM_WORKLOADS_LLM_SERVING_ENGINE_HH
#define PIM_WORKLOADS_LLM_SERVING_ENGINE_HH

#include "workloads/llm/serving_sim.hh"

namespace pim::workloads::llm {

/** How the engine schedules the serving trace. */
enum class ServingMode {
    Lockstep,      ///< analytic host-clock loop (Fig 18 reproduction)
    Disaggregated, ///< rank-partitioned prefill/decode pipeline
};

/** Engine parameters on top of the shared serving trace config. */
struct ServingEngineConfig
{
    /** Trace, model, and system parameters (shared with runServing). */
    ServingConfig base{};

    ServingMode mode = ServingMode::Lockstep;

    /**
     * Disaggregated mode: fraction of the system's ranks dedicated to
     * prefill; the complement decodes. Rounded to whole ranks and
     * clamped so both partitions are non-empty.
     */
    double prefillRankFraction = 0.25;

    /**
     * Worker threads simulating prefill DPUs (0 = PIM_SIM_THREADS env,
     * else hardware concurrency). Results are thread-count invariant.
     */
    unsigned simThreads = 1;
};

/**
 * Mean per-block KV allocation latency of @p kind under the serving
 * access pattern (@p tasklets concurrent tasklets, @p block_bytes
 * requests, no frees), calibrated by running the real allocator
 * microbenchmark on the DPU simulator. Memoized on
 * (kind, tasklets, block_bytes): sweeps re-running the serving engine
 * pay the microbenchmark once per distinct key, not once per run.
 * Thread-safe.
 */
double calibratedAllocLatency(core::AllocatorKind kind, unsigned tasklets,
                              uint32_t block_bytes);

/** The serving pipeline of one scheme/config (single-shot: run() once). */
class ServingEngine
{
  public:
    ServingEngine(const ServingScheme &scheme,
                  const ServingEngineConfig &cfg);

    /** Execute the serving trace to completion. */
    ServingResult run();

  private:
    ServingResult runLockstep();
    ServingResult runDisaggregated();

    ServingScheme scheme_;
    ServingEngineConfig cfg_;
};

} // namespace pim::workloads::llm

#endif // PIM_WORKLOADS_LLM_SERVING_ENGINE_HH
