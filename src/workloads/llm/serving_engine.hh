/**
 * @file
 * LLM serving engine on the command-queue runtime. One engine, two
 * execution modes:
 *
 *   Lockstep      — the analytic Fig 18 reproduction: every decode step
 *                   is one composed host-clock charge (FC + attention +
 *                   allocation), requests march in lockstep. Numerically
 *                   identical to the historical runServing() loop.
 *
 *   Disaggregated — prefill/decode disaggregation as a real pipeline on
 *                   core::CommandQueue (the DistServe/LLMServingSim-style
 *                   setup): prefill runs as launchProgram on a leading
 *                   rank partition (the real KV allocator + prompt KV
 *                   fill on the simulated DPUs), decode attention runs
 *                   as bandwidth-costed launchTimed commands on the
 *                   complementary ranks, prompt KV migrates prefill →
 *                   decode over the bus, and each step's KV-block append
 *                   ships via double-buffered memcpyScatterBufferedAsync
 *                   chained with Events so the transfer overlaps the
 *                   next step's attention. Admission and TPOT accounting
 *                   are driven off Event completion timestamps
 *                   (CommandQueue::eventSeconds), not a lumped clock.
 *
 * Attach a trace::Recorder (ServingConfig::recorder) to see the
 * pipeline: prefill-rank lanes, decode-rank lanes, and the KV bus lane
 * genuinely overlap, and `--occupancy` quantifies the hidden work.
 */

#ifndef PIM_WORKLOADS_LLM_SERVING_ENGINE_HH
#define PIM_WORKLOADS_LLM_SERVING_ENGINE_HH

#include <memory>

#include "core/command_queue.hh"
#include "fault/fault_plan.hh"
#include "workloads/llm/serving_sim.hh"

namespace pim::workloads::llm {

/** How the engine schedules the serving trace. */
enum class ServingMode {
    Lockstep,      ///< analytic host-clock loop (Fig 18 reproduction)
    Disaggregated, ///< rank-partitioned prefill/decode pipeline
};

/** What a disaggregated pipeline does when commands fail under fault
 *  injection (shared across fault-aware workloads; see fault::FaultPolicy). */
using FaultPolicy = fault::FaultPolicy;

/** Engine parameters on top of the shared serving trace config. */
struct ServingEngineConfig
{
    /** Trace, model, and system parameters (shared with runServing). */
    ServingConfig base{};

    ServingMode mode = ServingMode::Lockstep;

    /**
     * Disaggregated mode: fraction of the system's ranks dedicated to
     * prefill; the complement decodes. Rounded to whole ranks and
     * clamped so both partitions are non-empty.
     */
    double prefillRankFraction = 0.25;

    /**
     * Worker threads simulating prefill DPUs (0 = PIM_SIM_THREADS env,
     * else hardware concurrency). Results are thread-count invariant.
     */
    unsigned simThreads = 1;

    /**
     * Fault injection for the standalone Disaggregated run: when
     * faultSpec.enabled(), runDisaggregated() builds a FaultPlan from
     * (faultSpec, faultSeed), attaches it to the run's queue, and —
     * if rank failures are in play — holds spareRanks back from the
     * task's grant behind a RankScheduler so replacements exist.
     * Disabled by default; the fault-free path is byte-identical to
     * the pre-fault engine. (Co-tenant DisaggServingTask callers wire
     * injector + scheduler themselves and only set faultPolicy.)
     */
    fault::FaultSpec faultSpec{};
    uint64_t faultSeed = 23;
    FaultPolicy faultPolicy = FaultPolicy::Recover;
    unsigned spareRanks = 1;
};

/**
 * Mean per-block KV allocation latency of @p kind under the serving
 * access pattern (@p tasklets concurrent tasklets, @p block_bytes
 * requests, no frees), calibrated by running the real allocator
 * microbenchmark on the DPU simulator. Memoized on
 * (kind, tasklets, block_bytes): sweeps re-running the serving engine
 * pay the microbenchmark once per distinct key, not once per run.
 * Thread-safe.
 */
double calibratedAllocLatency(core::AllocatorKind kind, unsigned tasklets,
                              uint32_t block_bytes);

/** The serving pipeline of one scheme/config (single-shot: run() once). */
class ServingEngine
{
  public:
    ServingEngine(const ServingScheme &scheme,
                  const ServingEngineConfig &cfg);

    /** Execute the serving trace to completion. */
    ServingResult run();

  private:
    ServingResult runLockstep();
    ServingResult runDisaggregated();

    ServingScheme scheme_;
    ServingEngineConfig cfg_;
};

/**
 * The disaggregated serving pipeline as a *resumable stepper* on an
 * externally owned CommandQueue and rank partition — the co-tenant
 * form of ServingEngine's Disaggregated mode. A standalone run is
 * "construct on a fresh system's queue over all its ranks, then step()
 * until done()" (exactly what ServingEngine::runDisaggregated does);
 * a co-tenant run constructs the task on a shared queue with the ranks
 * a core::RankScheduler granted (split internally into prefill/decode
 * partitions) and a registered TenantId, and interleaves step() with
 * other tenants' steppers — the deterministic co-scheduler advances
 * whichever task's clockSeconds() is behind.
 *
 * The task never joins the queue's timelines (no sync()), so
 * co-resident tenants keep issuing while it runs; all admission/TPOT
 * accounting is event-timestamp driven.
 */
class DisaggServingTask
{
  public:
    /**
     * @param partition rank-granular DpuSet (>= 2 ranks) this tenant
     *        owns; prefillRankFraction of it prefills, the rest
     *        decodes.
     * @param tenant the queue tenant commands are issued as (register
     *        with CommandQueue::addTenant; 0 = the default host).
     */
    DisaggServingTask(const ServingScheme &scheme,
                      const ServingEngineConfig &cfg,
                      core::CommandQueue &queue,
                      const core::DpuSet &partition,
                      core::TenantId tenant = core::kDefaultTenant);
    ~DisaggServingTask();

    DisaggServingTask(const DisaggServingTask &) = delete;
    DisaggServingTask &operator=(const DisaggServingTask &) = delete;

    /** True once every request of the trace has fully decoded. */
    bool done() const;

    /** The task's pipeline clock: completion time of its latest decode
     *  step on the queue timeline (the co-scheduler's ordering key). */
    double clockSeconds() const;

    /** One scheduler iteration: admit arrivals, launch/activate
     *  prefill waves, run one decode step (or idle to the next
     *  arrival). Must not be called after done(), nor while
     *  waitingReplacement(). */
    void step();

    /**
     * Control-plane notification: @p rank — part of this task's
     * partition — died at simulated time @p failSec (wire this to
     * RankScheduler::onRevoke). Under FaultPolicy::Drop the task sheds
     * the affected requests and shrinks; under Recover it pauses
     * (waitingReplacement()) until onReplacementGranted().
     */
    void onRankFailed(unsigned rank, double failSec);

    /**
     * A replacement grant (single rank) for the oldest outstanding
     * failure: the task re-joins it to the side that lost a rank,
     * re-initializes prefill state / re-ships the affected KV via the
     * double-buffered path, and resumes.
     */
    void onReplacementGranted(const core::DpuSet &replacement);

    /** True while decode cannot progress awaiting a replacement
     *  grant; the driver must not step() the task in that state. */
    bool waitingReplacement() const;

    /**
     * Metrics of the completed trace (valid once done()). makespanSec
     * is the task's own clock — the tenant's completion time on the
     * shared timeline — and kvShippedBytes counts only this task's
     * transfers, so co-tenants don't pollute each other's results.
     * overlapSeconds stays 0 (queue-wide work counters are
     * cross-tenant; use trace::analyzeOccupancy on a co-tenant trace).
     */
    ServingResult result() const;

  private:
    friend class ServingEngine;
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace pim::workloads::llm

#endif // PIM_WORKLOADS_LLM_SERVING_ENGINE_HH
