#include "workloads/llm/serving_sim.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <vector>

#include "alloc/pim_malloc.hh"
#include "core/command_queue.hh"
#include "core/pim_system.hh"
#include "util/stats.hh"
#include "workloads/microbench.hh"

namespace pim::workloads::llm {

const char *
ServingScheme::name() const
{
    if (!allocator)
        return "Static";
    return core::allocatorKindName(*allocator);
}

namespace {

/**
 * Calibrate the mean per-block KV allocation latency by running the
 * real allocator on the DPU simulator under the serving access pattern
 * (allocTasklets tasklets, kvBlockBytes requests, no frees — the cache
 * only grows during decode).
 */
double
calibrateAllocLatency(core::AllocatorKind kind, const ServingConfig &cfg)
{
    MicrobenchConfig mb;
    mb.allocator = kind;
    mb.tasklets = cfg.allocTasklets;
    mb.allocsPerTasklet = 128;
    mb.allocSize = cfg.kvBlockBytes;
    mb.freeEachAlloc = false;
    const MicrobenchResult r = runMicrobench(mb);
    return r.avgLatencyUs * 1e-6;
}

/** Memory-imposed concurrent-batch bound of one scheme. */
unsigned
batchLimit(const ServingScheme &scheme, const ServingConfig &cfg)
{
    const alloc::PimMallocConfig heap_cfg;
    const uint64_t heap = heap_cfg.heapBytes;
    const uint64_t per_token = cfg.model.kvBytesPerTokenPerDpu(cfg.numDpus);
    if (!scheme.allocator) {
        // Static: every slot reserves the model's full context window.
        return static_cast<unsigned>(
            heap / (per_token * cfg.staticReserveTokens));
    }
    // Dynamic: requests occupy only their actual (block-rounded) size;
    // in this trace every request peaks at prompt+output tokens.
    const uint64_t per_req_bytes =
        (per_token * (cfg.promptTokens + cfg.outputTokens)
         + cfg.kvBlockBytes - 1)
        / cfg.kvBlockBytes * cfg.kvBlockBytes;
    // Leave headroom for allocator metadata and pre-populated spans.
    return static_cast<unsigned>(heap * 95 / 100 / per_req_bytes);
}

struct ActiveRequest
{
    unsigned id;
    unsigned context; ///< tokens currently in the KV cache
    unsigned generated = 0;
};

} // namespace

ServingResult
runServing(const ServingScheme &scheme, const ServingConfig &cfg)
{
    ServingResult res;
    res.maxBatchLimit = batchLimit(scheme, cfg);
    res.allocSecPerBlock = scheme.allocator
        ? calibrateAllocLatency(*scheme.allocator, cfg) : 0.0;

    const uint64_t per_token = cfg.model.kvBytesPerTokenPerDpu(cfg.numDpus);
    const double blocks_per_token =
        static_cast<double>(per_token) / cfg.kvBlockBytes;
    // Allocations are spread over the DPU's tasklets; one "wave" of
    // concurrent allocations costs one calibrated latency.
    auto allocSeconds = [&](double blocks) {
        if (!scheme.allocator || blocks <= 0)
            return 0.0;
        const double waves =
            std::ceil(blocks / static_cast<double>(cfg.allocTasklets));
        return waves * res.allocSecPerBlock;
    };

    // Poisson arrivals.
    util::Rng rng(cfg.seed);
    std::vector<double> arrivals(cfg.numRequests);
    double at = 0.0;
    for (auto &a : arrivals) {
        at += rng.exponential(cfg.arrivalRatePerSec);
        a = at;
    }

    // The serving clock lives on the unified runtime's host timeline:
    // each lockstep decode step occupies the host for its composed
    // step latency, and idle gaps wait on the next Poisson arrival.
    // (The PIM-side per-block allocation cost feeding each step was
    // calibrated above by running the real allocator on the runtime.)
    core::PimSystemConfig scfg;
    scfg.numDpus = cfg.numDpus;
    scfg.sampleDpus = 1; // analytic steps: no DPU programs launched
    scfg.simThreads = 1;
    core::PimSystem sys(scfg);
    core::CommandQueue clock(sys);
    if (cfg.recorder != nullptr)
        clock.attachRecorder(cfg.recorder);

    std::deque<unsigned> waiting;
    std::vector<ActiveRequest> active;
    unsigned next_arrival = 0;
    unsigned completed = 0;
    uint64_t tokens_out = 0;
    util::Percentile tpot;

    while (completed < cfg.numRequests) {
        const double now = clock.sync();
        // Admit arrivals that happened before `now`.
        while (next_arrival < cfg.numRequests
               && arrivals[next_arrival] <= now) {
            waiting.push_back(next_arrival);
            ++next_arrival;
        }
        double prefill_blocks = 0.0;
        while (!waiting.empty() && active.size() < res.maxBatchLimit) {
            active.push_back({waiting.front(), cfg.promptTokens, 0});
            waiting.pop_front();
            // Prefill fills the prompt's KV blocks in one burst.
            prefill_blocks += blocks_per_token * cfg.promptTokens;
        }

        if (active.empty()) {
            // Idle until the next arrival.
            if (next_arrival < cfg.numRequests)
                clock.hostIdleUntil(arrivals[next_arrival],
                                    core::kNoEvent, "wait:arrival");
            continue;
        }

        // One decode step: every active request reads its whole per-DPU
        // KV slice (bandwidth-bound attention) and appends one token.
        uint64_t kv_bytes = 0;
        for (const auto &r : active)
            kv_bytes += per_token * r.context;
        const double attn_sec =
            static_cast<double>(kv_bytes) / cfg.mramBandwidth;
        const double alloc_sec =
            allocSeconds(prefill_blocks
                         + blocks_per_token
                             * static_cast<double>(active.size()));
        const double step_sec = cfg.stepOverheadSeconds + cfg.fcStepSeconds
            + attn_sec + alloc_sec;
        if (clock.recorder() != nullptr) {
            clock.hostBusy(step_sec, core::kNoEvent,
                           "step b" + std::to_string(active.size()));
        } else {
            clock.hostBusy(step_sec);
        }

        res.peakBatchObserved = std::max<unsigned>(
            res.peakBatchObserved, static_cast<unsigned>(active.size()));

        for (auto &r : active) {
            ++r.context;
            ++r.generated;
            ++tokens_out;
            tpot.add(step_sec);
        }
        std::erase_if(active, [&](const ActiveRequest &r) {
            if (r.generated >= cfg.outputTokens) {
                ++completed;
                return true;
            }
            return false;
        });
    }

    res.makespanSec = clock.sync();
    res.throughputTokensPerSec =
        static_cast<double>(tokens_out)
        / std::max(res.makespanSec, 1e-9);
    res.tpotP50Ms = tpot.p50() * 1e3;
    res.tpotP95Ms = tpot.p95() * 1e3;
    res.tpotP99Ms = tpot.p99() * 1e3;
    return res;
}

} // namespace pim::workloads::llm
