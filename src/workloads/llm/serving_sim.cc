#include "workloads/llm/serving_sim.hh"

#include "core/allocator_factory.hh"
#include "workloads/llm/serving_engine.hh"

namespace pim::workloads::llm {

const char *
ServingScheme::name() const
{
    if (!allocator)
        return "Static";
    return core::allocatorKindName(*allocator);
}

ServingResult
runServing(const ServingScheme &scheme, const ServingConfig &cfg)
{
    // The historical lockstep simulator is now a mode of ServingEngine;
    // this facade pins that mode so the Fig 18 reproduction stays put.
    ServingEngineConfig ecfg;
    ecfg.base = cfg;
    ecfg.mode = ServingMode::Lockstep;
    return ServingEngine(scheme, ecfg).run();
}

} // namespace pim::workloads::llm
