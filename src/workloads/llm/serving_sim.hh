/**
 * @file
 * Continuous-batching LLM serving simulator (the LLMServingSim
 * substitute used for Fig 18). Requests arrive by a Poisson process and
 * are decoded in lockstep steps; each step's latency combines the
 * xPU-side FC time, the PIM-side attention time (bandwidth-bound on the
 * per-DPU KV slices), and the KV-cache allocation overhead of the
 * scheme under test. Allocation latency per 512 B block is calibrated
 * by running the actual allocator microbenchmark on the DPU simulator
 * (memoized — see calibratedAllocLatency in serving_engine.hh).
 *
 * Reported metrics match the paper: token throughput and TPOT
 * (time-per-output-token) percentiles.
 *
 * runServing() is a thin facade pinning the Lockstep mode of
 * workloads::llm::ServingEngine, which also offers a Disaggregated
 * mode: a rank-partitioned prefill/decode pipeline on the command
 * queue with double-buffered KV shipping (see serving_engine.hh).
 */

#ifndef PIM_WORKLOADS_LLM_SERVING_SIM_HH
#define PIM_WORKLOADS_LLM_SERVING_SIM_HH

#include <optional>

#include "core/allocator_factory.hh"
#include "workloads/llm/llm_config.hh"

namespace pim::trace {
class Recorder;
}

namespace pim::telemetry {
class Registry;
}

namespace pim::workloads::llm {

/** KV-cache management scheme of one Fig 18 bar group. */
struct ServingScheme
{
    /** Empty = static pre-allocation; else the dynamic allocator kind. */
    std::optional<core::AllocatorKind> allocator;

    /** Display name. */
    const char *name() const;
};

/** Serving experiment parameters (defaults reproduce the Fig 18 trace). */
struct ServingConfig
{
    /** Trace: 100 requests at 10 req/s, 128-token prompts, 256 outputs. */
    unsigned numRequests = 100;
    double arrivalRatePerSec = 10.0;
    unsigned promptTokens = 128;
    unsigned outputTokens = 256;

    /** System. */
    unsigned numDpus = 512;
    LlmModelConfig model{};
    RequestLengthConfig lengths{}; ///< maxSeqLen bounds static reserve

    /**
     * Tokens a PAISE-style static scheme reserves per request slot: the
     * model's maximum context length (Llama-2: 4096), as opposed to the
     * tighter ShareGPT cap used by the Fig 4(b) capacity study.
     */
    unsigned staticReserveTokens = 4096;

    /** Per-DPU MRAM streaming bandwidth for attention (bytes/s). */
    double mramBandwidth = 700e6;
    /** xPU FC-layer time per decode step (batch-amortized). */
    double fcStepSeconds = 2.0e-3;
    /** Fixed per-step overhead (kernel launch, host sync). */
    double stepOverheadSeconds = 1.0e-3;
    /** Tasklets per DPU servicing KV allocations. */
    unsigned allocTasklets = 16;
    /** KV growth granularity (paper: 512 B). */
    uint32_t kvBlockBytes = 512;

    /** Trace seed. */
    uint64_t seed = 11;

    /**
     * Span recorder fed by the serving clock's command queue: decode
     * steps appear as host spans labeled "step b<batch>", idle gaps as
     * "wait:arrival" (nullptr = off).
     */
    trace::Recorder *recorder = nullptr;

    /**
     * Metrics registry (nullptr = off): queue counters and utilization
     * series, "serving.tpot_sec"/"serving.ttft_sec" latency histograms,
     * and — when the SLO targets below are set — per-run attainment
     * under "serving.tpot"/"serving.ttft". With a registry attached the
     * disaggregated-mode percentiles come from the same histograms the
     * registry exports, so table and JSON always agree.
     */
    telemetry::Registry *metrics = nullptr;
    /** TTFT / TPOT SLO targets in seconds (0 = no SLO declared). */
    double sloTtftSec = 0.0;
    double sloTpotSec = 0.0;
};

/** Serving outcome. */
struct ServingResult
{
    double throughputTokensPerSec = 0.0;
    double tpotP50Ms = 0.0;
    double tpotP95Ms = 0.0;
    double tpotP99Ms = 0.0;
    double makespanSec = 0.0;
    unsigned maxBatchLimit = 0;    ///< memory-imposed batch bound
    unsigned peakBatchObserved = 0;
    double allocSecPerBlock = 0.0; ///< calibrated allocator latency

    /** Disaggregated mode only (all zero in lockstep mode). */
    double ttftP50Ms = 0.0;      ///< time-to-first-token percentiles
    double ttftP95Ms = 0.0;      ///<   (arrival → first decoded token)
    double ttftP99Ms = 0.0;
    unsigned prefillRanks = 0;   ///< ranks running prefill launches
    unsigned decodeRanks = 0;    ///< ranks running decode attention
    unsigned prefillWaves = 0;   ///< prefill launches issued
    uint64_t kvShippedBytes = 0; ///< KV bytes moved over the bus
    /** Resource work (host + bus + ranks) hidden by pipelining:
     *  max(0, work sum - makespan). */
    double overlapSeconds = 0.0;

    /** Fault injection (all zero/ideal in a fault-free run). */
    unsigned completedRequests = 0; ///< requests fully decoded
    unsigned lostRequests = 0;  ///< requests dropped, never completed
    unsigned lostSteps = 0;     ///< failed decode steps (count vs SLO)
    unsigned rankFailures = 0;  ///< rank deaths inside this partition
    uint64_t recoveryBytes = 0; ///< KV re-shipped to replacement ranks
    /** Mean time-to-repair: rank death -> replacement granted and KV
     *  re-ship landed (recovered failures only). */
    double mttrMeanSec = 0.0;
    /** 1 - (time some failure was unrepaired) / makespan. */
    double availability = 1.0;
};

/** Run the serving simulation for one scheme. */
ServingResult runServing(const ServingScheme &scheme,
                         const ServingConfig &cfg);

} // namespace pim::workloads::llm

#endif // PIM_WORKLOADS_LLM_SERVING_SIM_HH
