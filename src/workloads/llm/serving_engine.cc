#include "workloads/llm/serving_engine.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <vector>

#include "alloc/pim_malloc.hh"
#include "core/command_queue.hh"
#include "core/pim_system.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "workloads/llm/kv_cache.hh"
#include "workloads/microbench.hh"

namespace pim::workloads::llm {

double
calibratedAllocLatency(core::AllocatorKind kind, unsigned tasklets,
                       uint32_t block_bytes)
{
    using Key = std::tuple<core::AllocatorKind, unsigned, uint32_t>;
    static std::mutex mu;
    static std::map<Key, double> cache;
    const Key key{kind, tasklets, block_bytes};
    {
        std::lock_guard<std::mutex> lock(mu);
        if (const auto it = cache.find(key); it != cache.end())
            return it->second;
    }
    // Run the microbenchmark outside the lock (it is deterministic, so
    // a racing duplicate run computes the same value).
    MicrobenchConfig mb;
    mb.allocator = kind;
    mb.tasklets = tasklets;
    mb.allocsPerTasklet = 128;
    mb.allocSize = block_bytes;
    mb.freeEachAlloc = false;
    const MicrobenchResult r = runMicrobench(mb);
    const double sec = r.avgLatencyUs * 1e-6;
    std::lock_guard<std::mutex> lock(mu);
    cache.emplace(key, sec);
    return sec;
}

namespace {

/**
 * Memory-imposed concurrent-batch bound of one scheme when the KV cache
 * is sharded across @p num_dpus DPUs (the whole system in lockstep
 * mode, the decode partition in disaggregated mode).
 */
unsigned
batchLimit(const ServingScheme &scheme, const ServingConfig &cfg,
           unsigned num_dpus)
{
    const alloc::PimMallocConfig heap_cfg;
    const uint64_t heap = heap_cfg.heapBytes;
    const uint64_t per_token = cfg.model.kvBytesPerTokenPerDpu(num_dpus);
    if (!scheme.allocator) {
        // Static: every slot reserves the model's full context window.
        return static_cast<unsigned>(
            heap / (per_token * cfg.staticReserveTokens));
    }
    // Dynamic: requests occupy only their actual (block-rounded) size;
    // in this trace every request peaks at prompt+output tokens.
    const uint64_t per_req_bytes =
        (per_token * (cfg.promptTokens + cfg.outputTokens)
         + cfg.kvBlockBytes - 1)
        / cfg.kvBlockBytes * cfg.kvBlockBytes;
    // Leave headroom for allocator metadata and pre-populated spans.
    return static_cast<unsigned>(heap * 95 / 100 / per_req_bytes);
}

/** The Poisson arrival times of the serving trace. */
std::vector<double>
arrivalTimes(const ServingConfig &cfg)
{
    util::Rng rng(cfg.seed);
    std::vector<double> arrivals(cfg.numRequests);
    double at = 0.0;
    for (auto &a : arrivals) {
        at += rng.exponential(cfg.arrivalRatePerSec);
        a = at;
    }
    return arrivals;
}

struct ActiveRequest
{
    unsigned id;
    unsigned context; ///< tokens currently in the KV cache
    unsigned generated = 0;
    /** Completion time of the request's latest token (TPOT base). */
    double lastTokenSec = 0.0;
};

/** Per-materialized-DPU prefill state, persistent across waves. Each
 *  slot is only ever touched by the engine worker simulating it. */
struct PrefillSlot
{
    std::unique_ptr<alloc::Allocator> allocator; ///< dynamic schemes
    std::unique_ptr<KvCacheManager> kv;
    /** Requests of the previous wave (their transient prompt KV is
     *  released at the start of the next wave, post-migration). */
    unsigned prevWaveRequests = 0;
};

} // namespace

ServingEngine::ServingEngine(const ServingScheme &scheme,
                             const ServingEngineConfig &cfg)
    : scheme_(scheme), cfg_(cfg)
{
}

ServingResult
ServingEngine::run()
{
    return cfg_.mode == ServingMode::Disaggregated ? runDisaggregated()
                                                   : runLockstep();
}

ServingResult
ServingEngine::runLockstep()
{
    const ServingConfig &cfg = cfg_.base;
    ServingResult res;
    res.maxBatchLimit = batchLimit(scheme_, cfg, cfg.numDpus);
    // A zero batch bound (per-request reservation exceeds the heap)
    // would spin the admission loop forever once arrivals run out.
    PIM_ASSERT(res.maxBatchLimit >= 1,
               "KV heap cannot hold a single request (", cfg.numDpus,
               " DPUs): shard across more DPUs or shrink the reserve");
    res.allocSecPerBlock = scheme_.allocator
        ? calibratedAllocLatency(*scheme_.allocator, cfg.allocTasklets,
                                 cfg.kvBlockBytes)
        : 0.0;

    const uint64_t per_token = cfg.model.kvBytesPerTokenPerDpu(cfg.numDpus);
    const double blocks_per_token =
        static_cast<double>(per_token) / cfg.kvBlockBytes;
    // Allocations are spread over the DPU's tasklets; one "wave" of
    // concurrent allocations costs one calibrated latency.
    auto allocSeconds = [&](double blocks) {
        if (!scheme_.allocator || blocks <= 0)
            return 0.0;
        const double waves =
            std::ceil(blocks / static_cast<double>(cfg.allocTasklets));
        return waves * res.allocSecPerBlock;
    };

    const std::vector<double> arrivals = arrivalTimes(cfg);

    // The serving clock lives on the unified runtime's host timeline:
    // each lockstep decode step occupies the host for its composed
    // step latency, and idle gaps wait on the next Poisson arrival.
    // (The PIM-side per-block allocation cost feeding each step was
    // calibrated above by running the real allocator on the runtime.)
    core::PimSystemConfig scfg;
    scfg.numDpus = cfg.numDpus;
    scfg.sampleDpus = 1; // analytic steps: no DPU programs launched
    scfg.simThreads = 1;
    core::PimSystem sys(scfg);
    core::CommandQueue clock(sys);
    if (cfg.recorder != nullptr)
        clock.attachRecorder(cfg.recorder);

    std::deque<unsigned> waiting;
    std::vector<ActiveRequest> active;
    unsigned next_arrival = 0;
    unsigned completed = 0;
    uint64_t tokens_out = 0;
    util::Percentile tpot;

    while (completed < cfg.numRequests) {
        const double now = clock.sync();
        // Admit arrivals that happened before `now`.
        while (next_arrival < cfg.numRequests
               && arrivals[next_arrival] <= now) {
            waiting.push_back(next_arrival);
            ++next_arrival;
        }
        double prefill_blocks = 0.0;
        while (!waiting.empty() && active.size() < res.maxBatchLimit) {
            active.push_back({waiting.front(), cfg.promptTokens, 0, 0.0});
            waiting.pop_front();
            // Prefill fills the prompt's KV blocks in one burst.
            prefill_blocks += blocks_per_token * cfg.promptTokens;
        }

        if (active.empty()) {
            // Idle until the next arrival.
            if (next_arrival < cfg.numRequests)
                clock.hostIdleUntil(arrivals[next_arrival],
                                    core::kNoEvent, "wait:arrival");
            continue;
        }

        // One decode step: every active request reads its whole per-DPU
        // KV slice (bandwidth-bound attention) and appends one token.
        uint64_t kv_bytes = 0;
        for (const auto &r : active)
            kv_bytes += per_token * r.context;
        const double attn_sec =
            static_cast<double>(kv_bytes) / cfg.mramBandwidth;
        const double alloc_sec =
            allocSeconds(prefill_blocks
                         + blocks_per_token
                             * static_cast<double>(active.size()));
        const double step_sec = cfg.stepOverheadSeconds + cfg.fcStepSeconds
            + attn_sec + alloc_sec;
        if (clock.recorder() != nullptr) {
            clock.hostBusy(step_sec, core::kNoEvent,
                           "step b" + std::to_string(active.size()));
        } else {
            clock.hostBusy(step_sec);
        }

        res.peakBatchObserved = std::max<unsigned>(
            res.peakBatchObserved, static_cast<unsigned>(active.size()));

        for (auto &r : active) {
            ++r.context;
            ++r.generated;
            ++tokens_out;
            tpot.add(step_sec);
        }
        std::erase_if(active, [&](const ActiveRequest &r) {
            if (r.generated >= cfg.outputTokens) {
                ++completed;
                return true;
            }
            return false;
        });
    }

    res.makespanSec = clock.sync();
    res.throughputTokensPerSec =
        static_cast<double>(tokens_out)
        / std::max(res.makespanSec, 1e-9);
    res.tpotP50Ms = tpot.p50() * 1e3;
    res.tpotP95Ms = tpot.p95() * 1e3;
    res.tpotP99Ms = tpot.p99() * 1e3;
    return res;
}

ServingResult
ServingEngine::runDisaggregated()
{
    const ServingConfig &cfg = cfg_.base;
    ServingResult res;

    // One representative DPU per rank: prefill launches must find a
    // materialized member in every prefill rank.
    core::PimSystemConfig scfg;
    scfg.numDpus = cfg.numDpus;
    scfg.samplePerRank = true;
    scfg.simThreads = cfg_.simThreads;
    core::PimSystem sys(scfg);
    PIM_ASSERT(sys.numRanks() >= 2,
               "disaggregated serving needs at least two ranks");
    core::CommandQueue queue(sys);
    if (cfg.recorder != nullptr)
        queue.attachRecorder(cfg.recorder);
    const bool traced = queue.recorder() != nullptr;

    auto [prefill_set, decode_set] =
        sys.partitionRanks(cfg_.prefillRankFraction);
    res.prefillRanks =
        static_cast<unsigned>(prefill_set.ranks().size());
    res.decodeRanks = static_cast<unsigned>(decode_set.ranks().size());
    const unsigned prefill_dpus = prefill_set.size();
    const unsigned decode_dpus = decode_set.size();

    res.maxBatchLimit = batchLimit(scheme_, cfg, decode_dpus);
    PIM_ASSERT(res.maxBatchLimit >= 1,
               "decode partition too small: zero-request batch limit");
    res.allocSecPerBlock = scheme_.allocator
        ? calibratedAllocLatency(*scheme_.allocator, cfg.allocTasklets,
                                 cfg.kvBlockBytes)
        : 0.0;

    const uint64_t per_token_dec =
        cfg.model.kvBytesPerTokenPerDpu(decode_dpus);
    const uint64_t per_token_pre =
        cfg.model.kvBytesPerTokenPerDpu(prefill_dpus);
    const double blocks_per_token =
        static_cast<double>(per_token_dec) / cfg.kvBlockBytes;
    auto allocSeconds = [&](double blocks) {
        if (!scheme_.allocator || blocks <= 0)
            return 0.0;
        const double waves =
            std::ceil(blocks / static_cast<double>(cfg.allocTasklets));
        return waves * res.allocSecPerBlock;
    };

    // One prefill wave's prompts live transiently in the prefill-rank
    // heaps until the next wave releases them; bound the wave so a
    // whole wave fits.
    const alloc::PimMallocConfig heap_cfg;
    const uint64_t prompt_bytes_pre =
        per_token_pre * cfg.promptTokens;
    const unsigned max_prefill_batch = std::max<unsigned>(
        1,
        static_cast<unsigned>(heap_cfg.heapBytes * 95 / 100
                              / std::max<uint64_t>(prompt_bytes_pre, 1)));

    const std::vector<double> arrivals = arrivalTimes(cfg);

    // Per-slot prefill state (each slot is touched by exactly one
    // engine worker). Dynamic schemes bring their allocator up in one
    // deployment-time launch before the trace starts, so the (real,
    // possibly large) init cost lands visibly on the prefill ranks at
    // t=0 instead of being dropped as untimed setup inside a wave.
    std::vector<PrefillSlot> slots(sys.sampleCount());
    const unsigned tasklets = cfg.allocTasklets;
    if (scheme_.allocator) {
        queue.launchProgram(
            prefill_set,
            [&sys, &slots, &scheme = scheme_, &cfg,
             tasklets](sim::Dpu &dpu, unsigned global) {
                PrefillSlot &st = slots[sys.slotOf(global)];
                core::AllocatorOverrides ov;
                ov.numTasklets = tasklets;
                st.allocator =
                    core::makeAllocator(dpu, *scheme.allocator, ov);
                st.kv = std::make_unique<KvCacheManager>(
                    *st.allocator, cfg.kvBlockBytes);
                dpu.run(1,
                        [&](sim::Tasklet &t) { st.allocator->init(t); });
            },
            core::kNoEvent, traced ? "alloc init" : "");
    }

    struct Wave
    {
        std::vector<unsigned> reqs;
        core::Event migrated; ///< prompt KV landed on decode ranks
    };

    std::deque<unsigned> waiting;
    std::deque<Wave> inflight;
    std::vector<ActiveRequest> active;
    unsigned inflight_reqs = 0;
    unsigned next_arrival = 0;
    unsigned completed = 0;
    uint64_t tokens_out = 0;
    unsigned step_idx = 0;
    util::Percentile tpot;

    // Double-buffered KV-append shipping: attention of step n orders
    // after the append shipped in step n-2, so the step n-1 transfer
    // genuinely overlaps step n's attention (the appended block is
    // read one step after it lands — the double-buffer swap).
    core::Event ship_prev1 = core::kNoEvent;
    core::Event ship_prev2 = core::kNoEvent;
    double now = 0.0;

    while (completed < cfg.numRequests) {
        // Admit arrivals that happened before `now`.
        while (next_arrival < cfg.numRequests
               && arrivals[next_arrival] <= now) {
            waiting.push_back(next_arrival);
            ++next_arrival;
        }

        // Launch a prefill wave on the prefill ranks if there is work
        // and both the decode batch bound and the prefill heap allow.
        const unsigned in_pipe =
            static_cast<unsigned>(active.size()) + inflight_reqs;
        if (!waiting.empty() && in_pipe < res.maxBatchLimit) {
            const unsigned room = std::min(
                res.maxBatchLimit - in_pipe, max_prefill_batch);
            Wave w;
            while (!waiting.empty() && w.reqs.size() < room) {
                w.reqs.push_back(waiting.front());
                waiting.pop_front();
            }
            const unsigned k = static_cast<unsigned>(w.reqs.size());
            // The host dispatches the wave no earlier than its newest
            // member's arrival (the host timeline lags `now` when the
            // decode ranks pace the pipeline, and a prefill must not
            // start before its request exists). Arrivals are sorted,
            // so the last member is the newest.
            queue.hostIdleUntil(arrivals[w.reqs.back()],
                                core::kNoEvent, "wait:arrival");
            const core::Event pf = queue.launchProgram(
                prefill_set,
                [&sys, &slots, k, prompt_bytes_pre,
                 tasklets](sim::Dpu &dpu, unsigned global) {
                    PrefillSlot &st = slots[sys.slotOf(global)];
                    if (st.kv != nullptr) {
                        // Recycle the previous wave's transient prompt
                        // KV (it migrated long ago), then allocate and
                        // fill this wave's blocks with the real
                        // allocator under tasklet concurrency.
                        const unsigned prev = st.prevWaveRequests;
                        dpu.run(tasklets, [&](sim::Tasklet &t) {
                            for (unsigned r = t.id(); r < prev;
                                 r += tasklets)
                                st.kv->releaseRequest(t, r);
                            for (unsigned r = t.id(); r < k;
                                 r += tasklets) {
                                if (!st.kv->appendBytes(
                                        t, r, prompt_bytes_pre))
                                    break; // heap exhausted: keep rest
                            }
                        });
                        st.prevWaveRequests = k;
                    } else {
                        // Static: stream the prompts into the
                        // pre-reserved slabs (pure DMA cost).
                        const uint64_t total = prompt_bytes_pre * k;
                        dpu.run(tasklets, [&](sim::Tasklet &t) {
                            constexpr uint64_t chunk = 2048;
                            for (uint64_t off = t.id() * chunk;
                                 off < total; off += chunk * tasklets)
                                t.dmaWrite(
                                    0, static_cast<uint32_t>(
                                           std::min(chunk, total - off)));
                        });
                    }
                },
                core::kNoEvent,
                traced ? "prefill b" + std::to_string(k) : "");
            // Ship the wave's prompt KV: gather off the prefill ranks,
            // then land it (double-buffered) on the decode ranks.
            const core::Event gather = queue.memcpyAsync(
                prefill_set, prompt_bytes_pre * k,
                core::CopyDirection::PimToHost, pf,
                traced ? "kv gather b" + std::to_string(k) : "");
            w.migrated = queue.memcpyBufferedAsync(
                decode_set, per_token_dec * cfg.promptTokens * k,
                core::CopyDirection::HostToPim, gather,
                traced ? "kv migrate b" + std::to_string(k) : "");
            inflight_reqs += k;
            inflight.push_back(std::move(w));
            ++res.prefillWaves;
        }

        // Activate waves whose prompt KV has landed by `now` (their
        // first decodable step starts at or after `now`, so the
        // migration is complete before attention reads it).
        while (!inflight.empty()
               && queue.eventSeconds(inflight.front().migrated) <= now) {
            const double ready =
                queue.eventSeconds(inflight.front().migrated);
            for (const unsigned id : inflight.front().reqs)
                active.push_back({id, cfg.promptTokens, 0, ready});
            inflight_reqs -=
                static_cast<unsigned>(inflight.front().reqs.size());
            inflight.pop_front();
        }

        if (active.empty()) {
            if (!inflight.empty()) {
                // Wait for the next wave's migration to land.
                const double ready =
                    queue.eventSeconds(inflight.front().migrated);
                queue.hostIdleUntil(ready, inflight.front().migrated,
                                    "wait:prefill");
                now = std::max(now, ready);
            } else if (next_arrival < cfg.numRequests) {
                queue.hostIdleUntil(arrivals[next_arrival],
                                    core::kNoEvent, "wait:arrival");
                now = std::max(now, arrivals[next_arrival]);
            }
            continue;
        }

        // One pipelined decode step: the host runs the xPU-side FC and
        // step bookkeeping, the decode ranks run bandwidth-bound
        // attention plus this step's KV-block allocations, and the
        // appended KV blocks ship over the bus without stalling the
        // ranks. Consecutive steps overlap across all three resources.
        uint64_t kv_bytes = 0;
        for (const auto &r : active)
            kv_bytes += per_token_dec * r.context;
        const double attn_sec =
            static_cast<double>(kv_bytes) / cfg.mramBandwidth;
        const double alloc_sec = allocSeconds(
            blocks_per_token * static_cast<double>(active.size()));
        const std::string step_tag = traced
            ? " s" + std::to_string(step_idx) + " b"
                + std::to_string(active.size())
            : std::string();
        queue.hostBusy(cfg.stepOverheadSeconds + cfg.fcStepSeconds,
                       core::kNoEvent, traced ? "fc" + step_tag : "");
        const core::Event attn = queue.launchTimed(
            decode_set, attn_sec + alloc_sec, ship_prev2,
            traced ? "attn" + step_tag : "");
        const core::Event ship = queue.memcpyBufferedAsync(
            decode_set,
            per_token_dec * static_cast<uint64_t>(active.size()),
            core::CopyDirection::HostToPim, attn,
            traced ? "kv append" + step_tag : "");
        ship_prev2 = ship_prev1;
        ship_prev1 = ship;
        ++step_idx;

        const double t_end = queue.eventSeconds(attn);
        res.peakBatchObserved = std::max<unsigned>(
            res.peakBatchObserved, static_cast<unsigned>(active.size()));
        for (auto &r : active) {
            ++r.context;
            ++r.generated;
            ++tokens_out;
            tpot.add(t_end - r.lastTokenSec);
            r.lastTokenSec = t_end;
        }
        std::erase_if(active, [&](const ActiveRequest &r) {
            if (r.generated >= cfg.outputTokens) {
                ++completed;
                return true;
            }
            return false;
        });
        now = std::max(now, t_end);
    }

    res.makespanSec = queue.sync();
    res.throughputTokensPerSec = static_cast<double>(tokens_out)
        / std::max(res.makespanSec, 1e-9);
    res.tpotP50Ms = tpot.p50() * 1e3;
    res.tpotP95Ms = tpot.p95() * 1e3;
    res.tpotP99Ms = tpot.p99() * 1e3;
    res.kvShippedBytes = queue.transferredBytes();
    res.overlapSeconds = std::max(
        0.0,
        queue.launchWorkSeconds() + queue.copyWorkSeconds()
            + queue.hostWorkSeconds() - res.makespanSec);
    return res;
}

} // namespace pim::workloads::llm
